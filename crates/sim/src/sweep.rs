//! Deterministic parallel sweeps over scenarios.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

use crate::batch::chunk_shards;
use crate::error::SimError;
use crate::merge::Mergeable;
use crate::scenario::Scenario;
use crate::stepper::Stepper;

/// Fans a batch of independent jobs across `std::thread::scope` workers.
///
/// Results are collected by input index, so the output order — and
/// therefore every downstream report — is bit-for-bit identical whether
/// the sweep runs on one worker or sixteen. Work is claimed from a
/// shared atomic cursor, so slow jobs never leave workers idle behind a
/// static partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepRunner {
    workers: usize,
}

impl SweepRunner {
    /// A runner with a fixed worker count (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// A runner sized to the machine's available parallelism.
    pub fn auto() -> Self {
        Self::new(thread::available_parallelism().map_or(1, usize::from))
    }

    /// The worker count this runner will use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Applies `f` to every item, in parallel, returning results in
    /// input order. `f` receives each item's input index alongside the
    /// item so labelling never depends on completion order.
    pub fn run<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.workers.min(n);
        if workers == 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }

        let jobs: Vec<Mutex<Option<T>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();

        thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut produced = Vec::new();
                        loop {
                            let idx = cursor.fetch_add(1, Ordering::Relaxed);
                            if idx >= n {
                                break;
                            }
                            let item = jobs[idx]
                                .lock()
                                .expect("job mutex poisoned")
                                .take()
                                .expect("each job is claimed exactly once");
                            produced.push((idx, f(idx, item)));
                        }
                        produced
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(produced) => {
                        for (idx, result) in produced {
                            slots[idx] = Some(result);
                        }
                    }
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
        });

        slots
            .into_iter()
            .map(|r| r.expect("every claimed index produced a result"))
            .collect()
    }

    /// Maps `f` over every item in shards of `shard_size` and folds the
    /// per-item reports into one aggregate, returning `Ok(None)` for
    /// empty input.
    ///
    /// Each worker reduces the shards it claims locally (saving one
    /// allocation per item over [`SweepRunner::run`] + fold), and the
    /// per-shard aggregates are folded **in shard index order**, so the
    /// result is bit-for-bit identical at any worker count and any shard
    /// size — the contract fleet-scale aggregation relies on.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] when `shard_size` is zero.
    /// A zero shard cannot make progress; it used to be silently clamped
    /// to 1, which hid the caller's bug *and* quietly changed the shard
    /// grouping that float-fold results (merged metrics) are identified
    /// by.
    pub fn run_merged<T, R, F>(
        &self,
        items: Vec<T>,
        shard_size: usize,
        f: F,
    ) -> Result<Option<R>, SimError>
    where
        T: Send,
        R: Mergeable + Send,
        F: Fn(usize, T) -> R + Sync,
    {
        if shard_size == 0 {
            return Err(SimError::InvalidParameter {
                name: "shard_size",
                value: 0.0,
            });
        }
        if items.is_empty() {
            return Ok(None);
        }
        let shards = chunk_shards(items, shard_size);
        let shard_reports = self.run(shards, |_, (base, shard)| {
            let mut report: Option<R> = None;
            for (offset, item) in shard.into_iter().enumerate() {
                let r = f(base + offset, item);
                match report.as_mut() {
                    Some(acc) => acc.merge(r),
                    None => report = Some(r),
                }
            }
            report.expect("shards are non-empty by construction")
        });
        Ok(shard_reports.into_iter().reduce(|mut acc, r| {
            acc.merge(r);
            acc
        }))
    }

    /// Runs every scenario to completion, returning `(label, result)`
    /// pairs in input order.
    pub fn sweep<'a, S>(
        &self,
        scenarios: Vec<Scenario<'a, S>>,
    ) -> Vec<(String, Result<S, S::Error>)>
    where
        S: Stepper + Send,
        S::Error: Send,
    {
        self.run(scenarios, |_, scenario| {
            (scenario.label().to_owned(), scenario.run())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for workers in [1, 2, 7] {
            let out = SweepRunner::new(workers).run(items.clone(), |i, x| {
                assert_eq!(i, x);
                x * x
            });
            let expect: Vec<usize> = (0..100).map(|x| x * x).collect();
            assert_eq!(out, expect, "workers={workers}");
        }
    }

    #[test]
    fn worker_count_is_clamped_and_empty_input_is_fine() {
        assert_eq!(SweepRunner::new(0).workers(), 1);
        assert!(SweepRunner::auto().workers() >= 1);
        let out: Vec<u8> = SweepRunner::new(4).run(Vec::<u8>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn run_merged_is_shard_and_worker_invariant() {
        let items: Vec<u32> = (0..97).collect();
        let reference: Vec<u32> = items.iter().map(|x| x * 3).collect();
        for workers in [1, 2, 5, 16] {
            for shard_size in [1, 7, 32, 1000] {
                let merged = SweepRunner::new(workers)
                    .run_merged(items.clone(), shard_size, |i, x| {
                        assert_eq!(i as u32, x);
                        vec![x * 3]
                    })
                    .expect("non-zero shard size")
                    .expect("non-empty input");
                assert_eq!(merged, reference, "workers={workers} shard={shard_size}");
            }
        }
    }

    #[test]
    fn run_merged_empty_input_is_none() {
        let out: Option<Vec<u8>> = SweepRunner::new(4)
            .run_merged(Vec::<u8>::new(), 8, |_, x| vec![x])
            .expect("non-zero shard size");
        assert!(out.is_none());
    }

    /// Regression: a zero shard size used to be silently clamped to 1,
    /// degenerating the requested grouping without telling the caller.
    /// It is now a typed error, raised even for empty input.
    #[test]
    fn run_merged_zero_shard_size_is_a_typed_error() {
        let err = SweepRunner::new(4)
            .run_merged((0..10).collect::<Vec<u32>>(), 0, |_, x| vec![x])
            .unwrap_err();
        assert_eq!(
            err,
            SimError::InvalidParameter {
                name: "shard_size",
                value: 0.0
            }
        );
        let err = SweepRunner::new(1)
            .run_merged(Vec::<u32>::new(), 0, |_, x| vec![x])
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::InvalidParameter {
                name: "shard_size",
                ..
            }
        ));
    }

    #[test]
    fn uneven_job_costs_still_collect_in_order() {
        let items: Vec<u64> = (0..32).collect();
        let out = SweepRunner::new(4).run(items, |_, x| {
            // Make early jobs the slow ones to stress out-of-order finish.
            let spin = (32 - x) * 10_000;
            let mut acc = 0u64;
            for i in 0..spin {
                acc = acc.wrapping_add(i ^ x);
            }
            (x, acc & 1)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }
}
