//! The [`Stepper`] trait: the one contract every simulated system
//! implements so the engine in [`crate::engine`] can drive it.

use eh_obs::Metrics;
use eh_units::{Lux, Seconds};

use crate::error::SimError;

/// Environment sample handed to a stepper for one step.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct StepInput {
    /// Ambient illuminance at the step's start time.
    pub lux: Lux,
}

impl StepInput {
    /// Builds a step input from an illuminance sample.
    pub fn new(lux: Lux) -> Self {
        Self { lux }
    }
}

/// What a stepper reports back after one step.
///
/// The key field is [`advanced`](Self::advanced): a stepper that spent a
/// short measurement dwell (e.g. the 39 ms FOCV `PULSE`) advances
/// simulated time by the dwell only, not the full planned `dt`. The
/// engine clamps the value into `(0, dt]` so a buggy stepper can never
/// stall or overshoot the clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOutput {
    /// Simulated time actually consumed by this step.
    pub advanced: Seconds,
}

impl StepOutput {
    /// The step consumed the full planned `dt`.
    pub fn full(dt: Seconds) -> Self {
        Self { advanced: dt }
    }

    /// The step consumed only `actual` of the planned `dt` (an adaptive
    /// dwell, such as a Voc measurement pulse).
    pub fn dwell(actual: Seconds) -> Self {
        Self { advanced: actual }
    }
}

/// A system the simulation engine can advance through time.
///
/// Implementors own all domain state (converter, storage, tracker, …);
/// the engine owns the clock, the light lookup and the loop. `step`
/// receives the absolute simulation time `t`, the planned slice `dt`
/// (already clamped so `t + dt` never overruns the scenario) and the
/// environment sample, and returns how much time it really consumed.
pub trait Stepper {
    /// The stepper's own error type. Requiring `From<SimError>` lets the
    /// engine surface driver-level failures (bad `dt`, bad window)
    /// through the same channel as domain failures.
    type Error: From<SimError>;

    /// Advances the system by at most `dt`, returning the time consumed.
    fn step(
        &mut self,
        t: Seconds,
        dt: Seconds,
        input: &StepInput,
    ) -> Result<StepOutput, Self::Error>;

    /// The stepper's metric store, when observability is enabled.
    ///
    /// The engine uses this hook to fold its own loop statistics (step
    /// counts, dwell time) into the same store the stepper records its
    /// domain events into. The default is `None`: uninstrumented
    /// steppers pay nothing.
    fn recorder(&mut self) -> Option<&mut Metrics> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_carry_the_duration() {
        assert_eq!(StepOutput::full(Seconds::new(0.02)).advanced.value(), 0.02);
        assert_eq!(
            StepOutput::dwell(Seconds::new(0.039)).advanced.value(),
            0.039
        );
        assert_eq!(StepInput::new(Lux::new(500.0)).lux.value(), 500.0);
    }
}
