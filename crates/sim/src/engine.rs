//! The time-stepping engine: one loop, owned here, driven everywhere.

use eh_env::TimeSeries;
use eh_units::Seconds;

use crate::error::SimError;
use crate::light::Light;
use crate::stepper::{StepInput, Stepper};

/// Drives `stepper` across the whole of `light` in slices of at most
/// `dt`, honouring adaptive dwells: a step that reports it consumed less
/// than the planned slice (e.g. a 39 ms Voc measurement pulse) advances
/// the clock by that dwell only. Returns the total simulated time.
///
/// The reported advance is clamped into `(0, planned]`; non-positive or
/// non-finite advances fall back to the planned slice so a misbehaving
/// stepper cannot stall the clock or overshoot the scenario.
///
/// # Errors
///
/// Returns `SimError::InvalidParameter` (through the stepper's error
/// type) for a non-positive or non-finite `dt`, or for a light source —
/// constant or trace — with non-positive duration (a single-sample trace
/// has zero duration and is rejected rather than silently simulating
/// nothing); propagates any stepper error.
pub fn drive<S: Stepper>(
    stepper: &mut S,
    light: &Light<'_>,
    dt: Seconds,
) -> Result<Seconds, S::Error> {
    if !(dt.value().is_finite() && dt.value() > 0.0) {
        return Err(SimError::InvalidParameter {
            name: "dt",
            value: dt.value(),
        }
        .into());
    }
    let total = light.duration().value();
    if !(total.is_finite() && total > 0.0) {
        return Err(SimError::InvalidParameter {
            name: "duration",
            value: total,
        }
        .into());
    }

    let mut t = 0.0_f64;
    // Loop statistics are accumulated in plain locals — integers and two
    // f64 adds per step — and folded into the stepper's metric store (if
    // any) once, after the loop. Simulated quantities only, so the
    // numbers are identical no matter how the run is scheduled.
    let mut steps = 0u64;
    let mut dwell_steps = 0u64;
    let mut dwell_time = 0.0_f64;
    while t < total {
        let planned = dt.value().min(total - t);
        let input = StepInput::new(light.lux_at(Seconds::new(t)));
        let out = stepper.step(Seconds::new(t), Seconds::new(planned), &input)?;
        let advanced = out.advanced.value();
        let advanced = if advanced.is_finite() && advanced > 0.0 {
            advanced.min(planned)
        } else {
            planned
        };
        steps += 1;
        if advanced < planned {
            dwell_steps += 1;
            dwell_time += advanced;
        }
        t += advanced;
    }
    if let Some(m) = stepper.recorder() {
        use eh_obs::Recorder as _;
        m.add_counter("engine.steps", steps);
        m.add_counter("engine.dwell_steps", dwell_steps);
        let mut drive_span = eh_obs::span!("engine.drive");
        drive_span.add_time(Seconds::new(t));
        drive_span.finish(m);
        let mut dwell_span = eh_obs::span!("engine.dwell");
        dwell_span.add_time(Seconds::new(dwell_time));
        dwell_span.finish(m);
    }
    Ok(Seconds::new(t))
}

/// Splits `trace` into windows of `window` seconds that share their
/// boundary sample, so back-to-back windows resimulate the junction
/// instant with identical state — the contract the endurance runner has
/// always used.
///
/// # Errors
///
/// Returns `SimError::InvalidParameter` when the window spans fewer than
/// two trace samples, and propagates slicing errors from the
/// environment layer.
pub fn split_windows(trace: &TimeSeries, window: Seconds) -> Result<Vec<TimeSeries>, SimError> {
    let samples_per_window = (window.value() / trace.dt().value()).round();
    if !samples_per_window.is_finite() || samples_per_window < 2.0 {
        return Err(SimError::InvalidParameter {
            name: "window",
            value: window.value(),
        });
    }
    let samples_per_window = samples_per_window as usize;

    let mut windows = Vec::new();
    let mut from = 0;
    while from + 1 < trace.len() {
        let to = (from + samples_per_window + 1).min(trace.len());
        windows.push(trace.slice_samples(from, to)?);
        from = to - 1;
    }
    Ok(windows)
}

/// Runs `run` over each window of `trace` in order, collecting the
/// per-window results. This is the shared core of windowed endurance
/// studies: split once, simulate each span, keep the reports.
///
/// # Errors
///
/// Propagates windowing errors from [`split_windows`] and any error the
/// per-window closure returns.
pub fn run_windowed<R, E, F>(trace: &TimeSeries, window: Seconds, mut run: F) -> Result<Vec<R>, E>
where
    E: From<SimError>,
    F: FnMut(&TimeSeries) -> Result<R, E>,
{
    let windows = split_windows(trace, window)?;
    let mut reports = Vec::with_capacity(windows.len());
    for w in &windows {
        reports.push(run(w)?);
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stepper::StepOutput;
    use eh_units::Lux;

    /// Toy stepper: consumes the full slice normally, but every `period`
    /// of simulated time reports a short `dwell` instead, mimicking the
    /// FOCV measurement pulse.
    struct DwellStepper {
        period: f64,
        dwell: f64,
        next_pulse: f64,
        steps: u64,
        pulses: u64,
        clock_check: f64,
    }

    impl DwellStepper {
        fn new(period: f64, dwell: f64) -> Self {
            Self {
                period,
                dwell,
                next_pulse: period,
                steps: 0,
                pulses: 0,
                clock_check: 0.0,
            }
        }
    }

    impl Stepper for DwellStepper {
        type Error = SimError;

        fn step(
            &mut self,
            t: Seconds,
            dt: Seconds,
            _input: &StepInput,
        ) -> Result<StepOutput, SimError> {
            assert!(
                (t.value() - self.clock_check).abs() < 1e-9,
                "engine clock must equal accumulated advances"
            );
            self.steps += 1;
            let out = if t.value() >= self.next_pulse {
                self.next_pulse += self.period;
                self.pulses += 1;
                StepOutput::dwell(Seconds::new(self.dwell.min(dt.value())))
            } else {
                StepOutput::full(dt)
            };
            self.clock_check += out.advanced.value().min(dt.value());
            Ok(out)
        }
    }

    #[test]
    fn dwell_steps_advance_by_the_dwell_only() {
        let mut s = DwellStepper::new(10.0, 0.039);
        let light = Light::constant(Lux::new(500.0), Seconds::new(100.0));
        let end = drive(&mut s, &light, Seconds::new(1.0)).unwrap();
        assert!((end.value() - 100.0).abs() < 1e-9);
        // 9 pulses fire (t = 10, 20, … 90); each costs an extra step of
        // 39 ms plus the catch-up remainder, so the step count exceeds
        // the 100 full-dt steps a fixed-stride loop would take.
        assert_eq!(s.pulses, 9);
        assert!(s.steps > 100);
    }

    /// Stepper that misreports its advance; the engine must clamp it.
    struct Rogue(f64);

    impl Stepper for Rogue {
        type Error = SimError;

        fn step(
            &mut self,
            _t: Seconds,
            _dt: Seconds,
            _i: &StepInput,
        ) -> Result<StepOutput, SimError> {
            Ok(StepOutput::dwell(Seconds::new(self.0)))
        }
    }

    #[test]
    fn rogue_advances_are_clamped_to_the_planned_slice() {
        for bogus in [0.0, -5.0, f64::NAN, 1e9] {
            let mut s = Rogue(bogus);
            let light = Light::constant(Lux::new(1.0), Seconds::new(3.0));
            let end = drive(&mut s, &light, Seconds::new(1.0)).unwrap();
            assert!((end.value() - 3.0).abs() < 1e-9, "bogus advance {bogus}");
        }
    }

    #[test]
    fn invalid_dt_and_duration_are_rejected() {
        let mut s = Rogue(1.0);
        let light = Light::constant(Lux::new(1.0), Seconds::new(3.0));
        assert!(drive(&mut s, &light, Seconds::ZERO).is_err());
        let dark = Light::constant(Lux::new(1.0), Seconds::ZERO);
        assert!(drive(&mut s, &dark, Seconds::new(1.0)).is_err());
    }

    #[test]
    fn zero_duration_trace_is_rejected() {
        // A single-sample trace has zero duration; driving it must be an
        // error like the constant-light case, not a silent 0 s no-op.
        let mut s = Rogue(1.0);
        let one_sample = TimeSeries::new(Seconds::ZERO, Seconds::new(1.0), vec![500.0]).unwrap();
        let light = Light::trace(&one_sample);
        let err = drive(&mut s, &light, Seconds::new(1.0));
        assert!(
            matches!(
                err,
                Err(SimError::InvalidParameter {
                    name: "duration",
                    ..
                })
            ),
            "zero-duration trace must be rejected, got {err:?}"
        );
    }

    #[test]
    fn windows_share_their_boundary_sample() {
        let trace = TimeSeries::new(
            Seconds::ZERO,
            Seconds::new(1.0),
            (0..10).map(f64::from).collect(),
        )
        .unwrap();
        let windows = split_windows(&trace, Seconds::new(3.0)).unwrap();
        assert!(windows.len() >= 3);
        for pair in windows.windows(2) {
            let last = *pair[0].values().last().unwrap();
            let first = pair[1].values()[0];
            assert_eq!(last, first, "adjacent windows must share a sample");
        }
        let covered: usize = windows.iter().map(|w| w.len() - 1).sum();
        assert_eq!(covered, trace.len() - 1);
    }

    #[test]
    fn sub_sample_window_is_rejected() {
        let trace = TimeSeries::new(Seconds::ZERO, Seconds::new(1.0), vec![0.0, 1.0, 2.0]).unwrap();
        assert!(split_windows(&trace, Seconds::new(0.4)).is_err());
    }
}
