//! Error type for the simulation engine.

use std::error::Error;
use std::fmt;

use eh_env::EnvError;

/// Errors raised by the simulation engine itself, before a stepper's own
/// error type gets involved.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A driver parameter (time step, duration, window, worker count) was
    /// non-positive or non-finite.
    InvalidParameter {
        /// Which parameter was rejected.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An environment-layer error while slicing or sampling a time series.
    Env(EnvError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidParameter { name, value } => {
                write!(f, "invalid simulation parameter `{name}`: {value}")
            }
            SimError::Env(e) => write!(f, "environment error: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Env(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EnvError> for SimError {
    fn from(e: EnvError) -> Self {
        SimError::Env(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_parameter() {
        let e = SimError::InvalidParameter {
            name: "dt",
            value: -1.0,
        };
        assert!(e.to_string().contains("dt"));
        assert!(e.to_string().contains("-1"));
    }
}
