//! Light profiles: the environment side of a scenario.

use std::borrow::Cow;

use eh_env::TimeSeries;
use eh_units::{Lux, Seconds};

/// An illuminance profile over a scenario's duration.
///
/// Unifies the two shapes every layer of the workspace used to
/// special-case: a constant level held for a fixed duration, and a
/// recorded/synthesised [`TimeSeries`]. Borrowed traces avoid cloning in
/// sweeps where many scenarios share one day-long profile.
#[derive(Debug, Clone, PartialEq)]
pub enum Light<'a> {
    /// A constant illuminance held for `duration`.
    Constant {
        /// The held level.
        lux: Lux,
        /// How long the level is held.
        duration: Seconds,
    },
    /// A time-varying profile, sampled with linear interpolation.
    Trace(Cow<'a, TimeSeries>),
}

impl Light<'_> {
    /// A constant level held for `duration`.
    pub fn constant(lux: Lux, duration: Seconds) -> Light<'static> {
        Light::Constant { lux, duration }
    }

    /// Borrows a time series as the profile.
    pub fn trace(series: &TimeSeries) -> Light<'_> {
        Light::Trace(Cow::Borrowed(series))
    }

    /// Takes ownership of a time series as the profile.
    pub fn owned(series: TimeSeries) -> Light<'static> {
        Light::Trace(Cow::Owned(series))
    }

    /// Total simulated duration of the profile.
    pub fn duration(&self) -> Seconds {
        match self {
            Light::Constant { duration, .. } => *duration,
            Light::Trace(series) => series.duration(),
        }
    }

    /// Illuminance at `rel` seconds after the profile's start.
    ///
    /// Trace lookups clamp negatives to zero and treat out-of-range
    /// times as dark, matching the prior per-layer loops.
    pub fn lux_at(&self, rel: Seconds) -> Lux {
        match self {
            Light::Constant { lux, .. } => *lux,
            Light::Trace(series) => {
                let t = series.start_time() + rel;
                Lux::new(series.value_at(t).unwrap_or(0.0).max(0.0))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> TimeSeries {
        TimeSeries::new(
            Seconds::new(10.0),
            Seconds::new(1.0),
            vec![0.0, 100.0, 200.0],
        )
        .unwrap()
    }

    #[test]
    fn constant_holds_its_level() {
        let light = Light::constant(Lux::new(500.0), Seconds::new(60.0));
        assert_eq!(light.duration().value(), 60.0);
        assert_eq!(light.lux_at(Seconds::new(59.9)).value(), 500.0);
    }

    #[test]
    fn trace_is_relative_to_its_start_time() {
        let series = ramp();
        let light = Light::trace(&series);
        assert_eq!(light.duration().value(), 2.0);
        assert_eq!(light.lux_at(Seconds::new(0.0)).value(), 0.0);
        assert_eq!(light.lux_at(Seconds::new(1.5)).value(), 150.0);
    }

    #[test]
    fn out_of_range_and_negative_samples_read_dark() {
        let series = TimeSeries::new(Seconds::ZERO, Seconds::new(1.0), vec![-50.0, -50.0]).unwrap();
        let light = Light::owned(series);
        assert_eq!(light.lux_at(Seconds::new(0.5)).value(), 0.0);
        assert_eq!(light.lux_at(Seconds::new(99.0)).value(), 0.0);
    }
}
