//! Energy bookkeeping shared by report-producing steppers.

use eh_units::Joules;

/// Running energy totals a stepper accrues while being driven.
///
/// Every layer that produces a report (core system, node simulation,
/// endurance windows) tracks the same ledgers; this struct owns the
/// arithmetic once so reports are just a snapshot of an accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Accumulator {
    /// Energy delivered by the harvester into storage.
    pub gross_energy: Joules,
    /// Energy burned by the tracker's own electronics.
    pub overhead_energy: Joules,
    /// Energy the load asked for.
    pub load_demand: Joules,
    /// Energy the load actually received.
    pub load_served: Joules,
    /// Energy dissipated in the conversion path (converter losses).
    pub loss_energy: Joules,
    /// Energy burned executing the tracker's control law (digital
    /// trackers only; zero for analog implementations).
    pub compute_energy: Joules,
    /// Number of open-circuit / short-circuit measurements taken.
    pub measurements: u64,
    /// Number of control decisions taken (tracker `step` calls).
    pub decisions: u64,
}

impl Accumulator {
    /// A zeroed ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Credits harvested energy.
    #[inline]
    pub fn add_harvest(&mut self, e: Joules) {
        self.gross_energy += e;
    }

    /// Debits tracker overhead.
    #[inline]
    pub fn add_overhead(&mut self, e: Joules) {
        self.overhead_energy += e;
    }

    /// Records a load request and how much of it was served.
    #[inline]
    pub fn add_load(&mut self, demand: Joules, served: Joules) {
        self.load_demand += demand;
        self.load_served += served;
    }

    /// Debits energy dissipated in the conversion path.
    #[inline]
    pub fn add_loss(&mut self, e: Joules) {
        self.loss_energy += e;
    }

    /// Counts one measurement interruption (Voc or Isc).
    #[inline]
    pub fn count_measurement(&mut self) {
        self.measurements += 1;
    }

    /// Debits control-law compute energy.
    #[inline]
    pub fn add_compute(&mut self, e: Joules) {
        self.compute_energy += e;
    }

    /// Counts one control decision.
    #[inline]
    pub fn count_decision(&mut self) {
        self.decisions += 1;
    }

    /// Harvested energy net of tracker overhead and compute.
    pub fn net_energy(&self) -> Joules {
        self.gross_energy - self.overhead_energy - self.compute_energy
    }

    /// Fraction of demanded load energy that was served (1.0 when the
    /// load never asked for anything).
    pub fn load_availability(&self) -> f64 {
        if self.load_demand.value() <= 0.0 {
            1.0
        } else {
            self.load_served / self.load_demand
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledgers_accumulate_independently() {
        let mut a = Accumulator::new();
        a.add_harvest(Joules::new(3.0));
        a.add_overhead(Joules::new(0.5));
        a.add_load(Joules::new(2.0), Joules::new(1.0));
        a.add_loss(Joules::new(0.25));
        a.add_compute(Joules::new(0.125));
        a.count_measurement();
        a.count_measurement();
        a.count_decision();
        assert_eq!(a.net_energy(), Joules::new(2.375));
        assert_eq!(a.loss_energy, Joules::new(0.25));
        assert_eq!(a.compute_energy, Joules::new(0.125));
        assert_eq!(a.load_availability(), 0.5);
        assert_eq!(a.measurements, 2);
        assert_eq!(a.decisions, 1);
    }

    #[test]
    fn idle_load_counts_as_fully_available() {
        assert_eq!(Accumulator::new().load_availability(), 1.0);
    }
}
