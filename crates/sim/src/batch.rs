//! Shard-level parallel fold: the scheduling half of the batch engine.
//!
//! [`SweepRunner::run_merged`] hands items to the worker closure one at
//! a time, which is the right shape when every item is an independent
//! simulation. A batch engine wants the *whole contiguous shard* at
//! once, so it can lay the shard's state out as struct-of-arrays and
//! sweep it with one inner loop. [`BatchRunner`] owns that contract:
//! it chunks the items, hands each worker `(first_global_index, shard)`
//! pairs, and folds the shard reports **in shard index order**, so the
//! merged result is bit-for-bit identical at any worker count — the
//! same determinism contract `run_merged` gives per-item folds.
//!
//! The shard size is validated once at construction:
//! [`BatchRunner::new`] rejects zero with a typed
//! [`SimError::InvalidParameter`] instead of silently degenerating.

use crate::error::SimError;
use crate::merge::Mergeable;
use crate::sweep::SweepRunner;

/// Chunks `items` into `(first_global_index, shard_items)` pairs of at
/// most `shard_size` items each. `shard_size` must be non-zero (callers
/// validate; this is an internal helper).
pub(crate) fn chunk_shards<T>(items: Vec<T>, shard_size: usize) -> Vec<(usize, Vec<T>)> {
    debug_assert!(shard_size > 0, "shard_size validated by callers");
    let mut shards: Vec<(usize, Vec<T>)> = Vec::with_capacity(items.len().div_ceil(shard_size));
    for (i, item) in items.into_iter().enumerate() {
        match shards.last_mut() {
            Some((_, shard)) if shard.len() < shard_size => shard.push(item),
            _ => shards.push((i, {
                let mut shard = Vec::with_capacity(shard_size);
                shard.push(item);
                shard
            })),
        }
    }
    shards
}

/// Fans contiguous shards of work across [`SweepRunner`] workers and
/// folds the per-shard reports in shard index order.
///
/// This is the scheduling layer of the batch-stepped fleet engine: the
/// worker closure receives the whole shard (plus the global index of
/// its first item) and is free to transpose it into struct-of-arrays
/// state and advance every lane with one inner loop. Because the shard
/// boundaries and the fold order are fixed by the input — never by the
/// scheduler — the merged report is bit-identical at any worker count,
/// and identical to a per-item fold at the same shard size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchRunner {
    runner: SweepRunner,
    shard_size: usize,
}

impl BatchRunner {
    /// A runner with a fixed worker count (clamped to at least 1) and a
    /// fixed shard size.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] when `shard_size` is zero
    /// — a zero shard cannot make progress and silently clamping it
    /// would hide the caller's bug.
    pub fn new(workers: usize, shard_size: usize) -> Result<Self, SimError> {
        Self::from_runner(SweepRunner::new(workers), shard_size)
    }

    /// Wraps an existing [`SweepRunner`] with a shard size.
    ///
    /// # Errors
    ///
    /// As [`BatchRunner::new`]: zero `shard_size` is a typed error.
    pub fn from_runner(runner: SweepRunner, shard_size: usize) -> Result<Self, SimError> {
        if shard_size == 0 {
            return Err(SimError::InvalidParameter {
                name: "shard_size",
                value: 0.0,
            });
        }
        Ok(Self { runner, shard_size })
    }

    /// The worker count this runner will use.
    pub fn workers(&self) -> usize {
        self.runner.workers()
    }

    /// The number of items per shard.
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// Applies `f` to every contiguous shard — `f(first_global_index,
    /// shard_items)` — in parallel, and folds the shard reports in
    /// shard index order. Returns `None` for empty input.
    pub fn run_shards<T, R, F>(&self, items: Vec<T>, f: F) -> Option<R>
    where
        T: Send,
        R: Mergeable + Send,
        F: Fn(usize, Vec<T>) -> R + Sync,
    {
        if items.is_empty() {
            return None;
        }
        let shards = chunk_shards(items, self.shard_size);
        let shard_reports = self.runner.run(shards, |_, (base, shard)| f(base, shard));
        shard_reports.into_iter().reduce(|mut acc, r| {
            acc.merge(r);
            acc
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_shard_size_is_a_typed_error() {
        let err = BatchRunner::new(4, 0).unwrap_err();
        assert_eq!(
            err,
            SimError::InvalidParameter {
                name: "shard_size",
                value: 0.0
            }
        );
        let err = BatchRunner::from_runner(SweepRunner::new(2), 0).unwrap_err();
        assert!(matches!(
            err,
            SimError::InvalidParameter {
                name: "shard_size",
                ..
            }
        ));
    }

    #[test]
    fn shards_are_contiguous_with_correct_bases() {
        let shards = chunk_shards((0..10).collect::<Vec<_>>(), 4);
        assert_eq!(
            shards,
            vec![
                (0, vec![0, 1, 2, 3]),
                (4, vec![4, 5, 6, 7]),
                (8, vec![8, 9]),
            ]
        );
    }

    #[test]
    fn run_shards_is_worker_and_shard_invariant() {
        let items: Vec<u32> = (0..97).collect();
        let reference: Vec<u32> = items.iter().map(|x| x * 3).collect();
        for workers in [1, 2, 5, 16] {
            for shard_size in [1, 7, 32, 257] {
                let merged = BatchRunner::new(workers, shard_size)
                    .expect("non-zero shard size")
                    .run_shards(items.clone(), |base, shard| {
                        shard
                            .into_iter()
                            .enumerate()
                            .map(|(offset, x)| {
                                assert_eq!((base + offset) as u32, x);
                                x * 3
                            })
                            .collect::<Vec<_>>()
                    })
                    .expect("non-empty input");
                assert_eq!(merged, reference, "workers={workers} shard={shard_size}");
            }
        }
    }

    #[test]
    fn run_shards_empty_input_is_none() {
        let out: Option<Vec<u8>> = BatchRunner::new(4, 8)
            .unwrap()
            .run_shards(Vec::<u8>::new(), |_, shard| shard);
        assert!(out.is_none());
    }
}
