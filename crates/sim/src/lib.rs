//! `eh-sim` — the shared simulation engine.
//!
//! Every experiment layer in this workspace used to own a private copy
//! of the same loop: advance a clock through a light profile, hand each
//! slice to the system under test, honour the short measurement dwell
//! when the FOCV tracker fires its 39 ms `PULSE`, and accumulate energy
//! ledgers into a report. This crate owns that loop once:
//!
//! - [`Stepper`] is the contract a simulated system implements;
//! - [`Light`] unifies constant-level and trace-driven illumination;
//! - [`drive`] is the time-stepping engine with adaptive-dwell clamping;
//! - [`split_windows`]/[`run_windowed`] are the shared windowed-endurance
//!   core;
//! - [`Scenario`] binds a stepper to a light profile and a `dt`;
//! - [`SweepRunner`] fans scenarios across scoped threads with stable,
//!   input-order collection, so sweeps are bit-for-bit deterministic
//!   regardless of worker count;
//! - [`Mergeable`] + [`SweepRunner::run_merged`] are the sharded
//!   map-reduce used by fleet-scale aggregation: workers reduce their
//!   own shards, shard aggregates fold in shard index order, and the
//!   result is bit-identical at any worker count and shard size;
//! - [`BatchRunner`] is the shard-at-once variant of the same contract:
//!   the worker closure receives a whole contiguous shard (for
//!   struct-of-arrays batch stepping) and shard reports fold in shard
//!   index order;
//! - [`Accumulator`] is the common energy ledger behind reports.
//!
//! The crate is std-only by design: the build environment has no crate
//! registry access, so parallelism comes from `std::thread::scope`
//! rather than an external thread pool.

mod accumulator;
mod batch;
mod engine;
mod error;
mod light;
mod merge;
mod scenario;
mod stepper;
mod sweep;

pub use accumulator::Accumulator;
pub use batch::BatchRunner;
pub use engine::{drive, run_windowed, split_windows};
pub use error::SimError;
pub use light::Light;
pub use merge::Mergeable;
pub use scenario::Scenario;
pub use stepper::{StepInput, StepOutput, Stepper};
pub use sweep::SweepRunner;
