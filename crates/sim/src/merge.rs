//! Order-independent report merging for sharded sweeps.
//!
//! Fleet-scale runs produce one report per node and fold them into a
//! single aggregate. For the aggregate to be bit-identical at any worker
//! count, the fold must not depend on completion order: workers reduce
//! their own shards locally, and the shard results are folded in shard
//! index order afterwards (see [`crate::SweepRunner::run_merged`]).

/// A report that can absorb another report of the same type.
///
/// Implementations should be associative in the sense that folding a
/// fixed sequence left-to-right gives one well-defined result; the
/// runner guarantees it always folds in input order, so a lawful `merge`
/// makes the aggregate independent of how the work was sharded across
/// workers.
pub trait Mergeable {
    /// Absorbs `other` into `self`.
    fn merge(&mut self, other: Self);
}

/// Errors short-circuit: the first error in input order wins, and later
/// successes are discarded — exactly what a sequential fold over
/// `Result`s would produce.
impl<R: Mergeable, E> Mergeable for Result<R, E> {
    fn merge(&mut self, other: Self) {
        match (self.is_ok(), other) {
            (true, Ok(o)) => {
                if let Ok(r) = self.as_mut() {
                    r.merge(o);
                }
            }
            (true, Err(e)) => *self = Err(e),
            // Already an error: keep the earliest one.
            (false, _) => {}
        }
    }
}

impl<T> Mergeable for Vec<T> {
    fn merge(&mut self, mut other: Self) {
        self.append(&mut other);
    }
}

/// Metric stores merge by absorbing the later shard: counters,
/// histograms, spans and the energy ledger add; gauges take the later
/// shard's value. Because a store only ever holds simulated quantities,
/// folding shard stores in shard-index order yields the same aggregate
/// at any worker count.
impl Mergeable for eh_obs::Metrics {
    fn merge(&mut self, other: Self) {
        self.merge_from(other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_merge_appends() {
        let mut a = vec![1, 2];
        a.merge(vec![3]);
        assert_eq!(a, vec![1, 2, 3]);
    }

    #[test]
    fn result_merge_keeps_first_error() {
        let mut a: Result<Vec<u8>, &str> = Ok(vec![1]);
        a.merge(Ok(vec![2]));
        assert_eq!(a, Ok(vec![1, 2]));
        a.merge(Err("first"));
        a.merge(Ok(vec![3]));
        a.merge(Err("second"));
        assert_eq!(a, Err("first"));
    }
}
