//! Scenarios: a stepper bound to a light profile and a time step.

use eh_units::Seconds;

use crate::engine::drive;
use crate::light::Light;
use crate::stepper::Stepper;

/// One labelled simulation run: a stepper, the light it sees, and the
/// nominal time step to drive it with. Scenarios are the unit of work a
/// [`crate::SweepRunner`] fans out across threads.
#[derive(Debug, Clone)]
pub struct Scenario<'a, S> {
    label: String,
    stepper: S,
    light: Light<'a>,
    dt: Seconds,
}

impl<'a, S: Stepper> Scenario<'a, S> {
    /// Binds a stepper to a light profile under a human-readable label.
    pub fn new(label: impl Into<String>, stepper: S, light: Light<'a>, dt: Seconds) -> Self {
        Self {
            label: label.into(),
            stepper,
            light,
            dt,
        }
    }

    /// The scenario's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Drives the stepper across the whole light profile, returning the
    /// finished stepper so the caller can extract its report.
    ///
    /// # Errors
    ///
    /// Propagates engine and stepper errors from [`drive`].
    pub fn run(mut self) -> Result<S, S::Error> {
        drive(&mut self.stepper, &self.light, self.dt)?;
        Ok(self.stepper)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SimError;
    use crate::stepper::{StepInput, StepOutput};
    use eh_units::Lux;

    struct Counter(u64);

    impl Stepper for Counter {
        type Error = SimError;

        fn step(
            &mut self,
            _t: Seconds,
            dt: Seconds,
            _i: &StepInput,
        ) -> Result<StepOutput, SimError> {
            self.0 += 1;
            Ok(StepOutput::full(dt))
        }
    }

    #[test]
    fn run_returns_the_finished_stepper() {
        let sc = Scenario::new(
            "count",
            Counter(0),
            Light::constant(Lux::new(1.0), Seconds::new(5.0)),
            Seconds::new(1.0),
        );
        assert_eq!(sc.label(), "count");
        let done = sc.run().unwrap();
        assert_eq!(done.0, 5);
    }
}
