//! The behavioural tracker interface used for day-scale comparisons.
//!
//! Every MPPT technique the paper discusses reduces, at behavioural
//! level, to a policy that decides each step (a) whether the PV module
//! stays connected to the converter and (b) what voltage the converter
//! should hold it at — paid for by a technique-specific quiescent
//! overhead. The closed-loop engine in `eh-node` drives implementations
//! of [`MpptController`] against the same cell, converter and light
//! trace, which is exactly the comparison the paper's §I and §IV-B make
//! in prose.

use eh_units::{Amps, Lux, Seconds, Volts, Watts};

use crate::compute::ComputeCost;

/// What a tracker can observe at the start of a control step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Simulation time.
    pub time: Seconds,
    /// The PV operating voltage applied during the previous step.
    pub pv_voltage: Volts,
    /// The PV current drawn during the previous step (what a
    /// sense resistor in the power path measures).
    pub pv_current: Amps,
    /// The PV power extracted during the previous step (what a
    /// hill-climbing tracker's sense resistor measures).
    pub pv_power: Watts,
    /// The open-circuit voltage measured during the previous step —
    /// present only if the tracker disconnected the module then.
    pub voc_measurement: Option<Volts>,
    /// The short-circuit current measured during the previous step —
    /// present only if the tracker shorted the module then (fractional-Isc
    /// trackers).
    pub isc_measurement: Option<Amps>,
    /// Ambient illuminance — populated by the engine only for trackers
    /// that declare [`MpptController::requires_light_sensor`] (a pilot
    /// cell or photodiode in hardware terms).
    pub ambient_lux: Option<Lux>,
}

impl Observation {
    /// A blank observation at a given time (nothing measured yet).
    pub fn at(time: Seconds) -> Self {
        Self {
            time,
            pv_voltage: Volts::ZERO,
            pv_current: Amps::ZERO,
            pv_power: Watts::ZERO,
            voc_measurement: None,
            isc_measurement: None,
            ambient_lux: None,
        }
    }
}

/// A tracker's decision for the coming step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrackerCommand {
    /// Hand the module to the converter, regulated at the given voltage.
    Connect(Volts),
    /// Disconnect the module to measure its open-circuit voltage
    /// (the paper's PULSE).
    MeasureVoc,
    /// Short the module to measure its short-circuit current
    /// (fractional-Isc trackers).
    MeasureIsc,
}

impl TrackerCommand {
    /// A connected command at the given target.
    pub fn connect_at(target_voltage: Volts) -> Self {
        Self::Connect(target_voltage)
    }

    /// A disconnect-and-measure-Voc command.
    pub fn measure() -> Self {
        Self::MeasureVoc
    }

    /// Whether the module stays connected to the converter.
    pub fn is_connect(&self) -> bool {
        matches!(self, Self::Connect(_))
    }

    /// The regulation target, if connected.
    pub fn target_voltage(&self) -> Option<Volts> {
        match self {
            Self::Connect(v) => Some(*v),
            _ => None,
        }
    }
}

/// A maximum-power-point-tracking policy plus its energy cost.
pub trait MpptController {
    /// Human-readable technique name (used in reports).
    fn name(&self) -> &str;

    /// Decides the next step's command.
    fn step(&mut self, obs: &Observation, dt: Seconds) -> TrackerCommand;

    /// The tracker's own quiescent power draw (the quantity the whole
    /// paper is about minimising).
    fn overhead_power(&self) -> Watts;

    /// Whether the technique can bootstrap from a completely dead system.
    fn can_cold_start(&self) -> bool;

    /// Whether the technique needs an ambient light sensor (pilot cell or
    /// photodiode). The engine only populates
    /// [`Observation::ambient_lux`] for trackers that return `true`.
    fn requires_light_sensor(&self) -> bool {
        false
    }

    /// The digital cost of one control decision (ops per decision ×
    /// energy per op), charged by the closed-loop engines on every
    /// [`MpptController::step`] call, separately from the quiescent
    /// [`MpptController::overhead_power`]. Analog implementations
    /// default to [`ComputeCost::ZERO`].
    fn compute_cost(&self) -> ComputeCost {
        ComputeCost::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_constructors() {
        let c = TrackerCommand::connect_at(Volts::new(3.0));
        assert!(c.is_connect());
        assert_eq!(c.target_voltage(), Some(Volts::new(3.0)));
        let m = TrackerCommand::measure();
        assert!(!m.is_connect());
        assert_eq!(m.target_voltage(), None);
        assert_eq!(m, TrackerCommand::MeasureVoc);
        assert!(!TrackerCommand::MeasureIsc.is_connect());
    }

    #[test]
    fn blank_observation() {
        let o = Observation::at(Seconds::new(5.0));
        assert_eq!(o.time, Seconds::new(5.0));
        assert!(o.voc_measurement.is_none());
        assert!(o.isc_measurement.is_none());
        assert!(o.ambient_lux.is_none());
    }

    #[test]
    fn trait_is_object_safe() {
        fn _takes_dyn(_c: &mut dyn MpptController) {}
    }
}
