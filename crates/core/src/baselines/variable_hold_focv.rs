//! Variable hold-period FOCV: the paper's Eq. 2 turned into a control
//! law.

use eh_units::{Seconds, Volts, Watts};

use crate::compute::ComputeCost;
use crate::controller::{MpptController, Observation, TrackerCommand};
use crate::error::CoreError;

/// FOCV sample-and-hold with a hold period that adapts to illuminance
/// volatility.
///
/// The paper's Eq. 2 bounds the tracking error of a sample-and-hold
/// FOCV stage by the worst-case mean `Voc` excursion *within* one hold
/// period: a 69 s hold is nearly free on a desk (12.7 mV mean error)
/// but measurably stale on a semi-mobile node (24.1 mV), and the
/// prescribed remedy is to shorten the period when the light is
/// volatile. This tracker implements that remedy with the cheapest
/// digital estimator that works: an exponentially-weighted moving
/// average of the relative excursion between consecutive `Voc` samples,
/// mapped to a hold period
///
/// ```text
/// period = clamp(base · ε₀ / (ε₀ + volatility), min_period, base)
/// ```
///
/// so a perfectly steady scene (`volatility = 0`) reproduces the fixed
/// 69 s schedule *exactly* — bit-identical decisions, because
/// `base · ε₀/ε₀ = base · 1.0 = base` in IEEE arithmetic — while a
/// scene whose samples move by the sensitivity `ε₀` per period already
/// halves it.
#[derive(Debug, Clone)]
pub struct VariableHoldFocv {
    k: f64,
    base_period: Seconds,
    min_period: Seconds,
    pulse_width: Seconds,
    overhead: Watts,
    sensitivity: f64,
    alpha: f64,
    held_voc: Option<Volts>,
    volatility: f64,
    current_period: Seconds,
    since_sample: Seconds,
    measuring: bool,
}

impl VariableHoldFocv {
    /// Creates a tracker with explicit parameters.
    ///
    /// `sensitivity` is the relative per-sample `Voc` excursion ε₀ at
    /// which the period halves; `alpha` is the EWMA gain of the
    /// volatility estimator.
    ///
    /// # Errors
    ///
    /// Rejects `k` outside `(0, 1)`, a non-positive or inverted period
    /// band, a pulse width not shorter than the minimum period,
    /// non-positive `sensitivity`, `alpha` outside `(0, 1]`, or negative
    /// overhead.
    pub fn new(
        k: f64,
        base_period: Seconds,
        min_period: Seconds,
        pulse_width: Seconds,
        overhead: Watts,
        sensitivity: f64,
        alpha: f64,
    ) -> Result<Self, CoreError> {
        if !(k.is_finite() && k > 0.0 && k < 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "k",
                value: k,
            });
        }
        if !(min_period.value() > 0.0 && base_period.value() >= min_period.value()) {
            return Err(CoreError::InvalidParameter {
                name: "period_band",
                value: min_period.value(),
            });
        }
        if !(pulse_width.value() > 0.0 && pulse_width.value() < min_period.value()) {
            return Err(CoreError::InvalidParameter {
                name: "pulse_width",
                value: pulse_width.value(),
            });
        }
        if !(sensitivity.is_finite() && sensitivity > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "sensitivity",
                value: sensitivity,
            });
        }
        if !(alpha.is_finite() && alpha > 0.0 && alpha <= 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "alpha",
                value: alpha,
            });
        }
        if !(overhead.value().is_finite() && overhead.value() >= 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "overhead",
                value: overhead.value(),
            });
        }
        Ok(Self {
            k,
            base_period,
            min_period,
            pulse_width,
            overhead,
            sensitivity,
            alpha,
            held_voc: None,
            volatility: 0.0,
            current_period: base_period,
            // Fire the first measurement immediately (the power-up PULSE).
            since_sample: base_period,
            measuring: false,
        })
    }

    /// Eq.-2-tuned parameters on the prototype's operating point:
    /// `k = 0.596`, a 69 s base period shortened down to 15 s, the 39 ms
    /// PULSE, the paper's 8 µA × 3.3 V metrology overhead, ε₀ = 2 %
    /// relative excursion per sample, EWMA gain 0.5.
    ///
    /// # Errors
    ///
    /// Never fails for these constants; mirrors [`VariableHoldFocv::new`].
    pub fn eq2_tuned() -> Result<Self, CoreError> {
        Self::new(
            0.596,
            Seconds::new(69.0),
            Seconds::new(15.0),
            Seconds::from_milli(39.0),
            Volts::new(3.3) * eh_units::Amps::from_micro(8.0),
            0.02,
            0.5,
        )
    }

    /// The trimmed FOCV factor.
    pub fn k(&self) -> f64 {
        self.k
    }

    /// The current (adapted) hold period.
    pub fn current_period(&self) -> Seconds {
        self.current_period
    }

    /// The base (maximum) hold period.
    pub fn base_period(&self) -> Seconds {
        self.base_period
    }

    /// The measurement pulse width.
    pub fn pulse_width(&self) -> Seconds {
        self.pulse_width
    }

    /// The EWMA estimate of relative per-sample `Voc` excursion.
    pub fn volatility(&self) -> f64 {
        self.volatility
    }

    /// The currently held open-circuit voltage, if a sample exists.
    pub fn held_voc(&self) -> Option<Volts> {
        self.held_voc
    }
}

impl MpptController for VariableHoldFocv {
    fn name(&self) -> &str {
        "FOCV variable hold (Eq. 2)"
    }

    fn step(&mut self, obs: &Observation, dt: Seconds) -> TrackerCommand {
        // Capture the measurement made during a disconnect step.
        if self.measuring {
            if let Some(voc) = obs.voc_measurement {
                if let Some(prev) = self.held_voc {
                    if prev.value() > 0.0 {
                        let excursion = (voc - prev).value().abs() / prev.value();
                        self.volatility =
                            (1.0 - self.alpha) * self.volatility + self.alpha * excursion;
                    }
                }
                self.held_voc = Some(voc);
                // Eq. 2 adaptation: the staleness error grows with the
                // within-period excursion, so shrink the period as the
                // observed excursion grows. volatility == 0 maps to
                // exactly the base period.
                let shrink = self.sensitivity / (self.sensitivity + self.volatility);
                let period = (self.base_period.value() * shrink)
                    .clamp(self.min_period.value(), self.base_period.value());
                self.current_period = Seconds::new(period);
            }
            self.measuring = false;
            self.since_sample = Seconds::ZERO;
        } else {
            self.since_sample += dt;
        }

        if self.since_sample >= self.current_period {
            self.measuring = true;
            return TrackerCommand::measure();
        }

        match self.held_voc {
            Some(voc) => TrackerCommand::connect_at(voc * self.k),
            // No valid sample yet (ACTIVE low): converter stays off.
            None => TrackerCommand::measure(),
        }
    }

    fn overhead_power(&self) -> Watts {
        self.overhead
    }

    fn can_cold_start(&self) -> bool {
        // The underlying sample-and-hold chain is the paper's; the
        // period trimmer only runs once the system is alive.
        true
    }

    fn compute_cost(&self) -> ComputeCost {
        // One EWMA update plus one scaled clamp, and only at capture
        // steps — the cheapest digital tracker in the set.
        ComputeCost::mcu_class(12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::FocvSampleHold;
    use eh_units::Lux;

    fn obs(voc: Option<f64>) -> Observation {
        Observation {
            pv_voltage: Volts::new(3.0),
            pv_power: Watts::from_micro(100.0),
            voc_measurement: voc.map(Volts::new),
            ambient_lux: Some(Lux::new(1000.0)),
            ..Observation::at(Seconds::ZERO)
        }
    }

    #[test]
    fn validation() {
        let mk = |k, base: f64, min: f64, pulse: f64, sens, alpha| {
            VariableHoldFocv::new(
                k,
                Seconds::new(base),
                Seconds::new(min),
                Seconds::new(pulse),
                Watts::ZERO,
                sens,
                alpha,
            )
        };
        assert!(mk(1.2, 69.0, 15.0, 0.039, 0.02, 0.5).is_err());
        assert!(
            mk(0.6, 10.0, 15.0, 0.039, 0.02, 0.5).is_err(),
            "inverted band"
        );
        assert!(
            mk(0.6, 69.0, 15.0, 20.0, 0.02, 0.5).is_err(),
            "pulse >= min"
        );
        assert!(mk(0.6, 69.0, 15.0, 0.039, 0.0, 0.5).is_err());
        assert!(mk(0.6, 69.0, 15.0, 0.039, 0.02, 1.5).is_err());
        assert!(mk(0.6, 69.0, 15.0, 0.039, 0.02, 0.5).is_ok());
    }

    #[test]
    fn volatile_samples_shorten_the_period() {
        let mut t = VariableHoldFocv::eq2_tuned().unwrap();
        // Power-up PULSE, then alternating Voc samples 10 % apart.
        t.step(&obs(None), Seconds::new(1.0));
        let mut voc = 5.0;
        for _ in 0..6 {
            t.step(&obs(Some(voc)), Seconds::new(1.0));
            // Walk past the (possibly shortened) period to the next PULSE.
            while t.step(&obs(None), Seconds::new(1.0)).is_connect() {}
            voc = if voc > 4.9 { 4.5 } else { 5.0 };
        }
        assert!(t.volatility() > 0.01, "volatility {}", t.volatility());
        assert!(
            t.current_period() < t.base_period(),
            "period must shorten, still {}",
            t.current_period()
        );
    }

    #[test]
    fn calm_samples_recover_the_base_period() {
        let mut t = VariableHoldFocv::eq2_tuned().unwrap();
        t.step(&obs(None), Seconds::new(1.0));
        // Agitate, then hold steady.
        for voc in [5.0, 4.0, 5.0, 4.0] {
            t.step(&obs(Some(voc)), Seconds::new(1.0));
            while t.step(&obs(None), Seconds::new(1.0)).is_connect() {}
        }
        let agitated = t.current_period();
        assert!(agitated < t.base_period());
        for _ in 0..24 {
            t.step(&obs(Some(4.0)), Seconds::new(1.0));
            while t.step(&obs(None), Seconds::new(1.0)).is_connect() {}
        }
        assert!(
            t.current_period() > agitated,
            "period must relax back toward base"
        );
    }

    #[test]
    fn zero_volatility_degenerates_to_the_fixed_tracker_bitwise() {
        // Constant Voc keeps the volatility estimator at exactly 0.0, so
        // every decision — including the step *boundaries* — must match
        // the fixed 69 s tracker bit for bit.
        let mut adaptive = VariableHoldFocv::eq2_tuned().unwrap();
        let mut fixed = FocvSampleHold::paper_prototype().unwrap();
        let dts = [1.0, 0.039, 13.0, 68.0, 0.961, 69.0, 5.0, 600.0, 33.3];
        let mut measuring = false;
        for (i, dt) in dts.iter().cycle().take(200).enumerate() {
            let o = obs(measuring.then_some(5.44));
            let a = adaptive.step(&o, Seconds::new(*dt));
            let f = fixed.step(&o, Seconds::new(*dt));
            assert_eq!(
                a.target_voltage().map(|v| v.value().to_bits()),
                f.target_voltage().map(|v| v.value().to_bits()),
                "step {i}: {a:?} vs {f:?}"
            );
            measuring = !a.is_connect();
        }
        assert_eq!(adaptive.volatility(), 0.0);
        assert_eq!(
            adaptive.current_period().value().to_bits(),
            adaptive.base_period().value().to_bits()
        );
    }

    #[test]
    fn declares_its_costs() {
        let t = VariableHoldFocv::eq2_tuned().unwrap();
        assert!((t.overhead_power().as_micro() - 26.4).abs() < 0.1);
        assert!(t.can_cold_start());
        assert!(!t.requires_light_sensor());
        assert!(!t.compute_cost().is_free());
        assert!(
            t.compute_cost().ops_per_decision < 60,
            "cheapest digital tracker"
        );
    }
}
