//! Adaptive-k FOCV: sample-and-hold with a slowly re-learned fraction.

use eh_units::{Seconds, Volts, Watts};

use crate::compute::ComputeCost;
use crate::controller::{MpptController, Observation, TrackerCommand};
use crate::error::CoreError;

/// FOCV sample-and-hold whose fraction `k` is re-learned online.
///
/// The paper trims `k = 0.596` once, against one cell at one
/// temperature. Table I's premise — `Vmpp/Voc` is nearly constant — is
/// only *nearly* true: temperature drift and cell aging move the true
/// fraction by a few percent over a deployment, and a fixed trim leaks
/// that margin forever. This tracker keeps the analog sample-and-hold
/// chain intact and adds the smallest possible digital loop on top: a
/// dither hill-climb on `k` itself. Between PULSEs it accumulates the
/// mean extracted power; at each capture it compares that window with
/// the previous one, keeps the dither direction on improvement, flips
/// it otherwise, and steps `k` by a fixed increment inside a safe band.
/// One window per 69 s period makes the loop glacial — which is the
/// point, since the drift it chases is measured in weeks.
#[derive(Debug, Clone)]
pub struct AdaptiveKFocv {
    k: f64,
    k_min: f64,
    k_max: f64,
    k_step: f64,
    sample_period: Seconds,
    pulse_width: Seconds,
    overhead: Watts,
    held_voc: Option<Volts>,
    since_sample: Seconds,
    measuring: bool,
    direction: f64,
    window_energy: f64,
    window_time: f64,
    prev_window_power: Option<f64>,
}

impl AdaptiveKFocv {
    /// Creates a tracker starting at `k`, dithering by `k_step` inside
    /// `[k_min, k_max]`.
    ///
    /// # Errors
    ///
    /// Rejects a band outside `(0, 1)` or not containing `k`, a
    /// non-positive `k_step` wider than the band, non-positive periods,
    /// a pulse width not shorter than the sample period, or negative
    /// overhead.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        k: f64,
        k_min: f64,
        k_max: f64,
        k_step: f64,
        sample_period: Seconds,
        pulse_width: Seconds,
        overhead: Watts,
    ) -> Result<Self, CoreError> {
        if !(k_min.is_finite() && k_max.is_finite() && 0.0 < k_min && k_min < k_max && k_max < 1.0)
        {
            return Err(CoreError::InvalidParameter {
                name: "k_band",
                value: k_min,
            });
        }
        if !(k.is_finite() && (k_min..=k_max).contains(&k)) {
            return Err(CoreError::InvalidParameter {
                name: "k",
                value: k,
            });
        }
        if !(k_step.is_finite() && k_step > 0.0 && k_step < k_max - k_min) {
            return Err(CoreError::InvalidParameter {
                name: "k_step",
                value: k_step,
            });
        }
        if !(sample_period.value() > 0.0 && pulse_width.value() > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "periods",
                value: sample_period.value().min(pulse_width.value()),
            });
        }
        if pulse_width.value() >= sample_period.value() {
            return Err(CoreError::InvalidParameter {
                name: "pulse_width",
                value: pulse_width.value(),
            });
        }
        if !(overhead.value().is_finite() && overhead.value() >= 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "overhead",
                value: overhead.value(),
            });
        }
        Ok(Self {
            k,
            k_min,
            k_max,
            k_step,
            sample_period,
            pulse_width,
            overhead,
            held_voc: None,
            // Fire the first measurement immediately (the power-up PULSE).
            since_sample: sample_period,
            measuring: false,
            direction: 1.0,
            window_energy: 0.0,
            window_time: 0.0,
            prev_window_power: None,
        })
    }

    /// The prototype's schedule with a learning trim: start at the
    /// paper's `k = 0.596`, dither by 0.004 inside `[0.50, 0.70]`, 69 s
    /// period, 39 ms PULSE. Overhead is the paper's 8 µA metrology plus
    /// ~1.5 µA for the sleeping trim MCU, at 3.3 V.
    ///
    /// # Errors
    ///
    /// Never fails for these constants; mirrors [`AdaptiveKFocv::new`].
    pub fn paper_tuned() -> Result<Self, CoreError> {
        Self::new(
            0.596,
            0.50,
            0.70,
            0.004,
            Seconds::new(69.0),
            Seconds::from_milli(39.0),
            Volts::new(3.3) * eh_units::Amps::from_micro(9.5),
        )
    }

    /// The current (learned) FOCV fraction.
    pub fn k(&self) -> f64 {
        self.k
    }

    /// The measurement pulse width.
    pub fn pulse_width(&self) -> Seconds {
        self.pulse_width
    }

    /// The hold (sampling) period.
    pub fn sample_period(&self) -> Seconds {
        self.sample_period
    }

    /// The currently held open-circuit voltage, if a sample exists.
    pub fn held_voc(&self) -> Option<Volts> {
        self.held_voc
    }
}

impl MpptController for AdaptiveKFocv {
    fn name(&self) -> &str {
        "FOCV adaptive-k (drift trim)"
    }

    fn step(&mut self, obs: &Observation, dt: Seconds) -> TrackerCommand {
        if self.measuring {
            if let Some(voc) = obs.voc_measurement {
                self.held_voc = Some(voc);
            }
            self.measuring = false;
            self.since_sample = Seconds::ZERO;
            // Judge the harvest window that just closed: did the last k
            // move pay off in mean extracted power?
            if self.window_time > 0.0 {
                let mean_power = self.window_energy / self.window_time;
                if let Some(prev) = self.prev_window_power {
                    if mean_power <= prev {
                        self.direction = -self.direction;
                    }
                }
                self.prev_window_power = Some(mean_power);
                self.k = (self.k + self.k_step * self.direction).clamp(self.k_min, self.k_max);
                self.window_energy = 0.0;
                self.window_time = 0.0;
            }
        } else {
            self.since_sample += dt;
            self.window_energy += obs.pv_power.value() * dt.value();
            self.window_time += dt.value();
        }

        if self.since_sample >= self.sample_period {
            self.measuring = true;
            return TrackerCommand::measure();
        }

        match self.held_voc {
            Some(voc) => TrackerCommand::connect_at(voc * self.k),
            // No valid sample yet (ACTIVE low): converter stays off.
            None => TrackerCommand::measure(),
        }
    }

    fn overhead_power(&self) -> Watts {
        self.overhead
    }

    fn can_cold_start(&self) -> bool {
        // The analog sample-and-hold chain bootstraps exactly as the
        // paper's does; the trim loop only runs once the system is alive.
        true
    }

    fn compute_cost(&self) -> ComputeCost {
        // One multiply-accumulate per step plus a compare-and-step at
        // capture boundaries.
        ComputeCost::mcu_class(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_units::Lux;

    fn obs(voc: Option<f64>, power_uw: f64) -> Observation {
        Observation {
            pv_voltage: Volts::new(3.0),
            pv_power: Watts::from_micro(power_uw),
            voc_measurement: voc.map(Volts::new),
            ambient_lux: Some(Lux::new(1000.0)),
            ..Observation::at(Seconds::ZERO)
        }
    }

    #[test]
    fn validation() {
        let mk = |k, k_min, k_max, k_step| {
            AdaptiveKFocv::new(
                k,
                k_min,
                k_max,
                k_step,
                Seconds::new(69.0),
                Seconds::from_milli(39.0),
                Watts::ZERO,
            )
        };
        assert!(mk(0.6, 0.7, 0.5, 0.004).is_err(), "inverted band");
        assert!(mk(0.8, 0.5, 0.7, 0.004).is_err(), "k outside band");
        assert!(mk(0.6, 0.5, 0.7, 0.0).is_err(), "zero step");
        assert!(mk(0.6, 0.5, 0.7, 0.5).is_err(), "step wider than band");
        assert!(mk(0.6, 0.5, 0.7, 0.004).is_ok());
    }

    /// Runs one full hold cycle: capture (with `voc`), then harvest
    /// windows at `power(k)` until the next PULSE fires.
    fn cycle(t: &mut AdaptiveKFocv, voc: f64, power: impl Fn(f64) -> f64) {
        let mut o = obs(Some(voc), power(t.k()));
        while t.step(&o, Seconds::new(23.0)).is_connect() {
            o = obs(None, power(t.k()));
        }
    }

    #[test]
    fn learns_a_drifted_fraction() {
        // The cell's true MPP fraction has drifted to 0.55; extracted
        // power is a parabola in k peaking there. The trim loop must
        // walk k from 0.596 into the neighbourhood of the new optimum.
        let mut t = AdaptiveKFocv::paper_tuned().unwrap();
        t.step(&obs(None, 0.0), Seconds::new(1.0));
        let power = |k: f64| 100.0 - (k - 0.55).powi(2) * 4000.0;
        for _ in 0..120 {
            cycle(&mut t, 5.0, power);
        }
        assert!(
            (t.k() - 0.55).abs() < 0.02,
            "k should settle near 0.55, got {}",
            t.k()
        );
    }

    #[test]
    fn dither_stays_inside_the_safe_band() {
        let mut t = AdaptiveKFocv::paper_tuned().unwrap();
        t.step(&obs(None, 0.0), Seconds::new(1.0));
        // Monotonically rewarding larger k drives the dither to the rail.
        let power = |k: f64| 100.0 * k;
        for _ in 0..200 {
            cycle(&mut t, 5.0, power);
        }
        // The dither parks against the clamp (modulo one step of
        // oscillation) and never escapes the band.
        assert!(
            t.k() > 0.69 && t.k() <= 0.70,
            "clamped at k_max, got {}",
            t.k()
        );
    }

    #[test]
    fn holds_the_scaled_sample_between_pulses() {
        let mut t = AdaptiveKFocv::paper_tuned().unwrap();
        t.step(&obs(None, 0.0), Seconds::new(1.0));
        let c = t.step(&obs(Some(5.0), 100.0), Seconds::new(1.0));
        assert!(c.is_connect());
        assert!((c.target_voltage().expect("connected").value() - 5.0 * t.k()).abs() < 1e-12);
    }

    #[test]
    fn declares_its_costs() {
        let t = AdaptiveKFocv::paper_tuned().unwrap();
        assert!(t.overhead_power().as_micro() < 40.0, "still ULP class");
        assert!(t.can_cold_start());
        assert!(!t.requires_light_sensor());
        assert!(!t.compute_cost().is_free());
    }
}
