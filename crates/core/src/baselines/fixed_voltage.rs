//! The fixed-voltage baseline (Weddell'08 \[8\]).

use eh_units::{Seconds, Volts, Watts};

use crate::controller::{MpptController, Observation, TrackerCommand};
use crate::error::CoreError;

/// The fixed-voltage indoor harvester of the paper's ref. \[8\]: the PV
/// module is operated "at a fixed voltage which is assumed to be
/// sufficiently close to the MPP voltage". A voltage reference IC sets
/// the operating point; §IV-B notes the proposed sample-and-hold draws
/// *less* than that reference IC, so the default overhead here is a
/// 12 µA reference at 3.3 V.
///
/// The technique is perfect as long as the lighting stays the kind it
/// was tuned for — and loses badly when a mobile sensor walks outdoors,
/// which is exactly the gap the paper's technique closes.
#[derive(Debug, Clone)]
pub struct FixedVoltage {
    reference: Volts,
    overhead: Watts,
}

impl FixedVoltage {
    /// Creates a tracker pinned at `reference`.
    ///
    /// # Errors
    ///
    /// Rejects a non-positive reference or negative overhead.
    pub fn new(reference: Volts, overhead: Watts) -> Result<Self, CoreError> {
        if !(reference.value().is_finite() && reference.value() > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "reference",
                value: reference.value(),
            });
        }
        if !(overhead.value().is_finite() && overhead.value() >= 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "overhead",
                value: overhead.value(),
            });
        }
        Ok(Self {
            reference,
            overhead,
        })
    }

    /// Tuned for the AM-1815 indoors: pinned at 3.0 V (the datasheet
    /// operating voltage), 12 µA reference IC at 3.3 V.
    ///
    /// # Errors
    ///
    /// Never fails for these constants; the `Result` mirrors
    /// [`FixedVoltage::new`].
    pub fn indoor_tuned() -> Result<Self, CoreError> {
        Self::new(
            Volts::new(3.0),
            Volts::new(3.3) * eh_units::Amps::from_micro(12.0),
        )
    }

    /// The pinned reference voltage.
    pub fn reference(&self) -> Volts {
        self.reference
    }
}

impl MpptController for FixedVoltage {
    fn name(&self) -> &str {
        "fixed voltage [8]"
    }

    fn step(&mut self, _obs: &Observation, _dt: Seconds) -> TrackerCommand {
        TrackerCommand::connect_at(self.reference)
    }

    fn overhead_power(&self) -> Watts {
        self.overhead
    }

    fn can_cold_start(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_units::Lux;

    #[test]
    fn validation() {
        assert!(FixedVoltage::new(Volts::ZERO, Watts::ZERO).is_err());
        assert!(FixedVoltage::new(Volts::new(3.0), Watts::new(-1.0)).is_err());
    }

    #[test]
    fn never_moves() {
        let mut t = FixedVoltage::indoor_tuned().unwrap();
        let obs = Observation {
            pv_voltage: Volts::new(1.0),
            ambient_lux: Some(Lux::new(50_000.0)),
            ..Observation::at(Seconds::ZERO)
        };
        for _ in 0..10 {
            let c = t.step(&obs, Seconds::new(1.0));
            assert!(c.is_connect());
            assert_eq!(c.target_voltage(), Some(Volts::new(3.0)));
        }
    }

    #[test]
    fn overhead_exceeds_proposed_technique() {
        // §IV-B: the S&H (8 µA) draws less than the reference IC here.
        let t = FixedVoltage::indoor_tuned().unwrap();
        assert!(t.overhead_power().as_micro() > 26.4);
        assert!(t.can_cold_start());
    }
}
