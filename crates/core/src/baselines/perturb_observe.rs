//! The hill-climbing (perturb & observe) baseline.

use eh_units::{Seconds, Volts, Watts};

use crate::compute::ComputeCost;
use crate::controller::{MpptController, Observation, TrackerCommand};
use crate::error::CoreError;

/// Classic perturb-&-observe hill climbing (the paper's §I: "the
/// operating point of the PV cell is continually modified; if the
/// modification results in an increase in the power obtained from the
/// cell, the operating point will continue to be adjusted in the same
/// direction").
///
/// It needs a microcontroller and continuous power sensing, so its
/// overhead is orders of magnitude above the proposed technique's —
/// the default uses the 2 mW system consumption reported for the
/// supercapacitor charger of Simjee & Chou \[4\].
#[derive(Debug, Clone)]
pub struct PerturbObserve {
    step_size: Volts,
    control_period: Seconds,
    overhead: Watts,
    target: Volts,
    direction: f64,
    last_power: Watts,
    since_control: Seconds,
    primed: bool,
}

impl PerturbObserve {
    /// Creates a tracker perturbing by `step_size` every `control_period`.
    ///
    /// # Errors
    ///
    /// Rejects non-positive step size or period, or negative overhead.
    pub fn new(
        step_size: Volts,
        control_period: Seconds,
        initial_target: Volts,
        overhead: Watts,
    ) -> Result<Self, CoreError> {
        if !(step_size.value().is_finite() && step_size.value() > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "step_size",
                value: step_size.value(),
            });
        }
        if !(control_period.value().is_finite() && control_period.value() > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "control_period",
                value: control_period.value(),
            });
        }
        if !(overhead.value().is_finite() && overhead.value() >= 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "overhead",
                value: overhead.value(),
            });
        }
        Ok(Self {
            step_size,
            control_period,
            overhead,
            target: initial_target,
            direction: 1.0,
            last_power: Watts::ZERO,
            since_control: Seconds::ZERO,
            primed: false,
        })
    }

    /// The configuration from the literature the paper cites: 50 mV
    /// steps at 10 Hz, starting at 2.5 V, 2 mW overhead \[4\].
    ///
    /// # Errors
    ///
    /// Never fails for these constants; the `Result` mirrors
    /// [`PerturbObserve::new`].
    pub fn literature_default() -> Result<Self, CoreError> {
        Self::new(
            Volts::from_milli(50.0),
            Seconds::from_milli(100.0),
            Volts::new(2.5),
            Watts::from_milli(2.0),
        )
    }

    /// The present voltage target.
    pub fn target(&self) -> Volts {
        self.target
    }
}

impl MpptController for PerturbObserve {
    fn name(&self) -> &str {
        "perturb & observe (hill climbing)"
    }

    fn step(&mut self, obs: &Observation, dt: Seconds) -> TrackerCommand {
        self.since_control += dt;
        if self.since_control >= self.control_period {
            self.since_control = Seconds::ZERO;
            if !self.primed {
                // First control boundary: no previous perturbation exists
                // to judge, so seed the comparison from this observation
                // and probe in the initial direction. Comparing against
                // the Watts::ZERO initializer instead would read a dark
                // start as "power dropped" and lock in a downhill walk.
                self.primed = true;
                self.last_power = obs.pv_power;
            } else {
                // Compare powers; keep direction on strict improvement,
                // flip otherwise. Treating "no better" as "worse" is the
                // standard guard that stops the climber running away when
                // the module is dark or pinned at open circuit (zero
                // power everywhere).
                if obs.pv_power <= self.last_power {
                    self.direction = -self.direction;
                }
                self.last_power = obs.pv_power;
            }
            self.target = (self.target + self.step_size * self.direction)
                .clamp(Volts::from_milli(100.0), Volts::new(8.0));
        }
        TrackerCommand::connect_at(self.target)
    }

    fn overhead_power(&self) -> Watts {
        self.overhead
    }

    fn can_cold_start(&self) -> bool {
        // §I: needs fine-grained control — a microcontroller — so it
        // cannot bootstrap a dead system from indoor light.
        false
    }

    fn compute_cost(&self) -> ComputeCost {
        // Sample scaling, one compare, one signed step, one clamp.
        ComputeCost::mcu_class(60)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_units::Lux;

    fn obs(power_uw: f64) -> Observation {
        Observation {
            pv_voltage: Volts::new(2.5),
            pv_power: Watts::from_micro(power_uw),
            ambient_lux: Some(Lux::new(1000.0)),
            ..Observation::at(Seconds::ZERO)
        }
    }

    #[test]
    fn validation() {
        assert!(
            PerturbObserve::new(Volts::ZERO, Seconds::new(0.1), Volts::new(2.5), Watts::ZERO)
                .is_err()
        );
        assert!(PerturbObserve::new(
            Volts::new(0.05),
            Seconds::ZERO,
            Volts::new(2.5),
            Watts::ZERO
        )
        .is_err());
    }

    #[test]
    fn climbs_while_power_rises() {
        let mut t = PerturbObserve::literature_default().unwrap();
        let start = t.target();
        // Rising power: keep climbing in the same direction.
        t.step(&obs(100.0), Seconds::from_milli(100.0));
        t.step(&obs(110.0), Seconds::from_milli(100.0));
        t.step(&obs(120.0), Seconds::from_milli(100.0));
        assert!(t.target() > start);
    }

    #[test]
    fn reverses_on_power_drop() {
        let mut t = PerturbObserve::literature_default().unwrap();
        t.step(&obs(100.0), Seconds::from_milli(100.0));
        t.step(&obs(110.0), Seconds::from_milli(100.0));
        let peak = t.target();
        // Power drops: direction flips.
        t.step(&obs(90.0), Seconds::from_milli(100.0));
        assert!(t.target() < peak);
    }

    #[test]
    fn oscillates_around_maximum() {
        // A synthetic parabola with a peak at 3.0 V.
        let mut t = PerturbObserve::literature_default().unwrap();
        let mut v = t.target();
        for _ in 0..400 {
            let p = 100.0 - (v.value() - 3.0).powi(2) * 50.0;
            let c = t.step(&obs(p), Seconds::from_milli(100.0));
            v = c.target_voltage().expect("P&O stays connected");
        }
        assert!(
            (v.value() - 3.0).abs() < 0.2,
            "should hover near 3.0 V, got {v}"
        );
    }

    #[test]
    fn stays_connected_and_power_hungry() {
        let mut t = PerturbObserve::literature_default().unwrap();
        let c = t.step(&obs(50.0), Seconds::from_milli(100.0));
        assert!(c.is_connect(), "P&O never disconnects the module");
        assert!(t.overhead_power().as_milli() >= 1.0);
        assert!(!t.can_cold_start());
    }

    #[test]
    fn first_decision_probes_upward_from_a_dark_start() {
        // Regression: `last_power` used to start at `Watts::ZERO`, so the
        // very first control boundary compared the first observation
        // against zero. A dark start (pv_power == 0) then read as "no
        // better", flipped the direction to -1 and locked in a downhill
        // walk before the tracker had ever perturbed anything. The first
        // boundary must seed the comparison and probe upward instead.
        let mut t = PerturbObserve::literature_default().unwrap();
        let start = t.target();
        let c = t.step(&obs(0.0), Seconds::from_milli(100.0));
        let v = c.target_voltage().expect("P&O stays connected");
        assert!(
            v > start,
            "first decision must probe in the initial (+) direction, got {v} from {start}"
        );
    }

    #[test]
    fn declares_digital_compute_cost() {
        let t = PerturbObserve::literature_default().unwrap();
        assert!(!t.compute_cost().is_free());
    }

    #[test]
    fn target_floor_prevents_collapse() {
        let mut t = PerturbObserve::new(
            Volts::new(1.0),
            Seconds::from_milli(100.0),
            Volts::new(0.3),
            Watts::from_milli(2.0),
        )
        .unwrap();
        for i in 0..20 {
            // Monotonically decreasing power forces repeated direction flips,
            // but the target must never fall below the 100 mV floor.
            t.step(&obs(100.0 - i as f64), Seconds::from_milli(100.0));
            assert!(t.target().value() >= 0.1);
        }
    }
}
