//! Adaptive-step gradient-descent MPPT (cf. the complexity-aware
//! benchmarking line of work, arXiv 2511.20895).

use eh_units::{Seconds, Volts, Watts};

use crate::compute::ComputeCost;
use crate::controller::{MpptController, Observation, TrackerCommand};
use crate::error::CoreError;

/// Gradient-descent MPPT with an adaptive step size.
///
/// Where P&O perturbs by a *fixed* step and only keeps the sign of the
/// power change, this tracker estimates the local slope `dP/dV` from
/// consecutive observations and steps proportionally to it:
/// `Δv = clamp(η · dP/dV, ±max_step)`, floored at `min_step` so the
/// search never stalls. Far from the MPP the slope is steep and the
/// steps are large; near the MPP they shrink toward the floor, trading
/// P&O's fixed ripple for a smaller steady-state oscillation at the
/// price of a division-heavy decision — exactly the trade the
/// compute-cost columns exist to price.
#[derive(Debug, Clone)]
pub struct GradientDescentMppt {
    learning_rate: f64,
    max_step: Volts,
    min_step: Volts,
    control_period: Seconds,
    overhead: Watts,
    target: Volts,
    last_voltage: Volts,
    last_power: Watts,
    last_direction: f64,
    since_control: Seconds,
    primed: bool,
}

impl GradientDescentMppt {
    /// Creates a tracker with learning rate `learning_rate` (in V²/W)
    /// and a step band `[min_step, max_step]`, deciding every
    /// `control_period`.
    ///
    /// # Errors
    ///
    /// Rejects a non-positive learning rate or period, a non-positive or
    /// inverted step band, or negative overhead.
    pub fn new(
        learning_rate: f64,
        max_step: Volts,
        min_step: Volts,
        control_period: Seconds,
        initial_target: Volts,
        overhead: Watts,
    ) -> Result<Self, CoreError> {
        if !(learning_rate.is_finite() && learning_rate > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "learning_rate",
                value: learning_rate,
            });
        }
        if !(min_step.value() > 0.0 && max_step.value() >= min_step.value()) {
            return Err(CoreError::InvalidParameter {
                name: "step_band",
                value: min_step.value(),
            });
        }
        if !(control_period.value().is_finite() && control_period.value() > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "control_period",
                value: control_period.value(),
            });
        }
        if !(overhead.value().is_finite() && overhead.value() >= 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "overhead",
                value: overhead.value(),
            });
        }
        Ok(Self {
            learning_rate,
            max_step,
            min_step,
            control_period,
            overhead,
            target: initial_target,
            last_voltage: Volts::ZERO,
            last_power: Watts::ZERO,
            last_direction: 1.0,
            since_control: Seconds::ZERO,
            primed: false,
        })
    }

    /// A configuration matched to the µW-scale indoor operating point:
    /// η = 200 V²/W (so a 100 µW/V slope moves 20 mV), steps between
    /// 5 mV and 200 mV at 10 Hz from 2.5 V, with the same 2 mW
    /// MCU-class overhead as the other continuous-sensing trackers \[4\].
    ///
    /// # Errors
    ///
    /// Never fails for these constants; mirrors
    /// [`GradientDescentMppt::new`].
    pub fn literature_default() -> Result<Self, CoreError> {
        Self::new(
            200.0,
            Volts::from_milli(200.0),
            Volts::from_milli(5.0),
            Seconds::from_milli(100.0),
            Volts::new(2.5),
            Watts::from_milli(2.0),
        )
    }

    /// The present voltage target.
    pub fn target(&self) -> Volts {
        self.target
    }
}

impl MpptController for GradientDescentMppt {
    fn name(&self) -> &str {
        "gradient descent (adaptive step)"
    }

    fn step(&mut self, obs: &Observation, dt: Seconds) -> TrackerCommand {
        self.since_control += dt;
        if self.since_control >= self.control_period {
            self.since_control = Seconds::ZERO;
            let dv = (obs.pv_voltage - self.last_voltage).value();
            let dp = (obs.pv_power - self.last_power).value();
            let delta = if !self.primed {
                // First decision: seed the finite differences and probe
                // upward (the same first-sample discipline as P&O).
                self.primed = true;
                self.min_step.value()
            } else if obs.pv_voltage.value() <= 0.0 {
                // Dark module: hold position instead of running away.
                0.0
            } else if dv.abs() < 1e-9 {
                // No voltage movement to difference against: keep
                // probing in the last direction at the floor step.
                self.min_step.value() * self.last_direction
            } else {
                let gradient = dp / dv;
                let raw = self.learning_rate * gradient;
                let magnitude = raw
                    .abs()
                    .clamp(self.min_step.value(), self.max_step.value());
                magnitude * raw.signum()
            };
            if delta != 0.0 {
                self.last_direction = delta.signum();
            }
            self.last_voltage = obs.pv_voltage;
            self.last_power = obs.pv_power;
            self.target =
                (self.target + Volts::new(delta)).clamp(Volts::from_milli(100.0), Volts::new(8.0));
        }
        TrackerCommand::connect_at(self.target)
    }

    fn overhead_power(&self) -> Watts {
        self.overhead
    }

    fn can_cold_start(&self) -> bool {
        // Needs an MCU and continuous power sensing, like P&O.
        false
    }

    fn compute_cost(&self) -> ComputeCost {
        // A finite-difference division, a scaled multiply, two clamps
        // and the direction bookkeeping — the heaviest decision here.
        ComputeCost::mcu_class(110)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_units::{Amps, Lux};

    fn obs(v: f64, power_uw: f64) -> Observation {
        Observation {
            pv_voltage: Volts::new(v),
            pv_current: Amps::from_micro(if v > 0.0 { power_uw / v } else { 0.0 }),
            pv_power: Watts::from_micro(power_uw),
            ambient_lux: Some(Lux::new(1000.0)),
            ..Observation::at(Seconds::ZERO)
        }
    }

    /// A synthetic indoor power curve peaking at 3.0 V, in µW.
    fn parabola(v: f64) -> f64 {
        (100.0 - (v - 3.0).powi(2) * 50.0).max(0.0)
    }

    #[test]
    fn validation() {
        let mk = |eta, max: f64, min: f64, period: f64| {
            GradientDescentMppt::new(
                eta,
                Volts::new(max),
                Volts::new(min),
                Seconds::new(period),
                Volts::new(2.5),
                Watts::ZERO,
            )
        };
        assert!(mk(0.0, 0.2, 0.005, 0.1).is_err());
        assert!(mk(200.0, 0.005, 0.2, 0.1).is_err(), "inverted step band");
        assert!(mk(200.0, 0.2, 0.005, 0.0).is_err());
        assert!(mk(200.0, 0.2, 0.005, 0.1).is_ok());
    }

    #[test]
    fn converges_to_the_peak() {
        let mut t = GradientDescentMppt::literature_default().unwrap();
        let mut v = t.target().value();
        for _ in 0..400 {
            let c = t.step(&obs(v, parabola(v)), Seconds::from_milli(100.0));
            v = c.target_voltage().expect("stays connected").value();
        }
        assert!((v - 3.0).abs() < 0.05, "should settle near 3.0 V, got {v}");
    }

    #[test]
    fn steps_shrink_near_the_peak() {
        let mut t = GradientDescentMppt::literature_default().unwrap();
        let mut v = t.target().value();
        let mut deltas = Vec::new();
        for _ in 0..200 {
            let c = t.step(&obs(v, parabola(v)), Seconds::from_milli(100.0));
            let next = c.target_voltage().expect("stays connected").value();
            deltas.push((next - v).abs());
            v = next;
        }
        let early: f64 = deltas[1..6].iter().sum();
        let late: f64 = deltas[150..155].iter().sum();
        assert!(
            late < early,
            "adaptive steps must shrink approaching the MPP: early {early}, late {late}"
        );
    }

    #[test]
    fn first_decision_probes_upward_from_a_dark_start() {
        // Same first-sample discipline as the P&O fix: an all-zero first
        // observation must seed the differences and probe upward, not
        // divide the zero initializers.
        let mut t = GradientDescentMppt::literature_default().unwrap();
        let start = t.target();
        let c = t.step(&obs(0.0, 0.0), Seconds::from_milli(100.0));
        assert!(c.target_voltage().expect("stays connected") > start);
    }

    #[test]
    fn holds_position_in_the_dark() {
        let mut t = GradientDescentMppt::literature_default().unwrap();
        t.step(&obs(2.5, 80.0), Seconds::from_milli(100.0));
        let held = t.target();
        for _ in 0..10 {
            t.step(&obs(0.0, 0.0), Seconds::from_milli(100.0));
        }
        assert_eq!(t.target(), held, "dark module must not walk the target");
    }

    #[test]
    fn declares_mcu_class_costs() {
        let t = GradientDescentMppt::literature_default().unwrap();
        assert!(t.overhead_power().as_milli() >= 1.0);
        assert!(!t.can_cold_start());
        assert!(!t.requires_light_sensor());
        let cost = t.compute_cost();
        assert!(!cost.is_free());
        assert!(cost.ops_per_decision > 60, "division-heavy decision");
    }
}
