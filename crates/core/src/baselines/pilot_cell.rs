//! The pilot-cell baseline (Brunelli et al., DATE'08 \[5\]).

use eh_pv::PvCell;
use eh_units::{Seconds, Volts, Watts};

use crate::controller::{MpptController, Observation, TrackerCommand};
use crate::error::CoreError;

/// A pilot-cell FOCV tracker: a second, small PV cell is kept permanently
/// open-circuit and its voltage (scaled by `k`) steers the converter, so
/// the main module never has to be disconnected.
///
/// The cost is the paper's point: the pilot cell itself (area that could
/// have been harvesting) and an "off" system consumption around 300 µW
/// \[5\] — fine outdoors, fatal indoors.
#[derive(Debug, Clone)]
pub struct PilotCell {
    pilot: PvCell,
    k: f64,
    overhead: Watts,
}

impl PilotCell {
    /// Creates a tracker whose pilot is electrically identical to `pilot`
    /// (usually a clone of the main cell's model).
    ///
    /// # Errors
    ///
    /// Rejects `k` outside `(0, 1)` or negative overhead.
    pub fn new(pilot: PvCell, k: f64, overhead: Watts) -> Result<Self, CoreError> {
        if !(k.is_finite() && k > 0.0 && k < 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "k",
                value: k,
            });
        }
        if !(overhead.value().is_finite() && overhead.value() >= 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "overhead",
                value: overhead.value(),
            });
        }
        Ok(Self { pilot, k, overhead })
    }

    /// The literature configuration: same cell chemistry as the main
    /// module, `k = 0.596`, ~300 µW overhead \[5\].
    ///
    /// # Errors
    ///
    /// Never fails for valid presets; mirrors [`PilotCell::new`].
    pub fn literature_default(pilot: PvCell) -> Result<Self, CoreError> {
        Self::new(pilot, 0.596, Watts::from_micro(300.0))
    }
}

impl MpptController for PilotCell {
    fn name(&self) -> &str {
        "pilot cell [5]"
    }

    fn step(&mut self, obs: &Observation, _dt: Seconds) -> TrackerCommand {
        // The pilot cell sees the same light as the main module; its
        // open-circuit voltage is continuously available.
        let lux = obs.ambient_lux.unwrap_or_default();
        let voc = self.pilot.open_circuit_voltage(lux).unwrap_or(Volts::ZERO);
        if voc.value() <= 0.0 {
            return TrackerCommand::measure();
        }
        TrackerCommand::connect_at(voc * self.k)
    }

    fn overhead_power(&self) -> Watts {
        self.overhead
    }

    fn can_cold_start(&self) -> bool {
        true
    }

    fn requires_light_sensor(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_pv::presets;
    use eh_units::Lux;

    fn obs(lux: f64) -> Observation {
        Observation {
            pv_voltage: Volts::new(3.0),
            ambient_lux: Some(Lux::new(lux)),
            ..Observation::at(Seconds::ZERO)
        }
    }

    #[test]
    fn validation() {
        assert!(PilotCell::new(presets::sanyo_am1815(), 1.5, Watts::ZERO).is_err());
        assert!(PilotCell::new(presets::sanyo_am1815(), 0.6, Watts::new(-1.0)).is_err());
    }

    #[test]
    fn tracks_continuously_without_disconnecting() {
        let mut t = PilotCell::literature_default(presets::sanyo_am1815()).unwrap();
        let c = t.step(&obs(1000.0), Seconds::new(1.0));
        assert!(
            c.is_connect(),
            "pilot cell never interrupts the main module"
        );
        // Target ≈ k·Voc(1000 lx) ≈ 0.596 · 5.44 ≈ 3.24 V.
        assert!((c.target_voltage().expect("connected").value() - 0.596 * 5.44).abs() < 0.1);
    }

    #[test]
    fn follows_light_changes_immediately() {
        let mut t = PilotCell::literature_default(presets::sanyo_am1815()).unwrap();
        let dim = t
            .step(&obs(200.0), Seconds::new(1.0))
            .target_voltage()
            .expect("connected");
        let bright = t
            .step(&obs(5000.0), Seconds::new(1.0))
            .target_voltage()
            .expect("connected");
        assert!(bright > dim);
    }

    #[test]
    fn dark_pilot_gives_no_target() {
        let mut t = PilotCell::literature_default(presets::sanyo_am1815()).unwrap();
        let c = t.step(&obs(0.0), Seconds::new(1.0));
        assert!(!c.is_connect());
    }

    #[test]
    fn declares_its_costs() {
        let t = PilotCell::literature_default(presets::sanyo_am1815()).unwrap();
        assert!((t.overhead_power().as_micro() - 300.0).abs() < 1e-9);
        assert!(t.requires_light_sensor());
        // Analog steering network: no per-decision arithmetic to charge.
        assert!(t.compute_cost().is_free());
    }

    #[test]
    fn missing_light_sensor_data_degrades_to_a_measure() {
        // Audit pin: with no ambient-lux sample at all (engine quirk or
        // sensor fault) the `unwrap_or` chain must bottom out in a
        // harmless measure command, never a divide or a bogus target.
        let mut t = PilotCell::literature_default(presets::sanyo_am1815()).unwrap();
        let c = t.step(&Observation::at(Seconds::ZERO), Seconds::new(1.0));
        assert!(!c.is_connect());
    }
}
