//! The paper's technique at behavioural level.

use eh_units::{Seconds, Volts, Watts};

use crate::controller::{MpptController, Observation, TrackerCommand};
use crate::error::CoreError;

/// The proposed FOCV sample-and-hold tracker: every `sample_period` the
/// module is disconnected for `pulse_width` to measure `Voc`; in between
/// the converter holds the module at `k · Voc_held`.
///
/// The default parameters are the prototype's measurements: 39 ms pulses
/// every 69 s, `k = 0.596`, and the 8 µA × 3.3 V metrology overhead the
/// paper reports in §IV-B.
///
/// ```
/// use eh_core::baselines::FocvSampleHold;
/// use eh_core::MpptController;
///
/// let tracker = FocvSampleHold::paper_prototype()?;
/// assert!(tracker.can_cold_start());
/// assert!(tracker.overhead_power().as_micro() < 30.0);
/// # Ok::<(), eh_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FocvSampleHold {
    k: f64,
    sample_period: Seconds,
    pulse_width: Seconds,
    overhead: Watts,
    held_voc: Option<Volts>,
    since_sample: Seconds,
    measuring: bool,
}

impl FocvSampleHold {
    /// Creates a tracker with explicit parameters.
    ///
    /// # Errors
    ///
    /// Rejects `k` outside `(0, 1)`, non-positive periods, or a pulse
    /// width that is not shorter than the sample period.
    pub fn new(
        k: f64,
        sample_period: Seconds,
        pulse_width: Seconds,
        overhead: Watts,
    ) -> Result<Self, CoreError> {
        if !(k.is_finite() && k > 0.0 && k < 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "k",
                value: k,
            });
        }
        if !(sample_period.value() > 0.0 && pulse_width.value() > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "periods",
                value: sample_period.value().min(pulse_width.value()),
            });
        }
        if pulse_width.value() >= sample_period.value() {
            return Err(CoreError::InvalidParameter {
                name: "pulse_width",
                value: pulse_width.value(),
            });
        }
        if !(overhead.value().is_finite() && overhead.value() >= 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "overhead",
                value: overhead.value(),
            });
        }
        Ok(Self {
            k,
            sample_period,
            pulse_width,
            overhead,
            held_voc: None,
            // Fire the first measurement immediately (the power-up PULSE).
            since_sample: sample_period,
            measuring: false,
        })
    }

    /// The prototype parameters: k = 0.596, 69 s period, 39 ms pulse,
    /// 8 µA at 3.3 V.
    ///
    /// # Errors
    ///
    /// Never fails for these constants; the `Result` mirrors
    /// [`FocvSampleHold::new`].
    pub fn paper_prototype() -> Result<Self, CoreError> {
        Self::new(
            0.596,
            Seconds::new(69.0),
            Seconds::from_milli(39.0),
            Volts::new(3.3) * eh_units::Amps::from_micro(8.0),
        )
    }

    /// Staggers the power-up PULSE by `offset` into the hold period: the
    /// first measurement fires after `offset` instead of immediately,
    /// and until then the tracker behaves as a circuit with a discharged
    /// hold capacitor — a held 0 V sample, converter off. Fleet
    /// simulations use this to model astable multivibrators that powered
    /// up at different instants, so a thousand nodes do not all
    /// interrupt harvesting in lock-step.
    ///
    /// # Errors
    ///
    /// Rejects an offset outside `[0, sample_period)`.
    pub fn with_initial_phase(mut self, offset: Seconds) -> Result<Self, CoreError> {
        if !(offset.value().is_finite() && offset.value() >= 0.0 && offset < self.sample_period) {
            return Err(CoreError::InvalidParameter {
                name: "initial_phase",
                value: offset.value(),
            });
        }
        self.since_sample = self.sample_period - offset;
        if offset.value() > 0.0 {
            // Discharged hold capacitor: tracks 0 V (converter off)
            // until the delayed first PULSE takes a real sample.
            self.held_voc = Some(Volts::ZERO);
        }
        Ok(self)
    }

    /// The trimmed FOCV factor.
    pub fn k(&self) -> f64 {
        self.k
    }

    /// The hold (sampling) period.
    pub fn sample_period(&self) -> Seconds {
        self.sample_period
    }

    /// The measurement pulse width (how long the module is disconnected
    /// per sample).
    pub fn pulse_width(&self) -> Seconds {
        self.pulse_width
    }

    /// The currently held open-circuit voltage, if a sample exists.
    pub fn held_voc(&self) -> Option<Volts> {
        self.held_voc
    }

    /// The lane-invariant part of this tracker, for batch stepping.
    ///
    /// A [`FocvKernel`] plus a [`FocvLane`] snapshot replays the exact
    /// decision sequence of [`MpptController::step`] without dynamic
    /// dispatch, so a batch engine can sweep thousands of lanes through
    /// one monomorphic loop.
    pub fn kernel(&self) -> FocvKernel {
        FocvKernel {
            k: self.k,
            sample_period: self.sample_period,
            overhead: self.overhead,
        }
    }

    /// A snapshot of this tracker's mutable per-node state (including
    /// the effect of [`FocvSampleHold::with_initial_phase`]), to pair
    /// with [`FocvSampleHold::kernel`].
    pub fn lane(&self) -> FocvLane {
        FocvLane {
            held_voc: self.held_voc,
            since_sample: self.since_sample,
            measuring: self.measuring,
        }
    }
}

/// The immutable parameters of a [`FocvSampleHold`] tracker, shared by
/// every lane of a batch: the trimmed FOCV factor, the hold period, and
/// the metrology overhead.
///
/// [`FocvKernel::step`] is an exact transcription of the tracker's
/// [`MpptController::step`] state machine over an external [`FocvLane`],
/// so batch engines stepping many lanes through one kernel produce
/// bit-identical commands to the per-node tracker objects.
///
/// ```
/// use eh_core::baselines::{FocvDecision, FocvSampleHold};
/// use eh_units::{Seconds, Volts};
///
/// let tracker = FocvSampleHold::paper_prototype()?;
/// let (kernel, mut lane) = (tracker.kernel(), tracker.lane());
/// // The power-up PULSE fires on the first step, exactly as the
/// // stateful tracker does.
/// assert_eq!(kernel.step(&mut lane, None, Seconds::new(1.0)), FocvDecision::Measure);
/// let d = kernel.step(&mut lane, Some(Volts::new(5.44)), Seconds::new(1.0));
/// assert_eq!(d, FocvDecision::Connect(Volts::new(5.44) * kernel.k()));
/// # Ok::<(), eh_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FocvKernel {
    k: f64,
    sample_period: Seconds,
    overhead: Watts,
}

/// The mutable per-node state of one FOCV lane: the held `Voc` sample,
/// the time since the last PULSE, and whether the module is currently
/// disconnected for a measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FocvLane {
    held_voc: Option<Volts>,
    since_sample: Seconds,
    measuring: bool,
}

impl FocvLane {
    /// The currently held open-circuit voltage, if a sample exists.
    pub fn held_voc(&self) -> Option<Volts> {
        self.held_voc
    }

    /// Whether the lane is mid-measurement (module disconnected).
    pub fn measuring(&self) -> bool {
        self.measuring
    }
}

/// What one kernel step decided for a lane — the batched counterpart of
/// [`TrackerCommand`] restricted to what the FOCV tracker can emit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FocvDecision {
    /// Hold the module at the given operating voltage.
    Connect(Volts),
    /// Disconnect the module and measure `Voc`.
    Measure,
}

impl FocvKernel {
    /// The trimmed FOCV factor.
    pub fn k(&self) -> f64 {
        self.k
    }

    /// The hold (sampling) period.
    pub fn sample_period(&self) -> Seconds {
        self.sample_period
    }

    /// The tracker's quiescent metrology overhead.
    pub fn overhead_power(&self) -> Watts {
        self.overhead
    }

    /// Advances one lane by `dt`, given the `Voc` measured during the
    /// previous step's disconnect (if any). Exact transcription of
    /// [`FocvSampleHold`]'s [`MpptController::step`].
    #[inline]
    pub fn step(
        &self,
        lane: &mut FocvLane,
        voc_measurement: Option<Volts>,
        dt: Seconds,
    ) -> FocvDecision {
        // Capture the measurement made during a disconnect step.
        if lane.measuring {
            if let Some(voc) = voc_measurement {
                lane.held_voc = Some(voc);
            }
            lane.measuring = false;
            lane.since_sample = Seconds::ZERO;
        } else {
            lane.since_sample += dt;
        }

        if lane.since_sample >= self.sample_period {
            lane.measuring = true;
            return FocvDecision::Measure;
        }

        match lane.held_voc {
            Some(voc) => FocvDecision::Connect(voc * self.k),
            // No valid sample yet (ACTIVE low): converter stays off.
            None => FocvDecision::Measure,
        }
    }
}

impl MpptController for FocvSampleHold {
    fn name(&self) -> &str {
        "FOCV sample-and-hold (this paper)"
    }

    fn step(&mut self, obs: &Observation, dt: Seconds) -> TrackerCommand {
        // Capture the measurement made during a disconnect step.
        if self.measuring {
            if let Some(voc) = obs.voc_measurement {
                self.held_voc = Some(voc);
            }
            self.measuring = false;
            self.since_sample = Seconds::ZERO;
        } else {
            self.since_sample += dt;
        }

        if self.since_sample >= self.sample_period {
            self.measuring = true;
            return TrackerCommand::measure();
        }

        match self.held_voc {
            Some(voc) => TrackerCommand::connect_at(voc * self.k),
            // No valid sample yet (ACTIVE low): converter stays off.
            None => TrackerCommand::measure(),
        }
    }

    fn overhead_power(&self) -> Watts {
        self.overhead
    }

    fn can_cold_start(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_units::Lux;

    fn obs(voc: Option<f64>) -> Observation {
        Observation {
            pv_voltage: Volts::new(3.0),
            pv_power: Watts::from_micro(100.0),
            voc_measurement: voc.map(Volts::new),
            ambient_lux: Some(Lux::new(1000.0)),
            ..Observation::at(Seconds::ZERO)
        }
    }

    #[test]
    fn validation() {
        assert!(FocvSampleHold::new(
            1.2,
            Seconds::new(69.0),
            Seconds::from_milli(39.0),
            Watts::ZERO
        )
        .is_err());
        assert!(
            FocvSampleHold::new(0.6, Seconds::new(1.0), Seconds::new(2.0), Watts::ZERO).is_err()
        );
    }

    #[test]
    fn first_step_measures_then_tracks() {
        let mut t = FocvSampleHold::paper_prototype().unwrap();
        let c1 = t.step(&obs(None), Seconds::new(1.0));
        assert!(!c1.is_connect(), "must measure first");
        // Engine measured Voc = 5.44 V during the disconnect.
        let c2 = t.step(&obs(Some(5.44)), Seconds::new(1.0));
        assert!(c2.is_connect());
        assert!((c2.target_voltage().expect("connected").value() - 5.44 * 0.596).abs() < 1e-9);
        assert_eq!(t.held_voc(), Some(Volts::new(5.44)));
    }

    #[test]
    fn resamples_every_period() {
        let mut t = FocvSampleHold::paper_prototype().unwrap();
        t.step(&obs(None), Seconds::new(1.0));
        t.step(&obs(Some(5.0)), Seconds::new(1.0));
        let mut measured = 0;
        // Walk 140 s in 1 s steps: expect ~2 more measurement commands.
        for _ in 0..140 {
            let c = t.step(&obs(Some(5.0)), Seconds::new(1.0));
            if !c.is_connect() {
                measured += 1;
            }
        }
        assert_eq!(measured, 2, "one resample per 69 s");
    }

    #[test]
    fn holds_value_between_samples() {
        let mut t = FocvSampleHold::paper_prototype().unwrap();
        t.step(&obs(None), Seconds::new(1.0));
        t.step(&obs(Some(5.0)), Seconds::new(1.0));
        // Light changed but no resample yet: target unchanged.
        let c = t.step(&obs(None), Seconds::new(10.0));
        assert!((c.target_voltage().expect("connected").value() - 5.0 * 0.596).abs() < 1e-9);
    }

    #[test]
    fn initial_phase_delays_the_first_pulse() {
        let mut t = FocvSampleHold::paper_prototype()
            .unwrap()
            .with_initial_phase(Seconds::new(10.0))
            .unwrap();
        // For the first 9 s the tracker idles at a held 0 V sample.
        for _ in 0..9 {
            let c = t.step(&obs(None), Seconds::new(1.0));
            assert!(c.is_connect(), "no PULSE before the phase elapses");
            assert_eq!(c.target_voltage(), Some(Volts::ZERO));
        }
        // The 10th second reaches the staggered boundary: PULSE fires.
        let c = t.step(&obs(None), Seconds::new(1.0));
        assert!(!c.is_connect(), "delayed power-up PULSE must fire");
        let c = t.step(&obs(Some(5.44)), Seconds::new(1.0));
        assert!((c.target_voltage().expect("tracking").value() - 5.44 * 0.596).abs() < 1e-9);
    }

    #[test]
    fn initial_phase_validation() {
        let t = || FocvSampleHold::paper_prototype().unwrap();
        assert!(t().with_initial_phase(Seconds::new(-1.0)).is_err());
        assert!(t().with_initial_phase(Seconds::new(69.0)).is_err());
        assert!(t().with_initial_phase(Seconds::new(f64::NAN)).is_err());
        assert!(t().with_initial_phase(Seconds::ZERO).is_ok());
        assert!(t().with_initial_phase(Seconds::new(68.9)).is_ok());
    }

    /// Drives the dyn tracker and the kernel+lane pair through the same
    /// (voc, dt) sequence and asserts every decision matches bitwise.
    fn assert_kernel_tracks_the_tracker(mut t: FocvSampleHold, seq: &[(Option<f64>, f64)]) {
        let kernel = t.kernel();
        let mut lane = t.lane();
        for (i, &(voc, dt)) in seq.iter().enumerate() {
            let cmd = t.step(&obs(voc), Seconds::new(dt));
            let decision = kernel.step(&mut lane, voc.map(Volts::new), Seconds::new(dt));
            match decision {
                FocvDecision::Connect(target) => {
                    assert!(cmd.is_connect(), "step {i}: kernel connects, tracker not");
                    assert_eq!(
                        cmd.target_voltage().map(|v| v.value().to_bits()),
                        Some(target.value().to_bits()),
                        "step {i}: targets diverge"
                    );
                }
                FocvDecision::Measure => {
                    assert!(!cmd.is_connect(), "step {i}: kernel measures, tracker not");
                }
            }
            assert_eq!(
                lane.held_voc(),
                t.held_voc(),
                "step {i}: held samples diverge"
            );
        }
    }

    #[test]
    fn kernel_replays_the_tracker_bitwise() {
        // Mixed dts (incl. the 39 ms dwell clamp and exact period hits),
        // captures, a dropped capture (None while measuring), and long
        // idle holds.
        let seq: Vec<(Option<f64>, f64)> = vec![
            (None, 1.0),
            (Some(5.44), 0.039),
            (None, 68.0),
            (None, 0.961),
            (None, 0.039), // measuring, but the capture is dropped
            (Some(5.21), 10.0),
            (None, 69.0),
            (Some(4.9), 0.039),
            (None, 600.0),
            (Some(0.0), 0.039),
            (None, 33.3),
        ];
        assert_kernel_tracks_the_tracker(FocvSampleHold::paper_prototype().unwrap(), &seq);
    }

    #[test]
    fn kernel_replays_initial_phase_lanes() {
        for offset in [0.0, 10.0, 68.9] {
            let t = FocvSampleHold::paper_prototype()
                .unwrap()
                .with_initial_phase(Seconds::new(offset))
                .unwrap();
            let seq: Vec<(Option<f64>, f64)> = (0..160)
                .map(|i| {
                    let voc = (i % 7 == 3).then_some(5.0 + f64::from(i) * 0.01);
                    (voc, if i % 5 == 0 { 0.039 } else { 1.0 })
                })
                .collect();
            assert_kernel_tracks_the_tracker(t, &seq);
        }
    }

    #[test]
    fn kernel_exposes_the_tracker_parameters() {
        let t = FocvSampleHold::paper_prototype().unwrap();
        let kernel = t.kernel();
        assert_eq!(kernel.k(), t.k());
        assert_eq!(kernel.sample_period(), t.sample_period());
        assert_eq!(kernel.overhead_power(), t.overhead_power());
        assert!(!t.lane().measuring());
    }

    #[test]
    fn overhead_is_ultra_low_power() {
        let t = FocvSampleHold::paper_prototype().unwrap();
        assert!((t.overhead_power().as_micro() - 26.4).abs() < 0.1);
        assert!(!t.requires_light_sensor());
    }
}
