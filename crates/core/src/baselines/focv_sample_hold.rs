//! The paper's technique at behavioural level.

use eh_units::{Seconds, Volts, Watts};

use crate::controller::{MpptController, Observation, TrackerCommand};
use crate::error::CoreError;

/// The proposed FOCV sample-and-hold tracker: every `sample_period` the
/// module is disconnected for `pulse_width` to measure `Voc`; in between
/// the converter holds the module at `k · Voc_held`.
///
/// The default parameters are the prototype's measurements: 39 ms pulses
/// every 69 s, `k = 0.596`, and the 8 µA × 3.3 V metrology overhead the
/// paper reports in §IV-B.
///
/// ```
/// use eh_core::baselines::FocvSampleHold;
/// use eh_core::MpptController;
///
/// let tracker = FocvSampleHold::paper_prototype()?;
/// assert!(tracker.can_cold_start());
/// assert!(tracker.overhead_power().as_micro() < 30.0);
/// # Ok::<(), eh_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FocvSampleHold {
    k: f64,
    sample_period: Seconds,
    pulse_width: Seconds,
    overhead: Watts,
    held_voc: Option<Volts>,
    since_sample: Seconds,
    measuring: bool,
}

impl FocvSampleHold {
    /// Creates a tracker with explicit parameters.
    ///
    /// # Errors
    ///
    /// Rejects `k` outside `(0, 1)`, non-positive periods, or a pulse
    /// width that is not shorter than the sample period.
    pub fn new(
        k: f64,
        sample_period: Seconds,
        pulse_width: Seconds,
        overhead: Watts,
    ) -> Result<Self, CoreError> {
        if !(k.is_finite() && k > 0.0 && k < 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "k",
                value: k,
            });
        }
        if !(sample_period.value() > 0.0 && pulse_width.value() > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "periods",
                value: sample_period.value().min(pulse_width.value()),
            });
        }
        if pulse_width.value() >= sample_period.value() {
            return Err(CoreError::InvalidParameter {
                name: "pulse_width",
                value: pulse_width.value(),
            });
        }
        if !(overhead.value().is_finite() && overhead.value() >= 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "overhead",
                value: overhead.value(),
            });
        }
        Ok(Self {
            k,
            sample_period,
            pulse_width,
            overhead,
            held_voc: None,
            // Fire the first measurement immediately (the power-up PULSE).
            since_sample: sample_period,
            measuring: false,
        })
    }

    /// The prototype parameters: k = 0.596, 69 s period, 39 ms pulse,
    /// 8 µA at 3.3 V.
    ///
    /// # Errors
    ///
    /// Never fails for these constants; the `Result` mirrors
    /// [`FocvSampleHold::new`].
    pub fn paper_prototype() -> Result<Self, CoreError> {
        Self::new(
            0.596,
            Seconds::new(69.0),
            Seconds::from_milli(39.0),
            Volts::new(3.3) * eh_units::Amps::from_micro(8.0),
        )
    }

    /// Staggers the power-up PULSE by `offset` into the hold period: the
    /// first measurement fires after `offset` instead of immediately,
    /// and until then the tracker behaves as a circuit with a discharged
    /// hold capacitor — a held 0 V sample, converter off. Fleet
    /// simulations use this to model astable multivibrators that powered
    /// up at different instants, so a thousand nodes do not all
    /// interrupt harvesting in lock-step.
    ///
    /// # Errors
    ///
    /// Rejects an offset outside `[0, sample_period)`.
    pub fn with_initial_phase(mut self, offset: Seconds) -> Result<Self, CoreError> {
        if !(offset.value().is_finite() && offset.value() >= 0.0 && offset < self.sample_period) {
            return Err(CoreError::InvalidParameter {
                name: "initial_phase",
                value: offset.value(),
            });
        }
        self.since_sample = self.sample_period - offset;
        if offset.value() > 0.0 {
            // Discharged hold capacitor: tracks 0 V (converter off)
            // until the delayed first PULSE takes a real sample.
            self.held_voc = Some(Volts::ZERO);
        }
        Ok(self)
    }

    /// The trimmed FOCV factor.
    pub fn k(&self) -> f64 {
        self.k
    }

    /// The hold (sampling) period.
    pub fn sample_period(&self) -> Seconds {
        self.sample_period
    }

    /// The measurement pulse width (how long the module is disconnected
    /// per sample).
    pub fn pulse_width(&self) -> Seconds {
        self.pulse_width
    }

    /// The currently held open-circuit voltage, if a sample exists.
    pub fn held_voc(&self) -> Option<Volts> {
        self.held_voc
    }
}

impl MpptController for FocvSampleHold {
    fn name(&self) -> &str {
        "FOCV sample-and-hold (this paper)"
    }

    fn step(&mut self, obs: &Observation, dt: Seconds) -> TrackerCommand {
        // Capture the measurement made during a disconnect step.
        if self.measuring {
            if let Some(voc) = obs.voc_measurement {
                self.held_voc = Some(voc);
            }
            self.measuring = false;
            self.since_sample = Seconds::ZERO;
        } else {
            self.since_sample += dt;
        }

        if self.since_sample >= self.sample_period {
            self.measuring = true;
            return TrackerCommand::measure();
        }

        match self.held_voc {
            Some(voc) => TrackerCommand::connect_at(voc * self.k),
            // No valid sample yet (ACTIVE low): converter stays off.
            None => TrackerCommand::measure(),
        }
    }

    fn overhead_power(&self) -> Watts {
        self.overhead
    }

    fn can_cold_start(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_units::Lux;

    fn obs(voc: Option<f64>) -> Observation {
        Observation {
            pv_voltage: Volts::new(3.0),
            pv_power: Watts::from_micro(100.0),
            voc_measurement: voc.map(Volts::new),
            ambient_lux: Some(Lux::new(1000.0)),
            ..Observation::at(Seconds::ZERO)
        }
    }

    #[test]
    fn validation() {
        assert!(FocvSampleHold::new(
            1.2,
            Seconds::new(69.0),
            Seconds::from_milli(39.0),
            Watts::ZERO
        )
        .is_err());
        assert!(
            FocvSampleHold::new(0.6, Seconds::new(1.0), Seconds::new(2.0), Watts::ZERO).is_err()
        );
    }

    #[test]
    fn first_step_measures_then_tracks() {
        let mut t = FocvSampleHold::paper_prototype().unwrap();
        let c1 = t.step(&obs(None), Seconds::new(1.0));
        assert!(!c1.is_connect(), "must measure first");
        // Engine measured Voc = 5.44 V during the disconnect.
        let c2 = t.step(&obs(Some(5.44)), Seconds::new(1.0));
        assert!(c2.is_connect());
        assert!((c2.target_voltage().expect("connected").value() - 5.44 * 0.596).abs() < 1e-9);
        assert_eq!(t.held_voc(), Some(Volts::new(5.44)));
    }

    #[test]
    fn resamples_every_period() {
        let mut t = FocvSampleHold::paper_prototype().unwrap();
        t.step(&obs(None), Seconds::new(1.0));
        t.step(&obs(Some(5.0)), Seconds::new(1.0));
        let mut measured = 0;
        // Walk 140 s in 1 s steps: expect ~2 more measurement commands.
        for _ in 0..140 {
            let c = t.step(&obs(Some(5.0)), Seconds::new(1.0));
            if !c.is_connect() {
                measured += 1;
            }
        }
        assert_eq!(measured, 2, "one resample per 69 s");
    }

    #[test]
    fn holds_value_between_samples() {
        let mut t = FocvSampleHold::paper_prototype().unwrap();
        t.step(&obs(None), Seconds::new(1.0));
        t.step(&obs(Some(5.0)), Seconds::new(1.0));
        // Light changed but no resample yet: target unchanged.
        let c = t.step(&obs(None), Seconds::new(10.0));
        assert!((c.target_voltage().expect("connected").value() - 5.0 * 0.596).abs() < 1e-9);
    }

    #[test]
    fn initial_phase_delays_the_first_pulse() {
        let mut t = FocvSampleHold::paper_prototype()
            .unwrap()
            .with_initial_phase(Seconds::new(10.0))
            .unwrap();
        // For the first 9 s the tracker idles at a held 0 V sample.
        for _ in 0..9 {
            let c = t.step(&obs(None), Seconds::new(1.0));
            assert!(c.is_connect(), "no PULSE before the phase elapses");
            assert_eq!(c.target_voltage(), Some(Volts::ZERO));
        }
        // The 10th second reaches the staggered boundary: PULSE fires.
        let c = t.step(&obs(None), Seconds::new(1.0));
        assert!(!c.is_connect(), "delayed power-up PULSE must fire");
        let c = t.step(&obs(Some(5.44)), Seconds::new(1.0));
        assert!((c.target_voltage().expect("tracking").value() - 5.44 * 0.596).abs() < 1e-9);
    }

    #[test]
    fn initial_phase_validation() {
        let t = || FocvSampleHold::paper_prototype().unwrap();
        assert!(t().with_initial_phase(Seconds::new(-1.0)).is_err());
        assert!(t().with_initial_phase(Seconds::new(69.0)).is_err());
        assert!(t().with_initial_phase(Seconds::new(f64::NAN)).is_err());
        assert!(t().with_initial_phase(Seconds::ZERO).is_ok());
        assert!(t().with_initial_phase(Seconds::new(68.9)).is_ok());
    }

    #[test]
    fn overhead_is_ultra_low_power() {
        let t = FocvSampleHold::paper_prototype().unwrap();
        assert!((t.overhead_power().as_micro() - 26.4).abs() < 0.1);
        assert!(!t.requires_light_sensor());
    }
}
