//! Implementations of the proposed technique and the state of the art
//! the paper compares against.
//!
//! | Tracker | Paper reference | Quiescent overhead | Compute (ops/decision) |
//! |---|---|---|---|
//! | [`FocvSampleHold`] | this paper | 8 µA at 3.3 V ≈ 26 µW | 0 (analog) |
//! | [`VariableHoldFocv`] | this paper, Eq. 2 | ≈ 26 µW | 12 |
//! | [`AdaptiveKFocv`] | this paper + drift trim | ≈ 31 µW | 16 |
//! | [`PerturbObserve`] | hill-climbing, \[2\]; Simjee & Chou \[4\] | ~2 mW | 60 |
//! | [`GradientDescentMppt`] | adaptive-step, arXiv 2511.20895 | ~2 mW | 110 |
//! | [`IncrementalConductance`] | survey \[2\] | ~2 mW | 90 |
//! | [`FractionalIsc`] | survey \[2\] | ~1 mW | 40 |
//! | [`FixedVoltage`] | Weddell'08 \[8\] | reference IC, ~40 µW | 0 (analog) |
//! | [`PilotCell`] | Brunelli'08 \[5\] | ~300 µW "off" consumption | 0 (analog) |
//! | [`Photodetector`] | AmbiMax \[6\] | ~500 µA ≈ 1.65 mW | 0 (analog) |
//! | [`Oracle`] | ideal upper bound | zero | 0 |

mod adaptive_k_focv;
mod fixed_voltage;
mod focv_sample_hold;
mod fractional_isc;
mod gradient_descent;
mod incremental_conductance;
mod oracle;
mod perturb_observe;
mod photodetector;
mod pilot_cell;
mod variable_hold_focv;

pub use adaptive_k_focv::AdaptiveKFocv;
pub use fixed_voltage::FixedVoltage;
pub use focv_sample_hold::{FocvDecision, FocvKernel, FocvLane, FocvSampleHold};
pub use fractional_isc::FractionalIsc;
pub use gradient_descent::GradientDescentMppt;
pub use incremental_conductance::IncrementalConductance;
pub use oracle::Oracle;
pub use perturb_observe::PerturbObserve;
pub use photodetector::Photodetector;
pub use pilot_cell::PilotCell;
pub use variable_hold_focv::VariableHoldFocv;
