//! Implementations of the proposed technique and the state of the art
//! the paper compares against.
//!
//! | Tracker | Paper reference | Quiescent overhead |
//! |---|---|---|
//! | [`FocvSampleHold`] | this paper | 8 µA at 3.3 V ≈ 26 µW |
//! | [`PerturbObserve`] | hill-climbing, \[2\]; Simjee & Chou \[4\] | ~2 mW |
//! | [`IncrementalConductance`] | survey \[2\] | ~2 mW |
//! | [`FractionalIsc`] | survey \[2\] | ~1 mW |
//! | [`FixedVoltage`] | Weddell'08 \[8\] | reference IC, ~40 µW |
//! | [`PilotCell`] | Brunelli'08 \[5\] | ~300 µW "off" consumption |
//! | [`Photodetector`] | AmbiMax \[6\] | ~500 µA ≈ 1.65 mW |
//! | [`Oracle`] | ideal upper bound | zero |

mod fixed_voltage;
mod focv_sample_hold;
mod fractional_isc;
mod incremental_conductance;
mod oracle;
mod perturb_observe;
mod photodetector;
mod pilot_cell;

pub use fixed_voltage::FixedVoltage;
pub use focv_sample_hold::{FocvDecision, FocvKernel, FocvLane, FocvSampleHold};
pub use fractional_isc::FractionalIsc;
pub use incremental_conductance::IncrementalConductance;
pub use oracle::Oracle;
pub use perturb_observe::PerturbObserve;
pub use photodetector::Photodetector;
pub use pilot_cell::PilotCell;
