//! The ideal tracker — an upper bound for comparisons.

use eh_pv::PvCell;
use eh_units::{Seconds, Volts, Watts};

use crate::controller::{MpptController, Observation, TrackerCommand};

/// An omniscient tracker that always commands the true MPP voltage with
/// zero overhead. Physically unrealisable; used to normalise every other
/// tracker's harvest ("efficiency vs oracle").
#[derive(Debug, Clone)]
pub struct Oracle {
    cell: PvCell,
}

impl Oracle {
    /// Creates an oracle for the given cell.
    pub fn new(cell: PvCell) -> Self {
        Self { cell }
    }
}

impl MpptController for Oracle {
    fn name(&self) -> &str {
        "oracle (ideal MPP)"
    }

    fn step(&mut self, obs: &Observation, _dt: Seconds) -> TrackerCommand {
        let lux = obs.ambient_lux.unwrap_or_default();
        match self.cell.mpp(lux) {
            Ok(mpp) if mpp.voltage.value() > 0.0 => TrackerCommand::connect_at(mpp.voltage),
            _ => TrackerCommand::connect_at(Volts::ZERO),
        }
    }

    fn overhead_power(&self) -> Watts {
        Watts::ZERO
    }

    fn can_cold_start(&self) -> bool {
        true
    }

    fn requires_light_sensor(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_pv::presets;
    use eh_units::Lux;

    #[test]
    fn commands_true_mpp() {
        let cell = presets::sanyo_am1815();
        let mut oracle = Oracle::new(cell.clone());
        let obs = Observation {
            ambient_lux: Some(Lux::new(1000.0)),
            ..Observation::at(Seconds::ZERO)
        };
        let c = oracle.step(&obs, Seconds::new(1.0));
        let mpp = cell.mpp(Lux::new(1000.0)).unwrap();
        assert!(
            (c.target_voltage().expect("connected").value() - mpp.voltage.value()).abs() < 1e-9
        );
        assert_eq!(oracle.overhead_power(), Watts::ZERO);
    }

    #[test]
    fn dark_commands_zero() {
        let mut oracle = Oracle::new(presets::sanyo_am1815());
        let obs = Observation {
            ambient_lux: Some(Lux::ZERO),
            ..Observation::at(Seconds::ZERO)
        };
        let c = oracle.step(&obs, Seconds::new(1.0));
        assert_eq!(c.target_voltage(), Some(Volts::ZERO));
    }
}
