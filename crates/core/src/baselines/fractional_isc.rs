//! The fractional short-circuit-current baseline (from the Esram &
//! Chapman survey the paper cites as [2]).

use eh_units::{Amps, Seconds, Volts, Watts};

use crate::compute::ComputeCost;
use crate::controller::{MpptController, Observation, TrackerCommand};
use crate::error::CoreError;

/// Fractional-Isc: the MPP *current* of a PV cell is approximately
/// proportional to its short-circuit current (`Impp ≈ k_i · Isc`), so
/// the tracker periodically shorts the module, measures `Isc`, and then
/// regulates the operating point so the module delivers `k_i·Isc`.
///
/// Since our converter regulates voltage, the current command is turned
/// into a voltage by a local search each control step (in hardware this
/// is the converter's current loop). The periodic short costs *all* the
/// module power during the measurement — a harsher interruption than the
/// paper's open-circuit PULSE — and the sensing chain is MCU-class, so
/// this method too fails the indoor budget.
#[derive(Debug, Clone)]
pub struct FractionalIsc {
    k_i: f64,
    sample_period: Seconds,
    overhead: Watts,
    held_isc: Option<Amps>,
    target: Volts,
    since_sample: Seconds,
    measuring: bool,
}

impl FractionalIsc {
    /// Creates a tracker with MPP-current fraction `k_i` and a given
    /// shorting period.
    ///
    /// # Errors
    ///
    /// Rejects `k_i` outside `(0, 1)`, a non-positive period or negative
    /// overhead.
    pub fn new(k_i: f64, sample_period: Seconds, overhead: Watts) -> Result<Self, CoreError> {
        if !(k_i.is_finite() && k_i > 0.0 && k_i < 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "k_i",
                value: k_i,
            });
        }
        if !(sample_period.value().is_finite() && sample_period.value() > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "sample_period",
                value: sample_period.value(),
            });
        }
        if !(overhead.value().is_finite() && overhead.value() >= 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "overhead",
                value: overhead.value(),
            });
        }
        Ok(Self {
            k_i,
            sample_period,
            overhead,
            held_isc: None,
            target: Volts::new(2.5),
            since_sample: sample_period,
            measuring: false,
        })
    }

    /// Configuration tuned for the AM-1815: `k_i = 0.5`. Crystalline
    /// cells use the textbook `k_i ≈ 0.9`, but amorphous cells lose
    /// current to photo-conductive shunting well before the diode knee,
    /// so their `Impp/Isc` sits near one half — one more calibration
    /// burden the paper's voltage-based technique avoids. Shorts every
    /// 10 s; 1 mW sensing/control overhead.
    ///
    /// # Errors
    ///
    /// Never fails for these constants; mirrors [`FractionalIsc::new`].
    pub fn literature_default() -> Result<Self, CoreError> {
        Self::new(0.5, Seconds::new(10.0), Watts::from_milli(1.0))
    }

    /// The held short-circuit current, if measured.
    pub fn held_isc(&self) -> Option<Amps> {
        self.held_isc
    }

    /// The present voltage target.
    pub fn target(&self) -> Volts {
        self.target
    }
}

impl MpptController for FractionalIsc {
    fn name(&self) -> &str {
        "fractional Isc [2]"
    }

    fn step(&mut self, obs: &Observation, dt: Seconds) -> TrackerCommand {
        let capturing = self.measuring;
        if self.measuring {
            if let Some(isc) = obs.isc_measurement {
                self.held_isc = Some(isc);
            }
            self.measuring = false;
            self.since_sample = Seconds::ZERO;
        } else {
            self.since_sample += dt;
        }

        if self.since_sample >= self.sample_period {
            self.measuring = true;
            return TrackerCommand::MeasureIsc;
        }

        let Some(isc) = self.held_isc else {
            return TrackerCommand::MeasureIsc;
        };
        // Current-loop emulation: nudge the voltage to steer the sensed
        // current toward k_i·Isc. Below the knee the module is a current
        // source, so "too much current" means we are below the MPP
        // voltage and must step up; "too little" means we passed the knee.
        // On the capture step the sensed current is the short-circuit
        // current from the measurement interval itself, not an
        // operating-point current — judging it would read "too much
        // current" after every sample and ratchet the target up
        // regardless of the operating point, so the loop holds for one
        // step instead.
        if !capturing {
            let target_current = isc.value() * self.k_i;
            if obs.pv_current.value() > target_current * 1.02 {
                self.target += Volts::from_milli(50.0);
            } else if obs.pv_current.value() < target_current * 0.98 {
                self.target -= Volts::from_milli(50.0);
            }
            self.target = self.target.clamp(Volts::from_milli(100.0), Volts::new(8.0));
        }
        TrackerCommand::connect_at(self.target)
    }

    fn overhead_power(&self) -> Watts {
        self.overhead
    }

    fn can_cold_start(&self) -> bool {
        false
    }

    fn compute_cost(&self) -> ComputeCost {
        // One scale, two compares, one step, one clamp per decision.
        ComputeCost::mcu_class(40)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_pv::presets;
    use eh_units::Lux;

    #[test]
    fn validation() {
        assert!(FractionalIsc::new(0.0, Seconds::new(10.0), Watts::ZERO).is_err());
        assert!(FractionalIsc::new(1.1, Seconds::new(10.0), Watts::ZERO).is_err());
        assert!(FractionalIsc::new(0.9, Seconds::ZERO, Watts::ZERO).is_err());
    }

    #[test]
    fn first_command_is_a_short() {
        let mut t = FractionalIsc::literature_default().unwrap();
        let cmd = t.step(&Observation::at(Seconds::ZERO), Seconds::new(1.0));
        assert_eq!(cmd, TrackerCommand::MeasureIsc);
    }

    #[test]
    fn converges_near_the_mpp() {
        let cell = presets::sanyo_am1815();
        let lux = Lux::new(1000.0);
        let isc = cell.short_circuit_current(lux).unwrap();
        let mpp = cell.mpp(lux).unwrap();

        let mut t = FractionalIsc::literature_default().unwrap();
        // Prime with a short measurement.
        t.step(&Observation::at(Seconds::ZERO), Seconds::new(0.1));
        let mut obs = Observation {
            isc_measurement: Some(isc),
            ..Observation::at(Seconds::ZERO)
        };
        let mut v = Volts::new(2.5);
        for _ in 0..300 {
            let cmd = t.step(&obs, Seconds::new(0.1));
            match cmd {
                TrackerCommand::Connect(target) => {
                    v = target;
                    let i = cell.current_at(v, lux).unwrap().max(Amps::ZERO);
                    obs = Observation {
                        pv_voltage: v,
                        pv_current: i,
                        pv_power: v * i,
                        ..Observation::at(Seconds::ZERO)
                    };
                }
                TrackerCommand::MeasureIsc => {
                    obs = Observation {
                        isc_measurement: Some(isc),
                        ..Observation::at(Seconds::ZERO)
                    };
                }
                TrackerCommand::MeasureVoc => unreachable!("FSCC never measures Voc"),
            }
        }
        // Fractional-Isc is an approximation; it should land in the MPP
        // neighbourhood (within ~15 % power).
        let p = cell.power_at(v, lux).unwrap();
        assert!(
            p.value() > 0.85 * mpp.power.value(),
            "settled at {v} with {p}, MPP {}",
            mpp.power
        );
    }

    #[test]
    fn declares_costs() {
        let t = FractionalIsc::literature_default().unwrap();
        assert!(t.overhead_power().as_micro() >= 500.0);
        assert!(!t.can_cold_start());
        assert!(!t.requires_light_sensor());
        assert!(!t.compute_cost().is_free());
    }

    #[test]
    fn capture_step_does_not_nudge_on_the_short_circuit_current() {
        // Regression: the engine reports the measurement interval's
        // short-circuit current as `pv_current` on the step after a
        // short, so the current loop used to see `Isc > k_i·Isc` after
        // every sample and bump the target +50 mV unconditionally. The
        // capture step must hold the previous target.
        let mut t = FractionalIsc::literature_default().unwrap();
        // First command is a short; the tracker is now `measuring`.
        let cmd = t.step(&Observation::at(Seconds::ZERO), Seconds::new(0.1));
        assert_eq!(cmd, TrackerCommand::MeasureIsc);
        let before = t.target();
        // The post-short observation, as the engine builds it: the
        // measured Isc both in `isc_measurement` and as the sensed
        // operating current.
        let isc = Amps::from_micro(200.0);
        let obs = Observation {
            pv_current: isc,
            isc_measurement: Some(isc),
            ..Observation::at(Seconds::new(0.1))
        };
        let cmd = t.step(&obs, Seconds::new(0.1));
        assert!(cmd.is_connect());
        assert_eq!(
            t.target(),
            before,
            "capture step must not judge the short-circuit current as an operating point"
        );
    }
}
