//! The incremental-conductance baseline (from the Esram & Chapman survey
//! the paper cites as \[2\]).

use eh_units::{Amps, Seconds, Volts, Watts};

use crate::compute::ComputeCost;
use crate::controller::{MpptController, Observation, TrackerCommand};
use crate::error::CoreError;

/// Incremental conductance: at the MPP, `dP/dV = 0` implies
/// `dI/dV = −I/V`. The tracker compares the incremental conductance
/// `ΔI/ΔV` against the instantaneous conductance `−I/V` and steps the
/// operating voltage toward the equality.
///
/// Like perturb & observe it needs a microcontroller plus synchronised
/// current *and* voltage sensing, so its overhead is in the same class
/// (\[4\]-like, 2 mW by default) — another technique the paper's intro
/// rules out for indoor use.
#[derive(Debug, Clone)]
pub struct IncrementalConductance {
    step_size: Volts,
    control_period: Seconds,
    overhead: Watts,
    target: Volts,
    last_voltage: Volts,
    last_current: Amps,
    since_control: Seconds,
    primed: bool,
}

impl IncrementalConductance {
    /// Creates a tracker stepping by `step_size` every `control_period`.
    ///
    /// # Errors
    ///
    /// Rejects non-positive step size or period, or negative overhead.
    pub fn new(
        step_size: Volts,
        control_period: Seconds,
        initial_target: Volts,
        overhead: Watts,
    ) -> Result<Self, CoreError> {
        if !(step_size.value().is_finite() && step_size.value() > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "step_size",
                value: step_size.value(),
            });
        }
        if !(control_period.value().is_finite() && control_period.value() > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "control_period",
                value: control_period.value(),
            });
        }
        if !(overhead.value().is_finite() && overhead.value() >= 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "overhead",
                value: overhead.value(),
            });
        }
        Ok(Self {
            step_size,
            control_period,
            overhead,
            target: initial_target,
            last_voltage: Volts::ZERO,
            last_current: Amps::ZERO,
            since_control: Seconds::ZERO,
            primed: false,
        })
    }

    /// Literature-typical configuration: 25 mV steps at 10 Hz from 2.5 V,
    /// 2 mW controller overhead.
    ///
    /// # Errors
    ///
    /// Never fails for these constants; mirrors
    /// [`IncrementalConductance::new`].
    pub fn literature_default() -> Result<Self, CoreError> {
        Self::new(
            Volts::from_milli(25.0),
            Seconds::from_milli(100.0),
            Volts::new(2.5),
            Watts::from_milli(2.0),
        )
    }

    /// The present voltage target.
    pub fn target(&self) -> Volts {
        self.target
    }
}

impl MpptController for IncrementalConductance {
    fn name(&self) -> &str {
        "incremental conductance [2]"
    }

    fn step(&mut self, obs: &Observation, dt: Seconds) -> TrackerCommand {
        self.since_control += dt;
        if self.since_control >= self.control_period {
            self.since_control = Seconds::ZERO;
            let dv = (obs.pv_voltage - self.last_voltage).value();
            let di = (obs.pv_current - self.last_current).value();
            let v = obs.pv_voltage.value();
            let i = obs.pv_current.value();
            let direction = if !self.primed {
                // Nothing sensed yet: probe upward.
                1.0
            } else if v <= 0.0 {
                // Dark module: hold position instead of running away.
                0.0
            } else if i <= 1e-9 {
                // Pinned at open circuit (zero current): walk back down.
                -1.0
            } else if dv.abs() < 1e-9 {
                // No voltage change: move on current change (a light step
                // at fixed voltage shifts the MPP the same way).
                if di > 0.0 {
                    1.0
                } else if di < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            } else {
                let incremental = di / dv;
                let instantaneous = -i / v;
                if incremental > instantaneous {
                    1.0 // left of the MPP: increase voltage
                } else if incremental < instantaneous {
                    -1.0 // right of the MPP: decrease voltage
                } else {
                    0.0 // at the MPP: hold
                }
            };
            self.last_voltage = obs.pv_voltage;
            self.last_current = obs.pv_current;
            self.primed = true;
            self.target = (self.target + self.step_size * direction)
                .clamp(Volts::from_milli(100.0), Volts::new(8.0));
        }
        TrackerCommand::connect_at(self.target)
    }

    fn overhead_power(&self) -> Watts {
        self.overhead
    }

    fn can_cold_start(&self) -> bool {
        false
    }

    fn compute_cost(&self) -> ComputeCost {
        // Two divisions (ΔI/ΔV and I/V) dominate; division-heavy
        // decisions cost noticeably more than P&O's compare-and-step.
        ComputeCost::mcu_class(90)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_pv::presets;
    use eh_units::Lux;

    fn observe(cell: &eh_pv::PvCell, v: Volts, lux: Lux) -> Observation {
        let i = cell.current_at(v, lux).unwrap().max(Amps::ZERO);
        Observation {
            pv_voltage: v,
            pv_current: i,
            pv_power: v * i,
            ..Observation::at(Seconds::ZERO)
        }
    }

    #[test]
    fn validation() {
        assert!(IncrementalConductance::new(
            Volts::ZERO,
            Seconds::new(0.1),
            Volts::new(2.5),
            Watts::ZERO
        )
        .is_err());
        assert!(IncrementalConductance::new(
            Volts::new(0.025),
            Seconds::ZERO,
            Volts::new(2.5),
            Watts::ZERO
        )
        .is_err());
        assert!(IncrementalConductance::new(
            Volts::new(0.025),
            Seconds::new(0.1),
            Volts::new(2.5),
            Watts::new(-1.0)
        )
        .is_err());
    }

    #[test]
    fn converges_to_the_mpp_on_a_real_cell() {
        let cell = presets::sanyo_am1815();
        let lux = Lux::new(1000.0);
        let mpp = cell.mpp(lux).unwrap();
        let mut t = IncrementalConductance::literature_default().unwrap();
        let mut v = t.target();
        for _ in 0..600 {
            let obs = observe(&cell, v, lux);
            let cmd = t.step(&obs, Seconds::from_milli(100.0));
            v = cmd.target_voltage().expect("IncCond stays connected");
        }
        assert!(
            (v.value() - mpp.voltage.value()).abs() < 0.1,
            "settled at {v}, MPP at {}",
            mpp.voltage
        );
    }

    #[test]
    fn refollows_a_light_change() {
        let cell = presets::sanyo_am1815();
        let mut t = IncrementalConductance::literature_default().unwrap();
        let mut v = t.target();
        for _ in 0..600 {
            let obs = observe(&cell, v, Lux::new(500.0));
            v = t
                .step(&obs, Seconds::from_milli(100.0))
                .target_voltage()
                .unwrap();
        }
        let settled_dim = v;
        for _ in 0..600 {
            let obs = observe(&cell, v, Lux::new(5000.0));
            v = t
                .step(&obs, Seconds::from_milli(100.0))
                .target_voltage()
                .unwrap();
        }
        let mpp_bright = cell.mpp(Lux::new(5000.0)).unwrap().voltage;
        assert!(
            (v.value() - mpp_bright.value()).abs() < 0.15,
            "after brightening: {v} vs MPP {mpp_bright} (was {settled_dim})"
        );
    }

    #[test]
    fn declares_mcu_class_costs() {
        let t = IncrementalConductance::literature_default().unwrap();
        assert!(t.overhead_power().as_milli() >= 1.0);
        assert!(!t.can_cold_start());
        assert!(!t.requires_light_sensor());
        assert!(!t.compute_cost().is_free());
    }

    #[test]
    fn first_decision_probes_upward_even_in_the_dark() {
        // Audit pin (sibling of the P&O first-sample bug): `primed`
        // guards the uninitialized conductance terms, so a dark start
        // (all-zero observation) must still probe upward rather than
        // dividing by a zero Δv or judging the zero initializers.
        let mut t = IncrementalConductance::literature_default().unwrap();
        let start = t.target();
        let cmd = t.step(&Observation::at(Seconds::ZERO), Seconds::from_milli(100.0));
        assert!(cmd.target_voltage().expect("stays connected") > start);
    }
}
