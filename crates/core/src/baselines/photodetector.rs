//! The photodetector baseline (AmbiMax, Park & Chou \[6\]).

use eh_units::{Lux, Seconds, Volts, Watts};

use crate::controller::{MpptController, Observation, TrackerCommand};
use crate::error::CoreError;

/// An AmbiMax-style tracker: a photodiode measures ambient light and an
/// analog law maps it to the expected MPP voltage. The sensor chain
/// consumes ~500 µA \[6\] — ultra cheap outdoors, ruinous indoors — and
/// the lux→Vmpp law is a calibration that carries systematic error.
#[derive(Debug, Clone)]
pub struct Photodetector {
    /// Voc model intercept (volts at 1 lux).
    intercept: Volts,
    /// Voc model slope per ln(lux).
    slope: Volts,
    k: f64,
    /// Multiplicative calibration error of the sensor chain.
    calibration_gain: f64,
    overhead: Watts,
}

impl Photodetector {
    /// Creates a tracker with an explicit `Voc ≈ intercept + slope·ln(lux)`
    /// calibration, FOCV factor `k`, a multiplicative calibration error
    /// and overhead power.
    ///
    /// # Errors
    ///
    /// Rejects `k` outside `(0, 1)`, non-positive slope or calibration
    /// gain, or negative overhead.
    pub fn new(
        intercept: Volts,
        slope: Volts,
        k: f64,
        calibration_gain: f64,
        overhead: Watts,
    ) -> Result<Self, CoreError> {
        if !(k.is_finite() && k > 0.0 && k < 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "k",
                value: k,
            });
        }
        if !(slope.value().is_finite() && slope.value() > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "slope",
                value: slope.value(),
            });
        }
        if !(calibration_gain.is_finite() && calibration_gain > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "calibration_gain",
                value: calibration_gain,
            });
        }
        if !(overhead.value().is_finite() && overhead.value() >= 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "overhead",
                value: overhead.value(),
            });
        }
        Ok(Self {
            intercept,
            slope,
            k,
            calibration_gain,
            overhead,
        })
    }

    /// The literature configuration, calibrated against the AM-1815's
    /// log-law (`Voc ≈ 3.76 + 0.24·ln(lux)`), with a 3 % systematic
    /// calibration error and the 500 µA × 3.3 V overhead of \[6\].
    ///
    /// # Errors
    ///
    /// Never fails for these constants; mirrors [`Photodetector::new`].
    pub fn literature_default() -> Result<Self, CoreError> {
        Self::new(
            Volts::new(3.76),
            Volts::new(0.24),
            0.596,
            1.03,
            Volts::new(3.3) * eh_units::Amps::from_micro(500.0),
        )
    }

    /// The estimated open-circuit voltage for a lux reading.
    pub fn estimate_voc(&self, lux: Lux) -> Volts {
        if lux.value() <= 1.0 {
            return Volts::ZERO;
        }
        (self.intercept + self.slope * lux.value().ln()) * self.calibration_gain
    }
}

impl MpptController for Photodetector {
    fn name(&self) -> &str {
        "photodetector (AmbiMax) [6]"
    }

    fn step(&mut self, obs: &Observation, _dt: Seconds) -> TrackerCommand {
        let lux = obs.ambient_lux.unwrap_or_default();
        let voc = self.estimate_voc(lux);
        if voc.value() <= 0.0 {
            return TrackerCommand::measure();
        }
        TrackerCommand::connect_at(voc * self.k)
    }

    fn overhead_power(&self) -> Watts {
        self.overhead
    }

    fn can_cold_start(&self) -> bool {
        true
    }

    fn requires_light_sensor(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_pv::presets;

    fn obs(lux: f64) -> Observation {
        Observation {
            pv_voltage: Volts::new(3.0),
            ambient_lux: Some(Lux::new(lux)),
            ..Observation::at(Seconds::ZERO)
        }
    }

    #[test]
    fn validation() {
        assert!(Photodetector::new(Volts::new(3.0), Volts::ZERO, 0.6, 1.0, Watts::ZERO).is_err());
        assert!(
            Photodetector::new(Volts::new(3.0), Volts::new(0.3), 0.6, 0.0, Watts::ZERO).is_err()
        );
    }

    #[test]
    fn estimate_tracks_true_voc_within_calibration_error() {
        let t = Photodetector::literature_default().unwrap();
        let cell = presets::sanyo_am1815();
        for lux in [200.0, 1000.0, 5000.0] {
            let est = t.estimate_voc(Lux::new(lux)).value();
            let truth = cell.open_circuit_voltage(Lux::new(lux)).unwrap().value();
            let rel = (est - truth).abs() / truth;
            assert!(rel < 0.08, "estimate off by {rel:.3} at {lux} lx");
        }
    }

    #[test]
    fn commands_follow_estimate() {
        let mut t = Photodetector::literature_default().unwrap();
        let c = t.step(&obs(1000.0), Seconds::new(1.0));
        assert!(c.is_connect());
        let expected = t.estimate_voc(Lux::new(1000.0)).value() * 0.596;
        assert!((c.target_voltage().expect("connected").value() - expected).abs() < 1e-9);
    }

    #[test]
    fn dark_gives_no_target_and_overhead_is_heavy() {
        let mut t = Photodetector::literature_default().unwrap();
        assert!(!t.step(&obs(0.5), Seconds::new(1.0)).is_connect());
        assert!((t.overhead_power().as_milli() - 1.65).abs() < 0.01);
        assert!(t.requires_light_sensor());
    }
}
