//! The complexity-aware compute-cost model.
//!
//! The paper's argument is economic: a tracker is only worth what it
//! costs, and the FOCV sample-and-hold wins indoors because its
//! metrology budget undercuts mW-class digital trackers. The same logic
//! applies one level down — two digital trackers with the same sensing
//! chain can still differ in how much *arithmetic* each decision takes
//! (a division-heavy incremental-conductance update versus a P&O
//! compare-and-step), and complexity-aware benchmarking charges that
//! difference explicitly as `ops per decision × energy per op`.
//!
//! Each [`crate::MpptController`] declares a [`ComputeCost`]; the
//! closed-loop engines charge one decision's worth of energy per control
//! step, separately from the quiescent sensing overhead, so fleet
//! comparisons can report gross harvest, metrology energy and compute
//! energy as independent columns.

use eh_units::Joules;

/// Energy per executed control-law operation for an MSP430-class
/// ultra-low-power microcontroller, including the amortised wake-up and
/// ADC conversion share: ~1.2 nJ per op at 3 V.
pub const MCU_ENERGY_PER_OP: Joules = Joules::new(1.2e-9);

/// The digital cost of one tracker decision: how many control-law
/// operations it executes and what each op costs.
///
/// A *decision* is one invocation of the tracker's control law — in the
/// behavioural simulation, one [`crate::MpptController::step`] call.
/// Purely analog trackers (the paper's sample-and-hold, a fixed
/// reference IC) execute zero ops; their cost is [`ComputeCost::ZERO`].
///
/// ```
/// use eh_core::ComputeCost;
///
/// let cost = ComputeCost::mcu_class(120);
/// assert!(cost.energy_per_decision().value() > 0.0);
/// assert_eq!(ComputeCost::ZERO.energy_per_decision().value(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeCost {
    /// Control-law operations executed per decision.
    pub ops_per_decision: u64,
    /// Energy per operation.
    pub energy_per_op: Joules,
}

impl ComputeCost {
    /// The cost of an analog implementation: zero ops, zero energy.
    pub const ZERO: ComputeCost = ComputeCost {
        ops_per_decision: 0,
        energy_per_op: Joules::new(0.0),
    };

    /// A cost with explicit op count and per-op energy.
    pub fn new(ops_per_decision: u64, energy_per_op: Joules) -> Self {
        Self {
            ops_per_decision,
            energy_per_op,
        }
    }

    /// A cost of `ops_per_decision` ops on the reference MCU
    /// ([`MCU_ENERGY_PER_OP`]).
    pub fn mcu_class(ops_per_decision: u64) -> Self {
        Self::new(ops_per_decision, MCU_ENERGY_PER_OP)
    }

    /// The energy one decision consumes: `ops × energy/op`.
    pub fn energy_per_decision(&self) -> Joules {
        Joules::new(self.ops_per_decision as f64 * self.energy_per_op.value())
    }

    /// Whether this cost charges nothing (analog implementations).
    pub fn is_free(&self) -> bool {
        self.energy_per_decision().value() <= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_cost_is_free() {
        assert!(ComputeCost::ZERO.is_free());
        assert_eq!(ComputeCost::ZERO.energy_per_decision(), Joules::ZERO);
    }

    #[test]
    fn mcu_cost_scales_with_ops() {
        let a = ComputeCost::mcu_class(100);
        let b = ComputeCost::mcu_class(200);
        assert!(!a.is_free());
        assert!(
            (b.energy_per_decision().value() - 2.0 * a.energy_per_decision().value()).abs() < 1e-18
        );
    }

    #[test]
    fn explicit_energy_per_op() {
        let c = ComputeCost::new(10, Joules::new(2e-9));
        assert_eq!(c.energy_per_decision(), Joules::new(2e-8));
    }
}
