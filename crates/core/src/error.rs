//! Error type for the core system crate.

use std::error::Error;
use std::fmt;

use eh_analog::AnalogError;
use eh_converter::ConverterError;
use eh_env::EnvError;
use eh_pv::PvError;

/// Errors returned by the MPPT system and its runners.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// An underlying PV model error.
    Pv(PvError),
    /// An underlying analog substrate error.
    Analog(AnalogError),
    /// An underlying converter error.
    Converter(ConverterError),
    /// An underlying environment error.
    Env(EnvError),
    /// A system-level parameter was invalid.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Pv(e) => write!(f, "pv model: {e}"),
            CoreError::Analog(e) => write!(f, "analog substrate: {e}"),
            CoreError::Converter(e) => write!(f, "converter: {e}"),
            CoreError::Env(e) => write!(f, "environment: {e}"),
            CoreError::InvalidParameter { name, value } => {
                write!(f, "invalid system parameter {name} = {value}")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Pv(e) => Some(e),
            CoreError::Analog(e) => Some(e),
            CoreError::Converter(e) => Some(e),
            CoreError::Env(e) => Some(e),
            CoreError::InvalidParameter { .. } => None,
        }
    }
}

impl From<PvError> for CoreError {
    fn from(e: PvError) -> Self {
        CoreError::Pv(e)
    }
}

impl From<AnalogError> for CoreError {
    fn from(e: AnalogError) -> Self {
        CoreError::Analog(e)
    }
}

impl From<ConverterError> for CoreError {
    fn from(e: ConverterError) -> Self {
        CoreError::Converter(e)
    }
}

impl From<EnvError> for CoreError {
    fn from(e: EnvError) -> Self {
        CoreError::Env(e)
    }
}

impl From<eh_sim::SimError> for CoreError {
    fn from(e: eh_sim::SimError) -> Self {
        match e {
            eh_sim::SimError::InvalidParameter { name, value } => {
                CoreError::InvalidParameter { name, value }
            }
            eh_sim::SimError::Env(e) => CoreError::Env(e),
            _ => CoreError::InvalidParameter {
                name: "sim",
                value: f64::NAN,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sub_errors_with_source() {
        let e: CoreError = PvError::SolveFailed { what: "voc" }.into();
        assert!(e.to_string().contains("voc"));
        assert!(e.source().is_some());
        let e: CoreError = AnalogError::SingularNetwork.into();
        assert!(e.to_string().contains("singular"));
        let e = CoreError::InvalidParameter {
            name: "alpha",
            value: 0.0,
        };
        assert!(e.source().is_none());
    }
}
