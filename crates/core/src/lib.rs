//! The paper's contribution: the ultra low-power FOCV sample-and-hold
//! MPPT system, plus the baseline trackers it is evaluated against.
//!
//! Two levels of model are provided:
//!
//! * [`FocvMpptSystem`] — the full circuit-level composition of Fig. 3:
//!   PV cell, cold-start capacitor, astable multivibrator, sample-and-hold
//!   and input-regulated converter, stepped with event-exact analog
//!   dynamics. This is the model behind Table I, Fig. 4 and the
//!   cold-start experiments.
//! * [`MpptController`] — a behavioural tracker interface with
//!   implementations of the proposed technique ([`baselines::FocvSampleHold`])
//!   and of the state of the art the paper compares against:
//!   hill-climbing/perturb-&-observe ([`baselines::PerturbObserve`], cf. \[2\]),
//!   a fixed-voltage harvester ([`baselines::FixedVoltage`], cf. \[8\]),
//!   a pilot-cell tracker ([`baselines::PilotCell`], cf. \[5\] Brunelli),
//!   a photodetector tracker ([`baselines::Photodetector`], cf. \[6\]
//!   AmbiMax), and an ideal [`baselines::Oracle`]. These drive the
//!   day-scale comparisons in `eh-node`.
//!
//! # Example: one sampling cycle of the full system
//!
//! ```
//! use eh_core::{FocvMpptSystem, SystemConfig};
//! use eh_units::{Lux, Seconds};
//!
//! let mut sys = FocvMpptSystem::new(SystemConfig::paper_prototype()?)?;
//! // Run 10 minutes at a constant office 1000 lux.
//! let report = sys.run_constant(Lux::new(1000.0), Seconds::from_minutes(10.0), Seconds::from_milli(5.0))?;
//! assert!(report.pulses >= 8, "one PULSE per ~69 s expected");
//! # Ok::<(), eh_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
mod compute;
mod controller;
mod error;
mod metrics;
mod system;

pub use compute::{ComputeCost, MCU_ENERGY_PER_OP};
pub use controller::{MpptController, Observation, TrackerCommand};
pub use error::CoreError;
pub use metrics::{tracking_accuracy_table, HarvestSummary, TrackingAccuracyRow};
pub use system::{FocvMpptSystem, RunReport, SystemConfig, SystemState, SystemStep};
