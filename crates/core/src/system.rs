//! The full Fig. 3 system composition.

use eh_analog::astable::{AstableConfig, AstableMultivibrator};
use eh_analog::components::MosfetSwitch;
use eh_analog::sample_hold::{SampleHold, SampleHoldConfig};
use eh_analog::{CurrentLedger, Trace, TracePolicy};
use eh_converter::{ColdStart, InputRegulatedConverter};
use eh_env::TimeSeries;
use eh_obs::{EnergyBucket, Metrics, Recorder};
use eh_pv::{presets, PvCell};
use eh_sim::{drive, Light, StepInput, StepOutput, Stepper};
use eh_units::{Amps, Coulombs, Joules, Lux, Ratio, Seconds, Volts};

use crate::error::CoreError;

/// Configuration of the complete MPPT platform.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// The PV module.
    pub cell: PvCell,
    /// Astable multivibrator configuration (PULSE timing).
    pub astable: AstableConfig,
    /// Sample-and-hold configuration (divider trim, buffers, hold cap).
    pub sample_hold: SampleHoldConfig,
    /// Cold-start circuit (C1/D1/threshold), in its initial state.
    pub cold_start: ColdStart,
    /// The input-regulated switching converter.
    pub converter: InputRegulatedConverter,
    /// The α of Eq. (3): the extra division applied on top of `k` for
    /// circuit-level representation. The converter holds the PV node at
    /// `HELD_SAMPLE / α = k·Voc`.
    pub alpha: f64,
    /// The single series MOSFET (M1) between the PV module and the
    /// converter — §IV-B: "with only one low on-resistance MOSFET in the
    /// line between the PV cell and the switching converter ... there is
    /// a negligible impact on the overall efficiency".
    pub series_switch: MosfetSwitch,
    /// Whether to record PULSE / HELD_SAMPLE / PV waveform traces
    /// (memory-heavy on day-scale runs).
    pub record_traces: bool,
    /// Whether the cell answers hot-path queries from the memoized
    /// [`eh_pv::CachedPvSurface`] instead of the exact implicit solver
    /// (accurate to the documented error bound; `false` keeps the exact
    /// reference path for validation runs).
    pub pv_cache: bool,
    /// Memory policy applied to recorded traces: full fidelity, fixed
    /// decimation, or a hard sample-count capacity for day-scale runs.
    pub trace_policy: TracePolicy,
    /// Whether to collect deterministic metrics (counters, spans, the
    /// per-bucket energy ledger) into an [`eh_obs::Metrics`] store. Off
    /// by default: uninstrumented runs pay only a branch per segment.
    pub obs: bool,
}

impl SystemConfig {
    /// The paper's prototype: SANYO AM-1815 cell, 39 ms / 69 s astable,
    /// divider trimmed to `k·α = 0.596·0.5 = 0.298`, 47 µF cold-start
    /// capacitor and the micropower buck-boost.
    ///
    /// # Errors
    ///
    /// Propagates sub-component validation failures.
    pub fn paper_prototype() -> Result<Self, CoreError> {
        Ok(Self {
            cell: presets::sanyo_am1815(),
            astable: AstableConfig::from_periods(
                Volts::new(3.3),
                eh_units::Farads::from_micro(1.0),
                eh_units::Ohms::from_mega(10.0),
                Seconds::from_milli(39.0),
                Seconds::new(69.0),
            )?,
            sample_hold: SampleHoldConfig::paper_configuration(0.298)?,
            cold_start: ColdStart::paper_prototype()?,
            converter: InputRegulatedConverter::paper_prototype()?,
            alpha: 0.5,
            series_switch: MosfetSwitch::logic_level_nmos(),
            record_traces: false,
            trace_policy: TracePolicy::Full,
            pv_cache: false,
            obs: false,
        })
    }

    /// Same prototype with the divider re-trimmed to a different `k`
    /// (the R2 potentiometer of §IV-A). `alpha` stays 0.5.
    ///
    /// # Errors
    ///
    /// Rejects `k` outside `(0, 1)`.
    pub fn paper_prototype_with_k(k: f64) -> Result<Self, CoreError> {
        if !(k.is_finite() && k > 0.0 && k < 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "k",
                value: k,
            });
        }
        let mut cfg = Self::paper_prototype()?;
        cfg.sample_hold = SampleHoldConfig::paper_configuration(k * cfg.alpha)?;
        Ok(cfg)
    }
}

/// Discrete operating state of the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemState {
    /// C1 charging; metrology rail off.
    ColdStarting,
    /// PULSE active: loads disconnected, Voc being sampled.
    Sampling,
    /// Converter regulating the PV node at `HELD_SAMPLE/α`.
    Harvesting,
    /// Rail on but converter idle (no valid sample yet, or operating
    /// point below the converter's minimum).
    Waiting,
}

/// Instantaneous result of one system step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemStep {
    /// Simulation time at the end of the step.
    pub time: Seconds,
    /// Operating state during the step.
    pub state: SystemState,
    /// PULSE line state.
    pub pulse: bool,
    /// ACTIVE line state.
    pub active: bool,
    /// PV module terminal voltage.
    pub pv_voltage: Volts,
    /// HELD_SAMPLE line voltage.
    pub held_sample: Volts,
    /// Metrology rail (C1) voltage.
    pub rail_voltage: Volts,
    /// Energy delivered to storage during the step.
    pub stored_energy: Joules,
    /// Charge drawn by the metrology chain during the step.
    pub metrology_charge: Coulombs,
}

/// Aggregated result of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Total simulated time.
    pub duration: Seconds,
    /// Completed PULSE sampling operations.
    pub pulses: u64,
    /// When the rail first came up (cold start complete), if it did.
    pub cold_start_time: Option<Seconds>,
    /// When the first PULSE fired, if it did.
    pub first_pulse_time: Option<Seconds>,
    /// HELD_SAMPLE at the end of the run.
    pub final_held_sample: Volts,
    /// The cell's true open-circuit voltage at the final illuminance.
    pub final_voc: Volts,
    /// The measured FOCV factor `k = HELD_SAMPLE/(α·Voc)` — the quantity
    /// Table I tabulates.
    pub measured_k: Ratio,
    /// Average metrology supply current over the run (the paper's 7.6 µA
    /// measurement in §IV-A).
    pub average_metrology_current: Amps,
    /// Total energy delivered to storage.
    pub stored_energy: Joules,
    /// Total electrical energy extracted from the PV module.
    pub pv_energy: Joules,
}

/// The complete steppable platform of Fig. 3.
#[derive(Debug, Clone)]
pub struct FocvMpptSystem {
    config: SystemConfig,
    astable: AstableMultivibrator,
    sample_hold: SampleHold,
    cold_start: ColdStart,
    converter: InputRegulatedConverter,
    cell: PvCell,
    time: Seconds,
    ledger: CurrentLedger,
    stored_energy: Joules,
    pv_energy: Joules,
    pulses: u64,
    switch_loss_energy: Joules,
    pulse_was_high: bool,
    rail_was_on: bool,
    cold_start_time: Option<Seconds>,
    first_pulse_time: Option<Seconds>,
    last_pv_voltage: Volts,
    last_lux: Lux,
    traces: Option<SystemTraces>,
    metrics: Option<Box<Metrics>>,
}

#[derive(Debug, Clone, Default)]
struct SystemTraces {
    pulse: Trace,
    held_sample: Trace,
    pv_voltage: Trace,
    active: Trace,
}

impl FocvMpptSystem {
    /// Builds the platform in the fully discharged (dead) state.
    ///
    /// # Errors
    ///
    /// Propagates sub-component validation failures.
    pub fn new(config: SystemConfig) -> Result<Self, CoreError> {
        let astable = AstableMultivibrator::new(config.astable.clone())?;
        let sample_hold = SampleHold::new(config.sample_hold.clone())?;
        if !(config.alpha.is_finite() && config.alpha > 0.0 && config.alpha <= 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "alpha",
                value: config.alpha,
            });
        }
        let traces = config.record_traces.then(|| SystemTraces {
            pulse: Trace::with_policy("PULSE", config.trace_policy),
            held_sample: Trace::with_policy("HELD_SAMPLE", config.trace_policy),
            pv_voltage: Trace::with_policy("PV_IN", config.trace_policy),
            active: Trace::with_policy("ACTIVE", config.trace_policy),
        });
        let cell = config.cell.clone().with_cache(config.pv_cache);
        if config.pv_cache {
            // Build the surface now so step timing is pure lookups.
            cell.cached()?;
        }
        Ok(Self {
            cold_start: config.cold_start.clone(),
            converter: config.converter.clone(),
            cell,
            astable,
            sample_hold,
            time: Seconds::ZERO,
            ledger: CurrentLedger::new(),
            stored_energy: Joules::ZERO,
            pv_energy: Joules::ZERO,
            pulses: 0,
            switch_loss_energy: Joules::ZERO,
            pulse_was_high: false,
            rail_was_on: false,
            cold_start_time: None,
            first_pulse_time: None,
            last_pv_voltage: Volts::ZERO,
            last_lux: Lux::ZERO,
            traces,
            metrics: config.obs.then(Box::default),
            config,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Simulated time.
    pub fn time(&self) -> Seconds {
        self.time
    }

    /// Number of completed PULSE operations.
    pub fn pulses(&self) -> u64 {
        self.pulses
    }

    /// The metrology current ledger (per-consumer breakdown).
    pub fn ledger(&self) -> &CurrentLedger {
        &self.ledger
    }

    /// Cumulative energy delivered to storage.
    pub fn stored_energy(&self) -> Joules {
        self.stored_energy
    }

    /// Cumulative energy extracted from the PV module.
    pub fn pv_energy(&self) -> Joules {
        self.pv_energy
    }

    /// Cumulative energy dissipated in the series power-path MOSFET (M1)
    /// — the quantity §IV-B declares negligible.
    pub fn series_switch_loss(&self) -> Joules {
        self.switch_loss_energy
    }

    /// The recorded PULSE trace, if tracing is enabled.
    pub fn pulse_trace(&self) -> Option<&Trace> {
        self.traces.as_ref().map(|t| &t.pulse)
    }

    /// The recorded HELD_SAMPLE trace, if tracing is enabled.
    pub fn held_sample_trace(&self) -> Option<&Trace> {
        self.traces.as_ref().map(|t| &t.held_sample)
    }

    /// The recorded PV voltage trace, if tracing is enabled.
    pub fn pv_voltage_trace(&self) -> Option<&Trace> {
        self.traces.as_ref().map(|t| &t.pv_voltage)
    }

    /// The recorded ACTIVE trace, if tracing is enabled.
    pub fn active_trace(&self) -> Option<&Trace> {
        self.traces.as_ref().map(|t| &t.active)
    }

    /// The metric store, when [`SystemConfig::obs`] is enabled.
    pub fn metrics(&self) -> Option<&Metrics> {
        self.metrics.as_deref()
    }

    /// Takes the metric store out of the system (for folding into
    /// reports), first folding in the cold-start supervisor's cumulative
    /// event counters; subsequent steps run uninstrumented.
    pub fn take_metrics(&mut self) -> Option<Metrics> {
        let mut m = self.metrics.take().map(|b| *b)?;
        self.cold_start.observe(&mut m);
        Some(m)
    }

    /// Fault injection: forces the held sample to an arbitrary (possibly
    /// wrong) value, as a glitched switch or disturbed hold capacitor
    /// would. The system should recover at its next PULSE.
    pub fn inject_held_sample(&mut self, v: Volts) {
        self.sample_hold.force_held(v);
    }

    /// Fault injection: collapses the metrology rail (e.g. a brown-out
    /// from a sudden shadow), forcing a fresh cold start.
    pub fn collapse_rail(&mut self) {
        self.cold_start.set_rail_voltage(Volts::ZERO);
    }

    /// Solves the PV operating point while the measurement divider is the
    /// only load: `I_cell(v) = v / R_divider` — the (slightly loaded)
    /// "open-circuit" voltage the sample-and-hold actually sees.
    fn loaded_voc(&self, lux: Lux) -> Result<Volts, CoreError> {
        let voc = self.cell.open_circuit_voltage(lux)?;
        if voc.value() <= 0.0 {
            return Ok(Volts::ZERO);
        }
        let r_total =
            self.sample_hold.config().divider.top() + self.sample_hold.config().divider.bottom();
        let g = |v: Volts| -> Result<f64, CoreError> {
            Ok(self.cell.current_at(v, lux)?.value() - (v / r_total).value())
        };
        let (mut lo, mut hi) = (0.0, voc.value());
        if g(voc)? >= 0.0 {
            return Ok(voc);
        }
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if g(Volts::new(mid))? > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(Volts::new(0.5 * (lo + hi)))
    }

    /// Advances the platform by `dt` under illuminance `lux`.
    ///
    /// The step is internally segmented at astable transitions, so PULSE
    /// edges are honoured exactly regardless of the caller's step size.
    ///
    /// # Errors
    ///
    /// Rejects non-finite or non-positive `dt` with
    /// [`CoreError::InvalidParameter`] (matching `NodeSimulation`'s
    /// validation); propagates PV solver failures.
    pub fn step(&mut self, lux: Lux, dt: Seconds) -> Result<SystemStep, CoreError> {
        if !(dt.value().is_finite() && dt.value() > 0.0) {
            return Err(CoreError::InvalidParameter {
                name: "dt",
                value: dt.value(),
            });
        }
        self.last_lux = lux;
        let mut remaining = dt.value();
        let mut stored = Joules::ZERO;
        let mut metrology = Coulombs::ZERO;
        let mut last_state = if self.cold_start.rail_on() {
            SystemState::Waiting
        } else {
            SystemState::ColdStarting
        };

        while remaining > 0.0 {
            let rail_on = self.cold_start.rail_on();

            // Rail power-up edge: the metrology comes up from reset — the
            // astable fires its first PULSE immediately (§IV-B: the system
            // "quickly generates a signal on the PULSE line").
            if rail_on && !self.rail_was_on {
                self.astable = AstableMultivibrator::new(self.config.astable.clone())?;
                self.sample_hold = SampleHold::new(self.config.sample_hold.clone())?;
                if self.cold_start_time.is_none() {
                    self.cold_start_time = Some(self.time);
                }
                self.metrics.add_counter("core.rail_up", 1);
            }
            // Rail collapse: the astable dies with the rail, so PULSE is no
            // longer high — forget the edge state, or the power-up PULSE
            // after recovery would be miscounted as no rising edge.
            if !rail_on && self.rail_was_on {
                self.pulse_was_high = false;
                self.metrics.add_counter("core.rail_collapse", 1);
            }
            self.rail_was_on = rail_on;

            let seg = if rail_on {
                let horizon = self.astable.time_to_next_transition().value();
                remaining.min(horizon.max(1e-6))
            } else {
                // Cold-start charging: C1 dynamics are slow; cap segments
                // at 100 ms so the charging knee tracks the rising rail.
                remaining.min(0.1)
            };
            let seg_s = Seconds::new(seg);

            let step_state = if !rail_on {
                self.cold_start_segment(lux, seg_s)?
            } else {
                self.powered_segment(lux, seg_s, &mut stored, &mut metrology)?
            };
            last_state = step_state;

            self.time += seg_s;
            remaining -= seg;

            if let Some(traces) = self.traces.as_mut() {
                let pulse_v = if self.cold_start.rail_on() && self.astable.output_high() {
                    self.config.astable.supply_voltage.value()
                } else {
                    0.0
                };
                traces.pulse.record(self.time, pulse_v);
                traces
                    .held_sample
                    .record(self.time, self.sample_hold.held_sample().value());
                traces
                    .pv_voltage
                    .record(self.time, self.last_pv_voltage.value());
                traces.active.record(
                    self.time,
                    if self.sample_hold.is_active() {
                        1.0
                    } else {
                        0.0
                    },
                );
            }
        }

        self.ledger.advance(dt);
        Ok(SystemStep {
            time: self.time,
            state: last_state,
            pulse: self.cold_start.rail_on() && self.astable.output_high(),
            active: self.sample_hold.is_active(),
            pv_voltage: self.last_pv_voltage,
            held_sample: self.sample_hold.held_sample(),
            rail_voltage: self.cold_start.rail_voltage(),
            stored_energy: stored,
            metrology_charge: metrology,
        })
    }

    /// One cold-start segment: PV charges C1 through D1; everything else
    /// is dark.
    fn cold_start_segment(&mut self, lux: Lux, seg: Seconds) -> Result<SystemState, CoreError> {
        let voc = self.cell.open_circuit_voltage(lux)?;
        let knee = self.cold_start.charging_knee().min(voc);
        let i_charge = if voc.value() <= 0.0 {
            Amps::ZERO
        } else {
            self.cell.current_at(knee, lux)?.max(Amps::ZERO)
        };
        self.pv_energy += knee * i_charge * seg;
        self.cold_start.step(i_charge, Amps::ZERO, seg);
        // The hold capacitor keeps leaking while the rail is dark, but
        // nothing draws supply current.
        let _ = self.sample_hold.step(Volts::ZERO, false, seg);
        self.last_pv_voltage = knee;
        if let Some(m) = self.metrics.as_deref_mut() {
            let mut s = eh_obs::span!("core.cold_start");
            s.add_time(seg);
            s.finish(m);
        }
        Ok(SystemState::ColdStarting)
    }

    /// One powered segment (constant PULSE state throughout).
    fn powered_segment(
        &mut self,
        lux: Lux,
        seg: Seconds,
        stored: &mut Joules,
        metrology: &mut Coulombs,
    ) -> Result<SystemState, CoreError> {
        let pulse = self.astable.output_high();

        // Count a completed pulse on the rising edge.
        if pulse && !self.pulse_was_high {
            self.pulses += 1;
            if self.first_pulse_time.is_none() {
                self.first_pulse_time = Some(self.time);
            }
            self.metrics.add_counter("core.pulses", 1);
        }
        self.pulse_was_high = pulse;

        // Conversion losses this segment (converter dissipation plus the
        // series MOSFET), tracked for the metric ledger.
        let mut seg_loss = Joules::ZERO;

        let astable_step = self.astable.step(seg);
        let (state, sh_charge, harvest_energy) = if pulse {
            // Loads disconnected: the S&H divider is the only load.
            let v_meas = self.loaded_voc(lux)?;
            let sh = self.sample_hold.step(v_meas, true, seg);
            self.pv_energy += Joules::new(sh.pv_charge.value() * v_meas.value());
            self.last_pv_voltage = v_meas;
            (SystemState::Sampling, sh.supply_charge, Joules::ZERO)
        } else {
            let sh = self.sample_hold.step(Volts::ZERO, false, seg);
            if sh.active {
                let v_ref = Volts::new(self.sample_hold.held_sample().value() / self.config.alpha);
                let voc = self.cell.open_circuit_voltage(lux)?;
                let v_op = v_ref.min(voc);
                let i_pv = if v_op.value() > 0.0 {
                    self.cell.current_at(v_op, lux)?.max(Amps::ZERO)
                } else {
                    Amps::ZERO
                };
                let harvest = self.converter.harvest(v_op, i_pv, seg);
                // §IV-B: the single series MOSFET drops i²·Ron — track it
                // so the "negligible impact" claim is measurable.
                let ron = self
                    .config
                    .series_switch
                    .channel_resistance(self.cold_start.rail_voltage());
                let switch_loss = eh_units::Watts::new(i_pv.value() * i_pv.value() * ron.value());
                self.switch_loss_energy += switch_loss * seg;
                seg_loss = harvest.losses * seg + switch_loss * seg;
                self.pv_energy += harvest.input_power * seg;
                self.last_pv_voltage = if harvest.input_power.value() > 0.0 {
                    v_op
                } else {
                    voc
                };
                let st = if harvest.output_energy.value() > 0.0 {
                    SystemState::Harvesting
                } else {
                    SystemState::Waiting
                };
                (st, sh.supply_charge, harvest.output_energy)
            } else {
                self.last_pv_voltage = self.cell.open_circuit_voltage(lux)?;
                (SystemState::Waiting, sh.supply_charge, Joules::ZERO)
            }
        };

        // Metrology accounting.
        self.ledger
            .accumulate("astable", astable_step.supply_charge / seg, seg);
        self.ledger
            .accumulate("sample-and-hold", sh_charge / seg, seg);
        let load_q = astable_step.supply_charge + sh_charge;
        *metrology += load_q;

        // Metric attribution: supply charges convert to energy at the
        // configured metrology supply voltage — the same convention
        // `CurrentLedger::energy_from_supply` uses, so the bucket sums
        // can be checked against the closed-loop ledger. The converter's
        // delivered energy lands in the load bucket (the core layer has
        // no node load; storage is its delivery point).
        if let Some(m) = self.metrics.as_deref_mut() {
            let vdd = self.config.astable.supply_voltage;
            m.charge(
                EnergyBucket::Astable,
                Joules::new(astable_step.supply_charge.value() * vdd.value()),
            );
            m.charge(
                EnergyBucket::SampleHold,
                Joules::new(sh_charge.value() * vdd.value()),
            );
            m.charge(EnergyBucket::ConverterSwitching, seg_loss);
            m.charge(EnergyBucket::Load, harvest_energy);
            if pulse {
                let mut s = eh_obs::span!("core.sampling");
                s.add_time(seg);
                s.finish(m);
            } else if state == SystemState::Harvesting {
                let mut s = eh_obs::span!("core.harvesting");
                s.add_time(seg);
                s.add_energy(harvest_energy);
                s.finish(m);
            }
        }

        // Rail maintenance: harvested energy tops the rail up first, the
        // surplus goes to storage.
        let v_rail = self.cold_start.rail_voltage().max(Volts::new(0.5));
        let avail_q = Coulombs::new(harvest_energy.value() / v_rail.value());
        // Top the rail up to the configured astable supply (the rail IS the
        // metrology supply), sized by the configured C1 — not the paper's
        // 3.3 V / 47 µF, which would mis-account any re-trimmed build.
        let top_up_needed = Coulombs::new(
            (self.config.astable.supply_voltage - self.cold_start.rail_voltage())
                .max(Volts::ZERO)
                .value()
                * self.cold_start.capacitance().value(),
        );
        let used_for_rail = avail_q.min(load_q + top_up_needed);
        self.cold_start.step(used_for_rail / seg, load_q / seg, seg);
        let surplus = Joules::new((avail_q - used_for_rail).value() * v_rail.value());
        *stored += surplus;
        self.stored_energy += surplus;

        Ok(state)
    }

    /// Runs at constant illuminance and summarises, driven by the shared
    /// engine in [`eh_sim`].
    ///
    /// # Errors
    ///
    /// Propagates step errors; rejects non-positive `duration`/`dt`.
    pub fn run_constant(
        &mut self,
        lux: Lux,
        duration: Seconds,
        dt: Seconds,
    ) -> Result<RunReport, CoreError> {
        let light = Light::constant(lux, duration);
        drive(self, &light, dt)?;
        self.report(lux)
    }

    /// Runs over an illuminance trace (values in lux) and summarises,
    /// driven by the shared engine in [`eh_sim`].
    ///
    /// # Errors
    ///
    /// Propagates step errors.
    pub fn run_trace(&mut self, trace: &TimeSeries, dt: Seconds) -> Result<RunReport, CoreError> {
        let light = Light::trace(trace);
        drive(self, &light, dt)?;
        self.report(self.last_lux)
    }

    /// Builds the summary for the run so far, evaluating the true Voc at
    /// the given (final) illuminance.
    ///
    /// # Errors
    ///
    /// Propagates PV solver errors.
    pub fn report(&self, final_lux: Lux) -> Result<RunReport, CoreError> {
        let voc = self.cell.open_circuit_voltage(final_lux)?;
        let held = self.sample_hold.held_sample();
        let measured_k = if voc.value() > 0.0 {
            Ratio::new(held.value() / (voc.value() * self.config.alpha))
        } else {
            Ratio::ZERO
        };
        Ok(RunReport {
            duration: self.time,
            pulses: self.pulses,
            cold_start_time: self.cold_start_time,
            first_pulse_time: self.first_pulse_time,
            final_held_sample: held,
            final_voc: voc,
            measured_k,
            average_metrology_current: self.ledger.average_current_elapsed(),
            stored_energy: self.stored_energy,
            pv_energy: self.pv_energy,
        })
    }
}

/// The full platform as a steppable system: the engine hands it time
/// slices and illuminance samples; PULSE-edge segmentation happens
/// inside [`FocvMpptSystem::step`], so the whole planned slice is always
/// consumed.
impl Stepper for FocvMpptSystem {
    type Error = CoreError;

    fn step(
        &mut self,
        _t: Seconds,
        dt: Seconds,
        input: &StepInput,
    ) -> Result<StepOutput, CoreError> {
        FocvMpptSystem::step(self, input.lux, dt)?;
        Ok(StepOutput::full(dt))
    }

    fn recorder(&mut self) -> Option<&mut Metrics> {
        self.metrics.as_deref_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn charged_system() -> FocvMpptSystem {
        let mut cfg = SystemConfig::paper_prototype().unwrap();
        cfg.cold_start.set_rail_voltage(Volts::new(3.3));
        FocvMpptSystem::new(cfg).unwrap()
    }

    #[test]
    fn paper_prototype_builds_dead() {
        let sys = FocvMpptSystem::new(SystemConfig::paper_prototype().unwrap()).unwrap();
        assert_eq!(sys.pulses(), 0);
        assert_eq!(sys.stored_energy(), Joules::ZERO);
    }

    #[test]
    fn invalid_alpha_rejected() {
        let mut cfg = SystemConfig::paper_prototype().unwrap();
        cfg.alpha = 0.0;
        assert!(FocvMpptSystem::new(cfg).is_err());
        assert!(SystemConfig::paper_prototype_with_k(1.5).is_err());
    }

    #[test]
    fn cold_start_at_1000_lux_then_samples() {
        let mut sys = FocvMpptSystem::new(SystemConfig::paper_prototype().unwrap()).unwrap();
        let report = sys
            .run_constant(Lux::new(1000.0), Seconds::new(60.0), Seconds::new(0.05))
            .unwrap();
        assert!(
            report.cold_start_time.is_some(),
            "system must cold start at 1000 lux"
        );
        assert!(report.pulses >= 1, "first PULSE fires soon after power-up");
        let t_cs = report.cold_start_time.unwrap().value();
        assert!(t_cs < 10.0, "cold start took {t_cs} s");
    }

    #[test]
    fn cold_start_works_down_to_200_lux() {
        // §IV-B: "the cold-start of the system has been observed down to
        // light levels of 200 lux".
        let mut sys = FocvMpptSystem::new(SystemConfig::paper_prototype().unwrap()).unwrap();
        let report = sys
            .run_constant(Lux::new(200.0), Seconds::new(120.0), Seconds::new(0.05))
            .unwrap();
        assert!(
            report.cold_start_time.is_some(),
            "must cold start at 200 lux"
        );
        assert!(report.pulses >= 1);
    }

    #[test]
    fn tracking_accuracy_at_1000_lux() {
        // Table I row: 1000 lux → Voc 5.44 V, HELD 1.624 V, k 59.7 %.
        let mut sys = charged_system();
        let report = sys
            .run_constant(Lux::new(1000.0), Seconds::new(150.0), Seconds::new(0.01))
            .unwrap();
        assert!(
            (report.final_voc.value() - 5.44).abs() < 0.1,
            "Voc = {}",
            report.final_voc
        );
        assert!(
            (report.final_held_sample.value() - 1.624).abs() < 0.05,
            "HELD = {}",
            report.final_held_sample
        );
        let k = report.measured_k.as_percent();
        assert!((57.0..61.0).contains(&k), "k = {k}%");
    }

    #[test]
    fn harvests_energy_between_pulses() {
        let mut sys = charged_system();
        let report = sys
            .run_constant(Lux::new(1000.0), Seconds::new(200.0), Seconds::new(0.01))
            .unwrap();
        assert!(
            report.stored_energy.value() > 0.0,
            "stored = {}",
            report.stored_energy
        );
        // Stored energy must be bounded by the MPP energy over the run.
        let mpp = sys.cell.mpp(Lux::new(1000.0)).unwrap();
        let bound = mpp.power.value() * 200.0;
        assert!(report.stored_energy.value() < bound);
    }

    #[test]
    fn metrology_current_near_paper_value() {
        // §IV-A: astable + S&H measured at 7.6 µA average.
        let mut sys = charged_system();
        let report = sys
            .run_constant(Lux::new(1000.0), Seconds::new(300.0), Seconds::new(0.02))
            .unwrap();
        let avg = report.average_metrology_current.as_micro();
        assert!((6.5..8.6).contains(&avg), "metrology average = {avg} µA");
    }

    #[test]
    fn pulse_period_matches_astable() {
        let mut sys = charged_system();
        let report = sys
            .run_constant(Lux::new(1000.0), Seconds::new(350.0), Seconds::new(0.05))
            .unwrap();
        // 350 s / 69 s ≈ 5 pulses (plus the power-up pulse).
        assert!(
            (5..=7).contains(&report.pulses),
            "pulses = {}",
            report.pulses
        );
    }

    #[test]
    fn dark_system_never_starts() {
        // 0.5 lux: the cell's ~0.2 µA cannot outrun the 0.4 µA cold-start
        // supervisor, so C1 never reaches the enable threshold.
        let mut sys = FocvMpptSystem::new(SystemConfig::paper_prototype().unwrap()).unwrap();
        let report = sys
            .run_constant(Lux::new(0.5), Seconds::new(300.0), Seconds::new(0.1))
            .unwrap();
        assert!(
            report.cold_start_time.is_none(),
            "0.5 lux must not cold start"
        );
        assert_eq!(report.pulses, 0);
        assert_eq!(report.stored_energy, Joules::ZERO);
    }

    #[test]
    fn dim_light_trips_but_cannot_sustain() {
        // 5 lux can eventually trip the threshold, but the ~25 µW
        // metrology load out-eats the few-µW harvest: the rail collapses
        // and nothing reaches storage.
        let mut sys = FocvMpptSystem::new(SystemConfig::paper_prototype().unwrap()).unwrap();
        let report = sys
            .run_constant(Lux::new(5.0), Seconds::new(240.0), Seconds::new(0.1))
            .unwrap();
        assert!(
            report.stored_energy.value() < 1e-6,
            "no sustained harvest at 5 lux, stored = {}",
            report.stored_energy
        );
    }

    #[test]
    fn traces_record_when_enabled() {
        let mut cfg = SystemConfig::paper_prototype().unwrap();
        cfg.record_traces = true;
        cfg.cold_start.set_rail_voltage(Volts::new(3.3));
        let mut sys = FocvMpptSystem::new(cfg).unwrap();
        sys.run_constant(Lux::new(1000.0), Seconds::new(80.0), Seconds::new(0.005))
            .unwrap();
        let pulse = sys.pulse_trace().expect("traces enabled");
        assert!(!pulse.is_empty());
        let highs = pulse.high_durations(1.65);
        assert!(!highs.is_empty(), "at least one complete PULSE recorded");
        for h in highs {
            assert!((h.as_milli() - 39.0).abs() < 8.0, "pulse width {h}");
        }
        assert!(sys.held_sample_trace().unwrap().len() > 100);
    }

    #[test]
    fn k_trim_changes_held_sample() {
        for k in [0.55, 0.65, 0.75] {
            let mut cfg = SystemConfig::paper_prototype_with_k(k).unwrap();
            cfg.cold_start.set_rail_voltage(Volts::new(3.3));
            let mut sys = FocvMpptSystem::new(cfg).unwrap();
            let report = sys
                .run_constant(Lux::new(1000.0), Seconds::new(100.0), Seconds::new(0.02))
                .unwrap();
            let measured = report.measured_k.value();
            assert!(
                (measured - k).abs() < 0.02,
                "trimmed {k}, measured {measured}"
            );
        }
    }

    #[test]
    fn series_mosfet_impact_is_negligible() {
        // §IV-B: "negligible impact on the overall efficiency" from the
        // single low-Ron MOSFET in the power path. At indoor currents
        // (hundreds of µA through 2 Ω) the loss is sub-nanowatt against
        // a sub-milliwatt harvest.
        let mut sys = charged_system();
        let report = sys
            .run_constant(Lux::new(1000.0), Seconds::new(250.0), Seconds::new(0.05))
            .unwrap();
        let loss = sys.series_switch_loss();
        assert!(loss.value() > 0.0, "loss must be tracked");
        let fraction = loss.value() / report.pv_energy.value();
        // 2 Ω at ~200 µA against a ~650 µW harvest: ~0.01 % of the energy.
        assert!(
            fraction < 1e-3,
            "switch loss fraction {fraction:.2e} is not negligible"
        );
    }

    #[test]
    fn step_size_does_not_change_pulse_count() {
        let run = |dt: f64| {
            let mut sys = charged_system();
            sys.run_constant(Lux::new(1000.0), Seconds::new(150.0), Seconds::new(dt))
                .unwrap()
                .pulses
        };
        assert_eq!(run(0.5), run(0.013));
    }

    #[test]
    fn non_positive_or_nan_dt_rejected() {
        let mut sys = charged_system();
        for dt in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = sys.step(Lux::new(500.0), Seconds::new(dt));
            assert!(
                matches!(err, Err(CoreError::InvalidParameter { name: "dt", .. })),
                "dt = {dt} must be rejected, got {err:?}"
            );
        }
        // A rejected step must not have advanced time or state.
        assert_eq!(sys.time(), Seconds::ZERO);
        assert_eq!(sys.pulses(), 0);
    }

    #[test]
    fn rail_top_up_respects_configured_supply_voltage() {
        // Re-trim the astable supply to 2.5 V. The rail top-up must then
        // stop near 2.5 V; with the hard-coded 3.3 V target the rail is
        // driven all the way to C1's clamp.
        let mut cfg = SystemConfig::paper_prototype().unwrap();
        cfg.astable = AstableConfig::from_periods(
            Volts::new(2.5),
            eh_units::Farads::from_micro(1.0),
            eh_units::Ohms::from_mega(10.0),
            Seconds::from_milli(39.0),
            Seconds::new(69.0),
        )
        .unwrap();
        cfg.cold_start.set_rail_voltage(Volts::new(2.5));
        let mut sys = FocvMpptSystem::new(cfg).unwrap();
        let mut last = Volts::ZERO;
        let mut t = 0.0;
        while t < 150.0 {
            last = sys
                .step(Lux::new(1000.0), Seconds::new(0.05))
                .unwrap()
                .rail_voltage;
            t += 0.05;
        }
        assert!(
            last.value() < 2.7,
            "rail climbed to {last} despite a 2.5 V configured supply"
        );
    }

    #[test]
    fn rail_top_up_respects_configured_capacitance() {
        // With a 1 µF C1, the hard-coded 47 µF top-up requests ~47× the
        // charge the rail can absorb; C1 clamps at v_max and the excess is
        // silently burned every segment instead of being stored. Stored
        // energy must be (nearly) independent of C1 once the rail is up.
        // A 0.1 µF astable timing cap keeps the PULSE recharge draw small
        // enough that a 1 µF rail rides through the pulse on its own.
        let run = |cap_uf: f64| {
            let mut cfg = SystemConfig::paper_prototype().unwrap();
            cfg.astable = AstableConfig::from_periods(
                Volts::new(3.3),
                eh_units::Farads::from_micro(0.1),
                eh_units::Ohms::from_mega(10.0),
                Seconds::from_milli(39.0),
                Seconds::new(69.0),
            )
            .unwrap();
            cfg.cold_start = ColdStart::new(
                eh_units::Farads::from_micro(cap_uf),
                Volts::new(2.2),
                Volts::new(1.8),
                Volts::new(3.3),
                Volts::new(0.3),
            )
            .unwrap();
            cfg.cold_start.set_rail_voltage(Volts::new(3.3));
            let mut sys = FocvMpptSystem::new(cfg).unwrap();
            sys.run_constant(Lux::new(1000.0), Seconds::new(150.0), Seconds::new(0.05))
                .unwrap()
                .stored_energy
                .value()
        };
        let small = run(1.0);
        let paper = run(47.0);
        let rel = (small - paper).abs() / paper;
        assert!(
            rel < 0.02,
            "stored energy depends on C1 size: {small} J vs {paper} J (rel {rel:.3})"
        );
    }

    #[test]
    fn metrics_are_off_by_default_and_opt_in() {
        let sys = charged_system();
        assert!(sys.metrics().is_none(), "obs must be opt-in");

        let mut cfg = SystemConfig::paper_prototype().unwrap();
        cfg.obs = true;
        let mut sys = FocvMpptSystem::new(cfg).unwrap();
        let report = sys
            .run_constant(Lux::new(1000.0), Seconds::new(150.0), Seconds::new(0.05))
            .unwrap();
        let m = sys.take_metrics().expect("obs enabled");
        assert!(sys.metrics().is_none(), "take_metrics empties the slot");

        // Counters agree with the closed-loop report.
        assert_eq!(m.counter("core.pulses"), report.pulses);
        assert_eq!(m.counter("core.rail_up"), 1);
        assert_eq!(m.counter("coldstart.enable_events"), 1);
        // Sampling span: a 39 ms dwell per pulse (the first pulse after
        // an astable reset charges its timing cap from 0 V and runs
        // ln 3 / ln 2 ≈ 1.58× longer).
        let sampling = m.span_stats("core.sampling").expect("pulses fired");
        let floor = report.pulses as f64 * 0.039;
        let t_sampling = sampling.sim_time().value();
        assert!(
            t_sampling >= floor - 2e-3 && t_sampling <= floor + 0.03,
            "sampling time {t_sampling} vs {} pulses x 39 ms",
            report.pulses
        );
        // Cold start span covers the time before the rail came up.
        let cs = m
            .span_stats("core.cold_start")
            .expect("system cold started");
        let t_cs = report.cold_start_time.unwrap().value();
        assert!((cs.sim_time().value() - t_cs).abs() < 0.2);
    }

    #[test]
    fn metrology_buckets_conserve_against_the_current_ledger() {
        // Two-path invariant: the metric ledger charges the astable and
        // S&H buckets segment by segment at the supply voltage; the
        // closed-loop CurrentLedger accumulates the same charges as
        // currents and converts once at the end. The groupings (and thus
        // the float rounding) differ, so agreement is a real check.
        let mut cfg = SystemConfig::paper_prototype().unwrap();
        cfg.obs = true;
        cfg.cold_start.set_rail_voltage(Volts::new(3.3));
        let mut sys = FocvMpptSystem::new(cfg).unwrap();
        sys.run_constant(Lux::new(1000.0), Seconds::new(300.0), Seconds::new(0.02))
            .unwrap();
        let closed_loop = sys
            .ledger()
            .energy_from_supply(sys.config().astable.supply_voltage);
        let m = sys.metrics().unwrap();
        let metrology = m.ledger().energy(eh_obs::EnergyBucket::Astable)
            + m.ledger().energy(eh_obs::EnergyBucket::SampleHold);
        let rel = (metrology.value() - closed_loop.value()).abs()
            / closed_loop.value().max(f64::MIN_POSITIVE);
        assert!(
            rel < 1e-9,
            "metrology buckets {} J vs closed loop {} J (rel {rel:.3e})",
            metrology,
            closed_loop
        );
        // The converter path also booked losses and deliveries.
        assert!(
            m.ledger()
                .energy(eh_obs::EnergyBucket::ConverterSwitching)
                .value()
                > 0.0
        );
        assert!(m.ledger().energy(eh_obs::EnergyBucket::Load).value() > 0.0);
    }

    #[test]
    fn metrics_do_not_change_physics() {
        let run = |obs: bool| {
            let mut cfg = SystemConfig::paper_prototype().unwrap();
            cfg.obs = obs;
            cfg.cold_start.set_rail_voltage(Volts::new(3.3));
            let mut sys = FocvMpptSystem::new(cfg).unwrap();
            sys.run_constant(Lux::new(1000.0), Seconds::new(150.0), Seconds::new(0.05))
                .unwrap()
        };
        assert_eq!(run(false), run(true), "observation must be passive");
    }

    #[test]
    fn cached_system_matches_exact_tracking() {
        // The cache toggle must not move the paper's headline numbers:
        // same pulse count, measured k within the documented error bound's
        // effect, energies within a fraction of a percent.
        let run = |cached: bool| {
            let mut cfg = SystemConfig::paper_prototype().unwrap();
            cfg.pv_cache = cached;
            cfg.cold_start.set_rail_voltage(Volts::new(3.3));
            let mut sys = FocvMpptSystem::new(cfg).unwrap();
            sys.run_constant(Lux::new(1000.0), Seconds::new(150.0), Seconds::new(0.05))
                .unwrap()
        };
        let exact = run(false);
        let cached = run(true);
        assert_eq!(exact.pulses, cached.pulses);
        assert!(
            (exact.measured_k.value() - cached.measured_k.value()).abs() < 1e-3,
            "k diverged: exact {} vs cached {}",
            exact.measured_k,
            cached.measured_k
        );
        let e_rel = (exact.stored_energy.value() - cached.stored_energy.value()).abs()
            / exact.stored_energy.value();
        assert!(e_rel < 5e-3, "stored energy diverged by {e_rel:.2e}");
    }
}
