//! Harvest and tracking-accuracy metrics.

use eh_sim::SweepRunner;
use eh_units::{Joules, Lux, Ratio, Seconds, Volts};

use crate::error::CoreError;
use crate::system::{FocvMpptSystem, SystemConfig};

/// One row of a Table I style tracking-accuracy report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackingAccuracyRow {
    /// Test illuminance.
    pub illuminance: Lux,
    /// True open-circuit voltage of the module.
    pub open_circuit_voltage: Volts,
    /// The HELD_SAMPLE line value.
    pub held_sample: Volts,
    /// The implied FOCV factor `k = HELD/(α·Voc)`.
    pub k: Ratio,
}

/// Runs the Table I procedure: the complete system at each intensity
/// (averaged over `repeats` independent runs, as the paper repeats each
/// test three times) with a fully charged rail, reporting `Voc`,
/// `HELD_SAMPLE` and the implied `k`.
///
/// Intensities are simulated on a machine-sized [`SweepRunner`]; the
/// runner collects rows in input order, so the table is identical on any
/// worker count.
///
/// # Errors
///
/// Propagates system construction/run errors; rejects `repeats == 0`.
pub fn tracking_accuracy_table(
    base: &SystemConfig,
    intensities: &[Lux],
    repeats: usize,
) -> Result<Vec<TrackingAccuracyRow>, CoreError> {
    if repeats == 0 {
        return Err(CoreError::InvalidParameter {
            name: "repeats",
            value: 0.0,
        });
    }
    let results = SweepRunner::auto().run(intensities.to_vec(), |_, lux| {
        let mut voc_sum = 0.0;
        let mut held_sum = 0.0;
        let mut k_sum = 0.0;
        for _ in 0..repeats {
            let mut cfg = base.clone();
            cfg.cold_start.set_rail_voltage(Volts::new(3.3));
            let mut sys = FocvMpptSystem::new(cfg)?;
            let report = sys.run_constant(lux, Seconds::new(150.0), Seconds::new(0.02))?;
            voc_sum += report.final_voc.value();
            held_sum += report.final_held_sample.value();
            k_sum += report.measured_k.value();
        }
        let n = repeats as f64;
        Ok(TrackingAccuracyRow {
            illuminance: lux,
            open_circuit_voltage: Volts::new(voc_sum / n),
            held_sample: Volts::new(held_sum / n),
            k: Ratio::new(k_sum / n),
        })
    });
    results.into_iter().collect()
}

/// Summary of a tracker's day-scale harvest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HarvestSummary {
    /// Energy delivered to storage before overhead.
    pub gross_energy: Joules,
    /// Energy the tracker itself consumed.
    pub overhead_energy: Joules,
    /// `gross − overhead` (may be negative: the tracker cost more than
    /// it gained — the indoor failure mode of outdoor MPPT circuits).
    pub net_energy: Joules,
    /// The oracle tracker's gross energy on the same run.
    pub oracle_energy: Joules,
}

impl HarvestSummary {
    /// Builds a summary, deriving the net energy.
    pub fn new(gross: Joules, overhead: Joules, oracle: Joules) -> Self {
        Self {
            gross_energy: gross,
            overhead_energy: overhead,
            net_energy: Joules::new(gross.value() - overhead.value()),
            oracle_energy: oracle,
        }
    }

    /// Net harvest normalised by the oracle's gross harvest. Clamped
    /// below at −10 (deeply net-negative trackers) for stable reporting.
    pub fn efficiency_vs_oracle(&self) -> Ratio {
        if self.oracle_energy.value() <= 0.0 {
            return Ratio::ZERO;
        }
        Ratio::new((self.net_energy.value() / self.oracle_energy.value()).max(-10.0))
    }

    /// Whether the tracker was a net gain at all.
    pub fn is_net_positive(&self) -> bool {
        self.net_energy.value() > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_arithmetic() {
        let s = HarvestSummary::new(Joules::new(10.0), Joules::new(2.0), Joules::new(12.0));
        assert_eq!(s.net_energy, Joules::new(8.0));
        assert!((s.efficiency_vs_oracle().value() - 8.0 / 12.0).abs() < 1e-12);
        assert!(s.is_net_positive());
    }

    #[test]
    fn net_negative_tracker() {
        // 2 mW of MPPT electronics indoors out-eats a 100 µW harvest.
        let s = HarvestSummary::new(Joules::new(0.5), Joules::new(3.0), Joules::new(0.6));
        assert!(!s.is_net_positive());
        assert!(s.efficiency_vs_oracle().value() < 0.0);
    }

    #[test]
    fn zero_oracle_guard() {
        let s = HarvestSummary::new(Joules::ZERO, Joules::ZERO, Joules::ZERO);
        assert_eq!(s.efficiency_vs_oracle(), Ratio::ZERO);
    }

    #[test]
    fn clamp_on_pathological_ratio() {
        let s = HarvestSummary::new(Joules::ZERO, Joules::new(1e6), Joules::new(1e-9));
        assert!(s.efficiency_vs_oracle().value() >= -10.0);
    }

    #[test]
    fn tracking_table_produces_table1_band() {
        let base = SystemConfig::paper_prototype().unwrap();
        let rows = tracking_accuracy_table(&base, &[Lux::new(200.0), Lux::new(1000.0)], 1).unwrap();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            let k = row.k.as_percent();
            assert!((58.5..61.0).contains(&k), "k = {k}");
            assert!(row.held_sample < row.open_circuit_voltage);
        }
        assert!(rows[1].open_circuit_voltage > rows[0].open_circuit_voltage);
    }

    #[test]
    fn tracking_table_rejects_zero_repeats() {
        let base = SystemConfig::paper_prototype().unwrap();
        assert!(tracking_accuracy_table(&base, &[Lux::new(200.0)], 0).is_err());
    }
}
