//! Property-based tests on the full-system invariants.

use eh_core::baselines::{FocvSampleHold, Oracle, PerturbObserve, VariableHoldFocv};
use eh_core::{FocvMpptSystem, MpptController, Observation, SystemConfig, TrackerCommand};
use eh_units::{Amps, Lux, Seconds, Volts, Watts};
use proptest::prelude::*;

fn charged_system() -> FocvMpptSystem {
    let mut cfg = SystemConfig::paper_prototype().expect("valid prototype");
    cfg.cold_start.set_rail_voltage(Volts::new(3.3));
    FocvMpptSystem::new(cfg).expect("valid system")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// At any steady illuminance the measured k lands in the Table I
    /// band once a sample has been taken.
    #[test]
    fn k_band_holds_across_intensities(lux in 150.0..20_000.0f64) {
        let mut sys = charged_system();
        let report = sys
            .run_constant(Lux::new(lux), Seconds::new(80.0), Seconds::new(0.05))
            .expect("run succeeds");
        let k = report.measured_k.as_percent();
        prop_assert!((57.5..61.5).contains(&k), "k({lux}) = {k}");
    }

    /// Stored energy is always non-negative and bounded by PV energy.
    #[test]
    fn energy_book_keeping(lux in 0.0..30_000.0f64, seconds in 10.0..200.0f64) {
        let mut sys = charged_system();
        let report = sys
            .run_constant(Lux::new(lux), Seconds::new(seconds), Seconds::new(0.1))
            .expect("run succeeds");
        prop_assert!(report.stored_energy.value() >= 0.0);
        prop_assert!(report.stored_energy.value() <= report.pv_energy.value() + 1e-12);
    }

    /// The metrology draw is independent of light level (it runs from
    /// the rail, not the cell) — within the pulse-phase jitter.
    #[test]
    fn metrology_draw_is_light_independent(lux in 300.0..20_000.0f64) {
        let mut sys = charged_system();
        let report = sys
            .run_constant(Lux::new(lux), Seconds::new(150.0), Seconds::new(0.05))
            .expect("run succeeds");
        let ua = report.average_metrology_current.as_micro();
        prop_assert!((6.8..8.8).contains(&ua), "draw({lux}) = {ua} µA");
    }

    /// The behavioural FOCV tracker's commanded voltage never exceeds
    /// the Voc it was given.
    #[test]
    fn focv_target_below_voc(voc in 0.5..8.0f64) {
        let mut tracker = FocvSampleHold::paper_prototype().expect("valid tracker");
        // Measure step, then feed the measured Voc.
        tracker.step(&Observation::at(Seconds::ZERO), Seconds::new(1.0));
        let obs = Observation {
            voc_measurement: Some(Volts::new(voc)),
            ..Observation::at(Seconds::new(1.0))
        };
        let cmd = tracker.step(&obs, Seconds::new(1.0));
        if let TrackerCommand::Connect(v) = cmd {
            prop_assert!(v.value() < voc);
            prop_assert!(v.value() > 0.0);
        } else {
            prop_assert!(false, "expected a connect command");
        }
    }

    /// P&O's target always stays inside its clamp window, whatever the
    /// power sequence.
    #[test]
    fn perturb_observe_stays_clamped(powers in proptest::collection::vec(0.0..1e-3f64, 1..60)) {
        let mut t = PerturbObserve::literature_default().expect("valid tracker");
        for p in powers {
            let obs = Observation {
                pv_power: Watts::new(p),
                pv_voltage: t.target(),
                pv_current: Amps::new(p / t.target().value().max(0.1)),
                ..Observation::at(Seconds::ZERO)
            };
            let cmd = t.step(&obs, Seconds::from_milli(100.0));
            let v = cmd.target_voltage().expect("P&O stays connected");
            prop_assert!((0.1..=8.0).contains(&v.value()), "target = {v}");
        }
    }

    /// Under a perfectly steady scene (constant Voc ⇒ zero measured
    /// volatility), the variable-hold tracker is the fixed 69 s
    /// sample-and-hold, bit for bit, whatever step sizes drive it.
    #[test]
    fn variable_hold_degenerates_to_fixed_focv_at_zero_volatility(
        voc in 0.5..8.0f64,
        dts in proptest::collection::vec(0.01..120.0f64, 20..120),
    ) {
        let mut adaptive = VariableHoldFocv::eq2_tuned().expect("valid tracker");
        let mut fixed = FocvSampleHold::paper_prototype().expect("valid tracker");
        let mut measuring = false;
        for (i, dt) in dts.iter().enumerate() {
            let obs = Observation {
                voc_measurement: measuring.then(|| Volts::new(voc)),
                ..Observation::at(Seconds::ZERO)
            };
            let a = adaptive.step(&obs, Seconds::new(*dt));
            let f = fixed.step(&obs, Seconds::new(*dt));
            prop_assert_eq!(
                a.target_voltage().map(|v| v.value().to_bits()),
                f.target_voltage().map(|v| v.value().to_bits()),
                "step {}: {:?} vs {:?}", i, a, f
            );
            measuring = !a.is_connect();
        }
        prop_assert_eq!(adaptive.volatility(), 0.0);
        prop_assert_eq!(
            adaptive.current_period().value().to_bits(),
            adaptive.base_period().value().to_bits()
        );
    }

    /// The oracle never commands above the cell's open-circuit voltage.
    #[test]
    fn oracle_commands_are_feasible(lux in 0.0..50_000.0f64) {
        let cell = eh_pv::presets::sanyo_am1815();
        let mut oracle = Oracle::new(cell.clone());
        let obs = Observation {
            ambient_lux: Some(Lux::new(lux)),
            ..Observation::at(Seconds::ZERO)
        };
        let cmd = oracle.step(&obs, Seconds::new(1.0));
        let v = cmd.target_voltage().expect("oracle always connects");
        let voc = cell.open_circuit_voltage(Lux::new(lux)).expect("solver converges");
        prop_assert!(v <= voc);
    }
}
