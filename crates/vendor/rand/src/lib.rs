//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crate registry, so this
//! workspace vendors the *exact* slice of the `rand` 0.8 API it uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen::<f64>()`](Rng::gen). The generator is SplitMix64 — a
//! small, well-studied, deterministic 64-bit PRNG that is more than
//! adequate for seeding light-profile textures and Monte Carlo component
//! tolerances (it is not, and does not need to be, cryptographic).
//!
//! Determinism contract: a given seed always produces the same stream,
//! on every platform, forever. The simulation's reproducibility tests
//! rely on this.

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Sampling of a value of type `Self` from a [`RngCore`] under the
/// "standard" distribution (uniform on the type's natural unit range).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing random-value interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::generate(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of a generator from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator (SplitMix64).
    ///
    /// Unlike upstream `rand`'s ChaCha-based `StdRng` this is a plain
    /// 64-bit mixer, but it shares the property the simulations need:
    /// seed-determined, platform-independent output.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let draw = |seed| {
            let mut r = StdRng::seed_from_u64(seed);
            (0..32).map(|_| r.gen::<f64>()).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x), "x = {x}");
        }
    }

    #[test]
    fn roughly_uniform_mean() {
        let mut r = StdRng::seed_from_u64(2011);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }
}
