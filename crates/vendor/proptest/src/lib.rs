//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crate registry access, so this vendored
//! crate implements the slice of the `proptest` 1.x API the workspace's
//! property tests use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! * range strategies over `f64` / `usize` / `u64` / `i32`;
//! * [`collection::vec`] for random-length vectors;
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`].
//!
//! Semantics differ from upstream in two deliberate ways: inputs are
//! drawn from a deterministic per-test generator (seeded from the test
//! name) so failures reproduce exactly without a persistence file, and
//! there is no shrinking — a failing case panics with its inputs
//! reported by the assertion message instead.

pub mod strategy;

pub mod collection;

pub mod test_runner;

/// The glob-importable surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Asserts a condition inside a property test case.
///
/// Upstream returns a `TestCaseError`; this stand-in simply panics,
/// which aborts the whole test with the offending inputs visible in the
/// assertion message.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
///
/// Expands to an early `return` from the generated per-case closure, so
/// the runner simply moves on to the next case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that runs `body` over many sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cases = ($cfg).cases; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cases = 256u32; $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cases = $cases:expr;
     $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases: u32 = $cases;
                let mut rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for _ in 0..cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )*
                    let case = move || $body;
                    case();
                }
            }
        )*
    };
}
