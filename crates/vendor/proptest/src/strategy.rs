//! Input strategies: how a test argument is drawn from the generator.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A source of random values of one type, mirroring `proptest::strategy::Strategy`.
///
/// Upstream strategies produce shrinkable value *trees*; this offline
/// stand-in samples plain values — on failure the assertion message
/// reports the un-shrunk inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        debug_assert!(self.start < self.end, "empty f64 range strategy");
        let span = self.end - self.start;
        let v = self.start + rng.unit_f64() * span;
        // Guard the half-open contract against rounding at the top end.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn sample(&self, rng: &mut TestRng) -> usize {
        debug_assert!(self.start < self.end, "empty usize range strategy");
        let span = (self.end - self.start) as u64;
        self.start + rng.below(span) as usize
    }
}

impl Strategy for Range<u64> {
    type Value = u64;

    fn sample(&self, rng: &mut TestRng) -> u64 {
        debug_assert!(self.start < self.end, "empty u64 range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for Range<u32> {
    type Value = u32;

    fn sample(&self, rng: &mut TestRng) -> u32 {
        debug_assert!(self.start < self.end, "empty u32 range strategy");
        self.start + rng.below(u64::from(self.end - self.start)) as u32
    }
}

impl Strategy for Range<i32> {
    type Value = i32;

    fn sample(&self, rng: &mut TestRng) -> i32 {
        debug_assert!(self.start < self.end, "empty i32 range strategy");
        let span = i64::from(self.end) - i64::from(self.start);
        let off = rng.below(span as u64) as i64;
        (i64::from(self.start) + off) as i32
    }
}

// Strategies are frequently produced by helper functions returning
// `impl Strategy` and then sampled behind a reference inside the
// generated test body; a blanket reference impl keeps both spellings
// working.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_range_stays_in_bounds() {
        let mut rng = TestRng::from_name("f64");
        let s = -2.0..3.0f64;
        for _ in 0..10_000 {
            let v = s.sample(&mut rng);
            assert!((-2.0..3.0).contains(&v), "v = {v}");
        }
    }

    #[test]
    fn usize_range_covers_and_bounds() {
        let mut rng = TestRng::from_name("usize");
        let s = 2usize..9;
        let mut seen = [false; 9];
        for _ in 0..1_000 {
            let v = s.sample(&mut rng);
            assert!((2..9).contains(&v));
            seen[v] = true;
        }
        assert!(seen[2..9].iter().all(|&b| b), "all values reachable");
    }
}
