//! The per-test deterministic input generator and run configuration.

/// Configuration accepted by the `#![proptest_config(...)]` header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of input cases each property runs over.
    pub cases: u32,
}

impl ProptestConfig {
    /// Builds a configuration running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic input generator (SplitMix64 seeded from the test name).
///
/// Every run of a given property test sees the same input sequence, so a
/// failure reproduces without a `proptest-regressions` persistence file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// Returns the next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded sampling (Lemire); the slight modulo
        // bias of the plain approach is irrelevant for test inputs, but
        // this is just as cheap.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_seeding_is_stable() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::from_name("bound");
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
    }
}
