//! Collection strategies, mirroring `proptest::collection`.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy producing `Vec`s with lengths drawn from a range and
/// elements drawn from an inner strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Builds a vector strategy: `vec(elem_strategy, min_len..max_len)`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_and_elements_in_range() {
        let mut rng = TestRng::from_name("vec");
        let s = vec(0.0..1.0f64, 3..7);
        for _ in 0..500 {
            let v = s.sample(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }
}
