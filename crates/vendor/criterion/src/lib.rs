//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crate registry access, so this vendored
//! crate implements the API slice the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkId::from_parameter`], [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros — over a simple
//! wall-clock harness: a short warm-up, then timed batches, reporting
//! the per-iteration mean and min to stdout. No statistics engine, no
//! HTML reports; enough to compare hot paths release-to-release.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one parameterised benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a parameter's `Display` form.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }

    /// Builds an id from a function name and a parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Timing loop handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters_per_batch: u64,
    batches: u64,
    mean: Duration,
    min: Duration,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self {
            iters_per_batch: 0,
            batches: sample_size.max(2) as u64,
            mean: Duration::ZERO,
            min: Duration::MAX,
        }
    }

    /// Runs `f` repeatedly and records per-iteration wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: aim for batches of roughly 5 ms, minimum 1 iter.
        let t0 = Instant::now();
        black_box(f());
        let one = t0.elapsed().max(Duration::from_nanos(1));
        let per_batch = (Duration::from_millis(5).as_nanos() / one.as_nanos()).max(1);
        self.iters_per_batch = u64::try_from(per_batch).unwrap_or(u64::MAX).min(1_000_000);

        let mut total = Duration::ZERO;
        for _ in 0..self.batches {
            let start = Instant::now();
            for _ in 0..self.iters_per_batch {
                black_box(f());
            }
            let batch = start.elapsed();
            let per_iter = batch / u32::try_from(self.iters_per_batch).unwrap_or(u32::MAX);
            self.min = self.min.min(per_iter);
            total += batch;
        }
        self.mean = total / u32::try_from(self.batches * self.iters_per_batch).unwrap_or(u32::MAX);
    }
}

/// Top-level harness, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        run_one(name.as_ref(), 10, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, name.as_ref()),
            self.sample_size,
            f,
        );
        self
    }

    /// Runs a parameterised benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.sample_size,
            |b| {
                f(b, input);
            },
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher::new(sample_size);
    f(&mut b);
    println!(
        "bench {name:<44} mean {:>12?}  min {:>12?}  ({} iters)",
        b.mean,
        b.min,
        b.batches * b.iters_per_batch
    );
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Benchmark group entry point generated by `criterion_group!`.
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_something() {
        let mut c = Criterion::default();
        c.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3)
            .bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
                b.iter(|| n * 2)
            });
        g.finish();
    }
}
