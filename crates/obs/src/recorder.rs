//! The recording trait and its no-op default.

use eh_units::Joules;

use crate::ledger::EnergyBucket;
use crate::span::Span;

/// Something that can absorb metric events.
///
/// [`Metrics`](crate::Metrics) is the real sink; [`NoopRecorder`]
/// discards everything; and the blanket impls for `Box<R>` and
/// `Option<R>` let hot paths hold an `Option<Box<Metrics>>` and record
/// through it directly — with observability off, every call is a single
/// `None` branch.
pub trait Recorder {
    /// Whether events are actually being kept. Instrumented code may
    /// consult this to skip preparing expensive inputs.
    fn enabled(&self) -> bool;

    /// Adds `delta` to the named monotonic counter.
    fn add_counter(&mut self, name: &'static str, delta: u64);

    /// Sets the named gauge to `value` (last write wins; non-finite
    /// values are discarded).
    fn set_gauge(&mut self, name: &'static str, value: f64);

    /// Records `value` into the named fixed-bucket histogram, creating
    /// it over `bounds` on first use. Returns whether the value was
    /// binned (`false` for non-finite values, invalid bounds, or a
    /// disabled recorder).
    fn observe(&mut self, name: &'static str, bounds: &[f64], value: f64) -> bool;

    /// Folds a finished [`Span`] into the per-name span stats.
    fn record_span(&mut self, span: Span);

    /// Adds energy to one bucket of the run's
    /// [`EnergyLedger`](crate::EnergyLedger).
    fn charge(&mut self, bucket: EnergyBucket, energy: Joules);

    /// Folds `count` completions of span `name` totalling `sim_time`
    /// seconds and `energy` joules in one call — the bulk counterpart
    /// of [`Recorder::record_span`] for hot loops that accumulate span
    /// stats in locals and flush once (e.g. once per simulated node).
    ///
    /// The default is bitwise-equivalent to recording one span carrying
    /// the full totals plus `count − 1` empty spans: per-span folding
    /// adds each span's time/energy to the running stats, and adding
    /// zero is a float no-op, so `stats` end up identical to `count`
    /// individual spans whose contributions sum (in order) to the
    /// totals. A zero `count` records nothing — matching a loop that
    /// never opened the span, which matters for sinks where presence of
    /// a name is observable.
    fn record_span_stats(&mut self, name: &'static str, count: u64, sim_time: f64, energy: f64) {
        if count == 0 {
            return;
        }
        let mut span = Span::new(name);
        span.add_time(eh_units::Seconds::new(sim_time));
        span.add_energy(Joules::new(energy));
        self.record_span(span);
        for _ in 1..count {
            self.record_span(Span::new(name));
        }
    }
}

/// A recorder that discards everything — the cheap default for
/// uninstrumented runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn add_counter(&mut self, _name: &'static str, _delta: u64) {}

    fn set_gauge(&mut self, _name: &'static str, _value: f64) {}

    fn observe(&mut self, _name: &'static str, _bounds: &[f64], _value: f64) -> bool {
        false
    }

    fn record_span(&mut self, _span: Span) {}

    fn charge(&mut self, _bucket: EnergyBucket, _energy: Joules) {}

    fn record_span_stats(
        &mut self,
        _name: &'static str,
        _count: u64,
        _sim_time: f64,
        _energy: f64,
    ) {
    }
}

impl<R: Recorder + ?Sized> Recorder for Box<R> {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn add_counter(&mut self, name: &'static str, delta: u64) {
        (**self).add_counter(name, delta);
    }

    fn set_gauge(&mut self, name: &'static str, value: f64) {
        (**self).set_gauge(name, value);
    }

    fn observe(&mut self, name: &'static str, bounds: &[f64], value: f64) -> bool {
        (**self).observe(name, bounds, value)
    }

    fn record_span(&mut self, span: Span) {
        (**self).record_span(span);
    }

    fn charge(&mut self, bucket: EnergyBucket, energy: Joules) {
        (**self).charge(bucket, energy);
    }

    // Forwarded explicitly so a `Box<Metrics>` reaches the Metrics
    // override instead of the trait default's span-expansion loop.
    fn record_span_stats(&mut self, name: &'static str, count: u64, sim_time: f64, energy: f64) {
        (**self).record_span_stats(name, count, sim_time, energy);
    }
}

/// `None` is a no-op recorder; `Some(r)` forwards to `r`. This is the
/// "pay only a branch" contract: instrumented structs hold
/// `Option<Box<Metrics>>` and record unconditionally.
impl<R: Recorder> Recorder for Option<R> {
    fn enabled(&self) -> bool {
        self.as_ref().is_some_and(Recorder::enabled)
    }

    fn add_counter(&mut self, name: &'static str, delta: u64) {
        if let Some(r) = self {
            r.add_counter(name, delta);
        }
    }

    fn set_gauge(&mut self, name: &'static str, value: f64) {
        if let Some(r) = self {
            r.set_gauge(name, value);
        }
    }

    fn observe(&mut self, name: &'static str, bounds: &[f64], value: f64) -> bool {
        match self {
            Some(r) => r.observe(name, bounds, value),
            None => false,
        }
    }

    fn record_span(&mut self, span: Span) {
        if let Some(r) = self {
            r.record_span(span);
        }
    }

    fn charge(&mut self, bucket: EnergyBucket, energy: Joules) {
        if let Some(r) = self {
            r.charge(bucket, energy);
        }
    }

    fn record_span_stats(&mut self, name: &'static str, count: u64, sim_time: f64, energy: f64) {
        if let Some(r) = self {
            r.record_span_stats(name, count, sim_time, energy);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::span;

    #[test]
    fn noop_discards_everything() {
        let mut r = NoopRecorder;
        assert!(!r.enabled());
        r.add_counter("a", 1);
        r.set_gauge("g", 2.0);
        assert!(!r.observe("h", &[1.0], 0.5));
        span!("s").finish(&mut r);
        r.charge(EnergyBucket::Load, Joules::new(1.0));
    }

    #[test]
    fn option_recorder_pays_only_a_branch_when_none() {
        let mut r: Option<Box<Metrics>> = None;
        assert!(!r.enabled());
        r.add_counter("a", 1);
        assert!(!r.observe("h", &[1.0], 0.5));

        let mut r: Option<Box<Metrics>> = Some(Box::default());
        assert!(r.enabled());
        r.add_counter("a", 2);
        r.charge(EnergyBucket::Astable, Joules::new(1.0));
        let m = r.unwrap();
        assert_eq!(m.counter("a"), 2);
        assert_eq!(m.ledger().total(), Joules::new(1.0));
    }
}
