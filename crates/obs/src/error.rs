//! Error type for the observability crate.

use std::error::Error;
use std::fmt;

/// Errors returned by observability primitives.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ObsError {
    /// A constructor parameter was invalid (e.g. histogram bounds that
    /// are empty, non-finite, or not strictly increasing).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value (NaN when the problem is structural).
        value: f64,
    },
    /// The energy ledger's bucket sum disagrees with the independently
    /// accumulated closed-loop total beyond the requested tolerance.
    ConservationViolation {
        /// Sum of the ledger buckets, in joules.
        ledger_total_j: f64,
        /// The closed-loop total the ledger was checked against, in
        /// joules.
        closed_loop_total_j: f64,
        /// The symmetric relative error between the two.
        relative_error: f64,
        /// The tolerance the check was run with.
        tolerance: f64,
    },
}

impl fmt::Display for ObsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsError::InvalidParameter { name, value } => {
                write!(f, "invalid observability parameter {name} = {value}")
            }
            ObsError::ConservationViolation {
                ledger_total_j,
                closed_loop_total_j,
                relative_error,
                tolerance,
            } => write!(
                f,
                "energy ledger violates conservation: buckets sum to {ledger_total_j} J \
                 but the closed loop accumulated {closed_loop_total_j} J \
                 (relative error {relative_error:.3e} > tolerance {tolerance:.3e})"
            ),
        }
    }
}

impl Error for ObsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = ObsError::InvalidParameter {
            name: "bounds",
            value: f64::NAN,
        };
        assert!(e.to_string().contains("bounds"));
        let e = ObsError::ConservationViolation {
            ledger_total_j: 1.0,
            closed_loop_total_j: 2.0,
            relative_error: 0.5,
            tolerance: 1e-9,
        };
        assert!(e.to_string().contains("conservation"));
    }
}
