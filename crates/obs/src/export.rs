//! JSON and human-readable exporters for [`Metrics`].

use std::fmt::Write as _;

use crate::ledger::EnergyBucket;
use crate::metrics::Metrics;

/// Formats an `f64` for JSON: `{:?}` is Rust's shortest round-trip
/// rendering, so equal stores export byte-identical documents. Inputs
/// are finite by construction (non-finite values are rejected at record
/// time).
fn json_f64(v: f64) -> String {
    format!("{v:?}")
}

fn json_str_escape(s: &str) -> String {
    // Metric names are static identifiers; escape the JSON specials
    // anyway so the exporter can never emit an invalid document.
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

impl Metrics {
    /// Serialises the store as one compact JSON object with
    /// deterministic key order, suitable for embedding into the bench
    /// bins' `BENCH_*.json` reports.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");

        out.push_str("\"counters\":{");
        for (i, (name, v)) in self.counters().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", json_str_escape(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json_str_escape(name), json_f64(v));
        }
        out.push_str("},\"spans\":{");
        for (i, (name, s)) in self.spans().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sim_time_s\":{},\"energy_j\":{}}}",
                json_str_escape(name),
                s.count,
                json_f64(s.sim_time().value()),
                json_f64(s.energy().value())
            );
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let bounds: Vec<String> = h.bounds().iter().map(|&b| json_f64(b)).collect();
            let counts: Vec<String> = h.counts().iter().map(u64::to_string).collect();
            let _ = write!(
                out,
                "\"{}\":{{\"bounds\":[{}],\"counts\":[{}],\"rejected\":{}}}",
                json_str_escape(name),
                bounds.join(","),
                counts.join(","),
                h.rejected()
            );
        }
        out.push_str("},\"energy_ledger_j\":{");
        for (i, bucket) in EnergyBucket::ALL.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{}",
                bucket.key(),
                json_f64(self.ledger().energy(bucket).value())
            );
        }
        let _ = write!(
            out,
            ",\"total\":{}",
            json_f64(self.ledger().total().value())
        );
        out.push_str("}}");
        out
    }

    /// Renders the store as an aligned, human-readable plain-text
    /// report (sections are omitted when empty).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        if self.counters().next().is_some() {
            out.push_str("counters\n");
            for (name, v) in self.counters() {
                let _ = writeln!(out, "  {name:<32} {v:>14}");
            }
        }
        if self.gauges().next().is_some() {
            out.push_str("gauges\n");
            for (name, v) in self.gauges() {
                let _ = writeln!(out, "  {name:<32} {v:>14.6}");
            }
        }
        if self.spans().next().is_some() {
            out.push_str("spans (simulated time)\n");
            for (name, s) in self.spans() {
                let _ = writeln!(
                    out,
                    "  {name:<32} {:>10} x {:>14.3} s {:>14.6e} J",
                    s.count,
                    s.sim_time().value(),
                    s.energy().value()
                );
            }
        }
        if self.histograms().next().is_some() {
            out.push_str("histograms (underflow | bins | overflow, r = rejected)\n");
            for (name, h) in self.histograms() {
                let counts: Vec<String> = h.counts().iter().map(u64::to_string).collect();
                let _ = writeln!(
                    out,
                    "  {name:<32} [{}] r={}",
                    counts.join(" | "),
                    h.rejected()
                );
            }
        }
        if !self.ledger().is_empty() {
            out.push_str("energy ledger\n");
            let total = self.ledger().total().value();
            for bucket in EnergyBucket::ALL {
                let j = self.ledger().energy(bucket).value();
                let pct = if total != 0.0 { 100.0 * j / total } else { 0.0 };
                let _ = writeln!(out, "  {:<32} {j:>14.6e} J {pct:>6.2} %", bucket.label());
            }
            let _ = writeln!(out, "  {:<32} {total:>14.6e} J", "total");
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use crate::span;
    use eh_units::{Joules, Seconds};

    fn sample() -> Metrics {
        let mut m = Metrics::new();
        m.add_counter("engine.steps", 42);
        m.set_gauge("rail_v", 3.3);
        m.observe("dwell_s", &[0.01, 0.1], 0.039);
        let mut s = span!("pulse");
        s.add_time(Seconds::from_milli(39.0));
        s.finish(&mut m);
        m.charge(EnergyBucket::Astable, Joules::new(0.25));
        m.charge(EnergyBucket::Load, Joules::new(0.75));
        m
    }

    #[test]
    fn json_is_deterministic_and_structured() {
        let a = sample().to_json();
        let b = sample().to_json();
        assert_eq!(a, b, "equal stores must export byte-identical JSON");
        assert!(a.starts_with('{') && a.ends_with('}'));
        assert!(a.contains("\"engine.steps\":42"));
        assert!(a.contains("\"astable\":0.25"));
        assert!(a.contains("\"total\":1.0"));
        assert!(a.contains("\"rejected\":0"));
        // Balanced braces and brackets (cheap well-formedness check).
        let depth = a.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
    }

    #[test]
    fn empty_store_exports_valid_skeleton() {
        let j = Metrics::new().to_json();
        assert!(j.contains("\"counters\":{}"));
        assert!(j.contains("\"total\":0.0"));
        assert!(Metrics::new().to_table().contains("no metrics recorded"));
    }

    #[test]
    fn table_renders_every_section() {
        let t = sample().to_table();
        assert!(t.contains("counters"));
        assert!(t.contains("engine.steps"));
        assert!(t.contains("spans"));
        assert!(t.contains("energy ledger"));
        assert!(t.contains("sample-and-hold"));
        assert!(t.contains("total"));
    }

    #[test]
    fn json_escapes_are_safe() {
        assert_eq!(json_str_escape("plain"), "plain");
        assert_eq!(json_str_escape("a\"b"), "a\\\"b");
        assert_eq!(json_str_escape("a\\b"), "a\\\\b");
        assert_eq!(json_str_escape("a\nb"), "a\\u000ab");
    }
}
