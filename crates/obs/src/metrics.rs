//! The in-memory metric store.

use std::collections::BTreeMap;

use eh_units::{Joules, Seconds};

use crate::histogram::Histogram;
use crate::ledger::{EnergyBucket, EnergyLedger};
use crate::recorder::Recorder;
use crate::span::Span;

/// Aggregated statistics for one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanStats {
    /// How many spans finished under this name.
    pub count: u64,
    sim_time: f64,
    energy: f64,
}

impl SpanStats {
    /// Total simulated time attributed to this span name.
    pub fn sim_time(&self) -> Seconds {
        Seconds::new(self.sim_time)
    }

    /// Total simulated energy attributed to this span name.
    pub fn energy(&self) -> Joules {
        Joules::new(self.energy)
    }
}

/// The deterministic metric store: counters, gauges, fixed-bucket
/// histograms, span stats and the run's [`EnergyLedger`], all keyed by
/// `&'static str` in ordered maps.
///
/// A `Metrics` only ever holds **simulated** quantities, so two runs of
/// the same scenario produce equal stores regardless of worker count —
/// which is why it can ride inside reports that are compared
/// bit-for-bit, and why merging shard-level stores in shard index order
/// (via `eh_sim::Mergeable`) is deterministic too.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
    spans: BTreeMap<&'static str, SpanStats>,
    ledger: EnergyLedger,
}

impl Metrics {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The value of a counter (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The value of a gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if anything was ever observed into it.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// The aggregated stats of a span name, if any span finished.
    pub fn span_stats(&self, name: &str) -> Option<&SpanStats> {
        self.spans.get(name)
    }

    /// The run's energy ledger.
    pub fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterates gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(k, v)| (*k, v))
    }

    /// Iterates span stats in name order.
    pub fn spans(&self) -> impl Iterator<Item = (&'static str, &SpanStats)> + '_ {
        self.spans.iter().map(|(k, v)| (*k, v))
    }

    /// Whether nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
            && self.ledger.is_empty()
    }

    /// Absorbs another store: counters, histograms, spans and the ledger
    /// add; gauges take the other store's value (last write wins, and in
    /// a merge fold the "other" is always the later shard).
    pub fn merge_from(&mut self, other: Metrics) {
        for (name, v) in other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, v) in other.gauges {
            self.gauges.insert(name, v);
        }
        for (name, h) in other.histograms {
            match self.histograms.entry(name) {
                std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().absorb(h),
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(h);
                }
            }
        }
        for (name, s) in other.spans {
            let mine = self.spans.entry(name).or_default();
            mine.count += s.count;
            mine.sim_time += s.sim_time;
            mine.energy += s.energy;
        }
        self.ledger.absorb(&other.ledger);
    }
}

impl Recorder for Metrics {
    fn enabled(&self) -> bool {
        true
    }

    fn add_counter(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    fn set_gauge(&mut self, name: &'static str, value: f64) {
        if value.is_finite() {
            self.gauges.insert(name, value);
        }
    }

    fn observe(&mut self, name: &'static str, bounds: &[f64], value: f64) -> bool {
        match self.histograms.entry(name) {
            std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().record(value),
            std::collections::btree_map::Entry::Vacant(e) => match Histogram::new(bounds) {
                Ok(mut h) => {
                    let binned = h.record(value);
                    e.insert(h);
                    binned
                }
                Err(_) => false,
            },
        }
    }

    fn record_span(&mut self, span: Span) {
        let stats = self.spans.entry(span.name()).or_default();
        stats.count += 1;
        stats.sim_time += span.sim_time().value();
        stats.energy += span.energy().value();
    }

    fn charge(&mut self, bucket: EnergyBucket, energy: Joules) {
        self.ledger.charge(bucket, energy);
    }

    // Bitwise-equal to `count` individual `record_span` folds whose
    // time/energy contributions sum (in call order) to the totals:
    // per-span folding starts the entry at 0.0 and adds, and a single
    // add of the pre-summed total performs the same additions in the
    // same order. Zero counts create no entry — presence of a span name
    // is part of store equality.
    fn record_span_stats(&mut self, name: &'static str, count: u64, sim_time: f64, energy: f64) {
        if count == 0 {
            return;
        }
        let stats = self.spans.entry(name).or_default();
        stats.count += count;
        if sim_time.is_finite() {
            stats.sim_time += sim_time;
        }
        if energy.is_finite() {
            stats.energy += energy;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span;

    fn sample() -> Metrics {
        let mut m = Metrics::new();
        m.add_counter("steps", 3);
        m.set_gauge("rail_v", 3.3);
        m.observe("dwell", &[0.01, 0.1], 0.039);
        let mut s = span!("pulse");
        s.add_time(Seconds::from_milli(39.0));
        s.add_energy(Joules::new(1e-6));
        s.finish(&mut m);
        m.charge(EnergyBucket::Astable, Joules::new(0.5));
        m
    }

    #[test]
    fn records_and_reads_back() {
        let m = sample();
        assert!(!m.is_empty());
        assert_eq!(m.counter("steps"), 3);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.gauge("rail_v"), Some(3.3));
        assert_eq!(m.histogram("dwell").unwrap().total_count(), 1);
        let s = m.span_stats("pulse").unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.sim_time(), Seconds::from_milli(39.0));
        assert_eq!(m.ledger().total(), Joules::new(0.5));
    }

    #[test]
    fn non_finite_gauge_discarded() {
        let mut m = Metrics::new();
        m.set_gauge("g", f64::NAN);
        assert_eq!(m.gauge("g"), None);
        m.set_gauge("g", 1.0);
        m.set_gauge("g", f64::INFINITY);
        assert_eq!(m.gauge("g"), Some(1.0), "bad write must not clobber");
    }

    #[test]
    fn invalid_histogram_bounds_do_not_create_an_entry() {
        let mut m = Metrics::new();
        assert!(!m.observe("h", &[], 1.0));
        assert!(!m.observe("h", &[2.0, 1.0], 1.0));
        assert!(m.histogram("h").is_none());
    }

    #[test]
    fn merge_adds_counters_histograms_spans_and_ledger() {
        let mut a = sample();
        let mut b = sample();
        b.set_gauge("rail_v", 2.2);
        a.merge_from(b);
        assert_eq!(a.counter("steps"), 6);
        assert_eq!(a.gauge("rail_v"), Some(2.2), "gauge: last shard wins");
        assert_eq!(a.histogram("dwell").unwrap().total_count(), 2);
        assert_eq!(a.span_stats("pulse").unwrap().count, 2);
        assert_eq!(a.ledger().total(), Joules::new(1.0));
    }

    #[test]
    fn merge_into_empty_equals_the_source() {
        let mut a = Metrics::new();
        a.merge_from(sample());
        assert_eq!(a, sample());
    }

    #[test]
    fn span_stats_flush_is_bitwise_equal_to_per_span_folding() {
        // The per-node flush path: accumulate in locals, record once.
        let times = [0.039, 60.0, 60.0, 0.039, 59.961];
        let mut per_span = Metrics::new();
        let mut total = 0.0f64;
        for t in times {
            let mut s = span!("node.harvesting");
            s.add_time(Seconds::new(t));
            s.finish(&mut per_span);
            total += t;
        }
        let mut flushed = Metrics::new();
        flushed.record_span_stats("node.harvesting", times.len() as u64, total, 0.0);
        assert_eq!(per_span, flushed);
        let a = per_span.span_stats("node.harvesting").unwrap();
        let b = flushed.span_stats("node.harvesting").unwrap();
        assert_eq!(
            a.sim_time().value().to_bits(),
            b.sim_time().value().to_bits()
        );
    }

    #[test]
    fn zero_count_span_stats_create_no_entry() {
        let mut m = Metrics::new();
        m.record_span_stats("never", 0, 0.0, 0.0);
        assert!(m.span_stats("never").is_none());
        assert!(m.is_empty());
        // The trait default agrees through a Box (forwarding override).
        let mut boxed: Box<Metrics> = Box::default();
        boxed.record_span_stats("never", 0, 1.0, 1.0);
        assert!(boxed.is_empty());
        boxed.record_span_stats("pulse", 3, 0.117, 3e-6);
        let s = boxed.span_stats("pulse").unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.sim_time(), Seconds::new(0.117));
    }
}
