//! Spans: named scopes that attribute simulated time and energy.

use eh_units::{Joules, Seconds};

use crate::recorder::Recorder;

/// One named scope of simulated activity.
///
/// A span accumulates **simulated** seconds and joules — never wall
/// time — so a run's span report is a pure function of the scenario and
/// bit-identical at any worker count. Spans are keyed by `&'static str`
/// names; finishing a span folds it into the recorder's per-name
/// [`SpanStats`](crate::SpanStats).
///
/// ```
/// use eh_obs::{span, Metrics, Recorder};
/// use eh_units::{Joules, Seconds};
///
/// let mut m = Metrics::new();
/// let mut pulse = span!("pulse");
/// pulse.add_time(Seconds::from_milli(39.0));
/// pulse.add_energy(Joules::new(1e-6));
/// pulse.finish(&mut m);
/// assert_eq!(m.span_stats("pulse").unwrap().count, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    name: &'static str,
    sim_time: f64,
    energy: f64,
}

impl Span {
    /// Opens a span. Prefer the [`span!`](crate::span) macro at call
    /// sites.
    pub fn new(name: &'static str) -> Self {
        Self {
            name,
            sim_time: 0.0,
            energy: 0.0,
        }
    }

    /// The span's static name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Attributes simulated time to the span; non-finite durations are
    /// ignored.
    pub fn add_time(&mut self, dt: Seconds) {
        if dt.value().is_finite() {
            self.sim_time += dt.value();
        }
    }

    /// Attributes simulated energy to the span; non-finite amounts are
    /// ignored.
    pub fn add_energy(&mut self, e: Joules) {
        if e.value().is_finite() {
            self.energy += e.value();
        }
    }

    /// Simulated time attributed so far.
    pub fn sim_time(&self) -> Seconds {
        Seconds::new(self.sim_time)
    }

    /// Simulated energy attributed so far.
    pub fn energy(&self) -> Joules {
        Joules::new(self.energy)
    }

    /// Closes the span, folding it into `recorder`'s stats for this
    /// span name.
    pub fn finish<R: Recorder + ?Sized>(self, recorder: &mut R) {
        recorder.record_span(self);
    }
}

/// Opens a [`Span`] with a static name: `let s = span!("pulse");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::new($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_time_and_energy() {
        let mut s = span!("test");
        s.add_time(Seconds::new(1.5));
        s.add_time(Seconds::new(0.5));
        s.add_energy(Joules::new(2.0));
        assert_eq!(s.name(), "test");
        assert_eq!(s.sim_time(), Seconds::new(2.0));
        assert_eq!(s.energy(), Joules::new(2.0));
    }

    #[test]
    fn non_finite_attribution_is_ignored() {
        let mut s = span!("test");
        s.add_time(Seconds::new(f64::NAN));
        s.add_energy(Joules::new(f64::INFINITY));
        assert_eq!(s.sim_time(), Seconds::ZERO);
        assert_eq!(s.energy(), Joules::ZERO);
    }
}
