//! The per-run energy ledger and its conservation invariant.

use eh_units::Joules;

use crate::error::ObsError;

/// The consumption buckets the ledger attributes energy to, mirroring
/// the paper's circuit: the astable multivibrator that times the PULSE,
/// the sample-and-hold metrology chain, the switching converter's
/// conversion losses, the node load, and — for digital trackers — the
/// control-law compute energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnergyBucket {
    /// The astable multivibrator (PULSE timing) supply draw. At the node
    /// layer, where tracker overhead is a lump sum, harvesting-step
    /// overhead lands here (the astable runs between pulses).
    Astable,
    /// The sample-and-hold chain supply draw. At the node layer,
    /// measurement-dwell overhead lands here (the S&H is active during
    /// PULSE).
    SampleHold,
    /// Energy dissipated inside the switching converter (and the series
    /// power-path MOSFET at the core layer).
    ConverterSwitching,
    /// Energy actually delivered to the node load.
    Load,
    /// Control-law compute energy (ops per decision × energy per op) for
    /// digital trackers; analog trackers never charge it.
    Compute,
}

impl EnergyBucket {
    /// Every bucket, in the fixed order used for indexing and export.
    pub const ALL: [EnergyBucket; 5] = [
        EnergyBucket::Astable,
        EnergyBucket::SampleHold,
        EnergyBucket::ConverterSwitching,
        EnergyBucket::Load,
        EnergyBucket::Compute,
    ];

    /// Stable index of this bucket in [`EnergyBucket::ALL`].
    pub fn index(self) -> usize {
        match self {
            EnergyBucket::Astable => 0,
            EnergyBucket::SampleHold => 1,
            EnergyBucket::ConverterSwitching => 2,
            EnergyBucket::Load => 3,
            EnergyBucket::Compute => 4,
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            EnergyBucket::Astable => "astable",
            EnergyBucket::SampleHold => "sample-and-hold",
            EnergyBucket::ConverterSwitching => "converter-switching",
            EnergyBucket::Load => "load",
            EnergyBucket::Compute => "compute",
        }
    }

    /// Snake-case key used in JSON exports.
    pub fn key(self) -> &'static str {
        match self {
            EnergyBucket::Astable => "astable",
            EnergyBucket::SampleHold => "sample_hold",
            EnergyBucket::ConverterSwitching => "converter_switching",
            EnergyBucket::Load => "load",
            EnergyBucket::Compute => "compute",
        }
    }
}

/// A per-run split of consumed energy into the five
/// [`EnergyBucket`]s.
///
/// The ledger is an independent accounting path: instrumented code
/// charges buckets at the same sites the closed-loop accumulators run,
/// and [`EnergyLedger::check_conservation`] compares the two at the end
/// of a run. Because the additions happen in different groupings the
/// float rounding differs, so the check is a real invariant rather than
/// a tautology — it catches a bucket that was forgotten, double-charged,
/// or charged with the wrong sign.
///
/// ```
/// use eh_obs::{EnergyBucket, EnergyLedger};
/// use eh_units::Joules;
///
/// let mut ledger = EnergyLedger::new();
/// ledger.charge(EnergyBucket::Astable, Joules::new(2.0));
/// ledger.charge(EnergyBucket::Load, Joules::new(1.0));
/// assert_eq!(ledger.total(), Joules::new(3.0));
/// assert!(ledger.check_conservation(Joules::new(3.0), 1e-9).is_ok());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyLedger {
    joules: [f64; 5],
}

impl EnergyLedger {
    /// A zeroed ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds energy to a bucket; non-finite amounts are ignored so a NaN
    /// cannot poison the whole ledger.
    pub fn charge(&mut self, bucket: EnergyBucket, energy: Joules) {
        let j = energy.value();
        if j.is_finite() {
            self.joules[bucket.index()] += j;
        }
    }

    /// The energy accumulated in one bucket.
    pub fn energy(&self, bucket: EnergyBucket) -> Joules {
        Joules::new(self.joules[bucket.index()])
    }

    /// The bucket sum, folded in the fixed [`EnergyBucket::ALL`] order.
    pub fn total(&self) -> Joules {
        Joules::new(self.joules.iter().sum())
    }

    /// Whether anything was ever charged.
    pub fn is_empty(&self) -> bool {
        self.joules.iter().all(|&j| j == 0.0)
    }

    /// Absorbs another ledger bucket-by-bucket.
    pub fn absorb(&mut self, other: &EnergyLedger) {
        for (mine, theirs) in self.joules.iter_mut().zip(other.joules) {
            *mine += theirs;
        }
    }

    /// The symmetric relative error between the bucket sum and an
    /// independently accumulated closed-loop total: `|Δ| / max(|a|,
    /// |b|)`, and `0` when both are zero (a dark run consumed nothing,
    /// which conserves trivially).
    pub fn relative_error(&self, closed_loop_total: Joules) -> f64 {
        let a = self.total().value();
        let b = closed_loop_total.value();
        let denom = a.abs().max(b.abs());
        if denom == 0.0 {
            0.0
        } else {
            (a - b).abs() / denom
        }
    }

    /// Checks the conservation invariant against a closed-loop total,
    /// returning the achieved relative error.
    ///
    /// # Errors
    ///
    /// Returns [`ObsError::ConservationViolation`] when the relative
    /// error exceeds `tolerance` (or is non-finite).
    pub fn check_conservation(
        &self,
        closed_loop_total: Joules,
        tolerance: f64,
    ) -> Result<f64, ObsError> {
        let rel = self.relative_error(closed_loop_total);
        if rel.is_finite() && rel <= tolerance {
            Ok(rel)
        } else {
            Err(ObsError::ConservationViolation {
                ledger_total_j: self.total().value(),
                closed_loop_total_j: closed_loop_total.value(),
                relative_error: rel,
                tolerance,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_accumulate_independently() {
        let mut l = EnergyLedger::new();
        l.charge(EnergyBucket::Astable, Joules::new(1.0));
        l.charge(EnergyBucket::SampleHold, Joules::new(2.0));
        l.charge(EnergyBucket::ConverterSwitching, Joules::new(4.0));
        l.charge(EnergyBucket::Load, Joules::new(8.0));
        l.charge(EnergyBucket::Load, Joules::new(8.0));
        l.charge(EnergyBucket::Compute, Joules::new(0.5));
        assert_eq!(l.energy(EnergyBucket::Astable), Joules::new(1.0));
        assert_eq!(l.energy(EnergyBucket::Load), Joules::new(16.0));
        assert_eq!(l.energy(EnergyBucket::Compute), Joules::new(0.5));
        assert_eq!(l.total(), Joules::new(23.5));
        assert!(!l.is_empty());
    }

    #[test]
    fn non_finite_charges_are_ignored() {
        let mut l = EnergyLedger::new();
        l.charge(EnergyBucket::Load, Joules::new(f64::NAN));
        l.charge(EnergyBucket::Load, Joules::new(f64::INFINITY));
        assert!(l.is_empty());
        assert_eq!(l.total(), Joules::ZERO);
    }

    #[test]
    fn conservation_tolerates_rounding_but_not_loss() {
        let mut l = EnergyLedger::new();
        l.charge(EnergyBucket::Astable, Joules::new(0.1));
        l.charge(EnergyBucket::Load, Joules::new(0.2));
        // Same total accumulated differently: rounding-level difference.
        let closed = Joules::new(0.2 + 0.1);
        let rel = l.check_conservation(closed, 1e-12).unwrap();
        assert!(rel < 1e-15, "rounding error {rel:.3e}");
        // A genuinely missing bucket trips the check.
        let err = l.check_conservation(Joules::new(0.2), 1e-9);
        assert!(matches!(err, Err(ObsError::ConservationViolation { .. })));
    }

    #[test]
    fn empty_ledger_conserves_against_zero() {
        let l = EnergyLedger::new();
        assert_eq!(l.check_conservation(Joules::ZERO, 0.0).unwrap(), 0.0);
        assert!(l.check_conservation(Joules::new(1.0), 1e-9).is_err());
    }

    #[test]
    fn absorb_adds_bucketwise() {
        let mut a = EnergyLedger::new();
        a.charge(EnergyBucket::Astable, Joules::new(1.0));
        let mut b = EnergyLedger::new();
        b.charge(EnergyBucket::Astable, Joules::new(2.0));
        b.charge(EnergyBucket::Load, Joules::new(3.0));
        a.absorb(&b);
        assert_eq!(a.energy(EnergyBucket::Astable), Joules::new(3.0));
        assert_eq!(a.energy(EnergyBucket::Load), Joules::new(3.0));
    }
}
