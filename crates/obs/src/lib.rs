//! `eh-obs` — deterministic observability for the simulation stack.
//!
//! The paper's headline claim is an *overhead budget*: the FOCV
//! metrology chain draws ~7.6 µA average, under 20 % of the 200 lux
//! harvest. Asserting end totals cannot say *where* simulated time and
//! energy go; this crate can, without ever breaking the workspace's
//! determinism contract.
//!
//! The design rules, in order of importance:
//!
//! 1. **Simulated quantities only.** Spans attribute simulated seconds
//!    and joules, never wall-clock time, worker counts, or anything else
//!    that varies between runs of the same scenario — so a [`Metrics`]
//!    produced by a sharded fleet run is bit-for-bit identical at any
//!    worker count.
//! 2. **Uninstrumented runs pay only a branch.** Hot paths hold an
//!    `Option<Box<Metrics>>`; with observability off every record site
//!    is one `None` check. The [`Recorder`] trait is implemented for
//!    `Option<R>` so call sites need no `if let` boilerplate.
//! 3. **Allocation-light.** Metric names are `&'static str` keys into
//!    `BTreeMap`s (ordered, so exports are deterministic too); the
//!    [`EnergyLedger`] is a fixed five-bucket array.
//! 4. **Zero `unsafe`** (denied workspace-wide).
//!
//! The [`EnergyLedger`] splits consumption into astable /
//! sample-and-hold / converter-switching / load buckets and
//! [`EnergyLedger::check_conservation`] verifies the bucket sum against
//! an independently accumulated closed-loop total — the conservation
//! invariant the node layer enforces at the end of every observed run.

mod error;
mod export;
mod histogram;
mod ledger;
mod metrics;
mod recorder;
mod span;

pub use error::ObsError;
pub use histogram::Histogram;
pub use ledger::{EnergyBucket, EnergyLedger};
pub use metrics::{Metrics, SpanStats};
pub use recorder::{NoopRecorder, Recorder};
pub use span::Span;
