//! Fixed-bucket histograms with explicit underflow/overflow bins.

use crate::error::ObsError;

/// A histogram over a fixed, strictly increasing set of bucket bounds.
///
/// For bounds `[b0, b1, …, bn]` the histogram keeps `n + 2` bins:
///
/// * bin 0 — the underflow bin, `(-∞, b0)`;
/// * bin `i` (1 ≤ i ≤ n) — `[b(i-1), b(i))`;
/// * bin `n + 1` — the overflow bin, `[bn, ∞)`.
///
/// Non-finite values are never binned; they increment a separate
/// `rejected` count so a NaN leaking into a hot path is visible instead
/// of silently skewing a bin (and so exports stay valid JSON).
///
/// ```
/// use eh_obs::Histogram;
///
/// let mut h = Histogram::new(&[1.0, 10.0])?;
/// assert!(h.record(0.5)); // underflow bin
/// assert!(h.record(1.0)); // [1, 10)
/// assert!(h.record(10.0)); // overflow bin
/// assert!(!h.record(f64::NAN));
/// assert_eq!(h.counts(), &[1, 1, 1]);
/// assert_eq!(h.rejected(), 1);
/// # Ok::<(), eh_obs::ObsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    rejected: u64,
}

impl Histogram {
    /// Creates a histogram over the given bucket bounds.
    ///
    /// # Errors
    ///
    /// Rejects empty bounds, non-finite bounds, and bounds that are not
    /// strictly increasing.
    pub fn new(bounds: &[f64]) -> Result<Self, ObsError> {
        if bounds.is_empty() {
            return Err(ObsError::InvalidParameter {
                name: "bounds",
                value: f64::NAN,
            });
        }
        for pair in bounds.windows(2) {
            // NaN pairs land here too (never strictly increasing), but
            // the finite check below names the offending bound.
            if pair[0] >= pair[1] || pair[0].is_nan() || pair[1].is_nan() {
                return Err(ObsError::InvalidParameter {
                    name: "bounds",
                    value: pair[1],
                });
            }
        }
        if let Some(&bad) = bounds.iter().find(|b| !b.is_finite()) {
            return Err(ObsError::InvalidParameter {
                name: "bounds",
                value: bad,
            });
        }
        Ok(Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            rejected: 0,
        })
    }

    /// Records one observation. Returns `false` (and counts the value as
    /// rejected) for non-finite input.
    pub fn record(&mut self, value: f64) -> bool {
        if !value.is_finite() {
            self.rejected += 1;
            return false;
        }
        let idx = self.bounds.partition_point(|b| *b <= value);
        self.counts[idx] += 1;
        true
    }

    /// The bucket bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// The per-bin counts: `bounds().len() + 1` entries, underflow first
    /// and overflow last.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// How many non-finite observations were rejected.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Total binned observations (excluding rejected ones).
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Absorbs another histogram. Matching bounds merge bin-by-bin;
    /// mismatched bounds fold every foreign observation (binned and
    /// rejected) into this histogram's rejected count, so a merge is
    /// total and deterministic but a schema clash stays visible.
    pub fn absorb(&mut self, other: Histogram) {
        if self.bounds == other.bounds {
            for (mine, theirs) in self.counts.iter_mut().zip(other.counts) {
                *mine += theirs;
            }
            self.rejected += other.rejected;
        } else {
            self.rejected += other.total_count() + other.rejected;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_bounds_rejected() {
        assert!(Histogram::new(&[]).is_err());
        assert!(Histogram::new(&[1.0, 1.0]).is_err());
        assert!(Histogram::new(&[2.0, 1.0]).is_err());
        assert!(Histogram::new(&[0.0, f64::NAN]).is_err());
        assert!(Histogram::new(&[0.0, f64::INFINITY]).is_err());
        assert!(Histogram::new(&[-1.0, 0.5, 2.0]).is_ok());
    }

    #[test]
    fn bucket_edges_underflow_and_overflow() {
        let mut h = Histogram::new(&[0.0, 1.0, 2.0]).unwrap();
        // Strictly below the first bound → underflow.
        h.record(-0.001);
        // Exactly on a bound → the bin it opens.
        h.record(0.0);
        h.record(1.0);
        // Exactly on the last bound → overflow.
        h.record(2.0);
        h.record(1e300);
        assert_eq!(h.counts(), &[1, 1, 1, 2]);
        assert_eq!(h.total_count(), 5);
    }

    #[test]
    fn non_finite_values_are_rejected_not_binned() {
        let mut h = Histogram::new(&[1.0]).unwrap();
        assert!(!h.record(f64::NAN));
        assert!(!h.record(f64::INFINITY));
        assert!(!h.record(f64::NEG_INFINITY));
        assert_eq!(h.total_count(), 0);
        assert_eq!(h.rejected(), 3);
    }

    #[test]
    fn absorb_matching_bounds_adds_bins() {
        let mut a = Histogram::new(&[1.0, 2.0]).unwrap();
        let mut b = Histogram::new(&[1.0, 2.0]).unwrap();
        a.record(0.5);
        b.record(1.5);
        b.record(f64::NAN);
        a.absorb(b);
        assert_eq!(a.counts(), &[1, 1, 0]);
        assert_eq!(a.rejected(), 1);
    }

    #[test]
    fn absorb_mismatched_bounds_counts_as_rejected() {
        let mut a = Histogram::new(&[1.0]).unwrap();
        let mut b = Histogram::new(&[2.0]).unwrap();
        b.record(0.5);
        b.record(3.0);
        b.record(f64::NAN);
        a.absorb(b);
        assert_eq!(a.total_count(), 0);
        assert_eq!(a.rejected(), 3);
    }
}
