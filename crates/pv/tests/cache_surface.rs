//! Cached-vs-exact agreement for the PV operating-point cache: the
//! documented error bound must hold across the lux/voltage grid, at the
//! domain boundaries, in the dark, and beyond Voc.

use eh_pv::{presets, CachedPvSurface, PvCell};
use eh_units::{Celsius, Lux, Volts};
use proptest::prelude::*;

fn exact_cell() -> PvCell {
    presets::sanyo_am1815()
}

fn surface() -> &'static CachedPvSurface {
    static SURF: std::sync::OnceLock<CachedPvSurface> = std::sync::OnceLock::new();
    SURF.get_or_init(|| {
        let cell = exact_cell();
        CachedPvSurface::build(cell.model(), cell.temperature()).expect("build succeeds")
    })
}

/// Relative current error of the cache against the exact solver at one
/// `(v, lux)` point, normalized by the exact `Isc`.
fn rel_err(cell: &PvCell, surf: &CachedPvSurface, v: Volts, lux: Lux) -> f64 {
    let exact = cell.current_at(v, lux).expect("exact solve");
    let cached = surf.current_at(v, lux).expect("cached lookup");
    let isc = cell.short_circuit_current(lux).expect("isc solve");
    (cached - exact).value().abs() / isc.value()
}

#[test]
fn grid_sweep_stays_within_error_bound() {
    let cell = exact_cell();
    let surf = surface();
    let (lo, hi) = CachedPvSurface::lux_domain();
    let span = (hi.value() / lo.value()).ln();
    // 40 log-spaced illuminances including both domain edges, 33 voltage
    // fractions including 0 and Voc.
    for a in 0..40 {
        let lux = Lux::new(lo.value() * (span * a as f64 / 39.0).exp());
        let voc = surf.open_circuit_voltage(lux).expect("cached voc").value();
        for b in 0..33 {
            let v = Volts::new(voc * b as f64 / 32.0);
            let err = rel_err(&cell, surf, v, lux);
            assert!(
                err < CachedPvSurface::REL_CURRENT_ERROR_BOUND,
                "rel err {err:.2e} at lux={lux}, v={v}"
            );
        }
    }
}

#[test]
fn voc_and_isc_tables_stay_within_bounds() {
    let cell = exact_cell();
    let surf = surface();
    let (lo, hi) = CachedPvSurface::lux_domain();
    let span = (hi.value() / lo.value()).ln();
    for a in 0..200 {
        let lux = Lux::new(lo.value() * (span * (a as f64 + 0.37) / 200.0).exp());
        let voc_exact = cell.open_circuit_voltage(lux).unwrap();
        let voc_cached = surf.open_circuit_voltage(lux).unwrap();
        assert!(
            (voc_cached - voc_exact).value().abs() < CachedPvSurface::VOC_ERROR_BOUND_VOLTS,
            "voc off by {} at {lux}",
            (voc_cached - voc_exact).value().abs()
        );
        let isc_exact = cell.short_circuit_current(lux).unwrap();
        let isc_cached = surf.short_circuit_current(lux).unwrap();
        assert!(
            (isc_cached - isc_exact).value().abs() / isc_exact.value()
                < CachedPvSurface::REL_CURRENT_ERROR_BOUND,
            "isc off at {lux}"
        );
    }
}

#[test]
fn dark_and_out_of_domain_match_exact_solver() {
    let cell = exact_cell();
    let surf = surface();
    let (lo, hi) = CachedPvSurface::lux_domain();
    // Dark, dimmer-than-domain, and brighter-than-domain all fall back to
    // the exact solver, so agreement is bit-exact.
    for lux in [
        Lux::ZERO,
        Lux::new(lo.value() / 3.0),
        Lux::new(hi.value() * 2.0),
    ] {
        for v in [Volts::ZERO, Volts::new(1.0), Volts::new(4.0)] {
            assert_eq!(
                surf.current_at(v, lux).unwrap(),
                cell.current_at(v, lux).unwrap(),
                "fallback diverged at lux={lux}, v={v}"
            );
        }
        assert_eq!(
            surf.open_circuit_voltage(lux).unwrap(),
            cell.open_circuit_voltage(lux).unwrap()
        );
        assert_eq!(
            surf.short_circuit_current(lux).unwrap(),
            cell.short_circuit_current(lux).unwrap()
        );
    }
}

#[test]
fn beyond_voc_falls_back_to_exact_solver() {
    let cell = exact_cell();
    let surf = surface();
    for lux in [Lux::new(0.05), Lux::new(200.0), Lux::new(150_000.0)] {
        let voc = cell.open_circuit_voltage(lux).unwrap();
        for factor in [1.02, 1.2, 1.6] {
            let v = Volts::new(voc.value() * factor);
            assert_eq!(
                surf.current_at(v, lux).unwrap(),
                cell.current_at(v, lux).unwrap(),
                "beyond-Voc fallback diverged at lux={lux}, factor={factor}"
            );
        }
    }
}

#[test]
fn invalid_inputs_rejected_like_exact_solver() {
    let cell = exact_cell();
    let surf = surface();
    assert!(surf.current_at(Volts::new(-0.1), Lux::new(100.0)).is_err());
    assert!(surf.current_at(Volts::new(1.0), Lux::new(-5.0)).is_err());
    assert!(surf
        .current_at(Volts::new(f64::NAN), Lux::new(100.0))
        .is_err());
    assert!(surf.open_circuit_voltage(Lux::new(f64::NAN)).is_err());
    assert!(cell.current_at(Volts::new(-0.1), Lux::new(100.0)).is_err());
}

#[test]
fn self_validation_probe_stays_under_bound() {
    let worst = surface()
        .validate_against_exact(80, 48)
        .expect("validation probe succeeds");
    assert!(
        worst < CachedPvSurface::REL_CURRENT_ERROR_BOUND,
        "measured worst-case error {worst:.2e} exceeds the documented bound"
    );
}

#[test]
fn rebuilds_are_bit_identical() {
    let cell = exact_cell();
    let a = CachedPvSurface::build(cell.model(), cell.temperature()).expect("build succeeds");
    let b = CachedPvSurface::build(cell.model(), cell.temperature()).expect("build succeeds");
    let (lo, hi) = CachedPvSurface::lux_domain();
    let span = (hi.value() / lo.value()).ln();
    for i in 0..50 {
        let lux = Lux::new(lo.value() * (span * (i as f64 + 0.21) / 50.0).exp());
        let voc = a.open_circuit_voltage(lux).unwrap().value();
        let v = Volts::new(voc * 0.613);
        assert_eq!(
            a.current_at(v, lux).unwrap().value().to_bits(),
            b.current_at(v, lux).unwrap().value().to_bits()
        );
    }
}

#[test]
fn warm_cell_surface_respects_its_temperature() {
    let warm = exact_cell().with_temperature(Celsius::new(40.0));
    let surf = CachedPvSurface::build(warm.model(), warm.temperature()).expect("build succeeds");
    for lux in [Lux::new(20.0), Lux::new(1000.0), Lux::new(80_000.0)] {
        let voc = surf.open_circuit_voltage(lux).unwrap().value();
        let v = Volts::new(voc * 0.55);
        let err = rel_err(&warm, &surf, v, lux);
        assert!(
            err < CachedPvSurface::REL_CURRENT_ERROR_BOUND,
            "err {err:.2e} at {lux}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Random in-domain probes respect the documented bound; lux is
    /// sampled log-uniformly over the full cached domain.
    #[test]
    fn random_probes_stay_within_error_bound(log_lux in -1.3f64..5.3, u in 0.0f64..1.0) {
        let cell = exact_cell();
        let surf = surface();
        let lux = Lux::new(10f64.powf(log_lux).clamp(0.05, 2.0e5));
        let voc = surf.open_circuit_voltage(lux).unwrap().value();
        let v = Volts::new(voc * u);
        let err = rel_err(&cell, surf, v, lux);
        prop_assert!(
            err < CachedPvSurface::REL_CURRENT_ERROR_BOUND,
            "rel err {} at lux={}, u={}", err, lux, u
        );
    }
}
