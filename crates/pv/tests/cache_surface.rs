//! Cached-vs-exact agreement for the PV operating-point cache: the
//! documented error bound must hold across the lux/voltage grid, at the
//! domain boundaries, in the dark, and beyond Voc.

use eh_pv::{presets, CachedPvSurface, PvCell};
use eh_units::{Celsius, Lux, Volts};
use proptest::prelude::*;

fn exact_cell() -> PvCell {
    presets::sanyo_am1815()
}

fn surface() -> &'static CachedPvSurface {
    static SURF: std::sync::OnceLock<CachedPvSurface> = std::sync::OnceLock::new();
    SURF.get_or_init(|| {
        let cell = exact_cell();
        CachedPvSurface::build(cell.model(), cell.temperature()).expect("build succeeds")
    })
}

/// Relative current error of the cache against the exact solver at one
/// `(v, lux)` point, normalized by the exact `Isc`.
fn rel_err(cell: &PvCell, surf: &CachedPvSurface, v: Volts, lux: Lux) -> f64 {
    let exact = cell.current_at(v, lux).expect("exact solve");
    let cached = surf.current_at(v, lux).expect("cached lookup");
    let isc = cell.short_circuit_current(lux).expect("isc solve");
    (cached - exact).value().abs() / isc.value()
}

#[test]
fn grid_sweep_stays_within_error_bound() {
    let cell = exact_cell();
    let surf = surface();
    let (lo, hi) = CachedPvSurface::lux_domain();
    let span = (hi.value() / lo.value()).ln();
    // 40 log-spaced illuminances including both domain edges, 33 voltage
    // fractions including 0 and Voc.
    for a in 0..40 {
        let lux = Lux::new(lo.value() * (span * a as f64 / 39.0).exp());
        let voc = surf.open_circuit_voltage(lux).expect("cached voc").value();
        for b in 0..33 {
            let v = Volts::new(voc * b as f64 / 32.0);
            let err = rel_err(&cell, surf, v, lux);
            assert!(
                err < CachedPvSurface::REL_CURRENT_ERROR_BOUND,
                "rel err {err:.2e} at lux={lux}, v={v}"
            );
        }
    }
}

#[test]
fn voc_and_isc_tables_stay_within_bounds() {
    let cell = exact_cell();
    let surf = surface();
    let (lo, hi) = CachedPvSurface::lux_domain();
    let span = (hi.value() / lo.value()).ln();
    for a in 0..200 {
        let lux = Lux::new(lo.value() * (span * (a as f64 + 0.37) / 200.0).exp());
        let voc_exact = cell.open_circuit_voltage(lux).unwrap();
        let voc_cached = surf.open_circuit_voltage(lux).unwrap();
        assert!(
            (voc_cached - voc_exact).value().abs() < CachedPvSurface::VOC_ERROR_BOUND_VOLTS,
            "voc off by {} at {lux}",
            (voc_cached - voc_exact).value().abs()
        );
        let isc_exact = cell.short_circuit_current(lux).unwrap();
        let isc_cached = surf.short_circuit_current(lux).unwrap();
        assert!(
            (isc_cached - isc_exact).value().abs() / isc_exact.value()
                < CachedPvSurface::REL_CURRENT_ERROR_BOUND,
            "isc off at {lux}"
        );
    }
}

#[test]
fn dark_and_out_of_domain_match_exact_solver() {
    let cell = exact_cell();
    let surf = surface();
    let (lo, hi) = CachedPvSurface::lux_domain();
    // Dark, dimmer-than-domain, and brighter-than-domain all fall back to
    // the exact solver, so agreement is bit-exact.
    for lux in [
        Lux::ZERO,
        Lux::new(lo.value() / 3.0),
        Lux::new(hi.value() * 2.0),
    ] {
        for v in [Volts::ZERO, Volts::new(1.0), Volts::new(4.0)] {
            assert_eq!(
                surf.current_at(v, lux).unwrap(),
                cell.current_at(v, lux).unwrap(),
                "fallback diverged at lux={lux}, v={v}"
            );
        }
        assert_eq!(
            surf.open_circuit_voltage(lux).unwrap(),
            cell.open_circuit_voltage(lux).unwrap()
        );
        assert_eq!(
            surf.short_circuit_current(lux).unwrap(),
            cell.short_circuit_current(lux).unwrap()
        );
    }
}

#[test]
fn beyond_voc_falls_back_to_exact_solver() {
    let cell = exact_cell();
    let surf = surface();
    for lux in [Lux::new(0.05), Lux::new(200.0), Lux::new(150_000.0)] {
        let voc = cell.open_circuit_voltage(lux).unwrap();
        for factor in [1.02, 1.2, 1.6] {
            let v = Volts::new(voc.value() * factor);
            assert_eq!(
                surf.current_at(v, lux).unwrap(),
                cell.current_at(v, lux).unwrap(),
                "beyond-Voc fallback diverged at lux={lux}, factor={factor}"
            );
        }
    }
}

#[test]
fn invalid_inputs_rejected_like_exact_solver() {
    let cell = exact_cell();
    let surf = surface();
    assert!(surf.current_at(Volts::new(-0.1), Lux::new(100.0)).is_err());
    assert!(surf.current_at(Volts::new(1.0), Lux::new(-5.0)).is_err());
    assert!(surf
        .current_at(Volts::new(f64::NAN), Lux::new(100.0))
        .is_err());
    assert!(surf.open_circuit_voltage(Lux::new(f64::NAN)).is_err());
    assert!(cell.current_at(Volts::new(-0.1), Lux::new(100.0)).is_err());
}

#[test]
fn self_validation_probe_stays_under_bound() {
    let worst = surface()
        .validate_against_exact(80, 48)
        .expect("validation probe succeeds");
    assert!(
        worst < CachedPvSurface::REL_CURRENT_ERROR_BOUND,
        "measured worst-case error {worst:.2e} exceeds the documented bound"
    );
}

#[test]
fn rebuilds_are_bit_identical() {
    let cell = exact_cell();
    let a = CachedPvSurface::build(cell.model(), cell.temperature()).expect("build succeeds");
    let b = CachedPvSurface::build(cell.model(), cell.temperature()).expect("build succeeds");
    let (lo, hi) = CachedPvSurface::lux_domain();
    let span = (hi.value() / lo.value()).ln();
    for i in 0..50 {
        let lux = Lux::new(lo.value() * (span * (i as f64 + 0.21) / 50.0).exp());
        let voc = a.open_circuit_voltage(lux).unwrap().value();
        let v = Volts::new(voc * 0.613);
        assert_eq!(
            a.current_at(v, lux).unwrap().value().to_bits(),
            b.current_at(v, lux).unwrap().value().to_bits()
        );
    }
}

#[test]
fn warm_cell_surface_respects_its_temperature() {
    let warm = exact_cell().with_temperature(Celsius::new(40.0));
    let surf = CachedPvSurface::build(warm.model(), warm.temperature()).expect("build succeeds");
    for lux in [Lux::new(20.0), Lux::new(1000.0), Lux::new(80_000.0)] {
        let voc = surf.open_circuit_voltage(lux).unwrap().value();
        let v = Volts::new(voc * 0.55);
        let err = rel_err(&warm, &surf, v, lux);
        assert!(
            err < CachedPvSurface::REL_CURRENT_ERROR_BOUND,
            "err {err:.2e} at {lux}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Random in-domain probes respect the documented bound; lux is
    /// sampled log-uniformly over the full cached domain.
    #[test]
    fn random_probes_stay_within_error_bound(log_lux in -1.3f64..5.3, u in 0.0f64..1.0) {
        let cell = exact_cell();
        let surf = surface();
        let lux = Lux::new(10f64.powf(log_lux).clamp(0.05, 2.0e5));
        let voc = surf.open_circuit_voltage(lux).unwrap().value();
        let v = Volts::new(voc * u);
        let err = rel_err(&cell, surf, v, lux);
        prop_assert!(
            err < CachedPvSurface::REL_CURRENT_ERROR_BOUND,
            "rel err {} at lux={}, u={}", err, lux, u
        );
    }
}

/// `connect_point` must return exactly what the two-call sequence —
/// `open_circuit_voltage` then `current_at(min(target, voc))` — returns,
/// bit for bit, across the domain, in the dark, beyond the bright edge,
/// and for targets above Voc.
#[test]
fn connect_point_is_bit_identical_to_the_two_call_sequence() {
    let surf = surface();
    let (lo, hi) = CachedPvSurface::lux_domain();
    let span = (hi.value() / lo.value()).ln();
    let mut luxes: Vec<f64> = (0..25)
        .map(|a| lo.value() * (span * a as f64 / 24.0).exp())
        .collect();
    // Out-of-domain probes exercise the exact-solver fallback arm.
    luxes.extend([0.0, 0.01, 3.0e5]);
    for &l in &luxes {
        let lux = Lux::new(l);
        let voc_ref = surf.open_circuit_voltage(lux).expect("voc");
        for frac in [1e-6, 0.3, 0.596, 0.9, 1.0, 1.5] {
            let target = Volts::new((voc_ref.value() * frac).max(1e-9));
            let fused = surf.connect_point(target, lux).expect("connect point");
            assert_eq!(fused.voc.value().to_bits(), voc_ref.value().to_bits());
            let v_op_ref = target.min(voc_ref);
            assert_eq!(fused.v_op.value().to_bits(), v_op_ref.value().to_bits());
            if v_op_ref.value() > 0.0 {
                let i_ref = surf.current_at(v_op_ref, lux).expect("current");
                let i_fused = fused.current.expect("positive v_op has a current");
                assert_eq!(
                    i_fused.value().to_bits(),
                    i_ref.value().to_bits(),
                    "lux={l} frac={frac}"
                );
            } else {
                assert!(fused.current.is_none());
            }
        }
    }
}

/// A dark module (zero Voc) yields no current: the engine's
/// skip-the-harvest arm.
#[test]
fn connect_point_in_the_dark_has_no_current() {
    let surf = surface();
    let p = surf
        .connect_point(Volts::new(1.0), Lux::new(0.0))
        .expect("dark connect point");
    assert_eq!(p.voc, Volts::ZERO);
    assert_eq!(p.v_op, Volts::ZERO);
    assert!(p.current.is_none());
}

/// `eval_many` over interleaved `(v, lux)` pairs must equal a scalar
/// `current_at` loop bit-for-bit, including out-of-domain fallbacks.
#[test]
fn eval_many_matches_the_scalar_loop_bitwise() {
    let surf = surface();
    let probes: Vec<(f64, f64)> = vec![
        (0.0, 0.05),
        (0.3, 1.0),
        (1.2, 250.0),
        (2.0, 1.0e4),
        (1.9, 2.0e5),
        (0.5, 0.01),  // below the domain: exact fallback
        (0.5, 3.0e5), // above the domain: exact fallback
        (0.0, 0.0),   // dark
    ];
    let v_lux: Vec<f64> = probes.iter().flat_map(|&(v, l)| [v, l]).collect();
    let mut out = vec![0.0; probes.len()];
    surf.eval_many(&v_lux, &mut out).expect("batch eval");
    for (i, &(v, l)) in probes.iter().enumerate() {
        let scalar = surf
            .current_at(Volts::new(v), Lux::new(l))
            .expect("scalar eval");
        assert_eq!(
            out[i].to_bits(),
            scalar.value().to_bits(),
            "probe {i}: v={v} lux={l}"
        );
    }
}

/// Shape errors are typed, not panics, and element errors surface the
/// lowest failing index (scalar-loop error order).
#[test]
fn eval_many_rejects_bad_shapes_and_bad_elements() {
    let surf = surface();
    let mut out = vec![0.0; 1];
    assert!(matches!(
        surf.eval_many(&[1.0, 2.0, 3.0], &mut out),
        Err(eh_pv::PvError::InvalidParameter { .. })
    ));
    assert!(matches!(
        surf.eval_many(&[1.0, 2.0, 3.0, 4.0], &mut out),
        Err(eh_pv::PvError::InvalidParameter { .. })
    ));
    // Element 1 has a negative voltage; element 0 is fine.
    let err = surf
        .eval_many(&[0.5, 100.0, -1.0, 100.0], &mut [0.0; 2])
        .unwrap_err();
    assert!(matches!(err, eh_pv::PvError::OutOfRange { .. }));
}

/// A walking illuminance drives the cursor through cursor hits and cell
/// crossings; at every point the lane read must agree with the scalar
/// `connect_point` to the documented < 3e-11 fractional-cell bound
/// (which maps to a comparable relative bound on Voc and current).
#[test]
fn connect_point_lane_tracks_the_scalar_query() {
    let surf = surface();
    let mut cursor = eh_pv::LuxCursor::new();
    // Sweep up and back down: ~0.3 % steps stay in-cell for many
    // consecutive queries, with periodic cell crossings.
    let mut lux = 10.0f64;
    for i in 0..4000 {
        lux *= if i < 2000 { 1.003 } else { 1.0 / 1.003 };
        let target = Volts::new(2.5);
        let lane = surf
            .connect_point_lane(&mut cursor, target, Lux::new(lux))
            .expect("lane query");
        let scalar = surf
            .connect_point(target, Lux::new(lux))
            .expect("scalar query");
        let dvoc = (lane.voc - scalar.voc).value().abs() / scalar.voc.value();
        assert!(dvoc < 1e-9, "voc diverged at lux {lux}: {dvoc}");
        match (lane.current, scalar.current) {
            (Some(a), Some(b)) => {
                let rel = (a - b).value().abs() / b.value().abs().max(1e-15);
                assert!(rel < 1e-8, "current diverged at lux {lux}: {rel}");
            }
            (a, b) => assert_eq!(a.is_some(), b.is_some(), "presence diverged at {lux}"),
        }
    }
}

/// Out-of-domain and invalid queries through the lane entry points are
/// bit-identical to the scalar path (exact-solver fallback), and a
/// fallback resets the cursor rather than leaving a stale cell armed.
#[test]
fn lane_queries_fall_back_bitwise_out_of_domain() {
    let surf = surface();
    let mut cursor = eh_pv::LuxCursor::new();
    for l in [0.0, 0.01, 3.0e5] {
        let lane = surf
            .connect_point_lane(&mut cursor, Volts::new(1.0), Lux::new(l))
            .expect("fallback query");
        let scalar = surf
            .connect_point(Volts::new(1.0), Lux::new(l))
            .expect("scalar query");
        assert_eq!(lane.voc.value().to_bits(), scalar.voc.value().to_bits());
        assert_eq!(lane.v_op.value().to_bits(), scalar.v_op.value().to_bits());
        assert_eq!(
            lane.current.map(|a| a.value().to_bits()),
            scalar.current.map(|a| a.value().to_bits()),
            "lux {l}"
        );
        let voc_lane = surf
            .open_circuit_voltage_lane(&mut cursor, Lux::new(l))
            .expect("fallback voc");
        let voc_scalar = surf.open_circuit_voltage(Lux::new(l)).expect("scalar voc");
        assert_eq!(voc_lane.value().to_bits(), voc_scalar.value().to_bits());
    }
    assert!(surf
        .connect_point_lane(&mut cursor, Volts::new(1.0), Lux::new(f64::NAN))
        .is_err());
    assert!(surf
        .open_circuit_voltage_lane(&mut cursor, Lux::new(-1.0))
        .is_err());
}

/// `eval_lanes` runs exactly the per-lane query for active lanes,
/// leaves inactive lanes untouched, and rejects mismatched widths.
#[test]
fn eval_lanes_matches_per_lane_queries() {
    let surf = surface();
    let targets = [Volts::new(2.0); 4];
    let luxes = [
        Lux::new(50.0),
        Lux::new(1.0e4),
        Lux::new(0.0),
        Lux::new(700.0),
    ];
    let active = [true, true, true, false];
    let mut cursors = [eh_pv::LuxCursor::new(); 4];
    let sentinel = eh_pv::ConnectPoint {
        voc: Volts::new(-7.0),
        v_op: Volts::new(-7.0),
        current: None,
    };
    let mut out = [sentinel; 4];
    surf.eval_lanes(&targets, &luxes, &active, &mut cursors, &mut out)
        .expect("lane batch");
    for i in 0..3 {
        let mut solo = eh_pv::LuxCursor::new();
        let reference = surf
            .connect_point_lane(&mut solo, targets[i], luxes[i])
            .expect("solo query");
        assert_eq!(
            out[i].voc.value().to_bits(),
            reference.voc.value().to_bits()
        );
    }
    assert_eq!(out[3].voc, sentinel.voc, "inactive lane must be untouched");
    assert!(matches!(
        surf.eval_lanes(&targets, &luxes[..3], &active, &mut cursors, &mut out),
        Err(eh_pv::PvError::InvalidParameter { .. })
    ));
}
