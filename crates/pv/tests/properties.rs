//! Property-based tests on the PV model invariants.

use eh_pv::presets;
use eh_units::{Celsius, Lux, Volts};
use proptest::prelude::*;

fn lux_range() -> impl Strategy<Value = f64> {
    10.0..100_000.0f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// I(V) is strictly decreasing in V for any illuminance.
    #[test]
    fn current_monotone_in_voltage(lux in lux_range(), v in 0.0..5.0f64, dv in 0.01..1.0f64) {
        let cell = presets::sanyo_am1815();
        let lux = Lux::new(lux);
        let i1 = cell.current_at(Volts::new(v), lux).unwrap().value();
        let i2 = cell.current_at(Volts::new(v + dv), lux).unwrap().value();
        prop_assert!(i2 < i1, "I({}) = {i2} !< I({v}) = {i1}", v + dv);
    }

    /// More light, more short-circuit current.
    #[test]
    fn isc_monotone_in_lux(lux in 10.0..50_000.0f64, factor in 1.1..5.0f64) {
        let cell = presets::sanyo_am1815();
        let i1 = cell.short_circuit_current(Lux::new(lux)).unwrap();
        let i2 = cell.short_circuit_current(Lux::new(lux * factor)).unwrap();
        prop_assert!(i2 > i1);
    }

    /// More light, higher open-circuit voltage.
    #[test]
    fn voc_monotone_in_lux(lux in 10.0..50_000.0f64, factor in 1.1..5.0f64) {
        let cell = presets::sanyo_am1815();
        let v1 = cell.open_circuit_voltage(Lux::new(lux)).unwrap();
        let v2 = cell.open_circuit_voltage(Lux::new(lux * factor)).unwrap();
        prop_assert!(v2 > v1);
    }

    /// The MPP is interior and its power bounds the power at any other
    /// sampled voltage.
    #[test]
    fn mpp_is_global_max(lux in lux_range(), frac in 0.0..1.0f64) {
        let cell = presets::sanyo_am1815();
        let lux = Lux::new(lux);
        let mpp = cell.mpp(lux).unwrap();
        let v = mpp.open_circuit_voltage * frac;
        let p = cell.power_at(v, lux).unwrap();
        prop_assert!(p.value() <= mpp.power.value() * (1.0 + 1e-9));
    }

    /// The FOCV factor stays inside a physically sensible band across the
    /// full operating envelope (intensity and temperature).
    #[test]
    fn focv_factor_banded(lux in 50.0..50_000.0f64, temp_c in 0.0..50.0f64) {
        let cell = presets::sanyo_am1815().with_temperature(Celsius::new(temp_c));
        let k = cell.mpp(Lux::new(lux)).unwrap().focv_factor().value();
        prop_assert!((0.4..0.9).contains(&k), "k = {k}");
    }

    /// Power at Voc and at 0 V is (near) zero; power inside is positive.
    #[test]
    fn power_endpoints(lux in lux_range()) {
        let cell = presets::sanyo_am1815();
        let lux = Lux::new(lux);
        let voc = cell.open_circuit_voltage(lux).unwrap();
        let p_voc = cell.power_at(voc, lux).unwrap();
        prop_assert!(p_voc.value().abs() < 1e-7);
        let p_mid = cell.power_at(voc * 0.5, lux).unwrap();
        prop_assert!(p_mid.value() > 0.0);
    }

    /// Solved Voc is consistent with the zero crossing of I(V).
    #[test]
    fn voc_consistency(lux in lux_range()) {
        let cell = presets::sanyo_am1815();
        let lux = Lux::new(lux);
        let voc = cell.open_circuit_voltage(lux).unwrap();
        let i = cell.current_at(voc, lux).unwrap();
        prop_assert!(i.value().abs() < 1e-8, "I(Voc) = {}", i.value());
    }
}
