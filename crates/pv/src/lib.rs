//! Photovoltaic cell modelling for the DATE 2011 ultra low-power MPPT
//! reproduction.
//!
//! The paper ([Weddell et al., DATE 2011]) evaluates its sample-and-hold
//! FOCV MPPT technique with two amorphous-silicon (a-Si) PV modules:
//! a Schott Solar 1116929 (Fig. 1/Fig. 2) and a SANYO Amorton AM-1815
//! (Table I and the evaluation). This crate provides the electrical model
//! of such cells:
//!
//! * [`SingleDiodeModel`] — a single-diode equivalent circuit with series
//!   resistance and an **illumination-proportional shunt** (photo-shunt),
//!   which reproduces the two defining properties of a-Si cells the paper
//!   relies on: a logarithmic `Voc(lux)` law and an MPP voltage that is an
//!   approximately constant fraction `k ≈ 0.6` of `Voc` (Eq. (1) of the
//!   paper).
//! * [`PvCell`] — a model bound to an operating temperature, exposing
//!   `Voc`, `Isc`, I-V curves and MPP solving.
//! * [`CachedPvSurface`] — a memoized interpolation table over the I-V
//!   surface with a documented error bound, taking the implicit solver
//!   off the simulation hot path (enable per cell with
//!   [`PvCell::with_cache`]).
//! * [`presets`] — parameter sets fitted to the paper's own measurements
//!   (Table I) and the AM-1815 datasheet.
//! * [`focv`] — fractional-open-circuit-voltage analysis: `k(lux)`, and
//!   the efficiency loss incurred by operating away from the true MPP
//!   (used by the paper's §II-B argument that a 60 s hold period costs
//!   <1 % efficiency).
//! * [`teg`] — a thermoelectric generator model; §I notes the technique
//!   also applies to TEGs, whose MPP is at exactly half the open-circuit
//!   voltage.
//!
//! # Quickstart
//!
//! ```
//! use eh_pv::presets;
//! use eh_units::Lux;
//!
//! let cell = presets::sanyo_am1815();
//! let voc = cell.open_circuit_voltage(Lux::new(1000.0))?;
//! let mpp = cell.mpp(Lux::new(1000.0))?;
//! assert!((voc.value() - 5.44).abs() < 0.05);
//! assert!(mpp.voltage < voc);
//! # Ok::<(), eh_pv::PvError>(())
//! ```
//!
//! [Weddell et al., DATE 2011]: https://eprints.soton.ac.uk/271584/

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
mod cache;
mod cell;
mod curve;
mod error;
pub mod fit;
pub mod focv;
pub mod irradiance;
mod model;
mod mpp;
pub mod presets;
pub mod spectrum;
pub mod teg;
pub mod thermal;

pub use cache::{CachedPvSurface, ConnectPoint, LuxCursor};
pub use cell::PvCell;
pub use curve::{CurvePoint, IvCurve};
pub use error::PvError;
pub use irradiance::{LightSource, LuminousEfficacy};
pub use model::SingleDiodeModel;
pub use mpp::MppPoint;
