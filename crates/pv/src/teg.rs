//! Thermoelectric generator (TEG) model.
//!
//! §I of the paper notes the proposed technique "is also applicable to
//! other forms of energy harvesting (such as thermoelectric generators)
//! which feature a similar relationship between the open-circuit and MPP
//! voltage" (citing Laird et al. \[9\]). A TEG is a Thévenin source:
//! `Voc = S·ΔT` with internal resistance `R`, so maximum power transfer
//! occurs at exactly `Vmpp = Voc / 2` — i.e. `k = 0.5`.

use eh_units::{Amps, Ohms, Ratio, Volts, Watts};

use crate::error::PvError;
use crate::mpp::MppPoint;

/// A thermoelectric generator: Seebeck voltage source behind an internal
/// resistance.
///
/// ```
/// use eh_pv::teg::Teg;
/// use eh_units::Ohms;
///
/// let teg = Teg::new(0.05, Ohms::new(5.0))?;
/// let mpp = teg.mpp(20.0); // 20 K gradient
/// assert!((mpp.focv_factor().value() - 0.5).abs() < 1e-12);
/// # Ok::<(), eh_pv::PvError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Teg {
    seebeck_v_per_k: f64,
    internal_resistance: Ohms,
}

impl Teg {
    /// Creates a TEG with the given Seebeck coefficient (volts per kelvin
    /// of gradient) and internal resistance.
    ///
    /// # Errors
    ///
    /// Returns [`PvError::InvalidParameter`] for non-positive or
    /// non-finite parameters.
    pub fn new(seebeck_v_per_k: f64, internal_resistance: Ohms) -> Result<Self, PvError> {
        if !(seebeck_v_per_k.is_finite() && seebeck_v_per_k > 0.0) {
            return Err(PvError::InvalidParameter {
                name: "seebeck_v_per_k",
                value: seebeck_v_per_k,
            });
        }
        if !(internal_resistance.value().is_finite() && internal_resistance.value() > 0.0) {
            return Err(PvError::InvalidParameter {
                name: "internal_resistance",
                value: internal_resistance.value(),
            });
        }
        Ok(Self {
            seebeck_v_per_k,
            internal_resistance,
        })
    }

    /// Open-circuit voltage for a temperature gradient `delta_t_kelvin`.
    pub fn open_circuit_voltage(&self, delta_t_kelvin: f64) -> Volts {
        Volts::new(self.seebeck_v_per_k * delta_t_kelvin.max(0.0))
    }

    /// Terminal current when held at voltage `v` with gradient
    /// `delta_t_kelvin`: `(Voc − V)/R`, clamped at zero for `V ≥ Voc`.
    pub fn current_at(&self, v: Volts, delta_t_kelvin: f64) -> Amps {
        let voc = self.open_circuit_voltage(delta_t_kelvin);
        if v >= voc {
            return Amps::ZERO;
        }
        (voc - v.max(Volts::ZERO)) / self.internal_resistance
    }

    /// Output power at terminal voltage `v`.
    pub fn power_at(&self, v: Volts, delta_t_kelvin: f64) -> Watts {
        v.max(Volts::ZERO) * self.current_at(v, delta_t_kelvin)
    }

    /// The maximum power point: exactly half the open-circuit voltage.
    pub fn mpp(&self, delta_t_kelvin: f64) -> MppPoint {
        let voc = self.open_circuit_voltage(delta_t_kelvin);
        let v = voc * 0.5;
        let i = self.current_at(v, delta_t_kelvin);
        MppPoint {
            voltage: v,
            current: i,
            power: v * i,
            open_circuit_voltage: voc,
        }
    }

    /// The FOCV factor of an ideal TEG is exactly one half.
    pub fn focv_factor(&self) -> Ratio {
        Ratio::new(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn teg() -> Teg {
        Teg::new(0.05, Ohms::new(10.0)).unwrap()
    }

    #[test]
    fn validation() {
        assert!(Teg::new(0.0, Ohms::new(1.0)).is_err());
        assert!(Teg::new(0.05, Ohms::ZERO).is_err());
        assert!(Teg::new(f64::NAN, Ohms::new(1.0)).is_err());
    }

    #[test]
    fn voc_linear_in_gradient() {
        let t = teg();
        assert_eq!(t.open_circuit_voltage(10.0), Volts::new(0.5));
        assert_eq!(t.open_circuit_voltage(20.0), Volts::new(1.0));
        assert_eq!(t.open_circuit_voltage(-5.0), Volts::ZERO);
    }

    #[test]
    fn mpp_at_half_voc() {
        let t = teg();
        let mpp = t.mpp(20.0);
        assert_eq!(mpp.voltage, Volts::new(0.5));
        assert!((mpp.focv_factor().value() - 0.5).abs() < 1e-12);
        // P = Voc²/(4R) = 1/(40) = 25 mW
        assert!((mpp.power.as_milli() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn mpp_power_beats_neighbours() {
        let t = teg();
        let mpp = t.mpp(15.0);
        for dv in [-0.1, 0.1] {
            let p = t.power_at(mpp.voltage + Volts::new(dv), 15.0);
            assert!(p <= mpp.power);
        }
    }

    #[test]
    fn current_clamps_beyond_voc() {
        let t = teg();
        assert_eq!(t.current_at(Volts::new(2.0), 10.0), Amps::ZERO);
        assert_eq!(t.power_at(Volts::new(-1.0), 10.0), Watts::ZERO);
    }
}
