//! Illuminance ↔ irradiance conversion and cell conversion efficiency.
//!
//! The paper works in lux throughout (light meters read lux), but cell
//! conversion efficiency is defined against radiant power. The bridge is
//! the luminous efficacy of the light source's spectrum.

use eh_units::{Lux, Ratio, Watts};

use crate::cell::PvCell;
use crate::error::PvError;

/// The spectral class of a light source, determining its luminous
/// efficacy (how many lux one W/m² of its radiation produces).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum LightSource {
    /// Outdoor daylight (≈105 lm/W when integrated over the full spectrum
    /// reaching the surface).
    #[default]
    Daylight,
    /// Fluorescent office lighting (≈75 lm/W radiant).
    Fluorescent,
    /// Incandescent lamps (≈15 lm/W — mostly infrared).
    Incandescent,
    /// White LED lighting (≈90 lm/W radiant).
    Led,
}

/// Luminous efficacy of a light source's spectrum, in lumens per watt of
/// radiant power.
///
/// ```
/// use eh_pv::{LightSource, LuminousEfficacy};
/// let eff = LuminousEfficacy::of(LightSource::Daylight);
/// assert!((eff.lumens_per_watt() - 105.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LuminousEfficacy(f64);

impl LuminousEfficacy {
    /// The efficacy of a standard source type.
    pub fn of(source: LightSource) -> Self {
        Self(match source {
            LightSource::Daylight => 105.0,
            LightSource::Fluorescent => 75.0,
            LightSource::Incandescent => 15.0,
            LightSource::Led => 90.0,
        })
    }

    /// Creates a custom efficacy.
    ///
    /// # Errors
    ///
    /// Returns [`PvError::InvalidParameter`] unless `lm_per_w` is positive
    /// and finite.
    pub fn custom(lm_per_w: f64) -> Result<Self, PvError> {
        if lm_per_w.is_finite() && lm_per_w > 0.0 {
            Ok(Self(lm_per_w))
        } else {
            Err(PvError::InvalidParameter {
                name: "luminous_efficacy",
                value: lm_per_w,
            })
        }
    }

    /// Lumens per radiant watt.
    pub fn lumens_per_watt(self) -> f64 {
        self.0
    }

    /// Converts illuminance to irradiance in W/m².
    pub fn irradiance_w_per_m2(self, lux: Lux) -> f64 {
        lux.value() / self.0
    }

    /// Radiant power incident on an area, in watts.
    pub fn incident_power(self, lux: Lux, area_cm2: f64) -> Watts {
        Watts::new(self.irradiance_w_per_m2(lux) * area_cm2 * 1e-4)
    }
}

/// Photovoltaic conversion efficiency of `cell` at `lux` under a given
/// light source: MPP electrical power over incident radiant power.
///
/// # Errors
///
/// Propagates solver errors from the cell model.
pub fn conversion_efficiency(
    cell: &PvCell,
    lux: Lux,
    source: LightSource,
) -> Result<Ratio, PvError> {
    let incident = LuminousEfficacy::of(source).incident_power(lux, cell.model().area_cm2());
    if incident.value() <= 0.0 {
        return Ok(Ratio::ZERO);
    }
    let mpp = cell.mpp(lux)?;
    Ok(Ratio::new(mpp.power / incident))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn efficacy_ordering_matches_spectra() {
        let day = LuminousEfficacy::of(LightSource::Daylight).lumens_per_watt();
        let fluo = LuminousEfficacy::of(LightSource::Fluorescent).lumens_per_watt();
        let inc = LuminousEfficacy::of(LightSource::Incandescent).lumens_per_watt();
        assert!(day > fluo);
        assert!(fluo > inc);
    }

    #[test]
    fn custom_efficacy_validation() {
        assert!(LuminousEfficacy::custom(80.0).is_ok());
        assert!(LuminousEfficacy::custom(0.0).is_err());
        assert!(LuminousEfficacy::custom(f64::NAN).is_err());
    }

    #[test]
    fn irradiance_conversion_round_numbers() {
        let eff = LuminousEfficacy::custom(100.0).unwrap();
        assert!((eff.irradiance_w_per_m2(Lux::new(1000.0)) - 10.0).abs() < 1e-12);
        // 10 W/m² over 25 cm² = 25 mW incident.
        let p = eff.incident_power(Lux::new(1000.0), 25.0);
        assert!((p.as_milli() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn conversion_efficiency_is_physical() {
        let cell = presets::sanyo_am1815();
        let eta = conversion_efficiency(&cell, Lux::new(1000.0), LightSource::Fluorescent).unwrap();
        // a-Si under indoor light: a few percent.
        assert!(eta.value() > 0.005 && eta.value() < 0.25, "eta = {eta}");
        assert_eq!(
            conversion_efficiency(&cell, Lux::ZERO, LightSource::Daylight).unwrap(),
            Ratio::ZERO
        );
    }

    #[test]
    fn default_source_is_daylight() {
        assert_eq!(LightSource::default(), LightSource::Daylight);
    }
}
