//! Maximum power point solving.

use eh_units::{Amps, Kelvin, Lux, Ratio, Volts, Watts};

use crate::error::PvError;
use crate::model::SingleDiodeModel;

/// A solved maximum power point of a cell at one operating condition.
///
/// ```
/// use eh_pv::presets;
/// use eh_units::Lux;
///
/// let cell = presets::sanyo_am1815();
/// let mpp = cell.mpp(Lux::new(200.0))?;
/// // The paper quotes the AM-1815 MPP as 42 µA at 3.0 V at 200 lux.
/// assert!((mpp.current.as_micro() - 42.0).abs() < 2.0);
/// assert!((mpp.voltage.value() - 3.0).abs() < 0.2);
/// # Ok::<(), eh_pv::PvError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MppPoint {
    /// Terminal voltage at the MPP.
    pub voltage: Volts,
    /// Terminal current at the MPP.
    pub current: Amps,
    /// Output power at the MPP.
    pub power: Watts,
    /// Open-circuit voltage at the same operating condition.
    pub open_circuit_voltage: Volts,
}

impl MppPoint {
    /// The fractional-open-circuit-voltage factor `k = Vmpp / Voc`
    /// (Eq. (1) of the paper).
    pub fn focv_factor(&self) -> Ratio {
        if self.open_circuit_voltage.value() <= 0.0 {
            return Ratio::ZERO;
        }
        Ratio::new(self.voltage / self.open_circuit_voltage)
    }

    /// The fill factor `FF = Pmpp / (Voc · Isc)` given the cell's
    /// short-circuit current — the standard squareness metric of an I-V
    /// curve. Heavily photo-shunted a-Si cells sit near 0.3–0.45;
    /// crystalline cells near 0.7–0.8.
    pub fn fill_factor(&self, isc: Amps) -> Ratio {
        let denom = self.open_circuit_voltage.value() * isc.value();
        if denom <= 0.0 {
            return Ratio::ZERO;
        }
        Ratio::new((self.power.value() / denom).clamp(0.0, 1.0))
    }
}

/// Solves the MPP of `model` at the given conditions by golden-section
/// search over `P(V) = V · I(V)` on `[0, Voc]`.
///
/// The single-diode power curve is unimodal on that interval, so
/// golden-section search converges to the global maximum.
///
/// # Errors
///
/// Propagates solver failures from the underlying model.
pub(crate) fn solve_mpp(
    model: &SingleDiodeModel,
    lux: Lux,
    t: Kelvin,
) -> Result<MppPoint, PvError> {
    let voc = model.open_circuit_voltage(lux, t)?;
    if voc.value() <= 0.0 {
        return Ok(MppPoint {
            voltage: Volts::ZERO,
            current: Amps::ZERO,
            power: Watts::ZERO,
            open_circuit_voltage: Volts::ZERO,
        });
    }
    let power_at = |v: f64| -> Result<f64, PvError> {
        let i = model.current_at(Volts::new(v), lux, t)?;
        Ok(v * i.value())
    };

    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let (mut a, mut b) = (0.0, voc.value());
    let mut c = b - INV_PHI * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let mut fc = power_at(c)?;
    let mut fd = power_at(d)?;
    for _ in 0..90 {
        if fc > fd {
            b = d;
            d = c;
            fd = fc;
            c = b - INV_PHI * (b - a);
            fc = power_at(c)?;
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + INV_PHI * (b - a);
            fd = power_at(d)?;
        }
    }
    let v = Volts::new(0.5 * (a + b));
    let i = model.current_at(v, lux, t)?;
    Ok(MppPoint {
        voltage: v,
        current: i,
        power: v * i,
        open_circuit_voltage: voc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn mpp_power_beats_neighbours() {
        let cell = presets::sanyo_am1815();
        let lux = Lux::new(1000.0);
        let mpp = cell.mpp(lux).unwrap();
        for dv in [-0.2, -0.05, 0.05, 0.2] {
            let v = Volts::new(mpp.voltage.value() + dv);
            let p = cell.power_at(v, lux).unwrap();
            assert!(
                p <= mpp.power,
                "P({v}) = {p} exceeds MPP power {}",
                mpp.power
            );
        }
    }

    #[test]
    fn mpp_within_open_circuit_bounds() {
        let cell = presets::sanyo_am1815();
        for lux in [200.0, 500.0, 1000.0, 5000.0, 50_000.0] {
            let mpp = cell.mpp(Lux::new(lux)).unwrap();
            assert!(mpp.voltage > Volts::ZERO);
            assert!(mpp.voltage < mpp.open_circuit_voltage);
            assert!(mpp.power.value() > 0.0);
        }
    }

    #[test]
    fn focv_factor_in_amorphous_band() {
        // The paper: k typically between 0.6 and 0.8 for non-crystalline
        // cells, and weakly dependent on intensity. Our fitted AM-1815
        // sits at the low end of that band.
        let cell = presets::sanyo_am1815();
        for lux in [200.0, 1000.0, 5000.0] {
            let k = cell.mpp(Lux::new(lux)).unwrap().focv_factor();
            assert!(
                (0.5..=0.8).contains(&k.value()),
                "k({lux} lx) = {k} outside a-Si band"
            );
        }
    }

    #[test]
    fn dark_mpp_is_zero() {
        let cell = presets::sanyo_am1815();
        let mpp = cell.mpp(Lux::ZERO).unwrap();
        assert_eq!(mpp.power, Watts::ZERO);
        assert_eq!(mpp.focv_factor(), Ratio::ZERO);
    }

    #[test]
    fn fill_factors_split_by_technology() {
        let asi = presets::sanyo_am1815();
        let csi = presets::crystalline_outdoor();
        let lux = Lux::new(1000.0);
        let ff_asi = asi
            .mpp(lux)
            .unwrap()
            .fill_factor(asi.short_circuit_current(lux).unwrap());
        let ff_csi = csi
            .mpp(lux)
            .unwrap()
            .fill_factor(csi.short_circuit_current(lux).unwrap());
        assert!((0.25..0.55).contains(&ff_asi.value()), "a-Si FF = {ff_asi}");
        assert!((0.6..0.9).contains(&ff_csi.value()), "c-Si FF = {ff_csi}");
        assert!(ff_csi.value() > ff_asi.value());
        // Degenerate input.
        assert_eq!(asi.mpp(lux).unwrap().fill_factor(Amps::ZERO), Ratio::ZERO);
    }

    #[test]
    fn mpp_power_grows_with_light() {
        let cell = presets::sanyo_am1815();
        let p200 = cell.mpp(Lux::new(200.0)).unwrap().power;
        let p1000 = cell.mpp(Lux::new(1000.0)).unwrap().power;
        let p5000 = cell.mpp(Lux::new(5000.0)).unwrap().power;
        assert!(p200 < p1000);
        assert!(p1000 < p5000);
        // Roughly linear scaling with illuminance (within 2x band).
        let ratio = p1000 / p200;
        assert!(ratio > 2.5 && ratio < 10.0, "ratio = {ratio}");
    }
}
