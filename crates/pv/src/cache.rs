//! The PV operating-point cache: a memoized interpolation table over a
//! cell's I-V surface that takes the implicit single-diode solver off
//! the simulation hot path.
//!
//! Every closed-loop step of the node and system engines resolves the
//! same smooth surface `I(V, lux)` at one `(model, temperature)` — and
//! the exact solver pays a 60–100-iteration bisection/Newton for each
//! query. [`CachedPvSurface`] replaces those solves with table lookups:
//!
//! * a 1-D table `Voc(lux)`, linear in log-lux (the Voc law *is*
//!   logarithmic, so the interpolant is nearly exact);
//! * a 1-D table `Isc(lux)`, linear in lux within each log-spaced cell
//!   (`Isc` is near-linear in illuminance);
//! * a 2-D shape table `s(lux, u) = I(u·Voc(lux), lux) / Isc(lux)` over
//!   a log-lux × normalized-voltage grid, interpolated bilinearly.
//!
//! Normalizing the voltage axis by `Voc(lux)` and the current by
//! `Isc(lux)` keeps the interpolated quantity slowly varying in both
//! directions, which is what buys the documented error bound with a
//! sub-megabyte table.
//!
//! # Error bound and domain
//!
//! Inside the cached domain — `lux ∈ [0.05, 2·10⁵]` and
//! `0 ≤ V ≤ Voc(lux)` — the cache guarantees
//! `|I_cached − I_exact| / Isc_exact(lux) <` [`CachedPvSurface::REL_CURRENT_ERROR_BOUND`]
//! and `|Voc_cached − Voc_exact| <` [`CachedPvSurface::VOC_ERROR_BOUND_VOLTS`];
//! both are validated against the exact solver by the property tests in
//! `crates/pv/tests/cache_surface.rs` and measurable at runtime via
//! [`CachedPvSurface::validate_against_exact`]. Outside the domain
//! (dark, dimmer than 0.05 lux, brighter than 200 klux, or beyond Voc)
//! every query **falls back to the exact solver**, so out-of-domain
//! answers are bit-identical to the uncached path.

use eh_units::{Amps, Kelvin, Lux, Volts, Watts};

use crate::error::PvError;
use crate::model::SingleDiodeModel;

/// Log-spaced illuminance grid lines.
const N_LUX: usize = 121;
/// Uniform normalized-voltage grid lines per illuminance.
const N_V: usize = 513;
/// Lower edge of the cached illuminance domain, in lux.
const LUX_MIN: f64 = 0.05;
/// Upper edge of the cached illuminance domain, in lux.
const LUX_MAX: f64 = 2.0e5;

#[inline]
fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

/// A connect step's fused operating point, from
/// [`CachedPvSurface::connect_point`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConnectPoint {
    /// Open-circuit voltage at the queried illuminance.
    pub voc: Volts,
    /// The regulated operating voltage, `min(target, voc)`.
    pub v_op: Volts,
    /// Terminal current at `v_op`, or `None` when `v_op` is not
    /// positive (nothing to harvest).
    pub current: Option<Amps>,
}

/// A per-lane memo of the last resolved log-lux cell, for
/// [`CachedPvSurface::connect_point_lane`] /
/// [`CachedPvSurface::eval_lanes`].
///
/// The `ln` in [`CachedPvSurface`]'s cell index is one of the three
/// hottest scalar ops in the fleet step profile (DESIGN.md §10), yet
/// consecutive steps of one node almost always land in the *same*
/// log-lux cell (cells are ~13 % wide in lux; illuminance moves slowly
/// on the simulation grid). A cursor remembers the cell's `[lo, hi)`
/// edge illuminances; while the query stays inside, the fractional
/// position is recovered from `ln(l/lo)` via a short, cheap `atanh`
/// series instead of a full `ln`, and only a cell crossing pays the
/// real thing. Divergence vs the scalar path is bounded by the series
/// truncation — |Δtx| < 3e-11, orders of magnitude inside the cache's
/// own documented 1e-3 interpolation bound and the fleet's rel-1e-9
/// net-energy contract.
///
/// One cursor per (lane, surface): pointing a cursor at a different
/// [`CachedPvSurface`] without resetting it reads the wrong cell.
#[derive(Debug, Clone, Copy, Default)]
pub struct LuxCursor {
    /// `(j, lux_grid[j], lux_grid[j + 1], 1/(hi − lo))` of the last
    /// resolved cell — the inverse width feeds the linear-in-lux `Isc`
    /// interpolation without a per-step division.
    cell: Option<(usize, f64, f64, f64)>,
}

impl LuxCursor {
    /// A cursor with no remembered cell (first query pays the full
    /// `ln`).
    pub fn new() -> Self {
        Self::default()
    }
}

/// `exp(x) − 1` with the argument clamped to avoid overflow (mirrors the
/// exact solver's clamping).
#[inline]
fn exp_m1_clamped(x: f64) -> f64 {
    x.min(500.0).exp_m1()
}

/// Exact terminal current by safeguarded Newton on the junction voltage
/// `W = V + I·Rs`: the residual
/// `h(W) = Iph − I0·expm1(W/b) − W/Rsh − (W − V)/Rs`
/// is strictly decreasing and bracketed on `[V, V + Iph·Rs]` for
/// `0 ≤ V ≤ Voc`, so this converges in a handful of steps — a fast exact
/// evaluator for table construction (the runtime fallback still uses the
/// reference bisection in [`SingleDiodeModel::current_at`]; both solve
/// the same equation to double precision).
fn solve_current(iph: f64, i0: f64, b: f64, rs: f64, rsh: f64, v: f64) -> f64 {
    if rs <= 0.0 {
        return iph - i0 * exp_m1_clamped(v / b) - v / rsh;
    }
    let h = |w: f64| iph - i0 * exp_m1_clamped(w / b) - w / rsh - (w - v) / rs;
    let mut lo = v;
    let mut hi = v + iph * rs + 1e-12;
    let mut w = v;
    for _ in 0..80 {
        let hv = h(w);
        if hv > 0.0 {
            lo = w;
        } else {
            hi = w;
        }
        let dh = -(i0 / b) * (w / b).min(500.0).exp() - 1.0 / rsh - 1.0 / rs;
        let mut next = w - hv / dh;
        if !(next > lo && next < hi) {
            next = 0.5 * (lo + hi);
        }
        if (next - w).abs() <= 1e-15 * (1.0 + w.abs()) {
            w = next;
            break;
        }
        w = next;
    }
    (w - v) / rs
}

/// A memoized bilinear interpolation table over one cell's I-V surface,
/// built per `(model, temperature)` and exposing the same
/// `current_at` / `open_circuit_voltage` / `short_circuit_current` /
/// `power_at` surface as the exact model (see the module docs for the
/// error bound and the exact-fallback domain).
///
/// ```
/// use eh_pv::{presets, CachedPvSurface};
/// use eh_units::{Lux, Volts};
///
/// let cell = presets::sanyo_am1815();
/// let surface = CachedPvSurface::build(cell.model(), cell.temperature())?;
/// let lux = Lux::new(1000.0);
/// let exact = cell.current_at(Volts::new(3.0), lux)?;
/// let cached = surface.current_at(Volts::new(3.0), lux)?;
/// let isc = cell.short_circuit_current(lux)?;
/// assert!((cached - exact).value().abs() / isc.value()
///     < CachedPvSurface::REL_CURRENT_ERROR_BOUND);
/// # Ok::<(), eh_pv::PvError>(())
/// ```
#[derive(Clone)]
pub struct CachedPvSurface {
    model: SingleDiodeModel,
    temperature: Kelvin,
    ln_min: f64,
    ln_step: f64,
    /// `1/ln_step`, so the cursor fast path multiplies instead of
    /// divides when recovering the fractional cell position.
    inv_ln_step: f64,
    lux_grid: Vec<f64>,
    voc: Vec<f64>,
    isc: Vec<f64>,
    /// Row-major `N_LUX × N_V`: `I(u_k·Voc_j, lux_j) / Isc_j`.
    shape: Vec<f64>,
}

impl std::fmt::Debug for CachedPvSurface {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedPvSurface")
            .field("model", &self.model.name())
            .field("temperature", &self.temperature)
            .field("lux_grid", &N_LUX)
            .field("voltage_grid", &N_V)
            .finish()
    }
}

impl CachedPvSurface {
    /// Documented bound on `|I_cached − I_exact| / Isc_exact(lux)` inside
    /// the cached domain (validated by the cache property tests).
    pub const REL_CURRENT_ERROR_BOUND: f64 = 1e-3;

    /// Documented bound on `|Voc_cached − Voc_exact|` in volts inside the
    /// cached illuminance domain.
    pub const VOC_ERROR_BOUND_VOLTS: f64 = 1e-3;

    /// Builds the table for one `(model, temperature)` pair.
    ///
    /// Construction performs `N_LUX` exact Voc solves plus
    /// `N_LUX × N_V` fast Newton current solves — a few milliseconds,
    /// amortized over the millions of lookups of a closed-loop run.
    ///
    /// # Errors
    ///
    /// Propagates exact-solver failures, and reports
    /// [`PvError::SolveFailed`] if a grid node produces a non-finite
    /// table entry.
    pub fn build(model: &SingleDiodeModel, temperature: Kelvin) -> Result<Self, PvError> {
        let ln_min = LUX_MIN.ln();
        let ln_step = (LUX_MAX / LUX_MIN).ln() / (N_LUX - 1) as f64;
        let i0 = model.saturation_current(temperature).value();
        let b = model.thermal_slope(temperature).value();
        let rs = model.series_resistance().value();

        let mut lux_grid = Vec::with_capacity(N_LUX);
        let mut voc = Vec::with_capacity(N_LUX);
        let mut isc = Vec::with_capacity(N_LUX);
        let mut shape = Vec::with_capacity(N_LUX * N_V);
        for j in 0..N_LUX {
            let lux = (ln_min + ln_step * j as f64).exp();
            let l = Lux::new(lux);
            let voc_j = model.open_circuit_voltage(l, temperature)?.value();
            let iph = model.photocurrent(l, temperature).value();
            let rsh = model.shunt_resistance(l).value();
            let isc_j = solve_current(iph, i0, b, rs, rsh, 0.0);
            if !(voc_j.is_finite() && voc_j > 0.0 && isc_j.is_finite() && isc_j > 0.0) {
                return Err(PvError::SolveFailed {
                    what: "cache grid node",
                });
            }
            for k in 0..N_V {
                let u = k as f64 / (N_V - 1) as f64;
                let i = solve_current(iph, i0, b, rs, rsh, u * voc_j);
                if !i.is_finite() {
                    return Err(PvError::SolveFailed {
                        what: "cache grid node",
                    });
                }
                shape.push(i / isc_j);
            }
            lux_grid.push(lux);
            voc.push(voc_j);
            isc.push(isc_j);
        }
        Ok(Self {
            model: model.clone(),
            temperature,
            ln_min,
            ln_step,
            inv_ln_step: 1.0 / ln_step,
            lux_grid,
            voc,
            isc,
            shape,
        })
    }

    /// The underlying electrical model.
    pub fn model(&self) -> &SingleDiodeModel {
        &self.model
    }

    /// The operating temperature the table was built for.
    pub fn temperature(&self) -> Kelvin {
        self.temperature
    }

    /// The illuminance domain `[min, max]` covered by the table; queries
    /// outside it fall back to the exact solver.
    pub fn lux_domain() -> (Lux, Lux) {
        (Lux::new(LUX_MIN), Lux::new(LUX_MAX))
    }

    /// `(illuminance grid lines, voltage grid lines)` of the table.
    pub fn grid_size() -> (usize, usize) {
        (N_LUX, N_V)
    }

    /// Whether an illuminance lies inside the cached domain.
    fn in_domain(l: f64) -> bool {
        (LUX_MIN..=LUX_MAX).contains(&l)
    }

    /// Cell index and fractional position along the log-lux axis.
    #[inline]
    fn lux_cell(&self, l: f64) -> (usize, f64) {
        let fx = ((l.ln() - self.ln_min) / self.ln_step).clamp(0.0, (N_LUX - 1) as f64);
        let j = (fx as usize).min(N_LUX - 2);
        (j, fx - j as f64)
    }

    #[inline]
    fn voc_interp(&self, j: usize, tx: f64) -> f64 {
        lerp(self.voc[j], self.voc[j + 1], tx)
    }

    /// `Isc` interpolated linearly **in lux** (not log-lux) within the
    /// cell, which is exact for the dominant `Iph ∝ lux` term.
    #[inline]
    fn isc_interp(&self, j: usize, l: f64) -> f64 {
        let w = (l - self.lux_grid[j]) / (self.lux_grid[j + 1] - self.lux_grid[j]);
        lerp(self.isc[j], self.isc[j + 1], w)
    }

    fn validate_inputs(v: Volts, lux: Lux) -> Result<(), PvError> {
        if !v.is_finite() || v.value() < 0.0 {
            return Err(PvError::OutOfRange {
                what: "terminal voltage",
                value: v.value(),
            });
        }
        Self::validate_lux(lux)
    }

    fn validate_lux(lux: Lux) -> Result<(), PvError> {
        if !lux.is_finite() || lux.value() < 0.0 {
            return Err(PvError::OutOfRange {
                what: "illuminance",
                value: lux.value(),
            });
        }
        Ok(())
    }

    /// Terminal current at terminal voltage `v` — the cached counterpart
    /// of [`SingleDiodeModel::current_at`], accurate to the documented
    /// bound inside the domain and exact (solver fallback) outside it.
    ///
    /// # Errors
    ///
    /// Rejects negative `v` and negative/non-finite `lux` with the same
    /// [`PvError::OutOfRange`] as the exact solver, and propagates
    /// fallback solver errors.
    pub fn current_at(&self, v: Volts, lux: Lux) -> Result<Amps, PvError> {
        Self::validate_inputs(v, lux)?;
        let l = lux.value();
        if !Self::in_domain(l) {
            return self.model.current_at(v, lux, self.temperature);
        }
        let (j, tx) = self.lux_cell(l);
        let voc_q = self.voc_interp(j, tx);
        if v.value() > voc_q {
            // Beyond open circuit the current turns over exponentially —
            // off the harvesting path, so solve it exactly.
            return self.model.current_at(v, lux, self.temperature);
        }
        Ok(Amps::new(self.shape_current(v.value(), j, tx, voc_q, l)))
    }

    /// The bilinear shape-table read behind every in-domain current
    /// query, shared so the scalar, batched, and connect-point entry
    /// points are bit-identical by construction. Requires `0 ≤ vv ≤
    /// voc_q` and an in-domain `l` with `(j, tx)` from
    /// [`CachedPvSurface::lux_cell`].
    #[inline]
    fn shape_current(&self, vv: f64, j: usize, tx: f64, voc_q: f64, l: f64) -> f64 {
        self.shape_factor(vv, j, tx, voc_q) * self.isc_interp(j, l)
    }

    /// The normalised shape factor `I(v, lux)/Isc(lux)` of
    /// [`CachedPvSurface::shape_current`], split out so the cursored
    /// lane path can pair it with a division-free `Isc` interpolation.
    #[inline]
    fn shape_factor(&self, vv: f64, j: usize, tx: f64, voc_q: f64) -> f64 {
        let u = (vv / voc_q).clamp(0.0, 1.0);
        let fu = u * (N_V - 1) as f64;
        let k = (fu as usize).min(N_V - 2);
        let tu = fu - k as f64;
        let row0 = &self.shape[j * N_V..(j + 1) * N_V];
        let row1 = &self.shape[(j + 1) * N_V..(j + 2) * N_V];
        let s0 = lerp(row0[k], row0[k + 1], tu);
        let s1 = lerp(row1[k], row1[k + 1], tu);
        lerp(s0, s1, tx)
    }

    /// One connect step's operating point — `Voc(lux)`, the regulated
    /// voltage `min(target, Voc)`, and the current drawn there — sharing
    /// a single log-lux cell lookup between the Voc and current reads.
    ///
    /// Calling [`CachedPvSurface::open_circuit_voltage`] followed by
    /// [`CachedPvSurface::current_at`] resolves `lux_cell` (one `ln`)
    /// twice per step; this fused query resolves it once and returns
    /// **bit-identical** values, in and out of the cached domain (the
    /// fallback path calls the same exact-solver methods in the same
    /// order). `current` is `None` when the regulated voltage is not
    /// positive — a dark module or a zero hold-cap target — exactly the
    /// case where the engine skips the harvest.
    ///
    /// `target` must be finite; the engine only issues connect commands
    /// with positive finite targets.
    ///
    /// # Errors
    ///
    /// Rejects negative/non-finite illuminance; propagates fallback
    /// solver errors outside the domain.
    #[inline]
    pub fn connect_point(&self, target: Volts, lux: Lux) -> Result<ConnectPoint, PvError> {
        Self::validate_lux(lux)?;
        let l = lux.value();
        if !Self::in_domain(l) {
            let voc = self.model.open_circuit_voltage(lux, self.temperature)?;
            let v_op = target.min(voc);
            let current = if v_op.value() > 0.0 {
                Some(self.model.current_at(v_op, lux, self.temperature)?)
            } else {
                None
            };
            return Ok(ConnectPoint { voc, v_op, current });
        }
        let (j, tx) = self.lux_cell(l);
        let voc_q = self.voc_interp(j, tx);
        let voc = Volts::new(voc_q);
        let v_op = target.min(voc);
        // `v_op ≤ voc_q` by construction, so the beyond-Voc exact
        // fallback in `current_at` can never trigger here.
        let current = if v_op.value() > 0.0 {
            Some(Amps::new(self.shape_current(v_op.value(), j, tx, voc_q, l)))
        } else {
            None
        };
        Ok(ConnectPoint { voc, v_op, current })
    }

    /// Cell index and fractional position along the log-lux axis,
    /// through a [`LuxCursor`]: a cursor hit recovers `tx` from
    /// `ln(l / lo)` with a 4-term `atanh` series (the cell is at most
    /// `ln_step ≈ 0.127` wide, so the series argument is ≤ 0.064 and
    /// the truncation error < 3e-11 in `tx`); a miss pays the full
    /// [`CachedPvSurface::lux_cell`] and re-arms the cursor. Requires an
    /// in-domain `l`.
    ///
    /// Returns `(j, tx, lo, 1/(hi − lo))` so callers can reuse the
    /// cell's lower edge and inverse width for division-free `Isc`
    /// interpolation.
    #[inline]
    fn lux_cell_cursor(&self, cursor: &mut LuxCursor, l: f64) -> (usize, f64, f64, f64) {
        if let Some((j, lo, hi, inv_w)) = cursor.cell {
            if l >= lo && l < hi {
                // `(l/lo − 1)/(l/lo + 1) = (l − lo)/(l + lo)`: one
                // division instead of two for the series argument.
                let z = (l - lo) / (l + lo);
                let z2 = z * z;
                // 2·atanh(z) = ln(l/lo), truncated after z⁷.
                let ln_x = 2.0 * z * (1.0 + z2 * (1.0 / 3.0 + z2 * (0.2 + z2 / 7.0)));
                return (j, (ln_x * self.inv_ln_step).clamp(0.0, 1.0), lo, inv_w);
            }
        }
        let (j, tx) = self.lux_cell(l);
        let (lo, hi) = (self.lux_grid[j], self.lux_grid[j + 1]);
        let inv_w = 1.0 / (hi - lo);
        cursor.cell = Some((j, lo, hi, inv_w));
        (j, tx, lo, inv_w)
    }

    /// [`CachedPvSurface::open_circuit_voltage`] through a per-lane
    /// [`LuxCursor`]. Out-of-domain and invalid illuminances invalidate
    /// the cursor and delegate to the scalar path, so those answers stay
    /// bit-identical to the uncached fallback; in-domain answers diverge
    /// from the scalar table read only by the cursor's < 3e-11 `tx`
    /// bound.
    ///
    /// # Errors
    ///
    /// Rejects negative/non-finite illuminance; propagates fallback
    /// solver errors outside the domain.
    #[inline]
    pub fn open_circuit_voltage_lane(
        &self,
        cursor: &mut LuxCursor,
        lux: Lux,
    ) -> Result<Volts, PvError> {
        let l = lux.value();
        if !(l.is_finite() && l >= 0.0 && Self::in_domain(l)) {
            cursor.cell = None;
            return self.open_circuit_voltage(lux);
        }
        let (j, tx, _, _) = self.lux_cell_cursor(cursor, l);
        Ok(Volts::new(self.voc_interp(j, tx)))
    }

    /// [`CachedPvSurface::connect_point`] through a per-lane
    /// [`LuxCursor`] — the vectorized fleet engine's per-step surface
    /// read. Same fused semantics as the scalar query; the cursor only
    /// replaces the `ln`-derived cell index while the illuminance stays
    /// within the current cell (divergence < 3e-11 in the fractional
    /// cell position), and any out-of-domain or invalid query resets the
    /// cursor and delegates to the scalar path unchanged.
    ///
    /// # Errors
    ///
    /// Rejects negative/non-finite illuminance; propagates fallback
    /// solver errors outside the domain.
    #[inline]
    pub fn connect_point_lane(
        &self,
        cursor: &mut LuxCursor,
        target: Volts,
        lux: Lux,
    ) -> Result<ConnectPoint, PvError> {
        let l = lux.value();
        if !(l.is_finite() && l >= 0.0 && Self::in_domain(l)) {
            cursor.cell = None;
            return self.connect_point(target, lux);
        }
        let (j, tx, lo, inv_w) = self.lux_cell_cursor(cursor, l);
        let voc_q = self.voc_interp(j, tx);
        let voc = Volts::new(voc_q);
        let v_op = target.min(voc);
        let current = if v_op.value() > 0.0 {
            // Same interpolation as `isc_interp` with the cell width's
            // reciprocal taken from the cursor: one fewer division.
            let isc = lerp(self.isc[j], self.isc[j + 1], (l - lo) * inv_w);
            Some(Amps::new(
                self.shape_factor(v_op.value(), j, tx, voc_q) * isc,
            ))
        } else {
            None
        };
        Ok(ConnectPoint { voc, v_op, current })
    }

    /// Evaluates one connect point per active lane through per-lane
    /// cursors: `out[i] = connect_point_lane(cursors[i], targets[i],
    /// luxes[i])` for every `i` with `active[i]`; inactive lanes are
    /// left untouched. All slices must share one length (the engine's
    /// lane width).
    ///
    /// # Errors
    ///
    /// Rejects mismatched slice lengths as [`PvError::InvalidParameter`];
    /// lane errors abort at the first failing lane (lowest index),
    /// matching a scalar loop's error order.
    pub fn eval_lanes(
        &self,
        targets: &[Volts],
        luxes: &[Lux],
        active: &[bool],
        cursors: &mut [LuxCursor],
        out: &mut [ConnectPoint],
    ) -> Result<(), PvError> {
        let n = targets.len();
        if luxes.len() != n || active.len() != n || cursors.len() != n || out.len() != n {
            return Err(PvError::InvalidParameter {
                name: "eval_lanes slice lengths (must all equal the lane width)",
                value: n as f64,
            });
        }
        for i in 0..n {
            if active[i] {
                out[i] = self.connect_point_lane(&mut cursors[i], targets[i], luxes[i])?;
            }
        }
        Ok(())
    }

    /// Evaluates terminal currents for a batch of interleaved
    /// `(voltage, lux)` pairs: `v_lux = [v0, l0, v1, l1, …]`,
    /// `out[i] = I(vᵢ, lᵢ)` in amps.
    ///
    /// Each element goes through exactly the scalar
    /// [`CachedPvSurface::current_at`] path — same validation, same
    /// exact-solver fallback — so the outputs are bit-identical to a
    /// scalar loop; the slice orientation is what lets batch engines
    /// evaluate a whole shard (e.g. every node's cold-start feasibility
    /// current) without per-call dispatch.
    ///
    /// # Errors
    ///
    /// Rejects an odd `v_lux` length or a mismatched `out` length as
    /// [`PvError::InvalidParameter`]; element errors abort at the first
    /// failing pair (lowest index), matching a scalar loop's error
    /// order.
    pub fn eval_many(&self, v_lux: &[f64], out: &mut [f64]) -> Result<(), PvError> {
        if !v_lux.len().is_multiple_of(2) {
            return Err(PvError::InvalidParameter {
                name: "v_lux length (must be even: interleaved v, lux pairs)",
                value: v_lux.len() as f64,
            });
        }
        if out.len() * 2 != v_lux.len() {
            return Err(PvError::InvalidParameter {
                name: "out length (must be v_lux length / 2)",
                value: out.len() as f64,
            });
        }
        for (slot, pair) in out.iter_mut().zip(v_lux.chunks_exact(2)) {
            *slot = self
                .current_at(Volts::new(pair[0]), Lux::new(pair[1]))?
                .value();
        }
        Ok(())
    }

    /// Output power at terminal voltage `v`.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`CachedPvSurface::current_at`].
    pub fn power_at(&self, v: Volts, lux: Lux) -> Result<Watts, PvError> {
        Ok(v * self.current_at(v, lux)?)
    }

    /// Open-circuit voltage from the 1-D `Voc(lux)` table (linear in
    /// log-lux; the exact law is logarithmic, so the interpolant is
    /// within [`CachedPvSurface::VOC_ERROR_BOUND_VOLTS`]).
    ///
    /// # Errors
    ///
    /// Rejects negative/non-finite illuminance; propagates fallback
    /// solver errors outside the domain.
    #[inline]
    pub fn open_circuit_voltage(&self, lux: Lux) -> Result<Volts, PvError> {
        Self::validate_lux(lux)?;
        let l = lux.value();
        if !Self::in_domain(l) {
            return self.model.open_circuit_voltage(lux, self.temperature);
        }
        let (j, tx) = self.lux_cell(l);
        Ok(Volts::new(self.voc_interp(j, tx)))
    }

    /// Short-circuit current from the 1-D `Isc(lux)` table.
    ///
    /// # Errors
    ///
    /// Rejects negative/non-finite illuminance; propagates fallback
    /// solver errors outside the domain.
    pub fn short_circuit_current(&self, lux: Lux) -> Result<Amps, PvError> {
        Self::validate_lux(lux)?;
        let l = lux.value();
        if !Self::in_domain(l) {
            return self.model.short_circuit_current(lux, self.temperature);
        }
        let (j, _) = self.lux_cell(l);
        Ok(Amps::new(self.isc_interp(j, l)))
    }

    /// Probes the table against the exact solver on a grid of
    /// `lux_probes × v_probes` off-node points (log-spaced illuminances,
    /// uniform normalized voltages) and returns the worst observed
    /// `|I_cached − I_exact| / Isc_exact` — the measured counterpart of
    /// [`CachedPvSurface::REL_CURRENT_ERROR_BOUND`].
    ///
    /// # Errors
    ///
    /// Rejects zero probe counts as [`PvError::InvalidParameter`];
    /// propagates exact-solver errors.
    pub fn validate_against_exact(
        &self,
        lux_probes: usize,
        v_probes: usize,
    ) -> Result<f64, PvError> {
        if lux_probes == 0 || v_probes == 0 {
            return Err(PvError::InvalidParameter {
                name: "probes",
                value: 0.0,
            });
        }
        let mut worst = 0.0_f64;
        for a in 0..lux_probes {
            // Offset by half a probe step so probes land between nodes.
            let frac = (a as f64 + 0.5) / lux_probes as f64;
            let lux = Lux::new((self.ln_min + (LUX_MAX / LUX_MIN).ln() * frac).exp());
            let isc_exact = self
                .model
                .short_circuit_current(lux, self.temperature)?
                .value();
            if isc_exact <= 0.0 {
                continue;
            }
            let voc_q = self.open_circuit_voltage(lux)?.value();
            for bi in 0..v_probes {
                let u = (bi as f64 + 0.5) / v_probes as f64;
                let v = Volts::new(u * voc_q);
                let cached = self.current_at(v, lux)?.value();
                let exact = self.model.current_at(v, lux, self.temperature)?.value();
                worst = worst.max((cached - exact).abs() / isc_exact);
            }
        }
        Ok(worst)
    }
}
