//! Spectral mismatch between cell technologies and light sources.
//!
//! A lux meter weighs radiation by the human photopic curve; a PV cell
//! weighs it by its own spectral response. The two disagree, and they
//! disagree *differently per source*: amorphous silicon responds in the
//! visible band (well matched to fluorescent light and the eye), while
//! crystalline silicon draws most of its current from near-infrared that
//! the lux meter never sees. This is the quantitative core of the
//! paper's mixed-lighting scenario — a cell calibrated in lux under one
//! source produces a different photocurrent per lux under another, which
//! is precisely what breaks lux-proxy trackers (AmbiMax-style
//! photodetectors) and fixed-voltage tuning, and what the paper's
//! direct-Voc sampling is immune to.
//!
//! Factors are normalised to fluorescent light (the indoor calibration
//! standard the paper's Table I lamps approximate): `factor = 1.0` means
//! "same photocurrent per lux as under fluorescent light".

use eh_units::{Lux, Ratio};

use crate::irradiance::LightSource;

/// PV cell technology, as far as spectral response is concerned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum CellTechnology {
    /// Amorphous silicon: visible-band response, well matched to the eye
    /// (the paper's cells).
    #[default]
    AmorphousSilicon,
    /// Crystalline silicon: response extends deep into the near-infrared.
    CrystallineSilicon,
}

/// Photocurrent-per-lux factor of a technology under a source, relative
/// to fluorescent light.
///
/// The values are representative of published spectral-response data:
/// a-Si sees slightly more usable photons per lux from broadband
/// daylight, slightly more from phosphor LEDs, and substantially fewer
/// from incandescent light (whose lux is produced by the thin visible
/// tail of a deep-red spectrum a-Si only partially covers). c-Si gains
/// enormously wherever near-infrared is present — daylight and
/// especially incandescent light.
///
/// ```
/// use eh_pv::spectrum::{spectral_factor, CellTechnology};
/// use eh_pv::LightSource;
///
/// let asi_inc = spectral_factor(CellTechnology::AmorphousSilicon, LightSource::Incandescent);
/// let csi_inc = spectral_factor(CellTechnology::CrystallineSilicon, LightSource::Incandescent);
/// assert!(asi_inc.value() < 1.0);
/// assert!(csi_inc.value() > 1.5);
/// ```
pub fn spectral_factor(tech: CellTechnology, source: LightSource) -> Ratio {
    let f = match (tech, source) {
        (CellTechnology::AmorphousSilicon, LightSource::Fluorescent) => 1.0,
        (CellTechnology::AmorphousSilicon, LightSource::Daylight) => 1.1,
        (CellTechnology::AmorphousSilicon, LightSource::Led) => 1.05,
        (CellTechnology::AmorphousSilicon, LightSource::Incandescent) => 0.65,
        (CellTechnology::CrystallineSilicon, LightSource::Fluorescent) => 1.0,
        (CellTechnology::CrystallineSilicon, LightSource::Daylight) => 1.6,
        (CellTechnology::CrystallineSilicon, LightSource::Led) => 1.1,
        (CellTechnology::CrystallineSilicon, LightSource::Incandescent) => 2.6,
    };
    Ratio::new(f)
}

/// The illuminance that produces the same photocurrent under the
/// calibration (fluorescent) source — feed this to a lux-calibrated
/// [`crate::PvCell`] to evaluate it under a different source.
///
/// ```
/// use eh_pv::spectrum::{effective_illuminance, CellTechnology};
/// use eh_pv::LightSource;
/// use eh_units::Lux;
///
/// // 500 lux of incandescent light drives an a-Si cell like ~325 lux
/// // of the fluorescent light it was calibrated under.
/// let eff = effective_illuminance(
///     Lux::new(500.0),
///     CellTechnology::AmorphousSilicon,
///     LightSource::Incandescent,
/// );
/// assert!((eff.value() - 325.0).abs() < 1.0);
/// ```
pub fn effective_illuminance(lux: Lux, tech: CellTechnology, source: LightSource) -> Lux {
    lux * spectral_factor(tech, source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn fluorescent_is_the_reference() {
        for tech in [
            CellTechnology::AmorphousSilicon,
            CellTechnology::CrystallineSilicon,
        ] {
            assert_eq!(
                spectral_factor(tech, LightSource::Fluorescent),
                Ratio::new(1.0)
            );
        }
    }

    #[test]
    fn asi_dislikes_incandescent_csi_loves_it() {
        let asi = spectral_factor(CellTechnology::AmorphousSilicon, LightSource::Incandescent);
        let csi = spectral_factor(
            CellTechnology::CrystallineSilicon,
            LightSource::Incandescent,
        );
        assert!(asi.value() < 0.8);
        assert!(csi.value() > 2.0);
    }

    #[test]
    fn default_technology_is_amorphous() {
        assert_eq!(CellTechnology::default(), CellTechnology::AmorphousSilicon);
    }

    #[test]
    fn effective_illuminance_scales() {
        let e = effective_illuminance(
            Lux::new(1000.0),
            CellTechnology::AmorphousSilicon,
            LightSource::Daylight,
        );
        assert!((e.value() - 1100.0).abs() < 1e-9);
    }

    #[test]
    fn source_change_shifts_the_operating_point() {
        // The same metered 500 lux from different sources puts the
        // AM-1815's MPP at visibly different voltages — the reason a
        // lux-proxy tracker mis-aims when the lighting type changes.
        let cell = presets::sanyo_am1815();
        let metered = Lux::new(500.0);
        let mpp_fluo = cell
            .mpp(effective_illuminance(
                metered,
                CellTechnology::AmorphousSilicon,
                LightSource::Fluorescent,
            ))
            .unwrap();
        let mpp_inc = cell
            .mpp(effective_illuminance(
                metered,
                CellTechnology::AmorphousSilicon,
                LightSource::Incandescent,
            ))
            .unwrap();
        assert!(
            mpp_inc.power < mpp_fluo.power,
            "incandescent lux is worth less to a-Si"
        );
        assert!(mpp_inc.open_circuit_voltage < mpp_fluo.open_circuit_voltage);
    }
}
