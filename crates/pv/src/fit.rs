//! Calibration of a [`SingleDiodeModel`] from bench measurements.
//!
//! The presets in this crate were produced by exactly this procedure:
//! minimise the mismatch between the model and a set of measured
//! `(lux, Voc)` points plus one measured MPP, over the five free
//! parameters (ideality, saturation current, photocurrent density,
//! photo-shunt and series resistance), using Nelder-Mead. The module
//! exposes both the generic optimiser ([`nelder_mead`]) and the
//! cell-fitting front end ([`fit_cell`]), so a user with their own
//! bench data can build their own preset.

use eh_units::{Kelvin, Lux, Volts};

use crate::cell::PvCell;
use crate::error::PvError;
use crate::model::SingleDiodeModel;

/// One measured open-circuit-voltage point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VocPoint {
    /// Illuminance of the measurement.
    pub illuminance: Lux,
    /// Measured open-circuit voltage.
    pub open_circuit_voltage: Volts,
}

/// One measured maximum-power point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MppPointMeasurement {
    /// Illuminance of the measurement.
    pub illuminance: Lux,
    /// Measured MPP voltage.
    pub voltage: Volts,
    /// Measured MPP current in amps.
    pub current_amps: f64,
}

/// Options for [`fit_cell`].
#[derive(Debug, Clone)]
pub struct FitOptions {
    /// Number of series junctions (fixed during the fit; count the cell
    /// segments on the module).
    pub junctions: u32,
    /// Cell area in cm² (informational, copied to the result).
    pub area_cm2: f64,
    /// Maximum Nelder-Mead iterations.
    pub max_iterations: usize,
    /// Weight of the Voc residuals relative to the MPP residuals.
    pub voc_weight: f64,
}

impl Default for FitOptions {
    fn default() -> Self {
        Self {
            junctions: 8,
            area_cm2: 25.0,
            max_iterations: 400,
            voc_weight: 6.0,
        }
    }
}

/// Result of a cell fit.
#[derive(Debug, Clone)]
pub struct FitResult {
    /// The fitted model.
    pub model: SingleDiodeModel,
    /// Final cost (weighted sum of squared relative residuals).
    pub cost: f64,
    /// Worst relative Voc error across the supplied points.
    pub worst_voc_error: f64,
}

/// Minimises `f` over `x` with the Nelder-Mead simplex method.
///
/// A compact, dependency-free implementation adequate for the ≤6
/// dimensional, smooth problems in this crate. Returns the best point
/// and its cost.
///
/// # Examples
///
/// ```
/// use eh_pv::fit::nelder_mead;
/// // Minimise a shifted paraboloid.
/// let (x, cost) = nelder_mead(
///     |p| (p[0] - 3.0).powi(2) + (p[1] + 1.0).powi(2),
///     &[0.0, 0.0],
///     &[1.0, 1.0],
///     300,
/// );
/// assert!((x[0] - 3.0).abs() < 1e-3);
/// assert!((x[1] + 1.0).abs() < 1e-3);
/// assert!(cost < 1e-6);
/// ```
pub fn nelder_mead(
    mut f: impl FnMut(&[f64]) -> f64,
    x0: &[f64],
    steps: &[f64],
    max_iterations: usize,
) -> (Vec<f64>, f64) {
    let n = x0.len();
    assert_eq!(steps.len(), n, "steps must match dimension");
    let mut simplex: Vec<Vec<f64>> = vec![x0.to_vec()];
    for i in 0..n {
        let mut p = x0.to_vec();
        p[i] += steps[i];
        simplex.push(p);
    }
    let mut costs: Vec<f64> = simplex.iter().map(|p| f(p)).collect();

    for _ in 0..max_iterations {
        // Order ascending by cost.
        let mut order: Vec<usize> = (0..=n).collect();
        order.sort_by(|&a, &b| costs[a].total_cmp(&costs[b]));
        let reordered: Vec<Vec<f64>> = order.iter().map(|&i| simplex[i].clone()).collect();
        let reordered_costs: Vec<f64> = order.iter().map(|&i| costs[i]).collect();
        simplex = reordered;
        costs = reordered_costs;

        if (costs[n] - costs[0]).abs() <= 1e-14 * (1.0 + costs[0].abs()) {
            break;
        }

        // Centroid of all but the worst.
        let centroid: Vec<f64> = (0..n)
            .map(|j| simplex[..n].iter().map(|p| p[j]).sum::<f64>() / n as f64)
            .collect();
        let worst = simplex[n].clone();
        let reflect: Vec<f64> = (0..n)
            .map(|j| centroid[j] + (centroid[j] - worst[j]))
            .collect();
        let f_reflect = f(&reflect);

        if f_reflect < costs[0] {
            // Try expansion.
            let expand: Vec<f64> = (0..n)
                .map(|j| centroid[j] + 2.0 * (centroid[j] - worst[j]))
                .collect();
            let f_expand = f(&expand);
            if f_expand < f_reflect {
                simplex[n] = expand;
                costs[n] = f_expand;
            } else {
                simplex[n] = reflect;
                costs[n] = f_reflect;
            }
        } else if f_reflect < costs[n - 1] {
            simplex[n] = reflect;
            costs[n] = f_reflect;
        } else {
            // Contraction.
            let contract: Vec<f64> = (0..n)
                .map(|j| centroid[j] + 0.5 * (worst[j] - centroid[j]))
                .collect();
            let f_contract = f(&contract);
            if f_contract < costs[n] {
                simplex[n] = contract;
                costs[n] = f_contract;
            } else {
                // Shrink toward the best.
                for i in 1..=n {
                    let best = simplex[0].clone();
                    for (x, b) in simplex[i].iter_mut().zip(&best) {
                        *x = b + 0.5 * (*x - b);
                    }
                    costs[i] = f(&simplex[i]);
                }
            }
        }
    }

    let mut best = 0;
    for i in 1..=n {
        if costs[i] < costs[best] {
            best = i;
        }
    }
    (simplex[best].clone(), costs[best])
}

/// Builds a candidate model from a parameter vector
/// `[ideality, log10(I0), photocurrent_per_lux, rsh_ref, rs]`.
fn candidate(params: &[f64], opts: &FitOptions) -> Option<SingleDiodeModel> {
    let [n, log_i0, c, rsh, rs] = params else {
        return None;
    };
    SingleDiodeModel::builder("fit candidate")
        .junctions(opts.junctions)
        .ideality(*n)
        .saturation_current_amps(10f64.powf(*log_i0))
        .photocurrent_per_lux_amps(*c)
        .photo_shunt_ohms(*rsh, 200.0)
        .series_resistance_ohms(*rs)
        .area_cm2(opts.area_cm2)
        .build()
        .ok()
}

/// Fits a single-diode model to measured Voc points and one MPP.
///
/// # Errors
///
/// Returns [`PvError::InvalidParameter`] if fewer than three Voc points
/// are supplied (the problem is under-determined below that), or if the
/// optimiser cannot produce a valid model.
pub fn fit_cell(
    voc_points: &[VocPoint],
    mpp: MppPointMeasurement,
    opts: &FitOptions,
) -> Result<FitResult, PvError> {
    if voc_points.len() < 3 {
        return Err(PvError::InvalidParameter {
            name: "voc_points",
            value: voc_points.len() as f64,
        });
    }

    let cost_fn = |params: &[f64]| -> f64 {
        let Some(model) = candidate(params, opts) else {
            return 1e9;
        };
        let cell = PvCell::new(model);
        let mut cost = 0.0;
        for p in voc_points {
            match cell.open_circuit_voltage(p.illuminance) {
                Ok(voc) => {
                    let rel = (voc.value() - p.open_circuit_voltage.value())
                        / p.open_circuit_voltage.value();
                    cost += opts.voc_weight * rel * rel;
                }
                Err(_) => return 1e9,
            }
        }
        match cell.mpp(mpp.illuminance) {
            Ok(m) => {
                let rel_v = (m.voltage.value() - mpp.voltage.value()) / mpp.voltage.value();
                let rel_i = (m.current.value() - mpp.current_amps) / mpp.current_amps;
                cost += rel_v * rel_v + rel_i * rel_i;
            }
            Err(_) => return 1e9,
        }
        cost
    };

    // Initial guess: order-of-magnitude physics.
    let isc_guess = mpp.current_amps * 1.2 / mpp.illuminance.value();
    let x0 = [1.6, -11.0, isc_guess, 7.5e4, 150.0];
    let steps = [0.3, 1.0, isc_guess * 0.5, 3.0e4, 100.0];
    let (best, cost) = nelder_mead(cost_fn, &x0, &steps, opts.max_iterations);

    let model = candidate(&best, opts).ok_or(PvError::SolveFailed { what: "fit" })?;
    let cell = PvCell::new(model.clone());
    let mut worst = 0.0f64;
    for p in voc_points {
        let voc = cell.open_circuit_voltage(p.illuminance)?;
        let rel =
            ((voc.value() - p.open_circuit_voltage.value()) / p.open_circuit_voltage.value()).abs();
        worst = worst.max(rel);
    }
    let _ = Kelvin::STC; // fits are at the reference temperature
    Ok(FitResult {
        model,
        cost,
        worst_voc_error: worst,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn nelder_mead_minimises_rosenbrock_ish() {
        let (x, cost) = nelder_mead(
            |p| {
                let a = 1.0 - p[0];
                let b = p[1] - p[0] * p[0];
                a * a + 10.0 * b * b
            },
            &[-1.0, 2.0],
            &[0.5, 0.5],
            2000,
        );
        assert!(cost < 1e-6, "cost = {cost}, x = {x:?}");
        assert!((x[0] - 1.0).abs() < 0.01);
    }

    #[test]
    fn refit_recovers_table1_behaviour() {
        // Feed the fitter the paper's own Table I data; the result must
        // reproduce those Voc values about as well as the shipped preset.
        let voc_points: Vec<VocPoint> = [
            (200.0, 4.978),
            (500.0, 5.242),
            (1000.0, 5.44),
            (2000.0, 5.64),
            (5000.0, 5.91),
        ]
        .iter()
        .map(|&(lux, v)| VocPoint {
            illuminance: Lux::new(lux),
            open_circuit_voltage: Volts::new(v),
        })
        .collect();
        let mpp = MppPointMeasurement {
            illuminance: Lux::new(200.0),
            voltage: Volts::new(3.0),
            current_amps: 42.1e-6,
        };
        let result = fit_cell(&voc_points, mpp, &FitOptions::default()).unwrap();
        assert!(
            result.worst_voc_error < 0.03,
            "worst Voc error {}",
            result.worst_voc_error
        );
        let cell = PvCell::new(result.model);
        let m = cell.mpp(Lux::new(200.0)).unwrap();
        assert!(
            (m.current.as_micro() - 42.1).abs() < 6.0,
            "fitted Impp = {}",
            m.current
        );
    }

    #[test]
    fn fit_rejects_too_few_points() {
        let mpp = MppPointMeasurement {
            illuminance: Lux::new(200.0),
            voltage: Volts::new(3.0),
            current_amps: 42e-6,
        };
        assert!(matches!(
            fit_cell(&[], mpp, &FitOptions::default()),
            Err(PvError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn fitted_model_close_to_shipped_preset() {
        // Generate synthetic measurements from the shipped preset and
        // refit; the round trip should land near the original.
        let truth = presets::sanyo_am1815();
        let voc_points: Vec<VocPoint> = [150.0, 400.0, 900.0, 2500.0, 6000.0]
            .iter()
            .map(|&lux| VocPoint {
                illuminance: Lux::new(lux),
                open_circuit_voltage: truth.open_circuit_voltage(Lux::new(lux)).unwrap(),
            })
            .collect();
        let true_mpp = truth.mpp(Lux::new(200.0)).unwrap();
        let mpp = MppPointMeasurement {
            illuminance: Lux::new(200.0),
            voltage: true_mpp.voltage,
            current_amps: true_mpp.current.value(),
        };
        let result = fit_cell(&voc_points, mpp, &FitOptions::default()).unwrap();
        assert!(
            result.worst_voc_error < 0.01,
            "worst = {}",
            result.worst_voc_error
        );
        // k of the refit matches the truth's k within a few points.
        let refit_k = PvCell::new(result.model)
            .mpp(Lux::new(1000.0))
            .unwrap()
            .focv_factor();
        let truth_k = truth.mpp(Lux::new(1000.0)).unwrap().focv_factor();
        assert!(
            (refit_k.value() - truth_k.value()).abs() < 0.05,
            "refit k {refit_k} vs truth {truth_k}"
        );
    }
}
