//! A PV cell bound to an operating temperature.

use eh_units::{Amps, Kelvin, Lux, Volts, Watts};

use crate::curve::IvCurve;
use crate::error::PvError;
use crate::model::SingleDiodeModel;
use crate::mpp::{solve_mpp, MppPoint};

/// A photovoltaic cell: a [`SingleDiodeModel`] at a specific operating
/// temperature, exposing the quantities the MPPT system interacts with.
///
/// ```
/// use eh_pv::presets;
/// use eh_units::{Celsius, Lux, Volts};
///
/// let cell = presets::sanyo_am1815().with_temperature(Celsius::new(21.0));
/// let i = cell.current_at(Volts::new(3.0), Lux::new(200.0))?;
/// assert!(i.as_micro() > 30.0);
/// # Ok::<(), eh_pv::PvError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PvCell {
    model: SingleDiodeModel,
    temperature: Kelvin,
}

impl PvCell {
    /// Creates a cell at the standard 25 °C reference temperature.
    pub fn new(model: SingleDiodeModel) -> Self {
        Self {
            model,
            temperature: Kelvin::STC,
        }
    }

    /// Returns a copy of this cell at a different operating temperature.
    #[must_use]
    pub fn with_temperature(mut self, t: impl Into<Kelvin>) -> Self {
        self.temperature = t.into();
        self
    }

    /// The underlying electrical model.
    pub fn model(&self) -> &SingleDiodeModel {
        &self.model
    }

    /// The cell's display name.
    pub fn name(&self) -> &str {
        self.model.name()
    }

    /// The operating temperature.
    pub fn temperature(&self) -> Kelvin {
        self.temperature
    }

    /// Terminal current at terminal voltage `v` under `lux` illuminance.
    ///
    /// # Errors
    ///
    /// Returns an error for negative `v` or `lux`, or if the implicit
    /// solve fails.
    pub fn current_at(&self, v: Volts, lux: Lux) -> Result<Amps, PvError> {
        self.model.current_at(v, lux, self.temperature)
    }

    /// Output power at terminal voltage `v`.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`PvCell::current_at`].
    pub fn power_at(&self, v: Volts, lux: Lux) -> Result<Watts, PvError> {
        Ok(v * self.current_at(v, lux)?)
    }

    /// Terminal voltage at which the cell carries current `i` (inverse
    /// of [`PvCell::current_at`]; negative result means the cell cannot
    /// support the current).
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn voltage_at_current(&self, i: Amps, lux: Lux) -> Result<Volts, PvError> {
        self.model.voltage_at_current(i, lux, self.temperature)
    }

    /// Open-circuit voltage (the quantity the paper's PULSE samples).
    ///
    /// # Errors
    ///
    /// Returns an error for negative illuminance.
    pub fn open_circuit_voltage(&self, lux: Lux) -> Result<Volts, PvError> {
        self.model.open_circuit_voltage(lux, self.temperature)
    }

    /// Short-circuit current.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn short_circuit_current(&self, lux: Lux) -> Result<Amps, PvError> {
        self.model.short_circuit_current(lux, self.temperature)
    }

    /// Solves the maximum power point at the given illuminance.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn mpp(&self, lux: Lux) -> Result<MppPoint, PvError> {
        solve_mpp(&self.model, lux, self.temperature)
    }

    /// Samples the I-V curve with `points` equally spaced voltage steps
    /// from 0 to `Voc` (this is what Fig. 1 of the paper plots).
    ///
    /// # Errors
    ///
    /// Returns [`PvError::InvalidParameter`] if `points < 2`, otherwise
    /// propagates solver errors.
    pub fn iv_curve(&self, lux: Lux, points: usize) -> Result<IvCurve, PvError> {
        IvCurve::sample(self, lux, points)
    }
}

impl From<SingleDiodeModel> for PvCell {
    fn from(model: SingleDiodeModel) -> Self {
        Self::new(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_units::Celsius;
    use crate::presets;

    #[test]
    fn temperature_is_configurable() {
        let cell = presets::sanyo_am1815();
        assert_eq!(cell.temperature(), Kelvin::STC);
        let warm = cell.clone().with_temperature(Celsius::new(40.0));
        assert!((warm.temperature().value() - 313.15).abs() < 1e-9);
        // Warmer cell, lower Voc.
        let voc_cold = cell.open_circuit_voltage(Lux::new(1000.0)).unwrap();
        let voc_warm = warm.open_circuit_voltage(Lux::new(1000.0)).unwrap();
        assert!(voc_warm < voc_cold);
    }

    #[test]
    fn power_is_v_times_i() {
        let cell = presets::sanyo_am1815();
        let v = Volts::new(2.5);
        let lux = Lux::new(700.0);
        let p = cell.power_at(v, lux).unwrap();
        let i = cell.current_at(v, lux).unwrap();
        assert!((p.value() - v.value() * i.value()).abs() < 1e-15);
    }

    #[test]
    fn from_model_conversion() {
        let cell: PvCell = presets::sanyo_am1815().model().clone().into();
        assert_eq!(cell.name(), "SANYO Amorton AM-1815");
    }

    #[test]
    fn paper_mpp_operating_point_at_200_lux() {
        // §IV-A: "the AM-1815 cell's MPP current and voltage of 42 µA and
        // 3.0 V" (under 200 lux).
        let cell = presets::sanyo_am1815();
        let mpp = cell.mpp(Lux::new(200.0)).unwrap();
        assert!(
            (mpp.current.as_micro() - 42.0).abs() < 2.0,
            "Impp = {}",
            mpp.current
        );
        assert!(
            (mpp.voltage.value() - 3.0).abs() < 0.2,
            "Vmpp = {}",
            mpp.voltage
        );
    }
}
