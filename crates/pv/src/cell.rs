//! A PV cell bound to an operating temperature.

use std::fmt;
use std::sync::{Arc, OnceLock};

use eh_units::{Amps, Kelvin, Lux, Volts, Watts};

use crate::cache::CachedPvSurface;
use crate::curve::IvCurve;
use crate::error::PvError;
use crate::model::SingleDiodeModel;
use crate::mpp::{solve_mpp, MppPoint};

/// A photovoltaic cell: a [`SingleDiodeModel`] at a specific operating
/// temperature, exposing the quantities the MPPT system interacts with.
///
/// ```
/// use eh_pv::presets;
/// use eh_units::{Celsius, Lux, Volts};
///
/// let cell = presets::sanyo_am1815().with_temperature(Celsius::new(21.0));
/// let i = cell.current_at(Volts::new(3.0), Lux::new(200.0))?;
/// assert!(i.as_micro() > 30.0);
/// # Ok::<(), eh_pv::PvError>(())
/// ```
///
/// # Operating-point cache
///
/// With [`PvCell::with_cache`] the hot-path queries — `current_at`,
/// `power_at`, `open_circuit_voltage`, `short_circuit_current` — are
/// answered from a lazily built [`CachedPvSurface`] instead of the
/// implicit solver, accurate to
/// [`CachedPvSurface::REL_CURRENT_ERROR_BOUND`] and falling back to the
/// exact solver outside the cached domain. The table is built once per
/// `(model, temperature)` on first use and **shared across clones** of
/// the cell, so sweep jobs that clone a warmed cell pay no rebuild.
/// `voltage_at_current`, `mpp`, and `iv_curve` always use the exact
/// solver (the cache stores no inverse).
pub struct PvCell {
    model: SingleDiodeModel,
    temperature: Kelvin,
    cache_enabled: bool,
    surface: OnceLock<Arc<CachedPvSurface>>,
}

impl Clone for PvCell {
    fn clone(&self) -> Self {
        let surface = OnceLock::new();
        if let Some(s) = self.surface.get() {
            // Share the already-built table; clones must not rebuild.
            let _ = surface.set(Arc::clone(s));
        }
        Self {
            model: self.model.clone(),
            temperature: self.temperature,
            cache_enabled: self.cache_enabled,
            surface,
        }
    }
}

impl PartialEq for PvCell {
    fn eq(&self, other: &Self) -> bool {
        // The memoized surface is derived state; equality is defined by
        // the model, temperature, and caching policy alone.
        self.model == other.model
            && self.temperature == other.temperature
            && self.cache_enabled == other.cache_enabled
    }
}

impl fmt::Debug for PvCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PvCell")
            .field("model", &self.model)
            .field("temperature", &self.temperature)
            .field("cache_enabled", &self.cache_enabled)
            .field("cache_built", &self.surface.get().is_some())
            .finish()
    }
}

impl PvCell {
    /// Creates a cell at the standard 25 °C reference temperature.
    pub fn new(model: SingleDiodeModel) -> Self {
        Self {
            model,
            temperature: Kelvin::STC,
            cache_enabled: false,
            surface: OnceLock::new(),
        }
    }

    /// Returns a copy of this cell at a different operating temperature.
    ///
    /// Any memoized surface is dropped — the cache is per
    /// `(model, temperature)` — and rebuilt lazily if caching is enabled.
    #[must_use]
    pub fn with_temperature(mut self, t: impl Into<Kelvin>) -> Self {
        self.temperature = t.into();
        self.surface = OnceLock::new();
        self
    }

    /// Enables or disables the operating-point cache for the hot-path
    /// queries (see the type-level docs for semantics and error bound).
    #[must_use]
    pub fn with_cache(mut self, enabled: bool) -> Self {
        self.cache_enabled = enabled;
        self
    }

    /// Whether hot-path queries are answered from the cache.
    pub fn cache_enabled(&self) -> bool {
        self.cache_enabled
    }

    /// Enables the cache and builds the surface eagerly, returning the
    /// warmed cell: the one-call handoff for fan-out code that clones
    /// one cell into many jobs and must pay the table build exactly once
    /// per `(model, temperature)`.
    ///
    /// # Errors
    ///
    /// Propagates table-construction failures from
    /// [`CachedPvSurface::build`].
    pub fn warmed(self) -> Result<Self, PvError> {
        let cell = self.with_cache(true);
        cell.cached()?;
        Ok(cell)
    }

    /// The memoized I-V surface for this `(model, temperature)`,
    /// building it on first call (a few milliseconds). Useful to warm
    /// the table before cloning the cell into sweep jobs, or to probe
    /// the cache directly regardless of [`PvCell::cache_enabled`].
    ///
    /// # Errors
    ///
    /// Propagates table-construction failures from
    /// [`CachedPvSurface::build`].
    pub fn cached(&self) -> Result<&CachedPvSurface, PvError> {
        if self.surface.get().is_none() {
            let built = CachedPvSurface::build(&self.model, self.temperature)?;
            let _ = self.surface.set(Arc::new(built));
        }
        Ok(self
            .surface
            .get()
            .expect("surface was just built or already present"))
    }

    /// The underlying electrical model.
    pub fn model(&self) -> &SingleDiodeModel {
        &self.model
    }

    /// The cell's display name.
    pub fn name(&self) -> &str {
        self.model.name()
    }

    /// The operating temperature.
    pub fn temperature(&self) -> Kelvin {
        self.temperature
    }

    /// Terminal current at terminal voltage `v` under `lux` illuminance.
    ///
    /// # Errors
    ///
    /// Returns an error for negative `v` or `lux`, or if the implicit
    /// solve fails.
    pub fn current_at(&self, v: Volts, lux: Lux) -> Result<Amps, PvError> {
        if self.cache_enabled {
            self.cached()?.current_at(v, lux)
        } else {
            self.model.current_at(v, lux, self.temperature)
        }
    }

    /// Output power at terminal voltage `v`.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`PvCell::current_at`].
    pub fn power_at(&self, v: Volts, lux: Lux) -> Result<Watts, PvError> {
        Ok(v * self.current_at(v, lux)?)
    }

    /// Terminal voltage at which the cell carries current `i` (inverse
    /// of [`PvCell::current_at`]; negative result means the cell cannot
    /// support the current). Always solved exactly.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn voltage_at_current(&self, i: Amps, lux: Lux) -> Result<Volts, PvError> {
        self.model.voltage_at_current(i, lux, self.temperature)
    }

    /// Open-circuit voltage (the quantity the paper's PULSE samples).
    ///
    /// # Errors
    ///
    /// Returns an error for negative illuminance.
    pub fn open_circuit_voltage(&self, lux: Lux) -> Result<Volts, PvError> {
        if self.cache_enabled {
            self.cached()?.open_circuit_voltage(lux)
        } else {
            self.model.open_circuit_voltage(lux, self.temperature)
        }
    }

    /// Short-circuit current.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn short_circuit_current(&self, lux: Lux) -> Result<Amps, PvError> {
        if self.cache_enabled {
            self.cached()?.short_circuit_current(lux)
        } else {
            self.model.short_circuit_current(lux, self.temperature)
        }
    }

    /// Solves the maximum power point at the given illuminance. Always
    /// solved exactly.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn mpp(&self, lux: Lux) -> Result<MppPoint, PvError> {
        solve_mpp(&self.model, lux, self.temperature)
    }

    /// Samples the I-V curve with `points` equally spaced voltage steps
    /// from 0 to `Voc` (this is what Fig. 1 of the paper plots).
    ///
    /// # Errors
    ///
    /// Returns [`PvError::InvalidParameter`] if `points < 2`, otherwise
    /// propagates solver errors.
    pub fn iv_curve(&self, lux: Lux, points: usize) -> Result<IvCurve, PvError> {
        IvCurve::sample(self, lux, points)
    }
}

impl From<SingleDiodeModel> for PvCell {
    fn from(model: SingleDiodeModel) -> Self {
        Self::new(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use eh_units::Celsius;

    #[test]
    fn temperature_is_configurable() {
        let cell = presets::sanyo_am1815();
        assert_eq!(cell.temperature(), Kelvin::STC);
        let warm = cell.clone().with_temperature(Celsius::new(40.0));
        assert!((warm.temperature().value() - 313.15).abs() < 1e-9);
        // Warmer cell, lower Voc.
        let voc_cold = cell.open_circuit_voltage(Lux::new(1000.0)).unwrap();
        let voc_warm = warm.open_circuit_voltage(Lux::new(1000.0)).unwrap();
        assert!(voc_warm < voc_cold);
    }

    #[test]
    fn power_is_v_times_i() {
        let cell = presets::sanyo_am1815();
        let v = Volts::new(2.5);
        let lux = Lux::new(700.0);
        let p = cell.power_at(v, lux).unwrap();
        let i = cell.current_at(v, lux).unwrap();
        assert!((p.value() - v.value() * i.value()).abs() < 1e-15);
    }

    #[test]
    fn from_model_conversion() {
        let cell: PvCell = presets::sanyo_am1815().model().clone().into();
        assert_eq!(cell.name(), "SANYO Amorton AM-1815");
    }

    #[test]
    fn paper_mpp_operating_point_at_200_lux() {
        // §IV-A: "the AM-1815 cell's MPP current and voltage of 42 µA and
        // 3.0 V" (under 200 lux).
        let cell = presets::sanyo_am1815();
        let mpp = cell.mpp(Lux::new(200.0)).unwrap();
        assert!(
            (mpp.current.as_micro() - 42.0).abs() < 2.0,
            "Impp = {}",
            mpp.current
        );
        assert!(
            (mpp.voltage.value() - 3.0).abs() < 0.2,
            "Vmpp = {}",
            mpp.voltage
        );
    }

    #[test]
    fn cached_cell_dispatches_to_surface() {
        let exact = presets::sanyo_am1815();
        let cached = exact.clone().with_cache(true);
        assert!(cached.cache_enabled());
        let lux = Lux::new(430.0);
        let v = Volts::new(2.8);
        // Dispatch must hit the surface: bit-identical to a direct probe.
        let via_cell = cached.current_at(v, lux).unwrap();
        let via_surface = cached.cached().unwrap().current_at(v, lux).unwrap();
        assert_eq!(via_cell, via_surface);
        // …and close to the exact solver.
        let truth = exact.current_at(v, lux).unwrap();
        let isc = exact.short_circuit_current(lux).unwrap();
        assert!((via_cell - truth).value().abs() / isc.value() < 1e-3);
    }

    #[test]
    fn warmed_builds_once_and_clones_share() {
        let warm = presets::sanyo_am1815().warmed().unwrap();
        assert!(warm.cache_enabled());
        let a = warm.cached().unwrap() as *const CachedPvSurface;
        let b = warm.clone().cached().unwrap() as *const CachedPvSurface;
        assert_eq!(a, b, "warmed clone rebuilt the table");
    }

    #[test]
    fn clones_share_the_built_surface() {
        let cell = presets::sanyo_am1815().with_cache(true);
        let surface = cell.cached().unwrap() as *const CachedPvSurface;
        let clone = cell.clone();
        let shared = clone.cached().unwrap() as *const CachedPvSurface;
        assert_eq!(surface, shared, "clone rebuilt the table");
    }

    #[test]
    fn temperature_change_invalidates_surface() {
        let cell = presets::sanyo_am1815().with_cache(true);
        let before = cell.cached().unwrap() as *const CachedPvSurface;
        let warm = cell.clone().with_temperature(Celsius::new(40.0));
        let after = warm.cached().unwrap() as *const CachedPvSurface;
        assert_ne!(before, after, "stale surface survived a temperature change");
        assert!((warm.cached().unwrap().temperature().value() - 313.15).abs() < 1e-9);
    }

    #[test]
    fn equality_ignores_memoized_surface() {
        let a = presets::sanyo_am1815().with_cache(true);
        let b = presets::sanyo_am1815().with_cache(true);
        a.cached().unwrap();
        assert_eq!(a, b);
        assert_ne!(a, presets::sanyo_am1815());
    }
}
