//! Cell parameter sets fitted to the paper's measurements and datasheets.
//!
//! The fitting procedure (documented in `DESIGN.md`) minimises the error
//! against the Voc-vs-illuminance points of Table I of the paper and the
//! AM-1815 datasheet MPP (42 µA at 3.0 V at 200 lux) quoted in §IV-A.

use crate::cell::PvCell;
use crate::model::SingleDiodeModel;

/// SANYO Amorton AM-1815 — the 25 cm² a-Si cell the paper uses for the
/// complete-system evaluation (Table I, cold-start tests).
///
/// Fitted against Table I: `Voc(200 lx) ≈ 4.98 V`, `Voc(1000 lx) ≈ 5.44 V`,
/// `Voc(5000 lx) ≈ 5.91 V`, and the datasheet MPP of 42 µA at 3.0 V at
/// 200 lux. All Voc values reproduce within 2 %.
///
/// ```
/// use eh_pv::presets::sanyo_am1815;
/// use eh_units::Lux;
///
/// let cell = sanyo_am1815();
/// let voc = cell.open_circuit_voltage(Lux::new(200.0))?;
/// assert!((voc.value() - 4.978).abs() < 0.1);
/// # Ok::<(), eh_pv::PvError>(())
/// ```
pub fn sanyo_am1815() -> PvCell {
    PvCell::new(
        SingleDiodeModel::builder("SANYO Amorton AM-1815")
            .junctions(8)
            .ideality(1.6614)
            .saturation_current_amps(6.737_13e-12)
            .photocurrent_per_lux_amps(4.187_2e-7)
            .photo_shunt_ohms(75_092.2, 200.0)
            .series_resistance_ohms(208.746)
            .bandgap_ev(1.7)
            .area_cm2(25.0)
            .build()
            .expect("AM-1815 preset parameters are valid"),
    )
}

/// Schott Solar 1116929 — the a-Si module whose I-V curve is Fig. 1 and
/// whose 24-hour Voc log is Fig. 2 of the paper.
///
/// No datasheet survives for this part; the paper only shows its curves.
/// We model it as the same a-Si junction stack as the AM-1815 with
/// roughly twice the active area (scaled photocurrent and shunt, smaller
/// series resistance). The substitution is documented in `DESIGN.md`.
pub fn schott_asi_1116929() -> PvCell {
    PvCell::new(
        SingleDiodeModel::builder("Schott Solar 1116929")
            .junctions(8)
            .ideality(1.6614)
            .saturation_current_amps(1.35e-11)
            .photocurrent_per_lux_amps(8.4e-7)
            .photo_shunt_ohms(37_500.0, 200.0)
            .series_resistance_ohms(95.0)
            .bandgap_ev(1.7)
            .area_cm2(50.0)
            .build()
            .expect("Schott preset parameters are valid"),
    )
}

/// A generic crystalline-silicon outdoor module, for contrast experiments.
///
/// Crystalline cells have a *fixed* (non-photo) shunt, so `k = Vmpp/Voc`
/// sits near 0.8 and indoor output collapses — the regime the paper's
/// intro describes for conventional outdoor MPPT systems.
pub fn crystalline_outdoor() -> PvCell {
    PvCell::new(
        SingleDiodeModel::builder("generic c-Si outdoor module")
            .junctions(8)
            .ideality(1.1)
            .saturation_current_amps(2.5e-11)
            .photocurrent_per_lux_amps(4.0e-7)
            // Effectively a fixed large shunt: photo-scaling from an
            // enormous reference keeps it >10 MΩ below 20 klux.
            .photo_shunt_ohms(1.0e9, 200.0)
            .series_resistance_ohms(20.0)
            .bandgap_ev(1.12)
            .photocurrent_temp_coeff(5e-4)
            .area_cm2(50.0)
            .build()
            .expect("crystalline preset parameters are valid"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_units::Lux;

    #[test]
    fn am1815_reproduces_table1_voc_within_2_percent() {
        let cell = sanyo_am1815();
        for (lux, voc_paper) in [
            (200.0, 4.978),
            (300.0, 5.096),
            (400.0, 5.18),
            (500.0, 5.242),
            (600.0, 5.292),
            (700.0, 5.333),
            (800.0, 5.369),
            (900.0, 5.41),
            (1000.0, 5.44),
            (2000.0, 5.64),
            (3000.0, 5.75),
            (5000.0, 5.91),
        ] {
            let voc = cell.open_circuit_voltage(Lux::new(lux)).unwrap().value();
            let rel = (voc - voc_paper).abs() / voc_paper;
            assert!(
                rel < 0.02,
                "Voc({lux}) = {voc:.3} vs {voc_paper} ({rel:.4})"
            );
        }
    }

    #[test]
    fn schott_is_a_larger_cell_than_am1815() {
        let schott = schott_asi_1116929();
        let sanyo = sanyo_am1815();
        let lux = Lux::new(1000.0);
        let p_schott = schott.mpp(lux).unwrap().power;
        let p_sanyo = sanyo.mpp(lux).unwrap().power;
        assert!(p_schott.value() > 1.5 * p_sanyo.value());
        assert!(schott.model().area_cm2() > sanyo.model().area_cm2());
    }

    #[test]
    fn crystalline_has_high_k_amorphous_has_low_k() {
        let csi = crystalline_outdoor();
        let asi = sanyo_am1815();
        let lux = Lux::new(1000.0);
        let k_csi = csi.mpp(lux).unwrap().focv_factor();
        let k_asi = asi.mpp(lux).unwrap().focv_factor();
        assert!(k_csi.value() > 0.72, "c-Si k = {k_csi}");
        assert!(k_asi.value() < 0.65, "a-Si k = {k_asi}");
    }

    #[test]
    fn amorphous_outperforms_crystalline_indoors_per_area() {
        // §II-A: a-Si has relatively high efficiency at low light.
        // With the photo-shunt fitted to indoor data, the a-Si presets
        // remain productive at 200 lux.
        let asi = sanyo_am1815();
        let p = asi.mpp(Lux::new(200.0)).unwrap().power;
        assert!(
            p.as_micro() > 100.0,
            "AM-1815 should produce >100 µW at 200 lux, got {p}"
        );
    }

    #[test]
    fn indoor_cell_produces_about_1mw_indoors() {
        // §I: "indoor PV cells typically produce ≤ 1 mW".
        let cell = sanyo_am1815();
        let p = cell.mpp(Lux::new(1000.0)).unwrap().power;
        assert!(
            p.as_milli() < 2.0,
            "indoor output should be of order 1 mW, got {p}"
        );
    }
}
