//! Sampled I-V / P-V curves (the data behind Fig. 1 of the paper).

use eh_units::{Amps, Lux, Volts, Watts};

use crate::cell::PvCell;
use crate::error::PvError;

/// One sampled point of an I-V curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Terminal voltage.
    pub voltage: Volts,
    /// Terminal current.
    pub current: Amps,
    /// Output power (`voltage · current`).
    pub power: Watts,
}

/// A sampled I-V curve of a PV cell at one illuminance, with helpers to
/// interpolate and locate the sampled maximum-power point.
///
/// ```
/// use eh_pv::presets;
/// use eh_units::Lux;
///
/// let cell = presets::schott_asi_1116929();
/// let curve = cell.iv_curve(Lux::new(1000.0), 200)?;
/// let mpp = curve.max_power_point();
/// assert!(mpp.power.value() > 0.0);
/// # Ok::<(), eh_pv::PvError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IvCurve {
    illuminance: Lux,
    points: Vec<CurvePoint>,
}

impl IvCurve {
    /// Samples `points` equally spaced voltages in `[0, Voc]`.
    ///
    /// # Errors
    ///
    /// Returns [`PvError::InvalidParameter`] if `points < 2`, otherwise
    /// propagates solver errors.
    pub fn sample(cell: &PvCell, lux: Lux, points: usize) -> Result<Self, PvError> {
        if points < 2 {
            return Err(PvError::InvalidParameter {
                name: "points",
                value: points as f64,
            });
        }
        let voc = cell.open_circuit_voltage(lux)?;
        let mut out = Vec::with_capacity(points);
        for n in 0..points {
            let v = voc * (n as f64 / (points - 1) as f64);
            let i = cell.current_at(v, lux)?;
            out.push(CurvePoint {
                voltage: v,
                current: i,
                power: v * i,
            });
        }
        Ok(Self {
            illuminance: lux,
            points: out,
        })
    }

    /// The illuminance this curve was sampled at.
    pub fn illuminance(&self) -> Lux {
        self.illuminance
    }

    /// The sampled points, in ascending voltage order.
    pub fn points(&self) -> &[CurvePoint] {
        &self.points
    }

    /// Iterates over the sampled points.
    pub fn iter(&self) -> std::slice::Iter<'_, CurvePoint> {
        self.points.iter()
    }

    /// Number of sampled points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the curve has no points (never true for constructed curves).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The sampled point with the highest power.
    ///
    /// # Panics
    ///
    /// Never panics for curves produced by [`IvCurve::sample`], which
    /// guarantees at least two points.
    pub fn max_power_point(&self) -> CurvePoint {
        *self
            .points
            .iter()
            .max_by(|a, b| a.power.value().total_cmp(&b.power.value()))
            .expect("sampled curve is non-empty")
    }

    /// The open-circuit voltage (last sampled point's voltage).
    pub fn open_circuit_voltage(&self) -> Volts {
        self.points.last().map(|p| p.voltage).unwrap_or(Volts::ZERO)
    }

    /// The short-circuit current (first sampled point's current).
    pub fn short_circuit_current(&self) -> Amps {
        self.points.first().map(|p| p.current).unwrap_or(Amps::ZERO)
    }

    /// Linearly interpolates the current at an arbitrary voltage within
    /// the sampled range. Returns `None` outside `[0, Voc]`.
    pub fn current_at(&self, v: Volts) -> Option<Amps> {
        let vv = v.value();
        if vv < 0.0 || vv > self.open_circuit_voltage().value() {
            return None;
        }
        let idx = self
            .points
            .partition_point(|p| p.voltage.value() <= vv)
            .saturating_sub(1);
        if idx + 1 >= self.points.len() {
            return Some(self.points[idx].current);
        }
        let (a, b) = (&self.points[idx], &self.points[idx + 1]);
        let span = (b.voltage - a.voltage).value();
        if span <= 0.0 {
            return Some(a.current);
        }
        let f = (vv - a.voltage.value()) / span;
        Some(a.current + (b.current - a.current) * f)
    }

    /// Linearly interpolates the power at an arbitrary voltage within the
    /// sampled range. Returns `None` outside `[0, Voc]`.
    pub fn power_at(&self, v: Volts) -> Option<Watts> {
        self.current_at(v).map(|i| v * i)
    }
}

impl<'a> IntoIterator for &'a IvCurve {
    type Item = &'a CurvePoint;
    type IntoIter = std::slice::Iter<'a, CurvePoint>;

    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn curve() -> IvCurve {
        presets::sanyo_am1815()
            .iv_curve(Lux::new(1000.0), 101)
            .unwrap()
    }

    #[test]
    fn sample_count_and_ordering() {
        let c = curve();
        assert_eq!(c.len(), 101);
        assert!(!c.is_empty());
        for w in c.points().windows(2) {
            assert!(w[0].voltage < w[1].voltage);
            assert!(w[0].current > w[1].current);
        }
    }

    #[test]
    fn endpoints_are_isc_and_voc() {
        let c = curve();
        let cell = presets::sanyo_am1815();
        let isc = cell.short_circuit_current(Lux::new(1000.0)).unwrap();
        let voc = cell.open_circuit_voltage(Lux::new(1000.0)).unwrap();
        assert!((c.short_circuit_current().value() - isc.value()).abs() < 1e-12);
        assert!((c.open_circuit_voltage().value() - voc.value()).abs() < 1e-9);
        // Power at both endpoints is ~zero; MPP is interior.
        let mpp = c.max_power_point();
        assert!(mpp.voltage > Volts::ZERO);
        assert!(mpp.voltage < c.open_circuit_voltage());
    }

    #[test]
    fn interpolation_matches_samples() {
        let c = curve();
        let p = c.points()[50];
        let i = c.current_at(p.voltage).unwrap();
        assert!((i.value() - p.current.value()).abs() < 1e-12);
        // Midway between two samples lies between their currents.
        let a = c.points()[10];
        let b = c.points()[11];
        let mid = Volts::new(0.5 * (a.voltage.value() + b.voltage.value()));
        let im = c.current_at(mid).unwrap();
        assert!(im < a.current && im > b.current);
    }

    #[test]
    fn interpolation_rejects_out_of_range() {
        let c = curve();
        assert!(c.current_at(Volts::new(-0.1)).is_none());
        assert!(c
            .current_at(c.open_circuit_voltage() + Volts::new(0.1))
            .is_none());
        assert!(c.power_at(Volts::new(1.0)).is_some());
    }

    #[test]
    fn too_few_points_rejected() {
        let cell = presets::sanyo_am1815();
        assert!(matches!(
            cell.iv_curve(Lux::new(1000.0), 1),
            Err(PvError::InvalidParameter { name: "points", .. })
        ));
    }

    #[test]
    fn curve_iterates() {
        let c = curve();
        assert_eq!(c.iter().count(), 101);
        assert_eq!((&c).into_iter().count(), 101);
    }

    #[test]
    fn sampled_mpp_close_to_solved_mpp() {
        let cell = presets::sanyo_am1815();
        let c = cell.iv_curve(Lux::new(1000.0), 500).unwrap();
        let sampled = c.max_power_point();
        let solved = cell.mpp(Lux::new(1000.0)).unwrap();
        assert!((sampled.power.value() - solved.power.value()).abs() / solved.power.value() < 1e-3);
    }
}
