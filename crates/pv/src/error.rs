//! Error type for PV model evaluation.

use std::error::Error;
use std::fmt;

/// Errors returned by PV model solvers and constructors.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PvError {
    /// A model parameter was non-physical (negative, zero where a positive
    /// value is required, or NaN). The payload names the parameter.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// An implicit-equation solve failed to bracket or converge on a root.
    SolveFailed {
        /// Which solve failed (e.g. `"current"`, `"voc"`).
        what: &'static str,
    },
    /// The requested operating point is outside the model's valid range.
    OutOfRange {
        /// Description of the violated bound.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for PvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PvError::InvalidParameter { name, value } => {
                write!(f, "invalid PV model parameter {name} = {value}")
            }
            PvError::SolveFailed { what } => {
                write!(f, "PV {what} solve failed to converge")
            }
            PvError::OutOfRange { what, value } => {
                write!(f, "operating point out of range: {what} = {value}")
            }
        }
    }
}

impl Error for PvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = PvError::InvalidParameter {
            name: "series_resistance",
            value: -1.0,
        };
        assert_eq!(
            e.to_string(),
            "invalid PV model parameter series_resistance = -1"
        );
        let e = PvError::SolveFailed { what: "voc" };
        assert_eq!(e.to_string(), "PV voc solve failed to converge");
        let e = PvError::OutOfRange {
            what: "illuminance",
            value: -5.0,
        };
        assert!(e.to_string().contains("illuminance"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<PvError>();
    }
}
