//! Fractional-open-circuit-voltage (FOCV) analysis.
//!
//! Eq. (1) of the paper: `Vmpp ≈ k · Voc`, with `k` typically between
//! 0.6 and 0.8 for non-crystalline cells and only weakly correlated with
//! light intensity. This module quantifies `k` for a modelled cell and
//! maps operating-voltage errors to harvest-efficiency loss — the step
//! the paper uses in §II-B to argue that a >60 s hold period costs less
//! than 1 % efficiency.

use eh_units::{Lux, Ratio, Volts};

use crate::cell::PvCell;
use crate::error::PvError;

/// `k = Vmpp/Voc` evaluated at each given illuminance.
///
/// # Errors
///
/// Propagates solver errors from the cell model.
///
/// ```
/// use eh_pv::{focv, presets};
/// use eh_units::Lux;
///
/// let cell = presets::sanyo_am1815();
/// let profile = focv::factor_profile(&cell, [200.0, 1000.0, 5000.0].map(Lux::new))?;
/// for (_, k) in &profile {
///     assert!(k.value() > 0.5 && k.value() < 0.8);
/// }
/// # Ok::<(), eh_pv::PvError>(())
/// ```
pub fn factor_profile(
    cell: &PvCell,
    illuminances: impl IntoIterator<Item = Lux>,
) -> Result<Vec<(Lux, Ratio)>, PvError> {
    illuminances
        .into_iter()
        .map(|lux| Ok((lux, cell.mpp(lux)?.focv_factor())))
        .collect()
}

/// The mean `k` over a set of illuminances — the value a designer would
/// trim the paper's R2 potentiometer to.
///
/// # Errors
///
/// Propagates solver errors; returns [`PvError::InvalidParameter`] for an
/// empty illuminance set.
pub fn recommended_factor(
    cell: &PvCell,
    illuminances: impl IntoIterator<Item = Lux>,
) -> Result<Ratio, PvError> {
    let profile = factor_profile(cell, illuminances)?;
    if profile.is_empty() {
        return Err(PvError::InvalidParameter {
            name: "illuminances",
            value: 0.0,
        });
    }
    let sum: f64 = profile.iter().map(|(_, k)| k.value()).sum();
    Ok(Ratio::new(sum / profile.len() as f64))
}

/// Harvest efficiency of operating the cell at voltage `v` instead of its
/// true MPP: `P(v) / Pmpp ∈ [0, 1]`.
///
/// # Errors
///
/// Propagates solver errors.
pub fn efficiency_at_voltage(cell: &PvCell, v: Volts, lux: Lux) -> Result<Ratio, PvError> {
    let mpp = cell.mpp(lux)?;
    if mpp.power.value() <= 0.0 {
        return Ok(Ratio::ZERO);
    }
    let p = cell.power_at(v.max(Volts::ZERO), lux)?;
    Ok(Ratio::new((p / mpp.power).clamp(0.0, 1.0)))
}

/// Efficiency loss caused by operating `dv` volts away from the MPP
/// (the worse of the two directions).
///
/// This is the mapping the paper applies in §II-B: a 7.7 mV (desk) /
/// 14.7 mV (semi-mobile) MPP-voltage estimation error "equates to an
/// efficiency loss of less than 1 %".
///
/// # Errors
///
/// Propagates solver errors.
pub fn efficiency_loss_for_voltage_error(
    cell: &PvCell,
    lux: Lux,
    dv: Volts,
) -> Result<Ratio, PvError> {
    let mpp = cell.mpp(lux)?;
    if mpp.power.value() <= 0.0 {
        return Ok(Ratio::ZERO);
    }
    let lo = (mpp.voltage - dv.abs()).max(Volts::ZERO);
    let hi = mpp.voltage + dv.abs();
    let p_lo = cell.power_at(lo, lux)?;
    let p_hi = cell.power_at(hi.min(mpp.open_circuit_voltage), lux)?;
    let worst = p_lo.min(p_hi);
    Ok(Ratio::new((1.0 - (worst / mpp.power)).clamp(0.0, 1.0)))
}

/// Converts an error in the *open-circuit voltage* estimate to the error
/// in the *MPP voltage* estimate via Eq. (1): `ΔVmpp = k · ΔVoc`.
///
/// The paper applies exactly this scaling: 12.7 mV Voc error → ≈7.7 mV
/// MPP error (k ≈ 0.6).
pub fn mpp_error_from_voc_error(voc_error: Volts, k: Ratio) -> Volts {
    voc_error * k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn factor_profile_is_weakly_intensity_dependent() {
        let cell = presets::sanyo_am1815();
        let profile =
            factor_profile(&cell, [200.0, 500.0, 1000.0, 2000.0, 5000.0].map(Lux::new)).unwrap();
        let ks: Vec<f64> = profile.iter().map(|(_, k)| k.value()).collect();
        let spread = ks.iter().cloned().fold(f64::MIN, f64::max)
            - ks.iter().cloned().fold(f64::MAX, f64::min);
        // §II-A: "weak correlation between k and light intensity" — the
        // spread over a 25x intensity range stays small.
        assert!(spread < 0.1, "k spread = {spread}");
    }

    #[test]
    fn recommended_factor_is_mean() {
        let cell = presets::sanyo_am1815();
        let k = recommended_factor(&cell, [200.0, 1000.0].map(Lux::new)).unwrap();
        let p = factor_profile(&cell, [200.0, 1000.0].map(Lux::new)).unwrap();
        let mean = (p[0].1.value() + p[1].1.value()) / 2.0;
        assert!((k.value() - mean).abs() < 1e-12);
    }

    #[test]
    fn recommended_factor_rejects_empty() {
        let cell = presets::sanyo_am1815();
        assert!(recommended_factor(&cell, std::iter::empty()).is_err());
    }

    #[test]
    fn efficiency_is_one_at_mpp_and_lower_elsewhere() {
        let cell = presets::sanyo_am1815();
        let lux = Lux::new(1000.0);
        let mpp = cell.mpp(lux).unwrap();
        let at_mpp = efficiency_at_voltage(&cell, mpp.voltage, lux).unwrap();
        assert!(at_mpp.value() > 0.999);
        let off = efficiency_at_voltage(&cell, mpp.voltage * 0.7, lux).unwrap();
        assert!(off < at_mpp);
        let dark = efficiency_at_voltage(&cell, mpp.voltage, Lux::ZERO).unwrap();
        assert_eq!(dark, Ratio::ZERO);
    }

    #[test]
    fn small_voltage_error_costs_under_one_percent() {
        // §II-B: the worst measured MPP-voltage error (14.7 mV) maps to
        // an efficiency loss below 1 %.
        let cell = presets::sanyo_am1815();
        for lux in [200.0, 1000.0] {
            let loss =
                efficiency_loss_for_voltage_error(&cell, Lux::new(lux), Volts::from_milli(14.7))
                    .unwrap();
            assert!(
                loss.as_percent() < 1.0,
                "loss at {lux} lx = {loss} for 14.7 mV error"
            );
        }
    }

    #[test]
    fn large_voltage_error_costs_more() {
        let cell = presets::sanyo_am1815();
        let small =
            efficiency_loss_for_voltage_error(&cell, Lux::new(1000.0), Volts::from_milli(10.0))
                .unwrap();
        let large =
            efficiency_loss_for_voltage_error(&cell, Lux::new(1000.0), Volts::new(1.0)).unwrap();
        assert!(large.value() > small.value() * 10.0);
    }

    #[test]
    fn voc_to_mpp_error_scaling() {
        let dv = mpp_error_from_voc_error(Volts::from_milli(12.7), Ratio::new(0.6));
        assert!((dv.as_milli() - 7.62).abs() < 0.1);
    }
}
