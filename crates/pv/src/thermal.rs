//! Temperature-coefficient extraction.
//!
//! §IV-A notes the bench could not exceed 5000 lux "without causing
//! excessive heating of the PV cell" — temperature is the other axis
//! (besides illuminance) along which the operating point moves. These
//! helpers extract the thermal coefficients a designer quotes:
//! `dVoc/dT` (the a-Si datasheet class is −0.2…−0.4 %/K) and the drift
//! of the MPP voltage, which bounds the error of any fixed-reference
//! technique over an operating temperature range.

use eh_units::{Celsius, Lux, Ratio};

use crate::cell::PvCell;
use crate::error::PvError;

/// `dVoc/dT` in volts per kelvin at the given operating point,
/// estimated by a symmetric finite difference of ±5 K.
///
/// # Errors
///
/// Propagates solver errors.
///
/// ```
/// use eh_pv::{presets, thermal};
/// use eh_units::Lux;
///
/// let c = thermal::voc_temperature_coefficient(&presets::sanyo_am1815(), Lux::new(1000.0))?;
/// // a-Si stacks lose tens of millivolts per kelvin (8 junctions in series).
/// assert!(c < 0.0 && c > -0.05);
/// # Ok::<(), eh_pv::PvError>(())
/// ```
pub fn voc_temperature_coefficient(cell: &PvCell, lux: Lux) -> Result<f64, PvError> {
    let base = cell.temperature();
    let dt = 5.0;
    let hot = cell.clone().with_temperature(base + dt);
    let cold = cell.clone().with_temperature(base - dt);
    let v_hot = hot.open_circuit_voltage(lux)?;
    let v_cold = cold.open_circuit_voltage(lux)?;
    Ok((v_hot - v_cold).value() / (2.0 * dt))
}

/// `dVmpp/dT` in volts per kelvin (same finite difference).
///
/// # Errors
///
/// Propagates solver errors.
pub fn vmpp_temperature_coefficient(cell: &PvCell, lux: Lux) -> Result<f64, PvError> {
    let base = cell.temperature();
    let dt = 5.0;
    let hot = cell.clone().with_temperature(base + dt);
    let cold = cell.clone().with_temperature(base - dt);
    let v_hot = hot.mpp(lux)?.voltage;
    let v_cold = cold.mpp(lux)?.voltage;
    Ok((v_hot - v_cold).value() / (2.0 * dt))
}

/// The worst-case harvest efficiency of a *fixed* reference voltage
/// (tuned at `tune_at`) across an operating temperature span, versus
/// perfect tracking — the error budget a fixed-voltage design must carry
/// and the FOCV technique does not.
///
/// # Errors
///
/// Propagates solver errors; rejects an empty temperature list.
pub fn fixed_reference_worst_capture(
    cell: &PvCell,
    lux: Lux,
    tune_at: Celsius,
    span: &[Celsius],
) -> Result<Ratio, PvError> {
    if span.is_empty() {
        return Err(PvError::InvalidParameter {
            name: "span",
            value: 0.0,
        });
    }
    let reference = cell.clone().with_temperature(tune_at).mpp(lux)?.voltage;
    let mut worst: f64 = 1.0;
    for &t in span {
        let at_t = cell.clone().with_temperature(t);
        let mpp = at_t.mpp(lux)?;
        if mpp.power.value() <= 0.0 {
            continue;
        }
        let p = at_t.power_at(reference.min(mpp.open_circuit_voltage), lux)?;
        worst = worst.min(p.value() / mpp.power.value());
    }
    Ok(Ratio::new(worst.clamp(0.0, 1.0)))
}

/// Convenience: the same worst-case capture for the FOCV technique
/// (which re-measures `Voc` at temperature, so only the `k` mismatch
/// remains).
///
/// # Errors
///
/// Propagates solver errors; rejects an empty temperature list.
pub fn focv_worst_capture(
    cell: &PvCell,
    lux: Lux,
    k: f64,
    span: &[Celsius],
) -> Result<Ratio, PvError> {
    if span.is_empty() {
        return Err(PvError::InvalidParameter {
            name: "span",
            value: 0.0,
        });
    }
    let mut worst: f64 = 1.0;
    for &t in span {
        let at_t = cell.clone().with_temperature(t);
        let mpp = at_t.mpp(lux)?;
        if mpp.power.value() <= 0.0 {
            continue;
        }
        let voc = at_t.open_circuit_voltage(lux)?;
        let p = at_t.power_at((voc * k).min(voc), lux)?;
        worst = worst.min(p.value() / mpp.power.value());
    }
    Ok(Ratio::new(worst.clamp(0.0, 1.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn voc_coefficient_is_negative_mv_per_k() {
        let cell = presets::sanyo_am1815();
        let c = voc_temperature_coefficient(&cell, Lux::new(1000.0)).unwrap();
        // 8-junction a-Si stack: roughly −10…−30 mV/K overall.
        assert!(c < -0.005 && c > -0.04, "dVoc/dT = {c} V/K");
    }

    #[test]
    fn vmpp_moves_less_than_voc() {
        // The photo-shunt pins the MPP, so its drift is smaller than the
        // open-circuit drift — the property Ablation 6 shows.
        let cell = presets::sanyo_am1815();
        let dvoc = voc_temperature_coefficient(&cell, Lux::new(1000.0)).unwrap();
        let dvmpp = vmpp_temperature_coefficient(&cell, Lux::new(1000.0)).unwrap();
        assert!(dvmpp.abs() < dvoc.abs(), "dVmpp {dvmpp} vs dVoc {dvoc}");
    }

    #[test]
    fn both_techniques_capture_well_on_amorphous() {
        let cell = presets::sanyo_am1815();
        let span: Vec<Celsius> = [0.0, 15.0, 25.0, 40.0, 60.0].map(Celsius::new).to_vec();
        let fixed =
            fixed_reference_worst_capture(&cell, Lux::new(1000.0), Celsius::new(25.0), &span)
                .unwrap();
        let focv = focv_worst_capture(&cell, Lux::new(1000.0), 0.596, &span).unwrap();
        assert!(fixed.value() > 0.9, "fixed worst capture {fixed}");
        assert!(focv.value() > 0.9, "FOCV worst capture {focv}");
    }

    #[test]
    fn crystalline_fixed_reference_suffers_more() {
        // c-Si Vmpp is diode-dominated, so it walks with temperature and
        // a fixed reference tuned at 25 °C pays for it at the extremes.
        let cell = presets::crystalline_outdoor();
        let span: Vec<Celsius> = [0.0, 25.0, 60.0].map(Celsius::new).to_vec();
        let fixed =
            fixed_reference_worst_capture(&cell, Lux::new(50_000.0), Celsius::new(25.0), &span)
                .unwrap();
        let focv = focv_worst_capture(&cell, Lux::new(50_000.0), 0.78, &span).unwrap();
        assert!(
            focv.value() > fixed.value(),
            "FOCV {focv} must beat fixed {fixed} on c-Si over temperature"
        );
    }

    #[test]
    fn empty_span_rejected() {
        let cell = presets::sanyo_am1815();
        assert!(
            fixed_reference_worst_capture(&cell, Lux::new(1000.0), Celsius::new(25.0), &[])
                .is_err()
        );
        assert!(focv_worst_capture(&cell, Lux::new(1000.0), 0.6, &[]).is_err());
    }
}
