//! Arrays of PV modules: series strings with bypass diodes and parallel
//! banks, including partial shading.
//!
//! The paper evaluates one small module, but its target applications
//! (body-worn and mobile sensors) routinely shade part of the collector.
//! A partially shaded series string with bypass diodes has a *multi-hump*
//! power curve, which is the classic failure mode of single-point
//! techniques: FOCV (and hill climbing) can lock onto a local maximum.
//! This module provides the substrate to quantify that.

use eh_units::{Amps, Kelvin, Lux, Volts, Watts};

use crate::cell::PvCell;
use crate::error::PvError;
use crate::mpp::MppPoint;

/// One module of a series string together with its local illuminance
/// scale (1.0 = full scene illuminance, 0.2 = 80 % shaded).
#[derive(Debug, Clone)]
pub struct StringElement {
    cell: PvCell,
    shade_factor: f64,
}

impl StringElement {
    /// Creates an element with a shading factor in `(0, 1]`.
    ///
    /// # Errors
    ///
    /// Rejects factors outside `(0, 1]`.
    pub fn new(cell: PvCell, shade_factor: f64) -> Result<Self, PvError> {
        if !(shade_factor.is_finite() && shade_factor > 0.0 && shade_factor <= 1.0) {
            return Err(PvError::InvalidParameter {
                name: "shade_factor",
                value: shade_factor,
            });
        }
        Ok(Self { cell, shade_factor })
    }

    fn local_lux(&self, scene: Lux) -> Lux {
        scene * self.shade_factor
    }
}

/// A series string of PV modules, each with an ideal bypass diode.
///
/// With bypass diodes a module that cannot carry the string current is
/// clamped at `−V_bypass` instead of reverse-biasing, which creates the
/// characteristic staircase I-V curve under partial shading.
///
/// ```
/// use eh_pv::array::{SeriesString, StringElement};
/// use eh_pv::presets;
/// use eh_units::{Lux, Volts};
///
/// let string = SeriesString::new(vec![
///     StringElement::new(presets::sanyo_am1815(), 1.0)?,
///     StringElement::new(presets::sanyo_am1815(), 0.3)?, // shaded module
/// ], Volts::from_milli(350.0))?;
/// let i = string.current_at(Volts::new(5.0), Lux::new(1000.0))?;
/// assert!(i.value() > 0.0);
/// # Ok::<(), eh_pv::PvError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SeriesString {
    elements: Vec<StringElement>,
    bypass_drop: Volts,
}

impl SeriesString {
    /// Creates a string from its elements and the bypass diode forward
    /// drop.
    ///
    /// # Errors
    ///
    /// Rejects an empty string or a negative bypass drop.
    pub fn new(elements: Vec<StringElement>, bypass_drop: Volts) -> Result<Self, PvError> {
        if elements.is_empty() {
            return Err(PvError::InvalidParameter {
                name: "elements",
                value: 0.0,
            });
        }
        if !(bypass_drop.value().is_finite() && bypass_drop.value() >= 0.0) {
            return Err(PvError::InvalidParameter {
                name: "bypass_drop",
                value: bypass_drop.value(),
            });
        }
        Ok(Self {
            elements,
            bypass_drop,
        })
    }

    /// Number of series modules.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the string has no modules (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// String voltage at a given shared current: each module contributes
    /// its own voltage at that current, clamped at the bypass diode.
    ///
    /// # Errors
    ///
    /// Propagates cell solver errors.
    pub fn voltage_at_current(&self, i: Amps, scene: Lux) -> Result<Volts, PvError> {
        let mut total = 0.0;
        for el in &self.elements {
            let lux = el.local_lux(scene);
            let v = Self::module_voltage_at_current(&el.cell, i, lux)?;
            // Bypass diode conducts when the module would go negative.
            total += v.value().max(-self.bypass_drop.value());
        }
        Ok(Volts::new(total))
    }

    /// Inverse of the module's I(V): the voltage at which the module
    /// carries current `i` (negative if it cannot) — a direct Newton
    /// solve on the diode equation.
    fn module_voltage_at_current(cell: &PvCell, i: Amps, lux: Lux) -> Result<Volts, PvError> {
        if i.value() <= 0.0 {
            return cell.open_circuit_voltage(lux);
        }
        cell.voltage_at_current(i, lux)
    }

    /// String current at a terminal voltage, solving the implicit
    /// string equation by bisection on the shared current.
    ///
    /// # Errors
    ///
    /// Propagates cell solver errors; rejects negative voltage.
    pub fn current_at(&self, v: Volts, scene: Lux) -> Result<Amps, PvError> {
        if v.value() < 0.0 {
            return Err(PvError::OutOfRange {
                what: "string voltage",
                value: v.value(),
            });
        }
        // The maximum possible current is the best module's Isc.
        let mut i_max = 0.0f64;
        for el in &self.elements {
            let isc = el.cell.short_circuit_current(el.local_lux(scene))?;
            i_max = i_max.max(isc.value());
        }
        if i_max <= 0.0 {
            return Ok(Amps::ZERO);
        }
        // V(I) is strictly decreasing in I: bisect.
        let (mut lo, mut hi) = (0.0, i_max);
        if self.voltage_at_current(Amps::new(lo), scene)?.value() <= v.value() {
            return Ok(Amps::ZERO); // terminal voltage at or above string Voc
        }
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            let vm = self.voltage_at_current(Amps::new(mid), scene)?;
            if vm.value() > v.value() {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(Amps::new(0.5 * (lo + hi)))
    }

    /// String open-circuit voltage.
    ///
    /// # Errors
    ///
    /// Propagates cell solver errors.
    pub fn open_circuit_voltage(&self, scene: Lux) -> Result<Volts, PvError> {
        self.voltage_at_current(Amps::ZERO, scene)
    }

    /// Global maximum power point, found by a fine scan plus golden
    /// refinement (the power curve may be multi-modal under partial
    /// shading, so a plain golden section is not sufficient).
    ///
    /// # Errors
    ///
    /// Propagates cell solver errors.
    pub fn global_mpp(&self, scene: Lux, _t: Kelvin) -> Result<MppPoint, PvError> {
        let voc = self.open_circuit_voltage(scene)?;
        if voc.value() <= 0.0 {
            return Ok(MppPoint {
                voltage: Volts::ZERO,
                current: Amps::ZERO,
                power: Watts::ZERO,
                open_circuit_voltage: Volts::ZERO,
            });
        }
        const SCAN: usize = 160;
        let mut best_v = 0.0;
        let mut best_p = -1.0;
        for n in 0..=SCAN {
            let v = voc.value() * n as f64 / SCAN as f64;
            let i = self.current_at(Volts::new(v), scene)?;
            let p = v * i.value();
            if p > best_p {
                best_p = p;
                best_v = v;
            }
        }
        // Local refinement around the best scan point.
        let span = voc.value() / SCAN as f64;
        let (mut lo, mut hi) = ((best_v - span).max(0.0), (best_v + span).min(voc.value()));
        for _ in 0..40 {
            let m1 = lo + (hi - lo) / 3.0;
            let m2 = hi - (hi - lo) / 3.0;
            let p1 = m1 * self.current_at(Volts::new(m1), scene)?.value();
            let p2 = m2 * self.current_at(Volts::new(m2), scene)?.value();
            if p1 < p2 {
                lo = m1;
            } else {
                hi = m2;
            }
        }
        let v = Volts::new(0.5 * (lo + hi));
        let i = self.current_at(v, scene)?;
        Ok(MppPoint {
            voltage: v,
            current: i,
            power: v * i,
            open_circuit_voltage: voc,
        })
    }

    /// Power of the string when operated FOCV-style at `k · Voc` —
    /// to compare against [`SeriesString::global_mpp`] under shading.
    ///
    /// # Errors
    ///
    /// Propagates cell solver errors.
    pub fn power_at_focv(&self, k: f64, scene: Lux) -> Result<Watts, PvError> {
        let voc = self.open_circuit_voltage(scene)?;
        let v = voc * k;
        let i = self.current_at(v, scene)?;
        Ok(v * i)
    }
}

/// A parallel bank of series strings: all strings share the terminal
/// voltage and their currents add — the other composition axis of a
/// larger collector (e.g. two AM-1815s side by side on a wearable).
#[derive(Debug, Clone)]
pub struct ParallelBank {
    strings: Vec<SeriesString>,
}

impl ParallelBank {
    /// Creates a bank from its strings.
    ///
    /// # Errors
    ///
    /// Rejects an empty bank.
    pub fn new(strings: Vec<SeriesString>) -> Result<Self, PvError> {
        if strings.is_empty() {
            return Err(PvError::InvalidParameter {
                name: "strings",
                value: 0.0,
            });
        }
        Ok(Self { strings })
    }

    /// Number of parallel strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the bank has no strings (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Bank current at a terminal voltage: the sum of string currents.
    ///
    /// # Errors
    ///
    /// Propagates string solver errors.
    pub fn current_at(&self, v: Volts, scene: Lux) -> Result<Amps, PvError> {
        let mut total = 0.0;
        for s in &self.strings {
            total += s.current_at(v, scene)?.value();
        }
        Ok(Amps::new(total))
    }

    /// Bank open-circuit voltage: the highest string Voc (the brighter
    /// string back-feeds the dimmer one up to its own Voc; blocking
    /// diodes are assumed, so no reverse current flows).
    ///
    /// # Errors
    ///
    /// Propagates string solver errors.
    pub fn open_circuit_voltage(&self, scene: Lux) -> Result<Volts, PvError> {
        let mut best = Volts::ZERO;
        for s in &self.strings {
            best = best.max(s.open_circuit_voltage(scene)?);
        }
        Ok(best)
    }

    /// Global maximum power point of the bank (scan + refinement, since
    /// mismatched strings can produce multi-modal curves).
    ///
    /// # Errors
    ///
    /// Propagates string solver errors.
    pub fn global_mpp(&self, scene: Lux, _t: Kelvin) -> Result<MppPoint, PvError> {
        let voc = self.open_circuit_voltage(scene)?;
        if voc.value() <= 0.0 {
            return Ok(MppPoint {
                voltage: Volts::ZERO,
                current: Amps::ZERO,
                power: Watts::ZERO,
                open_circuit_voltage: Volts::ZERO,
            });
        }
        const SCAN: usize = 120;
        let mut best_v = 0.0;
        let mut best_p = -1.0;
        for n in 0..=SCAN {
            let v = voc.value() * n as f64 / SCAN as f64;
            let p = v * self.current_at(Volts::new(v), scene)?.value();
            if p > best_p {
                best_p = p;
                best_v = v;
            }
        }
        let span = voc.value() / SCAN as f64;
        let (mut lo, mut hi) = ((best_v - span).max(0.0), (best_v + span).min(voc.value()));
        for _ in 0..40 {
            let m1 = lo + (hi - lo) / 3.0;
            let m2 = hi - (hi - lo) / 3.0;
            let p1 = m1 * self.current_at(Volts::new(m1), scene)?.value();
            let p2 = m2 * self.current_at(Volts::new(m2), scene)?.value();
            if p1 < p2 {
                lo = m1;
            } else {
                hi = m2;
            }
        }
        let v = Volts::new(0.5 * (lo + hi));
        let i = self.current_at(v, scene)?;
        Ok(MppPoint {
            voltage: v,
            current: i,
            power: v * i,
            open_circuit_voltage: voc,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn uniform_string(n: usize) -> SeriesString {
        SeriesString::new(
            (0..n)
                .map(|_| StringElement::new(presets::sanyo_am1815(), 1.0).unwrap())
                .collect(),
            Volts::from_milli(350.0),
        )
        .unwrap()
    }

    #[test]
    fn validation() {
        assert!(SeriesString::new(vec![], Volts::ZERO).is_err());
        assert!(StringElement::new(presets::sanyo_am1815(), 0.0).is_err());
        assert!(StringElement::new(presets::sanyo_am1815(), 1.5).is_err());
        assert!(SeriesString::new(
            vec![StringElement::new(presets::sanyo_am1815(), 1.0).unwrap()],
            Volts::new(-0.1)
        )
        .is_err());
    }

    #[test]
    fn uniform_string_voc_scales_with_length() {
        let lux = Lux::new(1000.0);
        let single = presets::sanyo_am1815().open_circuit_voltage(lux).unwrap();
        let s3 = uniform_string(3).open_circuit_voltage(lux).unwrap();
        assert!(
            (s3.value() - 3.0 * single.value()).abs() < 0.01,
            "3-string Voc {s3} vs 3×{single}"
        );
    }

    #[test]
    fn uniform_string_power_scales_with_length() {
        let lux = Lux::new(1000.0);
        let p1 = presets::sanyo_am1815().mpp(lux).unwrap().power;
        let p3 = uniform_string(3)
            .global_mpp(lux, Kelvin::STC)
            .unwrap()
            .power;
        let ratio = p3.value() / p1.value();
        assert!((ratio - 3.0).abs() < 0.1, "power ratio {ratio}");
    }

    #[test]
    fn current_monotone_in_voltage() {
        let s = uniform_string(2);
        let lux = Lux::new(800.0);
        let mut prev = f64::INFINITY;
        for n in 0..12 {
            let v = Volts::new(n as f64);
            let i = s.current_at(v, lux).unwrap().value();
            assert!(i <= prev + 1e-12);
            prev = i;
        }
    }

    #[test]
    fn shaded_string_loses_power() {
        let lux = Lux::new(1000.0);
        let clean = uniform_string(3)
            .global_mpp(lux, Kelvin::STC)
            .unwrap()
            .power;
        let shaded = SeriesString::new(
            vec![
                StringElement::new(presets::sanyo_am1815(), 1.0).unwrap(),
                StringElement::new(presets::sanyo_am1815(), 1.0).unwrap(),
                StringElement::new(presets::sanyo_am1815(), 0.25).unwrap(),
            ],
            Volts::from_milli(350.0),
        )
        .unwrap()
        .global_mpp(lux, Kelvin::STC)
        .unwrap()
        .power;
        assert!(shaded < clean);
        assert!(
            shaded.value() > 0.3 * clean.value(),
            "bypass keeps most power"
        );
    }

    #[test]
    fn focv_suffers_under_partial_shading() {
        // The known FOCV limitation: under heavy partial shading the
        // single k·Voc point can sit far from the global maximum.
        let lux = Lux::new(1000.0);
        let shaded = SeriesString::new(
            vec![
                StringElement::new(presets::sanyo_am1815(), 1.0).unwrap(),
                StringElement::new(presets::sanyo_am1815(), 0.15).unwrap(),
            ],
            Volts::from_milli(350.0),
        )
        .unwrap();
        let gmpp = shaded.global_mpp(lux, Kelvin::STC).unwrap().power;
        let focv = shaded.power_at_focv(0.596, lux).unwrap();
        let capture = focv.value() / gmpp.value();
        assert!(
            capture < 0.95,
            "shading must cost FOCV something: capture = {capture}"
        );
        // And on an unshaded string FOCV stays close to the global MPP.
        let clean = uniform_string(2);
        let clean_capture = clean.power_at_focv(0.596, lux).unwrap().value()
            / clean.global_mpp(lux, Kelvin::STC).unwrap().power.value();
        assert!(clean_capture > 0.9, "clean capture = {clean_capture}");
        assert!(clean_capture > capture);
    }

    #[test]
    fn dark_string_is_dead() {
        let s = uniform_string(2);
        assert_eq!(
            s.global_mpp(Lux::ZERO, Kelvin::STC).unwrap().power,
            Watts::ZERO
        );
    }

    #[test]
    fn parallel_bank_validation() {
        assert!(ParallelBank::new(vec![]).is_err());
        let bank = ParallelBank::new(vec![uniform_string(1)]).unwrap();
        assert_eq!(bank.len(), 1);
        assert!(!bank.is_empty());
    }

    #[test]
    fn parallel_currents_add() {
        let lux = Lux::new(1000.0);
        let single = uniform_string(1);
        let bank = ParallelBank::new(vec![uniform_string(1), uniform_string(1)]).unwrap();
        let v = Volts::new(3.0);
        let i1 = single.current_at(v, lux).unwrap();
        let i2 = bank.current_at(v, lux).unwrap();
        assert!((i2.value() - 2.0 * i1.value()).abs() < 1e-9);
    }

    #[test]
    fn parallel_bank_power_scales() {
        let lux = Lux::new(1000.0);
        let p1 = uniform_string(1)
            .global_mpp(lux, Kelvin::STC)
            .unwrap()
            .power;
        let bank = ParallelBank::new(vec![uniform_string(1), uniform_string(1)]).unwrap();
        let p2 = bank.global_mpp(lux, Kelvin::STC).unwrap().power;
        let ratio = p2.value() / p1.value();
        assert!((ratio - 2.0).abs() < 0.05, "ratio = {ratio}");
        // Same Voc as one string.
        let voc1 = uniform_string(1).open_circuit_voltage(lux).unwrap();
        let voc2 = bank.open_circuit_voltage(lux).unwrap();
        assert!((voc1.value() - voc2.value()).abs() < 1e-6);
    }

    #[test]
    fn mismatched_bank_takes_the_higher_voc() {
        let lux = Lux::new(1000.0);
        let dim = SeriesString::new(
            vec![StringElement::new(presets::sanyo_am1815(), 0.2).unwrap()],
            Volts::from_milli(350.0),
        )
        .unwrap();
        let bright = uniform_string(1);
        let voc_bright = bright.open_circuit_voltage(lux).unwrap();
        let bank = ParallelBank::new(vec![dim, bright]).unwrap();
        let voc_bank = bank.open_circuit_voltage(lux).unwrap();
        assert!((voc_bank.value() - voc_bright.value()).abs() < 1e-9);
    }
}
