//! Single-diode equivalent-circuit model with an illumination-proportional
//! shunt ("photo-shunt"), the variant that fits amorphous-silicon cells.

use eh_units::{thermal_voltage, Amps, Kelvin, Lux, Ohms, Volts, K_OVER_Q};

use crate::error::PvError;

/// Single-diode PV model:
///
/// ```text
/// I = Iph(G,T) − I0(T)·(exp((V + I·Rs)/b(T)) − 1) − (V + I·Rs)/Rsh(G)
/// ```
///
/// where `b(T) = Ns·n·Vt(T)` is the composite thermal slope of the series
/// junction stack and `Rsh(G) = Rsh_ref·G_ref/G` is the photo-shunt: in
/// a-Si cells the dominant shunt mechanism is recombination of
/// photo-generated carriers, so the effective shunt conductance scales
/// with illumination. This term is what keeps the FOCV fraction
/// `k = Vmpp/Voc` approximately constant across light intensities —
/// the property Eq. (1) of the paper exploits — where a fixed ohmic shunt
/// would make `k` collapse toward the crystalline value at high light.
///
/// # Examples
///
/// ```
/// use eh_pv::SingleDiodeModel;
/// use eh_units::{Kelvin, Lux};
///
/// let m = SingleDiodeModel::builder("demo")
///     .junctions(8)
///     .ideality(1.66)
///     .saturation_current_amps(6.7e-12)
///     .photocurrent_per_lux_amps(4.19e-7)
///     .photo_shunt_ohms(75_092.0, 200.0)
///     .series_resistance_ohms(209.0)
///     .build()?;
/// let isc = m.short_circuit_current(Lux::new(200.0), Kelvin::STC)?;
/// assert!(isc.as_micro() > 40.0);
/// # Ok::<(), eh_pv::PvError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SingleDiodeModel {
    name: String,
    /// Number of series-connected junctions in the module.
    junctions: u32,
    /// Per-junction diode ideality factor.
    ideality: f64,
    /// Diode reverse saturation current at the reference temperature.
    saturation_current_ref: Amps,
    /// Photocurrent per lux at the reference temperature.
    photocurrent_per_lux: f64,
    /// Shunt resistance at `shunt_ref_illuminance`.
    photo_shunt_ref: Ohms,
    /// Illuminance at which `photo_shunt_ref` applies.
    shunt_ref_illuminance: Lux,
    /// Series resistance.
    series_resistance: Ohms,
    /// Bandgap in eV (a-Si ≈ 1.7), used for `I0(T)` scaling.
    bandgap_ev: f64,
    /// Relative photocurrent temperature coefficient, per kelvin.
    photocurrent_temp_coeff: f64,
    /// Reference temperature for all `_ref` parameters.
    reference_temperature: Kelvin,
    /// Active area in cm² (informational; used for efficiency reporting).
    area_cm2: f64,
}

/// Builder for [`SingleDiodeModel`] (C-BUILDER).
#[derive(Debug, Clone)]
pub struct SingleDiodeModelBuilder {
    name: String,
    junctions: u32,
    ideality: f64,
    saturation_current_ref: f64,
    photocurrent_per_lux: f64,
    photo_shunt_ref: f64,
    shunt_ref_illuminance: f64,
    series_resistance: f64,
    bandgap_ev: f64,
    photocurrent_temp_coeff: f64,
    reference_temperature: Kelvin,
    area_cm2: f64,
}

impl SingleDiodeModelBuilder {
    /// Sets the number of series junctions.
    pub fn junctions(mut self, n: u32) -> Self {
        self.junctions = n;
        self
    }

    /// Sets the per-junction ideality factor.
    pub fn ideality(mut self, n: f64) -> Self {
        self.ideality = n;
        self
    }

    /// Sets the reverse saturation current in amps at the reference
    /// temperature.
    pub fn saturation_current_amps(mut self, i0: f64) -> Self {
        self.saturation_current_ref = i0;
        self
    }

    /// Sets the photocurrent generated per lux of illuminance, in amps.
    pub fn photocurrent_per_lux_amps(mut self, c: f64) -> Self {
        self.photocurrent_per_lux = c;
        self
    }

    /// Sets the photo-shunt: `rsh` ohms at `at_lux` lux, scaling as
    /// `Rsh(G) = rsh · at_lux / G`.
    pub fn photo_shunt_ohms(mut self, rsh: f64, at_lux: f64) -> Self {
        self.photo_shunt_ref = rsh;
        self.shunt_ref_illuminance = at_lux;
        self
    }

    /// Sets the series resistance in ohms.
    pub fn series_resistance_ohms(mut self, rs: f64) -> Self {
        self.series_resistance = rs;
        self
    }

    /// Sets the bandgap in electron-volts (default 1.7, a-Si).
    pub fn bandgap_ev(mut self, eg: f64) -> Self {
        self.bandgap_ev = eg;
        self
    }

    /// Sets the relative photocurrent temperature coefficient per kelvin
    /// (default `9e-4`).
    pub fn photocurrent_temp_coeff(mut self, alpha: f64) -> Self {
        self.photocurrent_temp_coeff = alpha;
        self
    }

    /// Sets the reference temperature (default [`Kelvin::STC`]).
    pub fn reference_temperature(mut self, t: Kelvin) -> Self {
        self.reference_temperature = t;
        self
    }

    /// Sets the active area in cm² (informational).
    pub fn area_cm2(mut self, a: f64) -> Self {
        self.area_cm2 = a;
        self
    }

    /// Validates parameters and builds the model.
    ///
    /// # Errors
    ///
    /// Returns [`PvError::InvalidParameter`] if any parameter is
    /// non-positive or non-finite where a positive value is required.
    pub fn build(self) -> Result<SingleDiodeModel, PvError> {
        fn positive(name: &'static str, v: f64) -> Result<f64, PvError> {
            if v.is_finite() && v > 0.0 {
                Ok(v)
            } else {
                Err(PvError::InvalidParameter { name, value: v })
            }
        }
        fn non_negative(name: &'static str, v: f64) -> Result<f64, PvError> {
            if v.is_finite() && v >= 0.0 {
                Ok(v)
            } else {
                Err(PvError::InvalidParameter { name, value: v })
            }
        }
        if self.junctions == 0 {
            return Err(PvError::InvalidParameter {
                name: "junctions",
                value: 0.0,
            });
        }
        Ok(SingleDiodeModel {
            name: self.name,
            junctions: self.junctions,
            ideality: positive("ideality", self.ideality)?,
            saturation_current_ref: Amps::new(positive(
                "saturation_current",
                self.saturation_current_ref,
            )?),
            photocurrent_per_lux: positive("photocurrent_per_lux", self.photocurrent_per_lux)?,
            photo_shunt_ref: Ohms::new(positive("photo_shunt", self.photo_shunt_ref)?),
            shunt_ref_illuminance: Lux::new(positive(
                "shunt_ref_illuminance",
                self.shunt_ref_illuminance,
            )?),
            series_resistance: Ohms::new(non_negative(
                "series_resistance",
                self.series_resistance,
            )?),
            bandgap_ev: positive("bandgap_ev", self.bandgap_ev)?,
            photocurrent_temp_coeff: non_negative(
                "photocurrent_temp_coeff",
                self.photocurrent_temp_coeff,
            )?,
            reference_temperature: self.reference_temperature,
            area_cm2: positive("area_cm2", self.area_cm2)?,
        })
    }
}

impl SingleDiodeModel {
    /// Starts building a model with the given display name.
    pub fn builder(name: impl Into<String>) -> SingleDiodeModelBuilder {
        SingleDiodeModelBuilder {
            name: name.into(),
            junctions: 1,
            ideality: 1.5,
            saturation_current_ref: 1e-12,
            photocurrent_per_lux: 2e-7,
            photo_shunt_ref: 1e5,
            shunt_ref_illuminance: 200.0,
            series_resistance: 100.0,
            bandgap_ev: 1.7,
            photocurrent_temp_coeff: 9e-4,
            reference_temperature: Kelvin::STC,
            area_cm2: 25.0,
        }
    }

    /// The model's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Active area in cm².
    pub fn area_cm2(&self) -> f64 {
        self.area_cm2
    }

    /// Series resistance.
    pub fn series_resistance(&self) -> Ohms {
        self.series_resistance
    }

    /// Composite thermal slope `b(T) = Ns·n·Vt(T)` of the junction stack.
    pub fn thermal_slope(&self, t: Kelvin) -> Volts {
        thermal_voltage(t) * (self.junctions as f64 * self.ideality)
    }

    /// Diode saturation current at temperature `t`, using the standard
    /// `I0(T) = I0_ref·(T/Tref)³·exp((Eg/(n·k/q))·(1/Tref − 1/T))` scaling.
    pub fn saturation_current(&self, t: Kelvin) -> Amps {
        let tref = self.reference_temperature.value();
        let tt = t.value();
        let ratio = tt / tref;
        let exp_arg = self.bandgap_ev / (self.ideality * K_OVER_Q) * (1.0 / tref - 1.0 / tt);
        self.saturation_current_ref * (ratio.powi(3) * exp_arg.exp())
    }

    /// Photocurrent at the given illuminance and temperature.
    pub fn photocurrent(&self, lux: Lux, t: Kelvin) -> Amps {
        let dt = t.value() - self.reference_temperature.value();
        Amps::new(
            self.photocurrent_per_lux * lux.value() * (1.0 + self.photocurrent_temp_coeff * dt),
        )
    }

    /// Effective shunt resistance at the given illuminance (photo-shunt).
    ///
    /// At zero illuminance the shunt is effectively open (capped at
    /// 10 GΩ) — the dark cell leaks only through the diode.
    pub fn shunt_resistance(&self, lux: Lux) -> Ohms {
        const RSH_DARK_CAP: f64 = 1e10;
        if lux.value() <= 0.0 {
            return Ohms::new(RSH_DARK_CAP);
        }
        let rsh = self.photo_shunt_ref.value() * self.shunt_ref_illuminance.value() / lux.value();
        Ohms::new(rsh.min(RSH_DARK_CAP))
    }

    /// Terminal current at terminal voltage `v`, solving the implicit
    /// single-diode equation by bisection (the residual is strictly
    /// monotone in `I`, so bisection is globally convergent).
    ///
    /// # Errors
    ///
    /// Returns [`PvError::OutOfRange`] for negative `v` and
    /// [`PvError::SolveFailed`] if the root cannot be bracketed.
    pub fn current_at(&self, v: Volts, lux: Lux, t: Kelvin) -> Result<Amps, PvError> {
        if !v.is_finite() || v.value() < 0.0 {
            return Err(PvError::OutOfRange {
                what: "terminal voltage",
                value: v.value(),
            });
        }
        if !lux.is_finite() || lux.value() < 0.0 {
            return Err(PvError::OutOfRange {
                what: "illuminance",
                value: lux.value(),
            });
        }
        let iph = self.photocurrent(lux, t).value();
        let i0 = self.saturation_current(t).value();
        let b = self.thermal_slope(t).value();
        let rs = self.series_resistance.value();
        let rsh = self.shunt_resistance(lux).value();
        let vv = v.value();

        let residual = |i: f64| -> f64 {
            let vj = vv + i * rs;
            iph - i0 * exp_m1_clamped(vj / b) - vj / rsh - i
        };

        // Bracket the root. residual() is strictly decreasing in i.
        let mut hi = iph * 1.5 + 1e-9;
        if residual(hi) > 0.0 {
            // Should not happen (residual(iph·1.5) ≤ −0.5·iph), but expand
            // defensively for tiny iph.
            for _ in 0..60 {
                hi *= 2.0;
                if residual(hi) <= 0.0 {
                    break;
                }
            }
        }
        let mut lo = -1e-6;
        let mut expand = 0;
        while residual(lo) < 0.0 {
            lo *= 2.0;
            expand += 1;
            if expand > 80 {
                return Err(PvError::SolveFailed { what: "current" });
            }
        }
        // Bisect.
        let mut flo = residual(lo);
        for _ in 0..100 {
            let mid = 0.5 * (lo + hi);
            let fm = residual(mid);
            if flo * fm <= 0.0 {
                hi = mid;
            } else {
                lo = mid;
                flo = fm;
            }
        }
        Ok(Amps::new(0.5 * (lo + hi)))
    }

    /// Terminal voltage at which the cell carries current `i` — the
    /// inverse of [`SingleDiodeModel::current_at`], solved directly on
    /// the junction voltage `W = V + I·Rs` (the residual
    /// `I0·expm1(W/b) + W/Rsh − (Iph − I)` is strictly increasing in
    /// `W`, so safeguarded Newton converges in a handful of steps).
    ///
    /// For currents above the short-circuit current the cell cannot
    /// reach a non-negative voltage; the returned value is negative
    /// (clamped at −10 V), which array code interprets as "bypass".
    ///
    /// # Errors
    ///
    /// Returns [`PvError::OutOfRange`] for negative illuminance or a
    /// non-finite current.
    pub fn voltage_at_current(&self, i: Amps, lux: Lux, t: Kelvin) -> Result<Volts, PvError> {
        if !lux.is_finite() || lux.value() < 0.0 {
            return Err(PvError::OutOfRange {
                what: "illuminance",
                value: lux.value(),
            });
        }
        if !i.is_finite() {
            return Err(PvError::OutOfRange {
                what: "current",
                value: i.value(),
            });
        }
        let iph = self.photocurrent(lux, t).value();
        let i0 = self.saturation_current(t).value();
        let b = self.thermal_slope(t).value();
        let rs = self.series_resistance.value();
        let rsh = self.shunt_resistance(lux).value();
        let target = iph - i.value();

        const W_FLOOR: f64 = -10.0;
        let g = |w: f64| i0 * exp_m1_clamped(w / b) + w / rsh - target;
        let dg = |w: f64| i0 / b * exp_clamped(w / b) + 1.0 / rsh;

        // Bracket: g is increasing; find [lo, hi] with g(lo) ≤ 0 ≤ g(hi).
        let mut hi = if target > 0.0 {
            b * (target / i0 + 1.0).ln() + 0.5
        } else {
            0.5
        };
        let mut guard = 0;
        while g(hi) < 0.0 {
            hi += b;
            guard += 1;
            if guard > 200 {
                return Err(PvError::SolveFailed { what: "voltage" });
            }
        }
        let mut lo = W_FLOOR;
        if g(lo) > 0.0 {
            return Ok(Volts::new(W_FLOOR - i.value() * rs));
        }
        // Safeguarded Newton.
        let mut w = hi.min((target * rsh).clamp(W_FLOOR, hi));
        for _ in 0..60 {
            let gv = g(w);
            if gv > 0.0 {
                hi = w;
            } else {
                lo = w;
            }
            let mut next = w - gv / dg(w);
            if !(next > lo && next < hi) {
                next = 0.5 * (lo + hi);
            }
            if (next - w).abs() < 1e-13 {
                w = next;
                break;
            }
            w = next;
        }
        Ok(Volts::new(w - i.value() * rs))
    }

    /// Open-circuit voltage at the given illuminance and temperature.
    ///
    /// Solves `Iph = I0·expm1(Voc/b) + Voc/Rsh` (at `I = 0` the series
    /// resistance drops out) by safeguarded Newton iteration.
    ///
    /// # Errors
    ///
    /// Returns [`PvError::OutOfRange`] for negative illuminance. At zero
    /// illuminance the open-circuit voltage is zero.
    pub fn open_circuit_voltage(&self, lux: Lux, t: Kelvin) -> Result<Volts, PvError> {
        if !lux.is_finite() || lux.value() < 0.0 {
            return Err(PvError::OutOfRange {
                what: "illuminance",
                value: lux.value(),
            });
        }
        let iph = self.photocurrent(lux, t).value();
        if iph <= 0.0 {
            return Ok(Volts::ZERO);
        }
        let i0 = self.saturation_current(t).value();
        let b = self.thermal_slope(t).value();
        let rsh = self.shunt_resistance(lux).value();

        let g = |v: f64| iph - i0 * exp_m1_clamped(v / b) - v / rsh;
        let dg = |v: f64| -i0 / b * exp_clamped(v / b) - 1.0 / rsh;

        // Bracket: g(0) = iph > 0; expand hi until g(hi) < 0.
        let mut hi = b * (iph / i0 + 1.0).ln() + 0.1;
        let mut guard = 0;
        while g(hi) > 0.0 {
            hi += b;
            guard += 1;
            if guard > 200 {
                return Err(PvError::SolveFailed { what: "voc" });
            }
        }
        let mut lo = 0.0;
        let mut v = hi * 0.9;
        for _ in 0..80 {
            let gv = g(v);
            if gv > 0.0 {
                lo = v;
            } else {
                hi = v;
            }
            let step = gv / dg(v);
            let mut next = v - step;
            if !(next > lo && next < hi) {
                next = 0.5 * (lo + hi);
            }
            if (next - v).abs() < 1e-12 {
                return Ok(Volts::new(next));
            }
            v = next;
        }
        Ok(Volts::new(v))
    }

    /// Short-circuit current.
    ///
    /// # Errors
    ///
    /// Propagates solver errors from [`SingleDiodeModel::current_at`].
    pub fn short_circuit_current(&self, lux: Lux, t: Kelvin) -> Result<Amps, PvError> {
        self.current_at(Volts::ZERO, lux, t)
    }
}

/// `exp(x) − 1` with the argument clamped to avoid overflow.
#[inline]
fn exp_m1_clamped(x: f64) -> f64 {
    x.min(500.0).exp_m1()
}

/// `exp(x)` with the argument clamped to avoid overflow.
#[inline]
fn exp_clamped(x: f64) -> f64 {
    x.min(500.0).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn am1815_like() -> SingleDiodeModel {
        SingleDiodeModel::builder("test-cell")
            .junctions(8)
            .ideality(1.6614)
            .saturation_current_amps(6.737_13e-12)
            .photocurrent_per_lux_amps(4.187_2e-7)
            .photo_shunt_ohms(75_092.2, 200.0)
            .series_resistance_ohms(208.746)
            .area_cm2(25.0)
            .build()
            .expect("valid parameters")
    }

    #[test]
    fn builder_rejects_bad_parameters() {
        let err = SingleDiodeModel::builder("bad")
            .ideality(-1.0)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            PvError::InvalidParameter {
                name: "ideality",
                ..
            }
        ));
        let err = SingleDiodeModel::builder("bad")
            .saturation_current_amps(0.0)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            PvError::InvalidParameter {
                name: "saturation_current",
                ..
            }
        ));
        let err = SingleDiodeModel::builder("bad")
            .junctions(0)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            PvError::InvalidParameter {
                name: "junctions",
                ..
            }
        ));
        let err = SingleDiodeModel::builder("bad")
            .series_resistance_ohms(f64::NAN)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            PvError::InvalidParameter {
                name: "series_resistance",
                ..
            }
        ));
    }

    #[test]
    fn zero_series_resistance_is_allowed() {
        let m = SingleDiodeModel::builder("ideal-ish")
            .series_resistance_ohms(0.0)
            .build()
            .unwrap();
        assert_eq!(m.series_resistance(), Ohms::ZERO);
        assert!(m
            .current_at(Volts::new(1.0), Lux::new(500.0), Kelvin::STC)
            .is_ok());
    }

    #[test]
    fn current_monotone_decreasing_in_voltage() {
        let m = am1815_like();
        let lux = Lux::new(500.0);
        let mut prev = f64::INFINITY;
        for step in 0..30 {
            let v = Volts::new(step as f64 * 0.2);
            let i = m.current_at(v, lux, Kelvin::STC).unwrap().value();
            assert!(i < prev, "I(V) must strictly decrease: {i} !< {prev}");
            prev = i;
        }
    }

    #[test]
    fn voc_is_current_zero_crossing() {
        let m = am1815_like();
        for lux in [200.0, 1000.0, 5000.0] {
            let lux = Lux::new(lux);
            let voc = m.open_circuit_voltage(lux, Kelvin::STC).unwrap();
            let i = m.current_at(voc, lux, Kelvin::STC).unwrap();
            assert!(
                i.value().abs() < 1e-9,
                "I(Voc) should be ~0, got {} at {lux}",
                i
            );
        }
    }

    #[test]
    fn voc_matches_table1_calibration() {
        let m = am1815_like();
        // (lux, Voc from Table I of the paper, tolerance)
        for (lux, voc_paper) in [
            (200.0, 4.978),
            (500.0, 5.242),
            (1000.0, 5.44),
            (2000.0, 5.64),
            (5000.0, 5.91),
        ] {
            let voc = m
                .open_circuit_voltage(Lux::new(lux), Kelvin::STC)
                .unwrap()
                .value();
            let rel = (voc - voc_paper).abs() / voc_paper;
            assert!(
                rel < 0.02,
                "Voc({lux} lx) = {voc:.3} vs paper {voc_paper} (rel {rel:.3})"
            );
        }
    }

    #[test]
    fn voc_grows_logarithmically() {
        let m = am1815_like();
        let v1 = m
            .open_circuit_voltage(Lux::new(200.0), Kelvin::STC)
            .unwrap();
        let v2 = m
            .open_circuit_voltage(Lux::new(2000.0), Kelvin::STC)
            .unwrap();
        let v3 = m
            .open_circuit_voltage(Lux::new(20_000.0), Kelvin::STC)
            .unwrap();
        let d12 = (v2 - v1).value();
        let d23 = (v3 - v2).value();
        // Per-decade increments should be similar (log law), within 40 %.
        assert!((d12 - d23).abs() / d12 < 0.4, "d12={d12}, d23={d23}");
    }

    #[test]
    fn isc_scales_linearly_with_lux() {
        let m = am1815_like();
        let i1 = m
            .short_circuit_current(Lux::new(100.0), Kelvin::STC)
            .unwrap();
        let i2 = m
            .short_circuit_current(Lux::new(200.0), Kelvin::STC)
            .unwrap();
        let ratio = i2.value() / i1.value();
        assert!((ratio - 2.0).abs() < 0.05, "ratio = {ratio}");
    }

    #[test]
    fn dark_cell_produces_nothing() {
        let m = am1815_like();
        let voc = m.open_circuit_voltage(Lux::ZERO, Kelvin::STC).unwrap();
        assert_eq!(voc, Volts::ZERO);
        let isc = m.short_circuit_current(Lux::ZERO, Kelvin::STC).unwrap();
        assert!(isc.value().abs() < 1e-12);
    }

    #[test]
    fn negative_inputs_are_rejected() {
        let m = am1815_like();
        assert!(m
            .current_at(Volts::new(-0.1), Lux::new(100.0), Kelvin::STC)
            .is_err());
        assert!(m
            .current_at(Volts::new(1.0), Lux::new(-5.0), Kelvin::STC)
            .is_err());
        assert!(m.open_circuit_voltage(Lux::new(-1.0), Kelvin::STC).is_err());
    }

    #[test]
    fn warmer_cell_has_lower_voc() {
        let m = am1815_like();
        let cold = m
            .open_circuit_voltage(Lux::new(1000.0), Kelvin::new(283.15))
            .unwrap();
        let hot = m
            .open_circuit_voltage(Lux::new(1000.0), Kelvin::new(323.15))
            .unwrap();
        assert!(
            hot < cold,
            "Voc must fall with temperature: hot={hot}, cold={cold}"
        );
    }

    #[test]
    fn saturation_current_grows_with_temperature() {
        let m = am1815_like();
        let i_cold = m.saturation_current(Kelvin::new(288.15));
        let i_hot = m.saturation_current(Kelvin::new(308.15));
        assert!(i_hot.value() > i_cold.value() * 2.0);
    }

    #[test]
    fn photo_shunt_scales_inversely() {
        let m = am1815_like();
        let r200 = m.shunt_resistance(Lux::new(200.0));
        let r400 = m.shunt_resistance(Lux::new(400.0));
        assert!((r200.value() / r400.value() - 2.0).abs() < 1e-9);
        // Dark cap.
        assert!(m.shunt_resistance(Lux::ZERO).value() >= 1e9);
    }
}
