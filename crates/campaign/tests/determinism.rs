//! Campaign determinism contract, mirroring the fleet layer's
//! `batch_equivalence` suite: a [`CampaignReport`] is a pure function
//! of the spec — bit-identical across worker counts and shard sizes —
//! and prefix-stable in fleet size, because every per-node input
//! stream (population, schedules, weather) is order-pinned.

use eh_campaign::{CampaignContext, CampaignReport, CampaignRunner, CampaignSpec};
use eh_units::Seconds;
use proptest::prelude::*;

/// A fast campaign: a handful of nodes, two short epochs, 30-minute
/// step. Small enough for proptest, heterogeneous enough to exercise
/// drift, weather and (at the reference probability) faults.
fn tiny_spec(nodes: u32, seed: u64) -> CampaignSpec {
    let mut spec = CampaignSpec::smoke(seed);
    spec.nodes = nodes;
    spec.days = 8;
    spec.epoch_days = 4;
    spec.dt = Seconds::new(1800.0);
    spec
}

fn assert_reports_identical(a: &CampaignReport, b: &CampaignReport, what: &str) {
    assert_eq!(a.outcomes.len(), b.outcomes.len(), "{what}: node count");
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x, y, "{what}: node {} diverged", x.id);
    }
    assert_eq!(a, b, "{what}: aggregate diverged");
}

#[test]
fn report_is_bit_identical_across_workers_and_shard_sizes() {
    for seed in [2011_u64, 7] {
        let ctx = CampaignContext::prepare(&tiny_spec(12, seed)).unwrap();
        let reference = CampaignRunner::new(1).run_prepared(&ctx).unwrap();
        for workers in [1_usize, 2, 4] {
            for shard_size in [1_usize, 5, 32] {
                let candidate = CampaignRunner::new(workers)
                    .with_shard_size(shard_size)
                    .run_prepared(&ctx)
                    .unwrap();
                assert_reports_identical(
                    &reference,
                    &candidate,
                    &format!("seed {seed}, {workers} workers, shard {shard_size}"),
                );
            }
        }
    }
}

#[test]
fn report_is_prefix_stable_in_fleet_size() {
    // The first 8 nodes of a 20-node campaign are exactly the 8-node
    // campaign: population (9 draws/node), schedules (6 draws/node) and
    // weather (1 draw/day, node-independent) are all order-pinned.
    let small = CampaignRunner::new(2).run(&tiny_spec(8, 42)).unwrap();
    let large = CampaignRunner::new(2).run(&tiny_spec(20, 42)).unwrap();
    assert_eq!(small.outcomes[..], large.outcomes[..8]);
}

#[test]
fn rerunning_a_prepared_context_is_idempotent() {
    let ctx = CampaignContext::prepare(&tiny_spec(6, 99)).unwrap();
    let a = CampaignRunner::new(3).run_prepared(&ctx).unwrap();
    let b = CampaignRunner::new(3).run_prepared(&ctx).unwrap();
    assert_reports_identical(&a, &b, "rerun");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any seed and any worker/shard pairing, the campaign report
    /// matches the single-worker reference bit for bit.
    #[test]
    fn any_seed_any_sharding_is_bit_identical(
        seed in 0..u64::MAX,
        workers in 1..5usize,
        shard_size in 1..40usize,
    ) {
        let ctx = CampaignContext::prepare(&tiny_spec(6, seed)).expect("prepare");
        let reference = CampaignRunner::new(1).run_prepared(&ctx).expect("reference");
        let candidate = CampaignRunner::new(workers)
            .with_shard_size(shard_size)
            .run_prepared(&ctx)
            .expect("candidate");
        prop_assert_eq!(&reference, &candidate);
    }

    /// Prefix stability holds for any seed and any fleet-size pair.
    #[test]
    fn any_seed_is_prefix_stable(seed in 0..u64::MAX, extra in 1..12u32) {
        let small = CampaignRunner::new(2).run(&tiny_spec(4, seed)).expect("small");
        let large = CampaignRunner::new(2)
            .run(&tiny_spec(4 + extra, seed))
            .expect("large");
        prop_assert_eq!(&small.outcomes[..], &large.outcomes[..4]);
    }
}
