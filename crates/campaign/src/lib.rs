//! Multi-year endurance campaigns for the DATE 2011 MPPT reproduction.
//!
//! The paper validates its 7.6 µA FOCV tracker on 24-hour logs; this
//! crate asks the question the paper could not: does the design stay
//! alive over *simulated years* of seasons, weather, dust, aging,
//! storage wear and outright faults? A [`CampaignSpec`] describes the
//! deployment (fleet size and seed, latitude and climate, load class,
//! drift rates, fault plan); the [`CampaignRunner`] chains the fleet
//! through degradation epochs — carrying every node's store energy
//! across epoch boundaries — and aggregates survival percentiles and
//! time-to-first-brownout into a [`CampaignReport`] that is
//! bit-identical at any worker count, like every other layer of the
//! reproduction.
//!
//! # Quickstart
//!
//! ```
//! use eh_campaign::{CampaignRunner, CampaignSpec};
//! use eh_units::Seconds;
//!
//! let mut spec = CampaignSpec::smoke(2011);
//! spec.nodes = 4;
//! spec.days = 6;
//! spec.epoch_days = 3;
//! spec.dt = Seconds::new(1800.0);
//! let report = CampaignRunner::new(2).run(&spec)?;
//! assert_eq!(report.nodes(), 4);
//! println!("{report}");
//! # Ok::<(), eh_campaign::CampaignError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod environment;
mod error;
pub mod report;
pub mod run;
pub mod schedule;
pub mod spec;

pub use error::CampaignError;
pub use report::{CampaignNodeOutcome, CampaignReport};
pub use run::{CampaignContext, CampaignRunner};
pub use schedule::{node_schedules, FaultKind, NodeSchedule};
pub use spec::{CampaignSpec, Climate, DriftRates, FaultPlan, LoadClass};
