//! Epoch trace synthesis: seasonal sky × weather × indoor light.
//!
//! Fleet runs use the paper-faithful 24-hour office/semi-mobile logs;
//! campaigns instead synthesise one multi-day trace per placement per
//! epoch directly on the simulation grid:
//!
//! * **outdoor** — the day's [`SeasonalSolar`] clear-sky curve times the
//!   day's weather attenuation;
//! * **window desk** — a weekday office lamp rectangle plus 15 % of the
//!   weather-attenuated outdoor daylight;
//! * **interior desk** — the same lamp plus only 2 % of daylight.
//!
//! The synthesis is a pure function of `(season, attenuations, epoch)`,
//! so every shard and worker sees byte-identical traces.

use eh_env::season::SeasonalSolar;
use eh_env::TimeSeries;
use eh_units::Seconds;

use crate::error::CampaignError;

/// Office lamp illuminance while on (weekdays 08:00–18:00), in lux.
const LAMP_LUX: f64 = 450.0;
/// Fraction of outdoor daylight reaching the window desk.
const WINDOW_DAYLIGHT: f64 = 0.15;
/// Fraction of outdoor daylight reaching the interior desk.
const INTERIOR_DAYLIGHT: f64 = 0.02;

/// Whether a campaign day index is a working weekday (days 0–4 of each
/// 7-day cycle; the campaign calendar starts on a Monday).
fn is_weekday(day: u32) -> bool {
    day % 7 < 5
}

/// Synthesises the per-placement traces of one epoch on the `dt` grid,
/// indexed by [`eh_fleet::Placement::index`]: window desk, interior
/// desk, outdoor. Placements not in `in_use` stay `None`.
///
/// `attenuations` holds one weather factor per **campaign** day;
/// `epoch_start` is the epoch's first campaign day, which is also the
/// day-of-year cursor into `season` (campaigns start on January 1st).
///
/// # Errors
///
/// Propagates [`SeasonalSolar::solar_day`] and trace construction;
/// rejects an `attenuations` slice shorter than the epoch.
pub fn epoch_traces(
    season: &SeasonalSolar,
    attenuations: &[f64],
    epoch_start: u32,
    epoch_days: u32,
    dt: Seconds,
    in_use: [bool; 3],
) -> Result<[Option<TimeSeries>; 3], CampaignError> {
    let end = epoch_start as usize + epoch_days as usize;
    if attenuations.len() < end {
        return Err(CampaignError::InvalidSpec {
            name: "attenuations_len",
            value: attenuations.len() as f64,
        });
    }
    // Per-day sky for the epoch, built once.
    let mut days = Vec::with_capacity(epoch_days as usize);
    for d in 0..epoch_days {
        let global = epoch_start + d;
        days.push((
            season.solar_day(global)?,
            attenuations[global as usize],
            is_weekday(global),
        ));
    }

    let day_s = 86_400.0;
    let steps_per_day = (day_s / dt.value()).round() as usize;
    let n = steps_per_day * epoch_days as usize + 1;

    let mut outdoor = Vec::with_capacity(n);
    let mut window = Vec::with_capacity(n);
    let mut interior = Vec::with_capacity(n);
    for i in 0..n {
        let t = i as f64 * dt.value();
        let local_day = ((t / day_s) as usize).min(epoch_days as usize - 1);
        let tod = t - local_day as f64 * day_s;
        let (solar, att, weekday) = &days[local_day];
        let sun = solar.illuminance(Seconds::new(tod)).value() * att;
        let lamp = if *weekday && (8.0 * 3600.0..18.0 * 3600.0).contains(&tod) {
            LAMP_LUX
        } else {
            0.0
        };
        outdoor.push(sun);
        window.push(lamp + WINDOW_DAYLIGHT * sun);
        interior.push(lamp + INTERIOR_DAYLIGHT * sun);
    }

    let build = |used: bool, values: Vec<f64>| -> Result<Option<TimeSeries>, CampaignError> {
        if used {
            Ok(Some(TimeSeries::new(Seconds::ZERO, dt, values)?))
        } else {
            Ok(None)
        }
    };
    Ok([
        build(in_use[0], window)?,
        build(in_use[1], interior)?,
        build(in_use[2], outdoor)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn season() -> SeasonalSolar {
        SeasonalSolar::temperate_uk().unwrap()
    }

    #[test]
    fn traces_cover_the_epoch_on_the_dt_grid() {
        let atts = vec![1.0; 30];
        let dt = Seconds::new(600.0);
        let [w, i, o] = epoch_traces(&season(), &atts, 0, 13, dt, [true; 3]).unwrap();
        for t in [w, i, o] {
            let t = t.unwrap();
            assert_eq!(t.len(), 13 * 144 + 1);
            assert!((t.duration().value() - 13.0 * 86_400.0).abs() < 1e-6);
        }
    }

    #[test]
    fn weather_attenuates_daylight_but_not_the_lamp() {
        let dt = Seconds::new(600.0);
        let clear = epoch_traces(&season(), &[1.0; 7], 0, 1, dt, [true; 3]).unwrap();
        let storm = epoch_traces(&season(), &[0.12; 7], 0, 1, dt, [true; 3]).unwrap();
        // Noon, day 0 (a weekday): sample index 72 at dt = 600.
        let noon = 72;
        let out_clear = clear[2].as_ref().unwrap().sample(noon).unwrap();
        let out_storm = storm[2].as_ref().unwrap().sample(noon).unwrap();
        assert!((out_storm - 0.12 * out_clear).abs() < 1e-9);
        // The interior desk is lamp-dominated: the storm barely moves it.
        let int_clear = clear[1].as_ref().unwrap().sample(noon).unwrap();
        let int_storm = storm[1].as_ref().unwrap().sample(noon).unwrap();
        assert!(int_clear > LAMP_LUX);
        assert!(int_storm >= LAMP_LUX);
        assert!(int_clear - int_storm < 0.02 * out_clear);
    }

    #[test]
    fn weekends_have_no_lamp() {
        let dt = Seconds::new(600.0);
        // Days 5 and 6 are the weekend of the first week.
        let [_, interior, outdoor] =
            epoch_traces(&season(), &[1.0; 7], 5, 1, dt, [true; 3]).unwrap();
        let noon = 72;
        let i = interior.unwrap().sample(noon).unwrap();
        let o = outdoor.unwrap().sample(noon).unwrap();
        assert!(
            (i - INTERIOR_DAYLIGHT * o).abs() < 1e-9,
            "lamp on at weekend"
        );
    }

    #[test]
    fn winter_epochs_are_darker_than_summer_epochs() {
        let dt = Seconds::new(600.0);
        let atts = vec![1.0; 400];
        let summer = epoch_traces(&season(), &atts, 170, 5, dt, [false, false, true]).unwrap();
        let winter = epoch_traces(&season(), &atts, 350, 5, dt, [false, false, true]).unwrap();
        let energy = |t: &TimeSeries| t.values().iter().sum::<f64>();
        assert!(energy(summer[2].as_ref().unwrap()) > 2.0 * energy(winter[2].as_ref().unwrap()));
    }

    #[test]
    fn unused_placements_stay_none_and_short_atts_error() {
        let dt = Seconds::new(600.0);
        let out = epoch_traces(&season(), &[1.0; 7], 0, 2, dt, [false, true, false]).unwrap();
        assert!(out[0].is_none() && out[2].is_none() && out[1].is_some());
        assert!(epoch_traces(&season(), &[1.0; 3], 0, 7, dt, [true; 3]).is_err());
    }

    #[test]
    fn synthesis_is_deterministic() {
        let dt = Seconds::new(600.0);
        let a = epoch_traces(&season(), &[0.35; 20], 7, 6, dt, [true; 3]).unwrap();
        let b = epoch_traces(&season(), &[0.35; 20], 7, 6, dt, [true; 3]).unwrap();
        assert_eq!(a, b);
    }
}
