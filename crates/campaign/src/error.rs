//! Campaign-layer errors.

use std::fmt;

use eh_env::EnvError;
use eh_fleet::FleetError;
use eh_node::NodeError;

/// Errors raised while planning or running an endurance campaign.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CampaignError {
    /// A campaign parameter failed validation.
    InvalidSpec {
        /// Which parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A fleet-layer failure (population, context, simulation).
    Fleet(FleetError),
    /// An environment synthesis failure (season, weather, trace).
    Env(EnvError),
    /// A node-layer failure (load or store construction).
    Node(NodeError),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::InvalidSpec { name, value } => {
                write!(f, "invalid campaign parameter `{name}`: {value}")
            }
            CampaignError::Fleet(e) => write!(f, "fleet error: {e}"),
            CampaignError::Env(e) => write!(f, "environment error: {e}"),
            CampaignError::Node(e) => write!(f, "node error: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<FleetError> for CampaignError {
    fn from(e: FleetError) -> Self {
        CampaignError::Fleet(e)
    }
}

impl From<EnvError> for CampaignError {
    fn from(e: EnvError) -> Self {
        CampaignError::Env(e)
    }
}

impl From<NodeError> for CampaignError {
    fn from(e: NodeError) -> Self {
        CampaignError::Node(e)
    }
}

impl From<eh_sim::SimError> for CampaignError {
    fn from(e: eh_sim::SimError) -> Self {
        CampaignError::Fleet(FleetError::from(e))
    }
}
