//! The campaign runner: epoch-chained fleet simulation with store
//! carry, drift and faults.
//!
//! # Execution model
//!
//! A campaign is **node-major**: the fleet is sharded across workers,
//! and each node runs *all* epochs sequentially — epoch `e+1` starts
//! from the store energy the node held at the end of epoch `e`. Drift
//! and fault state are piecewise constant within an epoch, re-derived
//! at each boundary from the node's [`NodeSchedule`] and the epoch's
//! start age, so a node's whole trajectory is a pure function of
//! `(spec, node id)` — independent of sharding, worker count and fleet
//! size. Per-node reports merge in fleet order exactly like
//! [`eh_fleet::FleetRunner`], which is what makes the
//! [`CampaignReport`] bit-identical at any worker count.
//!
//! # Seed streams
//!
//! One campaign seed feeds three order-pinned generators that never
//! share state:
//!
//! * **population** — `StdRng::seed_from_u64(seed)`, nine draws per
//!   node ([`eh_fleet::FleetSpec::population`]);
//! * **schedules** — `seed ^ SCHEDULE_SALT`, six draws per node
//!   ([`crate::schedule`]);
//! * **weather** — `seed ^ WEATHER_SALT`, one draw per simulated day
//!   ([`eh_env::weather::WeatherModel`]).

use eh_env::TracePerturbation;
use eh_fleet::{FleetContext, FleetSpec, NodeSpec, Placement, SurfacePool};
use eh_node::StoreSpec;
use eh_sim::SweepRunner;
use eh_units::{Farads, Joules, Volts};

use crate::environment::epoch_traces;
use crate::error::CampaignError;
use crate::report::{CampaignNodeOutcome, CampaignReport};
use crate::schedule::{node_schedules, FaultKind, NodeSchedule};
use crate::spec::CampaignSpec;

/// Salt XORed into the campaign seed for the weather stream (distinct
/// from the population stream and [`crate::schedule::SCHEDULE_SALT`]).
pub const WEATHER_SALT: u64 = 0x517C_C1B7_2722_0A95;

/// Default nodes per shard, matching [`eh_fleet::FleetRunner`].
const DEFAULT_SHARD_SIZE: usize = 32;

/// The prepared, immutable inputs of a campaign: the base fleet spec,
/// the drawn population and schedules, and one environment-injected
/// [`FleetContext`] per epoch (all sharing one warmed surface pool).
#[derive(Debug)]
pub struct CampaignContext {
    spec: CampaignSpec,
    epochs: Vec<(u32, u32)>,
    contexts: Vec<FleetContext>,
    population: Vec<NodeSpec>,
    schedules: Vec<NodeSchedule>,
}

impl CampaignContext {
    /// Prepares a campaign: validates the spec, draws the population
    /// and schedules, steps the weather chain once per day, synthesises
    /// each epoch's placement traces and warms one surface pool shared
    /// by every epoch context.
    ///
    /// # Errors
    ///
    /// Propagates spec validation, environment synthesis and fleet
    /// preparation failures.
    pub fn prepare(spec: &CampaignSpec) -> Result<Self, CampaignError> {
        spec.validate()?;

        // The base fleet: the reference deployment reshaped to the
        // campaign's load, step and name. `trace_decimate` is unused on
        // the environment-injected path (traces are synthesised on the
        // dt grid directly) but must stay valid.
        let mut fleet_spec = FleetSpec::mixed_indoor_outdoor(spec.nodes, spec.seed)?;
        fleet_spec.name = spec.name.clone();
        fleet_spec.load = Some(spec.load.build()?);
        fleet_spec.dt = spec.dt;

        let population = fleet_spec.population()?;
        let schedules = node_schedules(spec);

        let mut in_use = [false; 3];
        for node in &population {
            in_use[node.placement.index()] = true;
        }
        let placements = Placement::ALL.into_iter().filter(|p| in_use[p.index()]);
        let pool = SurfacePool::warm(&fleet_spec.cell, placements, fleet_spec.pv_cache)?;

        let season = spec.climate.season(spec.latitude_deg)?;
        let mut weather = spec.climate.weather(spec.seed ^ WEATHER_SALT)?;
        let attenuations = weather.attenuations(spec.days as usize);
        debug_assert_eq!(weather.draws(), u64::from(spec.days));

        let epochs = spec.epochs();
        let mut contexts = Vec::with_capacity(epochs.len());
        for &(start, len) in &epochs {
            let traces = epoch_traces(&season, &attenuations, start, len, spec.dt, in_use)?;
            contexts.push(FleetContext::prepare_with_environment(
                &fleet_spec,
                traces,
                pool.clone(),
            )?);
        }

        Ok(Self {
            spec: spec.clone(),
            epochs,
            contexts,
            population,
            schedules,
        })
    }

    /// The spec this context was prepared from.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// The epoch schedule (`(start_day, length_days)` pairs).
    pub fn epochs(&self) -> &[(u32, u32)] {
        &self.epochs
    }

    /// The drawn population, in fleet order.
    pub fn population(&self) -> &[NodeSpec] {
        &self.population
    }

    /// The drawn per-node schedules, in fleet order.
    pub fn schedules(&self) -> &[NodeSchedule] {
        &self.schedules
    }

    /// Runs one node through every epoch, carrying its store energy
    /// across boundaries, and returns its single-node report.
    ///
    /// # Errors
    ///
    /// Propagates fleet simulation failures.
    pub fn simulate_node(
        &self,
        node: &NodeSpec,
        sched: &NodeSchedule,
    ) -> Result<CampaignReport, CampaignError> {
        let spec = &self.spec;
        let base_store = self.contexts[0].spec().store;
        let mut carry: Option<Joules> = None;
        let mut first_brownout: Option<u32> = None;
        let mut brownout_epochs = 0u32;
        let mut net = 0.0;
        let mut final_store = Joules::ZERO;

        for (ctx, &(start, len)) in self.contexts.iter().zip(&self.epochs) {
            let mut unit = node.clone();

            // Drift at the epoch's start age: dust and cell aging both
            // land multiplicatively on the node's illuminance gain.
            let optics = NodeSchedule::remaining(sched.dust_per_year, start)
                * NodeSchedule::remaining(sched.aging_per_year, start);
            let mut gain = node.perturbation.gain() * optics;
            let mut offset = node.perturbation.offset_lux();

            if let Some((kind, onset)) = sched.fault {
                // Permanent faults apply from the epoch containing the
                // onset; the dropout storm only blacks out that epoch.
                let from_here = onset < start + len;
                let in_this_epoch = (start..start + len).contains(&onset);
                match kind {
                    FaultKind::StuckHoldCap if from_here => {
                        unit.sample_period = node.sample_period * 1000.0;
                    }
                    FaultKind::DividerDrift if from_here => {
                        unit.k = node.k * 1.25;
                    }
                    FaultKind::DropoutStorm if in_this_epoch => {
                        gain = 0.0;
                        offset = 0.0;
                    }
                    _ => {}
                }
            }
            unit.perturbation = TracePerturbation::new(gain, offset)?;
            unit.store = Some(worn_store(base_store, sched.wear_per_year, start, carry));

            let report = ctx.simulate_shard(spec.tracker, spec.engine, vec![unit])?;
            let outcome = &report.outcomes[0];
            net += outcome.net_energy().value();
            final_store = outcome.report.final_store_energy;
            carry = Some(final_store);

            if outcome.browned_out() {
                brownout_epochs += 1;
                if first_brownout.is_none() {
                    // Estimate the failure day from the served fraction:
                    // exact to the epoch, approximate within it.
                    let served = outcome.report.load_served.value();
                    let demand = outcome.report.load_demand.value();
                    let frac = (served / demand).clamp(0.0, 1.0);
                    let est = (frac * f64::from(len)) as u32;
                    first_brownout = Some(start + est.min(len - 1));
                }
            }
        }

        Ok(CampaignReport::single(
            &spec.name,
            spec.days,
            CampaignNodeOutcome {
                id: node.id,
                placement: node.placement,
                first_brownout_day: first_brownout,
                brownout_epochs,
                fault: sched.fault,
                net_energy: Joules::new(net),
                final_store_energy: final_store,
            },
        ))
    }
}

/// The base store aged to `age_days` of wear, optionally carrying the
/// usable energy the node held at the previous epoch's end.
///
/// Supercapacitors lose capacitance (the carried energy re-derives the
/// terminal voltage against the *worn* capacitance, clamped into the
/// usable window by the store constructor); batteries lose capacity
/// (the carry re-derives state of charge). The ideal store has no wear
/// and no carry — it exists for tracker isolation studies, not
/// endurance.
fn worn_store(
    base: StoreSpec,
    wear_per_year: f64,
    age_days: u32,
    carry: Option<Joules>,
) -> StoreSpec {
    let frac = NodeSchedule::remaining(wear_per_year, age_days);
    match base {
        StoreSpec::Supercapacitor {
            capacitance,
            v_max,
            v_min,
            initial_voltage,
        } => {
            let worn = Farads::new(capacitance.value() * frac);
            let v0 = match carry {
                None => initial_voltage,
                Some(e) => {
                    Volts::new((v_min.value().powi(2) + 2.0 * e.value() / worn.value()).sqrt())
                }
            };
            StoreSpec::Supercapacitor {
                capacitance: worn,
                v_max,
                v_min,
                initial_voltage: v0,
            }
        }
        StoreSpec::Battery {
            capacity,
            charge_efficiency,
            self_discharge_per_month,
            initial_soc,
        } => {
            let worn = Joules::new(capacity.value() * frac);
            let soc = match carry {
                None => initial_soc,
                Some(e) => (e.value() / worn.value()).clamp(0.0, 1.0),
            };
            StoreSpec::Battery {
                capacity: worn,
                charge_efficiency,
                self_discharge_per_month,
                initial_soc: soc,
            }
        }
        other => other,
    }
}

/// Shards a campaign across workers with bit-identical aggregation at
/// any worker count and shard size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignRunner {
    runner: SweepRunner,
    shard_size: usize,
}

impl CampaignRunner {
    /// A runner with a fixed worker count (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Self {
            runner: SweepRunner::new(workers),
            shard_size: DEFAULT_SHARD_SIZE,
        }
    }

    /// Overrides the nodes-per-shard grouping (clamped to at least 1).
    #[must_use]
    pub fn with_shard_size(mut self, shard_size: usize) -> Self {
        self.shard_size = shard_size.max(1);
        self
    }

    /// Prepares and runs a campaign.
    ///
    /// # Errors
    ///
    /// Propagates preparation and simulation failures.
    pub fn run(&self, spec: &CampaignSpec) -> Result<CampaignReport, CampaignError> {
        self.run_prepared(&CampaignContext::prepare(spec)?)
    }

    /// Runs a prepared campaign: nodes are sharded across workers, each
    /// node chained through every epoch, and the per-node reports folded
    /// in fleet order.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn run_prepared(&self, ctx: &CampaignContext) -> Result<CampaignReport, CampaignError> {
        let items: Vec<(NodeSpec, NodeSchedule)> = ctx
            .population
            .iter()
            .cloned()
            .zip(ctx.schedules.iter().copied())
            .collect();
        let merged = self
            .runner
            .run_merged(items, self.shard_size, |_idx, (node, sched)| {
                ctx.simulate_node(&node, &sched)
            })?;
        match merged {
            Some(report) => report,
            // Unreachable: validate() rejects zero-node campaigns.
            None => Err(CampaignError::InvalidSpec {
                name: "nodes",
                value: 0.0,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_units::Seconds;

    fn tiny_spec(nodes: u32, days: u32, epoch_days: u32, seed: u64) -> CampaignSpec {
        let mut s = CampaignSpec::smoke(seed);
        s.nodes = nodes;
        s.days = days;
        s.epoch_days = epoch_days;
        s.dt = Seconds::new(1800.0);
        s
    }

    #[test]
    fn prepare_builds_one_context_per_epoch() {
        let ctx = CampaignContext::prepare(&tiny_spec(6, 10, 4, 2011)).unwrap();
        assert_eq!(ctx.epochs(), &[(0, 4), (4, 4), (8, 2)]);
        assert_eq!(ctx.population().len(), 6);
        assert_eq!(ctx.schedules().len(), 6);
    }

    #[test]
    fn runner_produces_one_outcome_per_node_in_fleet_order() {
        let report = CampaignRunner::new(2)
            .run(&tiny_spec(6, 6, 3, 2011))
            .unwrap();
        assert_eq!(report.nodes(), 6);
        let ids: Vec<u32> = report.outcomes.iter().map(|o| o.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(report.days, 6);
    }

    #[test]
    fn worn_store_carries_energy_into_the_shrunken_window() {
        let base = StoreSpec::supercapacitor_022f_at(4.0);
        // No carry: deployment voltage, worn capacitance.
        let frac = NodeSchedule::remaining(0.1, 365);
        let fresh = worn_store(base, 0.1, 365, None);
        let StoreSpec::Supercapacitor {
            capacitance,
            initial_voltage,
            ..
        } = fresh
        else {
            panic!("kind changed")
        };
        assert!((capacitance.value() - 0.22 * frac).abs() < 1e-12);
        assert_eq!(initial_voltage.value(), 4.0);
        // Carry: the same usable energy on a smaller capacitance sits at
        // a higher terminal voltage.
        let carried = worn_store(base, 0.1, 365, Some(Joules::new(1.0)));
        let StoreSpec::Supercapacitor {
            initial_voltage: v, ..
        } = carried
        else {
            panic!("kind changed")
        };
        let expect = (1.8f64.powi(2) + 2.0 / (0.22 * frac)).sqrt();
        assert!((v.value() - expect).abs() < 1e-9);
    }

    #[test]
    fn worn_store_battery_carry_rederives_soc() {
        let base = StoreSpec::Battery {
            capacity: Joules::new(100.0),
            charge_efficiency: 0.9,
            self_discharge_per_month: 0.02,
            initial_soc: 0.5,
        };
        let carried = worn_store(base, 0.0, 0, Some(Joules::new(30.0)));
        let StoreSpec::Battery { initial_soc, .. } = carried else {
            panic!("kind changed")
        };
        assert!((initial_soc - 0.3).abs() < 1e-12);
    }

    #[test]
    fn dropout_storm_blacks_out_exactly_one_epoch() {
        let mut spec = tiny_spec(1, 9, 3, 42);
        spec.faults.probability = 1.0;
        let ctx = CampaignContext::prepare(&spec).unwrap();
        let sched = ctx.schedules()[0];
        let (kind, onset) = sched.fault.unwrap();
        // Re-run the node with the drawn fault forced to a dropout storm
        // at the drawn onset and check net energy collapses only in the
        // containing epoch relative to a fault-free run.
        let node = ctx.population()[0].clone();
        let healthy = NodeSchedule {
            fault: None,
            ..sched
        };
        let stormy = NodeSchedule {
            fault: Some((FaultKind::DropoutStorm, onset)),
            ..sched
        };
        let a = ctx.simulate_node(&node, &healthy).unwrap();
        let b = ctx.simulate_node(&node, &stormy).unwrap();
        assert!(
            b.outcomes[0].net_energy.value() < a.outcomes[0].net_energy.value(),
            "storm must cost energy (kind drawn: {})",
            kind.label()
        );
    }
}
