//! Order-independent campaign aggregation.
//!
//! Like [`eh_fleet::FleetReport`], a [`CampaignReport`] is built by
//! merging per-node reports in input order, so the aggregate — and
//! every derived survival statistic — is bit-for-bit identical at any
//! worker count and shard size.

use std::fmt;

use eh_fleet::{Percentiles, Placement};
use eh_obs::Recorder;
use eh_sim::Mergeable;
use eh_units::Joules;

use crate::schedule::FaultKind;

/// One node's endurance outcome across every epoch of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignNodeOutcome {
    /// The node's fleet index.
    pub id: u32,
    /// Where the node was deployed.
    pub placement: Placement,
    /// The first campaign day on which the node failed to serve load,
    /// if it ever did. Timing is estimated inside the failing epoch
    /// from the served-energy fraction — exact to the epoch, approximate
    /// within it (documented in DESIGN.md §13).
    pub first_brownout_day: Option<u32>,
    /// How many epochs contained at least one brownout.
    pub brownout_epochs: u32,
    /// The fault injected into this node, if any.
    pub fault: Option<(FaultKind, u32)>,
    /// Net harvested energy summed over the whole campaign.
    pub net_energy: Joules,
    /// Usable store energy at the end of the final epoch.
    pub final_store_energy: Joules,
}

impl CampaignNodeOutcome {
    /// Days survived before the first brownout (the full campaign length
    /// for survivors).
    pub fn survival_days(&self, campaign_days: u32) -> u32 {
        self.first_brownout_day.unwrap_or(campaign_days)
    }
}

/// The merged outcome of an endurance campaign: every node's outcome in
/// fleet order plus the campaign length the survival statistics are
/// measured against.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// The campaign's display name.
    pub name: String,
    /// Campaign length in simulated days.
    pub days: u32,
    /// Per-node outcomes, in fleet (input) order.
    pub outcomes: Vec<CampaignNodeOutcome>,
}

impl CampaignReport {
    /// A single-node report — the unit [`Mergeable`] folds over.
    pub fn single(name: &str, days: u32, outcome: CampaignNodeOutcome) -> Self {
        Self {
            name: name.to_owned(),
            days,
            outcomes: vec![outcome],
        }
    }

    /// Number of nodes aggregated.
    pub fn nodes(&self) -> usize {
        self.outcomes.len()
    }

    /// Nodes that never browned out.
    pub fn survivors(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.first_brownout_day.is_none())
            .count()
    }

    /// Nodes that browned out at least once.
    pub fn browned_out(&self) -> usize {
        self.nodes() - self.survivors()
    }

    /// Nodes that had a fault injected.
    pub fn faulted(&self) -> usize {
        self.outcomes.iter().filter(|o| o.fault.is_some()).count()
    }

    /// Survival-days percentiles across the whole fleet (survivors count
    /// the full campaign length).
    pub fn survival_percentiles(&self) -> Option<Percentiles> {
        Percentiles::of(
            self.outcomes
                .iter()
                .map(|o| f64::from(o.survival_days(self.days)))
                .collect(),
        )
    }

    /// Time-to-first-brownout percentiles over the nodes that browned
    /// out; `None` when every node survived.
    pub fn time_to_first_brownout_percentiles(&self) -> Option<Percentiles> {
        Percentiles::of(
            self.outcomes
                .iter()
                .filter_map(|o| o.first_brownout_day.map(f64::from))
                .collect(),
        )
    }

    /// Campaign-total net-energy percentiles, in joules.
    pub fn net_energy_percentiles(&self) -> Option<Percentiles> {
        Percentiles::of(self.outcomes.iter().map(|o| o.net_energy.value()).collect())
    }

    /// Survivors deployed at the given placement.
    pub fn survivors_at(&self, p: Placement) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.placement == p && o.first_brownout_day.is_none())
            .count()
    }

    /// Records the campaign's headline statistics into a metric store
    /// (counters `campaign.nodes` / `.survivors` / `.faulted`, gauge
    /// `campaign.survival_days_p50`).
    pub fn record_into<R: Recorder>(&self, recorder: &mut R) {
        recorder.add_counter("campaign.nodes", self.nodes() as u64);
        recorder.add_counter("campaign.survivors", self.survivors() as u64);
        recorder.add_counter("campaign.faulted", self.faulted() as u64);
        if let Some(p) = self.survival_percentiles() {
            recorder.set_gauge("campaign.survival_days_p50", p.p50);
        }
    }
}

impl Mergeable for CampaignReport {
    fn merge(&mut self, other: Self) {
        self.outcomes.extend(other.outcomes);
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "campaign `{}` — {} nodes over {} days",
            self.name,
            self.nodes(),
            self.days
        )?;
        writeln!(
            f,
            "  survivors {} / {}   faulted {}",
            self.survivors(),
            self.nodes(),
            self.faulted()
        )?;
        if let Some(p) = self.survival_percentiles() {
            writeln!(
                f,
                "  survival     p5 {:>7.1} d   p50 {:>7.1} d   p95 {:>7.1} d",
                p.p5, p.p50, p.p95
            )?;
        }
        if let Some(p) = self.time_to_first_brownout_percentiles() {
            writeln!(
                f,
                "  first brown  p5 {:>7.1} d   p50 {:>7.1} d   p95 {:>7.1} d",
                p.p5, p.p50, p.p95
            )?;
        }
        if let Some(p) = self.net_energy_percentiles() {
            writeln!(
                f,
                "  net energy   p5 {:>10.2} J   p50 {:>10.2} J   p95 {:>10.2} J",
                p.p5, p.p50, p.p95
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: u32, brown: Option<u32>) -> CampaignNodeOutcome {
        CampaignNodeOutcome {
            id,
            placement: Placement::InteriorDesk,
            first_brownout_day: brown,
            brownout_epochs: u32::from(brown.is_some()),
            fault: id
                .is_multiple_of(3)
                .then_some((FaultKind::DropoutStorm, 10)),
            net_energy: Joules::new(f64::from(id)),
            final_store_energy: Joules::ZERO,
        }
    }

    fn report(outcomes: Vec<CampaignNodeOutcome>) -> CampaignReport {
        let mut it = outcomes.into_iter();
        let mut r = CampaignReport::single("t", 100, it.next().unwrap());
        for o in it {
            r.merge(CampaignReport::single("t", 100, o));
        }
        r
    }

    #[test]
    fn merge_concatenates_in_call_order() {
        let r = report((0..5).map(|i| outcome(i, None)).collect());
        let ids: Vec<u32> = r.outcomes.iter().map(|o| o.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn survival_counts_and_percentiles() {
        let r = report(vec![
            outcome(0, None),
            outcome(1, Some(20)),
            outcome(2, Some(60)),
            outcome(3, None),
        ]);
        assert_eq!(r.survivors(), 2);
        assert_eq!(r.browned_out(), 2);
        let p = r.survival_percentiles().unwrap();
        assert_eq!(p.p5, 20.0);
        assert_eq!(p.p95, 100.0);
        let b = r.time_to_first_brownout_percentiles().unwrap();
        assert_eq!(b.p5, 20.0);
        assert_eq!(b.p95, 60.0);
    }

    #[test]
    fn all_survivors_have_no_brownout_percentiles() {
        let r = report(vec![outcome(0, None), outcome(1, None)]);
        assert!(r.time_to_first_brownout_percentiles().is_none());
        assert_eq!(r.survival_percentiles().unwrap().p50, 100.0);
    }

    #[test]
    fn record_into_emits_headline_metrics() {
        use eh_obs::Metrics;
        let r = report(vec![
            outcome(0, Some(5)),
            outcome(1, None),
            outcome(2, None),
        ]);
        let mut m = Metrics::new();
        r.record_into(&mut m);
        assert_eq!(m.counter("campaign.nodes"), 3);
        assert_eq!(m.counter("campaign.survivors"), 2);
        assert_eq!(m.counter("campaign.faulted"), 1);
        assert_eq!(m.gauge("campaign.survival_days_p50"), Some(100.0));
    }

    #[test]
    fn display_renders_survival() {
        let s = report(vec![outcome(0, Some(30)), outcome(1, None)]).to_string();
        assert!(s.contains("survivors 1 / 2"));
        assert!(s.contains("first brown"));
    }
}
