//! Campaign specifications: what to endure, for how long, under which
//! sky.
//!
//! A [`CampaignSpec`] is a complete, deterministic description of a
//! multi-year endurance run: the fleet (size, seed, tracker, engine),
//! the environment (latitude, climate), the load class, the slow drift
//! rates and the fault plan. Like [`eh_fleet::FleetSpec`], the same spec
//! always produces the same [`crate::CampaignReport`], bit for bit, at
//! any worker count.

use eh_env::season::SeasonalSolar;
use eh_env::weather::WeatherModel;
use eh_env::EnvError;
use eh_fleet::{Engine, TrackerKind};
use eh_node::{DutyCycledLoad, NodeError};
use eh_units::{Lux, Seconds};

use crate::error::CampaignError;

/// The climate regime of a deployment site: picks the weather
/// transition matrix and the seasonal clear-sky peak anchors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Climate {
    /// Temperate maritime (UK-like): sticky clear/overcast, rare storms,
    /// strong seasonality (90 klx summer / 20 klx winter anchors).
    Temperate,
    /// Monsoon wet season (Nepal-like): long storm runs, clear days
    /// scarce, moderate seasonality (105 klx / 70 klx).
    MonsoonSeason,
    /// Arid: overwhelmingly clear, weak cloud cover (110 klx / 60 klx).
    Arid,
}

impl Climate {
    /// All climates, in display order.
    pub const ALL: [Climate; 3] = [Climate::Temperate, Climate::MonsoonSeason, Climate::Arid];

    /// Stable lowercase label (also the serve-layer wire name).
    pub fn label(self) -> &'static str {
        match self {
            Climate::Temperate => "temperate",
            Climate::MonsoonSeason => "monsoon",
            Climate::Arid => "arid",
        }
    }

    /// Parses a [`Climate::label`].
    pub fn parse(s: &str) -> Option<Climate> {
        Climate::ALL.into_iter().find(|c| c.label() == s)
    }

    /// The seeded daily weather chain of this climate.
    ///
    /// # Errors
    ///
    /// Never fails for the preset matrices; the `Result` mirrors
    /// [`WeatherModel::new`].
    pub fn weather(self, seed: u64) -> Result<WeatherModel, EnvError> {
        match self {
            Climate::Temperate => WeatherModel::temperate(seed),
            Climate::MonsoonSeason => WeatherModel::monsoon_season(seed),
            Climate::Arid => WeatherModel::arid(seed),
        }
    }

    /// The seasonal clear-sky cycle of this climate at a latitude.
    ///
    /// # Errors
    ///
    /// Propagates [`SeasonalSolar::new`] (latitude beyond ±66°).
    pub fn season(self, latitude_deg: f64) -> Result<SeasonalSolar, EnvError> {
        let (summer, winter) = match self {
            Climate::Temperate => (90_000.0, 20_000.0),
            Climate::MonsoonSeason => (105_000.0, 70_000.0),
            Climate::Arid => (110_000.0, 60_000.0),
        };
        SeasonalSolar::new(latitude_deg, Lux::new(summer), Lux::new(winter))
    }
}

/// The node load class a campaign exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadClass {
    /// The paper's typical sensor node (sleep/sense/transmit).
    SensorNode,
    /// Sensor node plus a periodic receive window.
    DutyCycledRadio,
    /// Heavy intermittent actuator (PV water-pumping class).
    IntermittentMotor,
}

impl LoadClass {
    /// All load classes, in display order.
    pub const ALL: [LoadClass; 3] = [
        LoadClass::SensorNode,
        LoadClass::DutyCycledRadio,
        LoadClass::IntermittentMotor,
    ];

    /// Stable lowercase label (also the serve-layer wire name).
    pub fn label(self) -> &'static str {
        match self {
            LoadClass::SensorNode => "sensor",
            LoadClass::DutyCycledRadio => "radio",
            LoadClass::IntermittentMotor => "motor",
        }
    }

    /// Parses a [`LoadClass::label`].
    pub fn parse(s: &str) -> Option<LoadClass> {
        LoadClass::ALL.into_iter().find(|c| c.label() == s)
    }

    /// Builds the load profile.
    ///
    /// # Errors
    ///
    /// Never fails for the preset constants; the `Result` mirrors the
    /// underlying constructors.
    pub fn build(self) -> Result<DutyCycledLoad, NodeError> {
        match self {
            LoadClass::SensorNode => DutyCycledLoad::typical_sensor_node(),
            LoadClass::DutyCycledRadio => DutyCycledLoad::duty_cycled_radio(),
            LoadClass::IntermittentMotor => DutyCycledLoad::intermittent_motor(),
        }
    }
}

/// Slow degradation rates, as fractional loss **per simulated year**.
/// Each node draws a spread factor in `[0.5, 1.5]` around these rates
/// (see [`crate::schedule`]), so a fleet ages heterogeneously but
/// deterministically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftRates {
    /// Dust/soiling: fraction of optical gain lost per year.
    pub dust_per_year: f64,
    /// Cell aging: fraction of photocurrent lost per year.
    pub aging_per_year: f64,
    /// Storage wear: fraction of capacitance/capacity lost per year.
    pub store_wear_per_year: f64,
}

impl DriftRates {
    /// A plausible outdoor default: 6 %/yr dust, 1.5 %/yr cell aging,
    /// 4 %/yr storage wear.
    pub fn reference() -> Self {
        Self {
            dust_per_year: 0.06,
            aging_per_year: 0.015,
            store_wear_per_year: 0.04,
        }
    }

    /// No drift at all (isolates weather/fault effects).
    pub fn none() -> Self {
        Self {
            dust_per_year: 0.0,
            aging_per_year: 0.0,
            store_wear_per_year: 0.0,
        }
    }

    /// Validates every rate into `[0, 0.5)` — beyond 50 %/yr the
    /// "drift" is a broken part, not a degradation model.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::InvalidSpec`] naming the field.
    pub fn validate(&self) -> Result<(), CampaignError> {
        for (name, v) in [
            ("dust_per_year", self.dust_per_year),
            ("aging_per_year", self.aging_per_year),
            ("store_wear_per_year", self.store_wear_per_year),
        ] {
            if !(v.is_finite() && (0.0..0.5).contains(&v)) {
                return Err(CampaignError::InvalidSpec { name, value: v });
            }
        }
        Ok(())
    }
}

/// The fault-injection plan: what fraction of the fleet suffers one
/// fault over the campaign. Which node, which fault and when are all
/// drawn from the campaign's schedule stream (see [`crate::schedule`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability that a given node suffers one fault during the
    /// campaign, in `[0, 1]`.
    pub probability: f64,
}

impl FaultPlan {
    /// The reference plan: 15 % of nodes fault over the campaign.
    pub fn reference() -> Self {
        Self { probability: 0.15 }
    }

    /// No faults.
    pub fn none() -> Self {
        Self { probability: 0.0 }
    }

    /// Validates the probability into `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::InvalidSpec`].
    pub fn validate(&self) -> Result<(), CampaignError> {
        if !(self.probability.is_finite() && (0.0..=1.0).contains(&self.probability)) {
            return Err(CampaignError::InvalidSpec {
                name: "fault_probability",
                value: self.probability,
            });
        }
        Ok(())
    }
}

/// A complete, deterministic description of an endurance campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Display name of the campaign.
    pub name: String,
    /// Fleet size.
    pub nodes: u32,
    /// Seed fixing the population, the weather and every schedule.
    pub seed: u64,
    /// Campaign length in simulated days.
    pub days: u32,
    /// Epoch length in days: drift and fault state are piecewise
    /// constant within an epoch and re-applied at each epoch boundary
    /// (the campaign's degradation resolution). The last epoch may be
    /// shorter.
    pub epoch_days: u32,
    /// Deployment latitude in degrees (positive north), |lat| ≤ 66.
    pub latitude_deg: f64,
    /// Climate regime.
    pub climate: Climate,
    /// Node load class.
    pub load: LoadClass,
    /// Slow degradation rates.
    pub drift: DriftRates,
    /// Fault-injection plan.
    pub faults: FaultPlan,
    /// Tracker under test.
    pub tracker: TrackerKind,
    /// Fleet engine.
    pub engine: Engine,
    /// Simulation step.
    pub dt: Seconds,
}

impl CampaignSpec {
    /// The reference endurance question: `nodes` nodes for two simulated
    /// years (730 days, 73-day epochs) at 52° N temperate, duty-cycled
    /// radio load, reference drift and fault plan, FOCV on the batch
    /// engine, 600 s step.
    pub fn reference(nodes: u32, seed: u64) -> Self {
        Self {
            name: format!("endurance x{nodes} 730d temperate"),
            nodes,
            seed,
            days: 730,
            epoch_days: 73,
            latitude_deg: 52.0,
            climate: Climate::Temperate,
            load: LoadClass::DutyCycledRadio,
            drift: DriftRates::reference(),
            faults: FaultPlan::reference(),
            tracker: TrackerKind::Focv,
            engine: Engine::Batch,
            dt: Seconds::new(600.0),
        }
    }

    /// The CI smoke campaign: 48 nodes, one simulated season (91 days,
    /// 13-day epochs), otherwise the reference setting.
    pub fn smoke(seed: u64) -> Self {
        Self {
            name: "endurance smoke x48 91d temperate".to_owned(),
            nodes: 48,
            days: 91,
            epoch_days: 13,
            ..Self::reference(48, seed)
        }
    }

    /// Validates the campaign's scalar parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::InvalidSpec`] naming the field; latitude
    /// validity is checked by constructing the seasonal cycle.
    pub fn validate(&self) -> Result<(), CampaignError> {
        if self.nodes == 0 {
            return Err(CampaignError::InvalidSpec {
                name: "nodes",
                value: 0.0,
            });
        }
        if self.days == 0 {
            return Err(CampaignError::InvalidSpec {
                name: "days",
                value: 0.0,
            });
        }
        if self.epoch_days == 0 || self.epoch_days > self.days {
            return Err(CampaignError::InvalidSpec {
                name: "epoch_days",
                value: f64::from(self.epoch_days),
            });
        }
        if !(self.dt.value().is_finite() && self.dt.value() > 0.0) {
            return Err(CampaignError::InvalidSpec {
                name: "dt",
                value: self.dt.value(),
            });
        }
        // A step that does not divide the day would skew the day/night
        // alignment epoch over epoch.
        let steps_per_day = 86_400.0 / self.dt.value();
        if (steps_per_day - steps_per_day.round()).abs() > 1e-9 {
            return Err(CampaignError::InvalidSpec {
                name: "dt_divides_day",
                value: self.dt.value(),
            });
        }
        self.climate.season(self.latitude_deg)?;
        self.drift.validate()?;
        self.faults.validate()
    }

    /// The epoch schedule: `(start_day, length_days)` pairs covering
    /// `[0, days)`, every epoch `epoch_days` long except a possibly
    /// shorter final one.
    pub fn epochs(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        let mut start = 0;
        while start < self.days {
            let len = self.epoch_days.min(self.days - start);
            out.push((start, len));
            start += len;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_and_smoke_validate() {
        assert!(CampaignSpec::reference(1000, 2011).validate().is_ok());
        assert!(CampaignSpec::smoke(2011).validate().is_ok());
    }

    #[test]
    fn epochs_cover_the_campaign_exactly() {
        let mut spec = CampaignSpec::reference(10, 1);
        spec.days = 100;
        spec.epoch_days = 30;
        let epochs = spec.epochs();
        assert_eq!(epochs, vec![(0, 30), (30, 30), (60, 30), (90, 10)]);
        assert_eq!(epochs.iter().map(|(_, l)| l).sum::<u32>(), 100);
    }

    #[test]
    fn validation_rejects_bad_scalars() {
        let mut s = CampaignSpec::smoke(1);
        s.nodes = 0;
        assert!(s.validate().is_err());
        let mut s = CampaignSpec::smoke(1);
        s.days = 0;
        assert!(s.validate().is_err());
        let mut s = CampaignSpec::smoke(1);
        s.epoch_days = s.days + 1;
        assert!(s.validate().is_err());
        let mut s = CampaignSpec::smoke(1);
        s.dt = Seconds::new(7.0); // does not divide 86 400
        assert!(s.validate().is_err());
        let mut s = CampaignSpec::smoke(1);
        s.latitude_deg = 80.0;
        assert!(s.validate().is_err());
        let mut s = CampaignSpec::smoke(1);
        s.drift.dust_per_year = 0.9;
        assert!(s.validate().is_err());
        let mut s = CampaignSpec::smoke(1);
        s.faults.probability = 1.5;
        assert!(s.validate().is_err());
    }

    #[test]
    fn labels_round_trip() {
        for c in Climate::ALL {
            assert_eq!(Climate::parse(c.label()), Some(c));
        }
        for l in LoadClass::ALL {
            assert_eq!(LoadClass::parse(l.label()), Some(l));
            assert!(l.build().is_ok());
        }
        assert!(Climate::parse("hurricane").is_none());
        assert!(LoadClass::parse("toaster").is_none());
    }

    #[test]
    fn climates_build_weather_and_season() {
        for c in Climate::ALL {
            assert!(c.weather(1).is_ok());
            assert!(c.season(30.0).is_ok());
            assert!(c.season(80.0).is_err());
        }
    }
}
