//! Deterministic per-node drift and fault schedules.
//!
//! # Draw budget (order-pinning contract)
//!
//! Mirroring [`eh_fleet::FleetSpec::population`]'s nine-draws-per-node
//! contract, the schedule stream draws **exactly six** uniforms per
//! node, serially, from one generator seeded with
//! `spec.seed ^ SCHEDULE_SALT` — a stream distinct from both the
//! population stream (raw `seed`) and the weather stream (see
//! [`crate::run`]), so the three never desynchronise each other:
//!
//! | # | draw           | purpose                                        |
//! |---|----------------|------------------------------------------------|
//! | 1 | `u_dust`       | dust-rate spread factor in `[0.5, 1.5]`        |
//! | 2 | `u_aging`      | aging-rate spread factor in `[0.5, 1.5]`       |
//! | 3 | `u_wear`       | store-wear spread factor in `[0.5, 1.5]`       |
//! | 4 | `u_fault_gate` | whether this node faults at all                |
//! | 5 | `u_fault_kind` | which [`FaultKind`], by thirds                 |
//! | 6 | `u_onset`      | the fault onset day in `[1, days)`             |
//!
//! All six are drawn unconditionally *before* any branching, so node
//! `i`'s schedule is independent of every other node's outcome and the
//! schedule list is prefix-stable in fleet size — the property the
//! `determinism` integration suite pins.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::spec::CampaignSpec;

/// Salt XORed into the campaign seed for the schedule stream, so
/// schedules never share a generator with the population (raw seed) or
/// the weather (see [`crate::run`]).
pub const SCHEDULE_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// A fault a node can suffer once during a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The astable's hold capacitor sticks: the hold period stretches
    /// 1000×, so the tracker effectively stops re-sampling Voc. Applies
    /// from the epoch containing the onset, permanently.
    StuckHoldCap,
    /// The FOCV divider drifts 25 % high, mistuning the operating point.
    /// Applies from the epoch containing the onset, permanently.
    DividerDrift,
    /// A converter dropout storm: the node harvests nothing for the
    /// epoch containing the onset, then recovers.
    DropoutStorm,
}

impl FaultKind {
    /// All fault kinds, in draw order (thirds of `u_fault_kind`).
    pub const ALL: [FaultKind; 3] = [
        FaultKind::StuckHoldCap,
        FaultKind::DividerDrift,
        FaultKind::DropoutStorm,
    ];

    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::StuckHoldCap => "stuck-hold-cap",
            FaultKind::DividerDrift => "divider-drift",
            FaultKind::DropoutStorm => "dropout-storm",
        }
    }
}

/// One node's drawn endurance schedule: its personal drift rates (the
/// spec rates times a `[0.5, 1.5]` spread) and at most one fault with a
/// seeded onset day.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSchedule {
    /// Dust loss per year for this node.
    pub dust_per_year: f64,
    /// Cell aging loss per year for this node.
    pub aging_per_year: f64,
    /// Store wear per year for this node.
    pub wear_per_year: f64,
    /// The fault this node suffers, with its onset day, if any.
    pub fault: Option<(FaultKind, u32)>,
}

/// Draws the whole fleet's schedules: six uniforms per node in the
/// fixed order documented at module level.
pub fn node_schedules(spec: &CampaignSpec) -> Vec<NodeSchedule> {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ SCHEDULE_SALT);
    let mut out = Vec::with_capacity(spec.nodes as usize);
    for _ in 0..spec.nodes {
        // Fixed draw order, six per node, all before branching.
        let u_dust: f64 = rng.gen();
        let u_aging: f64 = rng.gen();
        let u_wear: f64 = rng.gen();
        let u_fault_gate: f64 = rng.gen();
        let u_fault_kind: f64 = rng.gen();
        let u_onset: f64 = rng.gen();

        let spread = |u: f64| 0.5 + u;
        let fault = if u_fault_gate < spec.faults.probability {
            let kind = FaultKind::ALL[((u_fault_kind * 3.0) as usize).min(2)];
            // Onset strictly after day 0 so every node sees at least one
            // healthy epoch start.
            let onset = 1 + (u_onset * f64::from(spec.days - 1)) as u32;
            Some((kind, onset.min(spec.days - 1).max(1)))
        } else {
            None
        };
        out.push(NodeSchedule {
            dust_per_year: spec.drift.dust_per_year * spread(u_dust),
            aging_per_year: spec.drift.aging_per_year * spread(u_aging),
            wear_per_year: spec.drift.store_wear_per_year * spread(u_wear),
            fault,
        });
    }
    out
}

impl NodeSchedule {
    /// The fraction of an initial quantity remaining after `age_days` at
    /// `rate_per_year` compound loss: `(1 − rate)^(age/365.25)`.
    pub fn remaining(rate_per_year: f64, age_days: u32) -> f64 {
        (1.0 - rate_per_year).powf(f64::from(age_days) / 365.25)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CampaignSpec;

    fn spec(nodes: u32, seed: u64) -> CampaignSpec {
        CampaignSpec {
            nodes,
            ..CampaignSpec::smoke(seed)
        }
    }

    #[test]
    fn schedules_are_a_pure_function_of_the_spec() {
        assert_eq!(node_schedules(&spec(64, 9)), node_schedules(&spec(64, 9)));
        assert_ne!(node_schedules(&spec(64, 9)), node_schedules(&spec(64, 10)));
    }

    /// Satellite-5 regression: six draws per node, unconditionally, so
    /// the first `n` schedules of a larger fleet are exactly the
    /// `n`-node fleet's schedules. A conditional draw (e.g. skipping
    /// `u_fault_kind`/`u_onset` for healthy nodes) would desynchronise
    /// every node after the first healthy one.
    #[test]
    fn schedules_are_prefix_stable_in_fleet_size() {
        let small = node_schedules(&spec(50, 7));
        let large = node_schedules(&spec(400, 7));
        assert_eq!(small[..], large[..50]);
    }

    #[test]
    fn fault_probability_gates_fault_assignment() {
        let mut s = spec(500, 3);
        s.faults.probability = 0.0;
        assert!(node_schedules(&s).iter().all(|n| n.fault.is_none()));
        s.faults.probability = 1.0;
        assert!(node_schedules(&s).iter().all(|n| n.fault.is_some()));
        s.faults.probability = 0.15;
        let count = node_schedules(&s)
            .iter()
            .filter(|n| n.fault.is_some())
            .count();
        // 500 draws at p = 0.15: expect ~75, accept a wide band.
        assert!((30..=140).contains(&count), "faulted {count}/500");
    }

    #[test]
    fn fault_onsets_stay_inside_the_campaign() {
        let mut s = spec(300, 5);
        s.faults.probability = 1.0;
        for sched in node_schedules(&s) {
            let (_, onset) = sched.fault.unwrap();
            assert!((1..s.days).contains(&onset));
        }
    }

    #[test]
    fn all_fault_kinds_appear() {
        let mut s = spec(300, 5);
        s.faults.probability = 1.0;
        let scheds = node_schedules(&s);
        for kind in FaultKind::ALL {
            assert!(
                scheds
                    .iter()
                    .any(|n| n.fault.is_some_and(|(k, _)| k == kind)),
                "{} never drawn",
                kind.label()
            );
        }
    }

    #[test]
    fn drift_spread_stays_in_band() {
        let s = spec(200, 11);
        for sched in node_schedules(&s) {
            assert!(sched.dust_per_year >= 0.5 * s.drift.dust_per_year);
            assert!(sched.dust_per_year <= 1.5 * s.drift.dust_per_year);
            assert!(sched.wear_per_year >= 0.5 * s.drift.store_wear_per_year);
            assert!(sched.wear_per_year <= 1.5 * s.drift.store_wear_per_year);
        }
    }

    #[test]
    fn remaining_is_compound_decay() {
        assert_eq!(NodeSchedule::remaining(0.0, 365), 1.0);
        let one_year = NodeSchedule::remaining(0.06, 365);
        assert!((one_year - 0.94).abs() < 1e-3);
        let two_years = NodeSchedule::remaining(0.06, 730);
        assert!((two_years - one_year * one_year).abs() < 1e-6);
    }
}
