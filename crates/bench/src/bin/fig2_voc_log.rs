//! Experiment E2 — Fig. 2 of the paper: 24-hour log of the PV module's
//! open-circuit voltage on an office desk under mixed natural and
//! artificial light. Sunrise and the end-of-day lights-off edge must be
//! identifiable. The §II-B companion logs (weekend blinds-closed desk and
//! the semi-mobile Friday) are produced too, since Eq. (2) is evaluated
//! on them.
//!
//! Run with `cargo run -p eh-bench --bin fig2_voc_log`.

use eh_bench::{banner, fmt, render_table, sparkline};
use eh_env::{profiles, TimeSeries};
use eh_pv::{presets, PvCell};
use eh_units::{Lux, Seconds};

fn voc_trace(cell: &PvCell, lux_trace: &TimeSeries) -> TimeSeries {
    lux_trace.map(|lux| {
        cell.open_circuit_voltage(Lux::new(lux.max(0.0)))
            .map(|v| v.value())
            .unwrap_or(0.0)
    })
}

fn hourly_rows(voc: &TimeSeries) -> Vec<Vec<String>> {
    (0..24)
        .map(|h| {
            let v = voc
                .value_at(Seconds::from_hours(h as f64 + 0.5))
                .unwrap_or(0.0);
            vec![format!("{h:02}:30"), fmt(v, 3)]
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cell = presets::schott_asi_1116929();
    const SEED: u64 = 2011;

    banner("Fig. 2 — 24 h open-circuit voltage, office desk (mixed light)");
    let office_lux = profiles::office_desk_mixed(SEED).decimate(60)?; // 1-min grid
    let office_voc = voc_trace(&cell, &office_lux);
    println!(
        "Voc over the day: {}",
        sparkline(
            &office_voc
                .values()
                .iter()
                .step_by(10)
                .copied()
                .collect::<Vec<_>>()
        )
    );
    println!(
        "{}",
        render_table(&["time", "Voc (V)"], &hourly_rows(&office_voc))
    );

    // The features the paper points at:
    let night = office_voc.value_at(Seconds::from_hours(3.0)).unwrap_or(0.0);
    let morning = office_voc.value_at(Seconds::from_hours(9.0)).unwrap_or(0.0);
    let before_off = office_voc
        .value_at(Seconds::from_hours(18.4))
        .unwrap_or(0.0);
    let after_off = office_voc
        .value_at(Seconds::from_hours(18.6))
        .unwrap_or(0.0);
    println!(
        "sunrise step  : {} V → {} V (03:00 → 09:00)",
        fmt(night, 2),
        fmt(morning, 2)
    );
    println!(
        "lights-off    : {} V → {} V (18:24 → 18:36) — the sharp evening edge of Fig. 2",
        fmt(before_off, 2),
        fmt(after_off, 2)
    );

    banner("§II-B companion log — weekend desk, blinds closed");
    let weekend_lux = profiles::desk_weekend_blinds_closed(SEED).decimate(60)?;
    let weekend_voc = voc_trace(&cell, &weekend_lux);
    println!(
        "Voc over the day: {}",
        sparkline(
            &weekend_voc
                .values()
                .iter()
                .step_by(10)
                .copied()
                .collect::<Vec<_>>()
        )
    );
    println!(
        "span: {} V … {} V (only the daylight leak moves it)",
        fmt(weekend_voc.min(), 2),
        fmt(weekend_voc.max(), 2)
    );

    banner("§II-B companion log — semi-mobile Friday (outdoor lunch)");
    let mobile_lux = profiles::semi_mobile_friday(SEED).decimate(60)?;
    let mobile_voc = voc_trace(&cell, &mobile_lux);
    println!(
        "Voc over the day: {}",
        sparkline(
            &mobile_voc
                .values()
                .iter()
                .step_by(10)
                .copied()
                .collect::<Vec<_>>()
        )
    );
    let lunch = mobile_voc
        .value_at(Seconds::from_hours(12.5))
        .unwrap_or(0.0);
    let desk = mobile_voc
        .value_at(Seconds::from_hours(10.0))
        .unwrap_or(0.0);
    println!(
        "outdoor lunch pushes Voc from {} V (desk) to {} V — the log-law in action",
        fmt(desk, 2),
        fmt(lunch, 2)
    );
    Ok(())
}
