//! Experiment E7 — §IV-B evaluation: cold start has been observed down to
//! 200 lux with the SANYO AM-1815 cell; after cold start the system
//! quickly generates the first PULSE; and the 8 µA sample-and-hold draw
//! is less than 20 % of what the cell produces at 200 lux.
//!
//! Run with `cargo run -p eh-bench --bin eval_cold_start`.

use eh_bench::{banner, fmt, render_table};
use eh_core::{FocvMpptSystem, SystemConfig};
use eh_units::{Lux, Seconds};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("§IV-B — cold start across light levels (dead system, 10 min budget)");

    let mut rows = Vec::new();
    for lux in [
        1.0, 2.0, 5.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 5000.0,
    ] {
        let mut sys = FocvMpptSystem::new(SystemConfig::paper_prototype()?)?;
        let report = sys.run_constant(
            Lux::new(lux),
            Seconds::from_minutes(10.0),
            Seconds::new(0.1),
        )?;
        let sustained = report.stored_energy.value() > 1e-6;
        rows.push(vec![
            fmt(lux, 0),
            match report.cold_start_time {
                Some(t) => format!("{}", t),
                None => "never".into(),
            },
            match report.first_pulse_time {
                Some(t) => format!("{}", t),
                None => "—".into(),
            },
            format!("{}", report.pulses),
            if sustained { "yes".into() } else { "no".into() },
            format!("{}", report.stored_energy),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "lux",
                "rail up after",
                "first PULSE",
                "pulses",
                "sustained?",
                "stored energy"
            ],
            &rows
        )
    );
    println!("Expected shape: no start in darkness; somewhere below ~200 lux the rail");
    println!("may trip but cannot sustain the metrology; at 200 lux and above the");
    println!("system starts, samples immediately and harvests — matching the paper's");
    println!("\"cold-start observed down to 200 lux\".");

    banner("§IV-B — metrology overhead fraction at 200 lux");
    let mut sys = FocvMpptSystem::new(SystemConfig::paper_prototype()?)?;
    let report = sys.run_constant(
        Lux::new(200.0),
        Seconds::from_minutes(10.0),
        Seconds::new(0.05),
    )?;
    let avg = report.average_metrology_current;
    let metrology_power = avg.value() * 3.3;
    let cell = sys.config().cell.clone();
    let mpp = cell.mpp(Lux::new(200.0))?;
    println!(
        "metrology draw     : {} ({} µW at 3.3 V)",
        avg,
        fmt(metrology_power * 1e6, 1)
    );
    println!("cell MPP at 200 lx : {}", mpp.power);
    println!(
        "fraction           : {} % (paper: < 20 %)",
        fmt(100.0 * metrology_power / mpp.power.value(), 1)
    );
    Ok(())
}
