//! Experiment E1 — Fig. 1 of the paper: I-V curve of the Schott Solar
//! 1116929 amorphous-silicon PV module under artificial light, with the
//! maximum power point at 1000 lux marked (the paper's dashed line).
//!
//! Run with `cargo run -p eh-bench --bin fig1_iv_curve`.

use eh_bench::{banner, fmt, render_table, sparkline};
use eh_pv::presets;
use eh_units::Lux;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cell = presets::schott_asi_1116929();

    banner("Fig. 1 — I-V curve, Schott Solar 1116929 (a-Si), artificial light");

    // The paper plots the 1000 lux curve; we add context intensities.
    for lux in [200.0, 500.0, 1000.0, 2000.0] {
        let lux = Lux::new(lux);
        let curve = cell.iv_curve(lux, 25)?;
        let mpp = cell.mpp(lux)?;

        println!(
            "{}: Voc = {}, Isc = {}, MPP = {} at {} ({} µA), k = {}",
            lux,
            curve.open_circuit_voltage(),
            curve.short_circuit_current(),
            mpp.power,
            mpp.voltage,
            fmt(mpp.current.as_micro(), 1),
            mpp.focv_factor(),
        );
        let currents: Vec<f64> = curve.iter().map(|p| p.current.as_micro()).collect();
        let powers: Vec<f64> = curve.iter().map(|p| p.power.as_micro()).collect();
        println!("  I(V) 0→Voc : {}", sparkline(&currents));
        println!("  P(V) 0→Voc : {}\n", sparkline(&powers));
    }

    banner("1000 lux curve detail (MPP row marked ←)");
    let lux = Lux::new(1000.0);
    let curve = cell.iv_curve(lux, 21)?;
    let mpp = cell.mpp(lux)?;
    let rows: Vec<Vec<String>> = curve
        .iter()
        .map(|p| {
            let near_mpp = (p.voltage.value() - mpp.voltage.value()).abs()
                < 0.5 * curve.open_circuit_voltage().value() / 20.0;
            vec![
                fmt(p.voltage.value(), 3),
                fmt(p.current.as_micro(), 1),
                fmt(p.power.as_micro(), 1),
                if near_mpp {
                    "← MPP region".into()
                } else {
                    String::new()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["V (V)", "I (µA)", "P (µW)", ""], &rows)
    );
    println!(
        "Paper shape check: MPP sits at k = {} of Voc (a-Si band 0.6–0.8 after trim),",
        mpp.focv_factor()
    );
    println!("current is flat (photocurrent-limited) until the diode knee, then collapses.");
    Ok(())
}
