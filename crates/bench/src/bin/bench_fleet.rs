//! Benchmark — fleet-scale simulation throughput and determinism.
//!
//! Runs the reference mixed indoor/outdoor fleet (day-scale light,
//! 1-minute grid) at several sizes and worker counts, recording
//! nodes/sec into `BENCH_fleet.json`, and asserts the eh-fleet
//! determinism contract on the way: the 1000-node fleet must produce
//! **bit-identical** [`FleetReport`]s at 1, 2 and 4 workers. A compact
//! tracker comparison over a smaller replayed population closes the
//! report.
//!
//! A metrics pass re-runs the reference fleet with
//! [`FleetSpec::obs`] enabled: the merged metric store must be
//! bit-identical at 1/2/4 workers, its energy ledger must balance the
//! summed closed-loop node accounting within 1e-9 relative, and the
//! wall-clock overhead of metrics-on vs metrics-off is recorded (never
//! gated) in the JSON.
//!
//! Worker counts beyond the machine's `available_parallelism` cannot
//! speed anything up; the JSON records the host parallelism so scaling
//! numbers from a single-core container are read for what they are.
//!
//! Run with `cargo run -q --release -p eh-bench --bin bench_fleet`
//! (accepts `--workers N` / `EH_WORKERS` to set the top worker count,
//! and `--smoke` for the fast CI profile: one small fleet size on a
//! coarse grid, same code paths and assertions, no timing claims).

use std::time::Instant;

use eh_bench::{banner, fmt, render_table, smoke_mode, sweep_runner};
use eh_fleet::{compare_trackers_over_fleet, FleetReport, FleetRunner, FleetSpec};
use eh_units::{Joules, Seconds};

/// Fleet sizes for the scaling sweep.
const SIZES: [u32; 3] = [100, 1000, 10_000];
/// The fleet size the determinism assertion and drill-down use.
const REFERENCE_SIZE: u32 = 1000;
/// Smoke-profile fleet size (also the smoke reference size).
const SMOKE_SIZE: u32 = 100;

fn day_spec(nodes: u32, smoke: bool) -> FleetSpec {
    let mut spec = FleetSpec::mixed_indoor_outdoor(nodes, 2011).expect("reference spec is valid");
    if smoke {
        // 10-minute grid: same physics and code paths, ~1/10 the steps.
        spec.trace_decimate = 600;
        spec.dt = Seconds::new(600.0);
    }
    spec
}

fn percentile_row(report: &FleetReport) -> (f64, f64, f64) {
    let p = report
        .net_energy_percentiles()
        .expect("non-empty fleet report");
    (p.p5, p.p50, p.p95)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let host = std::thread::available_parallelism().map_or(1, usize::from);
    let smoke = smoke_mode();
    let max_workers = sweep_runner().workers();
    let mut worker_counts = vec![1usize, 2, 4, max_workers];
    worker_counts.sort_unstable();
    worker_counts.dedup();
    let (sizes, reference_size): (Vec<u32>, u32) = if smoke {
        (vec![SMOKE_SIZE], SMOKE_SIZE)
    } else {
        (SIZES.to_vec(), REFERENCE_SIZE)
    };

    if smoke {
        banner("Fleet scaling — SMOKE profile, 10-minute grid (no timing claims)");
    } else {
        banner("Fleet scaling — mixed indoor/outdoor day, 1-minute grid");
    }
    println!(
        "host parallelism {host}, worker counts {worker_counts:?}, shard size {}",
        FleetRunner::DEFAULT_SHARD_SIZE
    );

    let mut scaling: Vec<(u32, usize, f64, f64)> = Vec::new();
    let mut reference_reports: Vec<(usize, FleetReport)> = Vec::new();
    let mut rows = Vec::new();
    for &nodes in &sizes {
        let spec = day_spec(nodes, smoke);
        for &workers in &worker_counts {
            let runner = FleetRunner::new(workers);
            let t0 = Instant::now();
            let report = runner.run(&spec)?;
            let elapsed = t0.elapsed().as_secs_f64();
            assert_eq!(report.nodes(), nodes as usize);
            let rate = f64::from(nodes) / elapsed.max(1e-12);
            scaling.push((nodes, workers, elapsed, rate));
            rows.push(vec![
                nodes.to_string(),
                workers.to_string(),
                fmt(elapsed, 3),
                fmt(rate, 1),
            ]);
            if nodes == reference_size {
                reference_reports.push((workers, report));
            }
        }
    }
    println!(
        "{}",
        render_table(&["nodes", "workers", "seconds", "nodes/sec"], &rows)
    );

    banner(&format!(
        "Determinism — {reference_size} nodes, bit-identical at every worker count"
    ));
    let (_, reference) = &reference_reports[0];
    for (workers, report) in &reference_reports[1..] {
        assert_eq!(
            report, reference,
            "{workers}-worker fleet diverged from the 1-worker reference"
        );
    }
    let checked: Vec<usize> = reference_reports.iter().map(|(w, _)| *w).collect();
    println!("workers {checked:?}: all FleetReports bit-identical");

    let (p5, p50, p95) = percentile_row(reference);
    let worst = reference.worst_node().expect("non-empty fleet");
    println!("{reference}");

    banner(&format!(
        "Metrics — {reference_size} nodes with the eh-obs recorder enabled"
    ));
    let mut obs_spec = day_spec(reference_size, smoke);
    obs_spec.obs = true;
    let mut obs_worker_counts = vec![1usize, 2, 4];
    obs_worker_counts.retain(|w| worker_counts.contains(w));
    let mut obs_reports: Vec<(usize, f64, FleetReport)> = Vec::new();
    for &workers in &obs_worker_counts {
        let t0 = Instant::now();
        let report = FleetRunner::new(workers).run(&obs_spec)?;
        obs_reports.push((workers, t0.elapsed().as_secs_f64(), report));
    }
    let (_, obs_secs_1w, obs_ref) = &obs_reports[0];
    for (workers, _, report) in &obs_reports[1..] {
        assert_eq!(
            report.metrics, obs_ref.metrics,
            "{workers}-worker merged metrics diverged from the 1-worker reference"
        );
    }
    let metrics = obs_ref
        .metrics
        .as_ref()
        .expect("obs-enabled fleet carries a merged metric store");
    // Conservation: the four-bucket ledger vs the independently summed
    // per-node closed-loop accounting (overhead + losses + load served).
    let closed_loop: f64 = obs_ref
        .outcomes
        .iter()
        .map(|o| {
            o.report.overhead_energy.value()
                + o.report.loss_energy.value()
                + o.report.load_served.value()
        })
        .sum();
    let ledger_rel_err = metrics.ledger().relative_error(Joules::new(closed_loop));
    assert!(
        ledger_rel_err < 1e-9,
        "fleet ledger drifts from closed-loop totals: {ledger_rel_err:.3e}"
    );
    // Overhead is measured against the metrics-off run at 1 worker and
    // recorded, never gated: CI containers make timing gates flaky.
    let plain_secs_1w = scaling
        .iter()
        .find(|(n, w, _, _)| *n == reference_size && *w == 1)
        .map(|(_, _, s, _)| *s)
        .expect("reference size measured at 1 worker");
    let obs_overhead_pct = (obs_secs_1w / plain_secs_1w.max(1e-12) - 1.0) * 100.0;
    let obs_workers_checked: Vec<usize> = obs_reports.iter().map(|(w, _, _)| *w).collect();
    println!(
        "workers {obs_workers_checked:?}: merged metric stores bit-identical\n\
         ledger vs closed-loop rel error {ledger_rel_err:.3e} (bound 1e-9)\n\
         wall overhead vs metrics-off at 1 worker: {} % (recorded, not gated)",
        fmt(obs_overhead_pct, 1)
    );
    println!("{}", metrics.to_table());

    let cmp_size = if smoke { 50 } else { 200 };
    banner(&format!(
        "Tracker comparison over one replayed {cmp_size}-node population"
    ));
    let mut cmp_spec = day_spec(cmp_size, false);
    cmp_spec.trace_decimate = 600; // 10-minute grid keeps 8 trackers tractable
    cmp_spec.dt = Seconds::new(600.0);
    let cmp_runner = FleetRunner::new(max_workers);
    let comparison = compare_trackers_over_fleet(&cmp_spec, &cmp_runner)?;
    let cmp_rows: Vec<Vec<String>> = comparison
        .iter()
        .map(|(kind, report)| {
            let (p5, p50, p95) = percentile_row(report);
            vec![
                kind.label().to_owned(),
                fmt(p5, 3),
                fmt(p50, 3),
                fmt(p95, 3),
                report.net_negative_count().to_string(),
                report.brown_out_count().to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "tracker",
                "net p5 (J)",
                "net p50 (J)",
                "net p95 (J)",
                "net-negative",
                "brown-outs"
            ],
            &cmp_rows
        )
    );

    // Scaling headline: 1 worker vs the top worker count at the
    // reference size (honest numbers; ~1.0 expected on a 1-core host).
    let rate_at = |workers: usize| {
        scaling
            .iter()
            .find(|(n, w, _, _)| *n == reference_size && *w == workers)
            .map(|(_, _, _, r)| *r)
            .expect("reference size measured at every worker count")
    };
    let speedup = rate_at(*worker_counts.last().expect("non-empty")) / rate_at(1);
    println!(
        "\n{reference_size}-node speedup x{} from 1 to {} workers on a {host}-core host",
        fmt(speedup, 2),
        worker_counts.last().expect("non-empty")
    );

    let scaling_json: Vec<String> = scaling
        .iter()
        .map(|(nodes, workers, secs, rate)| {
            format!(
                r#"    {{ "nodes": {nodes}, "workers": {workers}, "seconds": {secs:.3}, "nodes_per_sec": {rate:.1} }}"#
            )
        })
        .collect();
    let comparison_json: Vec<String> = comparison
        .iter()
        .map(|(kind, report)| {
            let (p5, p50, p95) = percentile_row(report);
            format!(
                r#"    {{ "tracker": "{}", "net_p5_j": {p5:.6}, "net_p50_j": {p50:.6}, "net_p95_j": {p95:.6}, "net_negative": {}, "brown_outs": {} }}"#,
                kind.label(),
                report.net_negative_count(),
                report.brown_out_count()
            )
        })
        .collect();
    let json = format!(
        r#"{{
  "bench": "fleet",
  "command": "cargo run -q --release -p eh-bench --bin bench_fleet",
  "scenario": "FleetSpec::mixed_indoor_outdoor, seed 2011, {grid}, shard size {shard}",
  "smoke": {smoke},
  "host_parallelism": {host},
  "host_note": "worker counts beyond host_parallelism cannot add speed; on a 1-core host speedups of ~1.0 are the honest expectation",
  "worker_counts": {workers:?},
  "scaling": [
{scaling_rows}
  ],
  "speedup_1_to_max_workers_at_reference_size": {speedup:.3},
  "determinism": {{
    "nodes": {ref_size},
    "worker_counts_checked": {checked:?},
    "bit_identical": true
  }},
  "observability": {{
    "nodes": {ref_size},
    "worker_counts_checked": {obs_workers_checked:?},
    "merged_metrics_bit_identical": true,
    "ledger_rel_error_vs_closed_loop": {ledger_rel_err:.6e},
    "ledger_rel_error_bound": 1e-9,
    "wall_overhead_pct_vs_metrics_off_1_worker": {obs_overhead_pct:.2},
    "wall_overhead_note": "recorded only, never gated; container timing is too noisy for a CI gate",
    "metrics": {metrics_json}
  }},
  "reference_fleet": {{
    "nodes": {ref_size},
    "net_energy_p5_j": {p5:.6},
    "net_energy_p50_j": {p50:.6},
    "net_energy_p95_j": {p95:.6},
    "brown_outs": {brown},
    "cold_start_failures": {cold},
    "net_negative": {negative},
    "worst_node": {{ "id": {worst_id}, "placement": "{worst_place}", "net_j": {worst_net:.6} }}
  }},
  "tracker_comparison": {{
    "nodes": {cmp_size},
    "rows": [
{cmp_rows}
    ]
  }}
}}
"#,
        grid = if smoke {
            "10-minute trace grid, dt 600 s (smoke)"
        } else {
            "1-minute trace grid, dt 60 s"
        },
        shard = FleetRunner::DEFAULT_SHARD_SIZE,
        workers = worker_counts,
        scaling_rows = scaling_json.join(",\n"),
        ref_size = reference_size,
        metrics_json = metrics.to_json(),
        brown = reference.brown_out_count(),
        cold = reference.cold_start_failures(),
        negative = reference.net_negative_count(),
        worst_id = worst.id,
        worst_place = worst.placement.label(),
        worst_net = worst.net_energy().value(),
        cmp_rows = comparison_json.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    std::fs::write(path, json)?;
    println!("wrote {path}");
    Ok(())
}
