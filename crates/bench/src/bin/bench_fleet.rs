//! Benchmark — fleet-scale simulation throughput and determinism.
//!
//! Runs the reference mixed indoor/outdoor fleet (day-scale light,
//! 1-minute grid) at several sizes and worker counts, recording
//! nodes/sec into `BENCH_fleet.json`, and asserts the eh-fleet
//! determinism contract on the way: the 1000-node fleet must produce
//! **bit-identical** [`FleetReport`]s at 1, 2 and 4 workers. A compact
//! tracker comparison over a smaller replayed population closes the
//! report.
//!
//! Worker counts beyond the machine's `available_parallelism` cannot
//! speed anything up; the JSON records the host parallelism so scaling
//! numbers from a single-core container are read for what they are.
//!
//! Run with `cargo run -q --release -p eh-bench --bin bench_fleet`
//! (accepts `--workers N` / `EH_WORKERS` to set the top worker count).

use std::time::Instant;

use eh_bench::{banner, fmt, render_table, sweep_runner};
use eh_fleet::{compare_trackers_over_fleet, FleetReport, FleetRunner, FleetSpec};
use eh_units::Seconds;

/// Fleet sizes for the scaling sweep.
const SIZES: [u32; 3] = [100, 1000, 10_000];
/// The fleet size the determinism assertion and drill-down use.
const REFERENCE_SIZE: u32 = 1000;

fn day_spec(nodes: u32) -> FleetSpec {
    FleetSpec::mixed_indoor_outdoor(nodes, 2011).expect("reference spec is valid")
}

fn percentile_row(report: &FleetReport) -> (f64, f64, f64) {
    let p = report
        .net_energy_percentiles()
        .expect("non-empty fleet report");
    (p.p5, p.p50, p.p95)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let host = std::thread::available_parallelism().map_or(1, usize::from);
    let max_workers = sweep_runner().workers();
    let mut worker_counts = vec![1usize, 2, 4, max_workers];
    worker_counts.sort_unstable();
    worker_counts.dedup();

    banner("Fleet scaling — mixed indoor/outdoor day, 1-minute grid");
    println!(
        "host parallelism {host}, worker counts {worker_counts:?}, shard size {}",
        FleetRunner::DEFAULT_SHARD_SIZE
    );

    let mut scaling: Vec<(u32, usize, f64, f64)> = Vec::new();
    let mut reference_reports: Vec<(usize, FleetReport)> = Vec::new();
    let mut rows = Vec::new();
    for &nodes in &SIZES {
        let spec = day_spec(nodes);
        for &workers in &worker_counts {
            let runner = FleetRunner::new(workers);
            let t0 = Instant::now();
            let report = runner.run(&spec)?;
            let elapsed = t0.elapsed().as_secs_f64();
            assert_eq!(report.nodes(), nodes as usize);
            let rate = f64::from(nodes) / elapsed.max(1e-12);
            scaling.push((nodes, workers, elapsed, rate));
            rows.push(vec![
                nodes.to_string(),
                workers.to_string(),
                fmt(elapsed, 3),
                fmt(rate, 1),
            ]);
            if nodes == REFERENCE_SIZE {
                reference_reports.push((workers, report));
            }
        }
    }
    println!(
        "{}",
        render_table(&["nodes", "workers", "seconds", "nodes/sec"], &rows)
    );

    banner("Determinism — 1000 nodes, bit-identical at every worker count");
    let (_, reference) = &reference_reports[0];
    for (workers, report) in &reference_reports[1..] {
        assert_eq!(
            report, reference,
            "{workers}-worker fleet diverged from the 1-worker reference"
        );
    }
    let checked: Vec<usize> = reference_reports.iter().map(|(w, _)| *w).collect();
    println!("workers {checked:?}: all FleetReports bit-identical");

    let (p5, p50, p95) = percentile_row(reference);
    let worst = reference.worst_node().expect("non-empty fleet");
    println!("{reference}");

    banner("Tracker comparison over one replayed 200-node population");
    let mut cmp_spec = day_spec(200);
    cmp_spec.trace_decimate = 600; // 10-minute grid keeps 8 trackers tractable
    cmp_spec.dt = Seconds::new(600.0);
    let cmp_runner = FleetRunner::new(max_workers);
    let comparison = compare_trackers_over_fleet(&cmp_spec, &cmp_runner)?;
    let cmp_rows: Vec<Vec<String>> = comparison
        .iter()
        .map(|(kind, report)| {
            let (p5, p50, p95) = percentile_row(report);
            vec![
                kind.label().to_owned(),
                fmt(p5, 3),
                fmt(p50, 3),
                fmt(p95, 3),
                report.net_negative_count().to_string(),
                report.brown_out_count().to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "tracker",
                "net p5 (J)",
                "net p50 (J)",
                "net p95 (J)",
                "net-negative",
                "brown-outs"
            ],
            &cmp_rows
        )
    );

    // Scaling headline: 1 worker vs the top worker count at the
    // reference size (honest numbers; ~1.0 expected on a 1-core host).
    let rate_at = |workers: usize| {
        scaling
            .iter()
            .find(|(n, w, _, _)| *n == REFERENCE_SIZE && *w == workers)
            .map(|(_, _, _, r)| *r)
            .expect("reference size measured at every worker count")
    };
    let speedup = rate_at(*worker_counts.last().expect("non-empty")) / rate_at(1);
    println!(
        "\n1000-node speedup x{} from 1 to {} workers on a {host}-core host",
        fmt(speedup, 2),
        worker_counts.last().expect("non-empty")
    );

    let scaling_json: Vec<String> = scaling
        .iter()
        .map(|(nodes, workers, secs, rate)| {
            format!(
                r#"    {{ "nodes": {nodes}, "workers": {workers}, "seconds": {secs:.3}, "nodes_per_sec": {rate:.1} }}"#
            )
        })
        .collect();
    let comparison_json: Vec<String> = comparison
        .iter()
        .map(|(kind, report)| {
            let (p5, p50, p95) = percentile_row(report);
            format!(
                r#"    {{ "tracker": "{}", "net_p5_j": {p5:.6}, "net_p50_j": {p50:.6}, "net_p95_j": {p95:.6}, "net_negative": {}, "brown_outs": {} }}"#,
                kind.label(),
                report.net_negative_count(),
                report.brown_out_count()
            )
        })
        .collect();
    let json = format!(
        r#"{{
  "bench": "fleet",
  "command": "cargo run -q --release -p eh-bench --bin bench_fleet",
  "scenario": "FleetSpec::mixed_indoor_outdoor, seed 2011, 1-minute trace grid, dt 60 s, shard size {shard}",
  "host_parallelism": {host},
  "host_note": "worker counts beyond host_parallelism cannot add speed; on a 1-core host speedups of ~1.0 are the honest expectation",
  "worker_counts": {workers:?},
  "scaling": [
{scaling_rows}
  ],
  "speedup_1_to_max_workers_at_1000_nodes": {speedup:.3},
  "determinism": {{
    "nodes": {ref_size},
    "worker_counts_checked": {checked:?},
    "bit_identical": true
  }},
  "reference_fleet_1000": {{
    "net_energy_p5_j": {p5:.6},
    "net_energy_p50_j": {p50:.6},
    "net_energy_p95_j": {p95:.6},
    "brown_outs": {brown},
    "cold_start_failures": {cold},
    "net_negative": {negative},
    "worst_node": {{ "id": {worst_id}, "placement": "{worst_place}", "net_j": {worst_net:.6} }}
  }},
  "tracker_comparison_200_nodes": [
{cmp_rows}
  ]
}}
"#,
        shard = FleetRunner::DEFAULT_SHARD_SIZE,
        workers = worker_counts,
        scaling_rows = scaling_json.join(",\n"),
        ref_size = REFERENCE_SIZE,
        brown = reference.brown_out_count(),
        cold = reference.cold_start_failures(),
        negative = reference.net_negative_count(),
        worst_id = worst.id,
        worst_place = worst.placement.label(),
        worst_net = worst.net_energy().value(),
        cmp_rows = comparison_json.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    std::fs::write(path, json)?;
    println!("wrote {path}");
    Ok(())
}
