//! Benchmark — fleet-scale simulation throughput and determinism.
//!
//! Runs the reference mixed indoor/outdoor fleet (day-scale light,
//! 1-minute grid) at several sizes and worker counts through the
//! selected execution engines, recording nodes/sec into
//! `BENCH_fleet.json`, and asserts the eh-fleet engine contracts on
//! the way: the 1000-node fleet must produce **bit-identical**
//! [`FleetReport`]s at every worker count per engine; the per-node and
//! batch engines must be bit-identical to each other; and the
//! vectorized engine must hold its bounded-divergence contract against
//! the reference (exact counts and classifications, energies within
//! rel 1e-9) while staying bit-identical to itself. A compact tracker
//! comparison over a smaller replayed population closes the report.
//!
//! Timings are **engine-only**: the shared fleet inputs (population,
//! base traces, warmed PV surfaces) are prepared once per size via
//! [`FleetContext`] outside the timed region, so the nodes/sec column
//! measures the simulation engines rather than setup. The batch and
//! vectorized engines additionally run a 100k-node fleet (full profile
//! only) to demonstrate fleet scale beyond what the per-node engine can
//! sweep in bench time.
//!
//! The worker sweep is clamped to the host's `available_parallelism`
//! (recorded as `workers_clamped` in the JSON): oversubscribed counts
//! cannot add speed and used to register as a phantom slowdown on the
//! 100k-node row when the hard-coded 4-worker rung ran on a smaller
//! container.
//!
//! A metrics pass re-runs the reference fleet with
//! [`FleetSpec::obs`] enabled: the merged metric store must be
//! bit-identical at 1/2/4 workers (per engine, and across engines), its
//! energy ledger must balance the summed closed-loop node accounting
//! within 1e-9 relative, and the wall-clock overhead of metrics-on vs
//! metrics-off is recorded (never gated) in the JSON.
//!
//! Worker counts beyond the machine's `available_parallelism` cannot
//! speed anything up; the JSON records the host parallelism so scaling
//! numbers from a single-core container are read for what they are.
//!
//! Run with `cargo run -q --release -p eh-bench --bin bench_fleet`
//! (accepts `--workers N` / `EH_WORKERS` to set the top worker count,
//! `--engine per-node|batch|vectorized|both|all` / `EH_ENGINE` to pick
//! the engines, and `--smoke` for the fast CI profile: one small fleet
//! size on a coarse grid, every engine, same code paths and assertions,
//! no timing claims).

use std::time::Instant;

use eh_bench::{
    banner, clamp_worker_counts, engine_choice, fmt, render_table, smoke_mode, sweep_runner,
};
use eh_fleet::{
    compare_trackers_over_fleet_with, Engine, FleetContext, FleetReport, FleetRunner, FleetSpec,
    PlacementMix, TrackerKind,
};
use eh_units::{Joules, Seconds};

/// Fleet sizes for the scaling sweep (every selected engine).
const SIZES: [u32; 3] = [100, 1000, 10_000];
/// Extra fleet size only the shard-stepped engines (batch, vectorized)
/// sweep — the per-node oracle cannot cover it in bench time (full
/// profile only).
const BIG_SIZE: u32 = 100_000;
/// The fleet size the determinism assertion and drill-down use.
const REFERENCE_SIZE: u32 = 1000;
/// Smoke-profile fleet size (also the smoke reference size).
const SMOKE_SIZE: u32 = 100;

fn day_spec(nodes: u32, smoke: bool) -> FleetSpec {
    let mut spec = FleetSpec::mixed_indoor_outdoor(nodes, 2011).expect("reference spec is valid");
    if smoke {
        // 10-minute grid: same physics and code paths, ~1/10 the steps.
        spec.trace_decimate = 600;
        spec.dt = Seconds::new(600.0);
    }
    spec
}

fn percentile_row(report: &FleetReport) -> (f64, f64, f64) {
    let p = report
        .net_energy_percentiles()
        .expect("non-empty fleet report");
    (p.p5, p.p50, p.p95)
}

/// Median gross harvest, metrology energy and compute energy — the
/// three columns whose difference is the net-energy ranking.
fn energy_columns(report: &FleetReport) -> (f64, f64, f64) {
    let p50 = |p: Option<eh_fleet::Percentiles>| p.expect("non-empty fleet report").p50;
    (
        p50(report.gross_energy_percentiles()),
        p50(report.overhead_percentiles()),
        p50(report.compute_energy_percentiles()),
    )
}

/// The vectorized engine's bounded-divergence contract (DESIGN.md §14):
/// counts and classifications exactly equal to the exact engines,
/// per-node energies within rel 1e-9. The full eight-field check lives
/// in `tests/vectorized_equivalence.rs`; the bench pins the headline
/// clauses on the reference fleet.
fn assert_bounded_divergence(reference: &FleetReport, candidate: &FleetReport) {
    assert_eq!(reference.outcomes.len(), candidate.outcomes.len());
    let rel = |a: f64, b: f64| (a - b).abs() / a.abs().max(b.abs()).max(1e-12);
    for (a, b) in reference.outcomes.iter().zip(&candidate.outcomes) {
        assert_eq!(a.id, b.id, "fleet order diverged");
        assert_eq!(a.cold_start_ok, b.cold_start_ok, "node {}", a.id);
        assert_eq!(
            a.report.measurements, b.report.measurements,
            "node {}",
            a.id
        );
        assert_eq!(a.report.decisions, b.report.decisions, "node {}", a.id);
        assert_eq!(a.browned_out(), b.browned_out(), "node {}", a.id);
        assert_eq!(
            a.report.is_net_positive(),
            b.report.is_net_positive(),
            "node {}",
            a.id
        );
        for (label, x, y) in [
            ("net", a.net_energy().value(), b.net_energy().value()),
            (
                "gross",
                a.report.gross_energy.value(),
                b.report.gross_energy.value(),
            ),
            (
                "final_store",
                a.report.final_store_energy.value(),
                b.report.final_store_energy.value(),
            ),
        ] {
            assert!(
                rel(x, y) <= 1e-9,
                "node {} {label} energy diverged: {x} vs {y}",
                a.id
            );
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let host = std::thread::available_parallelism().map_or(1, usize::from);
    let smoke = smoke_mode();
    let engines = engine_choice().engines();
    let max_workers = sweep_runner().workers();
    let mut worker_counts = vec![1usize, 2, 4, max_workers];
    let workers_clamped = clamp_worker_counts(&mut worker_counts, host);
    let (sizes, reference_size): (Vec<u32>, u32) = if smoke {
        (vec![SMOKE_SIZE], SMOKE_SIZE)
    } else {
        (SIZES.to_vec(), REFERENCE_SIZE)
    };
    // Engines that can afford the 100k-node row in bench time: the
    // shard-stepped ones. The per-node oracle sweeps only `SIZES`.
    let big_engines: Vec<Engine> = engines
        .iter()
        .copied()
        .filter(|e| *e != Engine::PerNode)
        .collect();
    let run_big = !smoke && !big_engines.is_empty();

    if smoke {
        banner("Fleet scaling — SMOKE profile, 10-minute grid (no timing claims)");
    } else {
        banner("Fleet scaling — mixed indoor/outdoor day, 1-minute grid");
    }
    let engine_labels: Vec<&str> = engines.iter().map(|e| e.label()).collect();
    println!(
        "host parallelism {host}, worker counts {worker_counts:?}{}, shard size {}, engines {engine_labels:?}\n\
         timings are engine-only: shared inputs are prepared once per size outside the timed region",
        if workers_clamped {
            " (clamped to host parallelism)"
        } else {
            ""
        },
        FleetRunner::DEFAULT_SHARD_SIZE
    );

    let mut scaling: Vec<(Engine, u32, usize, f64, f64)> = Vec::new();
    let mut reference_reports: Vec<(Engine, usize, FleetReport)> = Vec::new();
    let mut rows = Vec::new();
    let mut all_sizes = sizes.clone();
    if run_big {
        all_sizes.push(BIG_SIZE);
    }
    for &nodes in &all_sizes {
        let big_only = !sizes.contains(&nodes);
        let spec = day_spec(nodes, smoke);
        let ctx = FleetContext::prepare(&spec)?;
        for &engine in &engines {
            if big_only && !big_engines.contains(&engine) {
                continue;
            }
            for &workers in &worker_counts {
                let runner = FleetRunner::new(workers);
                let t0 = Instant::now();
                let report = runner.run_engine_prepared(&ctx, TrackerKind::Focv, engine)?;
                let elapsed = t0.elapsed().as_secs_f64();
                assert_eq!(report.nodes(), nodes as usize);
                let rate = f64::from(nodes) / elapsed.max(1e-12);
                scaling.push((engine, nodes, workers, elapsed, rate));
                rows.push(vec![
                    engine.label().to_owned(),
                    nodes.to_string(),
                    workers.to_string(),
                    fmt(elapsed, 3),
                    fmt(rate, 1),
                ]);
                if nodes == reference_size {
                    reference_reports.push((engine, workers, report));
                }
            }
        }
    }
    println!(
        "{}",
        render_table(
            &["engine", "nodes", "workers", "seconds", "nodes/sec"],
            &rows
        )
    );

    banner(&format!(
        "Determinism — {reference_size} nodes, engine contracts at every worker count"
    ));
    // Every engine must be bit-identical to itself across worker counts.
    for &engine in &engines {
        let mut group = reference_reports.iter().filter(|(e, _, _)| *e == engine);
        let (_, _, first) = group.next().expect("reference size measured per engine");
        for (_, workers, report) in group {
            assert_eq!(
                report,
                first,
                "{workers}-worker {} fleet diverged from itself",
                engine.label()
            );
        }
    }
    // Across engines, the exact pair (per-node, batch) is bit-identical;
    // the vectorized engine instead holds its bounded-divergence
    // contract against them.
    let exact_firsts: Vec<(Engine, &FleetReport)> = engines
        .iter()
        .filter(|e| **e != Engine::Vectorized)
        .map(|&engine| {
            let (_, _, report) = reference_reports
                .iter()
                .find(|(e, _, _)| *e == engine)
                .expect("reference size measured per engine");
            (engine, report)
        })
        .collect();
    for (engine, report) in exact_firsts.iter().skip(1) {
        assert_eq!(
            *report,
            exact_firsts[0].1,
            "{} fleet diverged from the {} oracle",
            engine.label(),
            exact_firsts[0].0.label()
        );
    }
    let vectorized_reference = reference_reports
        .iter()
        .find(|(e, _, _)| *e == Engine::Vectorized)
        .map(|(_, _, report)| report);
    let vectorized_contract = match (exact_firsts.first(), vectorized_reference) {
        (Some((_, exact)), Some(vectorized)) => {
            assert_bounded_divergence(exact, vectorized);
            true
        }
        _ => false,
    };
    let checked: Vec<String> = reference_reports
        .iter()
        .map(|(e, w, _)| format!("{}:{w}", e.label()))
        .collect();
    let cross_engine = exact_firsts.len() > 1;
    println!("engine:workers {checked:?}: every engine bit-identical to itself across workers");
    if cross_engine {
        println!("cross-engine: batch output is bit-identical to the per-node oracle");
    }
    if vectorized_contract {
        println!(
            "vectorized: counts/classifications exact vs the exact engines, energies within rel 1e-9"
        );
    }

    let (_, _, reference) = &reference_reports[0];
    let (p5, p50, p95) = percentile_row(reference);
    let worst = reference.worst_node().expect("non-empty fleet");
    println!("{reference}");

    // Engine-vs-engine headlines at 1 worker on the reference fleet:
    // batch vs per-node (PR 4's ≥10x target) and vectorized vs batch
    // (this PR's ≥5x target) — recorded, never gated.
    let rate_of = |engine: Engine, workers: usize| {
        scaling
            .iter()
            .find(|(e, n, w, _, _)| *e == engine && *n == reference_size && *w == workers)
            .map(|(_, _, _, _, r)| *r)
    };
    let speedup_between =
        |slow: Engine, fast: Engine, what: &str| match (rate_of(slow, 1), rate_of(fast, 1)) {
            (Some(slow_rate), Some(fast_rate)) => {
                let speedup = fast_rate / slow_rate.max(1e-12);
                println!(
                    "{what}: x{} ({} vs {} nodes/sec)",
                    fmt(speedup, 2),
                    fmt(fast_rate, 1),
                    fmt(slow_rate, 1)
                );
                Some(speedup)
            }
            _ => None,
        };
    let batch_speedup = speedup_between(
        Engine::PerNode,
        Engine::Batch,
        "batch engine speedup over per-node at 1 worker",
    );
    let vectorized_vs_batch = speedup_between(
        Engine::Batch,
        Engine::Vectorized,
        "vectorized engine speedup over batch at 1 worker (target >=5x)",
    );
    let vectorized_vs_per_node = speedup_between(
        Engine::PerNode,
        Engine::Vectorized,
        "vectorized engine speedup over per-node at 1 worker",
    );
    // The same ratio at the big row: reference-size runs finish in
    // ~0.1-0.2 s, where one scheduler hiccup on a small host swings the
    // ratio by 2x; the big rows run for seconds and give the stable
    // reading of the engine gap.
    let big_rate_of = |engine: Engine| {
        scaling
            .iter()
            .find(|(e, n, w, _, _)| *e == engine && *n == BIG_SIZE && *w == 1)
            .map(|(_, _, _, _, r)| *r)
    };
    let vectorized_vs_batch_big = match (
        big_rate_of(Engine::Batch),
        big_rate_of(Engine::Vectorized),
    ) {
        (Some(slow_rate), Some(fast_rate)) => {
            let speedup = fast_rate / slow_rate.max(1e-12);
            println!(
                "vectorized engine speedup over batch at 1 worker, {BIG_SIZE}-node row: x{} ({} vs {} nodes/sec)",
                fmt(speedup, 2),
                fmt(fast_rate, 1),
                fmt(slow_rate, 1)
            );
            Some(speedup)
        }
        _ => None,
    };

    banner(&format!(
        "Metrics — {reference_size} nodes with the eh-obs recorder enabled"
    ));
    let mut obs_spec = day_spec(reference_size, smoke);
    obs_spec.obs = true;
    let obs_ctx = FleetContext::prepare(&obs_spec)?;
    let mut obs_worker_counts = vec![1usize, 2, 4];
    obs_worker_counts.retain(|w| worker_counts.contains(w));
    let mut obs_reports: Vec<(Engine, usize, f64, FleetReport)> = Vec::new();
    for &engine in &engines {
        for &workers in &obs_worker_counts {
            let t0 = Instant::now();
            let report = FleetRunner::new(workers).run_engine_prepared(
                &obs_ctx,
                TrackerKind::Focv,
                engine,
            )?;
            obs_reports.push((engine, workers, t0.elapsed().as_secs_f64(), report));
        }
    }
    let (_, _, obs_secs_1w, obs_ref) = &obs_reports[0];
    // Per engine: the merged store is worker-invariant.
    for &engine in &engines {
        let mut group = obs_reports.iter().filter(|(e, _, _, _)| *e == engine);
        let (_, _, _, first) = group.next().expect("obs pass covers every engine");
        for (_, workers, _, report) in group {
            assert_eq!(
                report.metrics,
                first.metrics,
                "{workers}-worker {} merged metrics diverged across workers",
                engine.label()
            );
        }
    }
    // Across engines: the exact engines carry bit-identical stores; the
    // vectorized store matches them counter-for-counter (its span times
    // are rel-1e-9 quantities, pinned in tests/vectorized_equivalence.rs).
    let exact_obs: Vec<&FleetReport> = obs_reports
        .iter()
        .filter(|(e, _, _, _)| *e != Engine::Vectorized)
        .map(|(_, _, _, report)| report)
        .collect();
    for report in exact_obs.iter().skip(1) {
        assert_eq!(
            report.metrics, exact_obs[0].metrics,
            "exact engines must merge bit-identical metric stores"
        );
    }
    if let (Some(exact), Some((_, _, _, vectorized))) = (
        exact_obs.first(),
        obs_reports
            .iter()
            .find(|(e, _, _, _)| *e == Engine::Vectorized),
    ) {
        let a = exact.metrics.as_ref().expect("obs run carries metrics");
        let b = vectorized
            .metrics
            .as_ref()
            .expect("obs run carries metrics");
        for name in [
            "engine.steps",
            "engine.dwell_steps",
            "node.measurements",
            "tracker.decisions",
            "tracker.ops",
            "converter.transfer_steps",
            "fleet.nodes",
        ] {
            assert_eq!(
                a.counter(name),
                b.counter(name),
                "fleet counter {name} diverged between exact and vectorized"
            );
        }
    }
    let metrics = obs_ref
        .metrics
        .as_ref()
        .expect("obs-enabled fleet carries a merged metric store");
    // Conservation: the five-bucket ledger vs the independently summed
    // per-node closed-loop accounting (overhead + losses + load served
    // + compute).
    let closed_loop: f64 = obs_ref
        .outcomes
        .iter()
        .map(|o| {
            o.report.overhead_energy.value()
                + o.report.loss_energy.value()
                + o.report.load_served.value()
                + o.report.compute_energy.value()
        })
        .sum();
    let ledger_rel_err = metrics.ledger().relative_error(Joules::new(closed_loop));
    assert!(
        ledger_rel_err < 1e-9,
        "fleet ledger drifts from closed-loop totals: {ledger_rel_err:.3e}"
    );
    // Overhead is measured against the metrics-off run at 1 worker (same
    // engine) and recorded, never gated: CI containers make timing gates
    // flaky.
    let plain_secs_1w = scaling
        .iter()
        .find(|(e, n, w, _, _)| *e == engines[0] && *n == reference_size && *w == 1)
        .map(|(_, _, _, s, _)| *s)
        .expect("reference size measured at 1 worker");
    let obs_overhead_pct = (obs_secs_1w / plain_secs_1w.max(1e-12) - 1.0) * 100.0;
    let obs_checked: Vec<String> = obs_reports
        .iter()
        .map(|(e, w, _, _)| format!("{}:{w}", e.label()))
        .collect();
    println!(
        "engine:workers {obs_checked:?}: merged metric stores worker-invariant per engine\n\
         ledger vs closed-loop rel error {ledger_rel_err:.3e} (bound 1e-9)\n\
         wall overhead vs metrics-off at 1 worker ({}): {} % (recorded, not gated)",
        engines[0].label(),
        fmt(obs_overhead_pct, 1)
    );
    println!("{}", metrics.to_table());

    let cmp_size = if smoke { 50 } else { 200 };
    let cmp_engine = if engines.contains(&Engine::Batch) {
        Engine::Batch
    } else {
        Engine::PerNode
    };
    banner(&format!(
        "Tracker comparison over one replayed {cmp_size}-node population ({} engine)",
        cmp_engine.label()
    ));
    let mut cmp_spec = day_spec(cmp_size, false);
    cmp_spec.trace_decimate = 600; // 10-minute grid keeps 8 trackers tractable
    cmp_spec.dt = Seconds::new(600.0);
    let cmp_runner = FleetRunner::new(max_workers);
    let comparison = compare_trackers_over_fleet_with(&cmp_spec, &cmp_runner, cmp_engine)?;
    let cmp_rows: Vec<Vec<String>> = comparison
        .iter()
        .map(|(kind, report)| {
            let (p5, p50, p95) = percentile_row(report);
            let (gross, metrology, compute) = energy_columns(report);
            vec![
                kind.label().to_owned(),
                fmt(gross, 3),
                fmt(metrology, 3),
                fmt(compute, 6),
                fmt(p5, 3),
                fmt(p50, 3),
                fmt(p95, 3),
                report.net_negative_count().to_string(),
                report.brown_out_count().to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "tracker",
                "gross p50 (J)",
                "metrology p50 (J)",
                "compute p50 (J)",
                "net p5 (J)",
                "net p50 (J)",
                "net p95 (J)",
                "net-negative",
                "brown-outs"
            ],
            &cmp_rows
        )
    );

    banner("Volatile light — Eq. 2 variable hold vs the fixed 69 s schedule");
    // An outdoor-heavy (semi-mobile) population on the 1-minute grid:
    // the fixed tracker holds samples that go ~2 minutes stale between
    // PULSEs, while the Eq. 2 tracker shortens its hold period below the
    // step size and re-samples every connected minute for one extra
    // 39 ms dwell. The grid stays at dt = 60 s even in smoke — on a
    // 10-minute grid the shortened period cannot beat the step size and
    // the adaptation is invisible.
    let vol_size: u32 = if smoke { 24 } else { 120 };
    let mut vol_spec = FleetSpec::mixed_indoor_outdoor(vol_size, 2011)?;
    vol_spec.name = format!("outdoor-heavy volatile x{vol_size}");
    vol_spec.placements = PlacementMix::new(0.05, 0.05, 0.90)?;
    let vol_ctx = FleetContext::prepare(&vol_spec)?;
    let vol_runner = FleetRunner::new(max_workers);
    let vol_fixed = vol_runner.run_engine_prepared(&vol_ctx, TrackerKind::Focv, cmp_engine)?;
    let vol_adaptive =
        vol_runner.run_engine_prepared(&vol_ctx, TrackerKind::VariableHoldFocv, cmp_engine)?;
    let vol_fixed_p50 = vol_fixed.net_energy_percentiles().expect("non-empty").p50;
    let vol_adaptive_p50 = vol_adaptive
        .net_energy_percentiles()
        .expect("non-empty")
        .p50;
    // Gate on the fleet-total net energy: the staleness win is a small
    // per-node margin that every node collects, so the sum is the
    // robust statistic (nearest-rank p50 is one node's value and can
    // sit on a node the adaptation barely touches).
    let fleet_net =
        |r: &FleetReport| -> f64 { r.outcomes.iter().map(|o| o.net_energy().value()).sum() };
    let vol_fixed_total = fleet_net(&vol_fixed);
    let vol_adaptive_total = fleet_net(&vol_adaptive);
    assert!(
        vol_adaptive_total > vol_fixed_total,
        "variable hold must beat fixed FOCV on a volatile fleet: {vol_adaptive_total} vs {vol_fixed_total} J total"
    );
    let vol_margin_pct =
        (vol_adaptive_total - vol_fixed_total) / vol_fixed_total.abs().max(1e-12) * 100.0;
    println!(
        "{vol_size} nodes, 90 % outdoor: fleet net {} J (variable hold) vs {} J (fixed 69 s) — +{} %\n\
         net p50 {} J vs {} J",
        fmt(vol_adaptive_total, 4),
        fmt(vol_fixed_total, 4),
        fmt(vol_margin_pct, 3),
        fmt(vol_adaptive_p50, 4),
        fmt(vol_fixed_p50, 4)
    );

    // Scaling headline: 1 worker vs the top worker count at the
    // reference size (honest numbers; ~1.0 expected on a 1-core host).
    let top_workers = *worker_counts.last().expect("non-empty");
    let worker_speedup = rate_of(engines[0], top_workers)
        .expect("reference size measured at every worker count")
        / rate_of(engines[0], 1).expect("reference size measured at 1 worker");
    println!(
        "\n{reference_size}-node speedup x{} from 1 to {top_workers} workers ({} engine) on a {host}-core host",
        fmt(worker_speedup, 2),
        engines[0].label()
    );

    let scaling_json: Vec<String> = scaling
        .iter()
        .map(|(engine, nodes, workers, secs, rate)| {
            format!(
                r#"    {{ "engine": "{}", "nodes": {nodes}, "workers": {workers}, "seconds": {secs:.3}, "nodes_per_sec": {rate:.1} }}"#,
                engine.label()
            )
        })
        .collect();
    let comparison_json: Vec<String> = comparison
        .iter()
        .map(|(kind, report)| {
            let (p5, p50, p95) = percentile_row(report);
            let (gross, metrology, compute) = energy_columns(report);
            format!(
                r#"    {{ "tracker": "{}", "gross_p50_j": {gross:.6}, "metrology_p50_j": {metrology:.6}, "compute_p50_j": {compute:.9}, "net_p5_j": {p5:.6}, "net_p50_j": {p50:.6}, "net_p95_j": {p95:.6}, "net_negative": {}, "brown_outs": {} }}"#,
                kind.label(),
                report.net_negative_count(),
                report.brown_out_count()
            )
        })
        .collect();
    let json = format!(
        r#"{{
  "bench": "fleet",
  "command": "cargo run -q --release -p eh-bench --bin bench_fleet",
  "scenario": "FleetSpec::mixed_indoor_outdoor, seed 2011, {grid}, shard size {shard}",
  "smoke": {smoke},
  "host_parallelism": {host},
  "host_note": "worker counts beyond host_parallelism cannot add speed; on a 1-core host speedups of ~1.0 are the honest expectation",
  "timing_note": "nodes_per_sec is engine-only: population, base traces and PV surfaces are prepared once per size outside the timed region",
  "engines": {engine_labels:?},
  "worker_counts": {workers:?},
  "workers_clamped": {workers_clamped},
  "workers_clamped_note": "requested counts above host_parallelism are dropped: oversubscription cannot add speed and reads as a phantom slowdown",
  "scaling": [
{scaling_rows}
  ],
  "batch_speedup_vs_per_node_at_1_worker_reference_size": {batch_speedup},
  "vectorized_speedup_vs_batch_at_1_worker_reference_size": {vectorized_vs_batch},
  "vectorized_speedup_vs_per_node_at_1_worker_reference_size": {vectorized_vs_per_node},
  "vectorized_speedup_vs_batch_at_1_worker_big_size": {vectorized_vs_batch_big},
  "big_size_note": "the reference-size rows finish in ~0.1-0.2 s where one scheduler hiccup swings the ratio 2x; the {big_size}-node rows run for seconds and are the stable reading of the engine gap",
  "speedup_note": "engine-vs-engine speedups are recorded only, never gated; the >=5x vectorized-vs-batch target is asserted nowhere in CI",
  "speedup_1_to_max_workers_at_reference_size": {worker_speedup:.3},
  "determinism": {{
    "nodes": {ref_size},
    "engine_worker_pairs_checked": {checked:?},
    "bit_identical_per_engine": true,
    "cross_engine_bit_identical": {cross_engine_checked},
    "cross_engine_scope": "per-node and batch only; vectorized holds the bounded-divergence contract instead",
    "vectorized_contract_checked": {vectorized_contract},
    "vectorized_contract": "counts and classifications exact, per-node energies within rel 1e-9, bit-identical to itself"
  }},
  "observability": {{
    "nodes": {ref_size},
    "engine_worker_pairs_checked": {obs_checked:?},
    "merged_metrics_worker_invariant_per_engine": true,
    "exact_engines_metrics_bit_identical": true,
    "vectorized_counters_match_exact_engines": true,
    "ledger_rel_error_vs_closed_loop": {ledger_rel_err:.6e},
    "ledger_rel_error_bound": 1e-9,
    "wall_overhead_pct_vs_metrics_off_1_worker": {obs_overhead_pct:.2},
    "wall_overhead_note": "recorded only, never gated; container timing is too noisy for a CI gate",
    "metrics": {metrics_json}
  }},
  "reference_fleet": {{
    "nodes": {ref_size},
    "net_energy_p5_j": {p5:.6},
    "net_energy_p50_j": {p50:.6},
    "net_energy_p95_j": {p95:.6},
    "brown_outs": {brown},
    "cold_start_failures": {cold},
    "net_negative": {negative},
    "worst_node": {{ "id": {worst_id}, "placement": "{worst_place}", "net_j": {worst_net:.6} }}
  }},
  "tracker_comparison": {{
    "nodes": {cmp_size},
    "engine": "{cmp_engine}",
    "rows": [
{cmp_rows}
    ]
  }},
  "volatile_light": {{
    "nodes": {vol_size},
    "placement_mix": "window 0.05 / interior 0.05 / outdoor 0.90",
    "grid": "1-minute trace grid, dt 60 s (even in smoke)",
    "engine": "{cmp_engine}",
    "fixed_focv_net_total_j": {vol_fixed_total:.6},
    "variable_hold_net_total_j": {vol_adaptive_total:.6},
    "variable_hold_margin_pct": {vol_margin_pct:.4},
    "fixed_focv_net_p50_j": {vol_fixed_p50:.6},
    "variable_hold_net_p50_j": {vol_adaptive_p50:.6},
    "gate": "variable hold must beat fixed FOCV on fleet-total net energy (asserted)"
  }}
}}
"#,
        grid = if smoke {
            "10-minute trace grid, dt 600 s (smoke)"
        } else {
            "1-minute trace grid, dt 60 s"
        },
        shard = FleetRunner::DEFAULT_SHARD_SIZE,
        workers = worker_counts,
        scaling_rows = scaling_json.join(",\n"),
        batch_speedup = batch_speedup
            .map(|s| format!("{s:.3}"))
            .unwrap_or_else(|| "null".to_owned()),
        vectorized_vs_batch = vectorized_vs_batch
            .map(|s| format!("{s:.3}"))
            .unwrap_or_else(|| "null".to_owned()),
        vectorized_vs_per_node = vectorized_vs_per_node
            .map(|s| format!("{s:.3}"))
            .unwrap_or_else(|| "null".to_owned()),
        vectorized_vs_batch_big = vectorized_vs_batch_big
            .map(|s| format!("{s:.3}"))
            .unwrap_or_else(|| "null".to_owned()),
        big_size = BIG_SIZE,
        ref_size = reference_size,
        cross_engine_checked = if cross_engine { "true" } else { "null" },
        metrics_json = metrics.to_json(),
        brown = reference.brown_out_count(),
        cold = reference.cold_start_failures(),
        negative = reference.net_negative_count(),
        worst_id = worst.id,
        worst_place = worst.placement.label(),
        worst_net = worst.net_energy().value(),
        cmp_rows = comparison_json.join(",\n"),
        cmp_engine = cmp_engine.label(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    std::fs::write(path, json)?;
    println!("wrote {path}");
    Ok(())
}
