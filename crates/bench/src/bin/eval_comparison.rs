//! Experiment E8 — the paper's comparison against the state of the art
//! (§I and §IV-B, in prose): run every tracker over the same scenarios
//! and compare *net* harvested energy. Outdoors all trackers are
//! comparable; indoors only trackers with ultra-low overhead stay
//! net-positive, and only the proposed technique combines that with
//! adaptation to changing light.
//!
//! Run with `cargo run -p eh-bench --bin eval_comparison`.

use eh_bench::{banner, fmt, render_table};
use eh_core::baselines::{
    FixedVoltage, FocvSampleHold, FractionalIsc, IncrementalConductance, PerturbObserve,
    Photodetector, PilotCell,
};
use eh_core::MpptController;
use eh_env::{profiles, TimeSeries};
use eh_node::compare_trackers;
use eh_pv::presets;
use eh_units::{Lux, Seconds};

fn run_scenario(
    title: &str,
    trace: &TimeSeries,
    dt: Seconds,
) -> Result<(), Box<dyn std::error::Error>> {
    banner(title);
    let cell = presets::sanyo_am1815();
    let mut focv = FocvSampleHold::paper_prototype()?;
    let mut po = PerturbObserve::literature_default()?;
    let mut fixed = FixedVoltage::indoor_tuned()?;
    let mut pilot = PilotCell::literature_default(presets::sanyo_am1815())?;
    let mut photo = Photodetector::literature_default()?;
    let mut inc = IncrementalConductance::literature_default()?;
    let mut fscc = FractionalIsc::literature_default()?;
    let mut trackers: Vec<&mut dyn MpptController> = vec![
        &mut focv, &mut po, &mut inc, &mut fscc, &mut fixed, &mut pilot, &mut photo,
    ];

    let rows_data = compare_trackers(&cell, trace, dt, &mut trackers)?;
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{}", r.summary.gross_energy),
                format!("{}", r.summary.overhead_energy),
                format!("{}", r.summary.net_energy),
                fmt(r.summary.efficiency_vs_oracle().as_percent(), 1),
                if r.summary.is_net_positive() {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "tracker",
                "gross",
                "overhead",
                "net",
                "vs oracle %",
                "net-positive?"
            ],
            &rows
        )
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const SEED: u64 = 2011;
    let dt = Seconds::new(5.0);

    run_scenario(
        "Scenario A — indoor office day (mixed natural + artificial light)",
        &profiles::office_desk_mixed(SEED).decimate(5)?,
        dt,
    )?;

    run_scenario(
        "Scenario B — semi-mobile day (office + outdoor lunch + evening)",
        &profiles::semi_mobile_friday(SEED).decimate(5)?,
        dt,
    )?;

    run_scenario(
        "Scenario C — bright outdoor bench (50 klux, 2 h)",
        &profiles::constant(Lux::new(50_000.0), Seconds::from_hours(2.0)),
        dt,
    )?;

    run_scenario(
        "Scenario D — dim indoor bench (200 lux, 2 h)",
        &profiles::constant(Lux::new(200.0), Seconds::from_hours(2.0)),
        dt,
    )?;

    banner("Expected shape (the paper's argument)");
    println!("* Outdoors (C): every technique is net-positive; overheads are noise.");
    println!("* Indoors (A, D): the hill climber (2 mW) and photodetector (1.65 mW)");
    println!("  are net-NEGATIVE — \"the tracking circuitry itself consumed all of the");
    println!("  power generated indoors\". The pilot cell (~300 µW) is marginal.");
    println!("* Fixed voltage survives indoors (it was tuned for it) but gives up");
    println!("  harvest outdoors and whenever lighting deviates from its tuning.");
    println!("* The proposed FOCV sample-and-hold is net-positive everywhere and");
    println!("  close to the oracle — without pilot cell or photodiode.");
    Ok(())
}
