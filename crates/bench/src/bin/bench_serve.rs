//! Benchmark — the `eh-serve` what-if service under load.
//!
//! Boots the service in-process on an ephemeral port and drives it over
//! real sockets, exactly as a deployment would see it:
//!
//! 1. **Cold vs warm** — one `/compare` request over a 1000-node fleet
//!    (all 11 trackers), first against an empty cache, then repeated.
//!    The two bodies must be byte-identical (the determinism contract
//!    that makes response caching sound), and the warm hit must be at
//!    least 10× faster in the full profile (recorded, not gated, in
//!    smoke: CI containers make timing gates flaky).
//! 2. **Loadgen** — a multi-threaded client sweep over a small pool of
//!    distinct what-if bodies, recording throughput, p50/p95 latency
//!    and the cache hit-rate observed by the service's own metrics.
//!
//! Results land in `BENCH_serve.json`. Run with
//! `cargo run -q --release -p eh-bench --bin bench_serve`
//! (accepts `--smoke` for the fast CI profile).

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

use eh_bench::{banner, fmt, render_table, smoke_mode, sweep_runner};
use eh_serve::{metrics::names, ServeConfig, Server};

/// One measured exchange: status, `X-Cache` layer, body, seconds.
struct Sample {
    status: u16,
    layer: String,
    body: String,
    seconds: f64,
}

fn request(addr: SocketAddr, path: &str, body: &str) -> Sample {
    let t0 = Instant::now();
    let mut conn = TcpStream::connect(addr).expect("connect to eh-serve");
    let head = format!(
        "POST {path} HTTP/1.1\r\nhost: bench\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    conn.write_all(head.as_bytes()).expect("write request");
    conn.write_all(body.as_bytes()).expect("write body");
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read response");
    let seconds = t0.elapsed().as_secs_f64();
    let (head, body) = raw.split_once("\r\n\r\n").expect("full HTTP response");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let layer = head
        .lines()
        .find_map(|l| l.strip_prefix("x-cache: "))
        .unwrap_or("-")
        .to_owned();
    Sample {
        status,
        layer,
        body: body.to_owned(),
        seconds,
    }
}

/// Nearest-rank percentile over an unsorted sample of seconds.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = smoke_mode();
    let sim_workers = sweep_runner().workers();
    let mut config = ServeConfig::default_local();
    config.sim_workers = sim_workers;
    config.http_workers = 4;
    config.spill_dir = std::env::temp_dir().join(format!("eh-serve-bench-{}", std::process::id()));
    let server = Server::spawn(config)?;
    let addr = server.addr();
    let metrics = server.metrics();

    let (compare_nodes, loadgen_requests, loadgen_threads) = if smoke {
        (100u32, 32usize, 2usize)
    } else {
        (1000u32, 160usize, 4usize)
    };

    if smoke {
        banner("eh-serve — SMOKE profile (no timing claims)");
    } else {
        banner("eh-serve — cold vs warm, then loadgen");
    }
    println!("listening on {addr}, {sim_workers} sim workers, 4 http workers");

    // --- 1. cold vs warm ------------------------------------------------
    let compare_body = format!("{{\"nodes\":{compare_nodes},\"seed\":2011}}");
    let cold = request(addr, "/compare", &compare_body);
    assert_eq!(cold.status, 200, "cold /compare failed: {}", cold.body);
    assert_eq!(cold.layer, "miss");
    let warm = request(addr, "/compare", &compare_body);
    assert_eq!(warm.status, 200);
    assert_eq!(warm.layer, "hit");
    assert_eq!(
        warm.body, cold.body,
        "cached response must be byte-identical to the cold computation"
    );
    let speedup = cold.seconds / warm.seconds.max(1e-9);
    println!(
        "/compare {compare_nodes} nodes, 11 trackers: cold {} s -> warm {} s (x{} speedup), bodies byte-identical",
        fmt(cold.seconds, 3),
        fmt(warm.seconds, 6),
        fmt(speedup, 1)
    );
    if !smoke {
        assert!(
            speedup >= 10.0,
            "warm cache hit must be at least 10x faster than the cold \
             1000-node comparison (got x{speedup:.1})"
        );
    }

    // --- 2. loadgen -----------------------------------------------------
    banner(&format!(
        "Loadgen — {loadgen_requests} requests, {loadgen_threads} client threads, 8 distinct bodies"
    ));
    // A pool of distinct small what-ifs: every body repeats, so the
    // steady state is cache-hit dominated with a burst of misses up
    // front — the shape a dashboard actually produces.
    let bodies: Vec<String> = (0..8u64)
        .map(|seed| format!("{{\"nodes\":25,\"seed\":{seed},\"trace_decimate\":600}}"))
        .collect();
    let t0 = Instant::now();
    // Each sample is tagged with the index of the body that produced it
    // so the byte-identity sweep below can group replies by request.
    let samples: Vec<(usize, Sample)> = std::thread::scope(|scope| {
        let bodies = &bodies;
        let handles: Vec<_> = (0..loadgen_threads)
            .map(|t| {
                scope.spawn(move || {
                    let per_thread = loadgen_requests / loadgen_threads;
                    (0..per_thread)
                        .map(|i| {
                            let bi = (t + i * loadgen_threads) % bodies.len();
                            let s = request(addr, "/whatif", &bodies[bi]);
                            assert_eq!(s.status, 200, "loadgen request failed: {}", s.body);
                            (bi, s)
                        })
                        .collect::<Vec<(usize, Sample)>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let wall = t0.elapsed().as_secs_f64();
    let samples: Vec<Sample> = {
        // Identical bodies must have produced identical responses
        // whichever layer served them.
        let mut first_reply: Vec<Option<&str>> = vec![None; bodies.len()];
        for (bi, s) in &samples {
            match first_reply[*bi] {
                None => first_reply[*bi] = Some(&s.body),
                Some(expected) => assert_eq!(
                    s.body, expected,
                    "one request body produced divergent responses"
                ),
            }
        }
        samples.into_iter().map(|(_, s)| s).collect()
    };

    let mut latencies: Vec<f64> = samples.iter().map(|s| s.seconds).collect();
    latencies.sort_by(f64::total_cmp);
    let p50 = percentile(&latencies, 50.0);
    let p95 = percentile(&latencies, 95.0);
    let throughput = samples.len() as f64 / wall.max(1e-12);
    let served = |layer: &str| samples.iter().filter(|s| s.layer == layer).count();
    let (hits, misses, coalesced) = (served("hit"), served("miss"), served("coalesced"));
    let hit_rate = hits as f64 / samples.len().max(1) as f64;
    println!(
        "{}",
        render_table(
            &[
                "requests",
                "wall (s)",
                "req/s",
                "p50 (ms)",
                "p95 (ms)",
                "hit",
                "miss",
                "coalesced"
            ],
            &[vec![
                samples.len().to_string(),
                fmt(wall, 3),
                fmt(throughput, 1),
                fmt(p50 * 1e3, 3),
                fmt(p95 * 1e3, 3),
                hits.to_string(),
                misses.to_string(),
                coalesced.to_string(),
            ]]
        )
    );

    // The service's own view of the run, from its live metric store.
    let cache_hits = metrics.counter(names::CACHE_HITS);
    let cache_misses = metrics.counter(names::CACHE_MISSES);
    let sf_coalesced = metrics.counter(names::SF_COALESCED);
    let sim_nodes = metrics.counter(names::SIM_NODES);
    println!(
        "service metrics: cache {cache_hits} hits / {cache_misses} misses, \
         {sf_coalesced} coalesced, {sim_nodes} nodes simulated"
    );

    let json = format!(
        r#"{{
  "bench": "serve",
  "command": "cargo run -q --release -p eh-bench --bin bench_serve",
  "smoke": {smoke},
  "sim_workers": {sim_workers},
  "http_workers": 4,
  "cold_vs_warm": {{
    "request": "/compare over {compare_nodes} nodes, 11 trackers, seed 2011",
    "cold_seconds": {cold_s:.6},
    "warm_seconds": {warm_s:.6},
    "speedup": {speedup:.1},
    "bodies_byte_identical": true,
    "gate": "full profile asserts speedup >= 10; smoke records only"
  }},
  "loadgen": {{
    "requests": {n_req},
    "client_threads": {loadgen_threads},
    "distinct_bodies": 8,
    "wall_seconds": {wall:.3},
    "requests_per_sec": {throughput:.1},
    "latency_p50_ms": {p50_ms:.3},
    "latency_p95_ms": {p95_ms:.3},
    "served_hit": {hits},
    "served_miss": {misses},
    "served_coalesced": {coalesced},
    "client_hit_rate": {hit_rate:.3}
  }},
  "service_metrics": {{
    "cache_hits": {cache_hits},
    "cache_misses": {cache_misses},
    "singleflight_coalesced": {sf_coalesced},
    "nodes_simulated": {sim_nodes}
  }}
}}
"#,
        cold_s = cold.seconds,
        warm_s = warm.seconds,
        n_req = samples.len(),
        p50_ms = p50 * 1e3,
        p95_ms = p95 * 1e3,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, json)?;
    println!("wrote {path}");

    server.shutdown();
    Ok(())
}
