//! Benchmark — the PV operating-point cache vs the exact solver.
//!
//! The exact single-diode `current_at` bisects the implicit I-V equation
//! (100 iterations with an `exp` each) on every converter step, which
//! dominates closed-loop simulation time. [`CachedPvSurface`] replaces
//! the hot path with a bilinear table lookup; this bin measures
//!
//! 1. the one-off table build cost,
//! 2. the measured worst relative current error against the exact
//!    solver (must sit inside the documented 1e-3 bound),
//! 3. the closed-loop circuit speedup (`FocvMpptSystem`, exact vs
//!    cached) with pulse/k/energy agreement,
//! 4. the node-day speedup (`NodeSimulation` over a seeded office day)
//!    with gross-energy agreement,
//!
//! and writes the numbers to `BENCH_pv_cache.json` at the repo root.
//!
//! Run with `cargo run -q --release -p eh-bench --bin bench_pv_cache`
//! (accepts `--smoke` for the fast CI profile: one repetition, fewer
//! validation probes and shorter runs — same assertions, no timing
//! claims).

use std::time::{Duration, Instant};

use eh_bench::{banner, fmt, smoke_mode};
use eh_core::baselines::FocvSampleHold;
use eh_core::{FocvMpptSystem, RunReport, SystemConfig};
use eh_env::profiles;
use eh_node::{NodeReport, NodeSimulation, SimConfig};
use eh_pv::{presets, CachedPvSurface, PvCell};
use eh_units::{Lux, Seconds, Volts};

/// Probe density for the validation sweep (off-grid by construction).
const LUX_PROBES: usize = 64;
/// Voltage probes per lux probe in the validation sweep.
const V_PROBES: usize = 129;
/// Timed repetitions; the minimum wall-clock is reported.
const REPS: usize = 3;

fn best_of<T>(reps: usize, mut job: impl FnMut() -> T) -> (Duration, T) {
    let mut best: Option<(Duration, T)> = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = job();
        let elapsed = t0.elapsed();
        if best.as_ref().is_none_or(|(b, _)| elapsed < *b) {
            best = Some((elapsed, out));
        }
    }
    best.expect("at least one repetition")
}

/// A closed-loop circuit run; when caching, `warmed`'s already-built
/// surface is shared into the system (clones of a warmed cell share the
/// table) so the timed region holds lookups only, not the table build.
fn system_run(
    warmed: &PvCell,
    cache: bool,
    duration: Seconds,
) -> Result<RunReport, Box<dyn std::error::Error>> {
    let mut cfg = SystemConfig::paper_prototype()?;
    cfg.pv_cache = cache;
    if cache {
        cfg.cell = warmed.clone();
    }
    cfg.cold_start.set_rail_voltage(Volts::new(3.3));
    let mut sys = FocvMpptSystem::new(cfg)?;
    Ok(sys.run_constant(Lux::new(1000.0), duration, Seconds::new(0.05))?)
}

fn node_run(
    warmed: &PvCell,
    cache: bool,
    decimate: usize,
) -> Result<NodeReport, Box<dyn std::error::Error>> {
    let trace = profiles::office_desk_mixed(2011).decimate(decimate)?;
    let cell = if cache {
        warmed.clone()
    } else {
        presets::sanyo_am1815()
    };
    let cfg = SimConfig::default_for(cell)?.with_pv_cache(cache);
    let mut sim = NodeSimulation::new(cfg)?;
    let mut tracker = FocvSampleHold::paper_prototype()?;
    Ok(sim.run(&mut tracker, &trace, Seconds::new(decimate as f64))?)
}

fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs().max(f64::MIN_POSITIVE)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = smoke_mode();
    // The smoke profile (CI) keeps every assertion but shrinks the
    // timed work; its timings are not comparable to full-profile runs.
    let (reps, lux_probes, v_probes) = if smoke {
        (1, 16, 33)
    } else {
        (REPS, LUX_PROBES, V_PROBES)
    };
    let sys_duration = Seconds::new(if smoke { 120.0 } else { 600.0 });
    let node_decimate = if smoke { 60 } else { 5 };

    banner("PV operating-point cache — build cost and measured error");
    let cell = presets::sanyo_am1815();
    let (build_time, surface) = best_of(reps, || {
        CachedPvSurface::build(cell.model(), cell.temperature()).expect("surface builds")
    });
    let (n_lux, n_v) = CachedPvSurface::grid_size();
    let (lux_lo, lux_hi) = CachedPvSurface::lux_domain();
    let max_rel_err = surface.validate_against_exact(lux_probes, v_probes)?;
    println!(
        "table {n_lux}x{n_v} over {lux_lo}..{lux_hi}: built in {build_time:?}, \
         worst |dI|/Isc over {lux_probes}x{v_probes} off-grid probes = {max_rel_err:.3e} \
         (documented bound 1.0e-3)"
    );
    assert!(
        max_rel_err < 1e-3,
        "measured error {max_rel_err:.3e} breaks the documented bound"
    );

    banner(&format!(
        "Closed-loop circuit: FocvMpptSystem, {} s @ 1000 lux, dt 50 ms",
        sys_duration.value()
    ));
    let warmed = presets::sanyo_am1815().with_cache(true);
    warmed.cached()?;
    let (exact_t, exact) = best_of(reps, || {
        system_run(&warmed, false, sys_duration).expect("exact run")
    });
    let (cached_t, cached) = best_of(reps, || {
        system_run(&warmed, true, sys_duration).expect("cached run")
    });
    let sys_speedup = exact_t.as_secs_f64() / cached_t.as_secs_f64().max(1e-12);
    let k_diff = (exact.measured_k.value() - cached.measured_k.value()).abs();
    let stored_rel = rel_diff(cached.stored_energy.value(), exact.stored_energy.value());
    println!(
        "exact {exact_t:?} vs cached {cached_t:?}  (speedup x{})",
        fmt(sys_speedup, 1)
    );
    println!(
        "pulses {} vs {}, |dk| = {k_diff:.2e}, stored-energy rel diff = {stored_rel:.2e}",
        exact.pulses, cached.pulses
    );
    assert_eq!(exact.pulses, cached.pulses, "pulse counts must agree");
    assert!(k_diff < 1e-3, "measured k diverged: {k_diff:.3e}");
    assert!(
        stored_rel < 5e-3,
        "stored energy diverged: {stored_rel:.3e}"
    );

    banner(&format!(
        "Node day: NodeSimulation, seeded office day, dt {node_decimate} s"
    ));
    let (nexact_t, nexact) = best_of(reps, || {
        node_run(&warmed, false, node_decimate).expect("exact run")
    });
    let (ncached_t, ncached) = best_of(reps, || {
        node_run(&warmed, true, node_decimate).expect("cached run")
    });
    let node_speedup = nexact_t.as_secs_f64() / ncached_t.as_secs_f64().max(1e-12);
    let gross_rel = rel_diff(ncached.gross_energy.value(), nexact.gross_energy.value());
    println!(
        "exact {nexact_t:?} vs cached {ncached_t:?}  (speedup x{})",
        fmt(node_speedup, 1)
    );
    println!(
        "gross {} vs {}, measurements {} vs {}, gross rel diff = {gross_rel:.2e}",
        nexact.gross_energy, ncached.gross_energy, nexact.measurements, ncached.measurements
    );
    assert_eq!(
        nexact.measurements, ncached.measurements,
        "measurement counts must agree"
    );
    assert!(gross_rel < 5e-3, "gross energy diverged: {gross_rel:.3e}");

    let json = format!(
        r#"{{
  "bench": "pv_cache",
  "command": "cargo run -q --release -p eh-bench --bin bench_pv_cache",
  "smoke": {smoke},
  "surface": {{
    "grid_lux": {n_lux},
    "grid_v": {n_v},
    "lux_domain": [{lo}, {hi}],
    "build_ms": {build_ms:.3},
    "validation_probes": [{lux_probes}, {v_probes}],
    "max_rel_current_error": {max_rel_err:.6e},
    "documented_error_bound": 1e-3
  }},
  "closed_loop_system": {{
    "scenario": "FocvMpptSystem run_constant, 1000 lux, {sys_secs} s, dt 0.05 s",
    "exact_ms": {se_ms:.3},
    "cached_ms": {sc_ms:.3},
    "speedup": {sys_speedup:.2},
    "pulses_exact": {pe},
    "pulses_cached": {pc},
    "measured_k_abs_diff": {k_diff:.6e},
    "stored_energy_rel_diff": {stored_rel:.6e}
  }},
  "node_day": {{
    "scenario": "NodeSimulation, office_desk_mixed(2011) decimate {node_decimate}, dt {node_decimate} s",
    "exact_ms": {ne_ms:.3},
    "cached_ms": {nc_ms:.3},
    "speedup": {node_speedup:.2},
    "measurements_exact": {me},
    "measurements_cached": {mc},
    "gross_energy_exact_j": {ge:.9},
    "gross_energy_cached_j": {gc:.9},
    "gross_energy_rel_diff": {gross_rel:.6e}
  }},
  "tolerances": {{
    "pulse_counts": "exact match",
    "measurement_counts": "exact match",
    "measured_k_abs": 1e-3,
    "energy_rel": 5e-3
  }}
}}
"#,
        lo = lux_lo.value(),
        hi = lux_hi.value(),
        sys_secs = sys_duration.value(),
        build_ms = build_time.as_secs_f64() * 1e3,
        se_ms = exact_t.as_secs_f64() * 1e3,
        sc_ms = cached_t.as_secs_f64() * 1e3,
        pe = exact.pulses,
        pc = cached.pulses,
        ne_ms = nexact_t.as_secs_f64() * 1e3,
        nc_ms = ncached_t.as_secs_f64() * 1e3,
        me = nexact.measurements,
        mc = ncached.measurements,
        ge = nexact.gross_energy.value(),
        gc = ncached.gross_energy.value(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pv_cache.json");
    std::fs::write(path, json)?;
    println!("\nwrote {path}");
    Ok(())
}
