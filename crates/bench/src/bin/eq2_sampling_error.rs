//! Experiment E5 — §II-B / Eq. (2): worst-case mean error of the
//! open-circuit-voltage estimate as a function of sampling period, on the
//! two 24-hour logs. The paper reports, for a 1-minute period,
//! Ē = 12.7 mV on the desk log and 24.1 mV on the semi-mobile log,
//! mapping to ≈7.7 mV and 14.7 mV of MPP-voltage error and an efficiency
//! loss below 1 % — which is what justifies a >60 s hold period.
//!
//! Run with `cargo run -p eh-bench --bin eq2_sampling_error`.

use eh_bench::{banner, fmt, render_table};
use eh_env::{profiles, sampling_error, TimeSeries};
use eh_pv::{focv, presets, PvCell};
use eh_units::{Lux, Ratio, Seconds, Volts};

fn voc_trace(cell: &PvCell, lux_trace: &TimeSeries) -> TimeSeries {
    lux_trace.map(|lux| {
        cell.open_circuit_voltage(Lux::new(lux.max(0.0)))
            .map(|v| v.value())
            .unwrap_or(0.0)
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cell = presets::schott_asi_1116929();
    const SEED: u64 = 2011;
    let k = Ratio::new(0.596);

    let desk = voc_trace(&cell, &profiles::desk_weekend_blinds_closed(SEED));
    let mobile = voc_trace(&cell, &profiles::semi_mobile_friday(SEED));

    banner("Eq. (2) — worst-case mean Voc error vs sampling period");
    let periods: Vec<Seconds> = [5.0, 15.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0, 3600.0]
        .map(Seconds::new)
        .to_vec();

    let desk_sweep = sampling_error::period_sweep(&desk, periods.clone())?;
    let mobile_sweep = sampling_error::period_sweep(&mobile, periods)?;

    let am1815 = presets::sanyo_am1815();
    let mut rows = Vec::new();
    for (d, m) in desk_sweep.iter().zip(&mobile_sweep) {
        // Map the worse (semi-mobile) Voc error to MPP error and
        // efficiency loss, as §II-B does.
        let mpp_err = focv::mpp_error_from_voc_error(Volts::new(m.mean_error), k);
        let loss = focv::efficiency_loss_for_voltage_error(&am1815, Lux::new(500.0), mpp_err)?;
        rows.push(vec![
            fmt(d.period.value(), 0),
            fmt(d.mean_error * 1e3, 2),
            fmt(m.mean_error * 1e3, 2),
            fmt(mpp_err.as_milli(), 2),
            fmt(loss.as_percent(), 3),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "period (s)",
                "Ē desk (mV)",
                "Ē semi-mobile (mV)",
                "worst MPP err (mV)",
                "efficiency loss (%)"
            ],
            &rows
        )
    );

    let desk_60 = sampling_error::worst_case_mean_error(&desk, Seconds::new(60.0))?;
    let mobile_60 = sampling_error::worst_case_mean_error(&mobile, Seconds::new(60.0))?;
    let mpp_err_desk = focv::mpp_error_from_voc_error(Volts::new(desk_60), k);
    let mpp_err_mobile = focv::mpp_error_from_voc_error(Volts::new(mobile_60), k);
    let loss = focv::efficiency_loss_for_voltage_error(&am1815, Lux::new(500.0), mpp_err_mobile)?;

    banner("§II-B headline numbers (1-minute period)");
    println!(
        "desk log        : Ē = {} mV   (paper: 12.7 mV)  → MPP error {} mV (paper ≈ 7.7 mV)",
        fmt(desk_60 * 1e3, 1),
        fmt(mpp_err_desk.as_milli(), 1)
    );
    println!(
        "semi-mobile log : Ē = {} mV   (paper: 24.1 mV)  → MPP error {} mV (paper ≈ 14.7 mV)",
        fmt(mobile_60 * 1e3, 1),
        fmt(mpp_err_mobile.as_milli(), 1)
    );
    println!(
        "worst-case efficiency loss: {} %  (paper: < 1 %) → a hold period > 60 s is justified.",
        fmt(loss.as_percent(), 3)
    );
    Ok(())
}
