//! Experiment E4 — Table I of the paper: test of tracking accuracy.
//! The complete system is run at intensities from 200 to 5000 lux; at
//! each intensity the open-circuit voltage, the HELD_SAMPLE value and
//! the implied k are reported (the paper finds k within 59.2–60.1 %).
//! Each test is repeated three times and the mean reported, exactly as
//! in the paper.
//!
//! Run with `cargo run -p eh-bench --bin table1_tracking`.

use eh_bench::{banner, fmt, render_table};
use eh_core::{tracking_accuracy_table, SystemConfig};
use eh_units::Lux;

/// The paper's Table I, for side-by-side comparison.
const PAPER: [(f64, f64, f64, f64); 12] = [
    (200.0, 4.978, 1.483, 59.6),
    (300.0, 5.096, 1.513, 59.4),
    (400.0, 5.18, 1.542, 59.5),
    (500.0, 5.242, 1.554, 59.3),
    (600.0, 5.292, 1.566, 59.2),
    (700.0, 5.333, 1.580, 59.2),
    (800.0, 5.369, 1.596, 59.5),
    (900.0, 5.41, 1.609, 59.5),
    (1000.0, 5.44, 1.624, 59.7),
    (2000.0, 5.64, 1.674, 59.4),
    (3000.0, 5.75, 1.691, 59.8),
    (5000.0, 5.91, 1.775, 60.1),
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Table I — test of tracking accuracy (3 repeats per intensity)");

    let base = SystemConfig::paper_prototype()?;
    let intensities: Vec<Lux> = PAPER.iter().map(|&(lux, ..)| Lux::new(lux)).collect();
    let measured = tracking_accuracy_table(&base, &intensities, 3)?;

    let mut k_min = f64::INFINITY;
    let mut k_max = f64::NEG_INFINITY;
    let rows: Vec<Vec<String>> = measured
        .iter()
        .zip(&PAPER)
        .map(|(row, &(_, p_voc, p_held, p_k))| {
            let k = row.k.as_percent();
            k_min = k_min.min(k);
            k_max = k_max.max(k);
            vec![
                fmt(row.illuminance.value(), 0),
                fmt(row.open_circuit_voltage.value(), 3),
                fmt(p_voc, 3),
                fmt(row.held_sample.value(), 3),
                fmt(p_held, 3),
                fmt(k, 1),
                fmt(p_k, 1),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Intens. (lux)",
                "Voc (V)",
                "paper Voc",
                "HELD (V)",
                "paper HELD",
                "k %",
                "paper k %"
            ],
            &rows
        )
    );
    println!(
        "Measured k range: {} % … {} % (paper: 59.2 % … 60.1 %; trim target 59.6 %).",
        fmt(k_min, 1),
        fmt(k_max, 1)
    );
    println!("The spread comes from the divider loading the near-open-circuit cell");
    println!("slightly differently across intensities — the same effect the paper's");
    println!("potentiometer trim absorbs.");
    Ok(())
}
