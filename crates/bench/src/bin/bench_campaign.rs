//! Benchmark — multi-year endurance campaigns with a determinism gate.
//!
//! Runs the smoke campaign ([`CampaignSpec::smoke`]: 48 nodes, 91
//! simulated days, 13-day epochs) at 1 and 2 workers and asserts the
//! eh-campaign determinism contract: the [`CampaignReport`]s must be
//! **bit-identical**. The full profile additionally runs the reference
//! endurance campaign ([`CampaignSpec::reference`]: 1000 nodes, 730
//! simulated days — two years of seasons, weather, drift and faults) at
//! 1, 2 and 4 workers with the same bit-identity assertion.
//!
//! Results land in `BENCH_campaign.json`. Its `golden` member holds the
//! smoke campaign's integer survival counts — pure functions of the
//! spec, independent of host speed and worker count — and CI compares
//! them against the committed `ci/campaign_smoke_golden.json`: any drift
//! in population, weather, schedules or the simulation core fails the
//! `campaign-smoke` job loudly instead of silently shifting the
//! endurance story.
//!
//! Run with `cargo run -q --release -p eh-bench --bin bench_campaign`
//! (accepts `--smoke` for the CI profile: smoke campaign only).

use std::time::Instant;

use eh_bench::{banner, fmt, render_table, smoke_mode};
use eh_campaign::{CampaignContext, CampaignReport, CampaignRunner, CampaignSpec};
use eh_fleet::Percentiles;

/// `(workers, seconds)` wall-clock rows for one campaign.
type Timings = Vec<(usize, f64)>;

/// Runs one campaign at every worker count, asserts bit-identity, and
/// returns the reference report plus `(workers, seconds)` timings.
fn run_campaign(
    spec: &CampaignSpec,
    worker_counts: &[usize],
) -> Result<(CampaignReport, Timings), Box<dyn std::error::Error>> {
    let ctx = CampaignContext::prepare(spec)?;
    let mut reference: Option<CampaignReport> = None;
    let mut timings = Vec::new();
    for &workers in worker_counts {
        let t0 = Instant::now();
        let report = CampaignRunner::new(workers).run_prepared(&ctx)?;
        timings.push((workers, t0.elapsed().as_secs_f64()));
        match &reference {
            None => reference = Some(report),
            Some(r) => assert_eq!(
                &report, r,
                "{workers}-worker campaign diverged from the 1-worker reference"
            ),
        }
    }
    Ok((reference.expect("at least one worker count"), timings))
}

fn pct(p: Option<Percentiles>) -> (f64, f64, f64) {
    p.map_or((f64::NAN, f64::NAN, f64::NAN), |p| (p.p5, p.p50, p.p95))
}

fn report_block(label: &str, spec: &CampaignSpec, report: &CampaignReport) {
    banner(&format!(
        "{label} — {} nodes, {} days, {} ({} load)",
        spec.nodes,
        spec.days,
        spec.climate.label(),
        spec.load.label()
    ));
    println!("{report}");
}

fn campaign_json(report: &CampaignReport, timings: &[(usize, f64)]) -> String {
    let (sp5, sp50, sp95) = pct(report.survival_percentiles());
    let brown = report
        .time_to_first_brownout_percentiles()
        .map_or("null".to_owned(), |p| {
            format!(
                r#"{{ "p5": {:.1}, "p50": {:.1}, "p95": {:.1} }}"#,
                p.p5, p.p50, p.p95
            )
        });
    let (np5, np50, np95) = pct(report.net_energy_percentiles());
    let timing_rows: Vec<String> = timings
        .iter()
        .map(|(w, s)| format!(r#"      {{ "workers": {w}, "seconds": {s:.3} }}"#))
        .collect();
    format!(
        r#"{{
    "nodes": {nodes},
    "days": {days},
    "survivors": {survivors},
    "browned_out": {browned},
    "faulted": {faulted},
    "survival_days": {{ "p5": {sp5:.1}, "p50": {sp50:.1}, "p95": {sp95:.1} }},
    "time_to_first_brownout_days": {brown},
    "net_energy_j": {{ "p5": {np5:.3}, "p50": {np50:.3}, "p95": {np95:.3} }},
    "bit_identical_worker_counts": {workers:?},
    "timings": [
{timing_rows}
    ]
  }}"#,
        nodes = report.nodes(),
        days = report.days,
        survivors = report.survivors(),
        browned = report.browned_out(),
        faulted = report.faulted(),
        workers = timings.iter().map(|(w, _)| *w).collect::<Vec<_>>(),
        timing_rows = timing_rows.join(",\n"),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = smoke_mode();
    let host = std::thread::available_parallelism().map_or(1, usize::from);

    // The smoke campaign runs in both profiles: its integer survival
    // counts are the committed golden that CI gates on.
    let smoke_spec = CampaignSpec::smoke(2011);
    let smoke_workers = [1usize, 2];
    let (smoke_report, smoke_timings) = run_campaign(&smoke_spec, &smoke_workers)?;
    report_block("Smoke campaign", &smoke_spec, &smoke_report);
    let rows: Vec<Vec<String>> = smoke_timings
        .iter()
        .map(|(w, s)| vec![w.to_string(), fmt(*s, 3)])
        .collect();
    println!("{}", render_table(&["workers", "seconds"], &rows));
    println!("workers {:?}: CampaignReports bit-identical", smoke_workers);

    let full = if smoke {
        None
    } else {
        let spec = CampaignSpec::reference(1000, 2011);
        let workers = [1usize, 2, 4];
        let (report, timings) = run_campaign(&spec, &workers)?;
        report_block("Reference endurance campaign", &spec, &report);
        let rows: Vec<Vec<String>> = timings
            .iter()
            .map(|(w, s)| vec![w.to_string(), fmt(*s, 3)])
            .collect();
        println!("{}", render_table(&["workers", "seconds"], &rows));
        println!("workers {workers:?}: CampaignReports bit-identical");
        Some((spec, report, timings))
    };

    let golden = format!(
        r#"{{
    "spec": "CampaignSpec::smoke(2011)",
    "nodes": {nodes},
    "days": {days},
    "survivors": {survivors},
    "browned_out": {browned},
    "faulted": {faulted}
  }}"#,
        nodes = smoke_report.nodes(),
        days = smoke_report.days,
        survivors = smoke_report.survivors(),
        browned = smoke_report.browned_out(),
        faulted = smoke_report.faulted(),
    );
    let json = format!(
        r#"{{
  "bench": "campaign",
  "command": "cargo run -q --release -p eh-bench --bin bench_campaign",
  "scenario": "multi-year endurance: seasonal sky x Markov weather x drift schedules x fault plan",
  "smoke": {smoke},
  "host_parallelism": {host},
  "determinism_note": "every campaign above asserted bit-identical CampaignReports across its worker counts",
  "golden_note": "golden holds the smoke campaign's integer survival counts; CI compares it against ci/campaign_smoke_golden.json",
  "golden": {golden},
  "smoke_campaign": {smoke_json},
  "reference_campaign": {full_json}
}}
"#,
        smoke_json = campaign_json(&smoke_report, &smoke_timings),
        full_json = full
            .as_ref()
            .map_or("null".to_owned(), |(_, report, timings)| campaign_json(
                report, timings
            )),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_campaign.json");
    std::fs::write(path, json)?;
    println!("wrote {path}");
    Ok(())
}
