//! Extension experiment — component-tolerance Monte Carlo on the
//! metrology chain. The paper's 39 ms / 69 s / 7.6 µA are one prototype's
//! measurements; a production design must hold its behaviour across
//! resistor/capacitor tolerances. This study samples 500 builds with
//! ±5 % resistors and ±10 % film capacitors and reports the spread of
//! the astable timing, the duty cycle, the divider ratio (k trim before
//! potentiometer adjustment) and the resulting harvest capture.
//!
//! Run with `cargo run -p eh-bench --bin tolerance_study`.

use eh_analog::astable::{AstableConfig, AstableMultivibrator};
use eh_analog::components::VoltageDivider;
use eh_bench::{banner, fmt, render_table, sweep_runner};
use eh_pv::presets;
use eh_units::{Farads, Lux, Ohms, Volts};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Summary statistics of a sampled quantity.
struct Spread {
    mean: f64,
    min: f64,
    max: f64,
    std: f64,
}

fn spread(values: &[f64]) -> Spread {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    Spread {
        mean,
        min: values.iter().cloned().fold(f64::INFINITY, f64::min),
        max: values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        std: var.sqrt(),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const BUILDS: usize = 500;
    // Draw every build's six tolerance factors serially from the seeded
    // stream, so the Monte Carlo is reproducible no matter how many sweep
    // workers evaluate the builds afterwards.
    let mut rng = StdRng::seed_from_u64(2011);
    let mut tol = |pct: f64| 1.0 + pct * (rng.gen::<f64>() * 2.0 - 1.0);
    let draws: Vec<[f64; 6]> = (0..BUILDS)
        .map(|_| {
            [
                tol(0.10),
                tol(0.05),
                tol(0.05),
                tol(0.05),
                tol(0.05),
                tol(0.05),
            ]
        })
        .collect();

    let cell = presets::sanyo_am1815();
    let lux = Lux::new(1000.0);
    let mpp = cell.mpp(lux)?;
    let voc = cell.open_circuit_voltage(lux)?;

    type BuildOutcome = Result<(f64, f64, f64, f64), Box<dyn std::error::Error + Send + Sync>>;
    let builds = sweep_runner().run(draws, |_, d| -> BuildOutcome {
        let [c_tol, r_chg_tol, r_dis_tol, r_thr_tol, r_top_tol, r_bot_tol] = d;
        // Astable: R ±5 %, film C ±10 %. The nominal design targets
        // 39 ms / 69 s through ln2·R·C.
        let c_t = 1e-6 * c_tol;
        let r_charge = (0.039 / (1e-6 * std::f64::consts::LN_2)) * r_chg_tol;
        let r_discharge = (69.0 / (1e-6 * std::f64::consts::LN_2)) * r_dis_tol;
        let config = AstableConfig {
            supply_voltage: Volts::new(3.3),
            timing_capacitance: Farads::new(c_t),
            threshold_resistance: Ohms::from_mega(10.0 * r_thr_tol),
            charge_resistance: Ohms::new(r_charge),
            discharge_resistance: Ohms::new(r_discharge),
            comparator_current: eh_units::Amps::from_micro(0.7),
        };
        let astable = AstableMultivibrator::new(config)?;
        let (t_on, t_off) = astable.analytic_periods();

        // Divider: R1/R2 ±5 % around the 0.298 trim target.
        let r_top = 5.0e6 * (1.0 - 0.298) * r_top_tol;
        let r_bottom = 5.0e6 * 0.298 * r_bot_tol;
        let divider = VoltageDivider::new(Ohms::new(r_top), Ohms::new(r_bottom))?;
        let ratio = divider.ratio();

        // Harvest capture with the untrimmed build: operate at
        // (ratio/α)·Voc instead of the ideal k·Voc.
        let k_eff = ratio / 0.5;
        let p = cell.power_at((voc * k_eff).min(voc), lux)?;
        Ok((
            t_on.as_milli(),
            t_off.value(),
            ratio,
            p.value() / mpp.power.value(),
        ))
    });

    let mut t_on_ms = Vec::with_capacity(BUILDS);
    let mut t_off_s = Vec::with_capacity(BUILDS);
    let mut ratios = Vec::with_capacity(BUILDS);
    let mut captures = Vec::with_capacity(BUILDS);
    for build in builds {
        let (t_on, t_off, ratio, capture) =
            build.map_err(|e| -> Box<dyn std::error::Error> { e })?;
        t_on_ms.push(t_on);
        t_off_s.push(t_off);
        ratios.push(ratio);
        captures.push(capture);
    }

    banner(&format!(
        "Monte Carlo over {BUILDS} builds — R ±5 %, film C ±10 % (seed 2011)"
    ));
    let rows = vec![
        {
            let s = spread(&t_on_ms);
            vec![
                "PULSE width (ms)".into(),
                fmt(s.mean, 1),
                fmt(s.std, 2),
                format!("{} … {}", fmt(s.min, 1), fmt(s.max, 1)),
                "39 ms".into(),
            ]
        },
        {
            let s = spread(&t_off_s);
            vec![
                "hold period (s)".into(),
                fmt(s.mean, 1),
                fmt(s.std, 2),
                format!("{} … {}", fmt(s.min, 1), fmt(s.max, 1)),
                "69 s".into(),
            ]
        },
        {
            let s = spread(&ratios);
            vec![
                "divider ratio k·α".into(),
                fmt(s.mean, 4),
                fmt(s.std, 4),
                format!("{} … {}", fmt(s.min, 4), fmt(s.max, 4)),
                "0.298".into(),
            ]
        },
        {
            let s = spread(&captures);
            vec![
                "untrimmed capture".into(),
                fmt(s.mean, 4),
                fmt(s.std, 4),
                format!("{} … {}", fmt(s.min, 4), fmt(s.max, 4)),
                "≈1.0".into(),
            ]
        },
    ];
    println!(
        "{}",
        render_table(&["quantity", "mean", "σ", "min … max", "nominal"], &rows)
    );

    let worst_capture = captures.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("Reading: timing tolerances only stretch or shrink the hold period —");
    println!("§II-B showed anything above ~60 s is fine, and even the worst build");
    println!("stays in that regime. The k trim is the sensitive axis, which is why");
    println!("the paper routes R2 through a potentiometer; yet even *untrimmed*, the");
    println!(
        "worst build still captures {} % of the MPP (broad a-Si power maximum).",
        fmt(100.0 * worst_capture, 1)
    );
    Ok(())
}
