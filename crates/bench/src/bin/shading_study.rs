//! Extension experiment — partial shading on a series string. The
//! paper's target applications (body-worn, mobile) routinely shade part
//! of the collector; FOCV holds a single `k·Voc` point, which under a
//! multi-hump shaded power curve can sit far from the *global* maximum.
//! This study quantifies the capture ratio as shading deepens.
//!
//! Run with `cargo run -p eh-bench --bin shading_study`.

use eh_bench::{banner, fmt, render_table};
use eh_pv::array::{SeriesString, StringElement};
use eh_pv::presets;
use eh_units::{Kelvin, Lux, Volts};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lux = Lux::new(1000.0);
    banner("FOCV capture on a 3-module series string, one module shaded");

    let mut rows = Vec::new();
    for shade in [1.0, 0.8, 0.6, 0.4, 0.25, 0.15, 0.08] {
        let string = SeriesString::new(
            vec![
                StringElement::new(presets::sanyo_am1815(), 1.0)?,
                StringElement::new(presets::sanyo_am1815(), 1.0)?,
                StringElement::new(presets::sanyo_am1815(), shade)?,
            ],
            Volts::from_milli(350.0),
        )?;
        let gmpp = string.global_mpp(lux, Kelvin::STC)?;
        let focv = string.power_at_focv(0.596, lux)?;
        let capture = focv.value() / gmpp.power.value().max(1e-15);
        rows.push(vec![
            fmt(100.0 * (1.0 - shade), 0),
            format!("{}", string.open_circuit_voltage(lux)?),
            format!("{}", gmpp.power),
            format!("{}", gmpp.voltage),
            format!("{}", focv),
            fmt(100.0 * capture, 1),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "shading of module 3 (%)",
                "string Voc",
                "global MPP power",
                "global MPP voltage",
                "FOCV power @ k·Voc",
                "capture %"
            ],
            &rows
        )
    );

    println!("Reading: with no or mild shading FOCV captures nearly all of the");
    println!("global maximum. Deep shading (≥75 %) splits the power curve into");
    println!("humps separated by the bypass diodes; a fixed k·Voc point can then");
    println!("land between them. For the paper's single-module prototype this");
    println!("cannot happen — one module has one hump — which quantifies why the");
    println!("technique suits small single-module sensor nodes in particular.");
    Ok(())
}
