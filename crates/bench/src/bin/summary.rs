//! One-page paper-vs-measured digest: re-runs the headline measurement
//! of every experiment live and prints them side by side with the
//! paper's numbers — the quick way to confirm the reproduction holds on
//! your machine.
//!
//! Run with `cargo run -p eh-bench --bin summary`.

use eh_analog::astable::AstableMultivibrator;
use eh_bench::{banner, fmt, render_table};
use eh_core::{tracking_accuracy_table, FocvMpptSystem, SystemConfig};
use eh_env::{profiles, sampling_error, TimeSeries};
use eh_pv::{presets, PvCell};
use eh_units::{Lux, Seconds, Volts};

fn voc_trace(cell: &PvCell, lux_trace: &TimeSeries) -> TimeSeries {
    lux_trace.map(|lux| {
        cell.open_circuit_voltage(Lux::new(lux.max(0.0)))
            .map(|v| v.value())
            .unwrap_or(0.0)
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("pv-mppt-repro — paper-vs-measured digest (all numbers live)");
    let mut rows: Vec<Vec<String>> = Vec::new();

    // Astable timing (§IV-A).
    let astable = AstableMultivibrator::paper_configuration()?;
    let (t_on, t_off) = astable.analytic_periods();
    rows.push(vec![
        "astable ON period (§IV-A)".into(),
        "39 ms".into(),
        format!("{t_on}"),
    ]);
    rows.push(vec![
        "astable OFF period (§IV-A)".into(),
        "69 s".into(),
        format!("{t_off}"),
    ]);

    // Metrology current (§IV-A) from a powered system run.
    let mut cfg = SystemConfig::paper_prototype()?;
    cfg.cold_start.set_rail_voltage(Volts::new(3.3));
    let mut sys = FocvMpptSystem::new(cfg)?;
    let report = sys.run_constant(Lux::new(1000.0), Seconds::new(210.0), Seconds::new(0.05))?;
    rows.push(vec![
        "astable + S&H draw (§IV-A)".into(),
        "7.6 µA".into(),
        format!("{}", report.average_metrology_current),
    ]);

    // Table I anchors (E4).
    let base = SystemConfig::paper_prototype()?;
    let table = tracking_accuracy_table(
        &base,
        &[Lux::new(200.0), Lux::new(1000.0), Lux::new(5000.0)],
        1,
    )?;
    rows.push(vec![
        "Table I: Voc / k at 200 lux".into(),
        "4.978 V / 59.6 %".into(),
        format!(
            "{} / {} %",
            table[0].open_circuit_voltage,
            fmt(table[0].k.as_percent(), 1)
        ),
    ]);
    rows.push(vec![
        "Table I: Voc / k at 1000 lux".into(),
        "5.44 V / 59.7 %".into(),
        format!(
            "{} / {} %",
            table[1].open_circuit_voltage,
            fmt(table[1].k.as_percent(), 1)
        ),
    ]);
    rows.push(vec![
        "Table I: Voc / k at 5000 lux".into(),
        "5.91 V / 60.1 %".into(),
        format!(
            "{} / {} %",
            table[2].open_circuit_voltage,
            fmt(table[2].k.as_percent(), 1)
        ),
    ]);

    // Eq. (2) headline (E5).
    let schott = presets::schott_asi_1116929();
    let desk = voc_trace(&schott, &profiles::desk_weekend_blinds_closed(2011));
    let mobile = voc_trace(&schott, &profiles::semi_mobile_friday(2011));
    let e_desk = sampling_error::worst_case_mean_error(&desk, Seconds::new(60.0))?;
    let e_mobile = sampling_error::worst_case_mean_error(&mobile, Seconds::new(60.0))?;
    rows.push(vec![
        "Eq.(2) Ē desk @60 s (§II-B)".into(),
        "12.7 mV".into(),
        format!("{} mV", fmt(e_desk * 1e3, 1)),
    ]);
    rows.push(vec![
        "Eq.(2) Ē semi-mobile @60 s (§II-B)".into(),
        "24.1 mV".into(),
        format!("{} mV", fmt(e_mobile * 1e3, 1)),
    ]);

    // Cold start (§IV-B).
    let mut dead = FocvMpptSystem::new(SystemConfig::paper_prototype()?)?;
    let cs = dead.run_constant(Lux::new(200.0), Seconds::new(30.0), Seconds::new(0.05))?;
    rows.push(vec![
        "cold start at 200 lux (§IV-B)".into(),
        "observed".into(),
        match cs.cold_start_time {
            Some(t) => format!("rail up after {t}"),
            None => "FAILED".into(),
        },
    ]);

    // Overhead fraction (§IV-B).
    let mpp200 = presets::sanyo_am1815().mpp(Lux::new(200.0))?;
    let overhead = report.average_metrology_current.value() * 3.3;
    rows.push(vec![
        "S&H draw vs 200 lux cell (§IV-B)".into(),
        "< 20 %".into(),
        format!("{} %", fmt(100.0 * overhead / mpp200.power.value(), 1)),
    ]);

    // Series MOSFET (§IV-B).
    let frac = sys.series_switch_loss().value() / report.pv_energy.value().max(1e-18);
    rows.push(vec![
        "series MOSFET loss (§IV-B)".into(),
        "negligible".into(),
        format!("{} % of harvest", fmt(100.0 * frac, 4)),
    ]);

    println!(
        "{}",
        render_table(&["quantity", "paper", "measured"], &rows)
    );
    println!("Full details: EXPERIMENTS.md; per-experiment binaries in crates/bench/src/bin/.");
    Ok(())
}
