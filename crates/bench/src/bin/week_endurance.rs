//! Extension experiment — week-scale endurance. The paper argues its
//! tracker enables *indefinite* operation ("wireless sensor nodes can be
//! designed to operate indefinitely", §I); a single-day log cannot show
//! that. Here a node runs a full deployment week (4 office days, a
//! semi-mobile Friday, a blinds-closed weekend) on a supercapacitor and
//! on a small battery, with the proposed tracker vs the fixed-voltage
//! baseline.
//!
//! Run with `cargo run -p eh-bench --bin week_endurance`.

use eh_bench::{banner, fmt, render_table, sweep_runner};
use eh_core::baselines::{FixedVoltage, FocvSampleHold};
use eh_core::MpptController;
use eh_env::week;
use eh_node::{
    Battery, DutyCycledLoad, EnergyStore, NodeError, NodeSimulation, SimConfig, Supercapacitor,
};
use eh_pv::{presets, PvCell};
use eh_units::{Farads, Joules, Seconds, Volts};

/// Tracker under comparison; each sweep job builds its own instance so
/// the rows can run on separate workers.
#[derive(Clone, Copy)]
enum Tracker {
    Focv,
    Fixed,
}

const TRACKERS: [Tracker; 2] = [Tracker::Focv, Tracker::Fixed];

fn run(
    kind: Tracker,
    cell: &PvCell,
    store: Box<dyn EnergyStore + Send>,
    trace: &eh_env::TimeSeries,
) -> Result<Vec<String>, NodeError> {
    let mut tracker: Box<dyn MpptController> = match kind {
        Tracker::Focv => Box::new(FocvSampleHold::paper_prototype()?),
        Tracker::Fixed => Box::new(FixedVoltage::indoor_tuned()?),
    };
    let cfg = SimConfig::default_for(cell.clone())?
        .with_pv_cache(true)
        .with_store(store)
        .with_load(DutyCycledLoad::typical_sensor_node()?);
    let mut sim = NodeSimulation::new(cfg)?;
    let report = sim.run(tracker.as_mut(), trace, Seconds::new(10.0))?;
    Ok(vec![
        report.tracker.clone(),
        format!("{}", report.gross_energy),
        format!("{}", report.overhead_energy),
        format!("{}", report.net_energy()),
        fmt(report.uptime().as_percent(), 2),
        format!("{}", report.final_store_energy),
    ])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = week::office_week(2011)?.decimate(10)?;
    println!(
        "deployment week: {} days of light trace, duty-cycled sense+TX load",
        trace.duration().as_hours() / 24.0
    );
    // One pre-warmed operating-point cache, shared by every sweep job
    // (clones of a warmed cell share the table). Re-run with
    // `with_pv_cache(false)` in `run` to cross-check against the exact
    // solver — see BENCH_pv_cache.json for the measured agreement.
    let cell = presets::sanyo_am1815().with_cache(true);
    cell.cached()?;

    banner("0.22 F supercapacitor (deployed charged to 4 V)");
    let sc = || {
        Box::new(
            Supercapacitor::new(Farads::new(0.22), Volts::new(5.0), Volts::new(1.8))
                .expect("valid supercap")
                .with_initial_voltage(Volts::new(4.0)),
        ) as Box<dyn EnergyStore + Send>
    };
    let rows = sweep_runner()
        .run(TRACKERS.to_vec(), |_, kind| run(kind, &cell, sc(), &trace))
        .into_iter()
        .collect::<Result<Vec<_>, NodeError>>()?;
    println!(
        "{}",
        render_table(
            &[
                "tracker",
                "gross",
                "overhead",
                "net",
                "uptime %",
                "store at end"
            ],
            &rows
        )
    );

    banner("200 J thin-film battery (deployed at 50 %)");
    let bat = || {
        Box::new(
            Battery::new(Joules::new(200.0), 0.9, 0.03)
                .expect("valid battery")
                .with_state_of_charge(0.5),
        ) as Box<dyn EnergyStore + Send>
    };
    let rows = sweep_runner()
        .run(TRACKERS.to_vec(), |_, kind| run(kind, &cell, bat(), &trace))
        .into_iter()
        .collect::<Result<Vec<_>, NodeError>>()?;
    println!(
        "{}",
        render_table(
            &[
                "tracker",
                "gross",
                "overhead",
                "net",
                "uptime %",
                "store at end"
            ],
            &rows
        )
    );

    banner("Metrics — where the week's energy went (FOCV, supercapacitor)");
    // The same run again with the eh-obs recorder enabled: the ledger
    // splits the week's consumption into the paper's circuit blocks.
    // Observation is passive — the physics is bit-identical to the
    // uninstrumented row above (eh-node tests assert this).
    let mut tracker = FocvSampleHold::paper_prototype()?;
    let cfg = SimConfig::default_for(cell.clone())?
        .with_pv_cache(true)
        .with_store(sc())
        .with_load(DutyCycledLoad::typical_sensor_node()?)
        .with_obs(true);
    let report = NodeSimulation::new(cfg)?.run(&mut tracker, &trace, Seconds::new(10.0))?;
    let metrics = report
        .metrics
        .expect("obs-enabled run carries a metric store");
    println!("{}", metrics.to_table());

    println!("Reading: the harvest side is week-positive with either tracker (net");
    println!("≈140–150 J against a ~12 J weekly load+overhead demand), but storage");
    println!("sizing decides survival. The 0.22 F supercapacitor (≈2.4 J usable)");
    println!("cannot bank enough on Friday to ride out the blinds-closed weekend, so");
    println!("the node browns out Sunday night. The 200 J battery ends the week");
    println!("FULLER than it started (≈193 J vs 100 J) at 100 % uptime — the paper's");
    println!("\"operate indefinitely\" in steady state.");
    Ok(())
}
