//! Extension experiment — lighting-type changes at constant metered lux.
//!
//! The paper's abstract: the technique matters "in particular for sensors
//! which may be exposed to different types of lighting (such as
//! body-worn or mobile sensors)". A lux meter (or a lux-calibrated
//! photodetector tracker) weighs light like an eye; the cell weighs it by
//! its own spectral response. When the light *type* changes at constant
//! metered lux, the cell's operating point moves — the proposed
//! technique's direct Voc sampling follows it, while lux-proxy and
//! fixed-voltage techniques mis-aim.
//!
//! Run with `cargo run -p eh-bench --bin lighting_mix_study`.

use eh_bench::{banner, fmt, render_table, sweep_runner};
use eh_pv::spectrum::{effective_illuminance, CellTechnology};
use eh_pv::{presets, LightSource};
use eh_units::{Lux, Volts};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cell = presets::sanyo_am1815();
    let metered = Lux::new(500.0);
    let k = 0.596;

    banner("Same metered 500 lux, different light sources (AM-1815, a-Si)");
    let sources = [
        ("fluorescent (calibration)", LightSource::Fluorescent),
        ("daylight through window", LightSource::Daylight),
        ("white LED", LightSource::Led),
        ("incandescent", LightSource::Incandescent),
    ];

    let rows = sweep_runner()
        .run(sources.to_vec(), |_, (name, source)| {
            let eff = effective_illuminance(metered, CellTechnology::AmorphousSilicon, source);
            let voc = cell.open_circuit_voltage(eff)?;
            let mpp = cell.mpp(eff)?;

            // FOCV: measures the actual Voc, holds k·Voc.
            let p_focv = cell.power_at(voc * k, eff)?;
            // Fixed voltage: pinned at 3.0 V whatever happens.
            let p_fixed = cell.power_at(Volts::new(3.0).min(voc), eff)?;
            // Photodetector: believes the metered lux and aims for the
            // fluorescent-calibrated Voc estimate at that lux.
            let voc_est = cell.open_circuit_voltage(metered)?;
            let p_photo = cell.power_at((voc_est * k).min(voc), eff)?;

            Ok(vec![
                name.to_owned(),
                format!("{voc}"),
                format!("{}", mpp.power),
                fmt(100.0 * p_focv.value() / mpp.power.value().max(1e-15), 1),
                fmt(100.0 * p_fixed.value() / mpp.power.value().max(1e-15), 1),
                fmt(100.0 * p_photo.value() / mpp.power.value().max(1e-15), 1),
            ])
        })
        .into_iter()
        .collect::<Result<Vec<_>, eh_pv::PvError>>()?;
    println!(
        "{}",
        render_table(
            &[
                "light source",
                "true Voc",
                "MPP power",
                "FOCV capture %",
                "fixed 3 V capture %",
                "lux-proxy capture %"
            ],
            &rows
        )
    );

    banner("The same comparison on a crystalline cell (lux-proxy error grows)");
    let csi = presets::crystalline_outdoor();
    let rows = sweep_runner()
        .run(sources.to_vec(), |_, (name, source)| {
            let eff = effective_illuminance(metered, CellTechnology::CrystallineSilicon, source);
            let voc = csi.open_circuit_voltage(eff)?;
            let mpp = csi.mpp(eff)?;
            let p_focv = csi.power_at(voc * 0.78, eff)?; // c-Si k ≈ 0.78
            let voc_est = csi.open_circuit_voltage(metered)?;
            let p_photo = csi.power_at((voc_est * 0.78).min(voc), eff)?;
            Ok(vec![
                name.to_owned(),
                format!("{voc}"),
                format!("{}", mpp.power),
                fmt(100.0 * p_focv.value() / mpp.power.value().max(1e-15), 1),
                fmt(100.0 * p_photo.value() / mpp.power.value().max(1e-15), 1),
            ])
        })
        .into_iter()
        .collect::<Result<Vec<_>, eh_pv::PvError>>()?;
    println!(
        "{}",
        render_table(
            &[
                "light source",
                "true Voc",
                "MPP power",
                "FOCV capture %",
                "lux-proxy capture %"
            ],
            &rows
        )
    );

    println!("Reading: two effects separate here. (1) Capture: FOCV is flat across");
    println!("sources because it measures the cell itself; the lux-proxy tracker");
    println!("loses a few points exactly where the spectrum diverges from its");
    println!("calibration (c-Si under incandescent light sees 2.6× the photocurrent");
    println!("the lux meter implies). The losses stay small only because these");
    println!("cells have broad power maxima — the same forgiveness the paper's");
    println!("Eq. (2) analysis leans on. (2) Energy: at the SAME metered 500 lux the");
    println!("a-Si cell yields 359 µW of daylight but only 213 µW of incandescent");
    println!("light — lux is a poor proxy for harvestable power, so any tracker");
    println!("calibrated in lux (photodetector, pilot-cell sizing, fixed-voltage");
    println!("tuning) inherits a spectrum-dependent error that direct Voc sampling");
    println!("never sees. That is the paper's \"no pilot cell or photodiode\" case.");
    Ok(())
}
