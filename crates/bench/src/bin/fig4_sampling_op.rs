//! Experiment E3 — Fig. 4 of the paper: detail of a sampling operation at
//! 1000 lux. The PULSE line disconnects all loads from the solar cell and
//! updates HELD_SAMPLE; a small ripple is visible on HELD_SAMPLE while
//! the sample is being taken.
//!
//! Run with `cargo run -p eh-bench --bin fig4_sampling_op`.

use eh_bench::{banner, fmt, render_table, sparkline};
use eh_core::{FocvMpptSystem, SystemConfig};
use eh_units::{Lux, Seconds, Volts};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = SystemConfig::paper_prototype()?;
    cfg.record_traces = true;
    cfg.cold_start.set_rail_voltage(Volts::new(3.3)); // bench supply, as in Fig. 4
    let mut sys = FocvMpptSystem::new(cfg)?;
    let lux = Lux::new(1000.0);

    // Let the first sample settle, then capture the second sampling
    // operation with sub-millisecond resolution.
    sys.run_constant(lux, Seconds::new(68.8), Seconds::new(0.1))?;
    let window_start = sys.time();
    sys.run_constant(lux, Seconds::new(0.6), Seconds::from_milli(0.5))?;

    banner("Fig. 4 — sampling operation at 1000 lux");
    let pulse = sys.pulse_trace().expect("traces enabled");
    let held = sys.held_sample_trace().expect("traces enabled");
    let pv = sys.pv_voltage_trace().expect("traces enabled");

    // Locate the pulse in the fine window.
    let rises = pulse.rising_edges(1.65);
    let rise = rises.last().copied().unwrap_or(window_start);
    let falls: Vec<Seconds> = pulse
        .falling_edges(1.65)
        .into_iter()
        .filter(|t| *t > rise)
        .collect();
    let fall = falls
        .first()
        .copied()
        .unwrap_or(rise + Seconds::from_milli(39.0));
    println!(
        "PULSE width measured from the trace: {} (paper: 39 ms)",
        fall - rise
    );

    // Tabulate the window around the pulse.
    let t0 = rise - Seconds::from_milli(10.0);
    let mut rows = Vec::new();
    let mut held_samples = Vec::new();
    for n in 0..24 {
        let t = t0 + Seconds::from_milli(n as f64 * 2.5);
        let p = pulse.value_at(t).unwrap_or(0.0);
        let h = held.value_at(t).unwrap_or(0.0);
        let v = pv.value_at(t).unwrap_or(0.0);
        held_samples.push(h);
        rows.push(vec![
            format!("{:+.1}", (t - rise).as_milli()),
            if p > 1.65 {
                "HIGH".into()
            } else {
                "low".into()
            },
            fmt(h, 4),
            fmt(v, 3),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["t−rise (ms)", "PULSE", "HELD_SAMPLE (V)", "PV_IN (V)"],
            &rows
        )
    );
    println!(
        "HELD_SAMPLE during the window: {}",
        sparkline(&held_samples)
    );

    // Ripple measurement, as the paper describes it.
    let settled = held
        .value_at(rise - Seconds::from_milli(5.0))
        .unwrap_or(0.0);
    let min = held.min_in(rise, fall).unwrap_or(settled);
    let max = held.max_in(rise, fall).unwrap_or(settled);
    let ripple = (max - settled).max(settled - min);
    println!(
        "\nHELD_SAMPLE ripple during sampling: {} mV (mitigated by R3/C3, as in the paper)",
        fmt(ripple * 1e3, 2)
    );
    println!(
        "PV_IN rises to its open-circuit value during PULSE ({} V at 1000 lux) and",
        fmt(pv.max_in(rise, fall).unwrap_or(0.0), 2)
    );
    println!("returns to the regulated operating point afterwards.");
    Ok(())
}
