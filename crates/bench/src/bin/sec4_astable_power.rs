//! Experiment E6 — §IV-A bench measurements: the astable multivibrator
//! produced an ON period of 39 ms and an OFF period of 69 s, and the
//! astable + sample-and-hold combination drew an average of 7.6 µA from a
//! 3.3 V mains supply.
//!
//! Run with `cargo run -p eh-bench --bin sec4_astable_power`.

use eh_analog::astable::AstableMultivibrator;
use eh_analog::sample_hold::{SampleHold, SampleHoldConfig};
use eh_analog::{CurrentLedger, Trace};
use eh_bench::{banner, fmt, render_table};
use eh_sim::{drive, Light, SimError, StepInput, StepOutput, Stepper};
use eh_units::{Lux, Seconds, Volts};

/// Steps the astable at a fixed rate, recording the PULSE waveform.
struct PulseRecorder {
    astable: AstableMultivibrator,
    trace: Trace,
}

impl Stepper for PulseRecorder {
    type Error = SimError;
    fn step(
        &mut self,
        t: Seconds,
        dt: Seconds,
        _input: &StepInput,
    ) -> Result<StepOutput, SimError> {
        let s = self.astable.step(dt);
        self.trace
            .record(t + dt, if s.output_high { 3.3 } else { 0.0 });
        Ok(StepOutput::full(dt))
    }
}

/// Replays the paper's bench current measurement: astable + S&H on a
/// 3.3 V supply, advancing the clock from transition to transition via
/// the engine's dwell mechanism.
struct DrawProbe {
    astable: AstableMultivibrator,
    sh: SampleHold,
    ledger: CurrentLedger,
}

impl Stepper for DrawProbe {
    type Error = SimError;
    fn step(
        &mut self,
        _t: Seconds,
        planned: Seconds,
        _input: &StepInput,
    ) -> Result<StepOutput, SimError> {
        let seg = self
            .astable
            .time_to_next_transition()
            .max(Seconds::from_milli(1.0))
            .min(planned);
        let pulse = self.astable.output_high();
        let a = self.astable.step(seg);
        let s = self.sh.step(Volts::new(5.44), pulse, seg);
        self.ledger
            .accumulate("astable (U1 + network)", a.supply_charge / seg, seg);
        self.ledger.accumulate(
            "sample-and-hold (U2/U4/U5 + aux)",
            s.supply_charge / seg,
            seg,
        );
        self.ledger.advance(seg);
        Ok(StepOutput::dwell(seg))
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("§IV-A — astable timing");
    let astable = AstableMultivibrator::paper_configuration()?;
    let (t_on, t_off) = astable.analytic_periods();
    println!("analytic ON period  : {}  (paper: 39 ms)", t_on);
    println!("analytic OFF period : {}  (paper: 69 s)", t_off);

    // Measure from a simulated waveform too.
    let mut recorder = PulseRecorder {
        astable,
        trace: Trace::new("PULSE"),
    };
    drive(
        &mut recorder,
        &Light::constant(Lux::ZERO, Seconds::new(3.2 * 69.05)),
        Seconds::from_milli(2.0),
    )?;
    let trace = recorder.trace;
    let highs = trace.high_durations(1.65);
    let rises = trace.rising_edges(1.65);
    let mean_on: f64 = highs.iter().map(|d| d.as_milli()).sum::<f64>() / highs.len().max(1) as f64;
    let mean_period = if rises.len() >= 2 {
        (rises.last().unwrap().value() - rises[0].value()) / (rises.len() - 1) as f64
    } else {
        f64::NAN
    };
    println!(
        "simulated ON period : {} ms (waveform measurement)",
        fmt(mean_on, 1)
    );
    println!("simulated period    : {} s", fmt(mean_period, 2));

    banner("§IV-A — astable + sample-and-hold current draw at 3.3 V");
    // Bench setup: both blocks on a mains supply, a 5.44 V source on the
    // S&H input, sampling gated by the astable — exactly the paper's
    // measurement configuration.
    let mut probe = DrawProbe {
        astable: AstableMultivibrator::paper_configuration()?,
        sh: SampleHold::new(SampleHoldConfig::paper_configuration(0.298)?)?,
        ledger: CurrentLedger::new(),
    };
    let total = Seconds::new(5.0 * 69.05);
    drive(
        &mut probe,
        &Light::constant(Lux::ZERO, total),
        Seconds::new(1.0),
    )?;
    let ledger = probe.ledger;
    let avg = ledger.average_current_elapsed();
    println!("average combined draw: {} (paper measurement: 7.6 µA)", avg);
    println!(
        "energy from 3.3 V bench supply over {}: {}",
        total,
        ledger.energy_from_supply(Volts::new(3.3))
    );
    let rows: Vec<Vec<String>> = ledger
        .breakdown()
        .into_iter()
        .map(|e| {
            let i = e.charge / ledger.elapsed();
            vec![e.name, format!("{i}")]
        })
        .collect();
    println!("{}", render_table(&["consumer", "average current"], &rows));

    banner("§IV-A — overhead vs the AM-1815 at 200 lux");
    // Paper: the AM-1815's MPP is 42 µA at 3.0 V, so <18 % of the 200 lux
    // cell power goes to the metrology.
    let cell_power = 42e-6 * 3.0;
    let metrology_power = avg.value() * 3.3;
    println!(
        "cell MPP power at 200 lux : {} µW (42 µA × 3.0 V)",
        fmt(cell_power * 1e6, 1)
    );
    println!(
        "metrology power           : {} µW",
        fmt(metrology_power * 1e6, 1)
    );
    println!(
        "fraction                  : {} %  (paper: < 18 % at 200 lux, < 20 % in §IV-B)",
        fmt(100.0 * metrology_power / cell_power, 1)
    );
    Ok(())
}
