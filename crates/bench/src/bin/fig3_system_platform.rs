//! Experiment E3b — Fig. 3 of the paper: the simplified overall system
//! platform. A diagram cannot be "measured", so this binary does the
//! next best thing: it renders the block diagram with the paper's signal
//! names, instantiates every block from this repository, and verifies
//! each printed connection by driving it.
//!
//! Run with `cargo run -p eh-bench --bin fig3_system_platform`.

use eh_analog::astable::AstableMultivibrator;
use eh_analog::sample_hold::{SampleHold, SampleHoldConfig};
use eh_bench::banner;
use eh_converter::{ColdStart, InputRegulatedConverter};
use eh_core::{FocvMpptSystem, SystemConfig};
use eh_pv::presets;
use eh_units::{Lux, Seconds, Volts};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Fig. 3 — simplified overall system platform");
    println!(
        r#"
                 PV_IN
   ┌─────────┐     │   M1/M2/M3 (load disconnect during PULSE)
   │ PV cell ├──●──┼──────────────┬──────────────────────────┐
   └─────────┘  │  │              │                          │
                │  │         ┌────▼──────┐   HELD_SAMPLE  ┌──▼─────────┐
           D1 ──▼  │         │ Sample &  ├───────────────►│ Switching  │──► storage
        ┌─────────┐│  PULSE  │ Hold      │    ACTIVE      │ converter  │
        │ C1 cold ││◄────────┤ (U2,S1,   ├───────────────►│ (buck-     │
        │  start  ││         │  C_hold,  │                │  boost,    │
        └────┬────┘│         │  U4,R3/C3,│                │  IN+ gated │
             │INIT │         │  U5)      │                │  by M8)    │
             ▼     │         └────▲──────┘                └────────────┘
        rail on/off│              │ PULSE
                   │         ┌────┴──────┐
                   └────────►│  Astable  │
                             │ multivib. │
                             │ (U1 + RC) │
                             └───────────┘
"#
    );

    banner("structural verification — every block instantiates and connects");

    // Block 1: the PV cell produces the signal at PV_IN.
    let cell = presets::sanyo_am1815();
    let voc = cell.open_circuit_voltage(Lux::new(1000.0))?;
    println!("[ok] PV cell          : AM-1815, Voc(1000 lx) = {voc}");

    // Block 2: C1/D1 cold start gates the rail.
    let cs = ColdStart::paper_prototype()?;
    println!(
        "[ok] cold start (C1/D1): enable at 2.2 V, dropout 1.8 V, knee = {}",
        cs.charging_knee()
    );

    // Block 3: the astable generates PULSE.
    let astable = AstableMultivibrator::paper_configuration()?;
    let (t_on, t_off) = astable.analytic_periods();
    println!("[ok] astable (U1)     : PULSE {t_on} every {t_off}");

    // Block 4: the sample-and-hold turns PULSE + PV_IN into HELD_SAMPLE
    // and ACTIVE.
    let mut sh = SampleHold::new(SampleHoldConfig::paper_configuration(0.298)?)?;
    let step = sh.step(voc, true, Seconds::from_milli(39.0));
    println!(
        "[ok] sample-and-hold  : HELD_SAMPLE = {} (= Voc·k·α), ACTIVE = {}",
        step.held_sample, step.active
    );

    // Block 5: the converter regulates PV_IN at HELD_SAMPLE/α.
    let conv = InputRegulatedConverter::paper_prototype()?;
    let v_ref = Volts::new(step.held_sample.value() / 0.5);
    let i = cell.current_at(v_ref, Lux::new(1000.0))?;
    let harvest = conv.harvest(v_ref, i, Seconds::new(69.0));
    println!(
        "[ok] converter        : regulates PV at {v_ref}, stores {} per hold period",
        harvest.output_energy
    );

    // The composed system runs the whole diagram.
    let mut sys = FocvMpptSystem::new(SystemConfig::paper_prototype()?)?;
    let report = sys.run_constant(Lux::new(1000.0), Seconds::new(90.0), Seconds::new(0.05))?;
    println!(
        "[ok] composed platform: cold start {}, {} PULSEs, k = {}",
        report
            .cold_start_time
            .map(|t| format!("{t}"))
            .unwrap_or_else(|| "never".into()),
        report.pulses,
        report.measured_k
    );
    println!("\nEvery block of Fig. 3 exists in the library and the composition");
    println!("reproduces the interconnect behaviour the figure describes.");
    Ok(())
}
