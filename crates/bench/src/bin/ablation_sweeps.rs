//! Experiment E9 — ablations of the design choices DESIGN.md calls out:
//!
//! 1. hold period (the paper fixes 69 s; §II-B argues >60 s is justified);
//! 2. k trim (the paper's R2 potentiometer, nominal range 0.6–0.8);
//! 3. hold-capacitor leakage (the paper insists on a low-leakage
//!    polyester part);
//! 4. the R3/C3 ripple filter.
//!
//! Every parameter sweep fans out on the shared [`SweepRunner`]; the
//! hold-period sweep is additionally timed at 1 worker and at the
//! machine's parallelism to log the measured speedup.
//!
//! Run with `cargo run -p eh-bench --bin ablation_sweeps`.

use std::time::Instant;

use eh_analog::sample_hold::{SampleHold, SampleHoldConfig};
use eh_bench::{banner, fmt, render_table, sweep_runner};
use eh_core::baselines::FocvSampleHold;
use eh_env::{profiles, sampling_error, TimeSeries};
use eh_node::{NodeError, NodeSimulation, SimConfig};
use eh_pv::{presets, PvCell};
use eh_sim::{drive, Light, SimError, StepInput, StepOutput, Stepper, SweepRunner};
use eh_units::{Amps, Farads, Lux, Ohms, Seconds, Volts, Watts};

fn voc_trace(cell: &PvCell, lux_trace: &TimeSeries) -> TimeSeries {
    lux_trace.map(|lux| {
        cell.open_circuit_voltage(Lux::new(lux.max(0.0)))
            .map(|v| v.value())
            .unwrap_or(0.0)
    })
}

/// The R3/C3 ripple experiment as a steppable system: a sample-and-hold
/// block sampling a 100 Hz-flickering Voc, tracking the held-line ripple
/// once the sample has settled.
struct FlickerProbe {
    sh: SampleHold,
    min: f64,
    max: f64,
}

impl Stepper for FlickerProbe {
    type Error = SimError;

    fn step(
        &mut self,
        t: Seconds,
        dt: Seconds,
        _input: &StepInput,
    ) -> Result<StepOutput, SimError> {
        // ±17 mV of 100 Hz ripple on Voc (a few % of lamp flicker
        // through the cell's logarithmic response).
        let v = 5.44 + 0.017 * (2.0 * std::f64::consts::PI * 100.0 * t.value()).sin();
        let s = self.sh.step(Volts::new(v), true, dt);
        // Judge ripple after the sample has settled (last 20 ms).
        if t.value() > 19e-3 {
            self.min = self.min.min(s.held_sample.value());
            self.max = self.max.max(s.held_sample.value());
        }
        Ok(StepOutput::full(dt))
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const SEED: u64 = 2011;
    let cell = presets::sanyo_am1815();
    // One pre-warmed operating-point cache shared by every simulation
    // sweep (clones of a warmed cell share the table); the exact `cell`
    // stays in use for the MPP/Voc reference numbers.
    let cached_cell = cell.clone().with_cache(true);
    cached_cell.cached()?;

    // ------------------------------------------------------------------
    banner("Ablation 1 — hold period: tracking error vs metrology energy");
    // Longer holds cost tracking error (Eq. (2)) but save astable/S&H
    // switching energy; the knee justifies the paper's 69 s.
    let mobile = profiles::semi_mobile_friday(SEED).decimate(5)?;
    let voc = voc_trace(&cell, &mobile);
    let periods = vec![5.0, 15.0, 39.0, 69.0, 180.0, 600.0, 1800.0];
    let hold_job = |_: usize, period_s: f64| -> Result<Vec<String>, NodeError> {
        let err = sampling_error::worst_case_mean_error(&voc, Seconds::new(period_s))?;
        // Net harvest over the day with this hold period.
        let mut tracker = FocvSampleHold::new(
            0.596,
            Seconds::new(period_s),
            Seconds::from_milli(39.0),
            Volts::new(3.3) * Amps::from_micro(8.0),
        )?;
        let mut sim =
            NodeSimulation::new(SimConfig::default_for(cached_cell.clone())?.with_pv_cache(true))?;
        let report = sim.run(&mut tracker, &mobile, Seconds::new(5.0))?;
        Ok(vec![
            fmt(period_s, 0),
            fmt(err * 1e3, 1),
            format!("{}", report.net_energy()),
            format!("{}", report.measurements),
        ])
    };
    // Time the same sweep serial and parallel: results must be identical
    // (the runner collects in input order), wall-clock should not be.
    let t0 = Instant::now();
    let rows_serial = SweepRunner::new(1).run(periods.clone(), hold_job);
    let serial_elapsed = t0.elapsed();
    let runner = sweep_runner();
    let workers = runner.workers();
    let t1 = Instant::now();
    let rows_parallel = runner.run(periods, hold_job);
    let parallel_elapsed = t1.elapsed();
    assert_eq!(rows_serial, rows_parallel, "sweep must be deterministic");
    let rows = rows_parallel.into_iter().collect::<Result<Vec<_>, _>>()?;
    println!(
        "{}",
        render_table(
            &[
                "hold period (s)",
                "Ē Voc (mV)",
                "net day energy",
                "samples/day"
            ],
            &rows
        )
    );
    println!(
        "sweep wall-clock: 1 worker {serial_elapsed:?}, {workers} workers {parallel_elapsed:?} \
         (speedup ×{:.2})",
        serial_elapsed.as_secs_f64() / parallel_elapsed.as_secs_f64().max(1e-9)
    );

    // ------------------------------------------------------------------
    banner("Ablation 2 — k trim (R2 potentiometer)");
    let trims = vec![0.45, 0.50, 0.55, 0.596, 0.65, 0.70, 0.80];
    let rows = sweep_runner()
        .run(trims, |_, k| -> Result<Vec<String>, NodeError> {
            let mut tracker = FocvSampleHold::new(
                k,
                Seconds::new(69.0),
                Seconds::from_milli(39.0),
                Volts::new(3.3) * Amps::from_micro(8.0),
            )?;
            let trace = profiles::constant(Lux::new(1000.0), Seconds::from_minutes(30.0));
            let mut sim = NodeSimulation::new(
                SimConfig::default_for(cached_cell.clone())?.with_pv_cache(true),
            )?;
            let report = sim.run(&mut tracker, &trace, Seconds::new(1.0))?;
            let mpp = cell.mpp(Lux::new(1000.0))?;
            let ideal = mpp.power.value() * trace.duration().value();
            Ok(vec![
                fmt(k, 3),
                format!("{}", report.gross_energy),
                fmt(100.0 * report.gross_energy.value() / ideal, 1),
            ])
        })
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
    println!(
        "{}",
        render_table(
            &["k trim", "gross energy (30 min @1 klux)", "% of ideal MPP"],
            &rows
        )
    );
    println!("The optimum sits near the cell's true k; the curve is flat near the");
    println!("top (the paper's <1 % loss argument) and falls away for bad trims.");

    // ------------------------------------------------------------------
    banner("Ablation 3 — hold-capacitor technology (leakage)");
    let mut rows = Vec::new();
    for (name, leak_r) in [
        ("polyester film (paper)", 1e5 / 1e-6), // τ = 10⁵ s at 1 µF
        ("ceramic X7R-class", 1e3 / 1e-6),      // τ = 10³ s
        ("electrolytic", 30.0 / 1e-6),          // τ = 30 s
    ] {
        let mut cfg = SampleHoldConfig::paper_configuration(0.298)?;
        cfg.hold_capacitance = Farads::from_micro(1.0);
        let mut sh = SampleHold::new(cfg)?;
        // Replace the hold cap's leakage by reconstructing: we emulate by
        // post-sample droop measurement through the block's own step.
        // (The polyester default is built in; for others we simulate the
        // droop analytically on top.)
        sh.step(Volts::new(5.44), true, Seconds::from_milli(39.0));
        let v0 = sh.hold_voltage().value();
        // Droop over one 69 s hold with the given insulation resistance.
        let tau: f64 = leak_r * 1e-6;
        let v_leak = v0 * (-69.0 / tau).exp();
        let droop_mv = (v0 - v_leak) * 1e3;
        let op_shift_mv = droop_mv / 0.5; // ×1/α at the PV node
        rows.push(vec![
            name.to_owned(),
            fmt(tau, 0),
            fmt(droop_mv, 2),
            fmt(op_shift_mv, 2),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "hold capacitor",
                "τ_ins (s)",
                "droop / 69 s (mV)",
                "PV op-point shift (mV)"
            ],
            &rows
        )
    );
    println!("Only the film capacitor keeps the droop inside the §II-B error budget");
    println!("(12.7–24.1 mV) — the paper's \"low-leakage polyester\" is load-bearing.");

    // ------------------------------------------------------------------
    banner("Ablation 4 — R3/C3 ripple filter (100 Hz lamp flicker on Voc)");
    // Under mains-driven artificial light the open-circuit voltage carries
    // a 100 Hz component; during the 39 ms sampling window it reaches the
    // hold capacitor through the divider. This is the "small ripple" of
    // Fig. 4, and what R3/C3 mitigate.
    for (name, r3, c3) in [
        ("with R3/C3 (paper)", 47e3, 100e-9),
        ("without filter", 1.0, 1e-12),
    ] {
        let mut cfg = SampleHoldConfig::paper_configuration(0.298)?;
        cfg.filter_resistance = Ohms::new(r3);
        cfg.filter_capacitance = Farads::new(c3);
        let mut sh = SampleHold::new(cfg)?;
        // Pre-charge with a clean sample, then resample under flicker.
        sh.step(Volts::new(5.44), true, Seconds::from_milli(39.0));
        sh.step(Volts::new(5.44), false, Seconds::new(69.0));
        let mut probe = FlickerProbe {
            sh,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        };
        drive(
            &mut probe,
            &Light::constant(Lux::ZERO, Seconds::from_milli(39.0)),
            Seconds::from_milli(0.05),
        )?;
        let ripple = (probe.max - probe.min) * 1e3;
        println!(
            "{name:22}: HELD_SAMPLE ripple during sampling = {} mV pp",
            fmt(ripple, 3)
        );
    }
    println!("\nThe filter damps the mains flicker that rides on the sample — the");
    println!("\"small ripple\" of Fig. 4 \"mitigated by the combination of R3 and C3\".");

    // ------------------------------------------------------------------
    banner("Ablation 5 — metrology budget sensitivity");
    let trace = profiles::constant(Lux::new(200.0), Seconds::from_hours(1.0));
    let budgets = vec![2.0, 8.0, 42.0, 150.0, 600.0];
    let rows = sweep_runner()
        .run(
            budgets,
            |_, overhead_ua| -> Result<Vec<String>, NodeError> {
                let mut tracker = FocvSampleHold::new(
                    0.596,
                    Seconds::new(69.0),
                    Seconds::from_milli(39.0),
                    Watts::new(3.3 * overhead_ua * 1e-6),
                )?;
                let mut sim = NodeSimulation::new(
                    SimConfig::default_for(cached_cell.clone())?.with_pv_cache(true),
                )?;
                let report = sim.run(&mut tracker, &trace, Seconds::new(1.0))?;
                Ok(vec![
                    fmt(overhead_ua, 0),
                    format!("{}", report.net_energy()),
                    if report.is_net_positive() {
                        "yes".into()
                    } else {
                        "NO".into()
                    },
                ])
            },
        )
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
    println!(
        "{}",
        render_table(
            &[
                "tracker draw (µA @3.3 V)",
                "net energy (1 h @200 lux)",
                "net-positive?"
            ],
            &rows
        )
    );
    println!("At the AM-1815's 200 lux output (~126 µW) the break-even tracker budget");
    println!("is a few tens of µA — which is why the paper's 8 µA matters.");

    // ------------------------------------------------------------------
    banner("Ablation 6 — cell temperature (FOCV self-compensates, fixed V does not)");
    // §IV-A avoided >5000 lux to prevent "excessive heating of the PV
    // cell": Voc falls ~0.3 %/K, so a hot cell's MPP walks away from any
    // fixed reference while k·Voc follows it automatically.
    let mut rows = Vec::new();
    for temp_c in [0.0, 25.0, 40.0, 60.0] {
        let hot = presets::sanyo_am1815().with_temperature(eh_units::Celsius::new(temp_c));
        let lux = Lux::new(1000.0);
        let mpp = hot.mpp(lux)?;
        let voc = hot.open_circuit_voltage(lux)?;
        let p_focv = hot.power_at((voc * 0.596).min(voc), lux)?;
        let p_fixed = hot.power_at(Volts::new(3.0).min(voc), lux)?;
        rows.push(vec![
            fmt(temp_c, 0),
            format!("{voc}"),
            format!("{}", mpp.power),
            fmt(100.0 * p_focv.value() / mpp.power.value(), 1),
            fmt(100.0 * p_fixed.value() / mpp.power.value(), 1),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "cell temp (°C)",
                "Voc @1 klux",
                "MPP power",
                "FOCV capture %",
                "fixed 3.0 V capture %"
            ],
            &rows
        )
    );
    println!("Finding: although Voc drops ~1.2 V over 60 K, this a-Si cell's MPP");
    println!("voltage barely moves (the photo-shunt, not the diode, sets the knee),");
    println!("and the power maximum is broad — so BOTH techniques stay above 98 %.");
    println!("FOCV achieves this with no per-cell tuning, while the fixed reference");
    println!("only survives because 3.0 V happens to be this very cell's plateau —");
    println!("the tuning dependence the paper's mobile scenario breaks.");
    Ok(())
}
