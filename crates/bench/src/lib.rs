//! Shared reporting helpers for the experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` §4 for the index). The helpers here render
//! aligned plain-text tables and simple ASCII sparklines so the output
//! is readable in a terminal and diffable in CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use eh_serve::envcfg::{positive_usize, EnvError};
use eh_sim::SweepRunner;

/// Parses a worker-count override from command-line arguments
/// (`--workers N` or `--workers=N`) and the `EH_WORKERS` environment
/// variable; the command line wins.
///
/// Parsing is strict and shared with the service's `EH_SERVE_*`
/// handling ([`eh_serve::envcfg`]): zero, negative, or unparsable
/// values are a hard [`EnvError`] naming the knob and the rejected
/// value. They used to be silently ignored, which let `EH_WORKERS=lots`
/// degrade to the auto-sized default and quietly measure the wrong
/// configuration.
///
/// # Errors
///
/// [`EnvError`] when an override is present but not a positive integer.
pub fn parse_workers<I, S>(args: I, env_value: Option<&str>) -> Result<Option<usize>, EnvError>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let arg = arg.as_ref();
        if arg == "--workers" {
            let raw = args.next();
            let raw = raw.as_ref().map_or("", AsRef::as_ref);
            return positive_usize("--workers", raw).map(Some);
        }
        if let Some(v) = arg.strip_prefix("--workers=") {
            return positive_usize("--workers", v).map(Some);
        }
    }
    env_value
        .map(|raw| positive_usize("EH_WORKERS", raw))
        .transpose()
}

/// Returns whether a bare long flag (e.g. `--smoke`) is present in the
/// arguments.
pub fn parse_flag<I, S>(args: I, name: &str) -> bool
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    args.into_iter().any(|a| a.as_ref() == name)
}

/// Whether this invocation asked for the CI smoke profile (`--smoke`):
/// the same code paths and assertions at a fraction of the problem
/// size, so a push gets end-to-end coverage without bench-scale
/// wall-clock. Smoke runs never gate on timing.
pub fn smoke_mode() -> bool {
    parse_flag(std::env::args().skip(1), "--smoke")
}

/// Which fleet engines an experiment binary should exercise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineChoice {
    /// Only the per-node reference engine.
    PerNode,
    /// Only the struct-of-arrays batch engine.
    Batch,
    /// Only the wide-lane vectorized engine.
    Vectorized,
    /// The two bit-identical engines, side by side (the bench then
    /// also asserts their reports are bit-identical).
    Both,
    /// Every engine (the default): the bit-identical pair plus the
    /// vectorized engine under its bounded-divergence contract.
    All,
}

impl EngineChoice {
    /// The fleet engines this choice selects, reference engine first.
    pub fn engines(self) -> Vec<eh_fleet::Engine> {
        match self {
            EngineChoice::PerNode => vec![eh_fleet::Engine::PerNode],
            EngineChoice::Batch => vec![eh_fleet::Engine::Batch],
            EngineChoice::Vectorized => vec![eh_fleet::Engine::Vectorized],
            EngineChoice::Both => vec![eh_fleet::Engine::PerNode, eh_fleet::Engine::Batch],
            EngineChoice::All => eh_fleet::Engine::ALL.to_vec(),
        }
    }

    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            EngineChoice::PerNode => "per-node",
            EngineChoice::Batch => "batch",
            EngineChoice::Vectorized => "vectorized",
            EngineChoice::Both => "both",
            EngineChoice::All => "all",
        }
    }
}

/// Parses an engine selection from command-line arguments
/// (`--engine per-node|batch|both` or `--engine=...`) and the
/// `EH_ENGINE` environment variable; the command line wins. Unparsable
/// values are ignored so a typo degrades to the default instead of a
/// crash deep inside an experiment run.
pub fn parse_engine<I, S>(args: I, env_value: Option<&str>) -> Option<EngineChoice>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let parse = |s: &str| match s.trim().to_ascii_lowercase().as_str() {
        "both" => Some(EngineChoice::Both),
        "all" => Some(EngineChoice::All),
        other => eh_fleet::Engine::parse(other).map(|e| match e {
            eh_fleet::Engine::PerNode => EngineChoice::PerNode,
            eh_fleet::Engine::Batch => EngineChoice::Batch,
            eh_fleet::Engine::Vectorized => EngineChoice::Vectorized,
            _ => EngineChoice::All,
        }),
    };
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let arg = arg.as_ref();
        if arg == "--engine" {
            return args.next().and_then(|v| parse(v.as_ref()));
        }
        if let Some(v) = arg.strip_prefix("--engine=") {
            return parse(v);
        }
    }
    env_value.and_then(parse)
}

/// The engine selection for this invocation: `--engine` on the command
/// line, else the `EH_ENGINE` environment variable, else every engine.
pub fn engine_choice() -> EngineChoice {
    parse_engine(
        std::env::args().skip(1),
        std::env::var("EH_ENGINE").ok().as_deref(),
    )
    .unwrap_or(EngineChoice::All)
}

/// Clamps a worker-count sweep to the host's available parallelism,
/// returning whether anything was clamped.
///
/// Worker counts beyond `host_parallelism` cannot add speed — they only
/// add scheduling overhead, which used to show up as a *slowdown* on
/// the largest fleet rows when the hard-coded sweep (1, 2, 4, ...) ran
/// on a smaller container. The sweep is deduplicated and kept sorted;
/// at least one count (min 1) always survives.
pub fn clamp_worker_counts(counts: &mut Vec<usize>, host_parallelism: usize) -> bool {
    let host = host_parallelism.max(1);
    let clamped = counts.iter().any(|&c| c > host);
    for c in counts.iter_mut() {
        *c = (*c).clamp(1, host);
    }
    counts.sort_unstable();
    counts.dedup();
    clamped
}

/// The sweep runner every experiment binary should use: sized by
/// `--workers N` / `--workers=N` on the command line, else the
/// `EH_WORKERS` environment variable, else the machine's available
/// parallelism. A present-but-invalid override terminates the process
/// with exit code 2 and a message naming the knob — never a silent
/// fallback.
pub fn sweep_runner() -> SweepRunner {
    match parse_workers(
        std::env::args().skip(1),
        std::env::var("EH_WORKERS").ok().as_deref(),
    ) {
        Ok(Some(n)) => SweepRunner::new(n),
        Ok(None) => SweepRunner::auto(),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// Renders an aligned plain-text table.
///
/// ```
/// use eh_bench::render_table;
/// let out = render_table(
///     &["lux", "Voc (V)"],
///     &[vec!["200".into(), "4.978".into()], vec!["5000".into(), "5.91".into()]],
/// );
/// assert!(out.contains("200"));
/// assert!(out.lines().count() >= 4);
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (width, cell) in widths.iter_mut().zip(row.iter()) {
            *width = (*width).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    for (i, h) in headers.iter().enumerate() {
        out.push_str(&format!("| {:<width$} ", h, width = widths[i]));
    }
    out.push_str("|\n");
    sep(&mut out);
    for row in rows {
        for (i, width) in widths.iter().enumerate() {
            let cell = row.get(i).map(String::as_str).unwrap_or("");
            out.push_str(&format!("| {cell:<width$} "));
        }
        out.push_str("|\n");
    }
    sep(&mut out);
    out
}

/// Renders a series as a one-line ASCII sparkline (8 levels).
///
/// ```
/// use eh_bench::sparkline;
/// let s = sparkline(&[0.0, 0.5, 1.0]);
/// assert_eq!(s.chars().count(), 3);
/// ```
pub fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() || hi <= lo {
        return LEVELS[0].to_string().repeat(values.len());
    }
    values
        .iter()
        .map(|&v| {
            let f = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
            LEVELS[((f * 7.0).round() as usize).min(7)]
        })
        .collect()
}

/// Formats a number with the given number of decimal places, trimming a
/// possible negative zero.
pub fn fmt(v: f64, decimals: usize) -> String {
    let s = format!("{v:.decimals$}");
    if s.starts_with("-0.") && s[1..].parse::<f64>() == Ok(0.0) {
        s[1..].to_owned()
    } else {
        s
    }
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(&["a", "long header"], &[vec!["xxxxxx".into(), "1".into()]]);
        let lines: Vec<&str> = t.lines().collect();
        // All rows are equally wide.
        assert!(lines
            .windows(2)
            .all(|w| w[0].chars().count() == w[1].chars().count()));
        assert!(t.contains("long header"));
    }

    #[test]
    fn table_handles_short_rows() {
        let t = render_table(&["a", "b"], &[vec!["1".into()]]);
        assert!(t.contains("| 1 |"));
    }

    #[test]
    fn sparkline_levels() {
        let s = sparkline(&[0.0, 1.0]);
        assert_eq!(s, "▁█");
        let flat = sparkline(&[2.0, 2.0, 2.0]);
        assert_eq!(flat, "▁▁▁");
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn workers_override_resolution() {
        // Command line beats the environment.
        assert_eq!(parse_workers(["--workers", "4"], Some("2")), Ok(Some(4)));
        assert_eq!(parse_workers(["--workers=8"], Some("2")), Ok(Some(8)));
        // Environment fallback.
        assert_eq!(parse_workers(Vec::<String>::new(), Some("3")), Ok(Some(3)));
        assert_eq!(parse_workers(["--other"], Some(" 5 ")), Ok(Some(5)));
        // No override anywhere: auto-size.
        assert_eq!(parse_workers(Vec::<String>::new(), None), Ok(None));
    }

    #[test]
    fn workers_garbage_is_a_hard_error() {
        // A present-but-invalid override must fail loudly, naming the
        // knob and the rejected value — never degrade to auto.
        let err = parse_workers(["--workers", "zero"], None).unwrap_err();
        assert_eq!(err.source, "--workers");
        assert_eq!(err.raw, "zero");
        assert!(parse_workers(["--workers=0"], Some("2")).is_err());
        assert!(parse_workers(["--workers"], None).is_err());
        let err = parse_workers(Vec::<String>::new(), Some("lots")).unwrap_err();
        assert_eq!(err.source, "EH_WORKERS");
        assert!(err.to_string().contains("positive integer"));
    }

    #[test]
    fn engine_override_resolution() {
        // Command line beats the environment.
        assert_eq!(
            parse_engine(["--engine", "batch"], Some("per-node")),
            Some(EngineChoice::Batch)
        );
        assert_eq!(
            parse_engine(["--engine=per-node"], Some("batch")),
            Some(EngineChoice::PerNode)
        );
        assert_eq!(
            parse_engine(["--engine", "Both"], None),
            Some(EngineChoice::Both)
        );
        // Environment fallback.
        assert_eq!(
            parse_engine(Vec::<String>::new(), Some("batch")),
            Some(EngineChoice::Batch)
        );
        assert_eq!(
            parse_engine(["--engine", "all"], None),
            Some(EngineChoice::All)
        );
        assert_eq!(
            parse_engine(["--engine=vectorized"], None),
            Some(EngineChoice::Vectorized)
        );
        // Garbage degrades to None (default), never panics.
        assert_eq!(parse_engine(["--engine", "warp"], None), None);
        assert_eq!(parse_engine(Vec::<String>::new(), None), None);
        // Selected engine lists are reference-first.
        assert_eq!(
            EngineChoice::Both.engines(),
            vec![eh_fleet::Engine::PerNode, eh_fleet::Engine::Batch]
        );
        assert_eq!(EngineChoice::Batch.engines(), vec![eh_fleet::Engine::Batch]);
        assert_eq!(EngineChoice::All.engines(), eh_fleet::Engine::ALL.to_vec());
    }

    #[test]
    fn worker_counts_clamp_to_host_parallelism() {
        let mut counts = vec![1, 2, 4, 16];
        assert!(clamp_worker_counts(&mut counts, 2));
        assert_eq!(counts, vec![1, 2], "oversubscribed counts must collapse");
        let mut counts = vec![1, 2, 4];
        assert!(!clamp_worker_counts(&mut counts, 8));
        assert_eq!(counts, vec![1, 2, 4], "in-budget counts are untouched");
        // Degenerate host report: at least one worker survives.
        let mut counts = vec![4, 8];
        assert!(clamp_worker_counts(&mut counts, 0));
        assert_eq!(counts, vec![1]);
    }

    #[test]
    fn flag_detection() {
        assert!(parse_flag(["--smoke"], "--smoke"));
        assert!(parse_flag(["--workers", "4", "--smoke"], "--smoke"));
        assert!(!parse_flag(["--smoked"], "--smoke"));
        assert!(!parse_flag(Vec::<String>::new(), "--smoke"));
    }

    #[test]
    fn fmt_trims_negative_zero() {
        assert_eq!(fmt(-0.0001, 2), "0.00");
        assert_eq!(fmt(1.2345, 2), "1.23");
        assert_eq!(fmt(-1.5, 1), "-1.5");
    }
}
