//! Shared reporting helpers for the experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` §4 for the index). The helpers here render
//! aligned plain-text tables and simple ASCII sparklines so the output
//! is readable in a terminal and diffable in CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Renders an aligned plain-text table.
///
/// ```
/// use eh_bench::render_table;
/// let out = render_table(
///     &["lux", "Voc (V)"],
///     &[vec!["200".into(), "4.978".into()], vec!["5000".into(), "5.91".into()]],
/// );
/// assert!(out.contains("200"));
/// assert!(out.lines().count() >= 4);
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (width, cell) in widths.iter_mut().zip(row.iter()) {
            *width = (*width).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    for (i, h) in headers.iter().enumerate() {
        out.push_str(&format!("| {:<width$} ", h, width = widths[i]));
    }
    out.push_str("|\n");
    sep(&mut out);
    for row in rows {
        for (i, width) in widths.iter().enumerate() {
            let cell = row.get(i).map(String::as_str).unwrap_or("");
            out.push_str(&format!("| {cell:<width$} "));
        }
        out.push_str("|\n");
    }
    sep(&mut out);
    out
}

/// Renders a series as a one-line ASCII sparkline (8 levels).
///
/// ```
/// use eh_bench::sparkline;
/// let s = sparkline(&[0.0, 0.5, 1.0]);
/// assert_eq!(s.chars().count(), 3);
/// ```
pub fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() || hi <= lo {
        return LEVELS[0].to_string().repeat(values.len());
    }
    values
        .iter()
        .map(|&v| {
            let f = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
            LEVELS[((f * 7.0).round() as usize).min(7)]
        })
        .collect()
}

/// Formats a number with the given number of decimal places, trimming a
/// possible negative zero.
pub fn fmt(v: f64, decimals: usize) -> String {
    let s = format!("{v:.decimals$}");
    if s.starts_with("-0.") && s[1..].parse::<f64>() == Ok(0.0) {
        s[1..].to_owned()
    } else {
        s
    }
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["a", "long header"],
            &[vec!["xxxxxx".into(), "1".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        // All rows are equally wide.
        assert!(lines.windows(2).all(|w| w[0].chars().count() == w[1].chars().count()));
        assert!(t.contains("long header"));
    }

    #[test]
    fn table_handles_short_rows() {
        let t = render_table(&["a", "b"], &[vec!["1".into()]]);
        assert!(t.contains("| 1 |"));
    }

    #[test]
    fn sparkline_levels() {
        let s = sparkline(&[0.0, 1.0]);
        assert_eq!(s, "▁█");
        let flat = sparkline(&[2.0, 2.0, 2.0]);
        assert_eq!(flat, "▁▁▁");
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn fmt_trims_negative_zero() {
        assert_eq!(fmt(-0.0001, 2), "0.00");
        assert_eq!(fmt(1.2345, 2), "1.23");
        assert_eq!(fmt(-1.5, 1), "-1.5");
    }
}
