//! Criterion microbenches for the per-step components of the fleet
//! engines — the reproducible form of the profiling table in
//! `DESIGN.md` §10/§14.
//!
//! Each pair benches one strength reduction the vectorized engine
//! applies against the scalar form the batch engine pays per step:
//!
//! - **load walk** — `energy_demand` (absolute clock, one `rem_euclid`
//!   per step) vs `energy_demand_with_cursor` (incremental
//!   [`PhaseAccumulator`]) vs `energy_profile` (prefix-sum
//!   [`LoadEnergyProfile`], the vectorized engine's form).
//! - **supercap round-trip** — voltage-domain [`Supercapacitor`]
//!   (deposit + withdraw + leak, √ per op) vs the energy-domain
//!   [`EnergyDomainSupercap`] (√ only in `leak`'s voltage observation).
//! - **surface lookup** — scalar [`CachedPvSurface::connect_point`]
//!   (`ln`-derived cell index per query) vs the cursored
//!   [`CachedPvSurface::connect_point_lane`] / 8-wide
//!   [`CachedPvSurface::eval_lanes`] (cell index reused while the
//!   illuminance stays in cell).
//!
//! The drives mimic the reference fleet scenario: `dt = 60 s` steps, a
//! duty-cycled sensor load, and slowly varying daylight so the cursors
//! hit their fast paths at realistic rates.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use eh_node::{DutyCycledLoad, EnergyDomainSupercap, EnergyStore, StoreSpec};
use eh_pv::{presets, ConnectPoint, LuxCursor};
use eh_units::{Joules, Lux, Seconds, Volts};

const DT: f64 = 60.0;
/// Steps per timed iteration — long enough to amortise loop setup, short
/// enough that one iteration stays in cache.
const STEPS: usize = 1024;

/// A day-shaped illuminance walk on the 1-minute grid: small relative
/// steps, so consecutive queries usually share a log-lux cell — the
/// regime the [`LuxCursor`] is built for.
fn daylight(steps: usize) -> Vec<f64> {
    (0..steps)
        .map(|i| {
            let phase = i as f64 / steps as f64 * std::f64::consts::TAU;
            500.0 + 450.0 * phase.sin()
        })
        .collect()
}

fn bench_load_walk(c: &mut Criterion) {
    let load = DutyCycledLoad::typical_sensor_node().expect("valid load");
    let mut group = c.benchmark_group("step_components/load_walk");
    group.sample_size(20);
    group.bench_function("rem_euclid_1024_steps", |b| {
        let mut t = 0.0_f64;
        b.iter(|| {
            let mut total = 0.0;
            for _ in 0..STEPS {
                total += load
                    .energy_demand(Seconds::new(black_box(t)), Seconds::new(DT))
                    .value();
                t += DT;
            }
            total
        })
    });
    group.bench_function("phase_cursor_1024_steps", |b| {
        let mut cursor = load.phase_cursor(Seconds::ZERO);
        b.iter(|| {
            let mut total = 0.0;
            for _ in 0..STEPS {
                total += load
                    .energy_demand_with_cursor(black_box(&mut cursor), Seconds::new(DT))
                    .value();
            }
            total
        })
    });
    group.bench_function("energy_profile_1024_steps", |b| {
        let profile = load.energy_profile();
        let mut pos = 0.0_f64;
        b.iter(|| {
            let mut total = 0.0;
            for _ in 0..STEPS {
                total += profile
                    .energy_over(black_box(&mut pos), Seconds::new(DT))
                    .value();
            }
            total
        })
    });
    group.finish();
}

fn bench_supercap_round_trip(c: &mut Criterion) {
    let spec = StoreSpec::supercapacitor_022f_at(4.0);
    let mut group = c.benchmark_group("step_components/supercap");
    group.sample_size(20);
    // One engine step touches the store three times: deposit the
    // harvest, withdraw the load, integrate the leak.
    let deposit = Joules::new(2e-4);
    let withdraw = Joules::new(1.9e-4);
    group.bench_function("voltage_domain_1024_steps", |b| {
        let mut store = spec.build_concrete().expect("valid store");
        b.iter(|| {
            let mut served = 0.0;
            for _ in 0..STEPS {
                store.deposit(black_box(deposit));
                served += store.withdraw(black_box(withdraw)).value();
                store.leak(Seconds::new(DT));
            }
            served
        })
    });
    group.bench_function("energy_domain_1024_steps", |b| {
        let concrete = spec.build_concrete().expect("valid store");
        let eh_node::ConcreteStore::Supercapacitor(sc) = &concrete else {
            panic!("spec builds a supercapacitor");
        };
        let mut store = EnergyDomainSupercap::from_supercapacitor(sc);
        b.iter(|| {
            let mut served = 0.0;
            for _ in 0..STEPS {
                store.deposit(black_box(deposit));
                served += store.withdraw(black_box(withdraw)).value();
                store.leak(Seconds::new(DT));
            }
            served
        })
    });
    group.finish();
}

fn bench_surface_lookup(c: &mut Criterion) {
    let warmed = presets::sanyo_am1815().with_cache(true);
    let surface = warmed.cached().expect("surface builds").clone();
    let luxes = daylight(STEPS);
    let target = Volts::new(1.25);
    let mut group = c.benchmark_group("step_components/surface");
    group.sample_size(20);
    group.bench_function("scalar_connect_1024_steps", |b| {
        b.iter(|| {
            let mut i_sum = 0.0;
            for &l in &luxes {
                let p = surface
                    .connect_point(target, Lux::new(black_box(l)))
                    .expect("in-domain query");
                i_sum += p.current.map_or(0.0, |i| i.value());
            }
            i_sum
        })
    });
    group.bench_function("cursored_connect_1024_steps", |b| {
        let mut cursor = LuxCursor::default();
        b.iter(|| {
            let mut i_sum = 0.0;
            for &l in &luxes {
                let p = surface
                    .connect_point_lane(&mut cursor, target, Lux::new(black_box(l)))
                    .expect("in-domain query");
                i_sum += p.current.map_or(0.0, |i| i.value());
            }
            i_sum
        })
    });
    group.bench_function("eval_lanes8_1024_steps", |b| {
        // 8 lanes × 128 rounds = the same 1024 queries, pack-shaped.
        let mut cursors = [LuxCursor::default(); 8];
        let targets = [target; 8];
        let mut out = [ConnectPoint {
            voc: Volts::ZERO,
            v_op: Volts::ZERO,
            current: None,
        }; 8];
        let active = [true; 8];
        b.iter(|| {
            let mut i_sum = 0.0;
            for round in luxes.chunks_exact(8) {
                let mut pack = [Lux::ZERO; 8];
                for (slot, &l) in pack.iter_mut().zip(round) {
                    *slot = Lux::new(l);
                }
                surface
                    .eval_lanes(&targets, &pack, &active, &mut cursors, &mut out)
                    .expect("in-domain queries");
                for p in &out {
                    i_sum += p.current.map_or(0.0, |i| i.value());
                }
            }
            black_box(i_sum)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_load_walk,
    bench_supercap_round_trip,
    bench_surface_lookup
);
criterion_main!(benches);
