//! Criterion benches for the analog substrate: event-exact astable
//! stepping, sample-and-hold updates and the MNA netlist solver.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use eh_analog::astable::AstableMultivibrator;
use eh_analog::netlist::Netlist;
use eh_analog::sample_hold::{SampleHold, SampleHoldConfig};
use eh_units::{Ohms, Seconds, Volts};

fn bench_astable_full_period(c: &mut Criterion) {
    c.bench_function("analog/astable_one_period", |b| {
        let mut astable = AstableMultivibrator::paper_configuration().expect("valid config");
        b.iter(|| astable.step(black_box(Seconds::new(69.04))))
    });
}

fn bench_astable_fine_steps(c: &mut Criterion) {
    c.bench_function("analog/astable_1000_fine_steps", |b| {
        let mut astable = AstableMultivibrator::paper_configuration().expect("valid config");
        b.iter(|| {
            for _ in 0..1000 {
                astable.step(black_box(Seconds::from_milli(1.0)));
            }
        })
    });
}

fn bench_sample_hold_pulse(c: &mut Criterion) {
    c.bench_function("analog/sample_hold_pulse_cycle", |b| {
        let mut sh =
            SampleHold::new(SampleHoldConfig::paper_configuration(0.298).expect("valid config"))
                .expect("valid config");
        b.iter(|| {
            sh.step(black_box(Volts::new(5.44)), true, Seconds::from_milli(39.0));
            sh.step(black_box(Volts::ZERO), false, Seconds::new(69.0))
        })
    });
}

fn bench_netlist_solve(c: &mut Criterion) {
    c.bench_function("analog/netlist_ladder_20_nodes", |b| {
        b.iter(|| {
            let mut net = Netlist::new();
            let mut prev = net.node();
            net.voltage_source(prev, Netlist::GROUND, Volts::new(5.0))
                .expect("valid element");
            for _ in 0..20 {
                let n = net.node();
                net.resistor(prev, n, Ohms::from_kilo(10.0))
                    .expect("valid element");
                net.resistor(n, Netlist::GROUND, Ohms::from_kilo(47.0))
                    .expect("valid element");
                prev = n;
            }
            black_box(net.solve().expect("solvable ladder"))
        })
    });
}

criterion_group!(
    benches,
    bench_astable_full_period,
    bench_astable_fine_steps,
    bench_sample_hold_pulse,
    bench_netlist_solve
);
criterion_main!(benches);
