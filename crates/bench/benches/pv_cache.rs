//! Criterion benches for the PV operating-point cache: the same
//! closed-loop circuit run with the exact bisection solver and with the
//! memoized bilinear surface, plus the one-off table build.
//!
//! `cargo run -q --release -p eh-bench --bin bench_pv_cache` runs the
//! matching comparison with agreement checks and records the numbers in
//! `BENCH_pv_cache.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use eh_core::{FocvMpptSystem, SystemConfig};
use eh_pv::{presets, CachedPvSurface, PvCell};
use eh_units::{Lux, Seconds, Volts};

fn run_system(warmed: &PvCell, cache: bool) {
    let mut cfg = SystemConfig::paper_prototype().expect("valid config");
    cfg.pv_cache = cache;
    if cache {
        cfg.cell = warmed.clone();
    }
    cfg.cold_start.set_rail_voltage(Volts::new(3.3));
    let mut sys = FocvMpptSystem::new(cfg).expect("valid system");
    sys.run_constant(
        black_box(Lux::new(1000.0)),
        Seconds::new(120.0),
        Seconds::from_milli(50.0),
    )
    .expect("run succeeds");
}

fn bench_exact_vs_cached(c: &mut Criterion) {
    // Warmed outside the timed region: clones share the built surface.
    let warmed = presets::sanyo_am1815().with_cache(true);
    warmed.cached().expect("surface builds");

    let mut group = c.benchmark_group("pv_cache/closed_loop_120s");
    group.sample_size(20);
    group.bench_function("exact_solver", |b| b.iter(|| run_system(&warmed, false)));
    group.bench_function("cached_surface", |b| b.iter(|| run_system(&warmed, true)));
    group.finish();
}

fn bench_surface_build(c: &mut Criterion) {
    let cell = presets::sanyo_am1815();
    let mut group = c.benchmark_group("pv_cache/surface");
    group.sample_size(10);
    group.bench_function("build_121x513", |b| {
        b.iter(|| {
            CachedPvSurface::build(black_box(cell.model()), cell.temperature())
                .expect("surface builds")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_exact_vs_cached, bench_surface_build);
criterion_main!(benches);
