//! Criterion benches for environment generation and the Eq. (2) analyzer.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use eh_env::{profiles, sampling_error};
use eh_units::Seconds;

fn bench_profile_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("env/profiles_24h_1hz");
    group.sample_size(10);
    group.bench_function("office_desk_mixed", |b| {
        b.iter(|| black_box(profiles::office_desk_mixed(black_box(7))))
    });
    group.bench_function("semi_mobile_friday", |b| {
        b.iter(|| black_box(profiles::semi_mobile_friday(black_box(7))))
    });
    group.finish();
}

fn bench_eq2_analyzer(c: &mut Criterion) {
    let trace = profiles::office_desk_mixed(7);
    let mut group = c.benchmark_group("env/eq2_worst_case_mean_error");
    group.sample_size(20);
    for period in [60.0, 600.0] {
        group.bench_function(format!("{period}s_window_86401pts"), |b| {
            b.iter(|| {
                sampling_error::worst_case_mean_error(black_box(&trace), Seconds::new(period))
                    .expect("valid analysis")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_profile_generation, bench_eq2_analyzer);
criterion_main!(benches);
