//! Criterion benches for the closed-loop engines: the full circuit-level
//! system (Table I / Fig. 4 workhorse) and the behavioural day-scale
//! node simulation (comparison workhorse).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use eh_core::baselines::FocvSampleHold;
use eh_core::{FocvMpptSystem, SystemConfig};
use eh_env::profiles;
use eh_node::{NodeSimulation, SimConfig};
use eh_pv::presets;
use eh_units::{Lux, Seconds, Volts};

fn bench_full_system_minute(c: &mut Criterion) {
    let mut group = c.benchmark_group("core/full_system");
    group.sample_size(20);
    group.bench_function("60s_at_20ms_steps", |b| {
        b.iter(|| {
            let mut cfg = SystemConfig::paper_prototype().expect("valid config");
            cfg.cold_start.set_rail_voltage(Volts::new(3.3));
            let mut sys = FocvMpptSystem::new(cfg).expect("valid system");
            sys.run_constant(
                black_box(Lux::new(1000.0)),
                Seconds::new(60.0),
                Seconds::from_milli(20.0),
            )
            .expect("run succeeds")
        })
    });
    group.finish();
}

fn bench_node_hour(c: &mut Criterion) {
    let trace = profiles::constant(Lux::new(1000.0), Seconds::from_hours(1.0));
    let mut group = c.benchmark_group("node/closed_loop");
    group.sample_size(20);
    group.bench_function("1h_focv_1s_steps", |b| {
        b.iter(|| {
            let mut sim =
                NodeSimulation::new(SimConfig::default_for(presets::sanyo_am1815()).unwrap())
                    .expect("valid config");
            let mut tracker = FocvSampleHold::paper_prototype().expect("valid tracker");
            sim.run(&mut tracker, black_box(&trace), Seconds::new(1.0))
                .expect("run succeeds")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_full_system_minute, bench_node_hour);
criterion_main!(benches);
