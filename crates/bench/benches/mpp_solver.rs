//! Criterion benches for the PV solvers — the inner loop of every
//! experiment (each system step solves at least one implicit I(V)).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use eh_pv::presets;
use eh_units::{Lux, Volts};

fn bench_current_solve(c: &mut Criterion) {
    let cell = presets::sanyo_am1815();
    let mut group = c.benchmark_group("pv/current_at");
    for lux in [200.0, 1000.0, 50_000.0] {
        group.bench_with_input(BenchmarkId::from_parameter(lux as u64), &lux, |b, &lux| {
            b.iter(|| {
                cell.current_at(black_box(Volts::new(3.0)), black_box(Lux::new(lux)))
                    .expect("solver converges")
            })
        });
    }
    group.finish();
}

fn bench_voc_solve(c: &mut Criterion) {
    let cell = presets::sanyo_am1815();
    c.bench_function("pv/open_circuit_voltage@1klx", |b| {
        b.iter(|| {
            cell.open_circuit_voltage(black_box(Lux::new(1000.0)))
                .expect("solver converges")
        })
    });
}

fn bench_mpp_solve(c: &mut Criterion) {
    let cell = presets::sanyo_am1815();
    let mut group = c.benchmark_group("pv/mpp");
    for lux in [200.0, 1000.0, 50_000.0] {
        group.bench_with_input(BenchmarkId::from_parameter(lux as u64), &lux, |b, &lux| {
            b.iter(|| {
                cell.mpp(black_box(Lux::new(lux)))
                    .expect("solver converges")
            })
        });
    }
    group.finish();
}

fn bench_iv_curve(c: &mut Criterion) {
    let cell = presets::schott_asi_1116929();
    c.bench_function("pv/iv_curve_100pts@1klx", |b| {
        b.iter(|| {
            cell.iv_curve(black_box(Lux::new(1000.0)), 100)
                .expect("solver converges")
        })
    });
}

criterion_group!(
    benches,
    bench_current_solve,
    bench_voc_solve,
    bench_mpp_solve,
    bench_iv_curve
);
criterion_main!(benches);
