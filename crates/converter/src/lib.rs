//! The switching-converter substrate of the DATE 2011 MPPT reproduction.
//!
//! The paper's converter (§III-A) is a modified buck-boost derived from
//! the authors' earlier indoor harvester [Weddell'08]. Its defining
//! behaviour for this system is *input-voltage regulation*: "during
//! normal operation, this circuit acts to maintain a constant voltage
//! across its input terminals in order to keep the PV module at a voltage
//! indicated by `HELD_SAMPLE`". The converter design itself is explicitly
//! not the paper's focus, so the model here is behavioural:
//!
//! * [`InputRegulatedConverter`] — holds the PV node at the commanded
//!   voltage and transfers the harvested power to the output through an
//!   [`EfficiencyModel`] loss surface;
//! * [`ColdStart`] — the small capacitor (C1) charged through the
//!   steering diode (D1) that powers the MPPT rail up from a completely
//!   dead system (§III-A, validated at 200 lux in §IV-B).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buckboost;
mod coldstart;
mod efficiency;
mod error;
pub mod switching;

pub use buckboost::{HarvestResult, InputRegulatedConverter};
pub use coldstart::{ColdStart, ColdStartState};
pub use efficiency::EfficiencyModel;
pub use error::ConverterError;
