//! Error type for the converter crate.

use std::error::Error;
use std::fmt;

/// Errors returned by converter constructors.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConverterError {
    /// A parameter was non-physical.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for ConverterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConverterError::InvalidParameter { name, value } => {
                write!(f, "invalid converter parameter {name} = {value}")
            }
        }
    }
}

impl Error for ConverterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = ConverterError::InvalidParameter {
            name: "peak_efficiency",
            value: 1.4,
        };
        assert_eq!(
            e.to_string(),
            "invalid converter parameter peak_efficiency = 1.4"
        );
    }
}
