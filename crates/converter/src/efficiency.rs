//! The converter's loss surface.
//!
//! Micropower switching converters lose power three ways: a fixed
//! quiescent overhead (gate drive, control), losses proportional to the
//! throughput (diode/switch conduction at fixed voltage), and ohmic
//! losses quadratic in throughput. Efficiency therefore rises steeply
//! once the input power clears the quiescent floor, plateaus, and
//! eventually rolls off — the standard bathtub-complement shape.

use eh_units::{Ratio, Watts};

use crate::error::ConverterError;

/// Converter efficiency model `η(P_in)` built from a three-term loss
/// decomposition: `P_loss = P_q + a·P_in + (P_in²/P_knee)·b`.
///
/// ```
/// use eh_converter::EfficiencyModel;
/// use eh_units::Watts;
///
/// let model = EfficiencyModel::micropower_buck_boost()?;
/// // At the AM-1815's 200 lux MPP (~126 µW) the converter is usable.
/// let eta = model.efficiency(Watts::from_micro(126.0));
/// assert!(eta.value() > 0.5);
/// // Deep below the quiescent floor it collapses.
/// assert!(model.efficiency(Watts::from_micro(2.0)).value() < 0.4);
/// # Ok::<(), eh_converter::ConverterError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EfficiencyModel {
    quiescent: Watts,
    proportional_loss: f64,
    quadratic_knee: Watts,
    quadratic_coeff: f64,
}

impl EfficiencyModel {
    /// Creates a loss model.
    ///
    /// # Errors
    ///
    /// Rejects negative quiescent power, proportional loss outside
    /// `[0, 1)`, or non-positive quadratic knee.
    pub fn new(
        quiescent: Watts,
        proportional_loss: f64,
        quadratic_knee: Watts,
        quadratic_coeff: f64,
    ) -> Result<Self, ConverterError> {
        if !(quiescent.value().is_finite() && quiescent.value() >= 0.0) {
            return Err(ConverterError::InvalidParameter {
                name: "quiescent",
                value: quiescent.value(),
            });
        }
        if !(0.0..1.0).contains(&proportional_loss) {
            return Err(ConverterError::InvalidParameter {
                name: "proportional_loss",
                value: proportional_loss,
            });
        }
        if !(quadratic_knee.value().is_finite() && quadratic_knee.value() > 0.0) {
            return Err(ConverterError::InvalidParameter {
                name: "quadratic_knee",
                value: quadratic_knee.value(),
            });
        }
        if !(quadratic_coeff.is_finite() && quadratic_coeff >= 0.0) {
            return Err(ConverterError::InvalidParameter {
                name: "quadratic_coeff",
                value: quadratic_coeff,
            });
        }
        Ok(Self {
            quiescent,
            proportional_loss,
            quadratic_knee,
            quadratic_coeff,
        })
    }

    /// A micropower buck-boost in the class of the paper's converter:
    /// 1.5 µW quiescent, 12 % proportional loss, quadratic roll-off knee
    /// at 50 mW. Peak efficiency ≈ 85 % — consistent with the efficient
    /// small harvesters the paper cites ([Brunelli'08], [Weddell'08]).
    ///
    /// # Errors
    ///
    /// Never fails for these constants; the `Result` mirrors
    /// [`EfficiencyModel::new`].
    pub fn micropower_buck_boost() -> Result<Self, ConverterError> {
        Self::new(Watts::from_micro(1.5), 0.12, Watts::from_milli(50.0), 0.08)
    }

    /// The quiescent (fixed) loss.
    pub fn quiescent(&self) -> Watts {
        self.quiescent
    }

    /// Total losses at a given input power.
    #[inline]
    pub fn losses(&self, input: Watts) -> Watts {
        let p = input.value().max(0.0);
        let quadratic = self.quadratic_coeff * p * p / self.quadratic_knee.value();
        Watts::new(self.quiescent.value() + self.proportional_loss * p + quadratic)
    }

    /// Output power for a given input power (clamped at zero).
    #[inline]
    pub fn output_power(&self, input: Watts) -> Watts {
        Watts::new((input.value() - self.losses(input).value()).max(0.0))
    }

    /// Conversion efficiency `P_out/P_in` (zero for zero input).
    pub fn efficiency(&self, input: Watts) -> Ratio {
        if input.value() <= 0.0 {
            return Ratio::ZERO;
        }
        Ratio::new(self.output_power(input) / input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EfficiencyModel {
        EfficiencyModel::micropower_buck_boost().unwrap()
    }

    #[test]
    fn validation() {
        assert!(EfficiencyModel::new(Watts::new(-1.0), 0.1, Watts::new(1.0), 0.1).is_err());
        assert!(EfficiencyModel::new(Watts::ZERO, 1.0, Watts::new(1.0), 0.1).is_err());
        assert!(EfficiencyModel::new(Watts::ZERO, 0.1, Watts::ZERO, 0.1).is_err());
        assert!(EfficiencyModel::new(Watts::ZERO, 0.1, Watts::new(1.0), -0.1).is_err());
    }

    #[test]
    fn efficiency_shape() {
        let m = model();
        // Rising region.
        let e10 = m.efficiency(Watts::from_micro(10.0)).value();
        let e100 = m.efficiency(Watts::from_micro(100.0)).value();
        let e1000 = m.efficiency(Watts::from_micro(1000.0)).value();
        assert!(e10 < e100 && e100 < e1000, "{e10} {e100} {e1000}");
        // Plateau in the mW range.
        let e_plateau = m.efficiency(Watts::from_milli(5.0)).value();
        assert!(e_plateau > 0.8, "plateau = {e_plateau}");
        // Roll-off far beyond the knee.
        let e_high = m.efficiency(Watts::new(0.5)).value();
        assert!(e_high < e_plateau);
    }

    #[test]
    fn below_quiescent_floor_nothing_comes_out() {
        let m = model();
        assert_eq!(m.output_power(Watts::from_micro(1.0)), Watts::ZERO);
        assert_eq!(m.efficiency(Watts::ZERO), Ratio::ZERO);
        assert_eq!(m.efficiency(Watts::new(-1.0)), Ratio::ZERO);
    }

    #[test]
    fn losses_monotone_in_input() {
        let m = model();
        let mut prev = -1.0;
        for p in [0.0, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2] {
            let l = m.losses(Watts::new(p)).value();
            assert!(l > prev);
            prev = l;
        }
    }

    #[test]
    fn output_never_exceeds_input() {
        let m = model();
        for p in [1e-7, 1e-6, 1e-4, 1e-2, 1.0] {
            assert!(m.output_power(Watts::new(p)).value() <= p);
        }
    }
}
