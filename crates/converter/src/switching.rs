//! Cycle-level model of the modified buck-boost power stage.
//!
//! The behavioural [`EfficiencyModel`](crate::EfficiencyModel) used by
//! the system simulations is a three-term loss surface; this module
//! derives such a surface from first principles: an inductor-based
//! buck-boost switching cycle with conduction, diode, gate-charge and
//! controller losses, operating in discontinuous conduction mode (DCM)
//! at the µW–mW levels of indoor harvesting.
//!
//! The paper's converter is "a modified buck-boost converter" derived
//! from [Weddell'08]; component-level values are not given, so this
//! model documents a plausible micropower design (47 µH class inductor,
//! tens of kHz) and is validated against the behavioural loss surface.

use eh_units::{Amps, Ratio, Seconds, Volts, Watts};

use crate::error::ConverterError;

/// Conduction mode of the inductor current.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConductionMode {
    /// Inductor current returns to zero every cycle (light load).
    Discontinuous,
    /// Inductor current never reaches zero (heavy load).
    Continuous,
}

/// One solved switching operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchingOperatingPoint {
    /// Switch on-time per cycle.
    pub on_time: Seconds,
    /// Peak inductor current.
    pub peak_current: Amps,
    /// Conduction mode.
    pub mode: ConductionMode,
    /// Power lost in switch and inductor resistance.
    pub conduction_loss: Watts,
    /// Power lost in the freewheeling diode.
    pub diode_loss: Watts,
    /// Gate-drive and controller losses.
    pub fixed_loss: Watts,
    /// Net output power.
    pub output_power: Watts,
}

impl SwitchingOperatingPoint {
    /// Conversion efficiency at this point.
    pub fn efficiency(&self, input_power: Watts) -> Ratio {
        if input_power.value() <= 0.0 {
            return Ratio::ZERO;
        }
        Ratio::new((self.output_power / input_power).clamp(0.0, 1.0))
    }
}

/// The cycle-level buck-boost stage.
///
/// ```
/// use eh_converter::switching::SwitchingStage;
/// use eh_units::{Amps, Volts};
///
/// let stage = SwitchingStage::micropower_prototype()?;
/// let op = stage.operating_point(Volts::new(3.0), Amps::from_micro(42.0), Volts::new(3.3))?;
/// let eta = op.efficiency(Volts::new(3.0) * Amps::from_micro(42.0));
/// assert!(eta.value() > 0.5 && eta.value() < 1.0);
/// # Ok::<(), eh_converter::ConverterError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchingStage {
    inductance_h: f64,
    switching_frequency_hz: f64,
    switch_resistance_ohm: f64,
    diode_drop_v: f64,
    gate_energy_j: f64,
    controller_power_w: f64,
}

impl SwitchingStage {
    /// Creates a stage with explicit component values.
    ///
    /// # Errors
    ///
    /// Rejects non-positive inductance or frequency, or negative losses.
    pub fn new(
        inductance_h: f64,
        switching_frequency_hz: f64,
        switch_resistance_ohm: f64,
        diode_drop_v: f64,
        gate_energy_j: f64,
        controller_power_w: f64,
    ) -> Result<Self, ConverterError> {
        for (name, v, strict) in [
            ("inductance", inductance_h, true),
            ("switching_frequency", switching_frequency_hz, true),
            ("switch_resistance", switch_resistance_ohm, false),
            ("diode_drop", diode_drop_v, false),
            ("gate_energy", gate_energy_j, false),
            ("controller_power", controller_power_w, false),
        ] {
            let ok = v.is_finite() && if strict { v > 0.0 } else { v >= 0.0 };
            if !ok {
                return Err(ConverterError::InvalidParameter { name, value: v });
            }
        }
        Ok(Self {
            inductance_h,
            switching_frequency_hz,
            switch_resistance_ohm,
            diode_drop_v,
            gate_energy_j,
            controller_power_w,
        })
    }

    /// A plausible micropower prototype: 47 µH, 25 kHz (pulse-skipping
    /// at light load), 1.5 Ω switch, 0.3 V Schottky, 15 pJ of gate charge
    /// per cycle, 1 µW controller.
    ///
    /// # Errors
    ///
    /// Never fails for these constants; mirrors [`SwitchingStage::new`].
    pub fn micropower_prototype() -> Result<Self, ConverterError> {
        Self::new(47e-6, 25_000.0, 1.5, 0.3, 15e-12, 1e-6)
    }

    /// The switching frequency.
    pub fn switching_frequency_hz(&self) -> f64 {
        self.switching_frequency_hz
    }

    /// Solves the cycle for a demanded average input current at a given
    /// input (PV) and output (storage) voltage.
    ///
    /// In DCM the controller picks the on-time so the cycle-averaged
    /// input current equals `i_in`:
    /// `t_on = sqrt(2·L·i_in / (v_in·f))`, `I_pk = v_in·t_on/L`.
    /// A pulse-skipping controller keeps this valid down to nA-scale
    /// loads. If `t_on + t_off` exceeds the period the stage is in CCM
    /// and the ripple analysis switches accordingly.
    ///
    /// # Errors
    ///
    /// Rejects non-positive voltages or negative current.
    pub fn operating_point(
        &self,
        v_in: Volts,
        i_in: Amps,
        v_out: Volts,
    ) -> Result<SwitchingOperatingPoint, ConverterError> {
        if !(v_in.value() > 0.0 && v_out.value() > 0.0) {
            return Err(ConverterError::InvalidParameter {
                name: "voltages",
                value: v_in.value().min(v_out.value()),
            });
        }
        if !(i_in.value() >= 0.0 && i_in.value().is_finite()) {
            return Err(ConverterError::InvalidParameter {
                name: "input_current",
                value: i_in.value(),
            });
        }
        let l = self.inductance_h;
        let f = self.switching_frequency_hz;
        let period = 1.0 / f;
        let vin = v_in.value();
        let vout = v_out.value();
        let iin = i_in.value();
        let p_in = vin * iin;

        if iin == 0.0 {
            return Ok(SwitchingOperatingPoint {
                on_time: Seconds::ZERO,
                peak_current: Amps::ZERO,
                mode: ConductionMode::Discontinuous,
                conduction_loss: Watts::ZERO,
                diode_loss: Watts::ZERO,
                fixed_loss: Watts::new(self.controller_power_w),
                output_power: Watts::ZERO,
            });
        }

        // DCM solution.
        let t_on = (2.0 * l * iin / (vin * f)).sqrt();
        let i_pk = vin * t_on / l;
        let t_off = i_pk * l / (vout + self.diode_drop_v);
        let (mode, t_on, i_pk, t_off) = if t_on + t_off <= period {
            (ConductionMode::Discontinuous, t_on, i_pk, t_off)
        } else {
            // CCM: duty from the voltage ratio, ripple around the mean.
            let duty = (vout + self.diode_drop_v) / (vin + vout + self.diode_drop_v);
            let t_on_ccm = duty * period;
            let i_mean = iin / duty;
            let ripple = vin * t_on_ccm / l;
            (
                ConductionMode::Continuous,
                t_on_ccm,
                i_mean + 0.5 * ripple,
                period - t_on_ccm,
            )
        };

        // RMS current through the switch (triangle during t_on).
        let i_rms_on_sq = i_pk * i_pk / 3.0 * (t_on * f);
        let conduction = i_rms_on_sq * self.switch_resistance_ohm;
        // Diode conducts the falling triangle during t_off.
        let i_avg_off = 0.5 * i_pk * (t_off * f);
        let diode = i_avg_off * self.diode_drop_v;
        // Pulse-skipping: gate energy is only paid on cycles that switch.
        // The DCM solution above assumes one pulse per period, so the
        // fixed losses are per-period gate charge plus the controller.
        let fixed = self.gate_energy_j * f + self.controller_power_w;

        let output = (p_in - conduction - diode - fixed).max(0.0);
        Ok(SwitchingOperatingPoint {
            on_time: Seconds::new(t_on),
            peak_current: Amps::new(i_pk),
            mode,
            conduction_loss: Watts::new(conduction),
            diode_loss: Watts::new(diode),
            fixed_loss: Watts::new(fixed),
            output_power: Watts::new(output),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EfficiencyModel;

    fn stage() -> SwitchingStage {
        SwitchingStage::micropower_prototype().unwrap()
    }

    #[test]
    fn validation() {
        assert!(SwitchingStage::new(0.0, 25e3, 1.5, 0.3, 1e-12, 1e-6).is_err());
        assert!(SwitchingStage::new(47e-6, 0.0, 1.5, 0.3, 1e-12, 1e-6).is_err());
        assert!(SwitchingStage::new(47e-6, 25e3, -1.0, 0.3, 1e-12, 1e-6).is_err());
        let s = stage();
        assert!(s
            .operating_point(Volts::ZERO, Amps::new(1e-5), Volts::new(3.3))
            .is_err());
        assert!(s
            .operating_point(Volts::new(3.0), Amps::new(-1.0), Volts::new(3.3))
            .is_err());
    }

    #[test]
    fn indoor_point_is_dcm_and_efficient() {
        // The AM-1815's 200 lux MPP: 42 µA at 3.0 V.
        let s = stage();
        let op = s
            .operating_point(Volts::new(3.0), Amps::from_micro(42.0), Volts::new(3.3))
            .unwrap();
        assert_eq!(op.mode, ConductionMode::Discontinuous);
        let eta = op.efficiency(Volts::new(3.0) * Amps::from_micro(42.0));
        assert!(eta.value() > 0.6 && eta.value() < 0.95, "indoor η = {eta}");
    }

    #[test]
    fn heavy_load_enters_ccm() {
        // The DCM/CCM boundary for this stage sits near 380 mA of input
        // current (≈1.1 W at 3 V) — far above harvesting levels, which is
        // the design point: the converter lives its whole life in DCM.
        let s = stage();
        let op = s
            .operating_point(Volts::new(3.0), Amps::from_milli(500.0), Volts::new(3.3))
            .unwrap();
        assert_eq!(op.mode, ConductionMode::Continuous);
        assert!(op.peak_current.value() > 0.5);
        // And a typical harvesting load is firmly DCM.
        let op = s
            .operating_point(Volts::new(3.0), Amps::from_milli(1.0), Volts::new(3.3))
            .unwrap();
        assert_eq!(op.mode, ConductionMode::Discontinuous);
    }

    #[test]
    fn zero_current_costs_only_the_controller() {
        let s = stage();
        let op = s
            .operating_point(Volts::new(3.0), Amps::ZERO, Volts::new(3.3))
            .unwrap();
        assert_eq!(op.output_power, Watts::ZERO);
        assert!((op.fixed_loss.value() - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn dcm_on_time_reproduces_demanded_current() {
        // Cycle arithmetic consistency: charge per period / period = i_in.
        let s = stage();
        let v_in = Volts::new(3.0);
        let i_in = Amps::from_micro(200.0);
        let op = s.operating_point(v_in, i_in, Volts::new(3.3)).unwrap();
        let f = s.switching_frequency_hz();
        let charge_per_cycle = 0.5 * op.peak_current.value() * op.on_time.value();
        let i_avg = charge_per_cycle * f;
        assert!(
            (i_avg - i_in.value()).abs() < 1e-9,
            "avg {i_avg} vs demanded {}",
            i_in.value()
        );
    }

    #[test]
    fn efficiency_curve_shape_matches_behavioural_model() {
        // The behavioural three-term loss surface should approximate the
        // cycle model over the harvesting range (50 µW – 5 mW): same
        // rising-then-plateau shape, within ~12 points everywhere.
        let s = stage();
        let m = EfficiencyModel::micropower_buck_boost().unwrap();
        let v_in = Volts::new(3.0);
        let mut prev_cycle = 0.0;
        for p_uw in [50.0, 126.0, 400.0, 1000.0, 5000.0] {
            let p = Watts::from_micro(p_uw);
            let i = p / v_in;
            let op = s.operating_point(v_in, i, Volts::new(3.3)).unwrap();
            let eta_cycle = op.efficiency(p).value();
            let eta_model = m.efficiency(p).value();
            assert!(
                (eta_cycle - eta_model).abs() < 0.12,
                "at {p_uw} µW: cycle {eta_cycle:.3} vs model {eta_model:.3}"
            );
            assert!(eta_cycle >= prev_cycle - 0.02, "roughly monotone rise");
            prev_cycle = eta_cycle;
        }
    }

    #[test]
    fn loss_breakdown_sums() {
        let s = stage();
        let v_in = Volts::new(3.0);
        let i_in = Amps::from_micro(500.0);
        let op = s.operating_point(v_in, i_in, Volts::new(3.3)).unwrap();
        let p_in = (v_in * i_in).value();
        let sum = op.output_power.value()
            + op.conduction_loss.value()
            + op.diode_loss.value()
            + op.fixed_loss.value();
        assert!((sum - p_in).abs() < 1e-12, "sum {sum} vs in {p_in}");
    }
}
