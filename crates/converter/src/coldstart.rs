//! The cold-start arrangement (§III-A of the paper).
//!
//! "Cold starting is enabled through a small capacitor; once this has
//! been charged to a sufficient level and a threshold voltage has been
//! reached, the MPPT circuit is switched on."
//!
//! The model: the PV module charges C1 through the steering diode D1.
//! A threshold detector with hysteresis gates the metrology rail: the
//! rail turns on at `v_enable` and drops out at `v_disable`. Once the
//! system harvests, the converter keeps the rail topped up; if the light
//! disappears for long enough the rail collapses and the next
//! illumination cold-starts the system again — exactly the behaviour the
//! paper validated down to 200 lux.

use eh_obs::Recorder;
use eh_units::{Amps, Farads, Seconds, Volts};

use crate::error::ConverterError;

/// Discrete state of the cold-start supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColdStartState {
    /// C1 below the enable threshold; everything but the charging path is
    /// off.
    Charging,
    /// The rail is up and the MPPT system runs.
    Running,
}

/// The C1/D1/threshold cold-start circuit.
///
/// ```
/// use eh_converter::{ColdStart, ColdStartState};
/// use eh_units::{Amps, Seconds, Volts};
///
/// let mut cs = ColdStart::paper_prototype()?;
/// assert_eq!(cs.state(), ColdStartState::Charging);
/// // 40 µA of PV current into 47 µF reaches the 2.2 V threshold in ~2.6 s.
/// for _ in 0..30 {
///     cs.step(Amps::from_micro(40.0), Amps::ZERO, Seconds::new(0.1));
/// }
/// # Ok::<(), eh_converter::ConverterError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ColdStart {
    capacitance: Farads,
    v_enable: Volts,
    v_disable: Volts,
    v_max: Volts,
    diode_drop: Volts,
    supervisor_current: Amps,
    v_c1: Volts,
    state: ColdStartState,
    enable_events: u64,
    dropout_events: u64,
}

impl ColdStart {
    /// Creates a cold-start circuit.
    ///
    /// # Errors
    ///
    /// Rejects non-positive capacitance, thresholds that are not ordered
    /// `0 < v_disable < v_enable < v_max`, or a negative diode drop.
    pub fn new(
        capacitance: Farads,
        v_enable: Volts,
        v_disable: Volts,
        v_max: Volts,
        diode_drop: Volts,
    ) -> Result<Self, ConverterError> {
        if !(capacitance.value().is_finite() && capacitance.value() > 0.0) {
            return Err(ConverterError::InvalidParameter {
                name: "capacitance",
                value: capacitance.value(),
            });
        }
        if !(v_disable.value() > 0.0 && v_enable > v_disable && v_max > v_enable) {
            return Err(ConverterError::InvalidParameter {
                name: "thresholds",
                value: v_enable.value(),
            });
        }
        if !(diode_drop.value().is_finite() && diode_drop.value() >= 0.0) {
            return Err(ConverterError::InvalidParameter {
                name: "diode_drop",
                value: diode_drop.value(),
            });
        }
        Ok(Self {
            capacitance,
            v_enable,
            v_disable,
            v_max,
            diode_drop,
            supervisor_current: Amps::from_micro(0.4),
            v_c1: Volts::ZERO,
            state: ColdStartState::Charging,
            enable_events: 0,
            dropout_events: 0,
        })
    }

    /// Overrides the threshold supervisor's quiescent current (default
    /// 0.4 µA — a micropower voltage detector). This sets the light floor
    /// below which C1 can never reach the enable threshold.
    #[must_use]
    pub fn with_supervisor_current(mut self, i: Amps) -> Self {
        self.supervisor_current = i.max(Amps::ZERO);
        self
    }

    /// The supervisor's quiescent current.
    pub fn supervisor_current(&self) -> Amps {
        self.supervisor_current
    }

    /// The prototype: 47 µF start-up capacitor, enable at 2.2 V, dropout
    /// at 1.8 V, clamp at 3.3 V, 0.3 V Schottky steering diode.
    ///
    /// # Errors
    ///
    /// Never fails for these constants; the `Result` mirrors
    /// [`ColdStart::new`].
    pub fn paper_prototype() -> Result<Self, ConverterError> {
        Self::new(
            Farads::from_micro(47.0),
            Volts::new(2.2),
            Volts::new(1.8),
            Volts::new(3.3),
            Volts::new(0.3),
        )
    }

    /// The supervisor state.
    pub fn state(&self) -> ColdStartState {
        self.state
    }

    /// Whether the metrology rail is powered.
    pub fn rail_on(&self) -> bool {
        self.state == ColdStartState::Running
    }

    /// The C1 voltage (which is the metrology rail when running).
    pub fn rail_voltage(&self) -> Volts {
        self.v_c1
    }

    /// The reservoir capacitance C1 (47 µF in the paper's prototype).
    pub fn capacitance(&self) -> Farads {
        self.capacitance
    }

    /// The enable threshold: the C1 voltage at which the rail turns on
    /// (2.2 V in the prototype).
    pub fn enable_threshold(&self) -> Volts {
        self.v_enable
    }

    /// The steering diode D1's forward drop (0.3 V Schottky in the
    /// prototype).
    pub fn diode_drop(&self) -> Volts {
        self.diode_drop
    }

    /// The voltage the PV module must exceed for the charging path to
    /// conduct (C1 voltage plus the diode drop).
    pub fn charging_knee(&self) -> Volts {
        self.v_c1 + self.diode_drop
    }

    /// Forces the capacitor voltage (test/fault injection).
    pub fn set_rail_voltage(&mut self, v: Volts) {
        self.v_c1 = v.clamp(Volts::ZERO, self.v_max);
        self.update_state();
    }

    /// Advances by `dt`: `charge_current` flows in from the PV through
    /// D1 (already net of the diode knee — the caller solves the PV
    /// operating point), `load_current` is drawn by the metrology chain
    /// (zero while the rail is off).
    ///
    /// Returns the state after the step.
    pub fn step(
        &mut self,
        charge_current: Amps,
        load_current: Amps,
        dt: Seconds,
    ) -> ColdStartState {
        let load = if self.rail_on() {
            load_current
        } else {
            Amps::ZERO
        };
        let net = charge_current - load - self.supervisor_current;
        let dv = (net * dt) / self.capacitance;
        self.v_c1 = (self.v_c1 + dv).clamp(Volts::ZERO, self.v_max);
        self.update_state();
        self.state
    }

    fn update_state(&mut self) {
        match self.state {
            ColdStartState::Charging if self.v_c1 >= self.v_enable => {
                self.state = ColdStartState::Running;
                self.enable_events += 1;
            }
            ColdStartState::Running if self.v_c1 <= self.v_disable => {
                self.state = ColdStartState::Charging;
                self.dropout_events += 1;
            }
            _ => {}
        }
    }

    /// How many times the rail has turned on (the enable threshold was
    /// crossed from below) since construction.
    pub fn enable_events(&self) -> u64 {
        self.enable_events
    }

    /// How many times the rail has collapsed (the dropout threshold was
    /// crossed from above) since construction.
    pub fn dropout_events(&self) -> u64 {
        self.dropout_events
    }

    /// Folds the supervisor's event counters and present rail state into
    /// a recorder. Counters are cumulative; call once per run.
    pub fn observe<R: Recorder + ?Sized>(&self, recorder: &mut R) {
        recorder.add_counter("coldstart.enable_events", self.enable_events);
        recorder.add_counter("coldstart.dropout_events", self.dropout_events);
        recorder.set_gauge("coldstart.rail_v", self.v_c1.value());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cs() -> ColdStart {
        ColdStart::paper_prototype().unwrap()
    }

    #[test]
    fn validation() {
        assert!(ColdStart::new(
            Farads::ZERO,
            Volts::new(2.2),
            Volts::new(1.8),
            Volts::new(3.3),
            Volts::new(0.3)
        )
        .is_err());
        // Thresholds out of order.
        assert!(ColdStart::new(
            Farads::from_micro(47.0),
            Volts::new(1.5),
            Volts::new(1.8),
            Volts::new(3.3),
            Volts::new(0.3)
        )
        .is_err());
        assert!(ColdStart::new(
            Farads::from_micro(47.0),
            Volts::new(2.2),
            Volts::new(1.8),
            Volts::new(2.0),
            Volts::new(0.3)
        )
        .is_err());
    }

    #[test]
    fn charges_then_runs() {
        let mut c = cs();
        assert_eq!(c.state(), ColdStartState::Charging);
        // Q = C·V = 47 µF · 2.2 V ≈ 103 µC; at 40 µA that is ~2.6 s.
        let mut t = 0.0f64;
        while c.state() == ColdStartState::Charging && t < 10.0 {
            c.step(Amps::from_micro(40.0), Amps::ZERO, Seconds::new(0.01));
            t += 0.01;
        }
        assert_eq!(c.state(), ColdStartState::Running);
        assert!((t - 2.585).abs() < 0.1, "cold-start time = {t}");
    }

    #[test]
    fn hysteresis_prevents_chatter() {
        let mut c = cs();
        c.set_rail_voltage(Volts::new(2.3));
        assert!(c.rail_on());
        // Sag to 1.9 V: still above the 1.8 V dropout.
        c.set_rail_voltage(Volts::new(1.9));
        assert!(c.rail_on());
        // Sag to 1.8 V: rail collapses.
        c.set_rail_voltage(Volts::new(1.8));
        assert!(!c.rail_on());
        // Recover to 2.0 V: still charging — must reach 2.2 V again.
        c.set_rail_voltage(Volts::new(2.0));
        assert!(!c.rail_on());
    }

    #[test]
    fn load_only_drains_when_running() {
        let mut c = cs();
        c.set_rail_voltage(Volts::new(1.0));
        let before = c.rail_voltage();
        // Load requested while still charging: ignored (rail is off); only
        // the 0.4 µA supervisor drains C1.
        c.step(Amps::ZERO, Amps::from_micro(100.0), Seconds::new(1.0));
        let drop = (before - c.rail_voltage()).value();
        let supervisor_only = 0.4e-6 * 1.0 / 47e-6;
        assert!((drop - supervisor_only).abs() < 1e-6, "drop = {drop}");
        // Once running, load drains C1.
        c.set_rail_voltage(Volts::new(2.5));
        c.step(Amps::ZERO, Amps::from_micro(100.0), Seconds::new(1.0));
        assert!(c.rail_voltage() < Volts::new(2.5) - Volts::from_milli(1.0));
    }

    #[test]
    fn supervisor_sets_a_light_floor() {
        // Charge current below the supervisor draw: C1 never reaches the
        // threshold no matter how long we wait.
        let mut c = cs();
        for _ in 0..10_000 {
            c.step(Amps::from_micro(0.2), Amps::ZERO, Seconds::new(1.0));
        }
        assert_eq!(c.state(), ColdStartState::Charging);
        assert_eq!(c.rail_voltage(), Volts::ZERO);
        // A custom zero-supervisor circuit does charge.
        let mut free = cs().with_supervisor_current(Amps::ZERO);
        for _ in 0..2000 {
            free.step(Amps::from_micro(0.2), Amps::ZERO, Seconds::new(1.0));
        }
        assert_eq!(free.state(), ColdStartState::Running);
    }

    #[test]
    fn clamps_at_vmax_and_zero() {
        let mut c = cs();
        c.step(Amps::new(1.0), Amps::ZERO, Seconds::new(10.0));
        assert_eq!(c.rail_voltage(), Volts::new(3.3));
        c.step(Amps::new(-10.0), Amps::ZERO, Seconds::new(10.0));
        assert_eq!(c.rail_voltage(), Volts::ZERO);
    }

    #[test]
    fn threshold_crossings_are_counted_and_observable() {
        let mut c = cs();
        c.set_rail_voltage(Volts::new(2.5)); // enable
        c.set_rail_voltage(Volts::new(1.0)); // dropout
        c.set_rail_voltage(Volts::new(2.5)); // enable again
        assert_eq!(c.enable_events(), 2);
        assert_eq!(c.dropout_events(), 1);

        let mut m = eh_obs::Metrics::new();
        c.observe(&mut m);
        assert_eq!(m.counter("coldstart.enable_events"), 2);
        assert_eq!(m.counter("coldstart.dropout_events"), 1);
        assert_eq!(m.gauge("coldstart.rail_v"), Some(2.5));
    }

    #[test]
    fn charging_knee_includes_diode() {
        let mut c = cs();
        c.set_rail_voltage(Volts::new(1.0));
        assert_eq!(c.charging_knee(), Volts::new(1.3));
    }
}
