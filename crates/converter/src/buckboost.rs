//! The input-regulated buck-boost converter.

use eh_obs::{EnergyBucket, Recorder};
use eh_units::{Joules, Ratio, Seconds, Volts, Watts};

use crate::efficiency::EfficiencyModel;
use crate::error::ConverterError;

/// Result of one harvesting step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HarvestResult {
    /// Power taken from the PV module.
    pub input_power: Watts,
    /// Power delivered to the energy store.
    pub output_power: Watts,
    /// Energy delivered during the step.
    pub output_energy: Joules,
    /// Power dissipated in the converter.
    pub losses: Watts,
}

impl HarvestResult {
    /// A step in which the converter was idle.
    pub fn idle() -> Self {
        Self {
            input_power: Watts::ZERO,
            output_power: Watts::ZERO,
            output_energy: Joules::ZERO,
            losses: Watts::ZERO,
        }
    }

    /// Charges this step's conversion losses (`losses · dt`) to the
    /// recorder's converter-switching energy bucket and counts the step
    /// when the converter actually transferred power.
    pub fn observe<R: Recorder + ?Sized>(&self, dt: Seconds, recorder: &mut R) {
        if self.output_power.value() > 0.0 {
            recorder.add_counter("converter.transfer_steps", 1);
        }
        recorder.charge(EnergyBucket::ConverterSwitching, self.losses * dt);
    }
}

/// Behavioural model of the paper's modified buck-boost: an
/// input-voltage-regulated power stage.
///
/// The regulation loop is assumed fast relative to the simulation step
/// (the real converter switches at tens of kHz; the system steps at
/// milliseconds and up), so within a step the PV node is held exactly at
/// the commanded voltage and the transferred power is
/// `η(P_in)·V_in·I_pv(V_in)`. The converter refuses to operate below a
/// minimum input voltage (its control circuitry dropout).
///
/// ```
/// use eh_converter::{EfficiencyModel, InputRegulatedConverter};
/// use eh_units::{Amps, Seconds, Volts};
///
/// let conv = InputRegulatedConverter::paper_prototype()?;
/// let r = conv.harvest(Volts::new(3.0), Amps::from_micro(42.0), Seconds::new(1.0));
/// assert!(r.output_power.value() > 0.0);
/// assert!(r.output_power < r.input_power);
/// # Ok::<(), eh_converter::ConverterError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InputRegulatedConverter {
    efficiency: EfficiencyModel,
    min_input_voltage: Volts,
}

impl InputRegulatedConverter {
    /// Creates a converter from a loss model and minimum operating input
    /// voltage.
    ///
    /// # Errors
    ///
    /// Rejects a negative minimum input voltage.
    pub fn new(
        efficiency: EfficiencyModel,
        min_input_voltage: Volts,
    ) -> Result<Self, ConverterError> {
        if !(min_input_voltage.value().is_finite() && min_input_voltage.value() >= 0.0) {
            return Err(ConverterError::InvalidParameter {
                name: "min_input_voltage",
                value: min_input_voltage.value(),
            });
        }
        Ok(Self {
            efficiency,
            min_input_voltage,
        })
    }

    /// The prototype configuration: micropower loss surface, 0.8 V
    /// minimum input.
    ///
    /// # Errors
    ///
    /// Never fails for these constants; the `Result` mirrors
    /// [`InputRegulatedConverter::new`].
    pub fn paper_prototype() -> Result<Self, ConverterError> {
        Self::new(EfficiencyModel::micropower_buck_boost()?, Volts::new(0.8))
    }

    /// The loss model.
    pub fn efficiency_model(&self) -> &EfficiencyModel {
        &self.efficiency
    }

    /// Minimum input voltage for operation.
    pub fn min_input_voltage(&self) -> Volts {
        self.min_input_voltage
    }

    /// Conversion efficiency the converter would achieve at an operating
    /// point.
    pub fn efficiency_at(&self, input: Watts) -> Ratio {
        self.efficiency.efficiency(input)
    }

    /// Harvests for `dt` with the PV node regulated at `v_in` where the
    /// module supplies `i_pv`. Returns an idle result if the operating
    /// point is below the converter's minimum input voltage or produces
    /// no net output.
    #[inline]
    pub fn harvest(&self, v_in: Volts, i_pv: eh_units::Amps, dt: Seconds) -> HarvestResult {
        if v_in < self.min_input_voltage || i_pv.value() <= 0.0 || dt.value() <= 0.0 {
            return HarvestResult::idle();
        }
        let input_power = v_in * i_pv;
        let output_power = self.efficiency.output_power(input_power);
        HarvestResult {
            input_power,
            output_power,
            output_energy: output_power * dt,
            losses: Watts::new(input_power.value() - output_power.value()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_units::Amps;

    fn conv() -> InputRegulatedConverter {
        InputRegulatedConverter::paper_prototype().unwrap()
    }

    #[test]
    fn validation() {
        assert!(InputRegulatedConverter::new(
            EfficiencyModel::micropower_buck_boost().unwrap(),
            Volts::new(-0.1)
        )
        .is_err());
    }

    #[test]
    fn harvest_energy_balance() {
        let c = conv();
        let r = c.harvest(Volts::new(3.0), Amps::from_micro(100.0), Seconds::new(10.0));
        assert!((r.input_power.as_micro() - 300.0).abs() < 1e-9);
        assert!((r.input_power.value() - r.output_power.value() - r.losses.value()).abs() < 1e-15);
        assert!((r.output_energy.value() - r.output_power.value() * 10.0).abs() < 1e-15);
    }

    #[test]
    fn refuses_below_minimum_input() {
        let c = conv();
        let r = c.harvest(Volts::new(0.5), Amps::from_milli(1.0), Seconds::new(1.0));
        assert_eq!(r, HarvestResult::idle());
    }

    #[test]
    fn idle_on_zero_current_or_time() {
        let c = conv();
        assert_eq!(
            c.harvest(Volts::new(3.0), Amps::ZERO, Seconds::new(1.0)),
            HarvestResult::idle()
        );
        assert_eq!(
            c.harvest(Volts::new(3.0), Amps::new(1e-3), Seconds::ZERO),
            HarvestResult::idle()
        );
    }

    #[test]
    fn tiny_input_yields_nothing_but_wastes_it() {
        let c = conv();
        // 1 µW input is below the 1.5 µW quiescent floor.
        let r = c.harvest(Volts::new(1.0), Amps::from_micro(1.0), Seconds::new(1.0));
        assert_eq!(r.output_power, Watts::ZERO);
        assert!((r.losses.value() - r.input_power.value()).abs() < 1e-15);
    }

    #[test]
    fn observe_charges_losses_to_the_switching_bucket() {
        let c = conv();
        let dt = Seconds::new(10.0);
        let r = c.harvest(Volts::new(3.0), Amps::from_micro(100.0), dt);
        let mut m = eh_obs::Metrics::new();
        r.observe(dt, &mut m);
        HarvestResult::idle().observe(dt, &mut m);
        assert_eq!(m.counter("converter.transfer_steps"), 1);
        let charged = m.ledger().energy(EnergyBucket::ConverterSwitching);
        assert!((charged.value() - r.losses.value() * 10.0).abs() < 1e-18);
    }

    #[test]
    fn efficiency_accessor_consistent() {
        let c = conv();
        let p = Watts::from_micro(500.0);
        let eta = c.efficiency_at(p);
        let r = c.harvest(Volts::new(2.5), Amps::from_micro(200.0), Seconds::new(1.0));
        assert!((r.output_power.value() / r.input_power.value() - eta.value()).abs() < 1e-12);
    }
}
