//! Property-based tests on the converter and cold-start invariants.

use eh_converter::{ColdStart, ColdStartState, EfficiencyModel, InputRegulatedConverter};
use eh_units::{Amps, Farads, Seconds, Volts, Watts};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Output power never exceeds input power, and the loss split is
    /// exact.
    #[test]
    fn harvest_energy_balance(v in 0.8..6.0f64, i in 1e-7..1e-2f64, dt in 0.001..1000.0f64) {
        let c = InputRegulatedConverter::paper_prototype().expect("valid prototype");
        let r = c.harvest(Volts::new(v), Amps::new(i), Seconds::new(dt));
        prop_assert!(r.output_power <= r.input_power);
        prop_assert!(r.output_power.value() >= 0.0);
        prop_assert!((r.input_power.value() - r.output_power.value() - r.losses.value()).abs()
            < 1e-12 * r.input_power.value().max(1.0));
        prop_assert!((r.output_energy.value() - r.output_power.value() * dt).abs()
            < 1e-12 * r.output_energy.value().max(1.0));
    }

    /// Efficiency is always in [0, 1) and increases with input power in
    /// the quiescent-dominated region (the peak of the model sits near
    /// 1 mW, so doubling from ≤200 µW is always still on the rising
    /// flank).
    #[test]
    fn efficiency_bounded_and_rising_low_end(p in 2e-6..2e-4f64) {
        let m = EfficiencyModel::micropower_buck_boost().expect("valid model");
        let e1 = m.efficiency(Watts::new(p)).value();
        let e2 = m.efficiency(Watts::new(p * 2.0)).value();
        prop_assert!((0.0..1.0).contains(&e1));
        prop_assert!(e2 >= e1 - 1e-12, "η must rise below the knee: {e1} → {e2}");
    }

    /// The converter refuses inputs below its dropout regardless of
    /// current.
    #[test]
    fn dropout_is_respected(v in 0.0..0.79f64, i in 0.0..1.0f64) {
        let c = InputRegulatedConverter::paper_prototype().expect("valid prototype");
        let r = c.harvest(Volts::new(v), Amps::new(i), Seconds::new(1.0));
        prop_assert_eq!(r.output_power, Watts::ZERO);
    }

    /// Cold start charge bookkeeping: the rail voltage moves by exactly
    /// net-charge/C (clamped), and hysteresis state transitions are
    /// monotone with voltage.
    #[test]
    fn coldstart_charge_bookkeeping(i_charge in 0.0..1e-4f64, dt in 0.01..10.0f64) {
        let mut cs = ColdStart::paper_prototype().expect("valid circuit")
            .with_supervisor_current(Amps::ZERO);
        let v0 = cs.rail_voltage();
        cs.step(Amps::new(i_charge), Amps::ZERO, Seconds::new(dt));
        let expect = (v0.value() + i_charge * dt / 47e-6).clamp(0.0, 3.3);
        prop_assert!((cs.rail_voltage().value() - expect).abs() < 1e-9);
    }

    /// Whatever the charging history, the state machine agrees with the
    /// thresholds: Running implies the rail exceeded 2.2 V at some point
    /// and has not dropped to 1.8 V since.
    #[test]
    fn coldstart_state_consistent(pattern in proptest::collection::vec(-5e-5..8e-5f64, 1..40)) {
        let mut cs = ColdStart::paper_prototype().expect("valid circuit")
            .with_supervisor_current(Amps::ZERO);
        for i in pattern {
            cs.step(Amps::new(i), Amps::ZERO, Seconds::new(1.0));
            match cs.state() {
                ColdStartState::Running => {
                    prop_assert!(cs.rail_voltage().value() > 1.8 - 1e-12);
                }
                ColdStartState::Charging => {
                    prop_assert!(cs.rail_voltage().value() < 2.2 + 1e-12);
                }
            }
        }
    }

    /// Custom cold-start circuits respect their capacitance scaling:
    /// a bigger C1 takes proportionally longer to start.
    #[test]
    fn coldstart_time_scales_with_capacitance(scale in 2.0..10.0f64) {
        let time_to_start = |c_uf: f64| -> f64 {
            let mut cs = ColdStart::new(
                Farads::from_micro(c_uf),
                Volts::new(2.2),
                Volts::new(1.8),
                Volts::new(3.3),
                Volts::new(0.3),
            )
            .expect("valid circuit")
            .with_supervisor_current(Amps::ZERO);
            let mut t = 0.0;
            while cs.state() == ColdStartState::Charging && t < 1e5 {
                cs.step(Amps::from_micro(40.0), Amps::ZERO, Seconds::new(0.05));
                t += 0.05;
            }
            t
        };
        let t1 = time_to_start(47.0);
        let t2 = time_to_start(47.0 * scale);
        let ratio = t2 / t1;
        prop_assert!((ratio - scale).abs() < 0.1 * scale, "ratio {ratio} vs {scale}");
    }
}
