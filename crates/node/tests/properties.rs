//! Property-based tests on the closed-loop node engine.

use eh_core::baselines::{FocvSampleHold, Oracle};
use eh_env::profiles;
use eh_node::{
    DutyCycledLoad, EnergyDomainSupercap, EnergyStore, IdealStore, NodeSimulation, SimConfig,
    Supercapacitor,
};
use eh_pv::presets;
use eh_units::{Farads, Joules, Lux, Seconds, Volts};
use proptest::prelude::*;

/// Relative disagreement with a floor so near-empty stores compare on an
/// absolute scale (a drained voltage-domain supercap can carry a ~1e-17 J
/// rounding residue where the energy-domain clamp hits exactly zero; the
/// stores under test hold O(1) J, so a 1e-3 J floor keeps the comparison
/// relative everywhere that matters).
fn rel_err(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(1e-3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Gross energy and overhead are non-negative; uptime is a valid
    /// fraction; with no load the demand is zero.
    #[test]
    fn report_sanity(lux in 0.0..20_000.0f64, minutes in 2.0..30.0f64) {
        let trace = profiles::constant(Lux::new(lux), Seconds::from_minutes(minutes));
        let mut sim = NodeSimulation::new(SimConfig::default_for(presets::sanyo_am1815()).unwrap())
            .expect("valid config");
        let mut tracker = FocvSampleHold::paper_prototype().expect("valid tracker");
        let report = sim.run(&mut tracker, &trace, Seconds::new(1.0)).expect("run succeeds");
        prop_assert!(report.gross_energy.value() >= 0.0);
        prop_assert!(report.overhead_energy.value() > 0.0);
        prop_assert_eq!(report.load_demand, Joules::ZERO);
        let u = report.uptime().value();
        prop_assert!((0.0..=1.0).contains(&u));
    }

    /// The oracle's gross harvest dominates the FOCV tracker's on the
    /// same scenario (it is the upper bound by construction).
    #[test]
    fn oracle_dominates(lux in 100.0..10_000.0f64) {
        let trace = profiles::constant(Lux::new(lux), Seconds::from_minutes(10.0));
        let run = |tracker: &mut dyn eh_core::MpptController| {
            NodeSimulation::new(SimConfig::default_for(presets::sanyo_am1815()).unwrap())
                .expect("valid config")
                .run(tracker, &trace, Seconds::new(1.0))
                .expect("run succeeds")
        };
        let focv = run(&mut FocvSampleHold::paper_prototype().expect("valid tracker"));
        let oracle = run(&mut Oracle::new(presets::sanyo_am1815()));
        prop_assert!(oracle.gross_energy.value() >= focv.gross_energy.value() - 1e-12);
    }

    /// Harvest scales (sub-)linearly with illuminance: more light never
    /// yields less gross energy.
    #[test]
    fn gross_monotone_in_light(lux in 100.0..5_000.0f64, factor in 1.2..4.0f64) {
        let run = |l: f64| {
            let trace = profiles::constant(Lux::new(l), Seconds::from_minutes(10.0));
            NodeSimulation::new(SimConfig::default_for(presets::sanyo_am1815()).unwrap())
                .expect("valid config")
                .run(
                    &mut FocvSampleHold::paper_prototype().expect("valid tracker"),
                    &trace,
                    Seconds::new(1.0),
                )
                .expect("run succeeds")
                .gross_energy
        };
        prop_assert!(run(lux * factor).value() >= run(lux).value());
    }

    /// A supercapacitor store conserves energy: what went in minus what
    /// came out (and leaked) equals what remains, within tolerance.
    #[test]
    fn supercap_conservation(deposits in proptest::collection::vec(0.0..0.2f64, 1..20)) {
        let mut sc = Supercapacitor::new(Farads::new(0.1), Volts::new(5.0), Volts::new(1.8))
            .expect("valid supercap")
            .with_leakage(eh_units::Amps::ZERO);
        let mut in_total = 0.0;
        let mut out_total = 0.0;
        for (n, d) in deposits.iter().enumerate() {
            if n % 3 == 2 {
                out_total += sc.withdraw(Joules::new(*d)).value();
            } else {
                in_total += sc.deposit(Joules::new(*d)).value();
            }
        }
        let remaining = sc.stored_energy().value();
        prop_assert!((in_total - out_total - remaining).abs() < 1e-9,
            "in {in_total} out {out_total} left {remaining}");
    }

    /// IdealStore round-trips exactly.
    #[test]
    fn ideal_store_round_trip(amounts in proptest::collection::vec(0.0..10.0f64, 1..20)) {
        let mut store = IdealStore::new();
        let mut balance = 0.0;
        for a in amounts {
            store.deposit(Joules::new(a));
            balance += a;
        }
        let got = store.withdraw(Joules::new(balance * 2.0));
        prop_assert!((got.value() - balance).abs() < 1e-9);
        prop_assert_eq!(store.stored_energy(), Joules::ZERO);
    }

    /// The energy-domain supercap tracks the voltage-domain store within
    /// rel 1e-12 over arbitrary deposit/withdraw/leak sequences — the
    /// divergence bound the vectorized fleet engine's contract leans on.
    #[test]
    fn energy_domain_supercap_tracks_voltage_domain(
        initial in 1.8..5.0f64,
        ops in proptest::collection::vec(0u32..3, 1..200),
        xs in proptest::collection::vec(0.0..0.05f64, 1..200),
    ) {
        let mut slow = Supercapacitor::new(Farads::new(0.22), Volts::new(5.0), Volts::new(1.8))
            .expect("valid supercap")
            .with_initial_voltage(Volts::new(initial));
        let mut fast = EnergyDomainSupercap::from_supercapacitor(&slow);
        for (&op, &x) in ops.iter().zip(&xs) {
            let (a, b) = match op {
                0 => (slow.deposit(Joules::new(x)), fast.deposit(Joules::new(x))),
                1 => (slow.withdraw(Joules::new(x)), fast.withdraw(Joules::new(x))),
                _ => {
                    // Scale the draw into leak hours.
                    slow.leak(Seconds::from_hours(x * 100.0));
                    fast.leak(Seconds::from_hours(x * 100.0));
                    (Joules::ZERO, Joules::ZERO)
                }
            };
            prop_assert!(rel_err(a.value(), b.value()) < 1e-12, "op result diverged");
            prop_assert!(
                rel_err(slow.stored_energy().value(), fast.stored_energy().value()) < 1e-12,
                "state diverged: {} vs {}",
                slow.stored_energy().value(),
                fast.stored_energy().value()
            );
            prop_assert!(rel_err(slow.voltage().value(), fast.voltage().value()) < 1e-12);
        }
        prop_assert!(
            (slow.state_of_charge().value() - fast.state_of_charge().value()).abs() < 1e-12
        );
    }

    /// The same bound holds from the campaign's worn-store deployment
    /// path: a derated capacitance `C_worn` re-deployed at the voltage
    /// that preserves the pre-wear stored energy,
    /// `v₀ = √(v_min² + 2E/C_worn)`.
    #[test]
    fn energy_domain_supercap_tracks_worn_store(
        stored in 0.0..2.0f64,
        derate in 0.5..1.0f64,
        ops in proptest::collection::vec(0u32..3, 1..100),
        xs in proptest::collection::vec(0.0..0.05f64, 1..100),
    ) {
        let c_worn = 0.22 * derate;
        let v0 = (1.8f64.powi(2) + 2.0 * stored / c_worn).sqrt();
        let mut slow = Supercapacitor::new(Farads::new(c_worn), Volts::new(5.0), Volts::new(1.8))
            .expect("valid supercap")
            .with_initial_voltage(Volts::new(v0));
        let mut fast = EnergyDomainSupercap::from_supercapacitor(&slow);
        prop_assert!(
            rel_err(slow.stored_energy().value(), fast.stored_energy().value()) < 1e-12
        );
        for (&op, &x) in ops.iter().zip(&xs) {
            match op {
                0 => {
                    slow.deposit(Joules::new(x));
                    fast.deposit(Joules::new(x));
                }
                1 => {
                    slow.withdraw(Joules::new(x));
                    fast.withdraw(Joules::new(x));
                }
                _ => {
                    slow.leak(Seconds::from_hours(x * 100.0));
                    fast.leak(Seconds::from_hours(x * 100.0));
                }
            }
            prop_assert!(
                rel_err(slow.stored_energy().value(), fast.stored_energy().value()) < 1e-12,
                "worn store diverged"
            );
        }
    }

    /// The load's phase-cursor walk stays within the net-energy
    /// divergence budget against the absolute-clock walk over random
    /// step sequences.
    #[test]
    fn cursor_demand_tracks_clock_demand(
        start in 0.0..100.0f64,
        dts in proptest::collection::vec(0.001..120.0f64, 1..500),
    ) {
        let load = DutyCycledLoad::typical_sensor_node().expect("valid load");
        let mut cursor = load.phase_cursor(Seconds::new(start));
        let mut t = start;
        let (mut sum_clock, mut sum_cursor) = (0.0f64, 0.0f64);
        for dt in dts {
            sum_clock += load.energy_demand(Seconds::new(t), Seconds::new(dt)).value();
            sum_cursor += load
                .energy_demand_with_cursor(&mut cursor, Seconds::new(dt))
                .value();
            t += dt;
        }
        prop_assert!(rel_err(sum_clock, sum_cursor) < 1e-9,
            "cumulative load divergence: {sum_clock} vs {sum_cursor}");
    }

    /// The prefix-sum [`eh_node::LoadEnergyProfile`] tracks the
    /// absolute-clock walk per step and cumulatively over random step
    /// sequences — the load half of the vectorized engine's
    /// bounded-divergence budget.
    #[test]
    fn energy_profile_tracks_clock_demand(
        dts in proptest::collection::vec(0.001..120.0f64, 1..500),
    ) {
        let load = DutyCycledLoad::typical_sensor_node().expect("valid load");
        let profile = load.energy_profile();
        let mut pos = 0.0f64;
        let mut t = 0.0f64;
        let (mut sum_clock, mut sum_profile) = (0.0f64, 0.0f64);
        for dt in dts {
            let clock = load.energy_demand(Seconds::new(t), Seconds::new(dt)).value();
            let step = profile.energy_over(&mut pos, Seconds::new(dt)).value();
            // Per-step error is a cancellation residue of the cycle
            // energy (~1e-19 J here), far under any step's demand.
            prop_assert!((clock - step).abs() < 1e-12,
                "per-step load divergence at t={t}: {clock} vs {step}");
            sum_clock += clock;
            sum_profile += step;
            t += dt;
        }
        prop_assert!(rel_err(sum_clock, sum_profile) < 1e-9,
            "cumulative load divergence: {sum_clock} vs {sum_profile}");
    }
}

/// The prefix-sum profile agrees with the phase-cursor walk over a
/// multi-year step count at the fleet's FOCV cadence — the long-horizon
/// guarantee `LoadEnergyProfile`'s docs promise.
#[test]
fn energy_profile_matches_cursor_walk_over_two_years() {
    let load = DutyCycledLoad::typical_sensor_node().expect("valid load");
    let profile = load.energy_profile();
    let mut cursor = load.phase_cursor(Seconds::ZERO);
    let mut pos = 0.0f64;
    let (mut sum_cursor, mut sum_profile) = (0.0f64, 0.0f64);
    let steps = 2 * 365 * 1440; // two years of 60 s steps
    for i in 0..steps {
        // Every third step is a 39 ms measurement dwell, like FOCV.
        let dt = Seconds::new(if i % 3 == 0 { 0.039 } else { 60.0 });
        sum_cursor += load.energy_demand_with_cursor(&mut cursor, dt).value();
        sum_profile += profile.energy_over(&mut pos, dt).value();
    }
    let rel = (sum_cursor - sum_profile).abs() / sum_cursor.abs();
    assert!(
        rel < 1e-9,
        "two-year load divergence: {sum_cursor} vs {sum_profile} (rel {rel:e})"
    );
    let period = profile.period();
    assert!((0.0..period).contains(&pos), "position stays in cycle");
}

/// The incremental phase accumulator agrees with per-step `rem_euclid`
/// over a multi-year step count — two simulated years of the fleet's
/// 60 s cadence plus measurement dwells.
#[test]
fn phase_accumulator_matches_rem_euclid_over_two_years() {
    let period = DutyCycledLoad::typical_sensor_node()
        .expect("valid load")
        .period()
        .value();
    let mut acc = eh_analog::phase::PhaseAccumulator::new(period, 0.0).expect("valid period");
    let mut t = 0.0f64;
    let steps = 2 * 365 * 1440; // two years of 60 s steps
    for i in 0..steps {
        // Every third step is a 39 ms measurement dwell, like FOCV.
        let dt = if i % 3 == 0 { 0.039 } else { 60.0 };
        acc.advance(dt);
        t += dt;
    }
    let reference = t.rem_euclid(period);
    // Wrap-aware distance: positions a hair on either side of the period
    // boundary are close.
    let d = (acc.position() - reference).abs();
    let d = d.min(period - d);
    // The accumulator's own drift is ~1e-11 over 1M steps; the dominant
    // term here is the rounding of accumulating `t` itself.
    assert!(
        d < 1e-4,
        "accumulator {} vs rem_euclid {}",
        acc.position(),
        reference
    );
    assert!(acc.position() >= 0.0 && acc.position() < period);
}
