//! Property-based tests on the closed-loop node engine.

use eh_core::baselines::{FocvSampleHold, Oracle};
use eh_env::profiles;
use eh_node::{EnergyStore, IdealStore, NodeSimulation, SimConfig, Supercapacitor};
use eh_pv::presets;
use eh_units::{Farads, Joules, Lux, Seconds, Volts};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Gross energy and overhead are non-negative; uptime is a valid
    /// fraction; with no load the demand is zero.
    #[test]
    fn report_sanity(lux in 0.0..20_000.0f64, minutes in 2.0..30.0f64) {
        let trace = profiles::constant(Lux::new(lux), Seconds::from_minutes(minutes));
        let mut sim = NodeSimulation::new(SimConfig::default_for(presets::sanyo_am1815()).unwrap())
            .expect("valid config");
        let mut tracker = FocvSampleHold::paper_prototype().expect("valid tracker");
        let report = sim.run(&mut tracker, &trace, Seconds::new(1.0)).expect("run succeeds");
        prop_assert!(report.gross_energy.value() >= 0.0);
        prop_assert!(report.overhead_energy.value() > 0.0);
        prop_assert_eq!(report.load_demand, Joules::ZERO);
        let u = report.uptime().value();
        prop_assert!((0.0..=1.0).contains(&u));
    }

    /// The oracle's gross harvest dominates the FOCV tracker's on the
    /// same scenario (it is the upper bound by construction).
    #[test]
    fn oracle_dominates(lux in 100.0..10_000.0f64) {
        let trace = profiles::constant(Lux::new(lux), Seconds::from_minutes(10.0));
        let run = |tracker: &mut dyn eh_core::MpptController| {
            NodeSimulation::new(SimConfig::default_for(presets::sanyo_am1815()).unwrap())
                .expect("valid config")
                .run(tracker, &trace, Seconds::new(1.0))
                .expect("run succeeds")
        };
        let focv = run(&mut FocvSampleHold::paper_prototype().expect("valid tracker"));
        let oracle = run(&mut Oracle::new(presets::sanyo_am1815()));
        prop_assert!(oracle.gross_energy.value() >= focv.gross_energy.value() - 1e-12);
    }

    /// Harvest scales (sub-)linearly with illuminance: more light never
    /// yields less gross energy.
    #[test]
    fn gross_monotone_in_light(lux in 100.0..5_000.0f64, factor in 1.2..4.0f64) {
        let run = |l: f64| {
            let trace = profiles::constant(Lux::new(l), Seconds::from_minutes(10.0));
            NodeSimulation::new(SimConfig::default_for(presets::sanyo_am1815()).unwrap())
                .expect("valid config")
                .run(
                    &mut FocvSampleHold::paper_prototype().expect("valid tracker"),
                    &trace,
                    Seconds::new(1.0),
                )
                .expect("run succeeds")
                .gross_energy
        };
        prop_assert!(run(lux * factor).value() >= run(lux).value());
    }

    /// A supercapacitor store conserves energy: what went in minus what
    /// came out (and leaked) equals what remains, within tolerance.
    #[test]
    fn supercap_conservation(deposits in proptest::collection::vec(0.0..0.2f64, 1..20)) {
        let mut sc = Supercapacitor::new(Farads::new(0.1), Volts::new(5.0), Volts::new(1.8))
            .expect("valid supercap")
            .with_leakage(eh_units::Amps::ZERO);
        let mut in_total = 0.0;
        let mut out_total = 0.0;
        for (n, d) in deposits.iter().enumerate() {
            if n % 3 == 2 {
                out_total += sc.withdraw(Joules::new(*d)).value();
            } else {
                in_total += sc.deposit(Joules::new(*d)).value();
            }
        }
        let remaining = sc.stored_energy().value();
        prop_assert!((in_total - out_total - remaining).abs() < 1e-9,
            "in {in_total} out {out_total} left {remaining}");
    }

    /// IdealStore round-trips exactly.
    #[test]
    fn ideal_store_round_trip(amounts in proptest::collection::vec(0.0..10.0f64, 1..20)) {
        let mut store = IdealStore::new();
        let mut balance = 0.0;
        for a in amounts {
            store.deposit(Joules::new(a));
            balance += a;
        }
        let got = store.withdraw(Joules::new(balance * 2.0));
        prop_assert!((got.value() - balance).abs() < 1e-9);
        prop_assert_eq!(store.stored_energy(), Joules::ZERO);
    }
}
