//! Multi-day endurance runs with per-day reporting.
//!
//! The storage state persists across days (that is the whole point of an
//! endurance run), while harvest/overhead/uptime counters reset daily so
//! the report shows *which* day hurt — typically the blinds-closed
//! weekend living off Friday's surplus.

use eh_core::MpptController;
use eh_env::TimeSeries;
use eh_units::Seconds;

use crate::error::NodeError;
use crate::report::NodeReport;
use crate::sim::NodeSimulation;

/// Runs `tracker` over `trace`, split into consecutive windows of
/// `window` duration, returning one [`NodeReport`] per window. The
/// simulation (and its energy store) carries over between windows.
///
/// # Errors
///
/// Rejects a window shorter than the trace's sampling interval;
/// propagates simulation errors.
pub fn run_windowed(
    sim: &mut NodeSimulation,
    tracker: &mut dyn MpptController,
    trace: &TimeSeries,
    window: Seconds,
    dt: Seconds,
) -> Result<Vec<NodeReport>, NodeError> {
    eh_sim::run_windowed(trace, window, |day| sim.run(tracker, day, dt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimConfig;
    use crate::storage::Supercapacitor;
    use eh_core::baselines::FocvSampleHold;
    use eh_env::week::{self, DayKind};
    use eh_pv::presets;
    use eh_units::{Farads, Volts};

    #[test]
    fn window_shorter_than_sampling_rejected() {
        let trace = eh_env::profiles::constant(eh_units::Lux::new(100.0), Seconds::new(100.0));
        let mut sim =
            NodeSimulation::new(SimConfig::default_for(presets::sanyo_am1815()).unwrap()).unwrap();
        let mut tracker = FocvSampleHold::paper_prototype().unwrap();
        assert!(run_windowed(
            &mut sim,
            &mut tracker,
            &trace,
            Seconds::new(0.5),
            Seconds::new(1.0)
        )
        .is_err());
    }

    #[test]
    fn three_day_run_reports_daily() {
        let trace = week::sequence(
            &[
                DayKind::Office,
                DayKind::SemiMobile,
                DayKind::WeekendBlindsClosed,
            ],
            7,
        )
        .unwrap()
        .decimate(60)
        .unwrap();
        let store = Supercapacitor::new(Farads::new(0.5), Volts::new(5.0), Volts::new(1.8))
            .unwrap()
            .with_initial_voltage(Volts::new(4.0));
        let cfg = SimConfig::default_for(presets::sanyo_am1815())
            .unwrap()
            .with_store(Box::new(store));
        let mut sim = NodeSimulation::new(cfg).unwrap();
        let mut tracker = FocvSampleHold::paper_prototype().unwrap();
        let reports = run_windowed(
            &mut sim,
            &mut tracker,
            &trace,
            Seconds::from_hours(24.0),
            Seconds::new(60.0),
        )
        .unwrap();
        assert_eq!(reports.len(), 3);
        // The semi-mobile day (outdoor lunch) harvests the most; the
        // blinds-closed weekend day the least.
        assert!(reports[1].gross_energy > reports[0].gross_energy);
        assert!(reports[2].gross_energy < reports[0].gross_energy);
        // Storage persisted: the weekend day still had energy to burn.
        assert!(reports[2].overhead_energy.value() > 0.0);
    }

    #[test]
    fn windows_cover_the_whole_trace() {
        let trace = eh_env::profiles::constant(eh_units::Lux::new(500.0), Seconds::from_hours(5.0));
        let mut sim =
            NodeSimulation::new(SimConfig::default_for(presets::sanyo_am1815()).unwrap()).unwrap();
        let mut tracker = FocvSampleHold::paper_prototype().unwrap();
        let reports = run_windowed(
            &mut sim,
            &mut tracker,
            &trace,
            Seconds::from_hours(2.0),
            Seconds::new(10.0),
        )
        .unwrap();
        // 5 h in 2 h windows → 2 full + 1 partial.
        assert_eq!(reports.len(), 3);
        let total: f64 = reports.iter().map(|r| r.duration.value()).sum();
        assert!((total - 5.0 * 3600.0).abs() < 60.0, "covered {total} s");
    }
}
