//! Wireless-sensor-node energy-system simulation.
//!
//! The paper's motivation (§I) is a sensor node that must live off its
//! harvester indefinitely, indoors and outdoors. This crate closes the
//! loop around the other crates: a PV cell under a 24-hour light trace,
//! an MPPT tracker (the proposed technique or any baseline), the
//! switching converter, an energy store and a duty-cycled node load.
//!
//! The headline experiment it supports is the paper's comparison against
//! the state of the art: run every tracker over the same mixed
//! indoor/outdoor day and compare *net* harvested energy — gross harvest
//! minus what the tracker's own electronics ate. Outdoors everybody
//! wins; indoors only an ultra low-power tracker stays net-positive.
//!
//! # Example
//!
//! ```
//! use eh_core::baselines::{FocvSampleHold, Oracle};
//! use eh_env::profiles;
//! use eh_node::{NodeSimulation, SimConfig};
//! use eh_pv::presets;
//! use eh_units::Seconds;
//!
//! let trace = profiles::office_desk_mixed(7).decimate(60)?; // 1-min grid
//! let mut sim = NodeSimulation::new(SimConfig::default_for(presets::sanyo_am1815())?)?;
//! let report = sim.run(
//!     &mut FocvSampleHold::paper_prototype()?,
//!     &trace,
//!     Seconds::new(60.0),
//! )?;
//! assert!(report.gross_energy.value() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compare;
pub mod endurance;
mod error;
mod load;
mod report;
mod sim;
pub mod sizing;
mod storage;

pub use compare::{compare_trackers, TrackerComparison};
pub use error::NodeError;
pub use load::{DutyCycledLoad, LoadEnergyProfile, LoadPhase};
pub use report::NodeReport;
pub use sim::{NodeSimulation, ObsLocals, SimConfig};
pub use storage::{
    Battery, ConcreteStore, EnergyDomainSupercap, EnergyStore, IdealStore, StoreSpec,
    Supercapacitor,
};
