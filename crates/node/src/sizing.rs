//! Design arithmetic for energy-neutral nodes.
//!
//! The paper's opening claim is that harvesting lets nodes "operate
//! indefinitely". Whether a *particular* node does depends on three
//! numbers this module computes: how long the store survives darkness,
//! what average harvest the day must deliver, and how much cell area
//! that takes at a given illuminance — including the tracker's own
//! overhead, which is exactly where the paper's 8 µA beats the 2 mW
//! state of the art.

use eh_core::MpptController;
use eh_pv::PvCell;
use eh_units::{Joules, Lux, Seconds, Watts};

use crate::error::NodeError;
use crate::load::DutyCycledLoad;

/// How long a store of `available` energy powers the node through
/// darkness (load plus tracker overhead; nothing harvested).
///
/// Returns `Seconds` of survival; infinite demand is rejected.
///
/// # Errors
///
/// Rejects a non-positive total draw (nothing to compute).
///
/// ```
/// use eh_core::baselines::FocvSampleHold;
/// use eh_node::{sizing, DutyCycledLoad};
/// use eh_units::Joules;
///
/// let load = DutyCycledLoad::typical_sensor_node()?;
/// let tracker = FocvSampleHold::paper_prototype()?;
/// let t = sizing::dark_survival(Joules::new(2.4), &load, &tracker)?;
/// // A 2.4 J supercap carries a ~16 µW load + 26 µW tracker ≈ 16 h.
/// assert!(t.as_hours() > 10.0 && t.as_hours() < 24.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn dark_survival(
    available: Joules,
    load: &DutyCycledLoad,
    tracker: &dyn MpptController,
) -> Result<Seconds, NodeError> {
    let draw = load.average_power().value() + tracker.overhead_power().value();
    if !(draw.is_finite() && draw > 0.0) {
        return Err(NodeError::InvalidParameter {
            name: "total_draw",
            value: draw,
        });
    }
    Ok(Seconds::new(available.value().max(0.0) / draw))
}

/// The average harvested power the lit fraction of the day must deliver
/// for energy-neutral operation: the load and tracker run around the
/// clock, the harvest only while there is light.
///
/// # Errors
///
/// Rejects a lit fraction outside `(0, 1]`.
pub fn required_harvest_power(
    load: &DutyCycledLoad,
    tracker: &dyn MpptController,
    lit_fraction: f64,
) -> Result<Watts, NodeError> {
    if !(lit_fraction.is_finite() && lit_fraction > 0.0 && lit_fraction <= 1.0) {
        return Err(NodeError::InvalidParameter {
            name: "lit_fraction",
            value: lit_fraction,
        });
    }
    let draw = load.average_power().value() + tracker.overhead_power().value();
    Ok(Watts::new(draw / lit_fraction))
}

/// The minimum cell area (relative to the reference cell's area) for
/// energy-neutral operation at a steady illuminance, assuming the
/// tracker captures `capture` of the MPP and the converter delivers
/// `converter_efficiency` of it.
///
/// Returns the multiple of the reference cell; `1.0` means "the AM-1815
/// is exactly enough".
///
/// # Errors
///
/// Rejects non-positive efficiency/capture; propagates solver errors.
pub fn required_cell_scale(
    cell: &PvCell,
    lux: Lux,
    load: &DutyCycledLoad,
    tracker: &dyn MpptController,
    lit_fraction: f64,
    capture: f64,
    converter_efficiency: f64,
) -> Result<f64, NodeError> {
    if !(capture > 0.0 && capture <= 1.0) {
        return Err(NodeError::InvalidParameter {
            name: "capture",
            value: capture,
        });
    }
    if !(converter_efficiency > 0.0 && converter_efficiency <= 1.0) {
        return Err(NodeError::InvalidParameter {
            name: "converter_efficiency",
            value: converter_efficiency,
        });
    }
    let needed = required_harvest_power(load, tracker, lit_fraction)?;
    let per_cell = cell.mpp(lux)?.power.value() * capture * converter_efficiency;
    if per_cell <= 0.0 {
        return Err(NodeError::InvalidParameter {
            name: "cell_output",
            value: per_cell,
        });
    }
    Ok(needed.value() / per_cell)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_core::baselines::{FocvSampleHold, PerturbObserve};
    use eh_pv::presets;

    fn load() -> DutyCycledLoad {
        DutyCycledLoad::typical_sensor_node().unwrap()
    }

    #[test]
    fn dark_survival_scales_with_energy() {
        let tracker = FocvSampleHold::paper_prototype().unwrap();
        let t1 = dark_survival(Joules::new(1.0), &load(), &tracker).unwrap();
        let t2 = dark_survival(Joules::new(2.0), &load(), &tracker).unwrap();
        assert!((t2.value() / t1.value() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn heavy_tracker_starves_the_night() {
        // Same store: the 2 mW hill climber dies ~50× sooner than the
        // 26 µW FOCV tracker.
        let focv = FocvSampleHold::paper_prototype().unwrap();
        let po = PerturbObserve::literature_default().unwrap();
        let store = Joules::new(2.4);
        let t_focv = dark_survival(store, &load(), &focv).unwrap();
        let t_po = dark_survival(store, &load(), &po).unwrap();
        assert!(
            t_focv.value() > 40.0 * t_po.value(),
            "FOCV {t_focv} vs P&O {t_po}"
        );
    }

    #[test]
    fn required_power_accounts_for_dark_hours() {
        let tracker = FocvSampleHold::paper_prototype().unwrap();
        let always_lit = required_harvest_power(&load(), &tracker, 1.0).unwrap();
        let half_lit = required_harvest_power(&load(), &tracker, 0.5).unwrap();
        assert!((half_lit.value() / always_lit.value() - 2.0).abs() < 1e-9);
        assert!(required_harvest_power(&load(), &tracker, 0.0).is_err());
    }

    #[test]
    fn one_am1815_suffices_on_an_office_desk() {
        // The paper's implicit sizing: a 25 cm² AM-1815 at office light
        // (≈500 lux for ~10 h/day) against a low-duty node — comfortably
        // below one cell with the FOCV tracker.
        let tracker = FocvSampleHold::paper_prototype().unwrap();
        let scale = required_cell_scale(
            &presets::sanyo_am1815(),
            Lux::new(500.0),
            &load(),
            &tracker,
            10.0 / 24.0,
            0.95,
            0.8,
        )
        .unwrap();
        assert!(scale < 1.0, "needs {scale:.2} cells");
        assert!(scale > 0.1, "but not absurdly less: {scale:.2}");
    }

    #[test]
    fn hill_climber_needs_many_cells_indoors() {
        let po = PerturbObserve::literature_default().unwrap();
        let scale = required_cell_scale(
            &presets::sanyo_am1815(),
            Lux::new(500.0),
            &load(),
            &po,
            10.0 / 24.0,
            0.98,
            0.8,
        )
        .unwrap();
        // 2 mW of tracker overhead demands an order of magnitude more
        // collector — "the tracking circuitry itself consumed all of the
        // power generated indoors".
        assert!(scale > 10.0, "P&O needs {scale:.1} cells");
    }

    #[test]
    fn validation() {
        let tracker = FocvSampleHold::paper_prototype().unwrap();
        assert!(required_cell_scale(
            &presets::sanyo_am1815(),
            Lux::new(500.0),
            &load(),
            &tracker,
            0.5,
            0.0,
            0.8
        )
        .is_err());
        assert!(required_cell_scale(
            &presets::sanyo_am1815(),
            Lux::new(500.0),
            &load(),
            &tracker,
            0.5,
            0.9,
            1.5
        )
        .is_err());
    }
}
