//! Error type for the node crate.

use std::error::Error;
use std::fmt;

use eh_core::CoreError;
use eh_env::EnvError;
use eh_pv::PvError;

/// Errors returned by node simulations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NodeError {
    /// An underlying core system error.
    Core(CoreError),
    /// An underlying PV model error.
    Pv(PvError),
    /// An underlying environment error.
    Env(EnvError),
    /// A simulation parameter was invalid.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// An observability invariant failed (e.g. the energy ledger's
    /// conservation check against the closed-loop totals).
    Obs(eh_obs::ObsError),
}

impl fmt::Display for NodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeError::Core(e) => write!(f, "core system: {e}"),
            NodeError::Pv(e) => write!(f, "pv model: {e}"),
            NodeError::Env(e) => write!(f, "environment: {e}"),
            NodeError::InvalidParameter { name, value } => {
                write!(f, "invalid simulation parameter {name} = {value}")
            }
            NodeError::Obs(e) => write!(f, "observability: {e}"),
        }
    }
}

impl Error for NodeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NodeError::Core(e) => Some(e),
            NodeError::Pv(e) => Some(e),
            NodeError::Env(e) => Some(e),
            NodeError::InvalidParameter { .. } => None,
            NodeError::Obs(e) => Some(e),
        }
    }
}

impl From<eh_obs::ObsError> for NodeError {
    fn from(e: eh_obs::ObsError) -> Self {
        NodeError::Obs(e)
    }
}

impl From<CoreError> for NodeError {
    fn from(e: CoreError) -> Self {
        NodeError::Core(e)
    }
}

impl From<PvError> for NodeError {
    fn from(e: PvError) -> Self {
        NodeError::Pv(e)
    }
}

impl From<EnvError> for NodeError {
    fn from(e: EnvError) -> Self {
        NodeError::Env(e)
    }
}

impl From<eh_sim::SimError> for NodeError {
    fn from(e: eh_sim::SimError) -> Self {
        match e {
            eh_sim::SimError::InvalidParameter { name, value } => {
                NodeError::InvalidParameter { name, value }
            }
            eh_sim::SimError::Env(e) => NodeError::Env(e),
            _ => NodeError::InvalidParameter {
                name: "sim",
                value: f64::NAN,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sources() {
        let e: NodeError = PvError::SolveFailed { what: "mpp" }.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("mpp"));
        let e = NodeError::InvalidParameter {
            name: "dt",
            value: -1.0,
        };
        assert!(e.source().is_none());
    }
}
