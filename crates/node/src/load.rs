//! Duty-cycled node loads.

use eh_units::{Joules, Seconds, Watts};

use crate::error::NodeError;

/// One phase of a node's duty cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadPhase {
    /// Phase name (for reports).
    pub name: String,
    /// Power drawn during the phase.
    pub power: Watts,
    /// Phase duration.
    pub duration: Seconds,
}

impl LoadPhase {
    /// Creates a phase.
    ///
    /// # Errors
    ///
    /// Rejects negative power or non-positive duration.
    pub fn new(
        name: impl Into<String>,
        power: Watts,
        duration: Seconds,
    ) -> Result<Self, NodeError> {
        if !(power.value().is_finite() && power.value() >= 0.0) {
            return Err(NodeError::InvalidParameter {
                name: "power",
                value: power.value(),
            });
        }
        if !(duration.value().is_finite() && duration.value() > 0.0) {
            return Err(NodeError::InvalidParameter {
                name: "duration",
                value: duration.value(),
            });
        }
        Ok(Self {
            name: name.into(),
            power,
            duration,
        })
    }
}

/// A cyclic load: the node repeats its phase sequence forever
/// (sleep → sense → transmit → sleep → ...).
///
/// ```
/// use eh_node::DutyCycledLoad;
/// use eh_units::{Seconds, Watts};
///
/// let load = DutyCycledLoad::typical_sensor_node()?;
/// // Average power is micro-watt scale — harvestable indoors.
/// assert!(load.average_power().as_micro() < 100.0);
/// # Ok::<(), eh_node::NodeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DutyCycledLoad {
    phases: Vec<LoadPhase>,
    period: Seconds,
    average: Watts,
}

impl DutyCycledLoad {
    /// Creates a load from a non-empty phase sequence.
    ///
    /// # Errors
    ///
    /// Rejects an empty sequence.
    pub fn new(phases: Vec<LoadPhase>) -> Result<Self, NodeError> {
        if phases.is_empty() {
            return Err(NodeError::InvalidParameter {
                name: "phases",
                value: 0.0,
            });
        }
        let period = Seconds::new(phases.iter().map(|p| p.duration.value()).sum());
        let energy: f64 = phases
            .iter()
            .map(|p| p.power.value() * p.duration.value())
            .sum();
        let average = Watts::new(energy / period.value());
        Ok(Self {
            phases,
            period,
            average,
        })
    }

    /// A typical low-duty sensor node: 5 µW sleep for 30 s, 3 mW sensing
    /// for 50 ms, 60 mW radio burst for 5 ms.
    ///
    /// # Errors
    ///
    /// Never fails for these constants.
    pub fn typical_sensor_node() -> Result<Self, NodeError> {
        Self::new(vec![
            LoadPhase::new("sleep", Watts::from_micro(5.0), Seconds::new(30.0))?,
            LoadPhase::new("sense", Watts::from_milli(3.0), Seconds::from_milli(50.0))?,
            LoadPhase::new(
                "transmit",
                Watts::from_milli(60.0),
                Seconds::from_milli(5.0),
            )?,
        ])
    }

    /// A duty-cycled radio node: like [`typical_sensor_node`] but with a
    /// periodic listen window — 4 µW sleep for 60 s, 3 mW sense for
    /// 50 ms, 60 mW transmit for 8 ms, then a 15 mW receive window for
    /// 120 ms (beacon listen / ack). Still micro-watt-class on average,
    /// but with a deeper per-cycle energy bite than the paper's node.
    ///
    /// [`typical_sensor_node`]: Self::typical_sensor_node
    ///
    /// # Errors
    ///
    /// Never fails for these constants.
    pub fn duty_cycled_radio() -> Result<Self, NodeError> {
        Self::new(vec![
            LoadPhase::new("sleep", Watts::from_micro(4.0), Seconds::new(60.0))?,
            LoadPhase::new("sense", Watts::from_milli(3.0), Seconds::from_milli(50.0))?,
            LoadPhase::new(
                "transmit",
                Watts::from_milli(60.0),
                Seconds::from_milli(8.0),
            )?,
            LoadPhase::new(
                "receive",
                Watts::from_milli(15.0),
                Seconds::from_milli(120.0),
            )?,
        ])
    }

    /// An intermittent-motor load (PV water-pumping actuator class): a
    /// long 6 µW standby, then a 250 mW motor burst for 2 s every
    /// 10 minutes — milli-watt-class average demand, the heaviest load
    /// profile in the zoo and far beyond what a 0.22 F hold cap can ride
    /// through without a healthy store.
    ///
    /// # Errors
    ///
    /// Never fails for these constants.
    pub fn intermittent_motor() -> Result<Self, NodeError> {
        Self::new(vec![
            LoadPhase::new("standby", Watts::from_micro(6.0), Seconds::new(598.0))?,
            LoadPhase::new("motor", Watts::from_milli(250.0), Seconds::new(2.0))?,
        ])
    }

    /// The full cycle period.
    pub fn period(&self) -> Seconds {
        self.period
    }

    /// The phases.
    pub fn phases(&self) -> &[LoadPhase] {
        &self.phases
    }

    /// Instantaneous power at absolute time `t` (cycle-folded).
    #[inline]
    pub fn power_at(&self, t: Seconds) -> Watts {
        let mut rem = t.value().rem_euclid(self.period.value());
        for p in &self.phases {
            if rem < p.duration.value() {
                return p.power;
            }
            rem -= p.duration.value();
        }
        self.phases.last().map(|p| p.power).unwrap_or(Watts::ZERO)
    }

    /// Time-averaged power over a full cycle (precomputed at
    /// construction; `energy_demand` reads it every step).
    #[inline]
    pub fn average_power(&self) -> Watts {
        self.average
    }

    /// Energy demanded over the interval `[t, t+dt)` (exact phase-folded
    /// integration).
    #[inline]
    pub fn energy_demand(&self, t: Seconds, dt: Seconds) -> Joules {
        if dt.value() <= 0.0 {
            return Joules::ZERO;
        }
        // Whole cycles plus a partial walk.
        let cycles = (dt.value() / self.period.value()).floor();
        let mut energy = cycles * self.average_power().value() * self.period.value();
        let mut rem = dt.value() - cycles * self.period.value();
        let mut pos = t.value().rem_euclid(self.period.value());
        while rem > 1e-15 {
            // Find the phase containing `pos`.
            let mut acc = 0.0;
            let mut advanced = false;
            for p in &self.phases {
                if pos < acc + p.duration.value() {
                    let span = (acc + p.duration.value() - pos).min(rem);
                    energy += p.power.value() * span;
                    pos = (pos + span) % self.period.value();
                    rem -= span;
                    advanced = true;
                    break;
                }
                acc += p.duration.value();
            }
            if !advanced {
                pos = 0.0;
            }
        }
        Joules::new(energy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load() -> DutyCycledLoad {
        DutyCycledLoad::typical_sensor_node().unwrap()
    }

    #[test]
    fn validation() {
        assert!(DutyCycledLoad::new(vec![]).is_err());
        assert!(LoadPhase::new("x", Watts::new(-1.0), Seconds::new(1.0)).is_err());
        assert!(LoadPhase::new("x", Watts::new(1.0), Seconds::ZERO).is_err());
    }

    #[test]
    fn period_is_sum_of_phases() {
        let l = load();
        assert!((l.period().value() - 30.055).abs() < 1e-9);
        assert_eq!(l.phases().len(), 3);
    }

    #[test]
    fn power_at_phase_boundaries() {
        let l = load();
        assert_eq!(l.power_at(Seconds::new(1.0)), Watts::from_micro(5.0));
        assert_eq!(l.power_at(Seconds::new(30.01)), Watts::from_milli(3.0));
        assert_eq!(l.power_at(Seconds::new(30.052)), Watts::from_milli(60.0));
        // Next cycle folds back to sleep.
        assert_eq!(l.power_at(Seconds::new(30.06)), Watts::from_micro(5.0));
    }

    #[test]
    fn average_power() {
        let l = load();
        let expect = (5e-6 * 30.0 + 3e-3 * 0.05 + 60e-3 * 0.005) / 30.055;
        assert!((l.average_power().value() - expect).abs() < 1e-12);
    }

    #[test]
    fn energy_demand_full_cycles() {
        let l = load();
        let one_cycle = l.energy_demand(Seconds::ZERO, l.period());
        let expect = l.average_power().value() * l.period().value();
        assert!((one_cycle.value() - expect).abs() < 1e-9);
        let ten = l.energy_demand(Seconds::ZERO, l.period() * 10.0);
        assert!((ten.value() - 10.0 * expect).abs() < 1e-8);
    }

    #[test]
    fn energy_demand_partial_phase() {
        let l = load();
        // 10 s of sleep only.
        let e = l.energy_demand(Seconds::new(5.0), Seconds::new(10.0));
        assert!((e.value() - 5e-6 * 10.0).abs() < 1e-12);
        // Window crossing sense + tx.
        let e = l.energy_demand(Seconds::new(29.9), Seconds::new(0.2));
        let expect = 5e-6 * 0.1 + 3e-3 * 0.05 + 60e-3 * 0.005 + 5e-6 * 0.045;
        assert!((e.value() - expect).abs() < 1e-9, "e = {}", e.value());
    }

    #[test]
    fn endurance_load_classes() {
        let radio = DutyCycledLoad::duty_cycled_radio().unwrap();
        let motor = DutyCycledLoad::intermittent_motor().unwrap();
        let sensor = load();
        // Radio listens cost more than the bare sensor node but stay
        // micro-watt class; the motor is milli-watt class.
        assert!(radio.average_power().value() > sensor.average_power().value());
        assert!(radio.average_power().as_micro() < 100.0);
        assert!(motor.average_power().as_milli() > 0.5);
        assert!((motor.period().value() - 600.0).abs() < 1e-9);
        // Exact phase-folded integration still holds for the new shapes.
        let e = motor.energy_demand(Seconds::ZERO, motor.period());
        let expect = motor.average_power().value() * motor.period().value();
        assert!((e.value() - expect).abs() < 1e-9);
    }

    #[test]
    fn zero_dt_demand() {
        assert_eq!(
            load().energy_demand(Seconds::new(3.0), Seconds::ZERO),
            Joules::ZERO
        );
    }
}
