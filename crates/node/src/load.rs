//! Duty-cycled node loads.

use eh_units::{Joules, Seconds, Watts};

use crate::error::NodeError;

/// One phase of a node's duty cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadPhase {
    /// Phase name (for reports).
    pub name: String,
    /// Power drawn during the phase.
    pub power: Watts,
    /// Phase duration.
    pub duration: Seconds,
}

impl LoadPhase {
    /// Creates a phase.
    ///
    /// # Errors
    ///
    /// Rejects negative power or non-positive duration.
    pub fn new(
        name: impl Into<String>,
        power: Watts,
        duration: Seconds,
    ) -> Result<Self, NodeError> {
        if !(power.value().is_finite() && power.value() >= 0.0) {
            return Err(NodeError::InvalidParameter {
                name: "power",
                value: power.value(),
            });
        }
        if !(duration.value().is_finite() && duration.value() > 0.0) {
            return Err(NodeError::InvalidParameter {
                name: "duration",
                value: duration.value(),
            });
        }
        Ok(Self {
            name: name.into(),
            power,
            duration,
        })
    }
}

/// A cyclic load: the node repeats its phase sequence forever
/// (sleep → sense → transmit → sleep → ...).
///
/// ```
/// use eh_node::DutyCycledLoad;
/// use eh_units::{Seconds, Watts};
///
/// let load = DutyCycledLoad::typical_sensor_node()?;
/// // Average power is micro-watt scale — harvestable indoors.
/// assert!(load.average_power().as_micro() < 100.0);
/// # Ok::<(), eh_node::NodeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DutyCycledLoad {
    phases: Vec<LoadPhase>,
    period: Seconds,
    average: Watts,
}

impl DutyCycledLoad {
    /// Creates a load from a non-empty phase sequence.
    ///
    /// # Errors
    ///
    /// Rejects an empty sequence.
    pub fn new(phases: Vec<LoadPhase>) -> Result<Self, NodeError> {
        if phases.is_empty() {
            return Err(NodeError::InvalidParameter {
                name: "phases",
                value: 0.0,
            });
        }
        let period = Seconds::new(phases.iter().map(|p| p.duration.value()).sum());
        let energy: f64 = phases
            .iter()
            .map(|p| p.power.value() * p.duration.value())
            .sum();
        let average = Watts::new(energy / period.value());
        Ok(Self {
            phases,
            period,
            average,
        })
    }

    /// A typical low-duty sensor node: 5 µW sleep for 30 s, 3 mW sensing
    /// for 50 ms, 60 mW radio burst for 5 ms.
    ///
    /// # Errors
    ///
    /// Never fails for these constants.
    pub fn typical_sensor_node() -> Result<Self, NodeError> {
        Self::new(vec![
            LoadPhase::new("sleep", Watts::from_micro(5.0), Seconds::new(30.0))?,
            LoadPhase::new("sense", Watts::from_milli(3.0), Seconds::from_milli(50.0))?,
            LoadPhase::new(
                "transmit",
                Watts::from_milli(60.0),
                Seconds::from_milli(5.0),
            )?,
        ])
    }

    /// A duty-cycled radio node: like [`typical_sensor_node`] but with a
    /// periodic listen window — 4 µW sleep for 60 s, 3 mW sense for
    /// 50 ms, 60 mW transmit for 8 ms, then a 15 mW receive window for
    /// 120 ms (beacon listen / ack). Still micro-watt-class on average,
    /// but with a deeper per-cycle energy bite than the paper's node.
    ///
    /// [`typical_sensor_node`]: Self::typical_sensor_node
    ///
    /// # Errors
    ///
    /// Never fails for these constants.
    pub fn duty_cycled_radio() -> Result<Self, NodeError> {
        Self::new(vec![
            LoadPhase::new("sleep", Watts::from_micro(4.0), Seconds::new(60.0))?,
            LoadPhase::new("sense", Watts::from_milli(3.0), Seconds::from_milli(50.0))?,
            LoadPhase::new(
                "transmit",
                Watts::from_milli(60.0),
                Seconds::from_milli(8.0),
            )?,
            LoadPhase::new(
                "receive",
                Watts::from_milli(15.0),
                Seconds::from_milli(120.0),
            )?,
        ])
    }

    /// An intermittent-motor load (PV water-pumping actuator class): a
    /// long 6 µW standby, then a 250 mW motor burst for 2 s every
    /// 10 minutes — milli-watt-class average demand, the heaviest load
    /// profile in the zoo and far beyond what a 0.22 F hold cap can ride
    /// through without a healthy store.
    ///
    /// # Errors
    ///
    /// Never fails for these constants.
    pub fn intermittent_motor() -> Result<Self, NodeError> {
        Self::new(vec![
            LoadPhase::new("standby", Watts::from_micro(6.0), Seconds::new(598.0))?,
            LoadPhase::new("motor", Watts::from_milli(250.0), Seconds::new(2.0))?,
        ])
    }

    /// The full cycle period.
    pub fn period(&self) -> Seconds {
        self.period
    }

    /// The phases.
    pub fn phases(&self) -> &[LoadPhase] {
        &self.phases
    }

    /// Instantaneous power at absolute time `t` (cycle-folded).
    #[inline]
    pub fn power_at(&self, t: Seconds) -> Watts {
        let mut rem = t.value().rem_euclid(self.period.value());
        for p in &self.phases {
            if rem < p.duration.value() {
                return p.power;
            }
            rem -= p.duration.value();
        }
        self.phases.last().map(|p| p.power).unwrap_or(Watts::ZERO)
    }

    /// Time-averaged power over a full cycle (precomputed at
    /// construction; `energy_demand` reads it every step).
    #[inline]
    pub fn average_power(&self) -> Watts {
        self.average
    }

    /// Energy demanded over the interval `[t, t+dt)` (exact phase-folded
    /// integration).
    #[inline]
    pub fn energy_demand(&self, t: Seconds, dt: Seconds) -> Joules {
        if dt.value() <= 0.0 {
            return Joules::ZERO;
        }
        // Whole cycles plus a partial walk.
        let cycles = (dt.value() / self.period.value()).floor();
        let mut energy = cycles * self.average_power().value() * self.period.value();
        let mut rem = dt.value() - cycles * self.period.value();
        let mut pos = t.value().rem_euclid(self.period.value());
        while rem > 1e-15 {
            // Find the phase containing `pos`.
            let mut acc = 0.0;
            let mut advanced = false;
            for p in &self.phases {
                if pos < acc + p.duration.value() {
                    let span = (acc + p.duration.value() - pos).min(rem);
                    energy += p.power.value() * span;
                    pos = (pos + span) % self.period.value();
                    rem -= span;
                    advanced = true;
                    break;
                }
                acc += p.duration.value();
            }
            if !advanced {
                pos = 0.0;
            }
        }
        Joules::new(energy)
    }

    /// [`energy_demand`] driven by an incremental phase cursor instead
    /// of the absolute clock: the cursor carries the intra-period
    /// position across calls, so the per-call `rem_euclid` (an `fmod`,
    /// the hottest scalar op in the fleet step profile) disappears from
    /// the hot path. The walk itself is the same exact phase-folded
    /// integration; within a call the wrap uses a conditional
    /// subtraction that is bit-identical to the `%` in
    /// [`energy_demand`].
    ///
    /// Across calls the cursor position drifts from
    /// `t.rem_euclid(period)` only by the rounding of its running
    /// addition — bounded (and in practice smaller than the drift of
    /// accumulating `t` itself) and property-tested over multi-year
    /// step counts in `tests/properties.rs`.
    ///
    /// The cursor must have been created with this load's period (see
    /// [`DutyCycledLoad::phase_cursor`]); a mismatched period walks the
    /// wrong schedule.
    ///
    /// [`energy_demand`]: Self::energy_demand
    #[inline]
    pub fn energy_demand_with_cursor(
        &self,
        cursor: &mut eh_analog::phase::PhaseAccumulator,
        dt: Seconds,
    ) -> Joules {
        if dt.value() <= 0.0 {
            return Joules::ZERO;
        }
        let period = self.period.value();
        // Whole cycles return the position to where it started, so only
        // the partial remainder walks the cursor.
        let cycles = (dt.value() / period).floor();
        let mut energy = cycles * self.average_power().value() * period;
        let mut rem = dt.value() - cycles * period;
        let mut pos = cursor.position();
        while rem > 1e-15 {
            let mut acc = 0.0;
            let mut advanced = false;
            for p in &self.phases {
                if pos < acc + p.duration.value() {
                    let span = (acc + p.duration.value() - pos).min(rem);
                    energy += p.power.value() * span;
                    // `pos + span <= period + rounding`, so one
                    // conditional subtraction matches `%` bit-for-bit.
                    pos += span;
                    if pos >= period {
                        pos -= period;
                    }
                    rem -= span;
                    advanced = true;
                    break;
                }
                acc += p.duration.value();
            }
            if !advanced {
                pos = 0.0;
            }
        }
        cursor.set_position(pos);
        Joules::new(energy)
    }

    /// Creates a phase cursor for this load positioned at absolute time
    /// `t` (pays the one-off `rem_euclid`).
    pub fn phase_cursor(&self, t: Seconds) -> eh_analog::phase::PhaseAccumulator {
        eh_analog::phase::PhaseAccumulator::new(self.period.value(), t.value())
            .expect("load periods are validated positive and finite")
    }

    /// Precomputes the cumulative-energy form of this load for
    /// [`LoadEnergyProfile::energy_over`] — the fleet step path that
    /// replaces the per-step phase *walk* with two prefix-sum lookups.
    pub fn energy_profile(&self) -> LoadEnergyProfile {
        let mut bounds = Vec::with_capacity(self.phases.len() + 1);
        let mut cum = Vec::with_capacity(self.phases.len() + 1);
        let mut powers = Vec::with_capacity(self.phases.len());
        let mut b = 0.0;
        let mut e = 0.0;
        bounds.push(0.0);
        cum.push(0.0);
        for p in &self.phases {
            b += p.duration.value();
            e += p.power.value() * p.duration.value();
            bounds.push(b);
            cum.push(e);
            powers.push(p.power.value());
        }
        LoadEnergyProfile {
            period: self.period.value(),
            average: self.average.value(),
            cycle_energy: e,
            bounds,
            powers,
            cum,
        }
    }
}

/// The cumulative-energy form of a [`DutyCycledLoad`]: the energy drawn
/// over `[pos, pos + dt)` evaluates as a *difference of prefix sums*,
/// `F(pos + rem) − F(pos)`, instead of iterating phase segments — two
/// short lookups per step in place of the phase walk that tops the
/// fleet step profile (DESIGN.md §10/§14).
///
/// Divergence vs [`DutyCycledLoad::energy_demand`] is the cancellation
/// of the prefix-sum difference — on the order of `ε·E_cycle` per step,
/// many orders inside the fleet's rel-1e-9 contract (property-tested at
/// rel 1e-9 over multi-year walks in `tests/properties.rs`). Engines
/// needing the oracle's bit-identity must keep the walking forms.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadEnergyProfile {
    period: f64,
    average: f64,
    cycle_energy: f64,
    /// Phase start offsets plus the period, ascending: `len = phases+1`.
    bounds: Vec<f64>,
    /// Power per phase: `len = phases`.
    powers: Vec<f64>,
    /// Cumulative energy at each bound: `cum[i] = F(bounds[i])`.
    cum: Vec<f64>,
}

impl LoadEnergyProfile {
    /// The full cycle period in seconds.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Cumulative energy from the cycle start to intra-period position
    /// `x` (clamped linear extrapolation beyond the last bound absorbs
    /// ulp-scale overshoot of a wrapped position).
    #[inline]
    fn cumulative(&self, x: f64) -> f64 {
        // Loads have a handful of phases; a linear scan beats a binary
        // search and stays branch-predictable (early phases are long).
        let mut i = self.powers.len() - 1;
        for k in 0..self.powers.len() - 1 {
            if x < self.bounds[k + 1] {
                i = k;
                break;
            }
        }
        self.cum[i] + self.powers[i] * (x - self.bounds[i])
    }

    /// Energy demanded over `[*pos, *pos + dt)`, advancing `pos` (an
    /// intra-period position in `[0, period)`, e.g. starting at `0.0`)
    /// by `dt` modulo the period. Whole cycles contribute
    /// `average · period` exactly as the walking forms do.
    #[inline]
    pub fn energy_over(&self, pos: &mut f64, dt: Seconds) -> Joules {
        if dt.value() <= 0.0 {
            return Joules::ZERO;
        }
        let cycles = (dt.value() / self.period).floor();
        let mut energy = cycles * self.average * self.period;
        let rem = dt.value() - cycles * self.period;
        let p = *pos;
        let end = p + rem;
        if end < self.period {
            energy += self.cumulative(end) - self.cumulative(p);
            *pos = end;
        } else {
            let wrapped = end - self.period;
            energy += (self.cycle_energy - self.cumulative(p)) + self.cumulative(wrapped);
            *pos = wrapped;
        }
        Joules::new(energy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load() -> DutyCycledLoad {
        DutyCycledLoad::typical_sensor_node().unwrap()
    }

    #[test]
    fn validation() {
        assert!(DutyCycledLoad::new(vec![]).is_err());
        assert!(LoadPhase::new("x", Watts::new(-1.0), Seconds::new(1.0)).is_err());
        assert!(LoadPhase::new("x", Watts::new(1.0), Seconds::ZERO).is_err());
    }

    #[test]
    fn period_is_sum_of_phases() {
        let l = load();
        assert!((l.period().value() - 30.055).abs() < 1e-9);
        assert_eq!(l.phases().len(), 3);
    }

    #[test]
    fn power_at_phase_boundaries() {
        let l = load();
        assert_eq!(l.power_at(Seconds::new(1.0)), Watts::from_micro(5.0));
        assert_eq!(l.power_at(Seconds::new(30.01)), Watts::from_milli(3.0));
        assert_eq!(l.power_at(Seconds::new(30.052)), Watts::from_milli(60.0));
        // Next cycle folds back to sleep.
        assert_eq!(l.power_at(Seconds::new(30.06)), Watts::from_micro(5.0));
    }

    #[test]
    fn average_power() {
        let l = load();
        let expect = (5e-6 * 30.0 + 3e-3 * 0.05 + 60e-3 * 0.005) / 30.055;
        assert!((l.average_power().value() - expect).abs() < 1e-12);
    }

    #[test]
    fn energy_demand_full_cycles() {
        let l = load();
        let one_cycle = l.energy_demand(Seconds::ZERO, l.period());
        let expect = l.average_power().value() * l.period().value();
        assert!((one_cycle.value() - expect).abs() < 1e-9);
        let ten = l.energy_demand(Seconds::ZERO, l.period() * 10.0);
        assert!((ten.value() - 10.0 * expect).abs() < 1e-8);
    }

    #[test]
    fn energy_demand_partial_phase() {
        let l = load();
        // 10 s of sleep only.
        let e = l.energy_demand(Seconds::new(5.0), Seconds::new(10.0));
        assert!((e.value() - 5e-6 * 10.0).abs() < 1e-12);
        // Window crossing sense + tx.
        let e = l.energy_demand(Seconds::new(29.9), Seconds::new(0.2));
        let expect = 5e-6 * 0.1 + 3e-3 * 0.05 + 60e-3 * 0.005 + 5e-6 * 0.045;
        assert!((e.value() - expect).abs() < 1e-9, "e = {}", e.value());
    }

    #[test]
    fn endurance_load_classes() {
        let radio = DutyCycledLoad::duty_cycled_radio().unwrap();
        let motor = DutyCycledLoad::intermittent_motor().unwrap();
        let sensor = load();
        // Radio listens cost more than the bare sensor node but stay
        // micro-watt class; the motor is milli-watt class.
        assert!(radio.average_power().value() > sensor.average_power().value());
        assert!(radio.average_power().as_micro() < 100.0);
        assert!(motor.average_power().as_milli() > 0.5);
        assert!((motor.period().value() - 600.0).abs() < 1e-9);
        // Exact phase-folded integration still holds for the new shapes.
        let e = motor.energy_demand(Seconds::ZERO, motor.period());
        let expect = motor.average_power().value() * motor.period().value();
        assert!((e.value() - expect).abs() < 1e-9);
    }

    #[test]
    fn cursor_demand_matches_absolute_demand_cumulatively() {
        // Per-step energies may differ at the rounding level when a
        // window straddles a phase boundary (the cursor and the
        // re-derived clock position disagree by ~ulp, shifting a sliver
        // of span between phases), but the cumulative integral — the
        // quantity the net-energy contract bounds — must agree tightly.
        let l = load();
        let mut cursor = l.phase_cursor(Seconds::new(5.0));
        let mut t = 5.0f64;
        let (mut sum_clock, mut sum_cursor) = (0.0f64, 0.0f64);
        // Alternate fleet-like steps: 60 s connects and 39 ms dwells.
        for i in 0..10_000 {
            let dt = if i % 3 == 0 { 0.039 } else { 60.0 };
            sum_clock += l.energy_demand(Seconds::new(t), Seconds::new(dt)).value();
            sum_cursor += l
                .energy_demand_with_cursor(&mut cursor, Seconds::new(dt))
                .value();
            t += dt;
        }
        let rel = (sum_clock - sum_cursor).abs() / sum_clock;
        assert!(rel < 1e-9, "cumulative divergence {rel}");
    }

    #[test]
    fn cursor_zero_dt_demand_leaves_cursor_unchanged() {
        let l = load();
        let mut cursor = l.phase_cursor(Seconds::new(3.0));
        let before = cursor.position();
        assert_eq!(
            l.energy_demand_with_cursor(&mut cursor, Seconds::ZERO),
            Joules::ZERO
        );
        assert_eq!(cursor.position(), before);
    }

    #[test]
    fn zero_dt_demand() {
        assert_eq!(
            load().energy_demand(Seconds::new(3.0), Seconds::ZERO),
            Joules::ZERO
        );
    }
}
