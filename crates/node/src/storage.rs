//! Energy stores: supercapacitor and an idealised accumulator.

use eh_units::{Amps, Farads, Joules, Ratio, Seconds, Volts};

use crate::error::NodeError;

/// Something that can absorb and supply harvested energy.
pub trait EnergyStore {
    /// Deposits energy; returns the amount actually absorbed (a full
    /// store absorbs less).
    fn deposit(&mut self, energy: Joules) -> Joules;

    /// Withdraws up to `energy`; returns the amount actually supplied.
    fn withdraw(&mut self, energy: Joules) -> Joules;

    /// Applies self-discharge over `dt`.
    fn leak(&mut self, dt: Seconds);

    /// Usable energy currently stored.
    fn stored_energy(&self) -> Joules;

    /// Fill level in `[0, 1]` where meaningful.
    fn state_of_charge(&self) -> Ratio;
}

/// A supercapacitor store: energy lives in `½CV²` between a minimum
/// usable voltage and a maximum rated voltage, with a constant leakage
/// current (the dominant supercap loss at these scales).
///
/// ```
/// use eh_node::{EnergyStore, Supercapacitor};
/// use eh_units::{Farads, Joules, Volts};
///
/// let mut sc = Supercapacitor::new(Farads::new(0.1), Volts::new(5.0), Volts::new(1.8))?;
/// let absorbed = sc.deposit(Joules::new(0.5));
/// assert!(absorbed.value() > 0.0);
/// # Ok::<(), eh_node::NodeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Supercapacitor {
    capacitance: Farads,
    v_max: Volts,
    v_min: Volts,
    leakage: Amps,
    voltage: Volts,
}

impl Supercapacitor {
    /// Creates a supercapacitor, initially at its minimum usable voltage.
    ///
    /// # Errors
    ///
    /// Rejects non-positive capacitance or `v_min` not in `(0, v_max)`.
    pub fn new(capacitance: Farads, v_max: Volts, v_min: Volts) -> Result<Self, NodeError> {
        if !(capacitance.value().is_finite() && capacitance.value() > 0.0) {
            return Err(NodeError::InvalidParameter {
                name: "capacitance",
                value: capacitance.value(),
            });
        }
        if !(v_min.value() > 0.0 && v_max > v_min) {
            return Err(NodeError::InvalidParameter {
                name: "voltage_window",
                value: v_min.value(),
            });
        }
        Ok(Self {
            capacitance,
            v_max,
            v_min,
            leakage: Amps::from_micro(2.0),
            voltage: v_min,
        })
    }

    /// Overrides the leakage current (default 2 µA).
    #[must_use]
    pub fn with_leakage(mut self, leakage: Amps) -> Self {
        self.leakage = leakage.max(Amps::ZERO);
        self
    }

    /// Starts the capacitor at a given terminal voltage (clamped into the
    /// usable window) — e.g. a node deployed with a charged store.
    #[must_use]
    pub fn with_initial_voltage(mut self, v: Volts) -> Self {
        self.voltage = v.clamp(self.v_min, self.v_max);
        self
    }

    /// The terminal voltage.
    pub fn voltage(&self) -> Volts {
        self.voltage
    }

    /// The capacitance.
    pub fn capacitance(&self) -> Farads {
        self.capacitance
    }

    /// The maximum rated voltage.
    pub fn v_max(&self) -> Volts {
        self.v_max
    }

    /// The minimum usable voltage.
    pub fn v_min(&self) -> Volts {
        self.v_min
    }

    /// The leakage current.
    pub fn leakage(&self) -> Amps {
        self.leakage
    }

    /// Usable capacity: `½C(v_max² − v_min²)`.
    pub fn usable_capacity(&self) -> Joules {
        Joules::new(
            0.5 * self.capacitance.value()
                * (self.v_max.value().powi(2) - self.v_min.value().powi(2)),
        )
    }

    #[inline]
    fn energy_at(&self, v: Volts) -> f64 {
        0.5 * self.capacitance.value() * v.value().powi(2)
    }

    #[inline]
    fn voltage_for_energy(&self, e: f64) -> Volts {
        Volts::new((2.0 * e / self.capacitance.value()).max(0.0).sqrt())
    }
}

impl EnergyStore for Supercapacitor {
    #[inline]
    fn deposit(&mut self, energy: Joules) -> Joules {
        if energy.value() <= 0.0 {
            return Joules::ZERO;
        }
        let now = self.energy_at(self.voltage);
        let cap = self.energy_at(self.v_max);
        let absorbed = energy.value().min(cap - now);
        self.voltage = self.voltage_for_energy(now + absorbed);
        Joules::new(absorbed)
    }

    #[inline]
    fn withdraw(&mut self, energy: Joules) -> Joules {
        if energy.value() <= 0.0 {
            return Joules::ZERO;
        }
        let now = self.energy_at(self.voltage);
        let floor = self.energy_at(self.v_min);
        // Bit-identity note: the withdraw path always runs the
        // energy→voltage round trip, even for a zero-supplied result —
        // skipping it would move the terminal voltage by one ULP.
        let supplied = energy.value().min((now - floor).max(0.0));
        self.voltage = self.voltage_for_energy(now - supplied);
        Joules::new(supplied)
    }

    #[inline]
    fn leak(&mut self, dt: Seconds) {
        if dt.value() <= 0.0 {
            return;
        }
        let dv = (self.leakage * dt) / self.capacitance;
        self.voltage = (self.voltage - dv).max(Volts::ZERO);
    }

    #[inline]
    fn stored_energy(&self) -> Joules {
        Joules::new((self.energy_at(self.voltage) - self.energy_at(self.v_min)).max(0.0))
    }

    fn state_of_charge(&self) -> Ratio {
        let usable = self.usable_capacity().value();
        if usable <= 0.0 {
            return Ratio::ZERO;
        }
        Ratio::new((self.stored_energy().value() / usable).clamp(0.0, 1.0))
    }
}

/// A [`Supercapacitor`] with its state carried in the *energy* domain.
///
/// The voltage-domain store pays an energy→voltage `sqrt` round trip on
/// every deposit and withdraw — three per simulated step on the fleet
/// hot path, the second-largest entry in the DESIGN.md §10 step profile.
/// Carrying `E = ½CV²` directly makes deposit and withdraw pure
/// add/clamp operations; only `leak` (whose physics is linear in
/// voltage) and the explicit [`voltage`](Self::voltage) observation pay
/// a `sqrt`, cutting the per-step count from three to one.
///
/// The reordering changes float rounding, so the state is *not*
/// bit-identical to the voltage-domain store — it tracks it within
/// rel 1e-12 over arbitrary deposit/withdraw/leak sequences (including
/// the campaign's worn-store `v₀ = √(v_min² + 2E/C_worn)` deployment
/// path), property-tested in `tests/properties.rs`. Engines that use it
/// therefore run under the fleet's bounded-divergence contract, not the
/// oracle's bit-identity.
///
/// ```
/// use eh_node::{EnergyDomainSupercap, EnergyStore, Supercapacitor};
/// use eh_units::{Farads, Joules, Volts};
///
/// let mut sc = Supercapacitor::new(Farads::new(0.1), Volts::new(5.0), Volts::new(1.8))?;
/// sc.deposit(Joules::new(0.4));
/// let mut fast = EnergyDomainSupercap::from_supercapacitor(&sc);
/// let rel = (fast.stored_energy().value() - sc.stored_energy().value()).abs()
///     / sc.stored_energy().value();
/// assert!(rel < 1e-12);
/// # Ok::<(), eh_node::NodeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyDomainSupercap {
    capacitance: f64,
    leakage: f64,
    e_max: f64,
    e_floor: f64,
    energy: f64,
    /// `√(2/C)`, so `V(E) = √(2/C)·√E` costs one `sqrt` and one
    /// multiply instead of a divide-then-`sqrt` round trip per step.
    sqrt_2_over_c: f64,
    /// `1/C`, hoisting the leak update's division out of the hot loop.
    inv_c: f64,
}

impl EnergyDomainSupercap {
    /// Captures a voltage-domain supercapacitor's parameters and current
    /// state.
    pub fn from_supercapacitor(sc: &Supercapacitor) -> Self {
        let c = sc.capacitance().value();
        Self {
            capacitance: c,
            leakage: sc.leakage().value(),
            e_max: 0.5 * c * sc.v_max().value().powi(2),
            e_floor: 0.5 * c * sc.v_min().value().powi(2),
            energy: 0.5 * c * sc.voltage().value().powi(2),
            sqrt_2_over_c: (2.0 / c).sqrt(),
            inv_c: 1.0 / c,
        }
    }

    /// The terminal voltage — the one observation that pays a `sqrt`.
    pub fn voltage(&self) -> Volts {
        Volts::new(self.sqrt_2_over_c * self.energy.max(0.0).sqrt())
    }

    /// Usable capacity: `½C(v_max² − v_min²)`.
    pub fn usable_capacity(&self) -> Joules {
        Joules::new(self.e_max - self.e_floor)
    }
}

impl EnergyStore for EnergyDomainSupercap {
    #[inline]
    fn deposit(&mut self, energy: Joules) -> Joules {
        if energy.value() <= 0.0 {
            return Joules::ZERO;
        }
        // Mirrors the voltage-domain clamp without the √ round trip.
        let absorbed = energy.value().min(self.e_max - self.energy);
        self.energy += absorbed;
        Joules::new(absorbed)
    }

    #[inline]
    fn withdraw(&mut self, energy: Joules) -> Joules {
        if energy.value() <= 0.0 {
            return Joules::ZERO;
        }
        let supplied = energy.value().min((self.energy - self.e_floor).max(0.0));
        self.energy -= supplied;
        Joules::new(supplied)
    }

    #[inline]
    fn leak(&mut self, dt: Seconds) {
        if dt.value() <= 0.0 {
            return;
        }
        // Leakage is a constant current, i.e. linear in *voltage*, so
        // this is where the remaining per-step sqrt lives; the two
        // divisions are hoisted into `sqrt_2_over_c` / `inv_c`.
        let v = self.sqrt_2_over_c * self.energy.max(0.0).sqrt();
        let dv = self.leakage * dt.value() * self.inv_c;
        let after = (v - dv).max(0.0);
        self.energy = 0.5 * self.capacitance * after * after;
    }

    #[inline]
    fn stored_energy(&self) -> Joules {
        Joules::new((self.energy - self.e_floor).max(0.0))
    }

    fn state_of_charge(&self) -> Ratio {
        let usable = self.e_max - self.e_floor;
        if usable <= 0.0 {
            return Ratio::ZERO;
        }
        Ratio::new((self.stored_energy().value() / usable).clamp(0.0, 1.0))
    }
}

/// A small rechargeable battery (LIR-coin-cell / thin-film class):
/// fixed usable capacity, coulombic charge inefficiency and a slow
/// relative self-discharge.
///
/// ```
/// use eh_node::{Battery, EnergyStore};
/// use eh_units::Joules;
///
/// let mut b = Battery::new(Joules::new(100.0), 0.9, 0.05)?;
/// let absorbed = b.deposit(Joules::new(10.0));
/// assert!((absorbed.value() - 9.0).abs() < 1e-12); // 90 % coulombic
/// # Ok::<(), eh_node::NodeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Battery {
    capacity: Joules,
    charge_efficiency: f64,
    /// Fraction of the stored energy lost per month to self-discharge.
    self_discharge_per_month: f64,
    level: f64,
}

impl Battery {
    /// Creates an empty battery.
    ///
    /// # Errors
    ///
    /// Rejects non-positive capacity, charge efficiency outside `(0, 1]`
    /// or self-discharge outside `[0, 1)`.
    pub fn new(
        capacity: Joules,
        charge_efficiency: f64,
        self_discharge_per_month: f64,
    ) -> Result<Self, NodeError> {
        if !(capacity.value().is_finite() && capacity.value() > 0.0) {
            return Err(NodeError::InvalidParameter {
                name: "capacity",
                value: capacity.value(),
            });
        }
        if !(charge_efficiency > 0.0 && charge_efficiency <= 1.0) {
            return Err(NodeError::InvalidParameter {
                name: "charge_efficiency",
                value: charge_efficiency,
            });
        }
        if !(0.0..1.0).contains(&self_discharge_per_month) {
            return Err(NodeError::InvalidParameter {
                name: "self_discharge_per_month",
                value: self_discharge_per_month,
            });
        }
        Ok(Self {
            capacity,
            charge_efficiency,
            self_discharge_per_month,
            level: 0.0,
        })
    }

    /// Starts the battery at a given state of charge in `[0, 1]`.
    #[must_use]
    pub fn with_state_of_charge(mut self, soc: f64) -> Self {
        self.level = self.capacity.value() * soc.clamp(0.0, 1.0);
        self
    }

    /// The rated capacity.
    pub fn capacity(&self) -> Joules {
        self.capacity
    }
}

impl EnergyStore for Battery {
    #[inline]
    fn deposit(&mut self, energy: Joules) -> Joules {
        if energy.value() <= 0.0 {
            return Joules::ZERO;
        }
        let absorbed =
            (energy.value() * self.charge_efficiency).min(self.capacity.value() - self.level);
        self.level += absorbed;
        Joules::new(absorbed)
    }

    #[inline]
    fn withdraw(&mut self, energy: Joules) -> Joules {
        if energy.value() <= 0.0 {
            return Joules::ZERO;
        }
        let supplied = energy.value().min(self.level);
        self.level -= supplied;
        Joules::new(supplied)
    }

    #[inline]
    fn leak(&mut self, dt: Seconds) {
        if dt.value() <= 0.0 || self.self_discharge_per_month <= 0.0 {
            return;
        }
        const MONTH: f64 = 30.0 * 86_400.0;
        let keep = (1.0 - self.self_discharge_per_month).powf(dt.value() / MONTH);
        self.level *= keep;
    }

    fn stored_energy(&self) -> Joules {
        Joules::new(self.level)
    }

    fn state_of_charge(&self) -> Ratio {
        Ratio::new((self.level / self.capacity.value()).clamp(0.0, 1.0))
    }
}

/// An idealised store: infinite capacity, no leakage, never empty-limited
/// below zero. Used for pure tracker comparisons where storage artefacts
/// would muddy the metric.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IdealStore {
    energy: f64,
}

impl IdealStore {
    /// Creates an empty ideal store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EnergyStore for IdealStore {
    #[inline]
    fn deposit(&mut self, energy: Joules) -> Joules {
        if energy.value() <= 0.0 {
            return Joules::ZERO;
        }
        self.energy += energy.value();
        energy
    }

    #[inline]
    fn withdraw(&mut self, energy: Joules) -> Joules {
        if energy.value() <= 0.0 {
            return Joules::ZERO;
        }
        let supplied = energy.value().min(self.energy.max(0.0));
        self.energy -= supplied;
        Joules::new(supplied)
    }

    #[inline]
    fn leak(&mut self, _dt: Seconds) {}

    #[inline]
    fn stored_energy(&self) -> Joules {
        Joules::new(self.energy.max(0.0))
    }

    fn state_of_charge(&self) -> Ratio {
        Ratio::ONE
    }
}

/// A declarative, cloneable description of an energy store.
///
/// `Box<dyn EnergyStore>` is neither `Clone` nor comparable, which makes
/// it awkward for specifications that must stamp out one fresh store per
/// simulated node (a fleet) or per sweep job. `StoreSpec` is the
/// value-type counterpart: describe the store once, [`StoreSpec::build`]
/// a fresh instance wherever one is needed.
///
/// ```
/// use eh_node::{EnergyStore, StoreSpec};
///
/// let spec = StoreSpec::supercapacitor_022f_at(4.0);
/// let a = spec.build()?;
/// let b = spec.build()?;
/// assert_eq!(a.stored_energy(), b.stored_energy()); // independent, identical
/// # Ok::<(), eh_node::NodeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum StoreSpec {
    /// An [`IdealStore`].
    Ideal,
    /// A [`Supercapacitor`].
    Supercapacitor {
        /// Capacitance in farads.
        capacitance: Farads,
        /// Maximum rated voltage.
        v_max: Volts,
        /// Minimum usable voltage.
        v_min: Volts,
        /// Deployment voltage.
        initial_voltage: Volts,
    },
    /// A [`Battery`].
    Battery {
        /// Rated capacity.
        capacity: Joules,
        /// Coulombic charge efficiency in `(0, 1]`.
        charge_efficiency: f64,
        /// Fraction of stored energy lost per month.
        self_discharge_per_month: f64,
        /// Deployment state of charge in `[0, 1]`.
        initial_soc: f64,
    },
}

impl StoreSpec {
    /// The week-endurance reference store: a 0.22 F / 5 V supercapacitor
    /// (1.8 V dropout) deployed charged to `initial_volts`.
    pub fn supercapacitor_022f_at(initial_volts: f64) -> Self {
        StoreSpec::Supercapacitor {
            capacitance: Farads::new(0.22),
            v_max: Volts::new(5.0),
            v_min: Volts::new(1.8),
            initial_voltage: Volts::new(initial_volts),
        }
    }

    /// Builds a fresh store from the description.
    ///
    /// # Errors
    ///
    /// Propagates the underlying constructors' parameter validation.
    pub fn build(&self) -> Result<Box<dyn EnergyStore + Send>, NodeError> {
        Ok(match self.build_concrete()? {
            ConcreteStore::Ideal(s) => Box::new(s),
            ConcreteStore::Supercapacitor(s) => Box::new(s),
            ConcreteStore::Battery(s) => Box::new(s),
        })
    }

    /// Builds the same fresh store as [`StoreSpec::build`], but as a
    /// closed [`ConcreteStore`] enum instead of a boxed trait object, so
    /// batch engines get static dispatch on the step hot path.
    ///
    /// # Errors
    ///
    /// Propagates the underlying constructors' parameter validation.
    pub fn build_concrete(&self) -> Result<ConcreteStore, NodeError> {
        Ok(match *self {
            StoreSpec::Ideal => ConcreteStore::Ideal(IdealStore::new()),
            StoreSpec::Supercapacitor {
                capacitance,
                v_max,
                v_min,
                initial_voltage,
            } => ConcreteStore::Supercapacitor(
                Supercapacitor::new(capacitance, v_max, v_min)?
                    .with_initial_voltage(initial_voltage),
            ),
            StoreSpec::Battery {
                capacity,
                charge_efficiency,
                self_discharge_per_month,
                initial_soc,
            } => ConcreteStore::Battery(
                Battery::new(capacity, charge_efficiency, self_discharge_per_month)?
                    .with_state_of_charge(initial_soc),
            ),
        })
    }
}

/// An energy store as a closed enum over the concrete store types.
///
/// `Box<dyn EnergyStore>` costs a virtual call per deposit / withdraw /
/// leak — three per simulated step. A `ConcreteStore` dispatches with a
/// three-way match the optimiser can inline, which is what the
/// struct-of-arrays batch engine keeps per lane. Both forms are built
/// from the same constructors ([`StoreSpec::build`] delegates to
/// [`StoreSpec::build_concrete`]), so their state sequences are
/// bit-identical.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConcreteStore {
    /// An [`IdealStore`].
    Ideal(IdealStore),
    /// A [`Supercapacitor`].
    Supercapacitor(Supercapacitor),
    /// A [`Battery`].
    Battery(Battery),
}

impl EnergyStore for ConcreteStore {
    #[inline]
    fn deposit(&mut self, energy: Joules) -> Joules {
        match self {
            ConcreteStore::Ideal(s) => s.deposit(energy),
            ConcreteStore::Supercapacitor(s) => s.deposit(energy),
            ConcreteStore::Battery(s) => s.deposit(energy),
        }
    }

    #[inline]
    fn withdraw(&mut self, energy: Joules) -> Joules {
        match self {
            ConcreteStore::Ideal(s) => s.withdraw(energy),
            ConcreteStore::Supercapacitor(s) => s.withdraw(energy),
            ConcreteStore::Battery(s) => s.withdraw(energy),
        }
    }

    #[inline]
    fn leak(&mut self, dt: Seconds) {
        match self {
            ConcreteStore::Ideal(s) => s.leak(dt),
            ConcreteStore::Supercapacitor(s) => s.leak(dt),
            ConcreteStore::Battery(s) => s.leak(dt),
        }
    }

    #[inline]
    fn stored_energy(&self) -> Joules {
        match self {
            ConcreteStore::Ideal(s) => s.stored_energy(),
            ConcreteStore::Supercapacitor(s) => s.stored_energy(),
            ConcreteStore::Battery(s) => s.stored_energy(),
        }
    }

    #[inline]
    fn state_of_charge(&self) -> Ratio {
        match self {
            ConcreteStore::Ideal(s) => s.state_of_charge(),
            ConcreteStore::Supercapacitor(s) => s.state_of_charge(),
            ConcreteStore::Battery(s) => s.state_of_charge(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sc() -> Supercapacitor {
        Supercapacitor::new(Farads::new(0.1), Volts::new(5.0), Volts::new(1.8)).unwrap()
    }

    #[test]
    fn validation() {
        assert!(Supercapacitor::new(Farads::ZERO, Volts::new(5.0), Volts::new(1.8)).is_err());
        assert!(Supercapacitor::new(Farads::new(0.1), Volts::new(1.0), Volts::new(1.8)).is_err());
        assert!(Supercapacitor::new(Farads::new(0.1), Volts::new(5.0), Volts::ZERO).is_err());
    }

    #[test]
    fn deposit_withdraw_round_trip() {
        let mut s = sc();
        assert_eq!(s.stored_energy(), Joules::ZERO);
        let put = s.deposit(Joules::new(0.4));
        assert_eq!(put, Joules::new(0.4));
        let got = s.withdraw(Joules::new(0.4));
        assert!((got.value() - 0.4).abs() < 1e-12);
        assert!(s.stored_energy().value() < 1e-12);
    }

    #[test]
    fn clamps_at_full_and_empty() {
        let mut s = sc();
        let cap = s.usable_capacity();
        let absorbed = s.deposit(Joules::new(100.0));
        assert!((absorbed.value() - cap.value()).abs() < 1e-9);
        assert!((s.voltage().value() - 5.0).abs() < 1e-9);
        assert_eq!(s.state_of_charge(), Ratio::ONE);
        // Can't pull below v_min.
        let got = s.withdraw(Joules::new(1000.0));
        assert!((got.value() - cap.value()).abs() < 1e-9);
        assert!((s.voltage().value() - 1.8).abs() < 1e-9);
    }

    #[test]
    fn leakage_drains() {
        let mut s = sc();
        s.deposit(Joules::new(0.5));
        let before = s.voltage();
        s.leak(Seconds::from_hours(1.0));
        // 2 µA for 1 h on 0.1 F: ΔV = 72 mV.
        assert!((before - s.voltage()).value() - 0.072 < 1e-6);
    }

    #[test]
    fn usable_capacity_formula() {
        let s = sc();
        let expect = 0.5 * 0.1 * (25.0 - 3.24);
        assert!((s.usable_capacity().value() - expect).abs() < 1e-9);
    }

    #[test]
    fn ideal_store_semantics() {
        let mut s = IdealStore::new();
        s.deposit(Joules::new(2.0));
        assert_eq!(s.stored_energy(), Joules::new(2.0));
        let got = s.withdraw(Joules::new(5.0));
        assert_eq!(got, Joules::new(2.0));
        assert_eq!(s.stored_energy(), Joules::ZERO);
        s.leak(Seconds::from_hours(10.0));
        assert_eq!(s.state_of_charge(), Ratio::ONE);
    }

    #[test]
    fn negative_amounts_ignored() {
        let mut s = sc();
        assert_eq!(s.deposit(Joules::new(-1.0)), Joules::ZERO);
        assert_eq!(s.withdraw(Joules::new(-1.0)), Joules::ZERO);
    }

    #[test]
    fn battery_validation() {
        assert!(Battery::new(Joules::ZERO, 0.9, 0.05).is_err());
        assert!(Battery::new(Joules::new(10.0), 0.0, 0.05).is_err());
        assert!(Battery::new(Joules::new(10.0), 1.2, 0.05).is_err());
        assert!(Battery::new(Joules::new(10.0), 0.9, 1.0).is_err());
    }

    #[test]
    fn battery_coulombic_loss_and_capacity_clamp() {
        let mut b = Battery::new(Joules::new(10.0), 0.8, 0.0).unwrap();
        let absorbed = b.deposit(Joules::new(5.0));
        assert!((absorbed.value() - 4.0).abs() < 1e-12);
        // Fill it up; only the remaining 6 J of headroom can be absorbed.
        let absorbed = b.deposit(Joules::new(100.0));
        assert!((absorbed.value() - 6.0).abs() < 1e-12);
        assert_eq!(b.state_of_charge(), Ratio::ONE);
        // Discharge has no extra loss.
        assert_eq!(b.withdraw(Joules::new(4.0)), Joules::new(4.0));
    }

    #[test]
    fn battery_self_discharge_monthly() {
        let mut b = Battery::new(Joules::new(100.0), 1.0, 0.10)
            .unwrap()
            .with_state_of_charge(1.0);
        b.leak(Seconds::new(30.0 * 86_400.0));
        assert!((b.stored_energy().value() - 90.0).abs() < 1e-6);
        // Half a month loses about half the monthly fraction (compounded).
        let mut c = Battery::new(Joules::new(100.0), 1.0, 0.10)
            .unwrap()
            .with_state_of_charge(1.0);
        c.leak(Seconds::new(15.0 * 86_400.0));
        assert!(c.stored_energy().value() > 94.0 && c.stored_energy().value() < 96.0);
    }

    #[test]
    fn store_spec_builds_fresh_equivalent_stores() {
        let spec = StoreSpec::supercapacitor_022f_at(4.0);
        let mut a = spec.build().unwrap();
        let b = spec.build().unwrap();
        assert!(a.stored_energy().value() > 0.0);
        assert_eq!(a.stored_energy(), b.stored_energy());
        // Instances are independent: draining one leaves the other full.
        a.withdraw(Joules::new(1.0));
        assert!(a.stored_energy() < b.stored_energy());

        assert_eq!(
            StoreSpec::Ideal.build().unwrap().stored_energy(),
            Joules::ZERO
        );
        let bat = StoreSpec::Battery {
            capacity: Joules::new(200.0),
            charge_efficiency: 0.9,
            self_discharge_per_month: 0.03,
            initial_soc: 0.5,
        };
        assert_eq!(bat.build().unwrap().stored_energy(), Joules::new(100.0));
    }

    #[test]
    fn store_spec_propagates_validation() {
        let bad = StoreSpec::Battery {
            capacity: Joules::ZERO,
            charge_efficiency: 0.9,
            self_discharge_per_month: 0.03,
            initial_soc: 0.5,
        };
        assert!(bad.build().is_err());
    }

    #[test]
    fn concrete_store_matches_the_boxed_store_bitwise() {
        let specs = [
            StoreSpec::Ideal,
            StoreSpec::supercapacitor_022f_at(4.0),
            StoreSpec::Battery {
                capacity: Joules::new(200.0),
                charge_efficiency: 0.9,
                self_discharge_per_month: 0.03,
                initial_soc: 0.5,
            },
        ];
        for spec in specs {
            let mut boxed = spec.build().unwrap();
            let mut concrete = spec.build_concrete().unwrap();
            // A mixed op sequence with no-op withdraws and overfills.
            let ops: [(u8, f64); 9] = [
                (0, 0.3),
                (1, 0.1),
                (2, 3600.0),
                (1, 1e6),
                (0, 1e6),
                (1, 0.0),
                (2, 86_400.0),
                (0, -1.0),
                (1, 0.25),
            ];
            for (op, x) in ops {
                let (a, b) = match op {
                    0 => (
                        boxed.deposit(Joules::new(x)),
                        concrete.deposit(Joules::new(x)),
                    ),
                    1 => (
                        boxed.withdraw(Joules::new(x)),
                        concrete.withdraw(Joules::new(x)),
                    ),
                    _ => {
                        boxed.leak(Seconds::new(x));
                        concrete.leak(Seconds::new(x));
                        (Joules::ZERO, Joules::ZERO)
                    }
                };
                assert_eq!(a.value().to_bits(), b.value().to_bits(), "{spec:?} op {op}");
                assert_eq!(
                    boxed.stored_energy().value().to_bits(),
                    concrete.stored_energy().value().to_bits(),
                    "{spec:?} diverged after op {op}"
                );
                assert_eq!(boxed.state_of_charge(), concrete.state_of_charge());
            }
        }
    }

    #[test]
    fn battery_initial_soc_clamped() {
        let b = Battery::new(Joules::new(50.0), 1.0, 0.0)
            .unwrap()
            .with_state_of_charge(1.7);
        assert_eq!(b.stored_energy(), Joules::new(50.0));
        assert_eq!(b.capacity(), Joules::new(50.0));
    }
}
