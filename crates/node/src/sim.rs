//! The closed-loop node simulation engine.

use eh_converter::InputRegulatedConverter;
use eh_core::{MpptController, Observation, TrackerCommand};
use eh_env::TimeSeries;
use eh_pv::PvCell;
use eh_units::{Joules, Lux, Seconds, Volts, Watts};

use crate::error::NodeError;
use crate::load::DutyCycledLoad;
use crate::report::NodeReport;
use crate::storage::{EnergyStore, IdealStore};

/// Configuration of a closed-loop run.
pub struct SimConfig {
    /// The PV module.
    pub cell: PvCell,
    /// The power stage.
    pub converter: InputRegulatedConverter,
    /// How long an open-circuit measurement interrupts harvesting (the
    /// paper's PULSE width, 39 ms).
    pub measurement_dwell: Seconds,
    /// Optional node load drawing from the store.
    pub load: Option<DutyCycledLoad>,
    /// The energy store.
    pub store: Box<dyn EnergyStore + Send>,
}

impl SimConfig {
    /// A default configuration for a cell: paper-prototype converter,
    /// 39 ms dwell, ideal store, no load.
    pub fn default_for(cell: PvCell) -> Self {
        Self {
            cell,
            converter: InputRegulatedConverter::paper_prototype()
                .expect("prototype constants are valid"),
            measurement_dwell: Seconds::from_milli(39.0),
            load: None,
            store: Box::new(IdealStore::new()),
        }
    }

    /// Replaces the store (builder style).
    #[must_use]
    pub fn with_store(mut self, store: Box<dyn EnergyStore + Send>) -> Self {
        self.store = store;
        self
    }

    /// Adds a node load (builder style).
    #[must_use]
    pub fn with_load(mut self, load: DutyCycledLoad) -> Self {
        self.load = Some(load);
        self
    }
}

impl std::fmt::Debug for SimConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimConfig")
            .field("cell", &self.cell.name())
            .field("measurement_dwell", &self.measurement_dwell)
            .field("has_load", &self.load.is_some())
            .finish()
    }
}

/// The closed-loop engine: cell + tracker + converter + store + load
/// against a light trace.
#[derive(Debug)]
pub struct NodeSimulation {
    config: SimConfig,
}

impl NodeSimulation {
    /// Creates the engine.
    ///
    /// # Errors
    ///
    /// Rejects a non-positive measurement dwell.
    pub fn new(config: SimConfig) -> Result<Self, NodeError> {
        if !(config.measurement_dwell.value().is_finite() && config.measurement_dwell.value() > 0.0) {
            return Err(NodeError::InvalidParameter {
                name: "measurement_dwell",
                value: config.measurement_dwell.value(),
            });
        }
        Ok(Self { config })
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs `tracker` over `trace` with nominal step `dt` and returns the
    /// report. Measurement interruptions advance by the (shorter)
    /// measurement dwell instead of `dt`, so the cost of a 39 ms PULSE is
    /// charged honestly rather than rounded up to a full step.
    ///
    /// # Errors
    ///
    /// Rejects a non-positive `dt`; propagates PV solver failures.
    pub fn run(
        &mut self,
        tracker: &mut dyn MpptController,
        trace: &TimeSeries,
        dt: Seconds,
    ) -> Result<NodeReport, NodeError> {
        if dt.value() <= 0.0 {
            return Err(NodeError::InvalidParameter {
                name: "dt",
                value: dt.value(),
            });
        }
        let total = trace.duration().value();
        let has_sensor = tracker.requires_light_sensor();

        let mut t = 0.0f64;
        let mut gross = Joules::ZERO;
        let mut overhead = Joules::ZERO;
        let mut load_demand = Joules::ZERO;
        let mut load_served = Joules::ZERO;
        let mut measurements = 0u64;

        let mut last_voltage = Volts::ZERO;
        let mut last_current = eh_units::Amps::ZERO;
        let mut last_power = Watts::ZERO;
        let mut last_voc: Option<Volts> = None;
        let mut last_isc: Option<eh_units::Amps> = None;

        while t < total {
            let lux = Lux::new(
                trace
                    .value_at(trace.start_time() + Seconds::new(t))
                    .unwrap_or(0.0)
                    .max(0.0),
            );
            let obs = Observation {
                time: Seconds::new(t),
                pv_voltage: last_voltage,
                pv_current: last_current,
                pv_power: last_power,
                voc_measurement: last_voc.take(),
                isc_measurement: last_isc.take(),
                ambient_lux: has_sensor.then_some(lux),
            };
            let planned = Seconds::new(dt.value().min(total - t));
            let cmd: TrackerCommand = tracker.step(&obs, planned);

            let actual = if cmd.is_connect() {
                planned
            } else {
                Seconds::new(self.config.measurement_dwell.value().min(planned.value()))
            };

            match cmd {
                TrackerCommand::Connect(target) if target.value() > 0.0 => {
                    let voc = self.config.cell.open_circuit_voltage(lux)?;
                    let v_op = target.min(voc);
                    if v_op.value() > 0.0 {
                        let i = self.config.cell.current_at(v_op, lux)?.max(eh_units::Amps::ZERO);
                        let harvest = self.config.converter.harvest(v_op, i, actual);
                        gross += harvest.output_energy;
                        self.config.store.deposit(harvest.output_energy);
                        last_voltage = v_op;
                        last_current = i;
                        last_power = harvest.input_power;
                    } else {
                        last_voltage = Volts::ZERO;
                        last_current = eh_units::Amps::ZERO;
                        last_power = Watts::ZERO;
                    }
                }
                TrackerCommand::Connect(_) => {
                    last_voltage = Volts::ZERO;
                    last_current = eh_units::Amps::ZERO;
                    last_power = Watts::ZERO;
                }
                TrackerCommand::MeasureVoc => {
                    let voc = self.config.cell.open_circuit_voltage(lux)?;
                    last_voc = Some(voc);
                    last_voltage = voc;
                    last_current = eh_units::Amps::ZERO;
                    last_power = Watts::ZERO;
                    measurements += 1;
                }
                TrackerCommand::MeasureIsc => {
                    let isc = self.config.cell.short_circuit_current(lux)?;
                    last_isc = Some(isc);
                    last_voltage = Volts::ZERO;
                    last_current = isc;
                    last_power = Watts::ZERO;
                    measurements += 1;
                }
            }

            // Tracker overhead comes out of the store, harvested or not.
            let oh = tracker.overhead_power() * actual;
            overhead += oh;
            self.config.store.withdraw(oh);

            // Node load.
            if let Some(load) = &self.config.load {
                let demand = load.energy_demand(Seconds::new(t), actual);
                let served = self.config.store.withdraw(demand);
                load_demand += demand;
                load_served += served;
            }

            self.config.store.leak(actual);
            t += actual.value();
        }

        Ok(NodeReport {
            tracker: tracker.name().to_owned(),
            duration: Seconds::new(total),
            gross_energy: gross,
            overhead_energy: overhead,
            load_demand,
            load_served,
            final_store_energy: self.config.store.stored_energy(),
            measurements,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::Supercapacitor;
    use eh_core::baselines::{FocvSampleHold, Oracle, PerturbObserve};
    use eh_env::profiles;
    use eh_pv::presets;
    use eh_units::Farads;

    fn minute_trace() -> TimeSeries {
        profiles::constant(Lux::new(1000.0), Seconds::from_minutes(30.0))
    }

    #[test]
    fn validation() {
        let mut cfg = SimConfig::default_for(presets::sanyo_am1815());
        cfg.measurement_dwell = Seconds::ZERO;
        assert!(NodeSimulation::new(cfg).is_err());
    }

    #[test]
    fn focv_harvests_at_constant_light() {
        let mut sim =
            NodeSimulation::new(SimConfig::default_for(presets::sanyo_am1815())).unwrap();
        let mut tracker = FocvSampleHold::paper_prototype().unwrap();
        let report = sim
            .run(&mut tracker, &minute_trace(), Seconds::new(1.0))
            .unwrap();
        assert!(report.gross_energy.value() > 0.0);
        assert!(report.is_net_positive(), "FOCV must be net-positive at 1 klux");
        // ~26 measurements in 30 min (one per 69 s).
        assert!((20..=30).contains(&report.measurements), "{}", report.measurements);
    }

    #[test]
    fn oracle_beats_focv_gross_but_not_by_much() {
        let trace = minute_trace();
        let run = |tracker: &mut dyn MpptController| {
            let mut sim =
                NodeSimulation::new(SimConfig::default_for(presets::sanyo_am1815())).unwrap();
            sim.run(tracker, &trace, Seconds::new(1.0)).unwrap()
        };
        let focv = run(&mut FocvSampleHold::paper_prototype().unwrap());
        let oracle = run(&mut Oracle::new(presets::sanyo_am1815()));
        assert!(oracle.gross_energy >= focv.gross_energy);
        let ratio = focv.gross_energy.value() / oracle.gross_energy.value();
        assert!(
            ratio > 0.85,
            "FOCV should stay near the oracle at fixed light, got {ratio:.3}"
        );
    }

    #[test]
    fn perturb_observe_net_negative_indoors() {
        // The paper's core claim: a 2 mW hill climber eats more than an
        // indoor cell produces.
        let mut sim =
            NodeSimulation::new(SimConfig::default_for(presets::sanyo_am1815())).unwrap();
        let mut tracker = PerturbObserve::literature_default().unwrap();
        let report = sim
            .run(&mut tracker, &minute_trace(), Seconds::new(1.0))
            .unwrap();
        assert!(
            !report.is_net_positive(),
            "P&O indoors must be net-negative: net = {}",
            report.net_energy()
        );
    }

    #[test]
    fn load_served_from_harvest() {
        let cfg = SimConfig::default_for(presets::sanyo_am1815())
            .with_load(DutyCycledLoad::typical_sensor_node().unwrap())
            .with_store(Box::new(
                Supercapacitor::new(Farads::new(0.22), Volts::new(5.0), Volts::new(1.8)).unwrap(),
            ));
        let mut sim = NodeSimulation::new(cfg).unwrap();
        let mut tracker = FocvSampleHold::paper_prototype().unwrap();
        let report = sim
            .run(&mut tracker, &minute_trace(), Seconds::new(1.0))
            .unwrap();
        assert!(report.load_demand.value() > 0.0);
        // At 1 klux the AM-1815 harvest (~hundreds of µW) covers the
        // ~16 µW average load easily once the store has any charge.
        assert!(
            report.uptime().value() > 0.9,
            "uptime = {}",
            report.uptime()
        );
    }

    #[test]
    fn dark_trace_harvests_nothing() {
        let trace = profiles::constant(Lux::ZERO, Seconds::from_minutes(5.0));
        let mut sim =
            NodeSimulation::new(SimConfig::default_for(presets::sanyo_am1815())).unwrap();
        let mut tracker = FocvSampleHold::paper_prototype().unwrap();
        let report = sim.run(&mut tracker, &trace, Seconds::new(1.0)).unwrap();
        assert_eq!(report.gross_energy, Joules::ZERO);
        assert!(report.overhead_energy.value() > 0.0);
        assert!(!report.is_net_positive());
    }
}
