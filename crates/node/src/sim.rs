//! The closed-loop node simulation engine.

use eh_converter::InputRegulatedConverter;
use eh_core::{CoreError, MpptController, Observation, TrackerCommand};
use eh_env::TimeSeries;
use eh_obs::{EnergyBucket, Metrics, Recorder};
use eh_pv::PvCell;
use eh_sim::{drive, Accumulator, Light, StepInput, StepOutput, Stepper};
use eh_units::{Amps, Joules, Seconds, Volts, Watts};

use crate::error::NodeError;
use crate::load::DutyCycledLoad;
use crate::report::NodeReport;
use crate::storage::{EnergyStore, IdealStore};

/// Configuration of a closed-loop run.
pub struct SimConfig {
    /// The PV module.
    pub cell: PvCell,
    /// The power stage.
    pub converter: InputRegulatedConverter,
    /// How long an open-circuit measurement interrupts harvesting (the
    /// paper's PULSE width, 39 ms).
    pub measurement_dwell: Seconds,
    /// Optional node load drawing from the store.
    pub load: Option<DutyCycledLoad>,
    /// The energy store.
    pub store: Box<dyn EnergyStore + Send>,
    /// Whether the cell answers hot-path queries from the memoized
    /// [`eh_pv::CachedPvSurface`] instead of the exact implicit solver
    /// (accurate to the documented error bound; `false` keeps the exact
    /// reference path for validation runs).
    pub pv_cache: bool,
    /// Whether to collect deterministic metrics (counters, spans, the
    /// per-bucket energy ledger) into the report's
    /// [`eh_obs::Metrics`]. Off by default: uninstrumented runs pay
    /// only a branch per step.
    pub obs: bool,
}

impl SimConfig {
    /// A default configuration for a cell: paper-prototype converter,
    /// 39 ms dwell, ideal store, no load.
    ///
    /// # Errors
    ///
    /// Propagates converter construction failures instead of panicking,
    /// so library callers can handle them.
    pub fn default_for(cell: PvCell) -> Result<Self, NodeError> {
        Ok(Self {
            cell,
            converter: InputRegulatedConverter::paper_prototype().map_err(CoreError::from)?,
            measurement_dwell: Seconds::from_milli(39.0),
            load: None,
            store: Box::new(IdealStore::new()),
            pv_cache: false,
            obs: false,
        })
    }

    /// Replaces the store (builder style).
    #[must_use]
    pub fn with_store(mut self, store: Box<dyn EnergyStore + Send>) -> Self {
        self.store = store;
        self
    }

    /// Adds a node load (builder style).
    #[must_use]
    pub fn with_load(mut self, load: DutyCycledLoad) -> Self {
        self.load = Some(load);
        self
    }

    /// Enables or disables the PV operating-point cache (builder style).
    #[must_use]
    pub fn with_pv_cache(mut self, enabled: bool) -> Self {
        self.pv_cache = enabled;
        self
    }

    /// Enables or disables metric collection (builder style).
    #[must_use]
    pub fn with_obs(mut self, enabled: bool) -> Self {
        self.obs = enabled;
        self
    }
}

impl std::fmt::Debug for SimConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimConfig")
            .field("cell", &self.cell.name())
            .field("measurement_dwell", &self.measurement_dwell)
            .field("has_load", &self.load.is_some())
            .field("store", &self.store.stored_energy())
            .field("pv_cache", &self.pv_cache)
            .field("obs", &self.obs)
            .finish()
    }
}

/// Per-step observability accumulated in plain locals and flushed once
/// per node/lane into the [`Recorder`].
///
/// The per-step recording path costs a `BTreeMap` probe per counter and
/// span on every simulated step; batching into locals cuts that to one
/// flush per node. The flush is **value-identical** to per-step
/// recording: every float add mirrors the sink's own guard (the ledger
/// and spans ignore non-finite contributions per add), per-bucket sums
/// accumulate in the same step order the per-step path would have used,
/// counters are exact integers, and zero-count spans / zero counters are
/// skipped so no map entry appears that per-step recording would not
/// have created.
#[derive(Debug, Clone, Copy, Default)]
pub struct ObsLocals {
    transfer_steps: u64,
    switching_j: f64,
    astable_j: f64,
    sample_hold_j: f64,
    compute_j: f64,
    load_j: f64,
    harvest_count: u64,
    harvest_time: f64,
    measure_count: u64,
    measure_time: f64,
}

impl ObsLocals {
    /// Mirrors the sinks' per-add guard: non-finite contributions are
    /// dropped without poisoning the running sum.
    #[inline]
    fn add(dst: &mut f64, x: f64) {
        if x.is_finite() {
            *dst += x;
        }
    }

    /// The local counterpart of
    /// [`eh_converter::HarvestResult::observe`]: counts the step when
    /// power actually transferred and accrues `losses · dt` toward the
    /// converter-switching bucket.
    #[inline]
    pub fn observe_harvest(&mut self, harvest: &eh_converter::HarvestResult, dt: Seconds) {
        if harvest.output_power.value() > 0.0 {
            self.transfer_steps += 1;
        }
        Self::add(&mut self.switching_j, (harvest.losses * dt).value());
    }

    /// Accrues one step's phase attribution: tracker overhead split by
    /// phase, compute and served-load energy, and the step's span.
    #[inline]
    pub fn observe_step(
        &mut self,
        is_connect: bool,
        overhead: Joules,
        compute: Joules,
        served: Joules,
        actual: Seconds,
    ) {
        if is_connect {
            Self::add(&mut self.astable_j, overhead.value());
            self.harvest_count += 1;
            Self::add(&mut self.harvest_time, actual.value());
        } else {
            Self::add(&mut self.sample_hold_j, overhead.value());
            self.measure_count += 1;
            Self::add(&mut self.measure_time, actual.value());
        }
        Self::add(&mut self.compute_j, compute.value());
        Self::add(&mut self.load_j, served.value());
    }

    /// Flushes the accumulated step observations into `recorder`. Call
    /// exactly once per node, after the drive loop and before any
    /// conservation check against the ledger.
    pub fn flush<R: Recorder + ?Sized>(&self, recorder: &mut R) {
        if self.transfer_steps > 0 {
            recorder.add_counter("converter.transfer_steps", self.transfer_steps);
        }
        recorder.charge(
            EnergyBucket::ConverterSwitching,
            Joules::new(self.switching_j),
        );
        recorder.charge(EnergyBucket::Astable, Joules::new(self.astable_j));
        recorder.charge(EnergyBucket::SampleHold, Joules::new(self.sample_hold_j));
        recorder.charge(EnergyBucket::Compute, Joules::new(self.compute_j));
        recorder.charge(EnergyBucket::Load, Joules::new(self.load_j));
        recorder.record_span_stats(
            "node.harvesting",
            self.harvest_count,
            self.harvest_time,
            0.0,
        );
        recorder.record_span_stats("node.measuring", self.measure_count, self.measure_time, 0.0);
    }
}

/// The closed-loop engine: cell + tracker + converter + store + load
/// against a light trace.
#[derive(Debug)]
pub struct NodeSimulation {
    config: SimConfig,
}

impl NodeSimulation {
    /// Creates the engine.
    ///
    /// # Errors
    ///
    /// Rejects a non-positive measurement dwell.
    pub fn new(mut config: SimConfig) -> Result<Self, NodeError> {
        if !(config.measurement_dwell.value().is_finite() && config.measurement_dwell.value() > 0.0)
        {
            return Err(NodeError::InvalidParameter {
                name: "measurement_dwell",
                value: config.measurement_dwell.value(),
            });
        }
        config.cell = config.cell.clone().with_cache(config.pv_cache);
        if config.pv_cache {
            // Build the surface now so run timing is pure lookups (a
            // no-op when a warmed cell was cloned into this config).
            config.cell.cached().map_err(CoreError::from)?;
        }
        Ok(Self { config })
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs `tracker` over `trace` with nominal step `dt` and returns the
    /// report, driven by the shared engine in [`eh_sim`]. Measurement
    /// interruptions advance by the (shorter) measurement dwell instead
    /// of `dt`, so the cost of a 39 ms PULSE is charged honestly rather
    /// than rounded up to a full step.
    ///
    /// # Errors
    ///
    /// Rejects a non-positive `dt`; propagates PV solver failures.
    pub fn run(
        &mut self,
        tracker: &mut dyn MpptController,
        trace: &TimeSeries,
        dt: Seconds,
    ) -> Result<NodeReport, NodeError> {
        let light = Light::trace(trace);
        let has_sensor = tracker.requires_light_sensor();
        let compute_cost = tracker.compute_cost();
        let metrics = self.config.obs.then(Box::default);
        let mut stepper = NodeStepper {
            config: &mut self.config,
            tracker: &mut *tracker,
            has_sensor,
            compute_per_decision: compute_cost.energy_per_decision(),
            acc: Accumulator::new(),
            last_voltage: Volts::ZERO,
            last_current: Amps::ZERO,
            last_power: Watts::ZERO,
            last_voc: None,
            last_isc: None,
            obs: ObsLocals::default(),
            metrics,
        };
        drive(&mut stepper, &light, dt)?;
        let acc = stepper.acc;

        let mut metrics = stepper.metrics.take().map(|b| *b);
        if let Some(m) = metrics.as_mut() {
            // Flush the per-step locals before the conservation check —
            // the ledger is incomplete until they land.
            stepper.obs.flush(m);
            m.add_counter("node.measurements", acc.measurements);
            m.add_counter("tracker.decisions", acc.decisions);
            m.add_counter("tracker.ops", acc.decisions * compute_cost.ops_per_decision);
            // Conservation: the per-bucket ledger (overhead split by
            // phase, converter losses, load served, compute) must re-sum
            // to the lump closed-loop accumulators. The two paths group
            // the same per-step additions differently, so this catches a
            // forgotten or double-charged bucket, not just rounding.
            let closed_loop =
                acc.overhead_energy + acc.loss_energy + acc.load_served + acc.compute_energy;
            m.ledger().check_conservation(closed_loop, 1e-9)?;
        }

        Ok(NodeReport {
            tracker: tracker.name().to_owned(),
            duration: trace.duration(),
            gross_energy: acc.gross_energy,
            overhead_energy: acc.overhead_energy,
            load_demand: acc.load_demand,
            load_served: acc.load_served,
            final_store_energy: self.config.store.stored_energy(),
            loss_energy: acc.loss_energy,
            compute_energy: acc.compute_energy,
            measurements: acc.measurements,
            decisions: acc.decisions,
            metrics,
        })
    }
}

/// One node-simulation time slice as a steppable system: observe, ask
/// the tracker for a command, execute it, and report the adaptive dwell
/// back to the engine.
struct NodeStepper<'a> {
    config: &'a mut SimConfig,
    tracker: &'a mut dyn MpptController,
    has_sensor: bool,
    compute_per_decision: Joules,
    acc: Accumulator,
    last_voltage: Volts,
    last_current: Amps,
    last_power: Watts,
    last_voc: Option<Volts>,
    last_isc: Option<Amps>,
    obs: ObsLocals,
    metrics: Option<Box<Metrics>>,
}

impl Stepper for NodeStepper<'_> {
    type Error = NodeError;

    fn step(
        &mut self,
        t: Seconds,
        planned: Seconds,
        input: &StepInput,
    ) -> Result<StepOutput, NodeError> {
        let lux = input.lux;
        let obs = Observation {
            time: t,
            pv_voltage: self.last_voltage,
            pv_current: self.last_current,
            pv_power: self.last_power,
            voc_measurement: self.last_voc.take(),
            isc_measurement: self.last_isc.take(),
            ambient_lux: self.has_sensor.then_some(lux),
        };
        let cmd: TrackerCommand = self.tracker.step(&obs, planned);
        let is_connect = cmd.is_connect();

        // Adaptive dwell: a measurement interrupts harvesting for the
        // PULSE width only, not the caller's whole step.
        let actual = if is_connect {
            planned
        } else {
            self.config.measurement_dwell.min(planned)
        };

        match cmd {
            TrackerCommand::Connect(target) if target.value() > 0.0 => {
                let voc = self.config.cell.open_circuit_voltage(lux)?;
                let v_op = target.min(voc);
                if v_op.value() > 0.0 {
                    let i = self.config.cell.current_at(v_op, lux)?.max(Amps::ZERO);
                    let harvest = self.config.converter.harvest(v_op, i, actual);
                    self.acc.add_harvest(harvest.output_energy);
                    self.acc.add_loss(harvest.losses * actual);
                    if self.metrics.is_some() {
                        self.obs.observe_harvest(&harvest, actual);
                    }
                    self.config.store.deposit(harvest.output_energy);
                    self.last_voltage = v_op;
                    self.last_current = i;
                    self.last_power = harvest.input_power;
                } else {
                    self.last_voltage = Volts::ZERO;
                    self.last_current = Amps::ZERO;
                    self.last_power = Watts::ZERO;
                }
            }
            TrackerCommand::Connect(_) => {
                self.last_voltage = Volts::ZERO;
                self.last_current = Amps::ZERO;
                self.last_power = Watts::ZERO;
            }
            TrackerCommand::MeasureVoc => {
                let voc = self.config.cell.open_circuit_voltage(lux)?;
                self.last_voc = Some(voc);
                self.last_voltage = voc;
                self.last_current = Amps::ZERO;
                self.last_power = Watts::ZERO;
                self.acc.count_measurement();
            }
            TrackerCommand::MeasureIsc => {
                let isc = self.config.cell.short_circuit_current(lux)?;
                self.last_isc = Some(isc);
                self.last_voltage = Volts::ZERO;
                self.last_current = isc;
                self.last_power = Watts::ZERO;
                self.acc.count_measurement();
            }
        }

        // Tracker overhead comes out of the store, harvested or not.
        let oh = self.tracker.overhead_power() * actual;
        self.acc.add_overhead(oh);
        self.config.store.withdraw(oh);

        // Control-law compute energy: one decision per tracker step,
        // charged at the tracker's declared ops × energy/op. Zero (and
        // a guaranteed store no-op) for analog trackers.
        let compute = self.compute_per_decision;
        self.acc.add_compute(compute);
        self.acc.count_decision();
        self.config.store.withdraw(compute);

        // Node load.
        let mut served = Joules::ZERO;
        if let Some(load) = &self.config.load {
            let demand = load.energy_demand(t, actual);
            served = self.config.store.withdraw(demand);
            self.acc.add_load(demand, served);
        }

        self.config.store.leak(actual);

        // Metric attribution, accumulated in per-node locals (flushed
        // once after the drive loop). The tracker's lump overhead is
        // split by phase: during a measurement dwell the sample-and-hold
        // chain is what burns it; between measurements the astable timer
        // is the consumer. Conversion losses were already accrued by
        // `observe_harvest`; the load bucket takes what the store
        // actually delivered.
        if self.metrics.is_some() {
            self.obs
                .observe_step(is_connect, oh, compute, served, actual);
        }

        Ok(StepOutput::dwell(actual))
    }

    fn recorder(&mut self) -> Option<&mut Metrics> {
        self.metrics.as_deref_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::Supercapacitor;
    use eh_core::baselines::{FocvSampleHold, Oracle, PerturbObserve};
    use eh_env::profiles;
    use eh_pv::presets;
    use eh_units::{Farads, Joules, Lux};

    fn minute_trace() -> TimeSeries {
        profiles::constant(Lux::new(1000.0), Seconds::from_minutes(30.0))
    }

    #[test]
    fn validation() {
        let mut cfg = SimConfig::default_for(presets::sanyo_am1815()).unwrap();
        cfg.measurement_dwell = Seconds::ZERO;
        assert!(NodeSimulation::new(cfg).is_err());
    }

    #[test]
    fn focv_harvests_at_constant_light() {
        let mut sim =
            NodeSimulation::new(SimConfig::default_for(presets::sanyo_am1815()).unwrap()).unwrap();
        let mut tracker = FocvSampleHold::paper_prototype().unwrap();
        let report = sim
            .run(&mut tracker, &minute_trace(), Seconds::new(1.0))
            .unwrap();
        assert!(report.gross_energy.value() > 0.0);
        assert!(
            report.is_net_positive(),
            "FOCV must be net-positive at 1 klux"
        );
        // ~26 measurements in 30 min (one per 69 s).
        assert!(
            (20..=30).contains(&report.measurements),
            "{}",
            report.measurements
        );
    }

    #[test]
    fn oracle_beats_focv_gross_but_not_by_much() {
        let trace = minute_trace();
        let run = |tracker: &mut dyn MpptController| {
            let mut sim =
                NodeSimulation::new(SimConfig::default_for(presets::sanyo_am1815()).unwrap())
                    .unwrap();
            sim.run(tracker, &trace, Seconds::new(1.0)).unwrap()
        };
        let focv = run(&mut FocvSampleHold::paper_prototype().unwrap());
        let oracle = run(&mut Oracle::new(presets::sanyo_am1815()));
        assert!(oracle.gross_energy >= focv.gross_energy);
        let ratio = focv.gross_energy.value() / oracle.gross_energy.value();
        assert!(
            ratio > 0.85,
            "FOCV should stay near the oracle at fixed light, got {ratio:.3}"
        );
    }

    #[test]
    fn perturb_observe_net_negative_indoors() {
        // The paper's core claim: a 2 mW hill climber eats more than an
        // indoor cell produces.
        let mut sim =
            NodeSimulation::new(SimConfig::default_for(presets::sanyo_am1815()).unwrap()).unwrap();
        let mut tracker = PerturbObserve::literature_default().unwrap();
        let report = sim
            .run(&mut tracker, &minute_trace(), Seconds::new(1.0))
            .unwrap();
        assert!(
            !report.is_net_positive(),
            "P&O indoors must be net-negative: net = {}",
            report.net_energy()
        );
    }

    #[test]
    fn load_served_from_harvest() {
        let cfg = SimConfig::default_for(presets::sanyo_am1815())
            .unwrap()
            .with_load(DutyCycledLoad::typical_sensor_node().unwrap())
            .with_store(Box::new(
                Supercapacitor::new(Farads::new(0.22), Volts::new(5.0), Volts::new(1.8)).unwrap(),
            ));
        let mut sim = NodeSimulation::new(cfg).unwrap();
        let mut tracker = FocvSampleHold::paper_prototype().unwrap();
        let report = sim
            .run(&mut tracker, &minute_trace(), Seconds::new(1.0))
            .unwrap();
        assert!(report.load_demand.value() > 0.0);
        // At 1 klux the AM-1815 harvest (~hundreds of µW) covers the
        // ~16 µW average load easily once the store has any charge.
        assert!(
            report.uptime().value() > 0.9,
            "uptime = {}",
            report.uptime()
        );
    }

    #[test]
    fn dark_trace_harvests_nothing() {
        let trace = profiles::constant(Lux::ZERO, Seconds::from_minutes(5.0));
        let mut sim =
            NodeSimulation::new(SimConfig::default_for(presets::sanyo_am1815()).unwrap()).unwrap();
        let mut tracker = FocvSampleHold::paper_prototype().unwrap();
        let report = sim.run(&mut tracker, &trace, Seconds::new(1.0)).unwrap();
        assert_eq!(report.gross_energy, Joules::ZERO);
        assert!(report.overhead_energy.value() > 0.0);
        assert!(!report.is_net_positive());
    }

    #[test]
    fn metrics_opt_in_and_ledger_conserves() {
        let cfg = SimConfig::default_for(presets::sanyo_am1815())
            .unwrap()
            .with_load(DutyCycledLoad::typical_sensor_node().unwrap())
            .with_store(Box::new(
                Supercapacitor::new(Farads::new(0.22), Volts::new(5.0), Volts::new(1.8)).unwrap(),
            ))
            .with_obs(true);
        let mut sim = NodeSimulation::new(cfg).unwrap();
        let mut tracker = FocvSampleHold::paper_prototype().unwrap();
        let report = sim
            .run(&mut tracker, &minute_trace(), Seconds::new(1.0))
            .unwrap();
        let m = report.metrics.as_ref().expect("obs enabled");

        // The bucket split re-sums to the lump accumulators (run()
        // already enforces this; re-check against the report's fields).
        let closed = report.overhead_energy + report.loss_energy + report.load_served;
        assert!(m.ledger().relative_error(closed) < 1e-9);
        assert_eq!(m.counter("node.measurements"), report.measurements);
        // Engine hooks saw the same run: one dwell per measurement.
        assert_eq!(m.counter("engine.dwell_steps"), report.measurements);
        assert!(m.span_stats("node.measuring").is_some());
        assert!(m.span_stats("node.harvesting").is_some());
        assert!(m.counter("converter.transfer_steps") > 0);

        // Uninstrumented runs carry no store.
        let mut plain =
            NodeSimulation::new(SimConfig::default_for(presets::sanyo_am1815()).unwrap()).unwrap();
        let mut tracker = FocvSampleHold::paper_prototype().unwrap();
        let r = plain
            .run(&mut tracker, &minute_trace(), Seconds::new(1.0))
            .unwrap();
        assert!(r.metrics.is_none(), "obs must be opt-in");
    }

    #[test]
    fn metrics_do_not_change_the_report() {
        let run = |obs: bool| {
            let cfg = SimConfig::default_for(presets::sanyo_am1815())
                .unwrap()
                .with_obs(obs);
            let mut sim = NodeSimulation::new(cfg).unwrap();
            let mut tracker = FocvSampleHold::paper_prototype().unwrap();
            let mut r = sim
                .run(&mut tracker, &minute_trace(), Seconds::new(1.0))
                .unwrap();
            r.metrics = None; // compare the physics, not the store
            r
        };
        assert_eq!(run(false), run(true), "observation must be passive");
    }

    #[test]
    fn cached_run_matches_exact_report() {
        // The pv_cache toggle must not move the closed-loop report beyond
        // the cache's documented error bound: same measurement count,
        // energies within a fraction of a percent.
        let run = |cached: bool| {
            let cfg = SimConfig::default_for(presets::sanyo_am1815())
                .unwrap()
                .with_pv_cache(cached);
            let mut sim = NodeSimulation::new(cfg).unwrap();
            let mut tracker = FocvSampleHold::paper_prototype().unwrap();
            sim.run(&mut tracker, &minute_trace(), Seconds::new(1.0))
                .unwrap()
        };
        let exact = run(false);
        let cached = run(true);
        assert_eq!(exact.measurements, cached.measurements);
        let gross_rel = (exact.gross_energy.value() - cached.gross_energy.value()).abs()
            / exact.gross_energy.value();
        assert!(gross_rel < 5e-3, "gross energy diverged by {gross_rel:.2e}");
        let overhead_rel = (exact.overhead_energy.value() - cached.overhead_energy.value()).abs()
            / exact.overhead_energy.value();
        assert!(
            overhead_rel < 5e-3,
            "overhead diverged by {overhead_rel:.2e}"
        );
    }
}
