//! Multi-tracker comparison — the paper's state-of-the-art table.

use eh_core::baselines::Oracle;
use eh_core::{HarvestSummary, MpptController};
use eh_env::TimeSeries;
use eh_pv::PvCell;
use eh_units::Seconds;

use crate::error::NodeError;
use crate::report::NodeReport;
use crate::sim::{NodeSimulation, SimConfig};

/// One tracker's outcome on a shared scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackerComparison {
    /// Tracker name.
    pub name: String,
    /// The full run report.
    pub report: NodeReport,
    /// Net-vs-oracle summary.
    pub summary: HarvestSummary,
}

/// Runs every tracker (plus an internal [`Oracle`] reference) over the
/// same cell and light trace with fresh ideal stores, and summarises each
/// against the oracle's gross harvest.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn compare_trackers(
    cell: &PvCell,
    trace: &TimeSeries,
    dt: Seconds,
    trackers: &mut [&mut dyn MpptController],
) -> Result<Vec<TrackerComparison>, NodeError> {
    let mut oracle = Oracle::new(cell.clone());
    let oracle_report =
        NodeSimulation::new(SimConfig::default_for(cell.clone())?)?.run(&mut oracle, trace, dt)?;
    let oracle_gross = oracle_report.gross_energy;

    let mut out = Vec::with_capacity(trackers.len() + 1);
    out.push(TrackerComparison {
        name: oracle_report.tracker.clone(),
        summary: HarvestSummary::new(
            oracle_report.gross_energy,
            oracle_report.overhead_energy,
            oracle_gross,
        ),
        report: oracle_report,
    });

    for tracker in trackers.iter_mut() {
        let mut sim = NodeSimulation::new(SimConfig::default_for(cell.clone())?)?;
        let report = sim.run(*tracker, trace, dt)?;
        out.push(TrackerComparison {
            name: report.tracker.clone(),
            summary: HarvestSummary::new(report.gross_energy, report.overhead_energy, oracle_gross),
            report,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eh_core::baselines::{FixedVoltage, FocvSampleHold, PerturbObserve};
    use eh_env::profiles;
    use eh_pv::presets;
    use eh_units::Lux;

    #[test]
    fn comparison_ranks_trackers_indoors() {
        let cell = presets::sanyo_am1815();
        let trace = profiles::constant(Lux::new(500.0), Seconds::from_minutes(20.0));
        let mut focv = FocvSampleHold::paper_prototype().unwrap();
        let mut po = PerturbObserve::literature_default().unwrap();
        let mut fixed = FixedVoltage::indoor_tuned().unwrap();
        let mut trackers: Vec<&mut dyn MpptController> = vec![&mut focv, &mut po, &mut fixed];
        let rows = compare_trackers(&cell, &trace, Seconds::new(1.0), &mut trackers).unwrap();
        assert_eq!(rows.len(), 4);
        // Oracle leads the list and is the reference.
        assert!(rows[0].name.contains("oracle"));
        assert!((rows[0].summary.efficiency_vs_oracle().value() - 1.0).abs() < 1e-9);

        let find = |needle: &str| {
            rows.iter()
                .find(|r| r.name.contains(needle))
                .unwrap_or_else(|| panic!("{needle} missing"))
        };
        let focv_row = find("sample-and-hold");
        let po_row = find("perturb");
        let fixed_row = find("fixed");
        // The paper's indoor story: FOCV net-positive and near-oracle;
        // the hill climber is net-negative; fixed voltage works indoors.
        assert!(focv_row.summary.is_net_positive());
        assert!(!po_row.summary.is_net_positive());
        assert!(fixed_row.summary.is_net_positive());
        assert!(
            focv_row.summary.efficiency_vs_oracle().value() > 0.8,
            "FOCV vs oracle = {}",
            focv_row.summary.efficiency_vs_oracle()
        );
    }
}
