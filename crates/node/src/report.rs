//! Run reports.

use eh_obs::Metrics;
use eh_units::{Joules, Ratio, Seconds};

/// Result of a closed-loop node run with one tracker.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeReport {
    /// Tracker name.
    pub tracker: String,
    /// Simulated duration.
    pub duration: Seconds,
    /// Energy delivered by the converter to the store (before tracker
    /// overhead).
    pub gross_energy: Joules,
    /// Energy the tracker's own electronics consumed.
    pub overhead_energy: Joules,
    /// Energy demanded by the node load.
    pub load_demand: Joules,
    /// Load energy actually served from the store.
    pub load_served: Joules,
    /// Energy left in the store at the end.
    pub final_store_energy: Joules,
    /// Energy dissipated in the conversion path (converter losses).
    pub loss_energy: Joules,
    /// Energy the tracker's control law consumed (digital trackers
    /// only; zero for analog implementations).
    pub compute_energy: Joules,
    /// Number of open-circuit measurement interruptions.
    pub measurements: u64,
    /// Number of control decisions the tracker took.
    pub decisions: u64,
    /// The run's metric store, when [`crate::SimConfig::obs`] was
    /// enabled; `None` for uninstrumented runs.
    pub metrics: Option<Metrics>,
}

impl NodeReport {
    /// `gross − overhead − compute`: the tracker's net contribution.
    pub fn net_energy(&self) -> Joules {
        Joules::new(
            self.gross_energy.value() - self.overhead_energy.value() - self.compute_energy.value(),
        )
    }

    /// Fraction of the load demand that was served.
    pub fn uptime(&self) -> Ratio {
        if self.load_demand.value() <= 0.0 {
            return Ratio::ONE;
        }
        Ratio::new((self.load_served.value() / self.load_demand.value()).clamp(0.0, 1.0))
    }

    /// Whether the tracker produced more than it consumed.
    pub fn is_net_positive(&self) -> bool {
        self.net_energy().value() > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(gross: f64, overhead: f64, demand: f64, served: f64) -> NodeReport {
        NodeReport {
            tracker: "t".into(),
            duration: Seconds::from_hours(24.0),
            gross_energy: Joules::new(gross),
            overhead_energy: Joules::new(overhead),
            load_demand: Joules::new(demand),
            load_served: Joules::new(served),
            final_store_energy: Joules::ZERO,
            loss_energy: Joules::ZERO,
            compute_energy: Joules::ZERO,
            measurements: 0,
            decisions: 0,
            metrics: None,
        }
    }

    #[test]
    fn net_and_uptime() {
        let r = report(10.0, 2.0, 4.0, 3.0);
        assert_eq!(r.net_energy(), Joules::new(8.0));
        assert!((r.uptime().value() - 0.75).abs() < 1e-12);
        assert!(r.is_net_positive());
    }

    #[test]
    fn compute_energy_reduces_net() {
        let mut r = report(10.0, 2.0, 0.0, 0.0);
        r.compute_energy = Joules::new(1.5);
        assert_eq!(r.net_energy(), Joules::new(6.5));
    }

    #[test]
    fn net_negative_tracker() {
        let r = report(1.0, 5.0, 0.0, 0.0);
        assert!(!r.is_net_positive());
        assert_eq!(r.uptime(), Ratio::ONE);
    }
}
