//! Incremental phase accumulation for periodic schedules.
//!
//! Periodic loads and timers need "where am I inside the period?" every
//! simulation step. Computing that as `t.rem_euclid(period)` costs an
//! `fmod` per step — the single hottest scalar operation in the fleet
//! profile (DESIGN.md §10). A [`PhaseAccumulator`] pays the `rem_euclid`
//! once at construction and thereafter advances by addition with a
//! conditional wrap, which is bit-identical to `%` whenever the advance
//! stays below one period (the common per-step case) and falls back to
//! `rem_euclid` only on multi-period jumps.
//!
//! The accumulated position drifts from the recomputed
//! `t.rem_euclid(period)` only through the rounding of the running
//! addition — in practice *less* than the drift of accumulating `t`
//! itself, because the position stays small while `t` grows. The bound
//! is property-tested over multi-year step counts in `eh-node`.

use crate::error::AnalogError;

/// Running intra-period position of a periodic schedule.
///
/// ```
/// use eh_analog::phase::PhaseAccumulator;
///
/// let mut phase = PhaseAccumulator::new(30.0, 100.0)?;
/// assert!((phase.position() - 10.0).abs() < 1e-12);
/// phase.advance(25.0);
/// assert!((phase.position() - 5.0).abs() < 1e-12);
/// # Ok::<(), eh_analog::AnalogError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseAccumulator {
    period: f64,
    position: f64,
}

impl PhaseAccumulator {
    /// Creates an accumulator for `period`, positioned as if time
    /// `start` had already elapsed (one `rem_euclid`, paid here only).
    ///
    /// # Errors
    ///
    /// Rejects a non-finite or non-positive period and a non-finite
    /// start time.
    pub fn new(period: f64, start: f64) -> Result<Self, AnalogError> {
        if !(period.is_finite() && period > 0.0) {
            return Err(AnalogError::InvalidParameter {
                name: "period",
                value: period,
            });
        }
        if !start.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "start",
                value: start,
            });
        }
        Ok(Self {
            period,
            position: start.rem_euclid(period),
        })
    }

    /// The period being tracked.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Current intra-period position in `[0, period)`.
    pub fn position(&self) -> f64 {
        self.position
    }

    /// Overwrites the position. Values outside `[0, period)` are
    /// wrapped; callers that already maintain the invariant (e.g. a
    /// schedule walk that wraps as it goes) pay only the range check.
    pub fn set_position(&mut self, position: f64) {
        self.position = if (0.0..self.period).contains(&position) {
            position
        } else {
            position.rem_euclid(self.period)
        };
    }

    /// Advances the position by `dt` (ignored unless finite and
    /// positive).
    ///
    /// For `dt` under one period this is an add plus at most one
    /// subtraction — bit-identical to `(position + dt) % period` for a
    /// positive in-range position, because `fmod` with quotient 1 is
    /// exact. Multi-period jumps fall back to `rem_euclid`.
    pub fn advance(&mut self, dt: f64) {
        if !(dt.is_finite() && dt > 0.0) {
            return;
        }
        let p = self.position + dt;
        self.position = if p < self.period {
            p
        } else if p - self.period < self.period {
            p - self.period
        } else {
            p.rem_euclid(self.period)
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_wraps_start() {
        let p = PhaseAccumulator::new(30.0, 95.0).unwrap();
        assert!((p.position() - 5.0).abs() < 1e-12);
        assert_eq!(p.period(), 30.0);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(PhaseAccumulator::new(0.0, 1.0).is_err());
        assert!(PhaseAccumulator::new(-3.0, 1.0).is_err());
        assert!(PhaseAccumulator::new(f64::NAN, 1.0).is_err());
        assert!(PhaseAccumulator::new(30.0, f64::INFINITY).is_err());
    }

    #[test]
    fn advance_matches_rem_euclid_bitwise_within_one_period() {
        // Sub-period advances must agree with `%` exactly: fmod with a
        // quotient of 0 or 1 introduces no rounding.
        let period = 30.055f64;
        let mut acc = PhaseAccumulator::new(period, 0.0).unwrap();
        let mut reference = 0.0f64;
        for i in 0..10_000 {
            let dt = 0.039 + (i % 7) as f64 * 3.217;
            acc.advance(dt);
            reference = (reference + dt) % period;
            assert_eq!(acc.position().to_bits(), reference.to_bits(), "step {i}");
        }
    }

    #[test]
    fn multi_period_jump_wraps() {
        let mut acc = PhaseAccumulator::new(10.0, 0.0).unwrap();
        acc.advance(1234.5);
        assert!((acc.position() - 1234.5f64.rem_euclid(10.0)).abs() < 1e-9);
        assert!(acc.position() >= 0.0 && acc.position() < 10.0);
    }

    #[test]
    fn non_positive_and_non_finite_advances_are_ignored() {
        let mut acc = PhaseAccumulator::new(10.0, 3.0).unwrap();
        let before = acc.position();
        acc.advance(0.0);
        acc.advance(-1.0);
        acc.advance(f64::NAN);
        assert_eq!(acc.position(), before);
    }

    #[test]
    fn set_position_wraps_out_of_range() {
        let mut acc = PhaseAccumulator::new(10.0, 0.0).unwrap();
        acc.set_position(7.25);
        assert_eq!(acc.position(), 7.25);
        acc.set_position(23.5);
        assert!((acc.position() - 3.5).abs() < 1e-12);
        acc.set_position(-1.0);
        assert!((acc.position() - 9.0).abs() < 1e-12);
    }
}
