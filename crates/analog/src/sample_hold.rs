//! The paper's sample-and-hold arrangement (§III-B).
//!
//! Signal chain: the PV module voltage enters a resistive divider
//! (R1/R2) that scales it by `k·α` (Eq. (3) of the paper:
//! `HELD_SAMPLE = Voc·k·α`); a unity-gain input buffer (U2) drives a
//! low-leakage analog switch; the switch tops up a polyester hold
//! capacitor during each PULSE; an output buffer (U4) presents the held
//! value, smoothed by the R3/C3 ripple filter, as the `HELD_SAMPLE`
//! line; comparator U5 raises `ACTIVE` once a valid sample is held so
//! the switching converter may start.
//!
//! The model tracks everything the paper measures: per-part supply
//! currents (for the 7.6 µA average of §IV-A), the sampling transient
//! and its small `HELD_SAMPLE` ripple (Fig. 4), and the droop of the
//! held value across the 69 s hold period (which §II-B's error budget
//! relies on being negligible).

use eh_units::{Amps, Coulombs, Farads, Ohms, Ratio, Seconds, Volts};

use crate::components::{AnalogSwitch, Capacitor, Comparator, OpAmpBuffer, VoltageDivider};
use crate::error::AnalogError;

/// Configuration of the sample-and-hold arrangement.
#[derive(Debug, Clone)]
pub struct SampleHoldConfig {
    /// Supply rail of the metrology chain.
    pub supply_voltage: Volts,
    /// The R1/R2 scaling divider (ratio = `k·α`).
    pub divider: VoltageDivider,
    /// Input unity-gain buffer (U2).
    pub input_buffer: OpAmpBuffer,
    /// Output unity-gain buffer (U4).
    pub output_buffer: OpAmpBuffer,
    /// The sampling analog switch.
    pub switch: AnalogSwitch,
    /// Hold capacitor (low-leakage polyester).
    pub hold_capacitance: Farads,
    /// Ripple filter series resistance (R3).
    pub filter_resistance: Ohms,
    /// Ripple filter capacitance (C3).
    pub filter_capacitance: Farads,
    /// `ACTIVE` threshold as a fraction of the supply rail.
    ///
    /// The paper derives its "arbitrary threshold" by dividing the supply
    /// rail by two; with a fixed 3.3 V bench rail and the AM-1815's
    /// `HELD_SAMPLE` levels (1.48–1.78 V) a one-quarter division keeps
    /// the same any-valid-sample semantics across the full 200 lux–5 klux
    /// range, so that is the default here.
    pub active_threshold_fraction: f64,
    /// Supply current of the `ACTIVE` comparator (U5).
    pub active_comparator_current: Amps,
    /// Each resistor of the U5 threshold divider.
    pub threshold_divider_resistance: Ohms,
    /// Quiescent draw of the M-switch gate-drive and level-shifting
    /// network (M1–M3, M8 of Fig. 3).
    pub auxiliary_current: Amps,
}

impl SampleHoldConfig {
    /// The configuration matching the paper's prototype, with the
    /// divider trimmed to a given `k·α` ratio (default use:
    /// `k ≈ 0.596`, `α = 0.5` → ratio ≈ 0.298, reproducing Table I).
    ///
    /// # Errors
    ///
    /// Rejects ratios outside `(0, 1)`.
    pub fn paper_configuration(division_ratio: f64) -> Result<Self, AnalogError> {
        Ok(Self {
            supply_voltage: Volts::new(3.3),
            divider: VoltageDivider::with_ratio(Ohms::from_mega(5.0), division_ratio)?,
            input_buffer: OpAmpBuffer::micropower(),
            output_buffer: OpAmpBuffer::micropower(),
            switch: AnalogSwitch::low_leakage(),
            hold_capacitance: Farads::from_micro(1.0),
            // R3/C3 corner at ~34 Hz: attenuates the 100 Hz lamp flicker
            // that rides on the divider during sampling, yet settles well
            // within the 39 ms pulse (5τ ≈ 24 ms).
            filter_resistance: Ohms::from_kilo(47.0),
            filter_capacitance: Farads::from_nano(100.0),
            active_threshold_fraction: 0.25,
            active_comparator_current: Amps::from_micro(0.8),
            threshold_divider_resistance: Ohms::from_mega(15.0),
            auxiliary_current: Amps::from_micro(2.15),
        })
    }
}

/// Result of advancing the sample-and-hold by one step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleHoldStep {
    /// The `HELD_SAMPLE` line voltage (after the R3/C3 filter).
    pub held_sample: Volts,
    /// Whether `ACTIVE` is asserted.
    pub active: bool,
    /// Charge drawn from the supply rail during the step.
    pub supply_charge: Coulombs,
    /// Charge drawn from the PV node by the measurement divider during
    /// the step (non-zero only while sampling).
    pub pv_charge: Coulombs,
}

/// The steppable sample-and-hold block.
///
/// ```
/// use eh_analog::sample_hold::{SampleHold, SampleHoldConfig};
/// use eh_units::{Seconds, Volts};
///
/// let mut sh = SampleHold::new(SampleHoldConfig::paper_configuration(0.298)?)?;
/// // One 39 ms PULSE sampling a 5.44 V open-circuit voltage:
/// let step = sh.step(Volts::new(5.44), true, Seconds::from_milli(39.0));
/// assert!((step.held_sample.value() - 5.44 * 0.298).abs() < 0.01);
/// # Ok::<(), eh_analog::AnalogError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SampleHold {
    config: SampleHoldConfig,
    hold_cap: Capacitor,
    filter_cap: Capacitor,
    switch: AnalogSwitch,
    active_comparator: Comparator,
    time: Seconds,
}

impl SampleHold {
    /// Builds the block from a configuration.
    ///
    /// # Errors
    ///
    /// Rejects non-positive capacitances or filter resistance.
    pub fn new(config: SampleHoldConfig) -> Result<Self, AnalogError> {
        let hold_cap = Capacitor::polyester(config.hold_capacitance)?;
        let filter_cap = Capacitor::polyester(config.filter_capacitance)?;
        if !(config.filter_resistance.value().is_finite() && config.filter_resistance.value() > 0.0)
        {
            return Err(AnalogError::InvalidParameter {
                name: "filter_resistance",
                value: config.filter_resistance.value(),
            });
        }
        if !(0.0..1.0).contains(&config.active_threshold_fraction) {
            return Err(AnalogError::InvalidParameter {
                name: "active_threshold_fraction",
                value: config.active_threshold_fraction,
            });
        }
        let active_comparator = Comparator::new(
            config.supply_voltage,
            config.active_comparator_current,
            Volts::from_milli(50.0),
        )?;
        let switch = config.switch.clone();
        Ok(Self {
            config,
            hold_cap,
            filter_cap,
            switch,
            active_comparator,
            time: Seconds::ZERO,
        })
    }

    /// The division ratio applied to the PV voltage (`k·α` of Eq. (3)).
    pub fn division_ratio(&self) -> Ratio {
        Ratio::new(self.config.divider.ratio())
    }

    /// The raw hold-capacitor voltage (before the output filter).
    pub fn hold_voltage(&self) -> Volts {
        self.hold_cap.voltage()
    }

    /// The `HELD_SAMPLE` line voltage.
    pub fn held_sample(&self) -> Volts {
        self.filter_cap.voltage()
    }

    /// Whether `ACTIVE` is asserted.
    pub fn is_active(&self) -> bool {
        self.active_comparator.output_high()
    }

    /// The configuration in use.
    pub fn config(&self) -> &SampleHoldConfig {
        &self.config
    }

    /// The current the measurement chain draws from the PV node while
    /// sampling at the given PV voltage.
    pub fn measurement_load_current(&self, pv_voltage: Volts) -> Amps {
        self.config
            .divider
            .input_current(pv_voltage.max(Volts::ZERO))
    }

    /// Forces the held value (for tests and fault injection).
    pub fn force_held(&mut self, v: Volts) {
        self.hold_cap.set_voltage(v);
        self.filter_cap.set_voltage(v);
    }

    /// Advances the block by `dt` with the given PV node voltage and
    /// PULSE state.
    pub fn step(&mut self, pv_voltage: Volts, sampling: bool, dt: Seconds) -> SampleHoldStep {
        let dt = Seconds::new(dt.value().max(0.0));
        let mut pv_charge = 0.0f64;

        // Switch control transition → charge injection into the hold cap.
        let injected = self.switch.set_closed(sampling);
        if injected != Coulombs::ZERO {
            self.hold_cap.inject_charge(injected);
        }

        if sampling {
            // Divider tap (unloaded: U2 input is high-impedance), buffered
            // by U2, through the switch onto the hold capacitor.
            let tap = self.config.divider.output(pv_voltage.max(Volts::ZERO));
            let target = self.config.input_buffer.output(tap);
            let source_r =
                self.config.input_buffer.output_resistance() + self.switch.on_resistance();
            self.hold_cap.drive_toward(target, source_r, dt);
            pv_charge = self.measurement_load_current(pv_voltage).value() * dt.value();
        } else {
            // Hold phase: droop from switch off-leakage (toward the now
            // low PV side), U4 input bias and capacitor self-leakage.
            let leak = self.switch.leakage_current(self.hold_cap.voltage())
                + self.config.output_buffer.input_bias_current();
            self.hold_cap.discharge(leak.max(Amps::ZERO), dt);
            self.hold_cap.leak(dt);
        }

        // Output buffer drives HELD_SAMPLE through the R3/C3 filter.
        let buffered = self.config.output_buffer.output(self.hold_cap.voltage());
        let filter_r =
            self.config.output_buffer.output_resistance() + self.config.filter_resistance;
        self.filter_cap.drive_toward(buffered, filter_r, dt);

        // ACTIVE sanity check (U5).
        let threshold = self.config.supply_voltage * self.config.active_threshold_fraction;
        let active = self
            .active_comparator
            .update(self.filter_cap.voltage(), threshold);

        // Supply accounting: buffers + U5 + its divider + auxiliary gate
        // drive, all continuous.
        let threshold_divider_current =
            self.config.supply_voltage / (self.config.threshold_divider_resistance * 2.0);
        let supply_current = self.config.input_buffer.supply_current()
            + self.config.output_buffer.supply_current()
            + self.config.active_comparator_current
            + threshold_divider_current
            + self.config.auxiliary_current;

        self.time += dt;
        SampleHoldStep {
            held_sample: self.filter_cap.voltage(),
            active,
            supply_charge: Coulombs::new(supply_current.value() * dt.value()),
            pv_charge: Coulombs::new(pv_charge),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> SampleHold {
        SampleHold::new(SampleHoldConfig::paper_configuration(0.298).unwrap()).unwrap()
    }

    #[test]
    fn samples_to_divided_value() {
        let mut sh = block();
        let step = sh.step(Volts::new(4.978), true, Seconds::from_milli(39.0));
        // Table I row 1: 200 lux, Voc 4.978 V → HELD 1.483 V.
        assert!(
            (step.held_sample.value() - 1.483).abs() < 0.01,
            "held = {}",
            step.held_sample
        );
    }

    #[test]
    fn settles_well_within_pulse_width() {
        let mut sh = block();
        // τ = (2 kΩ + 1 kΩ)·1 µF = 3 ms, so the 39 ms pulse is 13 τ —
        // the sample fully settles with margin.
        let step = sh.step(Volts::new(5.44), true, Seconds::from_milli(39.0));
        assert!((step.held_sample.value() - 5.44 * 0.298).abs() < 0.002);
        // Half a pulse is already within a few tens of millivolts (the
        // R3/C3 filter is the slowest element, τ ≈ 4.8 ms).
        let mut sh2 = block();
        let step2 = sh2.step(Volts::new(5.44), true, Seconds::from_milli(20.0));
        assert!((step2.held_sample.value() - 5.44 * 0.298).abs() < 0.03);
    }

    #[test]
    fn holds_for_69_seconds_with_negligible_droop() {
        let mut sh = block();
        sh.step(Volts::new(5.44), true, Seconds::from_milli(39.0));
        let held_before = sh.hold_voltage();
        // Hold with the PV voltage collapsed (worst case for leakage).
        for _ in 0..69 {
            sh.step(Volts::ZERO, false, Seconds::new(1.0));
        }
        let droop = (held_before - sh.hold_voltage()).value();
        // §III-B: "holds this value for extended periods" — droop must be
        // far below the 12.7 mV sampling error budget of §II-B.
        assert!(droop.abs() < 2e-3, "droop = {droop} V over 69 s");
    }

    #[test]
    fn active_asserts_only_after_valid_sample() {
        let mut sh = block();
        let step = sh.step(Volts::ZERO, false, Seconds::from_milli(10.0));
        assert!(!step.active, "ACTIVE must stay low before any sample");
        let step = sh.step(Volts::new(4.978), true, Seconds::from_milli(39.0));
        assert!(step.active, "ACTIVE must assert after a valid sample");
        // Stays asserted through the hold phase.
        let step = sh.step(Volts::ZERO, false, Seconds::new(5.0));
        assert!(step.active);
    }

    #[test]
    fn ripple_during_sampling_is_small() {
        let mut sh = block();
        sh.step(Volts::new(5.44), true, Seconds::from_milli(39.0));
        sh.step(Volts::new(5.44), false, Seconds::new(69.0));
        let settled = sh.held_sample().value();
        // Next sampling operation of the same Voc: observe the excursion.
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for _ in 0..390 {
            let s = sh.step(Volts::new(5.44), true, Seconds::from_milli(0.1));
            min = min.min(s.held_sample.value());
            max = max.max(s.held_sample.value());
        }
        let ripple = (max - settled).max(settled - min);
        // Fig. 4: "a small ripple may be observed" — bounded to millivolts.
        assert!(ripple < 5e-3, "ripple = {ripple} V");
        assert!(ripple > 0.0, "some ripple must be visible");
    }

    #[test]
    fn resamples_a_changed_voc() {
        let mut sh = block();
        sh.step(Volts::new(5.44), true, Seconds::from_milli(39.0));
        sh.step(Volts::new(5.44), false, Seconds::new(69.0));
        // Light dropped: Voc now 4.978.
        sh.step(Volts::new(4.978), true, Seconds::from_milli(39.0));
        assert!((sh.held_sample().value() - 4.978 * 0.298).abs() < 0.01);
    }

    #[test]
    fn measurement_load_only_during_sampling() {
        let mut sh = block();
        let s_hold = sh.step(Volts::new(5.0), false, Seconds::new(1.0));
        assert_eq!(s_hold.pv_charge, Coulombs::ZERO);
        let s_sample = sh.step(Volts::new(5.0), true, Seconds::from_milli(39.0));
        // 5 V across 5 MΩ for 39 ms ≈ 39 nC.
        assert!((s_sample.pv_charge.as_nano() - 39.0).abs() < 2.0);
    }

    #[test]
    fn supply_current_budget() {
        let mut sh = block();
        let total = Seconds::new(69.0);
        let s = sh.step(Volts::new(5.0), false, total);
        let avg = s.supply_charge / total;
        // 1.8 + 1.8 + 0.8 + 0.11 + 2.15 = 6.66 µA continuous.
        assert!((avg.as_micro() - 6.66).abs() < 0.1, "S&H average = {avg}");
    }

    #[test]
    fn division_ratio_trimmable() {
        // §IV-A: k "may easily be trimmed by means of a variable
        // potentiometer in place of R2".
        for ratio in [0.30, 0.35, 0.40] {
            let sh =
                SampleHold::new(SampleHoldConfig::paper_configuration(ratio).unwrap()).unwrap();
            assert!((sh.division_ratio().value() - ratio).abs() < 1e-9);
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = SampleHoldConfig::paper_configuration(0.298).unwrap();
        cfg.active_threshold_fraction = 1.5;
        assert!(SampleHold::new(cfg).is_err());
        let mut cfg = SampleHoldConfig::paper_configuration(0.298).unwrap();
        cfg.filter_resistance = Ohms::ZERO;
        assert!(SampleHold::new(cfg).is_err());
        assert!(SampleHoldConfig::paper_configuration(0.0).is_err());
    }

    #[test]
    fn force_held_for_fault_injection() {
        let mut sh = block();
        sh.force_held(Volts::new(1.6));
        assert_eq!(sh.held_sample(), Volts::new(1.6));
        assert_eq!(sh.hold_voltage(), Volts::new(1.6));
    }

    #[test]
    fn negative_pv_voltage_treated_as_zero() {
        let mut sh = block();
        let s = sh.step(Volts::new(-1.0), true, Seconds::from_milli(39.0));
        assert!(s.held_sample.value().abs() < 0.01);
    }
}
