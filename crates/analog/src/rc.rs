//! Exact first-order RC updates.
//!
//! Every reactive path in the paper's circuit is first-order (one
//! capacitor charged or discharged through a resistance toward a source),
//! so instead of numerically integrating we advance each capacitor with
//! the exact exponential solution. This keeps the simulator stable for
//! the hugely disparate time scales involved (39 ms pulses vs 69 s hold
//! periods vs 24 h environment runs).

use eh_units::{Farads, Ohms, Seconds, Volts};

/// Advances a capacitor voltage `v0` relaxing toward `target` with time
/// constant `tau` for a step `dt`: the exact solution of
/// `dv/dt = (target − v)/τ`.
///
/// A non-positive `tau` snaps to the target (an ideal source).
///
/// # Examples
///
/// ```
/// use eh_analog::rc::relax;
/// use eh_units::{Seconds, Volts};
///
/// // After one time constant the step response covers ~63.2 %.
/// let v = relax(Volts::ZERO, Volts::new(1.0), Seconds::new(1.0), Seconds::new(1.0));
/// assert!((v.value() - 0.6321).abs() < 1e-4);
/// ```
pub fn relax(v0: Volts, target: Volts, tau: Seconds, dt: Seconds) -> Volts {
    if tau.value() <= 0.0 {
        return target;
    }
    if dt.value() <= 0.0 {
        return v0;
    }
    let alpha = (-dt.value() / tau.value()).exp();
    target + (v0 - target) * alpha
}

/// Time for a first-order response to travel from `v0` to `v1` while
/// relaxing toward `target`: `t = τ·ln((target−v0)/(target−v1))`.
///
/// Returns `None` if `v1` is not between `v0` and `target` (the response
/// never gets there).
///
/// # Examples
///
/// ```
/// use eh_analog::rc::time_to_reach;
/// use eh_units::{Seconds, Volts};
///
/// // Charging 0→2/3·Vdd from 1/3·Vdd toward Vdd takes τ·ln2.
/// let t = time_to_reach(
///     Volts::new(1.0),
///     Volts::new(2.0),
///     Volts::new(3.0),
///     Seconds::new(1.0),
/// ).expect("reachable");
/// assert!((t.value() - 2f64.ln()).abs() < 1e-12);
/// ```
pub fn time_to_reach(v0: Volts, v1: Volts, target: Volts, tau: Seconds) -> Option<Seconds> {
    if tau.value() <= 0.0 {
        return Some(Seconds::ZERO);
    }
    let a = (target - v0).value();
    let b = (target - v1).value();
    if a == 0.0 || b == 0.0 {
        return if (v1 - v0).value().abs() < f64::EPSILON {
            Some(Seconds::ZERO)
        } else {
            None
        };
    }
    let ratio = a / b;
    if ratio < 1.0 {
        return None; // v1 lies beyond the asymptote or on the wrong side
    }
    Some(Seconds::new(tau.value() * ratio.ln()))
}

/// The time constant of a resistance and capacitance.
pub fn time_constant(r: Ohms, c: Farads) -> Seconds {
    r * c
}

/// Instantaneous current into a capacitor relaxing toward `target`
/// through resistance `r`: `(target − v)/r`.
pub fn charging_current(v: Volts, target: Volts, r: Ohms) -> eh_units::Amps {
    (target - v) / r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relax_converges_to_target() {
        let mut v = Volts::ZERO;
        let tau = Seconds::new(0.5);
        for _ in 0..100 {
            v = relax(v, Volts::new(3.3), tau, Seconds::new(0.1));
        }
        assert!((v.value() - 3.3).abs() < 1e-6);
    }

    #[test]
    fn relax_is_exact_not_stepped() {
        // One big step equals many small steps (exponential is exact).
        let tau = Seconds::new(2.0);
        let big = relax(Volts::ZERO, Volts::new(1.0), tau, Seconds::new(1.0));
        let mut small = Volts::ZERO;
        for _ in 0..1000 {
            small = relax(small, Volts::new(1.0), tau, Seconds::new(0.001));
        }
        assert!((big.value() - small.value()).abs() < 1e-9);
    }

    #[test]
    fn relax_zero_tau_snaps() {
        let v = relax(
            Volts::new(5.0),
            Volts::new(1.0),
            Seconds::ZERO,
            Seconds::new(0.1),
        );
        assert_eq!(v, Volts::new(1.0));
    }

    #[test]
    fn relax_zero_dt_is_identity() {
        let v = relax(
            Volts::new(2.0),
            Volts::new(5.0),
            Seconds::new(1.0),
            Seconds::ZERO,
        );
        assert_eq!(v, Volts::new(2.0));
    }

    #[test]
    fn discharge_direction() {
        let v = relax(
            Volts::new(3.0),
            Volts::ZERO,
            Seconds::new(1.0),
            Seconds::new(1.0),
        );
        assert!((v.value() - 3.0 * (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn time_to_reach_round_trip() {
        let v0 = Volts::new(0.5);
        let target = Volts::new(3.3);
        let tau = Seconds::new(0.7);
        let v1 = relax(v0, target, tau, Seconds::new(0.3));
        let t = time_to_reach(v0, v1, target, tau).unwrap();
        assert!((t.value() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn time_to_reach_unreachable() {
        // Can't charge past the asymptote.
        assert!(time_to_reach(
            Volts::new(1.0),
            Volts::new(4.0),
            Volts::new(3.0),
            Seconds::new(1.0)
        )
        .is_none());
        // Wrong direction: discharging toward 0 never rises.
        assert!(time_to_reach(
            Volts::new(1.0),
            Volts::new(2.0),
            Volts::ZERO,
            Seconds::new(1.0)
        )
        .is_none());
    }

    #[test]
    fn time_constant_and_current() {
        let tau = time_constant(Ohms::from_mega(100.0), Farads::from_micro(1.0));
        assert!((tau.value() - 100.0).abs() < 1e-9);
        let i = charging_current(Volts::new(1.0), Volts::new(3.3), Ohms::from_kilo(10.0));
        assert!((i.as_micro() - 230.0).abs() < 1e-9);
    }
}
