//! The astable multivibrator that generates the PULSE timing.
//!
//! The paper adapts the square-wave generator from the LMC6772 datasheet
//! (its ref. \[11\]): a micropower comparator whose non-inverting input sits
//! on a three-resistor threshold network with feedback from the output
//! (thresholds `Vdd/3` and `2·Vdd/3` for equal resistors) and whose
//! inverting input follows a timing capacitor. A steering diode gives the
//! charge and discharge paths *independent* resistances, which is how the
//! paper obtains the extreme 39 ms ON / 69 s OFF asymmetry.
//!
//! The simulation is event-segmented and analytically exact: within each
//! output phase the capacitor follows a single exponential, so phase
//! boundaries are located with [`crate::rc::time_to_reach`] rather than
//! by small-step integration. A 24-hour run therefore costs microseconds.

use eh_units::{Amps, Coulombs, Farads, Ohms, Seconds, Volts};

use crate::components::{Capacitor, Comparator};
use crate::error::AnalogError;
use crate::netlist::Netlist;
use crate::rc;

/// Configuration of the astable multivibrator.
#[derive(Debug, Clone, PartialEq)]
pub struct AstableConfig {
    /// Supply rail.
    pub supply_voltage: Volts,
    /// Timing capacitor value (low-leakage polyester film).
    pub timing_capacitance: Farads,
    /// Each of the three equal threshold-network resistors.
    pub threshold_resistance: Ohms,
    /// Resistance of the charge path (sets the ON/PULSE width).
    pub charge_resistance: Ohms,
    /// Resistance of the discharge path (sets the OFF/hold period).
    pub discharge_resistance: Ohms,
    /// Supply current of the comparator.
    pub comparator_current: Amps,
}

impl AstableConfig {
    /// Derives charge/discharge resistances from target ON and OFF times
    /// for a given capacitor, using the exact exponential phase equations.
    ///
    /// # Errors
    ///
    /// Rejects non-positive times, capacitance or resistances.
    pub fn from_periods(
        supply_voltage: Volts,
        timing_capacitance: Farads,
        threshold_resistance: Ohms,
        t_on: Seconds,
        t_off: Seconds,
    ) -> Result<Self, AnalogError> {
        for (name, v) in [
            ("t_on", t_on.value()),
            ("t_off", t_off.value()),
            ("timing_capacitance", timing_capacitance.value()),
            ("threshold_resistance", threshold_resistance.value()),
            ("supply_voltage", supply_voltage.value()),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(AnalogError::InvalidParameter { name, value: v });
            }
        }
        // Equal-resistor network: thresholds Vdd/3 and 2Vdd/3, so both
        // phases span a factor-2 exponential ratio: t = R·C·ln 2.
        let ln2 = std::f64::consts::LN_2;
        let r_charge = Ohms::new(t_on.value() / (timing_capacitance.value() * ln2));
        let r_discharge = Ohms::new(t_off.value() / (timing_capacitance.value() * ln2));
        Ok(Self {
            supply_voltage,
            timing_capacitance,
            threshold_resistance,
            charge_resistance: r_charge,
            discharge_resistance: r_discharge,
            comparator_current: Amps::from_micro(0.7),
        })
    }
}

/// Result of advancing the astable by one step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AstableStep {
    /// Output state at the end of the step (true = PULSE active).
    pub output_high: bool,
    /// Charge drawn from the supply rail during the step.
    pub supply_charge: Coulombs,
    /// Number of output transitions that occurred within the step.
    pub transitions: u32,
}

/// The steppable astable multivibrator.
///
/// ```
/// use eh_analog::astable::AstableMultivibrator;
/// use eh_units::Seconds;
///
/// let mut astable = AstableMultivibrator::paper_configuration()?;
/// // Run for three full periods and measure the produced pulse widths.
/// let step = astable.step(Seconds::new(3.0 * 69.1));
/// assert!(step.transitions >= 5);
/// # Ok::<(), eh_analog::AnalogError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AstableMultivibrator {
    config: AstableConfig,
    comparator: Comparator,
    timing_cap: Capacitor,
    output_high: bool,
    upper_threshold: Volts,
    lower_threshold: Volts,
    rail_current_high: Amps,
    rail_current_low: Amps,
    time: Seconds,
}

impl AstableMultivibrator {
    /// Builds the astable the paper measured: 3.3 V supply, 1 µF polyester
    /// timing capacitor, 10 MΩ threshold network, charge/discharge paths
    /// sized for 39 ms ON and 69 s OFF.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors.
    pub fn paper_configuration() -> Result<Self, AnalogError> {
        let config = AstableConfig::from_periods(
            Volts::new(3.3),
            Farads::from_micro(1.0),
            Ohms::from_mega(10.0),
            Seconds::from_milli(39.0),
            Seconds::new(69.0),
        )?;
        Self::new(config)
    }

    /// Builds an astable from an explicit configuration.
    ///
    /// # Errors
    ///
    /// Rejects non-positive resistances or capacitance.
    pub fn new(config: AstableConfig) -> Result<Self, AnalogError> {
        for (name, v) in [
            ("charge_resistance", config.charge_resistance.value()),
            ("discharge_resistance", config.discharge_resistance.value()),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(AnalogError::InvalidParameter { name, value: v });
            }
        }
        let (upper, lower) = Self::solve_thresholds(&config)?;
        let (rail_high, rail_low) = Self::solve_rail_currents(&config)?;
        let comparator = Comparator::new(
            config.supply_voltage,
            config.comparator_current,
            Volts::ZERO,
        )?;
        let mut timing_cap = Capacitor::polyester(config.timing_capacitance)?;
        // Power-up: capacitor discharged, so the comparator output starts
        // high (cap below the lower threshold) and the first PULSE fires
        // immediately — this is what gives the paper's fast first sample
        // after cold start (§IV-B).
        timing_cap.set_voltage(Volts::ZERO);
        Ok(Self {
            config,
            comparator,
            timing_cap,
            output_high: true,
            upper_threshold: upper,
            lower_threshold: lower,
            rail_current_high: rail_high,
            rail_current_low: rail_low,
            time: Seconds::ZERO,
        })
    }

    /// Solves the threshold network with the output rail-high and
    /// rail-low to find the two comparison thresholds.
    fn solve_thresholds(config: &AstableConfig) -> Result<(Volts, Volts), AnalogError> {
        let solve_for = |out_high: bool| -> Result<Volts, AnalogError> {
            let mut net = Netlist::new();
            let vdd = net.node();
            let th = net.node();
            let out = net.node();
            net.voltage_source(vdd, Netlist::GROUND, config.supply_voltage)?;
            net.voltage_source(
                out,
                Netlist::GROUND,
                if out_high {
                    config.supply_voltage
                } else {
                    Volts::ZERO
                },
            )?;
            let r = config.threshold_resistance;
            net.resistor(vdd, th, r)?;
            net.resistor(th, Netlist::GROUND, r)?;
            net.resistor(th, out, r)?;
            net.solve()?.voltage(th)
        };
        Ok((solve_for(true)?, solve_for(false)?))
    }

    /// Static rail current of the threshold network for each output state.
    fn solve_rail_currents(config: &AstableConfig) -> Result<(Amps, Amps), AnalogError> {
        let current_for = |out_high: bool| -> Result<Amps, AnalogError> {
            let r = config.threshold_resistance.value();
            let vdd = config.supply_voltage.value();
            // Threshold node voltage for this state:
            let vth = if out_high { 2.0 * vdd / 3.0 } else { vdd / 3.0 };
            // From the rail: through the top resistor always, plus through
            // the feedback resistor when the comparator output is high
            // (its push stage sources from the rail).
            let mut i = (vdd - vth) / r;
            if out_high {
                i += (vdd - vth) / r;
            }
            Ok(Amps::new(i))
        };
        Ok((current_for(true)?, current_for(false)?))
    }

    /// The (ON, OFF) periods predicted analytically from the exponential
    /// phase equations — the numbers the paper quotes as 39 ms and 69 s.
    pub fn analytic_periods(&self) -> (Seconds, Seconds) {
        let vdd = self.config.supply_voltage;
        let c = self.config.timing_capacitance;
        let t_on = rc::time_to_reach(
            self.lower_threshold,
            self.upper_threshold,
            vdd,
            self.config.charge_resistance * c,
        )
        .unwrap_or(Seconds::ZERO);
        let t_off = rc::time_to_reach(
            self.upper_threshold,
            self.lower_threshold,
            Volts::ZERO,
            self.config.discharge_resistance * c,
        )
        .unwrap_or(Seconds::ZERO);
        (t_on, t_off)
    }

    /// Analytic duty cycle of the PULSE output.
    pub fn duty_cycle(&self) -> f64 {
        let (t_on, t_off) = self.analytic_periods();
        let total = t_on.value() + t_off.value();
        if total <= 0.0 {
            0.0
        } else {
            t_on.value() / total
        }
    }

    /// Whether the PULSE output is currently high.
    pub fn output_high(&self) -> bool {
        self.output_high
    }

    /// The timing capacitor's present voltage.
    pub fn capacitor_voltage(&self) -> Volts {
        self.timing_cap.voltage()
    }

    /// Simulated time elapsed.
    pub fn time(&self) -> Seconds {
        self.time
    }

    /// The configuration in use.
    pub fn config(&self) -> &AstableConfig {
        &self.config
    }

    /// Instantaneous supply current (comparator + threshold network +
    /// charge-path draw).
    pub fn supply_current(&self) -> Amps {
        let mut i = self.config.comparator_current;
        i += if self.output_high {
            self.rail_current_high
        } else {
            self.rail_current_low
        };
        if self.output_high {
            // Charging current sourced from the rail through the output
            // stage and the charge path.
            i += rc::charging_current(
                self.timing_cap.voltage(),
                self.config.supply_voltage,
                self.config.charge_resistance,
            )
            .max(Amps::ZERO);
        }
        i
    }

    /// Time until the next output transition from the present state —
    /// the event horizon a system-level simulator can step to.
    pub fn time_to_next_transition(&self) -> Seconds {
        let (target, resistance, threshold) = if self.output_high {
            (
                self.config.supply_voltage,
                self.config.charge_resistance,
                self.upper_threshold,
            )
        } else {
            (
                Volts::ZERO,
                self.config.discharge_resistance,
                self.lower_threshold,
            )
        };
        rc::time_to_reach(
            self.timing_cap.voltage(),
            threshold,
            target,
            resistance * self.config.timing_capacitance,
        )
        .unwrap_or(Seconds::new(f64::INFINITY))
    }

    /// Advances the astable by `dt`, crossing as many output transitions
    /// as fall inside the interval (event-segmented, analytically exact).
    pub fn step(&mut self, dt: Seconds) -> AstableStep {
        let mut remaining = dt.value().max(0.0);
        let mut charge = 0.0f64;
        let mut transitions = 0u32;
        let c = self.config.timing_capacitance;

        while remaining > 0.0 {
            let (target, resistance, threshold) = if self.output_high {
                (
                    self.config.supply_voltage,
                    self.config.charge_resistance,
                    self.upper_threshold,
                )
            } else {
                (
                    Volts::ZERO,
                    self.config.discharge_resistance,
                    self.lower_threshold,
                )
            };
            let tau = resistance * c;
            let v0 = self.timing_cap.voltage();
            let time_to_flip = rc::time_to_reach(v0, threshold, target, tau)
                .map(|t| t.value())
                .unwrap_or(f64::INFINITY);

            let seg = time_to_flip.min(remaining);
            let v1 = rc::relax(v0, target, tau, Seconds::new(seg));

            // Static network + comparator draw over the segment.
            let static_current = self.config.comparator_current.value()
                + if self.output_high {
                    self.rail_current_high.value()
                } else {
                    self.rail_current_low.value()
                };
            charge += static_current * seg;
            // Charge delivered into the cap from the rail (high phase only).
            if self.output_high && v1 > v0 {
                charge += c.value() * (v1 - v0).value();
            }

            self.timing_cap.set_voltage(v1);
            remaining -= seg;

            if time_to_flip <= seg + f64::EPSILON && remaining >= 0.0 && seg == time_to_flip {
                self.output_high = !self.output_high;
                transitions += 1;
                // Keep the internal comparator state consistent.
                self.comparator.update(
                    if self.output_high {
                        Volts::new(1.0)
                    } else {
                        Volts::ZERO
                    },
                    Volts::new(0.5),
                );
            } else if seg >= remaining && time_to_flip > seg {
                break;
            }
            if seg == 0.0 && time_to_flip == 0.0 {
                // Defensive: avoid an infinite loop if the threshold is
                // exactly at the current voltage.
                self.output_high = !self.output_high;
                transitions += 1;
            }
        }
        self.time += dt;
        AstableStep {
            output_high: self.output_high,
            supply_charge: Coulombs::new(charge),
            transitions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trace;

    #[test]
    fn paper_periods() {
        let astable = AstableMultivibrator::paper_configuration().unwrap();
        let (t_on, t_off) = astable.analytic_periods();
        assert!((t_on.as_milli() - 39.0).abs() < 1.0, "t_on = {t_on}");
        assert!((t_off.value() - 69.0).abs() < 1.0, "t_off = {t_off}");
        let duty = astable.duty_cycle();
        assert!((duty - 0.039 / 69.039).abs() < 1e-4, "duty = {duty}");
    }

    #[test]
    fn thresholds_are_thirds_of_supply() {
        let astable = AstableMultivibrator::paper_configuration().unwrap();
        assert!((astable.upper_threshold.value() - 2.2).abs() < 1e-9);
        assert!((astable.lower_threshold.value() - 1.1).abs() < 1e-9);
    }

    #[test]
    fn starts_with_pulse_high_for_cold_start() {
        let astable = AstableMultivibrator::paper_configuration().unwrap();
        assert!(astable.output_high(), "first PULSE must fire at power-up");
    }

    #[test]
    fn simulated_periods_match_analytic() {
        let mut astable = AstableMultivibrator::paper_configuration().unwrap();
        let mut trace = Trace::new("PULSE");
        let dt = Seconds::from_milli(5.0);
        let mut t = 0.0;
        // Simulate 3.5 periods.
        while t < 3.5 * 69.1 {
            let s = astable.step(dt);
            t += dt.value();
            trace.record(Seconds::new(t), if s.output_high { 3.3 } else { 0.0 });
        }
        let highs = trace.high_durations(1.65);
        assert!(!highs.is_empty());
        for h in &highs {
            assert!(
                (h.as_milli() - 39.0).abs() < 11.0,
                "pulse width {h} (5 ms sampling)"
            );
        }
        // Period between rising edges ≈ 69 s.
        let rises = trace.rising_edges(1.65);
        assert!(rises.len() >= 2);
        let period = (rises[1] - rises[0]).value();
        assert!((period - 69.04).abs() < 0.5, "period = {period}");
    }

    #[test]
    fn large_step_crosses_many_transitions() {
        let mut astable = AstableMultivibrator::paper_configuration().unwrap();
        let s = astable.step(Seconds::new(10.0 * 69.04));
        assert!(s.transitions >= 19, "transitions = {}", s.transitions);
    }

    #[test]
    fn average_supply_current_under_microamp_scale() {
        let mut astable = AstableMultivibrator::paper_configuration().unwrap();
        let total = Seconds::new(5.0 * 69.04);
        let s = astable.step(total);
        let avg = s.supply_charge / total;
        // Comparator 0.7 µA + threshold network ~0.25 µA + charge pulses.
        assert!(
            avg.as_micro() > 0.7 && avg.as_micro() < 1.5,
            "astable average = {avg}"
        );
    }

    #[test]
    fn instantaneous_current_higher_during_pulse() {
        let mut astable = AstableMultivibrator::paper_configuration().unwrap();
        // At start the output is high and the cap charges: large draw.
        let during_pulse = astable.supply_current();
        astable.step(Seconds::new(1.0)); // well past the 39 ms pulse
        assert!(!astable.output_high());
        let during_hold = astable.supply_current();
        assert!(during_pulse.value() > during_hold.value() * 5.0);
    }

    #[test]
    fn config_from_periods_validation() {
        assert!(AstableConfig::from_periods(
            Volts::new(3.3),
            Farads::from_micro(1.0),
            Ohms::from_mega(10.0),
            Seconds::ZERO,
            Seconds::new(69.0),
        )
        .is_err());
        assert!(AstableConfig::from_periods(
            Volts::ZERO,
            Farads::from_micro(1.0),
            Ohms::from_mega(10.0),
            Seconds::from_milli(39.0),
            Seconds::new(69.0),
        )
        .is_err());
    }

    #[test]
    fn custom_symmetric_astable() {
        let config = AstableConfig::from_periods(
            Volts::new(3.3),
            Farads::from_nano(100.0),
            Ohms::from_mega(1.0),
            Seconds::from_milli(10.0),
            Seconds::from_milli(10.0),
        )
        .unwrap();
        let astable = AstableMultivibrator::new(config).unwrap();
        assert!((astable.duty_cycle() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn timing_is_ratiometric_in_supply() {
        // The thresholds are fractions of Vdd and the charge targets are
        // Vdd/ground, so the periods are supply-independent — the reason
        // the astable keeps its 39 ms / 69 s calibration while the
        // storage rail wanders between 2.2 V and 3.3 V.
        let at = |vdd: f64| {
            let config = AstableConfig::from_periods(
                Volts::new(vdd),
                Farads::from_micro(1.0),
                Ohms::from_mega(10.0),
                Seconds::from_milli(39.0),
                Seconds::new(69.0),
            )
            .unwrap();
            AstableMultivibrator::new(config)
                .unwrap()
                .analytic_periods()
        };
        let (on_a, off_a) = at(2.2);
        let (on_b, off_b) = at(3.3);
        assert!((on_a.value() - on_b.value()).abs() < 1e-9);
        assert!((off_a.value() - off_b.value()).abs() < 1e-9);
    }

    #[test]
    fn time_advances() {
        let mut astable = AstableMultivibrator::paper_configuration().unwrap();
        astable.step(Seconds::new(1.5));
        astable.step(Seconds::new(2.5));
        assert!((astable.time().value() - 4.0).abs() < 1e-12);
    }
}
