//! Supply-current accounting — the simulator's electrometer.
//!
//! §IV-A of the paper measures the astable + sample-and-hold combination
//! at an average of 7.6 µA from a 3.3 V bench supply. The ledger
//! integrates each named consumer's instantaneous current over simulated
//! time so the same average (and its per-component breakdown) can be
//! reported.

use std::collections::BTreeMap;

use eh_units::{Amps, Coulombs, Joules, Seconds, Volts};

/// One consumer's integrated charge.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEntry {
    /// Consumer name (e.g. `"U1 astable comparator"`).
    pub name: String,
    /// Total charge drawn.
    pub charge: Coulombs,
}

/// Integrates named supply currents over time.
///
/// ```
/// use eh_analog::CurrentLedger;
/// use eh_units::{Amps, Seconds, Volts};
///
/// let mut ledger = CurrentLedger::new();
/// ledger.accumulate("comparator", Amps::from_micro(0.9), Seconds::new(10.0));
/// ledger.accumulate("buffer", Amps::from_micro(1.5), Seconds::new(10.0));
/// let avg = ledger.average_current(Seconds::new(10.0));
/// assert!((avg.as_micro() - 2.4).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CurrentLedger {
    charges: BTreeMap<String, f64>,
    elapsed: f64,
}

impl CurrentLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `current · dt` of charge to the named consumer.
    ///
    /// Negative currents are allowed (a consumer briefly sourcing charge
    /// back, e.g. charge injection), but negative `dt` is ignored.
    pub fn accumulate(&mut self, name: &str, current: Amps, dt: Seconds) {
        if dt.value() <= 0.0 {
            return;
        }
        *self.charges.entry(name.to_owned()).or_insert(0.0) += current.value() * dt.value();
    }

    /// Advances the ledger's notion of elapsed time (used by
    /// [`CurrentLedger::average_current_elapsed`]).
    pub fn advance(&mut self, dt: Seconds) {
        if dt.value() > 0.0 {
            self.elapsed += dt.value();
        }
    }

    /// Total elapsed time recorded via [`CurrentLedger::advance`].
    pub fn elapsed(&self) -> Seconds {
        Seconds::new(self.elapsed)
    }

    /// Total charge drawn by all consumers.
    pub fn total_charge(&self) -> Coulombs {
        Coulombs::new(self.charges.values().sum())
    }

    /// Charge drawn by one consumer, zero if unknown.
    pub fn charge_of(&self, name: &str) -> Coulombs {
        Coulombs::new(self.charges.get(name).copied().unwrap_or(0.0))
    }

    /// Average current over an externally supplied window.
    pub fn average_current(&self, over: Seconds) -> Amps {
        if over.value() <= 0.0 {
            return Amps::ZERO;
        }
        self.total_charge() / over
    }

    /// Average current over the internally tracked elapsed time.
    pub fn average_current_elapsed(&self) -> Amps {
        self.average_current(self.elapsed())
    }

    /// Energy drawn from a fixed supply rail at voltage `vdd`.
    pub fn energy_from_supply(&self, vdd: Volts) -> Joules {
        self.total_charge() * vdd
    }

    /// Per-consumer breakdown, sorted by descending charge.
    pub fn breakdown(&self) -> Vec<LedgerEntry> {
        let mut entries: Vec<LedgerEntry> = self
            .charges
            .iter()
            .map(|(name, &q)| LedgerEntry {
                name: name.clone(),
                charge: Coulombs::new(q),
            })
            .collect();
        entries.sort_by(|a, b| b.charge.value().total_cmp(&a.charge.value()));
        entries
    }

    /// Removes all recorded charge and elapsed time.
    pub fn reset(&mut self) {
        self.charges.clear();
        self.elapsed = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation_and_average() {
        let mut l = CurrentLedger::new();
        l.accumulate("a", Amps::from_micro(2.0), Seconds::new(5.0));
        l.accumulate("a", Amps::from_micro(2.0), Seconds::new(5.0));
        l.accumulate("b", Amps::from_micro(1.0), Seconds::new(10.0));
        assert!((l.total_charge().as_micro() - 30.0).abs() < 1e-9);
        assert!((l.average_current(Seconds::new(10.0)).as_micro() - 3.0).abs() < 1e-9);
        assert!((l.charge_of("b").as_micro() - 10.0).abs() < 1e-9);
        assert_eq!(l.charge_of("missing"), Coulombs::ZERO);
    }

    #[test]
    fn elapsed_tracking() {
        let mut l = CurrentLedger::new();
        l.accumulate("x", Amps::from_micro(7.6), Seconds::new(69.0));
        l.advance(Seconds::new(69.0));
        assert!((l.average_current_elapsed().as_micro() - 7.6).abs() < 1e-9);
        l.advance(Seconds::new(-5.0)); // ignored
        assert_eq!(l.elapsed(), Seconds::new(69.0));
    }

    #[test]
    fn breakdown_sorted_descending() {
        let mut l = CurrentLedger::new();
        l.accumulate("small", Amps::from_micro(1.0), Seconds::new(1.0));
        l.accumulate("large", Amps::from_micro(9.0), Seconds::new(1.0));
        let b = l.breakdown();
        assert_eq!(b[0].name, "large");
        assert_eq!(b[1].name, "small");
    }

    #[test]
    fn energy_from_supply() {
        let mut l = CurrentLedger::new();
        l.accumulate("x", Amps::from_micro(7.6), Seconds::new(3600.0));
        let e = l.energy_from_supply(Volts::new(3.3));
        // 7.6 µA · 3600 s · 3.3 V ≈ 90.3 mJ
        assert!((e.as_milli() - 90.288).abs() < 0.01, "e = {e}");
    }

    #[test]
    fn zero_window_average_is_zero() {
        let mut l = CurrentLedger::new();
        l.accumulate("x", Amps::new(1.0), Seconds::new(1.0));
        assert_eq!(l.average_current(Seconds::ZERO), Amps::ZERO);
    }

    #[test]
    fn negative_dt_ignored_reset_clears() {
        let mut l = CurrentLedger::new();
        l.accumulate("x", Amps::new(1.0), Seconds::new(-1.0));
        assert_eq!(l.total_charge(), Coulombs::ZERO);
        l.accumulate("x", Amps::new(1.0), Seconds::new(1.0));
        l.advance(Seconds::new(1.0));
        l.reset();
        assert_eq!(l.total_charge(), Coulombs::ZERO);
        assert_eq!(l.elapsed(), Seconds::ZERO);
    }
}
