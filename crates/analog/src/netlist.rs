//! A small modified-nodal-analysis (MNA) DC solver for linear resistive
//! networks with ideal voltage and current sources.
//!
//! Used to solve the paper's resistive sub-networks exactly: the R1/R2
//! sampling divider under buffer bias load, the astable's three-resistor
//! threshold network (including its hysteresis feedback), and the U5
//! supply-splitter. Being exact at DC also gives the behavioural blocks
//! an oracle to test against.
//!
//! # Example: loaded divider
//!
//! ```
//! use eh_analog::netlist::Netlist;
//! use eh_units::{Ohms, Volts};
//!
//! let mut net = Netlist::new();
//! let vin = net.node();
//! let tap = net.node();
//! net.voltage_source(vin, Netlist::GROUND, Volts::new(5.0))?;
//! net.resistor(vin, tap, Ohms::from_mega(3.5))?;
//! net.resistor(tap, Netlist::GROUND, Ohms::from_mega(1.5))?;
//! let sol = net.solve()?;
//! assert!((sol.voltage(tap)?.value() - 1.5).abs() < 1e-9);
//! # Ok::<(), eh_analog::AnalogError>(())
//! ```

use eh_units::{Amps, Ohms, Volts};

use crate::error::AnalogError;

/// A node handle in a [`Netlist`].
pub type Node = usize;

#[derive(Debug, Clone)]
enum Element {
    Resistor { a: Node, b: Node, conductance: f64 },
    CurrentSource { from: Node, to: Node, amps: f64 },
    VoltageSource { pos: Node, neg: Node, volts: f64 },
}

/// A linear DC netlist under construction.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    node_count: usize,
    elements: Vec<Element>,
}

/// The solved node voltages and voltage-source currents of a netlist.
#[derive(Debug, Clone)]
pub struct Solution {
    node_voltages: Vec<f64>,
    source_currents: Vec<f64>,
}

impl Netlist {
    /// The ground reference node (always node 0, fixed at 0 V).
    pub const GROUND: Node = 0;

    /// Creates a netlist containing only the ground node.
    pub fn new() -> Self {
        Self {
            node_count: 1,
            elements: Vec::new(),
        }
    }

    /// Allocates a new node and returns its handle.
    pub fn node(&mut self) -> Node {
        let n = self.node_count;
        self.node_count += 1;
        n
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Adds a resistor between nodes `a` and `b`.
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes and non-positive or non-finite resistance.
    pub fn resistor(&mut self, a: Node, b: Node, r: Ohms) -> Result<(), AnalogError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if !(r.value().is_finite() && r.value() > 0.0) {
            return Err(AnalogError::InvalidParameter {
                name: "resistance",
                value: r.value(),
            });
        }
        self.elements.push(Element::Resistor {
            a,
            b,
            conductance: 1.0 / r.value(),
        });
        Ok(())
    }

    /// Adds an ideal current source driving `amps` from node `from` into
    /// node `to` (conventional current).
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes and non-finite current.
    pub fn current_source(&mut self, from: Node, to: Node, i: Amps) -> Result<(), AnalogError> {
        self.check_node(from)?;
        self.check_node(to)?;
        if !i.value().is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "current",
                value: i.value(),
            });
        }
        self.elements.push(Element::CurrentSource {
            from,
            to,
            amps: i.value(),
        });
        Ok(())
    }

    /// Adds an ideal voltage source holding `pos − neg = volts`.
    ///
    /// Returns the index of the source (for reading its current from the
    /// [`Solution`]).
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes and non-finite voltage.
    pub fn voltage_source(&mut self, pos: Node, neg: Node, v: Volts) -> Result<usize, AnalogError> {
        self.check_node(pos)?;
        self.check_node(neg)?;
        if !v.value().is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "voltage",
                value: v.value(),
            });
        }
        self.elements.push(Element::VoltageSource {
            pos,
            neg,
            volts: v.value(),
        });
        Ok(self
            .elements
            .iter()
            .filter(|e| matches!(e, Element::VoltageSource { .. }))
            .count()
            - 1)
    }

    /// Solves the network by MNA with partial-pivot Gaussian elimination.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::SingularNetwork`] for floating nodes or
    /// contradictory sources.
    pub fn solve(&self) -> Result<Solution, AnalogError> {
        let n = self.node_count - 1; // unknown node voltages (ground excluded)
        let m = self
            .elements
            .iter()
            .filter(|e| matches!(e, Element::VoltageSource { .. }))
            .count();
        let dim = n + m;
        if dim == 0 {
            return Ok(Solution {
                node_voltages: vec![0.0],
                source_currents: Vec::new(),
            });
        }
        // Dense MNA matrix [G B; C 0] and RHS.
        let mut a = vec![vec![0.0f64; dim]; dim];
        let mut rhs = vec![0.0f64; dim];
        let idx = |node: Node| -> Option<usize> { (node > 0).then(|| node - 1) };

        let mut vs_row = 0usize;
        for e in &self.elements {
            match *e {
                Element::Resistor {
                    a: na,
                    b: nb,
                    conductance: g,
                } => {
                    if let Some(i) = idx(na) {
                        a[i][i] += g;
                    }
                    if let Some(j) = idx(nb) {
                        a[j][j] += g;
                    }
                    if let (Some(i), Some(j)) = (idx(na), idx(nb)) {
                        a[i][j] -= g;
                        a[j][i] -= g;
                    }
                }
                Element::CurrentSource { from, to, amps } => {
                    if let Some(i) = idx(from) {
                        rhs[i] -= amps;
                    }
                    if let Some(j) = idx(to) {
                        rhs[j] += amps;
                    }
                }
                Element::VoltageSource { pos, neg, volts } => {
                    let row = n + vs_row;
                    if let Some(i) = idx(pos) {
                        a[row][i] += 1.0;
                        a[i][row] += 1.0;
                    }
                    if let Some(j) = idx(neg) {
                        a[row][j] -= 1.0;
                        a[j][row] -= 1.0;
                    }
                    rhs[row] = volts;
                    vs_row += 1;
                }
            }
        }

        gaussian_solve(&mut a, &mut rhs)?;

        let mut node_voltages = vec![0.0; self.node_count];
        for (node, v) in node_voltages.iter_mut().enumerate().skip(1) {
            *v = rhs[node - 1];
        }
        Ok(Solution {
            node_voltages,
            source_currents: rhs[n..].to_vec(),
        })
    }

    fn check_node(&self, n: Node) -> Result<(), AnalogError> {
        if n < self.node_count {
            Ok(())
        } else {
            Err(AnalogError::UnknownNode { index: n })
        }
    }
}

/// In-place Gaussian elimination with partial pivoting; solution left in
/// `rhs`.
fn gaussian_solve(a: &mut [Vec<f64>], rhs: &mut [f64]) -> Result<(), AnalogError> {
    let dim = rhs.len();
    for col in 0..dim {
        // Pivot.
        let pivot = (col..dim)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty range");
        if a[pivot][col].abs() < 1e-18 {
            return Err(AnalogError::SingularNetwork);
        }
        a.swap(col, pivot);
        rhs.swap(col, pivot);
        // Eliminate below.
        for row in col + 1..dim {
            let f = a[row][col] / a[col][col];
            if f == 0.0 {
                continue;
            }
            let pivot_row = a[col][col..dim].to_vec();
            for (entry, pivot) in a[row][col..dim].iter_mut().zip(&pivot_row) {
                *entry -= f * pivot;
            }
            rhs[row] -= f * rhs[col];
        }
    }
    // Back substitution.
    for col in (0..dim).rev() {
        let mut sum = rhs[col];
        for k in col + 1..dim {
            sum -= a[col][k] * rhs[k];
        }
        rhs[col] = sum / a[col][col];
    }
    Ok(())
}

impl Solution {
    /// Voltage of a node.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::UnknownNode`] for out-of-range handles.
    pub fn voltage(&self, node: Node) -> Result<Volts, AnalogError> {
        self.node_voltages
            .get(node)
            .map(|&v| Volts::new(v))
            .ok_or(AnalogError::UnknownNode { index: node })
    }

    /// Current through the `idx`-th voltage source (flowing out of its
    /// positive terminal into the network is negative by MNA convention).
    pub fn source_current(&self, idx: usize) -> Option<Amps> {
        self.source_currents.get(idx).map(|&i| Amps::new(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_divider() {
        let mut net = Netlist::new();
        let vin = net.node();
        let tap = net.node();
        net.voltage_source(vin, Netlist::GROUND, Volts::new(3.3))
            .unwrap();
        net.resistor(vin, tap, Ohms::from_kilo(10.0)).unwrap();
        net.resistor(tap, Netlist::GROUND, Ohms::from_kilo(10.0))
            .unwrap();
        let sol = net.solve().unwrap();
        assert!((sol.voltage(tap).unwrap().value() - 1.65).abs() < 1e-12);
    }

    #[test]
    fn loaded_divider_sags() {
        let mut net = Netlist::new();
        let vin = net.node();
        let tap = net.node();
        net.voltage_source(vin, Netlist::GROUND, Volts::new(5.0))
            .unwrap();
        net.resistor(vin, tap, Ohms::from_mega(1.0)).unwrap();
        net.resistor(tap, Netlist::GROUND, Ohms::from_mega(1.0))
            .unwrap();
        // Load resistor equal to the bottom leg: tap drops from 2.5 to 1.6667.
        net.resistor(tap, Netlist::GROUND, Ohms::from_mega(1.0))
            .unwrap();
        let sol = net.solve().unwrap();
        assert!((sol.voltage(tap).unwrap().value() - 5.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut net = Netlist::new();
        let n = net.node();
        net.current_source(Netlist::GROUND, n, Amps::from_micro(10.0))
            .unwrap();
        net.resistor(n, Netlist::GROUND, Ohms::from_kilo(100.0))
            .unwrap();
        let sol = net.solve().unwrap();
        assert!((sol.voltage(n).unwrap().value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn source_current_through_series_resistors() {
        let mut net = Netlist::new();
        let a = net.node();
        let b = net.node();
        let src = net
            .voltage_source(a, Netlist::GROUND, Volts::new(10.0))
            .unwrap();
        net.resistor(a, b, Ohms::from_kilo(6.0)).unwrap();
        net.resistor(b, Netlist::GROUND, Ohms::from_kilo(4.0))
            .unwrap();
        let sol = net.solve().unwrap();
        // 10 V / 10 kΩ = 1 mA; MNA reports the current into the + terminal
        // as negative when the source delivers power.
        let i = sol.source_current(src).unwrap();
        assert!((i.value().abs() - 1e-3).abs() < 1e-12);
        assert!((sol.voltage(b).unwrap().value() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn wheatstone_bridge_balance() {
        let mut net = Netlist::new();
        let top = net.node();
        let left = net.node();
        let right = net.node();
        net.voltage_source(top, Netlist::GROUND, Volts::new(5.0))
            .unwrap();
        net.resistor(top, left, Ohms::from_kilo(1.0)).unwrap();
        net.resistor(left, Netlist::GROUND, Ohms::from_kilo(2.0))
            .unwrap();
        net.resistor(top, right, Ohms::from_kilo(2.0)).unwrap();
        net.resistor(right, Netlist::GROUND, Ohms::from_kilo(4.0))
            .unwrap();
        // Balanced bridge: both taps at the same potential.
        net.resistor(left, right, Ohms::from_kilo(10.0)).unwrap();
        let sol = net.solve().unwrap();
        let dv = sol.voltage(left).unwrap() - sol.voltage(right).unwrap();
        assert!(dv.value().abs() < 1e-9, "bridge unbalanced: {dv}");
    }

    #[test]
    fn floating_node_is_singular() {
        let mut net = Netlist::new();
        let a = net.node();
        let _floating = net.node();
        net.voltage_source(a, Netlist::GROUND, Volts::new(1.0))
            .unwrap();
        assert_eq!(net.solve().unwrap_err(), AnalogError::SingularNetwork);
    }

    #[test]
    fn invalid_elements_rejected() {
        let mut net = Netlist::new();
        let a = net.node();
        assert!(net.resistor(a, 99, Ohms::new(1.0)).is_err());
        assert!(net.resistor(a, Netlist::GROUND, Ohms::ZERO).is_err());
        assert!(net.resistor(a, Netlist::GROUND, Ohms::new(-5.0)).is_err());
        assert!(net
            .voltage_source(a, Netlist::GROUND, Volts::new(f64::NAN))
            .is_err());
        assert!(net
            .current_source(a, Netlist::GROUND, Amps::new(f64::INFINITY))
            .is_err());
    }

    #[test]
    fn empty_netlist_solves_trivially() {
        let net = Netlist::new();
        let sol = net.solve().unwrap();
        assert_eq!(sol.voltage(Netlist::GROUND).unwrap(), Volts::ZERO);
    }

    #[test]
    fn two_voltage_sources_stack() {
        let mut net = Netlist::new();
        let mid = net.node();
        let top = net.node();
        net.voltage_source(mid, Netlist::GROUND, Volts::new(1.5))
            .unwrap();
        net.voltage_source(top, mid, Volts::new(1.5)).unwrap();
        net.resistor(top, Netlist::GROUND, Ohms::from_kilo(1.0))
            .unwrap();
        let sol = net.solve().unwrap();
        assert!((sol.voltage(top).unwrap().value() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn superposition_holds() {
        // V source and I source together = sum of each alone.
        let build = |with_v: bool, with_i: bool| {
            let mut net = Netlist::new();
            let a = net.node();
            let b = net.node();
            net.resistor(a, b, Ohms::from_kilo(1.0)).unwrap();
            net.resistor(b, Netlist::GROUND, Ohms::from_kilo(1.0))
                .unwrap();
            net.voltage_source(
                a,
                Netlist::GROUND,
                Volts::new(if with_v { 2.0 } else { 0.0 }),
            )
            .unwrap();
            if with_i {
                net.current_source(Netlist::GROUND, b, Amps::from_milli(1.0))
                    .unwrap();
            }
            net.solve().unwrap().voltage(b).unwrap().value()
        };
        let both = build(true, true);
        let only_v = build(true, false);
        let only_i = build(false, true);
        assert!((both - (only_v + only_i)).abs() < 1e-9);
    }
}
