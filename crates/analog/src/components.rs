//! Behavioural models of the discrete parts in the paper's circuit:
//! micropower comparators (LMC7215 class), micropower op-amp unity-gain
//! buffers, analog switches, MOSFET switches, capacitors with
//! self-leakage, diodes and resistive dividers.
//!
//! Each active part exposes its instantaneous supply current so a
//! [`crate::CurrentLedger`] can reproduce the paper's 7.6 µA measurement.

use eh_units::{Amps, Coulombs, Farads, Ohms, Seconds, Volts};

use crate::error::AnalogError;
use crate::rc;

fn require_positive(name: &'static str, v: f64) -> Result<f64, AnalogError> {
    if v.is_finite() && v > 0.0 {
        Ok(v)
    } else {
        Err(AnalogError::InvalidParameter { name, value: v })
    }
}

fn require_non_negative(name: &'static str, v: f64) -> Result<f64, AnalogError> {
    if v.is_finite() && v >= 0.0 {
        Ok(v)
    } else {
        Err(AnalogError::InvalidParameter { name, value: v })
    }
}

/// A micropower rail-to-rail comparator (National LMC7215 class: the part
/// the paper's astable and ACTIVE monitor use).
///
/// The model is static (output settles within one simulation step —
/// the LMC7215's ~4 µs propagation delay is far below the 39 ms pulse
/// width) with optional input hysteresis and a constant supply current.
///
/// ```
/// use eh_analog::components::Comparator;
/// use eh_units::Volts;
///
/// let mut cmp = Comparator::lmc7215(Volts::new(3.3));
/// assert!(cmp.update(Volts::new(2.0), Volts::new(1.0)));
/// assert!(!cmp.update(Volts::new(0.5), Volts::new(1.0)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Comparator {
    supply_voltage: Volts,
    supply_current: Amps,
    hysteresis: Volts,
    propagation_delay: Seconds,
    output_high: bool,
}

impl Comparator {
    /// Creates a comparator with explicit parameters.
    ///
    /// # Errors
    ///
    /// Rejects negative supply current or hysteresis.
    pub fn new(
        supply_voltage: Volts,
        supply_current: Amps,
        hysteresis: Volts,
    ) -> Result<Self, AnalogError> {
        require_non_negative("supply_current", supply_current.value())?;
        require_non_negative("hysteresis", hysteresis.value())?;
        require_positive("supply_voltage", supply_voltage.value())?;
        Ok(Self {
            supply_voltage,
            supply_current,
            hysteresis,
            propagation_delay: Seconds::from_micro(4.0),
            output_high: false,
        })
    }

    /// The LMC7215 at a given supply: 0.7 µA typical supply current,
    /// no built-in hysteresis, ~4 µs propagation delay.
    pub fn lmc7215(supply_voltage: Volts) -> Self {
        Self {
            supply_voltage,
            supply_current: Amps::from_micro(0.7),
            hysteresis: Volts::ZERO,
            propagation_delay: Seconds::from_micro(4.0),
            output_high: false,
        }
    }

    /// Overrides the propagation delay (datasheet value).
    #[must_use]
    pub fn with_propagation_delay(mut self, delay: Seconds) -> Self {
        self.propagation_delay = delay.max(Seconds::ZERO);
        self
    }

    /// The input-to-output propagation delay. The blocks in this crate
    /// treat the comparator as settled within one simulation step, which
    /// is valid while steps stay far above this figure (4 µs against the
    /// 39 ms pulse: a 10⁴ margin).
    pub fn propagation_delay(&self) -> Seconds {
        self.propagation_delay
    }

    /// Evaluates the comparator and latches its output state.
    ///
    /// With hysteresis `h`, the threshold seen by a high output is
    /// `inverting − h/2` and by a low output `inverting + h/2`.
    pub fn update(&mut self, non_inverting: Volts, inverting: Volts) -> bool {
        let half = self.hysteresis * 0.5;
        let threshold = if self.output_high {
            inverting - half
        } else {
            inverting + half
        };
        self.output_high = non_inverting > threshold;
        self.output_high
    }

    /// The latched output state.
    pub fn output_high(&self) -> bool {
        self.output_high
    }

    /// Rail-to-rail output voltage for the latched state.
    pub fn output_voltage(&self) -> Volts {
        if self.output_high {
            self.supply_voltage
        } else {
            Volts::ZERO
        }
    }

    /// Instantaneous supply current (constant for this part).
    pub fn supply_current(&self) -> Amps {
        self.supply_current
    }

    /// The supply rail this comparator runs from.
    pub fn supply_voltage(&self) -> Volts {
        self.supply_voltage
    }
}

/// A micropower op-amp wired as a unity-gain buffer (the paper's U2 input
/// and U4 output buffers).
///
/// Models input offset voltage, input bias current (which loads whatever
/// the input is connected to — critically, the hold capacitor), finite
/// output resistance and a constant supply current.
#[derive(Debug, Clone, PartialEq)]
pub struct OpAmpBuffer {
    offset: Volts,
    input_bias: Amps,
    output_resistance: Ohms,
    supply_current: Amps,
    slew_rate_v_per_s: f64,
}

impl OpAmpBuffer {
    /// Creates a buffer with explicit parameters.
    ///
    /// # Errors
    ///
    /// Rejects negative output resistance or supply current.
    pub fn new(
        offset: Volts,
        input_bias: Amps,
        output_resistance: Ohms,
        supply_current: Amps,
    ) -> Result<Self, AnalogError> {
        require_non_negative("output_resistance", output_resistance.value())?;
        require_non_negative("supply_current", supply_current.value())?;
        if !offset.is_finite() || !input_bias.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "offset_or_bias",
                value: f64::NAN,
            });
        }
        Ok(Self {
            offset,
            input_bias,
            output_resistance,
            supply_current,
            slew_rate_v_per_s: 20_000.0,
        })
    }

    /// A CMOS micropower buffer: ±1 mV offset budgeted to zero (trimmed),
    /// 1 pA bias, 2 kΩ output resistance, 1.8 µA supply current,
    /// 0.02 V/µs slew (micropower parts are slow).
    pub fn micropower() -> Self {
        Self {
            offset: Volts::ZERO,
            input_bias: Amps::from_pico(1.0),
            output_resistance: Ohms::from_kilo(2.0),
            supply_current: Amps::from_micro(1.8),
            slew_rate_v_per_s: 20_000.0,
        }
    }

    /// Overrides the slew rate in volts per second.
    #[must_use]
    pub fn with_slew_rate(mut self, v_per_s: f64) -> Self {
        self.slew_rate_v_per_s = v_per_s.max(0.0);
        self
    }

    /// The output slew rate in volts per second. At 0.02 V/µs a full
    /// 1.6 V HELD_SAMPLE step takes ~80 µs — invisible against the 39 ms
    /// pulse, which is why the blocks model the buffer as settled, but
    /// the figure matters for anyone retuning the pulse width downward.
    pub fn slew_rate_v_per_s(&self) -> f64 {
        self.slew_rate_v_per_s
    }

    /// The time for the output to traverse `dv` at the slew limit.
    pub fn slew_time(&self, dv: Volts) -> Seconds {
        if self.slew_rate_v_per_s <= 0.0 {
            return Seconds::ZERO;
        }
        Seconds::new(dv.value().abs() / self.slew_rate_v_per_s)
    }

    /// The buffered output for a given input (unity gain plus offset).
    pub fn output(&self, input: Volts) -> Volts {
        input + self.offset
    }

    /// The bias current drawn *from the input node* (discharges a hold
    /// capacitor connected there).
    pub fn input_bias_current(&self) -> Amps {
        self.input_bias
    }

    /// The source resistance the output presents.
    pub fn output_resistance(&self) -> Ohms {
        self.output_resistance
    }

    /// Instantaneous supply current.
    pub fn supply_current(&self) -> Amps {
        self.supply_current
    }
}

/// An analog switch (transmission gate) with on-resistance, off-state
/// leakage and charge injection at turn-off.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalogSwitch {
    on_resistance: Ohms,
    off_leakage: Amps,
    charge_injection: Coulombs,
    closed: bool,
}

impl AnalogSwitch {
    /// Creates a switch with explicit parameters.
    ///
    /// # Errors
    ///
    /// Rejects non-positive on-resistance or negative leakage.
    pub fn new(
        on_resistance: Ohms,
        off_leakage: Amps,
        charge_injection: Coulombs,
    ) -> Result<Self, AnalogError> {
        require_positive("on_resistance", on_resistance.value())?;
        require_non_negative("off_leakage", off_leakage.value())?;
        if !charge_injection.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "charge_injection",
                value: charge_injection.value(),
            });
        }
        Ok(Self {
            on_resistance,
            off_leakage,
            charge_injection,
            closed: false,
        })
    }

    /// A low-leakage CMOS analog switch: 1 kΩ on, 2 pA off-leakage,
    /// 5 pC injection (ADG-class precision switch).
    pub fn low_leakage() -> Self {
        Self {
            on_resistance: Ohms::from_kilo(1.0),
            off_leakage: Amps::from_pico(2.0),
            charge_injection: Coulombs::from_pico(5.0),
            closed: false,
        }
    }

    /// Whether the switch is conducting.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Drives the control input. Returns the charge injected into the
    /// signal path on a closing/opening transition (zero when the state
    /// does not change).
    pub fn set_closed(&mut self, closed: bool) -> Coulombs {
        if closed == self.closed {
            return Coulombs::ZERO;
        }
        self.closed = closed;
        // Injection kicks the signal node on both transitions; sign
        // convention: positive on close, negative on open.
        if closed {
            self.charge_injection
        } else {
            -self.charge_injection
        }
    }

    /// Series resistance of the conducting switch.
    pub fn on_resistance(&self) -> Ohms {
        self.on_resistance
    }

    /// Leakage current through the open switch for a given voltage across
    /// it (sign follows the voltage).
    pub fn leakage_current(&self, v_across: Volts) -> Amps {
        if self.closed {
            return Amps::ZERO;
        }
        if v_across.value() >= 0.0 {
            self.off_leakage
        } else {
            -self.off_leakage
        }
    }
}

/// A MOSFET used as a low-side or series switch (the paper's M1–M5, M8),
/// modelled as a gate-threshold-controlled resistance.
#[derive(Debug, Clone, PartialEq)]
pub struct MosfetSwitch {
    threshold: Volts,
    on_resistance: Ohms,
    off_resistance: Ohms,
}

impl MosfetSwitch {
    /// Creates a switch with the given gate threshold and on/off
    /// resistances.
    ///
    /// # Errors
    ///
    /// Rejects non-positive resistances or a non-finite threshold.
    pub fn new(
        threshold: Volts,
        on_resistance: Ohms,
        off_resistance: Ohms,
    ) -> Result<Self, AnalogError> {
        require_positive("on_resistance", on_resistance.value())?;
        require_positive("off_resistance", off_resistance.value())?;
        if !threshold.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "threshold",
                value: threshold.value(),
            });
        }
        Ok(Self {
            threshold,
            on_resistance,
            off_resistance,
        })
    }

    /// A logic-level NMOS chosen (as the paper notes) for low
    /// on-resistance at small gate voltages: Vth 0.9 V, 2 Ω on, 100 MΩ off.
    pub fn logic_level_nmos() -> Self {
        Self {
            threshold: Volts::new(0.9),
            on_resistance: Ohms::new(2.0),
            off_resistance: Ohms::from_mega(100.0),
        }
    }

    /// The channel resistance for a given gate-source voltage.
    pub fn channel_resistance(&self, vgs: Volts) -> Ohms {
        if vgs > self.threshold {
            self.on_resistance
        } else {
            self.off_resistance
        }
    }

    /// Whether the channel is enhanced at the given gate voltage.
    pub fn is_on(&self, vgs: Volts) -> bool {
        vgs > self.threshold
    }

    /// The gate threshold voltage.
    pub fn threshold(&self) -> Volts {
        self.threshold
    }
}

/// A capacitor with a parallel self-leakage resistance, advanced with
/// exact exponential updates.
#[derive(Debug, Clone, PartialEq)]
pub struct Capacitor {
    capacitance: Farads,
    leakage_resistance: Ohms,
    voltage: Volts,
}

impl Capacitor {
    /// Creates a capacitor with the given value and self-leakage
    /// resistance, initially discharged.
    ///
    /// # Errors
    ///
    /// Rejects non-positive capacitance or leakage resistance.
    pub fn new(capacitance: Farads, leakage_resistance: Ohms) -> Result<Self, AnalogError> {
        require_positive("capacitance", capacitance.value())?;
        require_positive("leakage_resistance", leakage_resistance.value())?;
        Ok(Self {
            capacitance,
            leakage_resistance,
            voltage: Volts::ZERO,
        })
    }

    /// A low-leakage polyester (film) capacitor, as the paper specifies
    /// for both the astable timing and the hold capacitor. Film
    /// dielectrics are characterised by their insulation RC product;
    /// a high-grade part reaches τ = R_ins·C ≈ 10⁵ s, which is what the
    /// "holds this value for extended periods" claim of §III-B needs.
    ///
    /// # Errors
    ///
    /// Rejects non-positive capacitance.
    pub fn polyester(capacitance: Farads) -> Result<Self, AnalogError> {
        const INSULATION_TAU_S: f64 = 1e5;
        Self::new(
            capacitance,
            Ohms::new(INSULATION_TAU_S / capacitance.value()),
        )
    }

    /// The capacitance.
    pub fn capacitance(&self) -> Farads {
        self.capacitance
    }

    /// The present voltage.
    pub fn voltage(&self) -> Volts {
        self.voltage
    }

    /// Forces the voltage (e.g. initial conditions).
    pub fn set_voltage(&mut self, v: Volts) {
        self.voltage = v;
    }

    /// Injects a charge packet (e.g. switch charge injection):
    /// `ΔV = Q/C`.
    pub fn inject_charge(&mut self, q: Coulombs) {
        self.voltage += q / self.capacitance;
    }

    /// Draws a constant current for `dt` (positive discharges), clamping
    /// at zero volts.
    pub fn discharge(&mut self, i: Amps, dt: Seconds) {
        let dv = (i * dt) / self.capacitance;
        self.voltage = (self.voltage - dv).max(Volts::ZERO);
    }

    /// Relaxes toward `target` through a series resistance for `dt`
    /// (exact exponential), including the internal leakage path to
    /// ground.
    pub fn drive_toward(&mut self, target: Volts, series: Ohms, dt: Seconds) {
        // Thevenin of drive through `series` and leakage to ground.
        let g_drive = 1.0 / series.value().max(1e-3);
        let g_leak = 1.0 / self.leakage_resistance.value();
        let g_total = g_drive + g_leak;
        let v_eff = Volts::new(target.value() * g_drive / g_total);
        let tau = Seconds::new(self.capacitance.value() / g_total);
        self.voltage = rc::relax(self.voltage, v_eff, tau, dt);
    }

    /// Lets the capacitor self-discharge through its leakage for `dt`.
    pub fn leak(&mut self, dt: Seconds) {
        let tau = self.leakage_resistance * self.capacitance;
        self.voltage = rc::relax(self.voltage, Volts::ZERO, tau, dt);
    }

    /// Stored energy `½CV²`.
    pub fn stored_energy(&self) -> eh_units::Joules {
        eh_units::Joules::new(0.5 * self.capacitance.value() * self.voltage.value().powi(2))
    }
}

/// A two-resistor divider (the paper's R1/R2 chain that scales `Voc` to
/// `HELD_SAMPLE = Voc·k·α`).
#[derive(Debug, Clone, PartialEq)]
pub struct VoltageDivider {
    top: Ohms,
    bottom: Ohms,
}

impl VoltageDivider {
    /// Creates a divider with `top` from input to tap and `bottom` from
    /// tap to ground.
    ///
    /// # Errors
    ///
    /// Rejects non-positive resistances.
    pub fn new(top: Ohms, bottom: Ohms) -> Result<Self, AnalogError> {
        require_positive("top", top.value())?;
        require_positive("bottom", bottom.value())?;
        Ok(Self { top, bottom })
    }

    /// Builds a divider with a given total resistance and ratio
    /// `tap/input = ratio` — how a designer picks R1/R2 for a target
    /// `k·α`.
    ///
    /// # Errors
    ///
    /// Rejects ratios outside `(0, 1)` or non-positive totals.
    pub fn with_ratio(total: Ohms, ratio: f64) -> Result<Self, AnalogError> {
        require_positive("total", total.value())?;
        if !(ratio.is_finite() && ratio > 0.0 && ratio < 1.0) {
            return Err(AnalogError::InvalidParameter {
                name: "ratio",
                value: ratio,
            });
        }
        Ok(Self {
            top: total * (1.0 - ratio),
            bottom: total * ratio,
        })
    }

    /// The unloaded tap voltage for a given input.
    pub fn output(&self, input: Volts) -> Volts {
        input * (self.bottom.value() / (self.top.value() + self.bottom.value()))
    }

    /// The unloaded division ratio.
    pub fn ratio(&self) -> f64 {
        self.bottom.value() / (self.top.value() + self.bottom.value())
    }

    /// The Thevenin source resistance at the tap.
    pub fn thevenin_resistance(&self) -> Ohms {
        Ohms::new(self.top.value() * self.bottom.value() / (self.top.value() + self.bottom.value()))
    }

    /// Current drawn from the input source.
    pub fn input_current(&self, input: Volts) -> Amps {
        input / (self.top + self.bottom)
    }

    /// The top resistor.
    pub fn top(&self) -> Ohms {
        self.top
    }

    /// The bottom resistor.
    pub fn bottom(&self) -> Ohms {
        self.bottom
    }
}

/// A discrete diode (the cold-start steering diode D1 and the astable's
/// path-steering diodes), modelled by the Shockley equation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Diode {
    saturation: Amps,
    n_vt: Volts,
}

impl Diode {
    /// Creates a diode with the given saturation current and emission
    /// voltage `n·Vt`.
    ///
    /// # Errors
    ///
    /// Rejects non-positive parameters.
    pub fn new(saturation: Amps, n_vt: Volts) -> Result<Self, AnalogError> {
        require_positive("saturation", saturation.value())?;
        require_positive("n_vt", n_vt.value())?;
        Ok(Self { saturation, n_vt })
    }

    /// A small-signal silicon diode (1N4148 class): 4 nA saturation,
    /// n·Vt ≈ 50 mV — ~0.6 V forward drop at 1 mA.
    pub fn silicon_1n4148() -> Self {
        Self {
            saturation: Amps::from_nano(4.0),
            n_vt: Volts::from_milli(50.0),
        }
    }

    /// A small Schottky diode (BAT54 class): 100 nA saturation,
    /// n·Vt ≈ 28 mV — ~0.25 V forward drop at 1 mA, the right choice for
    /// the cold-start path where every 100 mV of headroom matters.
    pub fn schottky_bat54() -> Self {
        Self {
            saturation: Amps::from_nano(100.0),
            n_vt: Volts::from_milli(28.0),
        }
    }

    /// Forward current at a given voltage.
    pub fn current(&self, v: Volts) -> Amps {
        diode_current(v, self.saturation, self.n_vt)
    }

    /// Forward voltage at a given current.
    pub fn forward_voltage(&self, i: Amps) -> Volts {
        diode_forward_voltage(i, self.saturation, self.n_vt)
    }
}

/// Shockley diode forward current: `Is·(exp(V/(n·Vt)) − 1)`, clamped to
/// avoid overflow. Used for the cold-start steering diode D1.
pub fn diode_current(v: Volts, saturation: Amps, n_vt: Volts) -> Amps {
    let arg = (v.value() / n_vt.value()).min(120.0);
    saturation * arg.exp_m1()
}

/// Forward voltage a diode develops at a given current (inverse of
/// [`diode_current`]).
pub fn diode_forward_voltage(i: Amps, saturation: Amps, n_vt: Volts) -> Volts {
    if i.value() <= 0.0 {
        return Volts::ZERO;
    }
    Volts::new(n_vt.value() * (i.value() / saturation.value() + 1.0).ln())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparator_basic_and_hysteresis() {
        let mut c =
            Comparator::new(Volts::new(3.3), Amps::from_micro(0.7), Volts::new(0.2)).unwrap();
        assert!(!c.output_high());
        // Below upper threshold (1.0 + 0.1): stays low.
        assert!(!c.update(Volts::new(1.05), Volts::new(1.0)));
        // Above it: goes high.
        assert!(c.update(Volts::new(1.15), Volts::new(1.0)));
        assert_eq!(c.output_voltage(), Volts::new(3.3));
        // Now must fall below 0.9 to go low again.
        assert!(c.update(Volts::new(0.95), Volts::new(1.0)));
        assert!(!c.update(Volts::new(0.85), Volts::new(1.0)));
        assert_eq!(c.output_voltage(), Volts::ZERO);
    }

    #[test]
    fn lmc7215_preset() {
        let c = Comparator::lmc7215(Volts::new(3.3));
        assert!((c.supply_current().as_micro() - 0.7).abs() < 1e-9);
        assert_eq!(c.supply_voltage(), Volts::new(3.3));
    }

    #[test]
    fn comparator_rejects_bad_params() {
        assert!(Comparator::new(Volts::ZERO, Amps::ZERO, Volts::ZERO).is_err());
        assert!(Comparator::new(Volts::new(3.3), Amps::new(-1.0), Volts::ZERO).is_err());
        assert!(Comparator::new(Volts::new(3.3), Amps::ZERO, Volts::new(-0.1)).is_err());
    }

    #[test]
    fn comparator_delay_and_buffer_slew_figures() {
        let cmp =
            Comparator::lmc7215(Volts::new(3.3)).with_propagation_delay(Seconds::from_micro(10.0));
        assert!((cmp.propagation_delay().as_micro() - 10.0).abs() < 1e-9);
        // The default 4 µs is four orders below the 39 ms pulse.
        let fresh = Comparator::lmc7215(Volts::new(3.3));
        assert!(fresh.propagation_delay().value() * 1e4 < 0.039 * 10.0);

        let buf = OpAmpBuffer::micropower();
        // Slewing the full 1.62 V HELD_SAMPLE step takes ~81 µs.
        let t = buf.slew_time(Volts::new(1.62));
        assert!((t.as_micro() - 81.0).abs() < 1.0, "slew time {t}");
        let instant = OpAmpBuffer::micropower().with_slew_rate(0.0);
        assert_eq!(instant.slew_time(Volts::new(5.0)), Seconds::ZERO);
    }

    #[test]
    fn buffer_output_and_bias() {
        let b = OpAmpBuffer::micropower();
        assert_eq!(b.output(Volts::new(1.5)), Volts::new(1.5));
        assert!(b.input_bias_current().value() > 0.0);
        let offset_buf = OpAmpBuffer::new(
            Volts::from_milli(2.0),
            Amps::from_pico(1.0),
            Ohms::from_kilo(1.0),
            Amps::from_micro(1.0),
        )
        .unwrap();
        assert!((offset_buf.output(Volts::new(1.0)).value() - 1.002).abs() < 1e-12);
    }

    #[test]
    fn switch_injection_on_transitions_only() {
        let mut s = AnalogSwitch::low_leakage();
        assert!(!s.is_closed());
        let q1 = s.set_closed(true);
        assert!(q1.value() > 0.0);
        let q2 = s.set_closed(true); // no transition
        assert_eq!(q2, Coulombs::ZERO);
        let q3 = s.set_closed(false);
        assert!(q3.value() < 0.0);
    }

    #[test]
    fn switch_leakage_sign_follows_voltage() {
        let s = AnalogSwitch::low_leakage();
        assert!(s.leakage_current(Volts::new(2.0)).value() > 0.0);
        assert!(s.leakage_current(Volts::new(-2.0)).value() < 0.0);
        let mut closed = AnalogSwitch::low_leakage();
        closed.set_closed(true);
        assert_eq!(closed.leakage_current(Volts::new(2.0)), Amps::ZERO);
    }

    #[test]
    fn mosfet_threshold_switching() {
        let m = MosfetSwitch::logic_level_nmos();
        assert!(!m.is_on(Volts::new(0.5)));
        assert!(m.is_on(Volts::new(3.3)));
        assert!(m.channel_resistance(Volts::new(3.3)).value() < 10.0);
        assert!(m.channel_resistance(Volts::new(0.0)).value() > 1e6);
    }

    #[test]
    fn capacitor_charge_and_leak() {
        let mut c = Capacitor::polyester(Farads::from_nano(100.0)).unwrap();
        c.drive_toward(
            Volts::new(1.5),
            Ohms::from_kilo(3.0),
            Seconds::from_milli(39.0),
        );
        // τ = 3 kΩ·100 nF = 0.3 ms; 39 ms is 130 τ: fully settled.
        assert!((c.voltage().value() - 1.5).abs() < 1e-6);
        // Hold for 69 s: with τ_ins = 10⁵ s the droop is ~1 mV on 1.5 V.
        let before = c.voltage();
        c.leak(Seconds::new(69.0));
        let droop = (before - c.voltage()).value();
        assert!(droop > 0.0 && droop < 2e-3, "droop = {droop} V");
    }

    #[test]
    fn capacitor_injection_and_discharge() {
        let mut c = Capacitor::polyester(Farads::from_nano(100.0)).unwrap();
        c.set_voltage(Volts::new(1.0));
        c.inject_charge(Coulombs::from_pico(5.0));
        assert!((c.voltage().value() - 1.00005).abs() < 1e-9);
        c.discharge(Amps::from_pico(10.0), Seconds::new(69.0));
        // 10 pA · 69 s / 100 nF = 6.9 mV
        assert!((c.voltage().value() - (1.00005 - 0.0069)).abs() < 1e-6);
        // Clamp at zero.
        c.discharge(Amps::new(1.0), Seconds::new(1.0));
        assert_eq!(c.voltage(), Volts::ZERO);
    }

    #[test]
    fn capacitor_stored_energy() {
        let mut c = Capacitor::polyester(Farads::from_micro(100.0)).unwrap();
        c.set_voltage(Volts::new(2.0));
        assert!((c.stored_energy().value() - 0.5 * 100e-6 * 4.0).abs() < 1e-12);
    }

    #[test]
    fn divider_math() {
        let d = VoltageDivider::new(Ohms::from_mega(3.515), Ohms::from_mega(1.5)).unwrap();
        let out = d.output(Volts::new(5.0));
        // 1.5/5.015 ≈ 0.2991
        assert!((out.value() - 5.0 * 1.5 / 5.015).abs() < 1e-9);
        assert!((d.thevenin_resistance().value() - 3.515e6 * 1.5e6 / 5.015e6).abs() < 1.0);
        assert!((d.input_current(Volts::new(5.0)).as_micro() - 5.0 / 5.015).abs() < 1e-6);
    }

    #[test]
    fn divider_with_ratio() {
        let d = VoltageDivider::with_ratio(Ohms::from_mega(5.0), 0.298).unwrap();
        assert!((d.ratio() - 0.298).abs() < 1e-12);
        assert!((d.top().value() + d.bottom().value() - 5e6).abs() < 1.0);
        assert!(VoltageDivider::with_ratio(Ohms::from_mega(5.0), 1.2).is_err());
        assert!(VoltageDivider::with_ratio(Ohms::ZERO, 0.5).is_err());
    }

    #[test]
    fn diode_presets_rank_by_forward_drop() {
        let si = Diode::silicon_1n4148();
        let schottky = Diode::schottky_bat54();
        let i = Amps::from_milli(1.0);
        let v_si = si.forward_voltage(i);
        let v_sch = schottky.forward_voltage(i);
        assert!((v_si.value() - 0.62).abs() < 0.05, "Si drop {v_si}");
        assert!((v_sch.value() - 0.26).abs() < 0.05, "Schottky drop {v_sch}");
        assert!(v_sch < v_si, "Schottky must drop less");
        // Inverse consistency.
        let back = schottky.current(v_sch);
        assert!((back.value() - i.value()).abs() < 1e-9);
        assert!(Diode::new(Amps::ZERO, Volts::from_milli(50.0)).is_err());
    }

    #[test]
    fn diode_exponential_and_inverse() {
        let is = Amps::from_pico(1.0);
        let nvt = Volts::from_milli(38.0);
        let i = diode_current(Volts::new(0.5), is, nvt);
        assert!(i.value() > 0.0);
        let v_back = diode_forward_voltage(i, is, nvt);
        assert!((v_back.value() - 0.5).abs() < 1e-9);
        assert_eq!(diode_forward_voltage(Amps::ZERO, is, nvt), Volts::ZERO);
        // Reverse bias leaks at most Is.
        let rev = diode_current(Volts::new(-5.0), is, nvt);
        assert!(rev.value() < 0.0 && rev.value() >= -is.value());
    }
}
